// nidt: thin process wrapper around the stream-parameterized CLI library.
#include <iostream>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> tokens(argv + 1, argv + argc);
  return nidkit::cli::run_cli(tokens, std::cout, std::cerr);
}
