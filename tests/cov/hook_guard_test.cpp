// The hook-coverage guard: cov declares its feature universe as plain
// constants (it sits below the protocol engines), so these tests pin the
// declared tables to the real enums enumerator by enumerator — adding an
// FSM state or packet kind without growing the universe fails here, not
// silently in a report. The audit-backed half then runs full default
// audits and asserts every feature the hooks actually recorded is
// declared and nameable.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "bgp/bgp_router.hpp"
#include "cov/cov.hpp"
#include "harness/experiment.hpp"
#include "ospf/router.hpp"
#include "packet/bgp_packet.hpp"
#include "packet/ospf_types.hpp"
#include "packet/rip_packet.hpp"

namespace nidkit {
namespace {

using namespace std::chrono_literals;
using harness::audit_bgp;
using harness::audit_ospf;
using harness::audit_rip;
using harness::ExperimentConfig;

TEST(HookGuard, OspfNeighborStatesPinTheFsmUniverse) {
  constexpr ospf::NeighborState kStates[] = {
      ospf::NeighborState::kDown,     ospf::NeighborState::kInit,
      ospf::NeighborState::kTwoWay,   ospf::NeighborState::kExStart,
      ospf::NeighborState::kExchange, ospf::NeighborState::kLoading,
      ospf::NeighborState::kFull,
  };
  static_assert(std::size(kStates) == cov::kOspfFsmStates,
                "ospf::NeighborState grew: extend cov's universe");
  for (unsigned i = 0; i < std::size(kStates); ++i)
    EXPECT_EQ(static_cast<unsigned>(kStates[i]), i);
  EXPECT_EQ(cov::fsm_state_count(cov::Proto::kOspf), cov::kOspfFsmStates);
}

TEST(HookGuard, BgpSessionStatesPinTheFsmUniverse) {
  constexpr bgp::SessionState kStates[] = {
      bgp::SessionState::kIdle,
      bgp::SessionState::kOpenSent,
      bgp::SessionState::kOpenConfirm,
      bgp::SessionState::kEstablished,
  };
  static_assert(std::size(kStates) == cov::kBgpFsmStates,
                "bgp::SessionState grew: extend cov's universe");
  for (unsigned i = 0; i < std::size(kStates); ++i)
    EXPECT_EQ(static_cast<unsigned>(kStates[i]), i);
  EXPECT_EQ(cov::fsm_state_count(cov::Proto::kBgp), cov::kBgpFsmStates);
  EXPECT_EQ(cov::fsm_state_count(cov::Proto::kRip), 0u);  // no peer FSM
}

TEST(HookGuard, DrRoleMaskBitsPinTheInterfaceStates) {
  // scenario.cpp translates dr_role_mask bits (indexed by InterfaceState
  // value) into role markers; these casts are the contract.
  EXPECT_EQ(static_cast<unsigned>(ospf::InterfaceState::kDrOther), 3u);
  EXPECT_EQ(static_cast<unsigned>(ospf::InterfaceState::kBackup), 4u);
  EXPECT_EQ(static_cast<unsigned>(ospf::InterfaceState::kDr), 5u);
}

TEST(HookGuard, PacketKindsPinThePairUniverse) {
  // All wire kinds are 1-based, dense, and counted by the cov constants.
  constexpr ospf::PacketType kOspf[] = {
      ospf::PacketType::kHello, ospf::PacketType::kDbd,
      ospf::PacketType::kLsRequest, ospf::PacketType::kLsUpdate,
      ospf::PacketType::kLsAck,
  };
  static_assert(std::size(kOspf) == cov::kOspfPacketKinds);
  static_assert(ospf::kNumPacketTypes ==
                static_cast<int>(cov::kOspfPacketKinds));
  for (unsigned i = 0; i < std::size(kOspf); ++i)
    EXPECT_EQ(static_cast<unsigned>(kOspf[i]), i + 1);

  constexpr rip::Command kRip[] = {rip::Command::kRequest,
                                   rip::Command::kResponse};
  static_assert(std::size(kRip) == cov::kRipPacketKinds);
  for (unsigned i = 0; i < std::size(kRip); ++i)
    EXPECT_EQ(static_cast<unsigned>(kRip[i]), i + 1);

  constexpr bgp::MessageType kBgp[] = {
      bgp::MessageType::kOpen, bgp::MessageType::kUpdate,
      bgp::MessageType::kNotification, bgp::MessageType::kKeepalive};
  static_assert(std::size(kBgp) == cov::kBgpPacketKinds);
  for (unsigned i = 0; i < std::size(kBgp); ++i)
    EXPECT_EQ(static_cast<unsigned>(kBgp[i]), i + 1);
}

TEST(HookGuard, EveryCrossStateEdgeIsDeclaredAndNamed) {
  for (const auto p : {cov::Proto::kOspf, cov::Proto::kBgp}) {
    const unsigned states = cov::fsm_state_count(p);
    for (unsigned from = 0; from < states; ++from) {
      for (unsigned to = 0; to < states; ++to) {
        const auto id = cov::fsm_edge(p, from, to);
        if (from == to) {
          EXPECT_FALSE(cov::declared(id));  // set_*_state skips self-edges
        } else {
          EXPECT_TRUE(cov::declared(id));
          EXPECT_FALSE(cov::feature_name(id).empty());
        }
      }
    }
  }
}

/// The audit-backed guard: full default audits over all three protocols,
/// then every feature the hooks recorded must be a declared FeatureId.
class HookGuardAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    cov::CoverageMap::instance().reset();
    cov::set_enabled(true);
  }
  void TearDown() override {
    cov::set_enabled(false);
    cov::CoverageMap::instance().reset();
  }
};

TEST_F(HookGuardAudit, DefaultAuditsRecordOnlyDeclaredFeatures) {
  // OSPF: the paper's full default audit (4 topologies x 3 seeds x 180s).
  audit_ospf({ospf::frr_profile(), ospf::bird_profile()}, ExperimentConfig{},
             mining::ospf_type_scheme());

  // BGP: the motivating-incident setting, long-path stimulus included.
  ExperimentConfig bgp_config;
  bgp_config.topologies = {topo::Spec{topo::Kind::kLinear, 3}};
  bgp_config.seeds = {1};
  bgp_config.duration = 300s;
  audit_bgp({bgp::bgp_robust_profile(), bgp::bgp_fragile_profile()},
            bgp_config, mining::bgp_message_scheme());

  // RIP: the variant-difference setting.
  ExperimentConfig rip_config;
  rip_config.topologies = {topo::Spec{topo::Kind::kLinear, 3}};
  rip_config.seeds = {1};
  rip_config.duration = 240s;
  audit_rip({rip::rip_classic_profile(), rip::rip_eager_profile()},
            rip_config, mining::rip_command_scheme());

  const auto seen = cov::CoverageMap::instance().seen_ids();
  ASSERT_FALSE(seen.empty());
  std::uint64_t fsm_edges = 0;
  for (const auto id : seen) {
    EXPECT_TRUE(cov::declared(id))
        << "hook recorded undeclared feature 0x" << std::hex << id;
    EXPECT_FALSE(cov::feature_name(id).empty());
    fsm_edges += cov::feature_class(id) == cov::FeatureClass::kFsmEdge;
  }
  EXPECT_GT(fsm_edges, 0u);

  // The canonical adjacency bring-up edges must all have been walked.
  using cov::fsm_edge;
  using P = cov::Proto;
  for (const auto id :
       {fsm_edge(P::kOspf, 0, 1), fsm_edge(P::kOspf, 1, 2),
        fsm_edge(P::kOspf, 2, 3), fsm_edge(P::kOspf, 3, 4),
        fsm_edge(P::kOspf, 4, 5), fsm_edge(P::kOspf, 5, 6),
        fsm_edge(P::kBgp, 0, 1), fsm_edge(P::kBgp, 1, 2),
        fsm_edge(P::kBgp, 2, 3)}) {
    EXPECT_TRUE(std::binary_search(seen.begin(), seen.end(), id))
        << "expected audit to walk " << cov::feature_name(id);
  }
}

}  // namespace
}  // namespace nidkit
