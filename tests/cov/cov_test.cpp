#include "cov/cov.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace nidkit::cov {
namespace {

TEST(FeatureIdTest, EncodingPacksClassAndPayload) {
  const FeatureId edge = fsm_edge(Proto::kOspf, 3, 4);
  EXPECT_EQ(feature_class(edge), FeatureClass::kFsmEdge);
  EXPECT_EQ(edge & 0xFFFFFF, (1u << 16) | (3u << 8) | 4u);

  const FeatureId pair = packet_pair(Proto::kBgp, 2, 3);
  EXPECT_EQ(feature_class(pair), FeatureClass::kPacketPair);
  EXPECT_EQ(pair & 0xFFFFFF, (3u << 16) | (2u << 8) | 3u);

  EXPECT_EQ(feature_class(path_marker(OspfMarker::kRetransmission)),
            FeatureClass::kPathMarker);
  EXPECT_EQ(feature_class(lsa_lifecycle(LsaEvent::kRefresh)),
            FeatureClass::kLsaLifecycle);
  EXPECT_EQ(feature_class(chaos(ChaosClass::kLoss)), FeatureClass::kChaos);
}

TEST(FeatureIdTest, DistinctFeaturesGetDistinctIds) {
  std::vector<FeatureId> all;
  for (unsigned f = 0; f < kOspfFsmStates; ++f)
    for (unsigned t = 0; t < kOspfFsmStates; ++t)
      if (f != t) all.push_back(fsm_edge(Proto::kOspf, f, t));
  for (unsigned f = 0; f < kBgpFsmStates; ++f)
    for (unsigned t = 0; t < kBgpFsmStates; ++t)
      if (f != t) all.push_back(fsm_edge(Proto::kBgp, f, t));
  for (unsigned r = 1; r <= kOspfPacketKinds; ++r)
    for (unsigned s = 1; s <= kOspfPacketKinds; ++s)
      all.push_back(packet_pair(Proto::kOspf, r, s));
  for (unsigned m = 1; m <= kOspfMarkers; ++m)
    all.push_back(path_marker(Proto::kOspf, m));
  for (unsigned e = 1; e <= kLsaEvents; ++e)
    all.push_back(make_feature(FeatureClass::kLsaLifecycle, e));
  for (unsigned c = 1; c <= kChaosClasses; ++c)
    all.push_back(make_feature(FeatureClass::kChaos, c));

  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  for (const auto id : all) EXPECT_TRUE(declared(id)) << feature_name(id);
}

TEST(FeatureIdTest, DeclaredRejectsOutOfUniverseIds) {
  // Self-transitions are not edges: set_*_state early-returns on them.
  EXPECT_FALSE(declared(fsm_edge(Proto::kOspf, 2, 2)));
  // Out-of-range states / kinds / markers.
  EXPECT_FALSE(declared(fsm_edge(Proto::kOspf, 7, 0)));
  EXPECT_FALSE(declared(fsm_edge(Proto::kBgp, 0, 4)));
  // RIP has no peer FSM.
  EXPECT_FALSE(declared(fsm_edge(Proto::kRip, 0, 1)));
  // Packet kinds are 1-based.
  EXPECT_FALSE(declared(packet_pair(Proto::kOspf, 0, 1)));
  EXPECT_FALSE(declared(packet_pair(Proto::kOspf, 1, 6)));
  EXPECT_FALSE(declared(packet_pair(Proto::kRip, 3, 1)));
  EXPECT_FALSE(declared(path_marker(Proto::kOspf, 0)));
  EXPECT_FALSE(declared(path_marker(Proto::kOspf, kOspfMarkers + 1)));
  EXPECT_FALSE(declared(make_feature(FeatureClass::kLsaLifecycle, 0)));
  EXPECT_FALSE(declared(make_feature(FeatureClass::kLsaLifecycle, 4)));
  EXPECT_FALSE(declared(make_feature(FeatureClass::kChaos, 7)));
  // Bad protocol / bad class byte.
  EXPECT_FALSE(declared(fsm_edge(static_cast<Proto>(4), 0, 1)));
  EXPECT_FALSE(declared(make_feature(static_cast<FeatureClass>(6), 1)));
  EXPECT_FALSE(declared(0));
}

TEST(FeatureIdTest, NamesAreStableAndHumanReadable) {
  EXPECT_EQ(feature_name(fsm_edge(Proto::kOspf, 3, 4)),
            "fsm.ospf.ExStart>Exchange");
  EXPECT_EQ(feature_name(fsm_edge(Proto::kBgp, 0, 1)),
            "fsm.bgp.Idle>OpenSent");
  EXPECT_EQ(feature_name(packet_pair(Proto::kOspf, 1, 2)),
            "pair.ospf.Hello>Dbd");
  EXPECT_EQ(feature_name(packet_pair(Proto::kBgp, 2, 3)),
            "pair.bgp.Update>Notification");
  EXPECT_EQ(feature_name(packet_pair(Proto::kRip, 1, 2)),
            "pair.rip.Request>Response");
  EXPECT_EQ(feature_name(path_marker(OspfMarker::kRetransmission)),
            "path.ospf.retransmission");
  EXPECT_EQ(feature_name(path_marker(BgpMarker::kSessionReset)),
            "path.bgp.session_reset");
  EXPECT_EQ(feature_name(path_marker(RipMarker::kTriggeredUpdate)),
            "path.rip.triggered_update");
  EXPECT_EQ(feature_name(lsa_lifecycle(LsaEvent::kMaxAgeFlush)),
            "lsa.maxage_flush");
  EXPECT_EQ(feature_name(chaos(ChaosClass::kLoss)), "chaos.loss");
  // Undeclared ids name to nothing.
  EXPECT_EQ(feature_name(fsm_edge(Proto::kOspf, 2, 2)), "");
}

TEST(FeatureIdTest, UniverseSizesMatchTheDeclaredTaxonomy) {
  // FSM edges count from != to only: OSPF 7*6, BGP 4*3, RIP none.
  EXPECT_EQ(universe_size(FeatureClass::kFsmEdge), 42u + 12u);
  // Packet pairs: OSPF 5*5, RIP 2*2, BGP 4*4.
  EXPECT_EQ(universe_size(FeatureClass::kPacketPair), 25u + 4u + 16u);
  EXPECT_EQ(universe_size(FeatureClass::kPathMarker), 6u + 3u + 3u);
  EXPECT_EQ(universe_size(FeatureClass::kLsaLifecycle), 3u);
  EXPECT_EQ(universe_size(FeatureClass::kChaos), 6u);
  EXPECT_EQ(universe_size(), 54u + 45u + 12u + 3u + 6u);
}

TEST(CoverageVectorTest, FinalizeSortsDedupsAndIsIdempotent) {
  CoverageVector v;
  v.add(chaos(ChaosClass::kLoss));
  v.add(fsm_edge(Proto::kOspf, 0, 1));
  v.add(chaos(ChaosClass::kLoss));
  v.add(fsm_edge(Proto::kOspf, 0, 1));
  v.finalize();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_TRUE(std::is_sorted(v.ids().begin(), v.ids().end()));
  const auto once = v.ids();
  v.finalize();
  EXPECT_EQ(v.ids(), once);

  CoverageVector empty;
  empty.finalize();
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(v == empty);
}

class CoverageMapTest : public ::testing::Test {
 protected:
  void SetUp() override { CoverageMap::instance().reset(); }
  void TearDown() override { CoverageMap::instance().reset(); }

  static CoverageVector vec(std::initializer_list<FeatureId> ids) {
    CoverageVector v;
    for (const auto id : ids) v.add(id);
    v.finalize();
    return v;
  }
};

TEST_F(CoverageMapTest, MergeTracksNoveltyCurveAndClassCounts) {
  auto& map = CoverageMap::instance();
  EXPECT_EQ(map.scenarios(), 0u);
  EXPECT_EQ(map.features_seen(), 0u);

  const auto a = fsm_edge(Proto::kOspf, 0, 1);
  const auto b = packet_pair(Proto::kOspf, 1, 1);
  const auto c = chaos(ChaosClass::kDelay);

  EXPECT_EQ(map.merge_scenario(vec({a, b})), 2u);
  EXPECT_EQ(map.merge_scenario(vec({a, b})), 0u);  // nothing new
  EXPECT_EQ(map.merge_scenario(vec({b, c})), 1u);  // c is novel

  EXPECT_EQ(map.scenarios(), 3u);
  EXPECT_EQ(map.features_seen(), 3u);
  EXPECT_EQ(map.class_seen(FeatureClass::kFsmEdge), 1u);
  EXPECT_EQ(map.class_seen(FeatureClass::kPacketPair), 1u);
  EXPECT_EQ(map.class_seen(FeatureClass::kChaos), 1u);
  EXPECT_EQ(map.class_seen(FeatureClass::kLsaLifecycle), 0u);
  EXPECT_EQ(map.novelty(), (std::vector<std::uint64_t>{2, 0, 1}));
  EXPECT_EQ(map.curve(), (std::vector<std::uint64_t>{2, 2, 3}));
  const auto seen = map.seen_ids();
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(CoverageMapTest, ResetDropsCoverageButNotTheEnabledFlag) {
  auto& map = CoverageMap::instance();
  map.merge_scenario(vec({chaos(ChaosClass::kChurn)}));
  const bool was = enabled();
  set_enabled(true);
  map.reset();
  EXPECT_EQ(map.scenarios(), 0u);
  EXPECT_EQ(map.features_seen(), 0u);
  EXPECT_TRUE(map.curve().empty());
  EXPECT_TRUE(enabled());
  set_enabled(was);
}

TEST_F(CoverageMapTest, CovJsonIsExactlyOneLine) {
  auto& map = CoverageMap::instance();
  map.merge_scenario(vec({fsm_edge(Proto::kOspf, 0, 1),
                          lsa_lifecycle(LsaEvent::kOriginate)}));
  map.merge_scenario(vec({fsm_edge(Proto::kOspf, 0, 1)}));

  const std::string line = map.cov_json();
  // The whole section lives on one line so CI can `grep '"cov":' | cmp`.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.rfind("\"cov\":{", 0), 0u);
  EXPECT_NE(line.find("\"scenarios\":2"), std::string::npos);
  EXPECT_NE(line.find("\"features_seen\":2"), std::string::npos);
  EXPECT_NE(line.find("\"universe\":120"), std::string::npos);
  EXPECT_NE(line.find("\"fsm\":{\"seen\":1,\"universe\":54}"),
            std::string::npos);
  EXPECT_NE(line.find("\"novelty\":[2,0]"), std::string::npos);
  EXPECT_NE(line.find("\"curve\":[2,2]"), std::string::npos);
  EXPECT_NE(line.find("\"fsm.ospf.Down>Init\""), std::string::npos);
  EXPECT_NE(line.find("\"lsa.originate\""), std::string::npos);
}

TEST_F(CoverageMapTest, CoverageJsonIsLineStructured) {
  auto& map = CoverageMap::instance();
  map.merge_scenario(vec({chaos(ChaosClass::kReorder)}));
  const std::string doc = map.coverage_json();
  EXPECT_EQ(doc, "{\n\"version\":1,\n" + map.cov_json() + "\n}\n");
}

}  // namespace
}  // namespace nidkit::cov
