// The determinism half of the coverage contract: the accumulated
// CoverageMap — seen set, per-scenario novelty scores and saturation
// curve — is bit-identical across worker counts and cache temperature.
// Workers never touch the map; every scenario's CoverageVector merges in
// canonical index order on one thread, and cached entries replay the
// vector they stored instead of re-simulating.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "cov/cov.hpp"
#include "harness/experiment.hpp"

namespace nidkit::harness {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class CovDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("nidkit_cov_det_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name())))
               .string();
    fs::remove_all(dir_);
    cov::CoverageMap::instance().reset();
    cov::set_enabled(true);
  }
  void TearDown() override {
    cov::set_enabled(false);
    cov::CoverageMap::instance().reset();
    fs::remove_all(dir_);
  }

  ExperimentConfig config(std::size_t jobs, bool cached) const {
    ExperimentConfig c;
    c.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                    topo::Spec{topo::Kind::kMesh, 3}};
    c.seeds = {1, 2};
    c.duration = 90s;
    c.jobs = jobs;
    if (cached) c.cache_dir = dir_;
    return c;
  }

  /// Runs a two-implementation audit from a clean map and returns the
  /// deterministic `"cov":{...}` snapshot line it produced.
  std::string audit_cov_json(std::size_t jobs, bool cached,
                             ExecReport* exec = nullptr) {
    cov::CoverageMap::instance().reset();
    const auto audit =
        audit_ospf({ospf::frr_profile(), ospf::bird_profile()},
                   config(jobs, cached), mining::ospf_type_scheme());
    if (exec) *exec = audit.exec;
    return cov::CoverageMap::instance().cov_json();
  }

  std::string dir_;
};

TEST_F(CovDeterminismTest, CovSectionIdenticalAcrossWorkerCounts) {
  const auto one = audit_cov_json(1, /*cached=*/false);
  // The run actually exercised behavior — a vacuous comparison of two
  // empty sections would pass without testing anything.
  EXPECT_NE(one.find("\"fsm.ospf.Down>Init\""), std::string::npos);
  EXPECT_NE(one.find("\"pair.ospf."), std::string::npos);
  EXPECT_NE(one.find("\"lsa.originate\""), std::string::npos);
  EXPECT_EQ(one, audit_cov_json(4, /*cached=*/false));
  EXPECT_EQ(one, audit_cov_json(8, /*cached=*/false));
}

TEST_F(CovDeterminismTest, WarmCacheReplaysIdenticalCovSection) {
  ExecReport cold_exec, warm_exec;
  const auto cold = audit_cov_json(2, /*cached=*/true, &cold_exec);
  EXPECT_EQ(cold_exec.cache_misses, 8u);  // 2 impls x 2 topos x 2 seeds
  EXPECT_TRUE(cold_exec.cov_enabled);
  EXPECT_GT(cold_exec.cov_features, 0u);
  EXPECT_GT(cold_exec.cov_novel, 0u);

  const auto warm = audit_cov_json(2, /*cached=*/true, &warm_exec);
  EXPECT_EQ(warm_exec.cache_hits, 8u);
  EXPECT_EQ(warm_exec.tasks_run, 0u);  // nothing re-simulated: pure replay
  EXPECT_EQ(warm_exec.cov_features, cold_exec.cov_features);

  const auto uncached = audit_cov_json(1, /*cached=*/false);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, uncached);
}

TEST_F(CovDeterminismTest, AuditRecordsOnlyDeclaredFeatures) {
  audit_cov_json(2, /*cached=*/false);
  const auto seen = cov::CoverageMap::instance().seen_ids();
  EXPECT_GT(seen.size(), 0u);
  for (const auto id : seen) {
    EXPECT_TRUE(cov::declared(id)) << "undeclared feature 0x" << std::hex
                                   << id;
    EXPECT_FALSE(cov::feature_name(id).empty());
  }
  // Coverage never exceeds the declared universe.
  EXPECT_LE(cov::CoverageMap::instance().features_seen(),
            cov::universe_size());
}

TEST_F(CovDeterminismTest, SaturationCurveIsMonotoneAndEndsAtTotal) {
  audit_cov_json(2, /*cached=*/false);
  const auto& map = cov::CoverageMap::instance();
  const auto curve = map.curve();
  const auto novelty = map.novelty();
  ASSERT_EQ(curve.size(), 8u);  // one point per scenario, canonical order
  ASSERT_EQ(novelty.size(), 8u);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i], prev + novelty[i]);
    EXPECT_GE(curve[i], prev);
    prev = curve[i];
  }
  EXPECT_EQ(curve.back(), map.features_seen());
}

TEST_F(CovDeterminismTest, DisabledMapStaysEmpty) {
  cov::set_enabled(false);
  audit_ospf({ospf::frr_profile(), ospf::bird_profile()},
             config(4, /*cached=*/false), mining::ospf_type_scheme());
  const auto& map = cov::CoverageMap::instance();
  EXPECT_EQ(map.scenarios(), 0u);
  EXPECT_EQ(map.features_seen(), 0u);
  EXPECT_TRUE(map.curve().empty());
}

}  // namespace
}  // namespace nidkit::harness
