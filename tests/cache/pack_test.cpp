// Pack-file + manifest warm path: compaction lifecycle, corruption and
// staleness degradation, batched lookups, and cross-process coherence.
//
// The invariant every test here leans on: the manifest is an accelerator,
// never an authority. Whatever is wrong with the packs — truncated
// segment, flipped bit, record pointing past EOF, manifest older than a
// newer loose write, version skew — a lookup returns either the correct
// entry (from pack or loose) or a miss. Never wrong data.
#include "cache/pack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "cache/key.hpp"
#include "cache/store.hpp"
#include "harness/scenario.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define NIDKIT_PACK_TEST_HAVE_FORK 1
#endif

namespace nidkit::cache {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr auto kSR = mining::RelationDirection::kSendToRecv;

class PackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("nidkit_pack_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static ScenarioKey key_for_seed(std::uint64_t seed) {
    harness::Scenario s;
    s.seed = seed;
    return scenario_key(s, {}, "type", PayloadKind::kMinedRelations);
  }

  static Entry entry_for_seed(std::uint64_t seed) {
    Entry entry;
    entry.kind = PayloadKind::kMinedRelations;
    entry.summary.routers = seed + 1;
    entry.summary.converged = true;
    entry.relations.add(kSR, {"LSU", "LSAck"}, SimTime{1s}, seed, seed + 1);
    entry.metrics.set("sim.events_executed", 100 + seed);
    return entry;
  }

  /// Seeds `n` loose entries via the normal write path.
  std::vector<ScenarioKey> seed_entries(std::size_t n) {
    Store store(dir_);
    std::vector<ScenarioKey> keys;
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(key_for_seed(i));
      store.put(keys.back(), entry_for_seed(i));
    }
    return keys;
  }

  fs::path loose_path(const ScenarioKey& key) {
    return fs::path(dir_) / key.prefix() / (key.hex() + ".nidc");
  }

  fs::path pack_path() {
    for (const auto& e : fs::directory_iterator(fs::path(dir_) / kPacksDirName))
      if (e.path().extension() == kPackExtension) return e.path();
    return {};
  }

  fs::path manifest_path() {
    return fs::path(dir_) / kPacksDirName / kManifestName;
  }

  std::string dir_;
};

// ---- compaction lifecycle ----

TEST_F(PackTest, CompactRoundtripsEveryEntry) {
  const auto keys = seed_entries(8);
  const auto result = compact(dir_);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packed, 8u);
  EXPECT_EQ(result->carried, 0u);
  EXPECT_EQ(result->skipped, 0u);
  EXPECT_EQ(result->entries, 8u);
  EXPECT_EQ(result->segments, 1u);

  // Loose originals are gone; every entry is served from the pack.
  Store store(dir_);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto entry = store.get(keys[i]);
    ASSERT_TRUE(entry.has_value()) << i;
    EXPECT_EQ(entry->summary.routers, i + 1);
    EXPECT_FALSE(fs::exists(loose_path(keys[i]))) << i;
  }
  EXPECT_EQ(store.counters().pack_hits, keys.size());
  EXPECT_EQ(store.counters().disk_hits, 0u);
}

TEST_F(PackTest, PostCompactWritesStayLooseUntilNextCompact) {
  seed_entries(3);
  ASSERT_TRUE(compact(dir_).has_value());

  Store writer(dir_);
  const auto fresh = key_for_seed(99);
  writer.put(fresh, entry_for_seed(99));

  // The new entry is loose; a reader finds it behind the pack layer.
  Store reader(dir_);
  ASSERT_TRUE(reader.get(fresh).has_value());
  EXPECT_EQ(reader.counters().disk_hits, 1u);

  // The next compact folds it in.
  const auto second = compact(dir_);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->packed, 1u);
  EXPECT_EQ(second->carried, 3u);
  EXPECT_EQ(second->entries, 4u);
}

TEST_F(PackTest, CompactCarriesSidecarHitsAndFoldsHitLog) {
  const auto keys = seed_entries(2);
  {
    // Two loose (sidecar) hits on key 0 through a fresh store.
    Store store(dir_);
    ASSERT_TRUE(store.get(keys[0]).has_value());
  }
  {
    Store store(dir_);
    ASSERT_TRUE(store.get(keys[0]).has_value());
  }
  ASSERT_TRUE(compact(dir_).has_value());

  // Sidecar counters carried into the manifest.
  auto infos = Store::ls(dir_);
  ASSERT_EQ(infos.size(), 2u);
  const auto hits_of = [&](const ScenarioKey& key) -> std::uint64_t {
    for (const auto& info : infos)
      if (info.key == key) return info.hits;
    return ~0ull;
  };
  EXPECT_EQ(hits_of(keys[0]), 2u);
  EXPECT_EQ(hits_of(keys[1]), 0u);

  // A packed hit lands in the hit log (flushed when the store closes)...
  {
    Store store(dir_);
    ASSERT_TRUE(store.get(keys[1]).has_value());
  }
  EXPECT_TRUE(fs::exists(fs::path(dir_) / kPacksDirName / kHitLogName));
  infos = Store::ls(dir_);
  EXPECT_EQ(hits_of(keys[1]), 1u);

  // ...and the next compact folds the log into the manifest and drops it.
  ASSERT_TRUE(compact(dir_).has_value());
  EXPECT_FALSE(fs::exists(fs::path(dir_) / kPacksDirName / kHitLogName));
  infos = Store::ls(dir_);
  EXPECT_EQ(hits_of(keys[0]), 2u);
  EXPECT_EQ(hits_of(keys[1]), 1u);
}

TEST_F(PackTest, SidecarsOfPackedEntriesAreRemoved) {
  const auto keys = seed_entries(2);
  {
    Store store(dir_);
    ASSERT_TRUE(store.get(keys[0]).has_value());  // creates a sidecar
  }
  std::size_t sidecars = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir_))
    if (e.path().extension() == ".hits") ++sidecars;
  ASSERT_EQ(sidecars, 1u);

  ASSERT_TRUE(compact(dir_).has_value());
  for (const auto& e : fs::recursive_directory_iterator(dir_))
    EXPECT_NE(e.path().extension(), ".hits") << e.path();
}

// ---- corruption and staleness: correct entry or miss, never wrong ----

TEST_F(PackTest, TruncatedPackDecodesAsMiss) {
  const auto keys = seed_entries(4);
  ASSERT_TRUE(compact(dir_).has_value());
  const auto pack = pack_path();
  ASSERT_FALSE(pack.empty());
  fs::resize_file(pack, fs::file_size(pack) / 2);

  Store store(dir_);
  std::size_t served = 0;
  for (const auto& key : keys) {
    const auto entry = store.get(key);
    if (entry) {
      ++served;  // entries before the cut still decode
      EXPECT_TRUE(entry->summary.converged);
    }
  }
  EXPECT_LT(served, keys.size());
  EXPECT_GT(store.counters().misses, 0u);
  EXPECT_GT(store.counters().bad_entries, 0u);
}

TEST_F(PackTest, BitFlippedEntryDecodesAsMissOrCorrect) {
  const auto keys = seed_entries(4);
  ASSERT_TRUE(compact(dir_).has_value());
  const auto pack = pack_path();
  std::fstream f(pack, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(fs::file_size(pack) / 3));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-1, std::ios::cur);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();

  Store store(dir_);
  std::size_t misses = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto entry = store.get(keys[i]);
    if (!entry) {
      ++misses;
      continue;
    }
    // If it decoded, it must be the right entry for its key.
    EXPECT_EQ(entry->summary.routers, i + 1) << i;
  }
  EXPECT_GE(misses, 1u);
}

TEST_F(PackTest, ManifestRecordPastEofIsAMiss) {
  seed_entries(2);
  ASSERT_TRUE(compact(dir_).has_value());
  auto packs = PackSet::open(dir_);
  ASSERT_TRUE(packs.has_value());
  const auto first_key = packs->records()[0].key;
  const auto second_key = packs->records()[1].key;
  packs.reset();

  // Patch the first record's offset field in the manifest bytes to point
  // far past the end of the pack segment. Layout: u32 magic, u32 version,
  // u32 pack_count, per-pack [u16 len][name][u64 size], u32 record_count,
  // then records of [16B key][u8 kind][u32 pack][u64 offset]...
  std::fstream f(manifest_path(),
                 std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(12);
  std::uint8_t len_be[2];
  f.read(reinterpret_cast<char*>(len_be), 2);
  const std::size_t name_len = (len_be[0] << 8) | len_be[1];
  const std::streamoff offset_pos =
      12 + 2 + static_cast<std::streamoff>(name_len) + 8 + 4 + 16 + 1 + 4;
  const std::uint8_t huge[8] = {0, 0, 0, 0, 0x40, 0, 0, 0};  // 1 GiB
  f.seekp(offset_pos);
  f.write(reinterpret_cast<const char*>(huge), 8);
  f.close();

  Store store(dir_);
  EXPECT_FALSE(store.get(first_key).has_value());
  EXPECT_GT(store.counters().bad_entries, 0u);
  // The other record still serves.
  EXPECT_TRUE(store.get(second_key).has_value());
}

TEST_F(PackTest, ManifestOlderThanNewerLooseWriteServesLooseEntry) {
  const auto key = key_for_seed(7);
  {
    Store store(dir_);
    store.put(key, entry_for_seed(7));
  }
  ASSERT_TRUE(compact(dir_).has_value());

  // A newer loose write for the same key (e.g. a re-run after prune on a
  // different machine restored the entry): the loose copy wins.
  Entry newer = entry_for_seed(7);
  newer.summary.frames_delivered = 777;
  {
    Store store(dir_);
    store.put(key, newer);
  }
  Store reader(dir_);
  // Pack-first lookup is only safe because entries are content-addressed:
  // same key ⇒ same payload. Here the payloads differ, so the reader must
  // notice the loose file. It does, because loose entries beat the pack
  // when both exist... verify via ls, which prefers the loose copy.
  const auto infos = Store::ls(dir_);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_FALSE(infos[0].packed);
}

TEST_F(PackTest, CorruptManifestDegradesToLoosePath) {
  const auto keys = seed_entries(2);
  // Keep loose copies: corrupt a manifest that points at a real pack.
  ASSERT_TRUE(compact(dir_).has_value());
  {
    std::ofstream f(manifest_path(), std::ios::binary | std::ios::trunc);
    f << "not a manifest";
  }
  EXPECT_FALSE(PackSet::open(dir_).has_value());
  // Packed entries are unreachable (their loose files were consumed by
  // compact) — but lookups degrade to miss, never crash or serve garbage.
  Store store(dir_);
  EXPECT_FALSE(store.get(keys[0]).has_value());
  EXPECT_EQ(store.counters().bad_entries, 0u);

  // A fresh write + compact recovers the directory.
  store.put(keys[0], entry_for_seed(0));
  ASSERT_TRUE(compact(dir_).has_value());
  Store recovered(dir_);
  EXPECT_TRUE(recovered.get(keys[0]).has_value());
}

TEST_F(PackTest, VersionSkewedManifestFailsOpen) {
  seed_entries(1);
  ASSERT_TRUE(compact(dir_).has_value());
  // Flip the version field (bytes 4..8, big-endian) to a future version.
  std::fstream f(manifest_path(),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(7);
  const char v = 99;
  f.write(&v, 1);
  f.close();
  EXPECT_FALSE(PackSet::open(dir_).has_value());
}

TEST_F(PackTest, RandomCorruptionNeverServesWrongData) {
  const auto keys = seed_entries(6);
  ASSERT_TRUE(compact(dir_).has_value());
  const auto pack = pack_path();
  const auto manifest = manifest_path();

  std::mt19937_64 rng(::testing::UnitTest::GetInstance()->random_seed());
  for (int trial = 0; trial < 20; ++trial) {
    // Corrupt a random byte of a random pack artifact.
    const bool hit_pack = (rng() & 1) != 0;
    const auto& victim = hit_pack ? pack : manifest;
    const auto size = fs::file_size(victim);
    const auto offset = static_cast<std::streamoff>(rng() % size);
    char original = 0;
    {
      std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
      f.seekg(offset);
      f.read(&original, 1);
      const char flipped =
          static_cast<char>(original ^ static_cast<char>(1 + rng() % 255));
      f.seekp(offset);
      f.write(&flipped, 1);
    }

    Store store(dir_);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto entry = store.get(keys[i]);
      if (!entry) continue;  // miss is always acceptable
      EXPECT_EQ(entry->summary.routers, i + 1)
          << "trial " << trial << " served wrong data for key " << i;
      EXPECT_EQ(entry->metrics.get("sim.events_executed"), 100 + i);
    }

    // Restore the byte for the next trial.
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(offset);
    f.write(&original, 1);
  }
}

// ---- maintenance ----

TEST_F(PackTest, PruneDropsPackedEntriesAndRepacks) {
  seed_entries(4);
  ASSERT_TRUE(compact(dir_).has_value());
  // Age 0: everything is "too old" and the pack directory disappears.
  EXPECT_EQ(Store::prune(dir_, 0.0), 4u);
  EXPECT_FALSE(fs::exists(fs::path(dir_) / kPacksDirName));
  EXPECT_TRUE(Store::ls(dir_).empty());
}

TEST_F(PackTest, ClearRemovesPacksAndLooseAlike) {
  seed_entries(3);
  ASSERT_TRUE(compact(dir_).has_value());
  {
    Store store(dir_);
    store.put(key_for_seed(50), entry_for_seed(50));  // one loose extra
  }
  EXPECT_EQ(Store::clear(dir_), 4u);
  EXPECT_FALSE(fs::exists(fs::path(dir_) / kPacksDirName));
  EXPECT_TRUE(Store::ls(dir_).empty());
}

TEST_F(PackTest, LsMergesPackedAndLooseWithoutDuplicates) {
  const auto keys = seed_entries(3);
  ASSERT_TRUE(compact(dir_).has_value());
  {
    Store store(dir_);
    store.put(key_for_seed(40), entry_for_seed(40));
    // Simulate the compaction crash window: re-write a packed key loose.
    store.put(keys[0], entry_for_seed(0));
  }
  const auto infos = Store::ls(dir_);
  EXPECT_EQ(infos.size(), 4u);  // 3 packed + 1 new, keys[0] listed once
  std::size_t packed = 0;
  for (const auto& info : infos) {
    EXPECT_TRUE(info.valid);
    if (info.packed) ++packed;
  }
  EXPECT_EQ(packed, 2u);  // keys[1], keys[2]; keys[0] reports its loose copy
}

// ---- batched lookups ----

TEST_F(PackTest, GetBatchPartitionsAndPreservesOrder) {
  const auto keys = seed_entries(5);
  ASSERT_TRUE(compact(dir_).has_value());
  Store store(dir_);
  store.put(key_for_seed(80), entry_for_seed(80));  // loose (and in memory)

  std::vector<ScenarioKey> batch_keys = {keys[3], key_for_seed(80),
                                         key_for_seed(81), keys[1]};
  const auto batch = store.get_batch(batch_keys);
  ASSERT_EQ(batch.entries.size(), 4u);
  ASSERT_TRUE(batch.entries[0].has_value());
  EXPECT_EQ(batch.entries[0]->summary.routers, 4u);  // keys[3]
  ASSERT_TRUE(batch.entries[1].has_value());
  EXPECT_EQ(batch.entries[1]->summary.routers, 81u);  // seed 80
  EXPECT_FALSE(batch.entries[2].has_value());         // never stored
  ASSERT_TRUE(batch.entries[3].has_value());
  EXPECT_EQ(batch.entries[3]->summary.routers, 2u);  // keys[1]

  EXPECT_EQ(batch.pack_hits, 2u);
  EXPECT_EQ(batch.loose_hits, 1u);  // the memory hit counts as loose
  EXPECT_EQ(batch.misses, 1u);
}

TEST_F(PackTest, GetBatchAgreesWithSingleGets) {
  const auto keys = seed_entries(6);
  ASSERT_TRUE(compact(dir_).has_value());

  Store batch_store(dir_);
  std::vector<ScenarioKey> shuffled = keys;
  std::reverse(shuffled.begin(), shuffled.end());
  const auto batch = batch_store.get_batch(shuffled);

  Store single_store(dir_);
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    const auto single = single_store.get(shuffled[i]);
    ASSERT_TRUE(single.has_value());
    ASSERT_TRUE(batch.entries[i].has_value());
    EXPECT_EQ(encode_entry(shuffled[i], *single),
              encode_entry(shuffled[i], *batch.entries[i]));
  }
  EXPECT_EQ(batch.pack_hits, keys.size());
  EXPECT_EQ(batch.misses, 0u);
}

// ---- cross-process coherence ----

TEST_F(PackTest, ReaderSurvivesConcurrentCompact) {
  const auto keys = seed_entries(4);
  Store reader(dir_);
  ASSERT_TRUE(reader.get(keys[0]).has_value());  // loose hit, packs probed

  // Another "process" compacts the directory out from under the reader.
  ASSERT_TRUE(compact(dir_).has_value());

  // The loose files are gone; the reader re-stats the manifest on the
  // would-be miss and serves from the new pack set.
  for (const auto& key : keys)
    EXPECT_TRUE(reader.get(key).has_value());
  EXPECT_EQ(reader.counters().misses, 0u);
  EXPECT_GT(reader.counters().pack_hits, 0u);
}

#if defined(NIDKIT_PACK_TEST_HAVE_FORK)
TEST_F(PackTest, TwoProcessReaderWriterSmoke) {
  const auto keys = seed_entries(4);
  ASSERT_TRUE(compact(dir_).has_value());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: hammer reads (packed) while the parent writes and compacts.
    Store store(dir_);
    std::size_t wrong = 0;
    for (int lap = 0; lap < 50; ++lap) {
      for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto entry = store.get(keys[i]);
        if (entry && entry->summary.routers != i + 1) ++wrong;
      }
    }
    _exit(wrong == 0 ? 0 : 1);
  }

  // Parent: interleave loose writes and compactions.
  for (int lap = 0; lap < 10; ++lap) {
    Store store(dir_);
    store.put(key_for_seed(100 + lap), entry_for_seed(100 + lap));
    ASSERT_TRUE(compact(dir_).has_value());
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child observed wrong data";

  // Everything the parent wrote is packed and servable.
  Store store(dir_);
  for (int lap = 0; lap < 10; ++lap)
    EXPECT_TRUE(store.get(key_for_seed(100 + lap)).has_value()) << lap;
}
#endif

}  // namespace
}  // namespace nidkit::cache
