// Format-version migration: coverage vectors ride inside cache entries
// as of kCacheFormatVersion 3. Entries from an older format decode as a
// miss (the migration path is "re-simulate and re-store"), compact
// reports them as version skew instead of corruption, and current-format
// entries round-trip their coverage bit-for-bit.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/key.hpp"
#include "cache/pack.hpp"
#include "cache/store.hpp"
#include "harness/scenario.hpp"

namespace nidkit::cache {
namespace {

namespace fs = std::filesystem;

class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("nidkit_migration_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static ScenarioKey key_for_seed(std::uint64_t seed) {
    harness::Scenario s;
    s.seed = seed;
    return scenario_key(s, {}, "type", PayloadKind::kMinedRelations);
  }

  static Entry covered_entry() {
    Entry entry;
    entry.kind = PayloadKind::kMinedRelations;
    entry.summary.routers = 2;
    entry.summary.converged = true;
    entry.metrics.set("sim.events_executed", 7);
    entry.coverage.add(cov::fsm_edge(cov::Proto::kOspf, 0, 1));
    entry.coverage.add(cov::packet_pair(cov::Proto::kOspf, 1, 1));
    entry.coverage.add(cov::chaos(cov::ChaosClass::kDelay));
    entry.coverage.finalize();
    return entry;
  }

  /// Re-frames `bytes` as an older format version. The version field is
  /// the second big-endian u32 (after the magic).
  static std::vector<std::uint8_t> with_version(std::vector<std::uint8_t> b,
                                                std::uint32_t version) {
    b[4] = static_cast<std::uint8_t>(version >> 24);
    b[5] = static_cast<std::uint8_t>(version >> 16);
    b[6] = static_cast<std::uint8_t>(version >> 8);
    b[7] = static_cast<std::uint8_t>(version);
    return b;
  }

  std::string dir_;
};

TEST_F(MigrationTest, FormatVersionIsThree) {
  // Coverage vectors entered the framing at version 3. Bump this (and
  // add a skew case below) the next time the entry layout changes.
  EXPECT_EQ(kCacheFormatVersion, 3u);
}

TEST_F(MigrationTest, CoverageRoundTripsThroughCodec) {
  const auto key = key_for_seed(1);
  const auto entry = covered_entry();
  const auto bytes = encode_entry(key, entry);
  const auto back = decode_entry(key, bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->coverage, entry.coverage);
  EXPECT_EQ(back->coverage.size(), 3u);
  EXPECT_EQ(peek_entry_format(bytes), kCacheFormatVersion);
}

TEST_F(MigrationTest, CoverageRoundTripsThroughTheStore) {
  const auto key = key_for_seed(2);
  {
    Store store(dir_);
    store.put(key, covered_entry());
  }
  Store fresh(dir_);  // disk path, not the memory cache
  const auto back = fresh.get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->coverage, covered_entry().coverage);
}

TEST_F(MigrationTest, OlderFormatEntryDecodesAsAMiss) {
  const auto key = key_for_seed(3);
  const auto bytes = encode_entry(key, covered_entry());
  const auto old = with_version(bytes, 2);
  EXPECT_EQ(peek_entry_format(old), 2u);
  EXPECT_FALSE(decode_entry(key, old).has_value());

  // Through the store: a version-2 file on disk is a miss, not an error.
  Store store(dir_);
  store.put(key, covered_entry());
  const auto path = fs::path(dir_) / key.prefix() / (key.hex() + ".nidc");
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(old.data()),
            static_cast<std::streamsize>(old.size()));
  }
  Store fresh(dir_);
  EXPECT_FALSE(fresh.get(key).has_value());
}

TEST_F(MigrationTest, LsReportsEachEntrysFormat) {
  Store store(dir_);
  const auto key = key_for_seed(4);
  store.put(key, covered_entry());
  const auto entries = Store::ls(dir_);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].format, kCacheFormatVersion);

  // Rewrite as version 2: ls still lists it, with the skewed format.
  const auto old = with_version(encode_entry(key, covered_entry()), 2);
  const auto path = fs::path(dir_) / key.prefix() / (key.hex() + ".nidc");
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(old.data()),
            static_cast<std::streamsize>(old.size()));
  }
  const auto after = Store::ls(dir_);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].format, 2u);
  EXPECT_FALSE(after[0].valid);
}

TEST_F(MigrationTest, CompactCountsVersionSkewSeparately) {
  Store store(dir_);
  const auto keep = key_for_seed(5);
  const auto skewed = key_for_seed(6);
  const auto junk = key_for_seed(7);
  store.put(keep, covered_entry());
  store.put(skewed, covered_entry());
  store.put(junk, covered_entry());

  const auto old = with_version(encode_entry(skewed, covered_entry()), 2);
  {
    std::ofstream f(fs::path(dir_) / skewed.prefix() / (skewed.hex() + ".nidc"),
                    std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(old.data()),
            static_cast<std::streamsize>(old.size()));
  }
  std::ofstream(fs::path(dir_) / junk.prefix() / (junk.hex() + ".nidc"),
                std::ios::binary | std::ios::trunc)
      << "not a cache entry";

  const auto result = compact(dir_);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packed, 1u);
  EXPECT_EQ(result->skipped, 1u);          // corrupt framing
  EXPECT_EQ(result->skipped_version, 1u);  // intact framing, old format

  // The packed current-format entry still replays its coverage.
  Store fresh(dir_);
  const auto back = fresh.get(keep);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->coverage, covered_entry().coverage);
}

}  // namespace
}  // namespace nidkit::cache
