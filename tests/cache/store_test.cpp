#include "cache/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/key.hpp"
#include "harness/scenario.hpp"

namespace nidkit::cache {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr auto kSR = mining::RelationDirection::kSendToRecv;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("nidkit_store_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static ScenarioKey key_for_seed(std::uint64_t seed) {
    harness::Scenario s;
    s.seed = seed;
    return scenario_key(s, {}, "type", PayloadKind::kMinedRelations);
  }

  static Entry sample_entry() {
    Entry entry;
    entry.kind = PayloadKind::kMinedRelations;
    entry.summary.routers = 3;
    entry.summary.converged = true;
    entry.summary.convergence_time_us = 42'000'000;
    entry.summary.frames_delivered = 123;
    entry.relations.add(kSR, {"LSU", "LSAck"}, SimTime{1s}, 5, 6);
    entry.metrics.set("sim.events_executed", 321);
    entry.metrics.set("ospf.tx_hello", 12);
    return entry;
  }

  std::string dir_;
};

TEST_F(StoreTest, MissThenPutThenMemoryHit) {
  Store store(dir_);
  const auto key = key_for_seed(1);
  EXPECT_FALSE(store.get(key).has_value());
  EXPECT_EQ(store.counters().misses, 1u);

  store.put(key, sample_entry());
  const auto back = store.get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->summary, sample_entry().summary);
  EXPECT_TRUE(back->relations.has(kSR, "LSU", "LSAck"));
  EXPECT_EQ(store.counters().memory_hits, 1u);
  EXPECT_EQ(store.counters().stores, 1u);
}

TEST_F(StoreTest, PersistsAcrossStoreInstances) {
  const auto key = key_for_seed(2);
  {
    Store store(dir_);
    store.put(key, sample_entry());
  }
  Store fresh(dir_);
  const auto back = fresh.get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(fresh.counters().disk_hits, 1u);
  EXPECT_EQ(back->summary, sample_entry().summary);
  // The scenario's obs delta rides along so cache hits can replay it.
  EXPECT_EQ(back->metrics, sample_entry().metrics);
  EXPECT_EQ(back->metrics.get("sim.events_executed"), 321u);
  const auto* stats = back->relations.find(kSR, {"LSU", "LSAck"});
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->first_seen, SimTime{1s});
  EXPECT_EQ(stats->example_stimulus, 5u);

  // The disk hit was promoted: a second lookup is a memory hit.
  EXPECT_TRUE(fresh.get(key).has_value());
  EXPECT_EQ(fresh.counters().memory_hits, 1u);
}

TEST_F(StoreTest, EntryLandsInShardedLayout) {
  const auto key = key_for_seed(3);
  Store store(dir_);
  store.put(key, sample_entry());
  const auto path = fs::path(dir_) / key.prefix() / (key.hex() + ".nidc");
  EXPECT_TRUE(fs::exists(path));
  // No temp droppings left behind.
  for (const auto& e : fs::recursive_directory_iterator(dir_)) {
    if (e.is_regular_file()) {
      EXPECT_EQ(e.path().extension(), ".nidc");
    }
  }
}

TEST_F(StoreTest, SweepStatsRoundTrip) {
  Entry entry;
  entry.kind = PayloadKind::kSweepStats;
  entry.sweep = {10, 11, 9, 20, 2, 1};
  harness::Scenario s;
  const auto key = scenario_key(s, {}, "type", PayloadKind::kSweepStats);
  {
    Store store(dir_);
    store.put(key, entry);
  }
  Store fresh(dir_);
  const auto back = fresh.get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, PayloadKind::kSweepStats);
  EXPECT_EQ(back->sweep, entry.sweep);
}

TEST_F(StoreTest, CorruptFileIsAMissNotAnError) {
  const auto key = key_for_seed(4);
  {
    Store store(dir_);
    store.put(key, sample_entry());
  }
  const auto path = fs::path(dir_) / key.prefix() / (key.hex() + ".nidc");
  std::ofstream(path, std::ios::binary) << "not a cache entry";

  Store fresh(dir_);
  EXPECT_FALSE(fresh.get(key).has_value());
  EXPECT_EQ(fresh.counters().bad_entries, 1u);
  EXPECT_EQ(fresh.counters().misses, 1u);
}

TEST_F(StoreTest, RenamedEntryCannotServeTheWrongKey) {
  // A valid entry copied under another key's file name must not satisfy
  // that key: the embedded key echo catches it.
  const auto key_a = key_for_seed(5);
  const auto key_b = key_for_seed(6);
  {
    Store store(dir_);
    store.put(key_a, sample_entry());
  }
  const auto path_a = fs::path(dir_) / key_a.prefix() / (key_a.hex() + ".nidc");
  const auto path_b = fs::path(dir_) / key_b.prefix() / (key_b.hex() + ".nidc");
  fs::create_directories(path_b.parent_path());
  fs::copy_file(path_a, path_b);

  Store fresh(dir_);
  EXPECT_FALSE(fresh.get(key_b).has_value());
  EXPECT_EQ(fresh.counters().bad_entries, 1u);
}

TEST_F(StoreTest, EncodeDecodeEntryRejectsTampering) {
  const auto key = key_for_seed(7);
  auto bytes = encode_entry(key, sample_entry());
  ASSERT_TRUE(decode_entry(key, bytes).has_value());

  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(decode_entry(key, truncated).has_value());

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(decode_entry(key, trailing).has_value());

  auto flipped = bytes;
  flipped[0] ^= 0xFF;  // magic
  EXPECT_FALSE(decode_entry(key, flipped).has_value());
}

TEST_F(StoreTest, LsListsEntriesSortedByKey) {
  Store store(dir_);
  const auto key_a = key_for_seed(8);
  const auto key_b = key_for_seed(9);
  store.put(key_a, sample_entry());
  store.put(key_b, sample_entry());

  const auto entries = Store::ls(dir_);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].key.hex(), entries[1].key.hex());
  for (const auto& e : entries) {
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.kind, PayloadKind::kMinedRelations);
    EXPECT_GT(e.bytes, 0u);
    EXPECT_GE(e.age_seconds, 0.0);
  }
}

TEST_F(StoreTest, PruneRemovesOldAndInvalidEntries) {
  Store store(dir_);
  store.put(key_for_seed(10), sample_entry());
  store.put(key_for_seed(11), sample_entry());
  // Corrupt one entry: prune removes it regardless of age.
  const auto victim = key_for_seed(11);
  std::ofstream(fs::path(dir_) / victim.prefix() / (victim.hex() + ".nidc"),
                std::ios::binary)
      << "junk";

  EXPECT_EQ(Store::prune(dir_, 365.0), 1u);  // only the invalid one
  EXPECT_EQ(Store::ls(dir_).size(), 1u);
  EXPECT_EQ(Store::prune(dir_, 0.0), 1u);  // everything is "old" now
  EXPECT_TRUE(Store::ls(dir_).empty());
}

TEST_F(StoreTest, ClearRemovesEverything) {
  Store store(dir_);
  store.put(key_for_seed(12), sample_entry());
  store.put(key_for_seed(13), sample_entry());
  EXPECT_EQ(Store::clear(dir_), 2u);
  EXPECT_TRUE(Store::ls(dir_).empty());
  // Shard directories are gone too.
  EXPECT_TRUE(!fs::exists(dir_) || fs::is_empty(dir_));
}

TEST_F(StoreTest, HitSidecarCountsReuseAcrossProcesses) {
  Store store(dir_);
  const auto key = key_for_seed(20);
  store.put(key, sample_entry());
  ASSERT_EQ(Store::ls(dir_).size(), 1u);
  EXPECT_EQ(Store::ls(dir_).at(0).hits, 0u);

  (void)store.get(key);  // memory hit
  (void)store.get(key);  // memory hit
  Store fresh(dir_);     // "another process"
  (void)fresh.get(key);  // disk hit
  EXPECT_EQ(Store::ls(dir_).at(0).hits, 3u);

  // Misses touch nothing.
  Store fresh2(dir_);
  EXPECT_FALSE(fresh2.get(key_for_seed(21)).has_value());
  EXPECT_EQ(Store::ls(dir_).at(0).hits, 3u);
}

TEST_F(StoreTest, ClearAndPruneRemoveHitSidecars) {
  Store store(dir_);
  const auto key = key_for_seed(22);
  store.put(key, sample_entry());
  (void)store.get(key);
  EXPECT_EQ(Store::ls(dir_).at(0).hits, 1u);
  EXPECT_EQ(Store::clear(dir_), 1u);
  // The sidecar is gone with the entry, so the tree is pristine.
  EXPECT_TRUE(!fs::exists(dir_) || fs::is_empty(dir_));

  store.put(key, sample_entry());
  (void)store.get(key);
  EXPECT_EQ(Store::prune(dir_, 0.0), 1u);
  EXPECT_TRUE(Store::ls(dir_).empty());
  std::size_t stray = 0;
  for (fs::recursive_directory_iterator it(dir_), end; it != end; ++it)
    if (it->is_regular_file()) ++stray;
  EXPECT_EQ(stray, 0u) << "prune must not orphan .hits sidecars";
}

TEST_F(StoreTest, MaintenanceOnMissingDirIsHarmless) {
  EXPECT_TRUE(Store::ls(dir_ + "/nope").empty());
  EXPECT_EQ(Store::prune(dir_ + "/nope", 0.0), 0u);
  EXPECT_EQ(Store::clear(dir_ + "/nope"), 0u);
}

}  // namespace
}  // namespace nidkit::cache
