#include "cache/key.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "mining/miner.hpp"

namespace nidkit::cache {
namespace {

using namespace std::chrono_literals;

ScenarioKey key_of(const harness::Scenario& s,
                   const mining::MinerConfig& m = {},
                   std::string_view scheme = "type",
                   PayloadKind kind = PayloadKind::kMinedRelations) {
  return scenario_key(s, m, scheme, kind);
}

TEST(Key, DeterministicAcrossCalls) {
  const harness::Scenario s;
  EXPECT_EQ(key_of(s), key_of(s));
  EXPECT_EQ(key_of(s).hex().size(), 32u);
  EXPECT_EQ(key_of(s).prefix(), key_of(s).hex().substr(0, 2));
}

// The coverage contract: every simulation-affecting knob must perturb the
// key. Each mutation below flips exactly one field from the default
// scenario; all resulting keys (plus the default's) must be distinct.
TEST(Key, EveryScenarioKnobChangesTheKey) {
  using Mut = std::function<void(harness::Scenario&)>;
  const std::vector<std::pair<std::string, Mut>> mutations = {
      {"protocol", [](auto& s) { s.protocol = harness::Protocol::kRip; }},
      {"topology.kind",
       [](auto& s) { s.topology = topo::Spec{topo::Kind::kRing, 2}; }},
      {"topology.routers",
       [](auto& s) { s.topology = topo::Spec{topo::Kind::kLinear, 3}; }},
      {"ospf_profile.name", [](auto& s) { s.ospf_profile.name = "other"; }},
      {"ospf_profile.duration-knob",
       [](auto& s) { s.ospf_profile.delayed_ack_delay = 2s; }},
      {"ospf_profile.bool-knob",
       [](auto& s) { s.ospf_profile.ack_from_database = true; }},
      {"ospf_profile.count-knob",
       [](auto& s) { s.ospf_profile.lsu_max_lsas = 17; }},
      {"rip_profile", [](auto& s) { s.rip_profile.name = "other"; }},
      {"bgp_profile", [](auto& s) { s.bgp_profile.name = "other"; }},
      {"bgp_longpath_prepend", [](auto& s) { s.bgp_longpath_prepend = 7; }},
      {"tdelay", [](auto& s) { s.tdelay = 901ms; }},
      {"link_jitter", [](auto& s) { s.link_jitter = 11ms; }},
      {"link_loss", [](auto& s) { s.link_loss = 0.003; }},
      {"duration", [](auto& s) { s.duration = 181s; }},
      {"seed", [](auto& s) { s.seed = 2; }},
      {"lsa_refresh", [](auto& s) { s.lsa_refresh = 1s; }},
      {"churn_times.value", [](auto& s) { s.churn_times[0] += 1s; }},
      {"churn_times.count", [](auto& s) { s.churn_times.push_back(150s); }},
      {"state_probe", [](auto& s) { s.state_probe = false; }},
  };

  const harness::Scenario base;
  std::vector<std::pair<std::string, ScenarioKey>> keys = {
      {"default", key_of(base)}};
  for (const auto& [name, mutate] : mutations) {
    harness::Scenario s;
    mutate(s);
    keys.emplace_back(name, key_of(s));
  }
  for (std::size_t i = 0; i < keys.size(); ++i)
    for (std::size_t j = i + 1; j < keys.size(); ++j)
      EXPECT_NE(keys[i].second, keys[j].second)
          << keys[i].first << " vs " << keys[j].first;
}

TEST(Key, MinerConfigChangesTheKey) {
  const harness::Scenario s;
  mining::MinerConfig tdelay, window, horizon;
  tdelay.tdelay = 901ms;
  window.window_factor = 2.5;
  horizon.horizon = 6s;
  const std::vector<ScenarioKey> keys = {
      key_of(s), key_of(s, tdelay), key_of(s, window), key_of(s, horizon)};
  for (std::size_t i = 0; i < keys.size(); ++i)
    for (std::size_t j = i + 1; j < keys.size(); ++j)
      EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
}

TEST(Key, SchemeAndPayloadKindChangeTheKey) {
  const harness::Scenario s;
  EXPECT_NE(key_of(s, {}, "type"), key_of(s, {}, "gtsn"));
  EXPECT_NE(key_of(s, {}, "type", PayloadKind::kMinedRelations),
            key_of(s, {}, "type", PayloadKind::kSweepStats));
}

TEST(Key, KeepBytesIrrelevant) {
  // keep_bytes only controls whether raw wire bytes are retained in trace
  // records; the miner reads digests, so it must NOT perturb the key —
  // otherwise --keep-bytes runs would never share cache entries with
  // default runs despite producing identical mined results.
  harness::Scenario with_bytes, without_bytes;
  with_bytes.keep_bytes = true;
  without_bytes.keep_bytes = false;
  EXPECT_EQ(key_of(with_bytes), key_of(without_bytes));
}

#if defined(__GLIBCXX__) && defined(__x86_64__)
// Runtime mirror of the static size guards in key.cpp: if one of these
// fails, a hashed struct grew and the fingerprint in key.cpp (plus the
// kHashed* constants and, likely, this file's mutation list) must be
// updated before the cache can be trusted again.
TEST(Key, SizeGuardsMatchHashedStructs) {
  EXPECT_EQ(sizeof(harness::Scenario), kHashedScenarioSize);
  EXPECT_EQ(sizeof(mining::MinerConfig), kHashedMinerConfigSize);
  EXPECT_EQ(sizeof(ospf::BehaviorProfile), kHashedOspfProfileSize);
  EXPECT_EQ(sizeof(rip::RipProfile), kHashedRipProfileSize);
  EXPECT_EQ(sizeof(bgp::BgpProfile), kHashedBgpProfileSize);
  EXPECT_EQ(sizeof(topo::Spec), kHashedTopoSpecSize);
}
#endif

}  // namespace
}  // namespace nidkit::cache
