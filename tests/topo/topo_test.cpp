#include "topo/topo.hpp"

#include <gtest/gtest.h>

namespace nidkit::topo {
namespace {

struct Case {
  Spec spec;
  std::size_t expected_segments;
};

class TopoShape : public ::testing::TestWithParam<Case> {};

TEST_P(TopoShape, NodeAndSegmentCounts) {
  netsim::Simulator sim;
  netsim::Network net(sim, 1);
  const auto built = build(net, GetParam().spec);
  EXPECT_EQ(built.nodes.size(), GetParam().spec.routers);
  EXPECT_EQ(built.segments.size(), GetParam().expected_segments);
  EXPECT_EQ(net.node_count(), GetParam().spec.routers);
  EXPECT_EQ(net.segment_count(), GetParam().expected_segments);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopoShape,
    ::testing::Values(Case{{Kind::kLinear, 2}, 1}, Case{{Kind::kLinear, 5}, 4},
                      Case{{Kind::kMesh, 3}, 3}, Case{{Kind::kMesh, 5}, 10},
                      Case{{Kind::kRing, 4}, 4}, Case{{Kind::kStar, 5}, 4},
                      Case{{Kind::kTree, 7}, 6}, Case{{Kind::kLan, 4}, 1}),
    [](const auto& info) {
      auto name = info.param.spec.name();
      for (auto& c : name)
        if (c == '-') c = '_';  // gtest names must be identifiers
      return name;
    });

TEST(Topo, NamesAreDescriptive) {
  EXPECT_EQ((Spec{Kind::kLinear, 2}.name()), "linear-2");
  EXPECT_EQ((Spec{Kind::kMesh, 5}.name()), "mesh-5");
  EXPECT_EQ((Spec{Kind::kLan, 4}.name()), "lan-4");
}

TEST(Topo, PaperTopologiesMatchThePaper) {
  const auto specs = paper_topologies();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name(), "linear-2");
  EXPECT_EQ(specs[1].name(), "mesh-3");
  EXPECT_EQ(specs[2].name(), "linear-5");
  EXPECT_EQ(specs[3].name(), "mesh-5");
}

TEST(Topo, ExtendedSupersetOfPaper) {
  const auto ext = extended_topologies();
  EXPECT_GT(ext.size(), paper_topologies().size());
  for (std::size_t i = 0; i < paper_topologies().size(); ++i)
    EXPECT_EQ(ext[i].name(), paper_topologies()[i].name());
}

TEST(Topo, LanSegmentIsBroadcast) {
  netsim::Simulator sim;
  netsim::Network net(sim, 1);
  const auto built = build(net, Spec{Kind::kLan, 3});
  EXPECT_TRUE(net.segment_is_lan(built.segments[0]));
}

TEST(Topo, MeshIsPointToPointPairs) {
  netsim::Simulator sim;
  netsim::Network net(sim, 1);
  const auto built = build(net, Spec{Kind::kMesh, 4});
  for (const auto seg : built.segments) {
    EXPECT_FALSE(net.segment_is_lan(seg));
    EXPECT_EQ(net.attachments(seg).size(), 2u);
  }
  // Every router has degree n-1.
  for (const auto node : built.nodes)
    EXPECT_EQ(net.iface_count(node), 3u);
}

TEST(Topo, StarHubHasAllSpokes) {
  netsim::Simulator sim;
  netsim::Network net(sim, 1);
  const auto built = build(net, Spec{Kind::kStar, 5});
  EXPECT_EQ(net.iface_count(built.nodes[0]), 4u);
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_EQ(net.iface_count(built.nodes[i]), 1u);
}

TEST(Topo, TreeParentsAreBalanced) {
  netsim::Simulator sim;
  netsim::Network net(sim, 1);
  const auto built = build(net, Spec{Kind::kTree, 7});
  // Root and the two inner nodes have 2 children; leaves have 1 link.
  EXPECT_EQ(net.iface_count(built.nodes[0]), 2u);
  EXPECT_EQ(net.iface_count(built.nodes[1]), 3u);  // parent + 2 children
  EXPECT_EQ(net.iface_count(built.nodes[6]), 1u);
}

TEST(Topo, InvalidSpecsRejected) {
  netsim::Simulator sim;
  netsim::Network net(sim, 1);
  EXPECT_THROW(build(net, Spec{Kind::kLinear, 1}), std::invalid_argument);
  EXPECT_THROW(build(net, Spec{Kind::kRing, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace nidkit::topo
