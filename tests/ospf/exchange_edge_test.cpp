// Database-exchange edge cases probed with hand-crafted packets: the §10
// behaviours that only show up when a peer misbehaves or packets race.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

/// Sends a crafted OSPF packet from node `from_node` (posing as router
/// `as_router`) to `to_addr`.
void send_crafted(Rig& rig, netsim::NodeId from_node, RouterId as_router,
                  PacketBody body, Ipv4Addr to_addr) {
  auto pkt = make_packet(as_router, kBackboneArea, std::move(body));
  netsim::Frame frame;
  frame.dst = to_addr;
  frame.protocol = kIpProtoOspf;
  frame.payload = encode(pkt);
  rig.net.send(from_node, 0, std::move(frame));
}

struct FullPair {
  FullPair() {
    testutil::init_two(rig, frr_profile());
    rig.start_all();
    rig.run_for(60s);
  }
  Rig rig;
  Ipv4Addr r1_addr() { return rig.net.iface(rig.nodes[1], 0).address; }
};

TEST(ExchangeEdge, UnexpectedDbdInFullTriggersExchangeRestart) {
  FullPair f;
  ASSERT_EQ(f.rig.r(1).neighbor_state(f.rig.id(0)), NeighborState::kFull);
  DbdBody dbd;
  dbd.flags = kDbdFlagMs;  // non-duplicate exchange DBD out of nowhere
  dbd.dd_sequence = 0xabcd;
  send_crafted(f.rig, f.rig.nodes[0], f.rig.id(0), dbd, f.r1_addr());
  f.rig.run_for(2s);
  // SeqNumberMismatch: the neighbor drops back to ExStart...
  EXPECT_EQ(f.rig.r(1).neighbor_state(f.rig.id(0)), NeighborState::kExStart);
  // ...and the adjacency heals on its own.
  f.rig.run_for(60s);
  EXPECT_EQ(f.rig.r(1).neighbor_state(f.rig.id(0)), NeighborState::kFull);
}

TEST(ExchangeEdge, LsrForUnknownLsaTriggersBadLSReq) {
  FullPair f;
  LsRequestBody lsr;
  lsr.requests.push_back(LsRequestEntry{
      LsaType::kRouter, Ipv4Addr{66, 66, 66, 66}, RouterId{66, 66, 66, 66}});
  send_crafted(f.rig, f.rig.nodes[0], f.rig.id(0), lsr, f.r1_addr());
  f.rig.run_for(2s);
  EXPECT_EQ(f.rig.r(1).neighbor_state(f.rig.id(0)), NeighborState::kExStart);
  f.rig.run_for(60s);
  EXPECT_EQ(f.rig.r(1).neighbor_state(f.rig.id(0)), NeighborState::kFull);
}

TEST(ExchangeEdge, LsrForKnownLsaAnsweredWithLsu) {
  FullPair f;
  int lsus = 0;
  f.rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != f.rig.nodes[0]) return;
    if (ev.direction != netsim::Direction::kRecv) return;
    auto decoded = decode(ev.frame->payload);
    if (decoded.ok() &&
        std::holds_alternative<LsUpdateBody>(decoded.value().body))
      ++lsus;
  });
  LsRequestBody lsr;
  lsr.requests.push_back(LsRequestEntry{
      LsaType::kRouter, Ipv4Addr{f.rig.id(1).value()}, f.rig.id(1)});
  send_crafted(f.rig, f.rig.nodes[0], f.rig.id(0), lsr, f.r1_addr());
  f.rig.run_for(3s);
  EXPECT_EQ(lsus, 1);
}

TEST(ExchangeEdge, MinLsArrivalDropsRapidReflood) {
  FullPair f;
  // Two instances of a foreign LSA arriving 100 ms apart: the second must
  // be ignored (< MinLSArrival) — r1's database keeps the first.
  Lsa lsa;
  lsa.header.type = LsaType::kExternal;
  lsa.header.link_state_id = Ipv4Addr{203, 0, 113, 0};
  lsa.header.advertising_router = f.rig.id(0);
  lsa.header.seq = kInitialSequenceNumber;
  lsa.body = ExternalLsaBody{Ipv4Addr{255, 255, 255, 0}, true, 5, {}, 0};
  lsa.finalize();
  LsUpdateBody first;
  first.lsas.push_back(lsa);
  send_crafted(f.rig, f.rig.nodes[0], f.rig.id(0), first, f.r1_addr());

  Lsa newer = lsa;
  newer.header.seq += 1;
  newer.finalize();
  LsUpdateBody second;
  second.lsas.push_back(newer);
  f.rig.sim.schedule(100ms, [&f, second]() mutable {
    send_crafted(f.rig, f.rig.nodes[0], f.rig.id(0), std::move(second),
                 f.r1_addr());
  });
  f.rig.run_for(3s);

  const LsaKey key{LsaType::kExternal, Ipv4Addr{203, 0, 113, 0},
                   f.rig.id(0)};
  const auto* entry = f.rig.r(1).lsdb().find(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->lsa.header.seq, kInitialSequenceNumber)
      << "the too-fast second instance must be dropped (MinLSArrival)";
}

TEST(ExchangeEdge, MinLsArrivalAcceptsAfterTheInterval) {
  FullPair f;
  Lsa lsa;
  lsa.header.type = LsaType::kExternal;
  lsa.header.link_state_id = Ipv4Addr{203, 0, 114, 0};
  lsa.header.advertising_router = f.rig.id(0);
  lsa.header.seq = kInitialSequenceNumber;
  lsa.body = ExternalLsaBody{Ipv4Addr{255, 255, 255, 0}, true, 5, {}, 0};
  lsa.finalize();
  LsUpdateBody first;
  first.lsas.push_back(lsa);
  send_crafted(f.rig, f.rig.nodes[0], f.rig.id(0), first, f.r1_addr());

  Lsa newer = lsa;
  newer.header.seq += 1;
  newer.finalize();
  LsUpdateBody second;
  second.lsas.push_back(newer);
  f.rig.sim.schedule(2s, [&f, second]() mutable {
    send_crafted(f.rig, f.rig.nodes[0], f.rig.id(0), std::move(second),
                 f.r1_addr());
  });
  f.rig.run_for(5s);

  const LsaKey key{LsaType::kExternal, Ipv4Addr{203, 0, 114, 0},
                   f.rig.id(0)};
  const auto* entry = f.rig.r(1).lsdb().find(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->lsa.header.seq, kInitialSequenceNumber + 1);
}

TEST(ExchangeEdge, PacketsFromUnknownNeighborIgnored) {
  FullPair f;
  // An LSU claiming to be from a router that never said hello: must be
  // ignored entirely (§8.2 requires an Exchange-or-better neighbor).
  Lsa lsa;
  lsa.header.type = LsaType::kExternal;
  lsa.header.link_state_id = Ipv4Addr{203, 0, 115, 0};
  lsa.header.advertising_router = RouterId{77, 77, 77, 77};
  lsa.body = ExternalLsaBody{Ipv4Addr{255, 255, 255, 0}, true, 5, {}, 0};
  lsa.finalize();
  LsUpdateBody lsu;
  lsu.lsas.push_back(lsa);
  send_crafted(f.rig, f.rig.nodes[0], RouterId{77, 77, 77, 77}, lsu,
               f.r1_addr());
  f.rig.run_for(3s);
  const LsaKey key{LsaType::kExternal, Ipv4Addr{203, 0, 115, 0},
                   RouterId{77, 77, 77, 77}};
  EXPECT_EQ(f.rig.r(1).lsdb().find(key), nullptr);
}

TEST(ExchangeEdge, WrongAreaPacketsIgnored) {
  FullPair f;
  auto pkt = make_packet(f.rig.id(0), AreaId{0, 0, 0, 51}, HelloBody{});
  netsim::Frame frame;
  frame.dst = kAllSpfRouters;
  frame.protocol = kIpProtoOspf;
  frame.payload = encode(pkt);
  const auto rx_before = f.rig.r(1).stats().rx_by_type[1];
  f.rig.net.send(f.rig.nodes[0], 0, std::move(frame));
  f.rig.run_for(2s);
  // The packet is counted at ingress but has no protocol effect — the
  // adjacency stays Full and no neighbor for a foreign area appears.
  (void)rx_before;
  EXPECT_EQ(f.rig.r(1).neighbor_state(f.rig.id(0)), NeighborState::kFull);
  EXPECT_EQ(f.rig.r(1).interfaces()[0].neighbors.size(), 1u);
}

TEST(ExchangeEdge, MalformedPacketCountsDecodeFailure) {
  FullPair f;
  netsim::Frame frame;
  frame.dst = f.r1_addr();
  frame.protocol = kIpProtoOspf;
  frame.payload = {2, 1, 0, 44, 1, 1};  // truncated garbage
  const auto before = f.rig.r(1).stats().decode_failures;
  f.rig.net.send(f.rig.nodes[0], 0, std::move(frame));
  f.rig.run_for(2s);
  EXPECT_EQ(f.rig.r(1).stats().decode_failures, before + 1);
  EXPECT_EQ(f.rig.r(1).neighbor_state(f.rig.id(0)), NeighborState::kFull);
}

TEST(ExchangeEdge, DuplicateDbdFloodDoesNotBreakAdjacency) {
  // Duplicate every frame during bring-up: the exchange must tolerate the
  // duplicated DBDs (master ignores, slave re-echoes).
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.net.fault(0).duplicate = 0.7;
  rig.start_all();
  rig.run_for(90s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kFull);
}

}  // namespace
}  // namespace nidkit::ospf
