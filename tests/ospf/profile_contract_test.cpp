// Profile-contract tests: every BehaviorProfile knob must have an
// observable, isolated effect on the wire — otherwise the "implementation
// differences" the toolkit studies would be dead configuration.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

/// Counts packets of `type` sent by node 0 within the first `window`.
struct TypeCounter {
  explicit TypeCounter(Rig& rig, netsim::NodeId node, PacketType type)
      : node_(node), type_(type) {
    rig.net.set_tap([this](const netsim::TapEvent& ev) {
      if (ev.node != node_ || ev.direction != netsim::Direction::kSend)
        return;
      auto d = decode(ev.frame->payload);
      if (d.ok() && d.value().header.type == type_) {
        ++count_;
        times_.push_back(ev.time);
      }
    });
  }
  netsim::NodeId node_;
  PacketType type_;
  int count_ = 0;
  std::vector<SimTime> times_;
};

TEST(ProfileContract, ImmediateHelloOnDiscovery) {
  // With the knob on, the first hello exchange completes within ~1 RTT of
  // the peer's first hello; with it off, the reply waits for the timer.
  auto count_hellos_in_first_5s = [](bool immediate) {
    Rig rig;
    auto p = strict_profile();
    p.immediate_hello_on_discovery = immediate;
    p.immediate_hello_on_two_way = false;
    testutil::init_two(rig, p);
    TypeCounter hellos(rig, rig.nodes[0], PacketType::kHello);
    rig.start_all();
    rig.run_for(5s);
    return hellos.count_;
  };
  EXPECT_GT(count_hellos_in_first_5s(true), count_hellos_in_first_5s(false));
}

TEST(ProfileContract, DelayedVsDirectAcks) {
  // Direct acks (0 ms) go out one RTT earlier than 1-s delayed acks.
  auto first_ack_time = [](SimDuration ack_delay) {
    Rig rig;
    auto p = strict_profile();
    p.delayed_ack_delay = ack_delay;
    testutil::init_two(rig, p);
    TypeCounter acks(rig, rig.nodes[1], PacketType::kLsAck);
    rig.start_all();
    rig.run_for(30s);
    rig.r(0).originate_external(Ipv4Addr{192, 168, 9, 0},
                                Ipv4Addr{255, 255, 255, 0}, 1);
    acks.count_ = 0;
    acks.times_.clear();
    rig.run_for(10s);
    return acks.times_.empty() ? SimTime{0} : acks.times_.front();
  };
  const auto direct = first_ack_time(0ms);
  const auto delayed = first_ack_time(1500ms);
  ASSERT_NE(direct.count(), 0);
  ASSERT_NE(delayed.count(), 0);
  EXPECT_GE(delayed - direct, SimDuration{1s});
}

TEST(ProfileContract, AckFromDatabaseEchoesNewerInstance) {
  // Covered end-to-end by the injection tests; here the unit contract:
  // with ack_from_database an ack for a stale instance carries the DB
  // header. (BirdAcksStaleLsuFromDatabase in flooding_test.cpp exercises
  // the wire form; this test pins the profile defaults.)
  EXPECT_TRUE(bird_profile().ack_from_database);
  EXPECT_TRUE(bird_profile().ack_stale_from_database);
  EXPECT_FALSE(bird_profile().respond_stale_with_newer);
  EXPECT_FALSE(frr_profile().ack_from_database);
  EXPECT_FALSE(frr_profile().ack_stale_from_database);
  EXPECT_TRUE(frr_profile().respond_stale_with_newer);
}

TEST(ProfileContract, LsrPerDbdControlsRequestTiming) {
  // lsr_per_dbd=true sends the first LSR while the exchange is running;
  // false waits for ExchangeDone. Observable as LSR-before-final-DBD.
  auto first_lsr_vs_last_dbd = [](bool per_dbd) {
    Rig rig;
    auto p = strict_profile();
    p.lsr_per_dbd = per_dbd;
    testutil::init_two(rig, p);
    // Give the routers asymmetric databases so there is something to
    // request: r0 pre-originates externals before the adjacency forms.
    TypeCounter lsrs(rig, rig.nodes[1], PacketType::kLsRequest);
    TypeCounter dbds(rig, rig.nodes[1], PacketType::kDbd);
    rig.start_all();
    rig.run_for(60s);
    if (lsrs.times_.empty() || dbds.times_.empty()) return SimDuration{0};
    return lsrs.times_.front() - dbds.times_.back();
  };
  // In both modes LSRs exist (databases differ by the router-LSAs); the
  // per-DBD mode must not issue its first LSR later than the batch mode.
  const auto eager = first_lsr_vs_last_dbd(true);
  const auto batched = first_lsr_vs_last_dbd(false);
  EXPECT_LE(eager, batched);
}

TEST(ProfileContract, HelloJitterSpreadsHelloTimes) {
  auto hello_spacing_variance = [](SimDuration jitter) {
    Rig rig;
    auto p = strict_profile();
    p.hello_jitter = jitter;
    testutil::init_two(rig, p);
    TypeCounter hellos(rig, rig.nodes[0], PacketType::kHello);
    rig.start_all();
    rig.run_for(200s);
    double mean = 0;
    std::vector<double> gaps;
    for (std::size_t i = 1; i < hellos.times_.size(); ++i) {
      gaps.push_back((hellos.times_[i] - hellos.times_[i - 1]).count() /
                     1e6);
      mean += gaps.back();
    }
    mean /= gaps.empty() ? 1 : gaps.size();
    double var = 0;
    for (const auto g : gaps) var += (g - mean) * (g - mean);
    return gaps.empty() ? 0.0 : var / gaps.size();
  };
  EXPECT_EQ(hello_spacing_variance(0ms), 0.0);
  EXPECT_GT(hello_spacing_variance(2s), 0.01);
}

TEST(ProfileContract, RxmtIntervalControlsRetransmissionPace) {
  auto retransmissions_under_blackhole = [](SimDuration rxmt) {
    Rig rig;
    auto p = strict_profile();
    p.rxmt_interval = rxmt;
    testutil::init_two(rig, p);
    rig.start_all();
    rig.run_for(60s);
    // Black-hole acks from r1 by cutting, flooding, and restoring late:
    // r0 keeps retransmitting at its pace.
    rig.net.fault(0).loss = 1.0;
    rig.r(0).originate_external(Ipv4Addr{192, 168, 3, 0},
                                Ipv4Addr{255, 255, 255, 0}, 1);
    rig.run_for(30s);
    rig.net.fault(0).loss = 0.0;
    return rig.r(0).stats().retransmissions;
  };
  // 2 s interval retransmits roughly twice as often as 5 s over 30 s.
  EXPECT_GT(retransmissions_under_blackhole(2s),
            retransmissions_under_blackhole(5s) + 3);
}

TEST(ProfileContract, MinLsIntervalRateLimitsOrigination) {
  // A burst of topology events collapses into rate-limited originations.
  Rig rig;
  auto p = strict_profile();
  p.min_ls_interval = 5s;
  testutil::init_two(rig, p);
  rig.start_all();
  rig.run_for(60s);
  const LsaKey key{LsaType::kRouter, Ipv4Addr{rig.id(0).value()},
                   rig.id(0)};
  const auto seq_before = rig.r(0).lsdb().find(key)->lsa.header.seq;
  // Ten bump requests in rapid succession...
  for (int i = 0; i < 10; ++i) {
    rig.sim.schedule(SimDuration{i * 100ms},
                     [&rig] { rig.r(0).bump_self_lsas(); });
  }
  rig.run_for(3s);
  const auto seq_after = rig.r(0).lsdb().find(key)->lsa.header.seq;
  // ...yield at most 2 new instances within 3 s (one immediate, one
  // deferred), not 10.
  EXPECT_LE(seq_after - seq_before, 2);
}

TEST(ProfileContract, NamedProfilesAreDistinct) {
  const auto frr = frr_profile();
  const auto bird = bird_profile();
  EXPECT_NE(frr.immediate_hello_on_discovery,
            bird.immediate_hello_on_discovery);
  EXPECT_NE(frr.ack_from_database, bird.ack_from_database);
  EXPECT_NE(frr.lsr_per_dbd, bird.lsr_per_dbd);
  EXPECT_NE(frr.respond_stale_with_newer, bird.respond_stale_with_newer);
  EXPECT_EQ(frr.name, "frr");
  EXPECT_EQ(bird.name, "bird");
  EXPECT_EQ(strict_profile().name, "strict");
}

}  // namespace
}  // namespace nidkit::ospf
