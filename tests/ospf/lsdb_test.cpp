#include "ospf/lsdb.hpp"

#include <gtest/gtest.h>

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;

Lsa make_lsa(std::uint32_t adv, std::int32_t seq, std::uint16_t age = 0) {
  Lsa lsa;
  lsa.header.type = LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{adv};
  lsa.header.advertising_router = RouterId{adv};
  lsa.header.seq = seq;
  lsa.header.age = age;
  lsa.body = RouterLsaBody{};
  lsa.finalize();
  lsa.header.age = age;  // finalize zeroes nothing, but be explicit
  return lsa;
}

TEST(Lsdb, InstallAndFind) {
  Lsdb db;
  EXPECT_EQ(db.install(make_lsa(1, 5), SimTime{0}), std::nullopt);
  const auto* e = db.find(LsaKey{LsaType::kRouter, Ipv4Addr{1}, RouterId{1}});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->lsa.header.seq, 5);
  EXPECT_EQ(db.size(), 1u);
}

TEST(Lsdb, ReinstallReturnsPreviousHeader) {
  Lsdb db;
  db.install(make_lsa(1, 5), SimTime{0});
  const auto prev = db.install(make_lsa(1, 6), SimTime{1s});
  ASSERT_TRUE(prev.has_value());
  EXPECT_EQ(prev->seq, 5);
  EXPECT_EQ(db.find(key_of(make_lsa(1, 6).header))->lsa.header.seq, 6);
  EXPECT_EQ(db.size(), 1u);
}

TEST(Lsdb, DistinctKeysCoexist) {
  Lsdb db;
  db.install(make_lsa(1, 5), SimTime{0});
  db.install(make_lsa(2, 5), SimTime{0});
  Lsa net = make_lsa(1, 5);
  net.header.type = LsaType::kNetwork;
  net.body = NetworkLsaBody{};
  net.finalize();
  db.install(net, SimTime{0});
  EXPECT_EQ(db.size(), 3u);
}

TEST(Lsdb, RemoveErases) {
  Lsdb db;
  db.install(make_lsa(1, 5), SimTime{0});
  db.remove(LsaKey{LsaType::kRouter, Ipv4Addr{1}, RouterId{1}});
  EXPECT_EQ(db.find(LsaKey{LsaType::kRouter, Ipv4Addr{1}, RouterId{1}}),
            nullptr);
}

TEST(Lsdb, AgeAdvancesWithSimTime) {
  Lsdb db;
  db.install(make_lsa(1, 5, 7), SimTime{10s});
  const auto* e = db.find(LsaKey{LsaType::kRouter, Ipv4Addr{1}, RouterId{1}});
  EXPECT_EQ(db.age_at(*e, SimTime{10s}), 7);
  EXPECT_EQ(db.age_at(*e, SimTime{25s}), 22);
}

TEST(Lsdb, AgeCapsAtMaxAge) {
  Lsdb db;
  db.install(make_lsa(1, 5, 3500), SimTime{0});
  const auto* e = db.find(LsaKey{LsaType::kRouter, Ipv4Addr{1}, RouterId{1}});
  EXPECT_EQ(db.age_at(*e, SimTime{1000s}), kMaxAgeSeconds);
}

TEST(Lsdb, SnapshotCarriesCurrentAge) {
  Lsdb db;
  db.install(make_lsa(1, 5, 0), SimTime{0});
  const auto* e = db.find(LsaKey{LsaType::kRouter, Ipv4Addr{1}, RouterId{1}});
  const Lsa snap = db.snapshot(*e, SimTime{42s});
  EXPECT_EQ(snap.header.age, 42);
  // The stored entry is untouched.
  EXPECT_EQ(e->lsa.header.age, 0);
}

TEST(Lsdb, SummarizeListsAllWithUpdatedAges) {
  Lsdb db;
  db.install(make_lsa(1, 5), SimTime{0});
  db.install(make_lsa(2, 9), SimTime{5s});
  const auto headers = db.summarize(SimTime{10s});
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0].age, 10);
  EXPECT_EQ(headers[1].age, 5);
}

TEST(Lsdb, ForEachVisitsEverything) {
  Lsdb db;
  db.install(make_lsa(1, 1), SimTime{0});
  db.install(make_lsa(2, 1), SimTime{0});
  int visits = 0;
  db.for_each([&](const LsaKey&, const Lsdb::Entry&) { ++visits; });
  EXPECT_EQ(visits, 2);
}

TEST(Lsdb, KeyOrderingIsDeterministic) {
  const LsaKey a{LsaType::kRouter, Ipv4Addr{1}, RouterId{1}};
  const LsaKey b{LsaType::kNetwork, Ipv4Addr{1}, RouterId{1}};
  const LsaKey c{LsaType::kRouter, Ipv4Addr{2}, RouterId{1}};
  EXPECT_LT(a, b);  // type dominates
  EXPECT_LT(a, c);  // then link-state id
}

}  // namespace
}  // namespace nidkit::ospf
