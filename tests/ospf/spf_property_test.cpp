// SPF equivalence property suite: the flat kernel (and the memoizing
// RouteCache on top of it) must produce routes identical to the retained
// naive reference implementation on randomized topologies, after every
// LSDB mutation, and across MaxAge expiry horizons.
//
// The generator deliberately produces the awkward cases the kernel's
// dedup/collection phase must honor: one-sided links (bidirectional check),
// LANs with routers missing their transit back-link, duplicate link-state
// ids from different advertising routers (last-live-wins), wrong-variant
// bodies stored under a key (act as absent), near-MaxAge instances that
// expire mid-run, and equal-cost path meshes (ECMP hop-set merges).
#include <gtest/gtest.h>

#include <vector>

#include "ospf/lsdb.hpp"
#include "ospf/spf.hpp"
#include "util/rng.hpp"

using namespace nidkit;
using namespace nidkit::ospf;
using namespace std::chrono_literals;

namespace {

RouterId rid(std::uint32_t i) {
  const auto b = static_cast<std::uint8_t>(i + 1);
  return RouterId{b, b, b, b};
}

Lsa router_lsa(RouterId id, std::vector<RouterLink> links,
               std::uint16_t age = 0, std::int32_t seq_bump = 0) {
  Lsa lsa;
  lsa.header.type = LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{id.value()};
  lsa.header.advertising_router = id;
  lsa.header.age = age;
  lsa.header.seq = kInitialSequenceNumber + seq_bump;
  lsa.body = RouterLsaBody{0, std::move(links)};
  return lsa;
}

Lsa network_lsa(Ipv4Addr dr_addr, RouterId dr, Ipv4Addr mask,
                std::vector<RouterId> attached, std::uint16_t age = 0) {
  Lsa lsa;
  lsa.header.type = LsaType::kNetwork;
  lsa.header.link_state_id = dr_addr;
  lsa.header.advertising_router = dr;
  lsa.header.age = age;
  lsa.body = NetworkLsaBody{mask, std::move(attached)};
  return lsa;
}

Lsa external_lsa(Ipv4Addr prefix, RouterId asbr, std::uint32_t metric,
                 std::uint16_t age = 0) {
  Lsa lsa;
  lsa.header.type = LsaType::kExternal;
  lsa.header.link_state_id = prefix;
  lsa.header.advertising_router = asbr;
  lsa.header.age = age;
  ExternalLsaBody body;
  body.network_mask = Ipv4Addr{255, 255, 255, 0};
  body.type2 = true;
  body.metric = metric;
  lsa.body = body;
  return lsa;
}

/// Every router's flat-kernel table must equal the reference's.
void expect_equivalent(const Lsdb& db, std::size_t n_routers, SimTime now,
                       SpfScratch& scratch, const char* label) {
  std::vector<Route> flat;
  for (std::size_t i = 0; i < n_routers; ++i) {
    SimTime valid_until{};
    compute_routes(db, rid(i), now, scratch, flat, &valid_until);
    const auto ref = compute_routes_reference(db, rid(i), now);
    ASSERT_EQ(flat, ref) << label << ": router " << i << " at t="
                         << now.count() << "us";
    EXPECT_GT(valid_until, now) << label;
  }
}

/// Builds a randomized LSDB over `n` routers: p2p mesh with asymmetric
/// metrics and occasional one-sided advertisement, an optional LAN (with
/// an occasionally missing back-link), stub prefixes, and externals with
/// duplicate prefixes across ASBRs.
struct RandomTopology {
  std::size_t n;
  std::vector<std::vector<RouterLink>> links;  // per-router

  RandomTopology(Rng& rng, std::size_t n_routers) : n(n_routers), links(n) {
    for (std::size_t a = 0; a < n; ++a)
      for (std::size_t b = a + 1; b < n; ++b) {
        if (!rng.chance(0.45)) continue;
        const auto metric =
            static_cast<std::uint16_t>(1 + rng.uniform(8));
        const bool symmetric_metric = rng.chance(0.6);
        const auto back = symmetric_metric
                              ? metric
                              : static_cast<std::uint16_t>(1 + rng.uniform(8));
        links[a].push_back({Ipv4Addr{rid(b).value()}, Ipv4Addr{},
                            RouterLinkType::kPointToPoint, metric});
        // ~1 in 8 links is advertised from one side only: the
        // bidirectional check must keep it out of the tree.
        if (!rng.chance(0.125))
          links[b].push_back({Ipv4Addr{rid(a).value()}, Ipv4Addr{},
                              RouterLinkType::kPointToPoint, back});
      }
    // Stub prefix per router: 192.168.<i>.0/24.
    for (std::size_t i = 0; i < n; ++i)
      links[i].push_back(
          {Ipv4Addr{192, 168, static_cast<std::uint8_t>(i), 0},
           Ipv4Addr{255, 255, 255, 0}, RouterLinkType::kStub,
           static_cast<std::uint16_t>(1 + rng.uniform(4))});
  }

  void install_routers(Lsdb& db, SimTime now) const {
    for (std::size_t i = 0; i < n; ++i)
      db.install(router_lsa(rid(i), links[i]), now);
  }
};

}  // namespace

TEST(SpfProperty, FlatKernelMatchesReferenceOnRandomTopologiesWithChurn) {
  SpfScratch scratch;  // shared across cases: reuse must not leak state
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL);
    const std::size_t n = 2 + rng.uniform(7);
    RandomTopology topo(rng, n);

    Lsdb db;
    SimTime now = 0s;
    topo.install_routers(db, now);

    // Optional LAN over a prefix of the routers, with a DR network LSA.
    if (n >= 3 && rng.chance(0.7)) {
      const std::size_t members = 3 + rng.uniform(n - 2);
      const Ipv4Addr dr_addr{10, 0, 99, 1};
      const Ipv4Addr mask{255, 255, 255, 0};
      std::vector<RouterId> attached;
      std::vector<std::vector<RouterLink>> with_lan = topo.links;
      for (std::size_t i = 0; i < members && i < n; ++i) {
        attached.push_back(rid(i));
        // ~1 in 6 members forgets its transit link: the network-to-router
        // bidirectional check must exclude it.
        if (rng.chance(1.0 / 6))
          continue;
        with_lan[i].push_back({dr_addr, Ipv4Addr{10, 0, 99,
                               static_cast<std::uint8_t>(i + 1)},
                               RouterLinkType::kTransit,
                               static_cast<std::uint16_t>(1 + rng.uniform(3))});
      }
      for (std::size_t i = 0; i < n; ++i)
        db.install(router_lsa(rid(i), with_lan[i], 0, 1), now);
      db.install(network_lsa(dr_addr, rid(0), mask, attached), now);
    }

    // Externals: some duplicated across two ASBRs (dedup by prefix).
    const std::size_t n_ext = rng.uniform(4);
    for (std::size_t e = 0; e < n_ext; ++e) {
      const Ipv4Addr prefix{172, 16, static_cast<std::uint8_t>(e), 0};
      db.install(external_lsa(prefix, rid(rng.uniform(n)),
                              1 + static_cast<std::uint32_t>(rng.uniform(20))),
                 now);
      if (rng.chance(0.5))
        db.install(external_lsa(prefix, rid(rng.uniform(n)),
                                1 + static_cast<std::uint32_t>(rng.uniform(20))),
                   now);
    }

    // A wrong-variant body stored under a router key: acts as absent.
    if (rng.chance(0.3)) {
      Lsa bad = router_lsa(rid(rng.uniform(n)), {}, 0, 7);
      bad.body = NetworkLsaBody{Ipv4Addr{255, 255, 255, 0}, {rid(0)}};
      db.install(bad, now);
    }

    // Duplicate link-state id from a *different* advertising router, at
    // MaxAge: per-id dedup must keep the live instance regardless of key
    // order.
    if (rng.chance(0.4)) {
      const std::size_t victim = rng.uniform(n);
      Lsa dup = router_lsa(rid(victim), {}, kMaxAgeSeconds, 3);
      dup.header.advertising_router = rid((victim + 1) % n);
      db.install(dup, now);
    }

    ASSERT_NO_FATAL_FAILURE(
        expect_equivalent(db, n, now, scratch, "initial"));

    // Churn: after every mutation both implementations must still agree.
    for (int step = 0; step < 12; ++step) {
      now += std::chrono::seconds(1 + rng.uniform(30));
      const auto kind = rng.uniform(5);
      const std::size_t who = rng.uniform(n);
      if (kind == 0) {
        // Re-originate a router LSA with a perturbed metric.
        auto links = topo.links[who];
        if (!links.empty())
          links[rng.uniform(links.size())].metric =
              static_cast<std::uint16_t>(1 + rng.uniform(12));
        db.install(router_lsa(rid(who), links, 0, 10 + step), now);
      } else if (kind == 1) {
        // Premature aging: an instance installed at MaxAge disappears
        // from SPF immediately (but stays in the database).
        db.install(router_lsa(rid(who), topo.links[who], kMaxAgeSeconds,
                              10 + step),
                   now);
      } else if (kind == 2) {
        // Near-expiry instance: flips to MaxAge 2 seconds from now.
        db.install(router_lsa(rid(who), topo.links[who],
                              kMaxAgeSeconds - 2, 10 + step),
                   now);
      } else if (kind == 3) {
        db.install(
            external_lsa(Ipv4Addr{172, 17, static_cast<std::uint8_t>(step), 0},
                         rid(who), 5),
            now);
      } else {
        db.remove(LsaKey{LsaType::kExternal,
                         Ipv4Addr{172, 16, 0, 0}, rid(who)});
      }
      ASSERT_NO_FATAL_FAILURE(
          expect_equivalent(db, n, now, scratch, "after churn"));
      // And again after time passes (near-expiry instances cross MaxAge
      // with no version bump).
      now += 5s;
      ASSERT_NO_FATAL_FAILURE(
          expect_equivalent(db, n, now, scratch, "after aging"));
    }
  }
}

TEST(SpfProperty, RouteCacheMatchesReferenceAcrossProbesAndExpiry) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 0x2545f4914f6cdd1dULL + 3);
    const std::size_t n = 3 + rng.uniform(5);
    RandomTopology topo(rng, n);

    Lsdb db;
    SimTime now = 0s;
    topo.install_routers(db, now);
    // One instance that expires mid-probe-sequence.
    db.install(external_lsa(Ipv4Addr{172, 20, 0, 0}, rid(0), 3,
                            kMaxAgeSeconds - 30),
               now);

    RouteCache cache;
    const RouterId self = rid(rng.uniform(n));
    std::uint64_t last_recomputes = 0;
    for (int probe = 0; probe < 40; ++probe) {
      // Mostly idle probes; occasional churn.
      if (rng.chance(0.15)) {
        auto links = topo.links[0];
        links[0].metric = static_cast<std::uint16_t>(1 + rng.uniform(12));
        db.install(router_lsa(rid(0), links, 0, 100 + probe), now);
      }
      const auto& cached = cache.get(db, self, now);
      EXPECT_EQ(cached, compute_routes_reference(db, self, now))
          << "probe " << probe << " seed " << seed;
      last_recomputes = cache.recomputes();
      // An immediate re-probe at the same instant must be a pure hit.
      cache.get(db, self, now);
      EXPECT_EQ(cache.recomputes(), last_recomputes);
      now += std::chrono::seconds(2 + rng.uniform(4));
    }
    // The expiring external crossed MaxAge during the sequence; the cache
    // must have recomputed at least twice (initial + horizon).
    EXPECT_GE(cache.recomputes(), 2u);
  }
}

TEST(SpfProperty, MemoizedProbesAreVersionComparesBetweenChanges) {
  Rng rng(77);
  RandomTopology topo(rng, 6);
  Lsdb db;
  topo.install_routers(db, 0s);

  RouteCache cache;
  SimTime now = 0s;
  (void)cache.get(db, rid(0), now);
  EXPECT_EQ(cache.recomputes(), 1u);
  for (int i = 0; i < 100; ++i) {
    now += 1s;
    (void)cache.get(db, rid(0), now);
  }
  // Fresh LSAs (age 0) are hours from MaxAge: zero recomputes in 100 s.
  EXPECT_EQ(cache.recomputes(), 1u);

  // Any install invalidates, even a no-op content overwrite.
  db.install(router_lsa(rid(1), topo.links[1]), now);
  (void)cache.get(db, rid(0), now);
  EXPECT_EQ(cache.recomputes(), 2u);
}
