// Flooding (§13) tests: propagation, acknowledgment strategies, stale-LSA
// handling (the FRR/BIRD divergence), retransmission, MinLSArrival.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

LsaKey router_key(RouterId id) {
  return LsaKey{LsaType::kRouter, Ipv4Addr{id.value()}, id};
}

TEST(Flooding, ExternalLsaReachesAllRoutersInLine) {
  Rig rig;
  testutil::init_line(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(90s);
  rig.r(0).originate_external(Ipv4Addr{192, 168, 77, 0},
                              Ipv4Addr{255, 255, 255, 0}, 5);
  rig.run_for(30s);
  const LsaKey key{LsaType::kExternal, Ipv4Addr{192, 168, 77, 0}, rig.id(0)};
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NE(rig.r(i).lsdb().find(key), nullptr) << "router " << i;
}

TEST(Flooding, AllDatabasesConvergeToSameContent) {
  Rig rig;
  testutil::init_line(rig, 4, bird_profile());
  rig.start_all();
  rig.run_for(120s);
  const auto reference = rig.r(0).lsdb().summarize(rig.sim.now());
  for (std::size_t i = 1; i < 4; ++i) {
    const auto mine = rig.r(i).lsdb().summarize(rig.sim.now());
    ASSERT_EQ(mine.size(), reference.size()) << "router " << i;
    for (std::size_t k = 0; k < mine.size(); ++k) {
      EXPECT_TRUE(same_lsa(mine[k], reference[k]));
      EXPECT_EQ(mine[k].seq, reference[k].seq);
      EXPECT_EQ(mine[k].checksum, reference[k].checksum);
    }
  }
}

TEST(Flooding, AcksEmptyRetransmissionLists) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  rig.r(0).originate_external(Ipv4Addr{192, 168, 1, 0},
                              Ipv4Addr{255, 255, 255, 0}, 1);
  rig.run_for(30s);
  for (std::size_t i = 0; i < 2; ++i)
    for (const auto& oi : rig.r(i).interfaces())
      for (const auto& [id, n] : oi.neighbors)
        EXPECT_TRUE(n.retransmit.empty())
            << "router " << i << " still awaits acks";
}

TEST(Flooding, LostLsuIsRetransmitted) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  // Black-hole the link for 3 s around the flood so the first LSU copy is
  // lost, then let retransmission repair it.
  netsim::ChaosController chaos(rig.net);
  const auto t0 = rig.sim.now();
  rig.sim.schedule_at(t0 + 1s, [&] {
    rig.net.fault(0).loss = 1.0;
    rig.r(0).originate_external(Ipv4Addr{192, 168, 2, 0},
                                Ipv4Addr{255, 255, 255, 0}, 1);
  });
  rig.sim.schedule_at(t0 + 4s, [&] { rig.net.fault(0).loss = 0.0; });
  rig.run_for(30s);
  const LsaKey key{LsaType::kExternal, Ipv4Addr{192, 168, 2, 0}, rig.id(0)};
  EXPECT_NE(rig.r(1).lsdb().find(key), nullptr);
  EXPECT_GT(rig.r(0).stats().retransmissions, 0u);
}

TEST(Flooding, FrrRespondsToStaleLsuWithNewerCopy) {
  // FRR-like stale handling (§13 step 8): answer with the newer instance.
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);

  // Craft a stale LSU: an *older* instance of r1's own router-LSA, sent
  // from node 0's side of the link.
  const auto* entry = rig.r(0).lsdb().find(router_key(rig.id(1)));
  ASSERT_NE(entry, nullptr);
  Lsa stale = entry->lsa;
  stale.header.seq -= 1;
  stale.finalize();
  LsUpdateBody lsu;
  lsu.lsas.push_back(stale);
  auto pkt = make_packet(RouterId{1, 1, 1, 1}, kBackboneArea, std::move(lsu));

  int newer_lsus_at_node0 = 0;
  const auto newer_seq = entry->lsa.header.seq;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != rig.nodes[0]) return;
    if (ev.direction != netsim::Direction::kRecv) return;
    auto decoded = decode(ev.frame->payload);
    if (!decoded.ok()) return;
    if (const auto* body = std::get_if<LsUpdateBody>(&decoded.value().body))
      for (const auto& lsa : body->lsas)
        if (same_lsa(lsa.header, stale.header) && lsa.header.seq >= newer_seq)
          ++newer_lsus_at_node0;
  });

  netsim::Frame frame;
  frame.dst = rig.net.iface(rig.nodes[1], 0).address;
  frame.protocol = kIpProtoOspf;
  frame.payload = encode(pkt);
  rig.net.send(rig.nodes[0], 0, std::move(frame));
  rig.run_for(10s);
  EXPECT_GT(newer_lsus_at_node0, 0)
      << "stale sender must receive the newer LSA back";
}

TEST(Flooding, BirdAcksStaleLsuFromDatabase) {
  // BIRD-like stale handling: acknowledge with the database copy's header,
  // whose sequence number exceeds the stale update's (the paper's Table 2
  // discrepancy).
  Rig rig;
  testutil::init_two(rig, bird_profile());
  rig.start_all();
  rig.run_for(60s);

  const auto* entry = rig.r(0).lsdb().find(router_key(rig.id(1)));
  ASSERT_NE(entry, nullptr);
  Lsa stale = entry->lsa;
  stale.header.seq -= 1;
  stale.finalize();
  LsUpdateBody lsu;
  lsu.lsas.push_back(stale);
  auto pkt = make_packet(RouterId{1, 1, 1, 1}, kBackboneArea, std::move(lsu));

  int greater_sn_acks = 0;
  int newer_lsus = 0;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != rig.nodes[0]) return;
    if (ev.direction != netsim::Direction::kRecv) return;
    auto decoded = decode(ev.frame->payload);
    if (!decoded.ok()) return;
    if (const auto* ack = std::get_if<LsAckBody>(&decoded.value().body)) {
      for (const auto& h : ack->lsa_headers)
        if (same_lsa(h, stale.header) && h.seq > stale.header.seq)
          ++greater_sn_acks;
    } else if (const auto* body =
                   std::get_if<LsUpdateBody>(&decoded.value().body)) {
      for (const auto& lsa : body->lsas)
        if (same_lsa(lsa.header, stale.header) &&
            lsa.header.seq > stale.header.seq)
          ++newer_lsus;
    }
  });

  netsim::Frame frame;
  frame.dst = rig.net.iface(rig.nodes[1], 0).address;
  frame.protocol = kIpProtoOspf;
  frame.payload = encode(pkt);
  rig.net.send(rig.nodes[0], 0, std::move(frame));
  rig.run_for(10s);
  EXPECT_GT(greater_sn_acks, 0) << "BIRD must ack stale LSUs from its DB";
  EXPECT_EQ(newer_lsus, 0) << "BIRD must NOT respond with the newer LSA";
}

TEST(Flooding, ReceivingNewerSelfLsaTriggersSeqBump) {
  // §13.4: a router that receives a newer instance of its own LSA must
  // advance past it and re-originate.
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);

  const auto* own = rig.r(1).lsdb().find(router_key(rig.id(1)));
  ASSERT_NE(own, nullptr);
  const auto old_seq = own->lsa.header.seq;

  Lsa newer = own->lsa;
  newer.header.seq += 3;
  newer.finalize();
  LsUpdateBody lsu;
  lsu.lsas.push_back(newer);
  auto pkt = make_packet(RouterId{1, 1, 1, 1}, kBackboneArea, std::move(lsu));
  netsim::Frame frame;
  frame.dst = rig.net.iface(rig.nodes[1], 0).address;
  frame.protocol = kIpProtoOspf;
  frame.payload = encode(pkt);
  rig.net.send(rig.nodes[0], 0, std::move(frame));
  rig.run_for(15s);

  const auto* after = rig.r(1).lsdb().find(router_key(rig.id(1)));
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->lsa.header.seq, old_seq + 3)
      << "own LSA must be re-originated past the received instance";
  EXPECT_EQ(after->lsa.header.advertising_router, rig.id(1));
}

TEST(Flooding, DuplicateLsuCountsAsDuplicate) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.net.fault(0).duplicate = 1.0;  // every frame delivered twice
  rig.start_all();
  rig.run_for(60s);
  EXPECT_GT(rig.r(0).stats().duplicates_received +
                rig.r(1).stats().duplicates_received,
            0u);
  // Despite pervasive duplication, adjacency still completes.
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
}

TEST(Flooding, RefreshAdvancesSequenceNumbers) {
  Rig rig;
  auto profile = frr_profile();
  profile.lsa_refresh_interval = 20s;
  testutil::init_two(rig, profile);
  rig.start_all();
  rig.run_for(40s);
  const auto* e1 = rig.r(0).lsdb().find(router_key(rig.id(0)));
  ASSERT_NE(e1, nullptr);
  const auto seq_before = e1->lsa.header.seq;
  rig.run_for(41s);  // two refresh periods past the first check...
  const auto* e2 = rig.r(0).lsdb().find(router_key(rig.id(0)));
  ASSERT_NE(e2, nullptr);
  EXPECT_GT(e2->lsa.header.seq, seq_before);
  EXPECT_GT(rig.r(0).stats().lsa_refreshes, 0u);
  const auto latest = e2->lsa.header.seq;
  rig.run_for(4s);  // ...plus propagation slack before checking the peer
  const auto* on_peer = rig.r(1).lsdb().find(router_key(rig.id(0)));
  ASSERT_NE(on_peer, nullptr);
  EXPECT_GE(on_peer->lsa.header.seq, latest);
}

TEST(Flooding, ChurnPropagatesThroughMultiHopNetwork) {
  Rig rig;
  testutil::init_line(rig, 5, frr_profile());
  rig.start_all();
  rig.run_for(120s);
  rig.r(4).originate_external(Ipv4Addr{203, 0, 113, 0},
                              Ipv4Addr{255, 255, 255, 0}, 7);
  rig.run_for(40s);
  const LsaKey key{LsaType::kExternal, Ipv4Addr{203, 0, 113, 0}, rig.id(4)};
  const auto* at_far_end = rig.r(0).lsdb().find(key);
  ASSERT_NE(at_far_end, nullptr);
  EXPECT_EQ(std::get<ExternalLsaBody>(at_far_end->lsa.body).metric, 7u);
}

TEST(Flooding, BumpSelfLsasRefloodsEverything) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  const auto* before = rig.r(0).lsdb().find(router_key(rig.id(0)));
  const auto seq_before = before->lsa.header.seq;
  rig.r(0).bump_self_lsas();
  rig.run_for(20s);
  const auto* after_local = rig.r(0).lsdb().find(router_key(rig.id(0)));
  const auto* after_peer = rig.r(1).lsdb().find(router_key(rig.id(0)));
  EXPECT_GT(after_local->lsa.header.seq, seq_before);
  EXPECT_EQ(after_peer->lsa.header.seq, after_local->lsa.header.seq);
}

}  // namespace
}  // namespace nidkit::ospf
