// MTU-mismatch behaviour (§10.6): the classic real-world OSPF interop
// failure. With the RFC-mandated check on both sides, mismatched MTUs
// wedge the adjacency in ExStart; with `mtu-ignore` semantics the
// adjacency forms anyway.
#include <gtest/gtest.h>

#include "mining/miner.hpp"
#include "ospf_test_util.hpp"
#include "trace/trace.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

void make_mismatched_pair(Rig& rig, bool check_mtu) {
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  rig.net.fault(0).delay = 50ms;
  for (std::size_t i = 0; i < 2; ++i) {
    RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = frr_profile();
    cfg.profile.check_mtu = check_mtu;
    cfg.mtu = (i == 0) ? 9000 : 1500;  // jumbo vs standard
    rig.routers.push_back(
        std::make_unique<Router>(rig.net, rig.nodes[i], cfg, 1 + i));
  }
}

TEST(Mtu, MismatchWedgesAdjacencyInExStart) {
  Rig rig;
  make_mismatched_pair(rig, /*check_mtu=*/true);
  rig.start_all();
  rig.run_for(120s);
  // The small-MTU side rejects the jumbo side's DBDs and never leaves
  // ExStart; the jumbo side accepts the master's probes and wedges in
  // Exchange — the classic asymmetric presentation (one side ExStart, one
  // side Exchange, forever).
  EXPECT_LT(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kExchange);
  EXPECT_LE(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kExchange);
  EXPECT_LT(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kLoading);
  // Hello-level bidirectionality is unaffected — the failure is subtle,
  // which is why it bites in production.
  EXPECT_GE(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kTwoWay);
}

TEST(Mtu, MtuIgnoreFormsAdjacencyDespiteMismatch) {
  Rig rig;
  make_mismatched_pair(rig, /*check_mtu=*/false);
  rig.start_all();
  rig.run_for(120s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kFull);
}

TEST(Mtu, EqualMtusUnaffectedByCheck) {
  Rig rig;
  testutil::init_two(rig, frr_profile());  // both 1500, check on
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
}

TEST(Mtu, WedgeHasAMinableSignature) {
  // The black-box symptom of the wedge: DBD(I,M,MS) negotiation probes
  // answered only by more DBD(I,M,MS) probes — never by header-carrying
  // exchange DBDs or LSUs. The dbd-flags key scheme makes this visible.
  Rig rig;
  make_mismatched_pair(rig, /*check_mtu=*/true);
  trace::TraceLog log;
  log.attach(rig.net);
  rig.start_all();
  rig.run_for(180s);

  mining::CausalMiner miner(mining::MinerConfig{.tdelay = 50ms,
                                                .window_factor = 2.0,
                                                .horizon = 10s});
  const auto set = miner.mine(log, mining::ospf_dbd_flags_scheme());
  const auto dir = mining::RelationDirection::kSendToRecv;
  EXPECT_TRUE(set.has(dir, "DBD(I,M,MS)", "DBD(I,M,MS)"))
      << "the negotiation loop must be visible";
  // And nothing past negotiation ever happens:
  for (const auto& [cell, stats] : set.cells(dir)) {
    EXPECT_EQ(cell.response.find("LSU"), std::string::npos)
        << cell.stimulus << " -> " << cell.response;
  }
}

}  // namespace
}  // namespace nidkit::ospf
