// Interface-cost configuration tests: SPF must honor per-interface output
// costs, and traffic engineering via costs must steer paths.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

TEST(Cost, DefaultCostAppliedToAllLinks) {
  Rig rig;
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  rig.net.fault(0).delay = 50ms;
  for (std::size_t i = 0; i < 2; ++i) {
    RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = frr_profile();
    cfg.default_cost = 7;
    rig.routers.push_back(
        std::make_unique<Router>(rig.net, rig.nodes[i], cfg, 1 + i));
  }
  rig.start_all();
  rig.run_for(60s);
  const auto routes = rig.r(0).routes();
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].cost, 7u);
}

TEST(Cost, PerInterfaceOverrideSteersTraffic) {
  // Square: r0-r1-r3 and r0-r2-r3. Make r0's interface toward r1
  // expensive; r0 must reach r3 via r2.
  Rig rig;
  rig.add_nodes(4);
  const auto s01 = rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  const auto s02 = rig.net.add_p2p(rig.nodes[0], rig.nodes[2]);
  const auto s13 = rig.net.add_p2p(rig.nodes[1], rig.nodes[3]);
  const auto s23 = rig.net.add_p2p(rig.nodes[2], rig.nodes[3]);
  for (const auto s : {s01, s02, s13, s23}) rig.net.fault(s).delay = 50ms;

  for (std::size_t i = 0; i < 4; ++i) {
    RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = frr_profile();
    if (i == 0) cfg.interface_costs[0] = 50;  // r0's first iface -> r1
    rig.routers.push_back(
        std::make_unique<Router>(rig.net, rig.nodes[i], cfg, 10 + i));
  }
  rig.start_all();
  rig.run_for(120s);

  // r0's route to the r2-r3 subnet must go via r2 at cost 2, and to the
  // r1-r3 subnet via r2+r3 (cost 3) rather than via the expensive r1 link.
  for (const auto& route : rig.r(0).routes()) {
    EXPECT_NE(route.via, rig.id(1))
        << "no route may take the expensive first hop: "
        << route.prefix.to_string() << " cost=" << route.cost;
  }
}

TEST(Cost, AsymmetricCostsGiveAsymmetricDistances) {
  // r0 -> r1 costs 10 from r0's side, 1 from r1's side.
  Rig rig;
  rig.add_nodes(3);
  const auto s01 = rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  const auto s12 = rig.net.add_p2p(rig.nodes[1], rig.nodes[2]);
  for (const auto s : {s01, s12}) rig.net.fault(s).delay = 50ms;
  for (std::size_t i = 0; i < 3; ++i) {
    RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = frr_profile();
    if (i == 0) cfg.interface_costs[0] = 10;
    rig.routers.push_back(
        std::make_unique<Router>(rig.net, rig.nodes[i], cfg, 20 + i));
  }
  rig.start_all();
  rig.run_for(90s);

  auto cost_to_far_subnet = [&](Router& r) -> std::uint32_t {
    std::uint32_t best = 0;
    for (const auto& route : r.routes()) best = std::max(best, route.cost);
    return best;
  };
  // r0's farthest destination costs 10 (its expensive link) + 1.
  EXPECT_EQ(cost_to_far_subnet(rig.r(0)), 11u);
  // r2's farthest costs 1 + 1 (r1's side of the r0 link is cheap).
  EXPECT_EQ(cost_to_far_subnet(rig.r(2)), 2u);
}

TEST(Cost, CostChangePropagatesInLsa) {
  Rig rig;
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  rig.net.fault(0).delay = 50ms;
  RouterConfig cfg0;
  cfg0.router_id = RouterId{1, 1, 1, 1};
  cfg0.profile = frr_profile();
  cfg0.interface_costs[0] = 42;
  rig.routers.push_back(
      std::make_unique<Router>(rig.net, rig.nodes[0], cfg0, 1));
  RouterConfig cfg1;
  cfg1.router_id = RouterId{2, 2, 2, 2};
  cfg1.profile = frr_profile();
  rig.routers.push_back(
      std::make_unique<Router>(rig.net, rig.nodes[1], cfg1, 2));
  rig.start_all();
  rig.run_for(60s);

  // r1's copy of r0's router-LSA carries metric 42.
  const LsaKey key{LsaType::kRouter, Ipv4Addr{rig.id(0).value()}, rig.id(0)};
  const auto* entry = rig.r(1).lsdb().find(key);
  ASSERT_NE(entry, nullptr);
  const auto& body = std::get<RouterLsaBody>(entry->lsa.body);
  bool found = false;
  for (const auto& link : body.links)
    if (link.type == RouterLinkType::kPointToPoint) {
      EXPECT_EQ(link.metric, 42u);
      found = true;
    }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace nidkit::ospf
