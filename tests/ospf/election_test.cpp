// Designated-router election (§9.4) on broadcast LANs.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

const OspfInterface& lan_iface(Rig& rig, std::size_t i) {
  return rig.r(i).interfaces()[0];
}

TEST(Election, HighestIdWinsDrWithEqualPriorities) {
  Rig rig;
  testutil::init_lan(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(120s);  // wait timer (40 s) + exchange
  // Router ids 1.1.1.1 < 2.2.2.2 < 3.3.3.3: r2 is DR, r1 is BDR.
  EXPECT_EQ(lan_iface(rig, 2).state, InterfaceState::kDr);
  EXPECT_EQ(lan_iface(rig, 1).state, InterfaceState::kBackup);
  EXPECT_EQ(lan_iface(rig, 0).state, InterfaceState::kDrOther);
}

TEST(Election, AllRoutersAgreeOnDrAndBdr) {
  Rig rig;
  testutil::init_lan(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  const auto dr = lan_iface(rig, 0).dr;
  const auto bdr = lan_iface(rig, 0).bdr;
  EXPECT_FALSE(dr.is_zero());
  EXPECT_FALSE(bdr.is_zero());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(lan_iface(rig, i).dr, dr) << "router " << i;
    EXPECT_EQ(lan_iface(rig, i).bdr, bdr) << "router " << i;
  }
}

TEST(Election, PriorityBeatsRouterId) {
  Rig rig;
  rig.add_nodes(3);
  const auto seg = rig.net.add_lan(rig.nodes);
  rig.net.fault(seg).delay = 50ms;
  for (std::size_t i = 0; i < 3; ++i) {
    RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = frr_profile();
    cfg.priority = (i == 0) ? 200 : 1;  // lowest id, highest priority
    rig.routers.push_back(
        std::make_unique<Router>(rig.net, rig.nodes[i], cfg, 10 + i));
  }
  rig.start_all();
  rig.run_for(120s);
  EXPECT_EQ(lan_iface(rig, 0).state, InterfaceState::kDr);
}

TEST(Election, DrOtherPairsStayTwoWay) {
  Rig rig;
  testutil::init_lan(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  // r0 and r1 are DROther (ids 3,4 win); they must sit at 2-Way with each
  // other (§10.4) and Full with DR and BDR.
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kTwoWay);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(2)), NeighborState::kFull);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(3)), NeighborState::kFull);
}

TEST(Election, DrOriginatesNetworkLsa) {
  Rig rig;
  testutil::init_lan(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  const auto dr_addr = lan_iface(rig, 2).address;
  const LsaKey key{LsaType::kNetwork, dr_addr, rig.id(2)};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto* e = rig.r(i).lsdb().find(key);
    ASSERT_NE(e, nullptr) << "router " << i << " lacks the network-LSA";
    const auto& body = std::get<NetworkLsaBody>(e->lsa.body);
    EXPECT_EQ(body.attached_routers.size(), 3u);
  }
}

TEST(Election, BdrPromotedWhenDrDies) {
  Rig rig;
  testutil::init_lan(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  ASSERT_EQ(lan_iface(rig, 2).state, InterfaceState::kDr);
  rig.r(2).stop();
  rig.run_for(120s);  // dead interval + re-election + new exchange
  EXPECT_EQ(lan_iface(rig, 1).state, InterfaceState::kDr);
  EXPECT_EQ(lan_iface(rig, 0).state, InterfaceState::kBackup);
}

TEST(Election, LanAdjacenciesFollowNewDr) {
  Rig rig;
  testutil::init_lan(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  rig.r(3).stop();  // DR (highest id) dies
  rig.run_for(150s);
  // New DR = r2, new BDR = r1; r0 must be Full with both.
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(2)), NeighborState::kFull);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
}

TEST(Election, TwoRouterLanElectsDrAndBdr) {
  Rig rig;
  testutil::init_lan(rig, 2, frr_profile());
  rig.start_all();
  rig.run_for(120s);
  EXPECT_EQ(lan_iface(rig, 1).state, InterfaceState::kDr);
  EXPECT_EQ(lan_iface(rig, 0).state, InterfaceState::kBackup);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
}

}  // namespace
}  // namespace nidkit::ospf
