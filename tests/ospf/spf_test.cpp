// SPF (§16) route-computation tests: the protocol's end product. Both
// behaviour profiles must compute identical reachability — packet-level
// divergence notwithstanding, the implementations are interoperable at the
// routing level.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

std::map<std::uint32_t, Route> routes_by_prefix(Router& r) {
  std::map<std::uint32_t, Route> out;
  for (const auto& route : r.routes()) out[route.prefix.value()] = route;
  return out;
}

TEST(Spf, TwoRouterLinkYieldsOneSubnet) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  const auto routes = rig.r(0).routes();
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].mask, (Ipv4Addr{255, 255, 255, 252}));
  EXPECT_EQ(routes[0].cost, 1u);
}

TEST(Spf, LineTopologyCostsGrowWithDistance) {
  Rig rig;
  testutil::init_line(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(120s);
  auto routes = rig.r(0).routes();
  ASSERT_EQ(routes.size(), 3u);  // three /30 subnets
  std::vector<std::uint32_t> costs;
  for (const auto& r : routes) costs.push_back(r.cost);
  std::sort(costs.begin(), costs.end());
  EXPECT_EQ(costs, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(Spf, NextHopIsFirstRouterOnPath) {
  Rig rig;
  testutil::init_line(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(90s);
  // r0's route to the far subnet (r1-r2) goes via r1.
  for (const auto& route : rig.r(0).routes()) {
    if (route.cost == 2) {
      EXPECT_EQ(route.via, rig.id(1));
    }
    if (route.cost == 1) {
      EXPECT_TRUE(route.via.is_zero());  // directly attached
    }
  }
}

TEST(Spf, AllRoutersReachAllSubnets) {
  Rig rig;
  testutil::init_line(rig, 5, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(rig.r(i).routes().size(), 4u) << "router " << i;
}

TEST(Spf, ProfilesComputeIdenticalReachability) {
  for (const auto& profile : {frr_profile(), bird_profile()}) {
    Rig rig;
    testutil::init_line(rig, 4, profile);
    rig.start_all();
    rig.run_for(120s);
    const auto ref = routes_by_prefix(rig.r(0));
    // Opposite end sees the same prefixes (costs differ by vantage).
    const auto far = routes_by_prefix(rig.r(3));
    EXPECT_EQ(ref.size(), far.size()) << profile.name;
    for (const auto& [prefix, route] : ref)
      EXPECT_TRUE(far.count(prefix)) << profile.name;
  }
}

TEST(Spf, ExternalRouteCostsIncludeAsbrDistance) {
  Rig rig;
  testutil::init_line(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(90s);
  rig.r(2).originate_external(Ipv4Addr{198, 51, 100, 0},
                              Ipv4Addr{255, 255, 255, 0}, 10);
  rig.run_for(30s);
  const auto at_r0 = routes_by_prefix(rig.r(0));
  const auto it = at_r0.find(Ipv4Addr{198, 51, 100, 0}.value());
  ASSERT_NE(it, at_r0.end());
  EXPECT_EQ(it->second.cost, 2u + 10u);  // 2 hops to the ASBR + metric
  EXPECT_EQ(it->second.via, rig.id(1));
}

TEST(Spf, LanTransitNetworkRouted) {
  Rig rig;
  testutil::init_lan(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  const auto routes = rig.r(0).routes();
  ASSERT_FALSE(routes.empty());
  bool found_lan = false;
  for (const auto& r : routes) {
    if (r.mask == (Ipv4Addr{255, 255, 255, 0})) {
      found_lan = true;
      EXPECT_EQ(r.cost, 1u);
    }
  }
  EXPECT_TRUE(found_lan);
}

TEST(Spf, RoutesVanishWhenTopologyPartitions) {
  Rig rig;
  testutil::init_line(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(90s);
  ASSERT_EQ(rig.r(0).routes().size(), 2u);
  netsim::ChaosController chaos(rig.net);
  chaos.cut(1);  // r1-r2 link
  rig.run_for(90s);
  // The far /30 is no longer reachable from r0: only the local subnet
  // (and r1's stub view of the dead link, which r1 withdraws) remain.
  const auto routes = rig.r(0).routes();
  for (const auto& r : routes) EXPECT_LE(r.cost, 2u);
  EXPECT_LT(routes.size(), 3u);
}

TEST(Spf, EmptyBeforeStart) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  EXPECT_TRUE(rig.r(0).routes().empty());
}

}  // namespace
}  // namespace nidkit::ospf
