// Simple-password authentication (§D.4.2) tests.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

void make_pair_with_passwords(Rig& rig, const std::string& pw0,
                              const std::string& pw1) {
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  rig.net.fault(0).delay = 50ms;
  const std::string pws[2] = {pw0, pw1};
  for (std::size_t i = 0; i < 2; ++i) {
    RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = frr_profile();
    cfg.auth_password = pws[i];
    rig.routers.push_back(
        std::make_unique<Router>(rig.net, rig.nodes[i], cfg, 1 + i));
  }
}

TEST(Auth, MatchingPasswordsFormAdjacency) {
  Rig rig;
  make_pair_with_passwords(rig, "s3cret", "s3cret");
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_EQ(rig.r(0).stats().auth_failures, 0u);
}

TEST(Auth, MismatchedPasswordsSilentlyIsolate) {
  Rig rig;
  make_pair_with_passwords(rig, "s3cret", "wr0ng");
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kDown);
  EXPECT_GT(rig.r(0).stats().auth_failures, 0u);
  EXPECT_GT(rig.r(1).stats().auth_failures, 0u);
}

TEST(Auth, PasswordVsNullNeverPairs) {
  Rig rig;
  make_pair_with_passwords(rig, "s3cret", "");
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
  // Both directions fail: the authenticated side rejects AuType 0, the
  // null side rejects AuType 1.
  EXPECT_GT(rig.r(0).stats().auth_failures, 0u);
  EXPECT_GT(rig.r(1).stats().auth_failures, 0u);
}

TEST(Auth, PasswordTravelsOnTheWire) {
  Rig rig;
  make_pair_with_passwords(rig, "abc", "abc");
  bool saw_autype1 = false;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.direction != netsim::Direction::kSend) return;
    auto d = decode(ev.frame->payload);
    if (!d.ok()) return;
    if (d.value().header.au_type == 1) {
      saw_autype1 = true;
      EXPECT_EQ(d.value().header.auth[0], 'a');
      EXPECT_EQ(d.value().header.auth[2], 'c');
      EXPECT_EQ(d.value().header.auth[3], 0);  // zero-padded
    }
  });
  rig.start_all();
  rig.run_for(15s);
  EXPECT_TRUE(saw_autype1);
}

TEST(Auth, LongPasswordsTruncateToEightBytes) {
  Rig rig;
  make_pair_with_passwords(rig, "12345678ignored", "12345678IGNORED");
  rig.start_all();
  rig.run_for(60s);
  // Only the first 8 bytes are the key (§D.4.2): these two configs match.
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
}

TEST(Auth, CodecRoundTripsAuthFields) {
  OspfPacket pkt = make_packet(RouterId{1, 1, 1, 1}, kBackboneArea,
                               HelloBody{});
  pkt.header.au_type = 1;
  pkt.header.auth = {'p', 'w', 0, 0, 0, 0, 0, 0};
  auto decoded = decode(encode(pkt));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().header.au_type, 1);
  EXPECT_EQ(decoded.value().header.auth, pkt.header.auth);
}

TEST(Auth, ChecksumIndependentOfPassword) {
  // §D.4: the checksum excludes the authentication field, so two packets
  // differing only in key carry the same checksum.
  OspfPacket a = make_packet(RouterId{1, 1, 1, 1}, kBackboneArea,
                             HelloBody{});
  OspfPacket b = a;
  a.header.au_type = b.header.au_type = 1;
  a.header.auth = {'x', 0, 0, 0, 0, 0, 0, 0};
  b.header.auth = {'y', 0, 0, 0, 0, 0, 0, 0};
  const auto wa = encode(a);
  const auto wb = encode(b);
  EXPECT_EQ(wa[12], wb[12]);
  EXPECT_EQ(wa[13], wb[13]);
  EXPECT_TRUE(decode(wa).ok());
  EXPECT_TRUE(decode(wb).ok());
}

// ---- Cryptographic (MD5) authentication, §D.4.3 ----

void make_pair_with_md5(Rig& rig, const std::string& k0,
                        const std::string& k1, std::uint8_t id0 = 1,
                        std::uint8_t id1 = 1) {
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  rig.net.fault(0).delay = 50ms;
  const std::string keys[2] = {k0, k1};
  const std::uint8_t ids[2] = {id0, id1};
  for (std::size_t i = 0; i < 2; ++i) {
    RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = frr_profile();
    cfg.md5_key = keys[i];
    cfg.md5_key_id = ids[i];
    rig.routers.push_back(
        std::make_unique<Router>(rig.net, rig.nodes[i], cfg, 1 + i));
  }
}

TEST(Md5Auth, MatchingKeysFormAdjacency) {
  Rig rig;
  make_pair_with_md5(rig, "hunter2hunter2", "hunter2hunter2");
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_EQ(rig.r(0).stats().auth_failures, 0u);
  EXPECT_EQ(rig.r(0).stats().decode_failures, 0u);
}

TEST(Md5Auth, WrongKeySilentlyIsolates) {
  Rig rig;
  make_pair_with_md5(rig, "hunter2", "hunter3");
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
  EXPECT_GT(rig.r(0).stats().auth_failures, 0u);
  EXPECT_GT(rig.r(1).stats().auth_failures, 0u);
}

TEST(Md5Auth, KeyIdMismatchRejected) {
  Rig rig;
  make_pair_with_md5(rig, "samekey", "samekey", /*id0=*/1, /*id1=*/2);
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
  EXPECT_GT(rig.r(0).stats().auth_failures, 0u);
}

TEST(Md5Auth, Md5VsNullNeverPairs) {
  Rig rig;
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  rig.net.fault(0).delay = 50ms;
  RouterConfig c0;
  c0.router_id = RouterId{1, 1, 1, 1};
  c0.profile = frr_profile();
  c0.md5_key = "secret";
  rig.routers.push_back(
      std::make_unique<Router>(rig.net, rig.nodes[0], c0, 1));
  RouterConfig c1;
  c1.router_id = RouterId{2, 2, 2, 2};
  c1.profile = frr_profile();
  rig.routers.push_back(
      std::make_unique<Router>(rig.net, rig.nodes[1], c1, 2));
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
}

TEST(Md5Auth, ReplayedPacketRejected) {
  Rig rig;
  make_pair_with_md5(rig, "replaykey", "replaykey");
  // Capture one authenticated hello off the wire...
  std::vector<std::uint8_t> captured;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (captured.empty() && ev.node == rig.nodes[0] &&
        ev.direction == netsim::Direction::kSend)
      captured = ev.frame->payload.to_vector();
  });
  rig.start_all();
  rig.run_for(60s);
  ASSERT_FALSE(captured.empty());
  ASSERT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kFull);

  // ...and replay it later: the stale sequence number must be rejected.
  const auto before = rig.r(1).stats().auth_failures;
  netsim::Frame frame;
  frame.dst = rig.net.iface(rig.nodes[1], 0).address;
  frame.protocol = kIpProtoOspf;
  frame.payload = captured;
  rig.net.send(rig.nodes[0], 0, std::move(frame));
  rig.run_for(2s);
  EXPECT_EQ(rig.r(1).stats().auth_failures, before + 1);
}

TEST(Md5Auth, TamperedBodyRejected) {
  // With AuType 2 there is no standard checksum; integrity rests on the
  // digest. Flip one body byte of a captured packet: decode still succeeds
  // structurally, but the router's digest check must reject it.
  Rig rig;
  make_pair_with_md5(rig, "integrity", "integrity");
  std::vector<std::uint8_t> captured;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (captured.empty() && ev.node == rig.nodes[0] &&
        ev.direction == netsim::Direction::kSend)
      captured = ev.frame->payload.to_vector();
  });
  rig.start_all();
  rig.run_for(60s);
  ASSERT_FALSE(captured.empty());

  auto tampered = captured;
  tampered[kOspfHeaderSize] ^= 0x01;
  const auto before = rig.r(1).stats().auth_failures;
  netsim::Frame frame;
  frame.dst = rig.net.iface(rig.nodes[1], 0).address;
  frame.protocol = kIpProtoOspf;
  frame.payload = tampered;
  rig.net.send(rig.nodes[0], 0, std::move(frame));
  rig.run_for(2s);
  EXPECT_EQ(rig.r(1).stats().auth_failures, before + 1);
}

TEST(Md5Auth, CodecRoundTripsMd5Frames) {
  OspfPacket pkt = make_packet(RouterId{1, 1, 1, 1}, kBackboneArea,
                               HelloBody{});
  pkt.header.au_type = 2;
  pkt.header.md5_key_id = 7;
  pkt.header.md5_seq = 1234;
  const std::string key = "k3y";
  const std::span<const std::uint8_t> key_span{
      reinterpret_cast<const std::uint8_t*>(key.data()), key.size()};
  const auto wire = encode_md5(pkt, key_span);
  EXPECT_TRUE(verify_md5(wire, key_span));

  auto out = decode(wire);
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value().header.au_type, 2);
  EXPECT_EQ(out.value().header.md5_key_id, 7);
  EXPECT_EQ(out.value().header.md5_seq, 1234u);

  const std::string wrong = "k3y2";
  EXPECT_FALSE(verify_md5(
      wire, {reinterpret_cast<const std::uint8_t*>(wrong.data()),
             wrong.size()}));
}

}  // namespace
}  // namespace nidkit::ospf
