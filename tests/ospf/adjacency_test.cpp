// Neighbor FSM and database-exchange tests: hello discovery, master/slave
// negotiation, Full adjacency, dead-interval expiry, parameter mismatch.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

TEST(Adjacency, TwoRoutersReachFull) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kFull);
}

TEST(Adjacency, BirdProfileAlsoReachesFull) {
  Rig rig;
  testutil::init_two(rig, bird_profile());
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kFull);
}

TEST(Adjacency, MixedProfilesInteroperate) {
  // The profiles model *interoperable* daemons: a FRR-like and a BIRD-like
  // router on one link must still synchronize.
  Rig rig;
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  rig.net.fault(0).delay = 50ms;
  RouterConfig c0;
  c0.router_id = RouterId{1, 1, 1, 1};
  c0.profile = frr_profile();
  rig.routers.push_back(
      std::make_unique<Router>(rig.net, rig.nodes[0], c0, 1));
  RouterConfig c1;
  c1.router_id = RouterId{2, 2, 2, 2};
  c1.profile = bird_profile();
  rig.routers.push_back(
      std::make_unique<Router>(rig.net, rig.nodes[1], c1, 2));
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kFull);
}

TEST(Adjacency, DatabasesIdenticalAfterSync) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).lsdb().size(), 2u);  // both router-LSAs
  EXPECT_EQ(rig.r(1).lsdb().size(), 2u);
  const LsaKey key{LsaType::kRouter, Ipv4Addr{rig.id(0).value()}, rig.id(0)};
  const auto* on0 = rig.r(0).lsdb().find(key);
  const auto* on1 = rig.r(1).lsdb().find(key);
  ASSERT_NE(on0, nullptr);
  ASSERT_NE(on1, nullptr);
  EXPECT_EQ(on0->lsa.header.seq, on1->lsa.header.seq);
  EXPECT_EQ(on0->lsa.header.checksum, on1->lsa.header.checksum);
}

TEST(Adjacency, HigherRouterIdBecomesMaster) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  // 2.2.2.2 > 1.1.1.1: router 1 is master of the exchange.
  const auto& n0 = rig.r(0).interfaces()[0].neighbors.at(rig.id(1));
  const auto& n1 = rig.r(1).interfaces()[0].neighbors.at(rig.id(0));
  EXPECT_FALSE(n0.we_are_master);
  EXPECT_TRUE(n1.we_are_master);
}

TEST(Adjacency, HelloIntervalMismatchPreventsAdjacency) {
  Rig rig;
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  RouterConfig c0;
  c0.router_id = RouterId{1, 1, 1, 1};
  c0.profile = frr_profile();
  c0.hello_interval = 10s;
  rig.routers.push_back(
      std::make_unique<Router>(rig.net, rig.nodes[0], c0, 1));
  RouterConfig c1 = c0;
  c1.router_id = RouterId{2, 2, 2, 2};
  c1.hello_interval = 5s;  // mismatch: hellos must be ignored (§10.5)
  rig.routers.push_back(
      std::make_unique<Router>(rig.net, rig.nodes[1], c1, 2));
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kDown);
}

TEST(Adjacency, DeadIntervalExpiresCrashedNeighbor) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  ASSERT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);

  rig.r(1).stop();  // silent crash: no more hellos
  // RouterDeadInterval (40 s) counts from the *last received hello*, which
  // predates the crash by up to one hello interval (10 s).
  rig.run_for(29s);
  EXPECT_NE(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
  rig.run_for(26s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
}

TEST(Adjacency, RouterLsaDropsLinkAfterNeighborDeath) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  rig.r(1).stop();
  rig.run_for(60s);
  const LsaKey key{LsaType::kRouter, Ipv4Addr{rig.id(0).value()}, rig.id(0)};
  const auto* entry = rig.r(0).lsdb().find(key);
  ASSERT_NE(entry, nullptr);
  const auto& body = std::get<RouterLsaBody>(entry->lsa.body);
  for (const auto& link : body.links)
    EXPECT_NE(link.type, RouterLinkType::kPointToPoint)
        << "p2p link to the dead neighbor must disappear";
}

TEST(Adjacency, LinkCutDropsAdjacencyAfterDeadInterval) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  netsim::ChaosController chaos(rig.net);
  chaos.cut(0);
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kDown);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kDown);
}

TEST(Adjacency, ReconvergesAfterLinkRestored) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  netsim::ChaosController chaos(rig.net);
  chaos.cut(0);
  rig.run_for(60s);
  chaos.restore(0);
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_EQ(rig.r(1).neighbor_state(rig.id(0)), NeighborState::kFull);
}

TEST(Adjacency, StatsCountTraffic) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  const auto& s = rig.r(0).stats();
  EXPECT_GT(s.tx_by_type[1], 0u);  // hellos
  EXPECT_GT(s.tx_by_type[2], 0u);  // DBDs
  EXPECT_GT(s.rx_by_type[1], 0u);
  EXPECT_GT(s.lsa_installs, 0u);
  EXPECT_EQ(s.decode_failures, 0u);
}

TEST(Adjacency, FullAdjacenciesPredicate) {
  Rig rig;
  testutil::init_line(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(90s);
  EXPECT_TRUE(rig.r(1).full_adjacencies(2));   // middle router: 2 neighbors
  EXPECT_TRUE(rig.r(0).full_adjacencies(1));
  EXPECT_FALSE(rig.r(0).full_adjacencies(2));
}

TEST(Adjacency, MaxNeighborStateProbe) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  EXPECT_EQ(rig.r(0).max_neighbor_state(), -1);
  rig.start_all();
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).max_neighbor_state(),
            static_cast<int>(NeighborState::kFull));
}

TEST(Adjacency, SurvivesHeavyLossEventually) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.net.fault(0).loss = 0.15;
  rig.start_all();
  rig.run_for(300s);
  EXPECT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kFull);
  EXPECT_GT(rig.r(0).stats().retransmissions +
                rig.r(1).stats().retransmissions,
            0u);
}

}  // namespace
}  // namespace nidkit::ospf
