// Equal-cost multipath tests: SPF must report every tied next hop.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

const Route* route_to(Router& r, Ipv4Addr prefix,
                      std::vector<Route>& storage) {
  storage = r.routes();
  for (const auto& route : storage)
    if (route.prefix == prefix) return &route;
  return nullptr;
}

TEST(Ecmp, SquareTopologyReportsBothNextHops) {
  // r0-r1-r3 / r0-r2-r3 with unit costs: r0 reaches the far r1-r3 and
  // r2-r3 subnets... the truly symmetric destination is r3's external.
  Rig rig;
  rig.add_nodes(4);
  const auto s01 = rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  const auto s02 = rig.net.add_p2p(rig.nodes[0], rig.nodes[2]);
  const auto s13 = rig.net.add_p2p(rig.nodes[1], rig.nodes[3]);
  const auto s23 = rig.net.add_p2p(rig.nodes[2], rig.nodes[3]);
  for (const auto s : {s01, s02, s13, s23}) rig.net.fault(s).delay = 50ms;
  rig.make_routers(frr_profile());
  rig.start_all();
  rig.run_for(120s);
  rig.r(3).originate_external(Ipv4Addr{198, 51, 100, 0},
                              Ipv4Addr{255, 255, 255, 0}, 10);
  rig.run_for(30s);

  std::vector<Route> storage;
  const auto* route = route_to(rig.r(0), Ipv4Addr{198, 51, 100, 0}, storage);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->cost, 2u + 10u);
  ASSERT_EQ(route->next_hops.size(), 2u) << "both r1 and r2 are tied";
  EXPECT_EQ(route->next_hops[0], rig.id(1));
  EXPECT_EQ(route->next_hops[1], rig.id(2));
  EXPECT_EQ(route->via, rig.id(1));  // primary = lowest id
}

TEST(Ecmp, UnequalCostsCollapseToSinglePath) {
  Rig rig;
  rig.add_nodes(4);
  const auto s01 = rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  const auto s02 = rig.net.add_p2p(rig.nodes[0], rig.nodes[2]);
  const auto s13 = rig.net.add_p2p(rig.nodes[1], rig.nodes[3]);
  const auto s23 = rig.net.add_p2p(rig.nodes[2], rig.nodes[3]);
  for (const auto s : {s01, s02, s13, s23}) rig.net.fault(s).delay = 50ms;
  for (std::size_t i = 0; i < 4; ++i) {
    RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = frr_profile();
    if (i == 0) cfg.interface_costs[0] = 2;  // tilt toward r2
    rig.routers.push_back(
        std::make_unique<Router>(rig.net, rig.nodes[i], cfg, 30 + i));
  }
  rig.start_all();
  rig.run_for(120s);
  rig.r(3).originate_external(Ipv4Addr{198, 51, 101, 0},
                              Ipv4Addr{255, 255, 255, 0}, 10);
  rig.run_for(30s);

  std::vector<Route> storage;
  const auto* route = route_to(rig.r(0), Ipv4Addr{198, 51, 101, 0}, storage);
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->next_hops.size(), 1u);
  EXPECT_EQ(route->next_hops[0], rig.id(2));
}

TEST(Ecmp, DirectlyAttachedRoutesHaveNoNextHops) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  for (const auto& route : rig.r(0).routes()) {
    EXPECT_TRUE(route.next_hops.empty());
    EXPECT_TRUE(route.via.is_zero());
  }
}

TEST(Ecmp, LinearTopologyAlwaysSinglePath) {
  Rig rig;
  testutil::init_line(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(120s);
  for (const auto& route : rig.r(0).routes())
    EXPECT_LE(route.next_hops.size(), 1u);
}

}  // namespace
}  // namespace nidkit::ospf
