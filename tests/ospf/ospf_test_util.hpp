// Shared helpers for OSPF protocol-engine tests: a tiny rig that wires N
// routers into a simulator-backed network without pulling in the full
// experiment harness.
#pragma once

#include <memory>
#include <vector>

#include "netsim/chaos.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "ospf/router.hpp"

namespace nidkit::ospf::testutil {

using namespace std::chrono_literals;

struct Rig {
  Rig() = default;
  Rig(const Rig&) = delete;             // Network holds a Simulator&;
  Rig& operator=(const Rig&) = delete;  // the rig must never relocate

  netsim::Simulator sim;
  netsim::Network net{sim, 99};
  std::vector<netsim::NodeId> nodes;
  std::vector<std::unique_ptr<Router>> routers;

  /// Adds `n` nodes named r0..r{n-1}.
  void add_nodes(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      nodes.push_back(net.add_node("r" + std::to_string(i)));
  }

  /// Creates routers with ids 1.1.1.1, 2.2.2.2, ... sharing `profile`.
  void make_routers(const BehaviorProfile& profile) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      RouterConfig cfg;
      const auto b = static_cast<std::uint8_t>(i + 1);
      cfg.router_id = RouterId{b, b, b, b};
      cfg.profile = profile;
      routers.push_back(
          std::make_unique<Router>(net, nodes[i], cfg, 1000 + i));
    }
  }

  void start_all() {
    for (auto& r : routers) r->start();
  }

  void run_for(SimDuration d) { sim.run_until(sim.now() + d); }

  Router& r(std::size_t i) { return *routers.at(i); }
  RouterId id(std::size_t i) {
    const auto b = static_cast<std::uint8_t>(i + 1);
    return RouterId{b, b, b, b};
  }
};

/// Wires `rig` as two routers on a point-to-point link.
inline void init_two(Rig& rig, const BehaviorProfile& profile,
                     SimDuration delay = 50ms) {
  rig.add_nodes(2);
  rig.net.add_p2p(rig.nodes[0], rig.nodes[1]);
  rig.net.fault(0).delay = delay;
  rig.make_routers(profile);
}

/// Wires `rig` as a line: r0 - r1 - ... - r{n-1}.
inline void init_line(Rig& rig, std::size_t n, const BehaviorProfile& profile,
                      SimDuration delay = 50ms) {
  rig.add_nodes(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto seg = rig.net.add_p2p(rig.nodes[i], rig.nodes[i + 1]);
    rig.net.fault(seg).delay = delay;
  }
  rig.make_routers(profile);
}

/// Wires `rig` as one broadcast LAN with n routers.
inline void init_lan(Rig& rig, std::size_t n, const BehaviorProfile& profile,
                     SimDuration delay = 50ms) {
  rig.add_nodes(n);
  const auto seg = rig.net.add_lan(rig.nodes);
  rig.net.fault(seg).delay = delay;
  rig.make_routers(profile);
}

}  // namespace nidkit::ospf::testutil
