// Premature aging / withdrawal tests (§14.1).
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

const Ipv4Addr kPrefix{198, 51, 100, 0};
const Ipv4Addr kMask{255, 255, 255, 0};

TEST(Withdraw, RemovedFromEveryDatabase) {
  Rig rig;
  testutil::init_line(rig, 3, frr_profile());
  rig.start_all();
  rig.run_for(90s);
  rig.r(0).originate_external(kPrefix, kMask, 5);
  rig.run_for(30s);
  const LsaKey key{LsaType::kExternal, kPrefix, rig.id(0)};
  for (int i = 0; i < 3; ++i)
    ASSERT_NE(rig.r(i).lsdb().find(key), nullptr) << "router " << i;

  EXPECT_TRUE(rig.r(0).withdraw_external(kPrefix));
  rig.run_for(60s);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(rig.r(i).lsdb().find(key), nullptr)
        << "router " << i << " still holds the flushed LSA";
}

TEST(Withdraw, RouteDisappearsImmediatelyFromSpf) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  rig.r(0).originate_external(kPrefix, kMask, 5);
  rig.run_for(20s);
  auto has_route = [&](Router& r) {
    for (const auto& route : r.routes())
      if (route.prefix == kPrefix) return true;
    return false;
  };
  ASSERT_TRUE(has_route(rig.r(1)));
  rig.r(0).withdraw_external(kPrefix);
  rig.run_for(10s);
  // SPF ignores MaxAge LSAs even before the database cleanup completes.
  EXPECT_FALSE(has_route(rig.r(1)));
}

TEST(Withdraw, UnknownPrefixReturnsFalse) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(30s);
  EXPECT_FALSE(rig.r(0).withdraw_external(kPrefix));
}

TEST(Withdraw, WorksWithBirdProfileToo) {
  Rig rig;
  testutil::init_line(rig, 3, bird_profile());
  rig.start_all();
  rig.run_for(90s);
  rig.r(1).originate_external(kPrefix, kMask, 9);
  rig.run_for(30s);
  EXPECT_TRUE(rig.r(1).withdraw_external(kPrefix));
  rig.run_for(60s);
  const LsaKey key{LsaType::kExternal, kPrefix, rig.id(1)};
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(rig.r(i).lsdb().find(key), nullptr) << "router " << i;
}

TEST(Withdraw, ReoriginationAfterWithdrawalStartsFresh) {
  Rig rig;
  testutil::init_two(rig, frr_profile());
  rig.start_all();
  rig.run_for(60s);
  rig.r(0).originate_external(kPrefix, kMask, 5);
  rig.run_for(20s);
  rig.r(0).withdraw_external(kPrefix);
  rig.run_for(60s);
  rig.r(0).originate_external(kPrefix, kMask, 7);
  rig.run_for(20s);
  const LsaKey key{LsaType::kExternal, kPrefix, rig.id(0)};
  const auto* on_peer = rig.r(1).lsdb().find(key);
  ASSERT_NE(on_peer, nullptr);
  EXPECT_LT(rig.r(1).lsdb().age_at(*on_peer, rig.sim.now()),
            kMaxAgeSeconds);
  EXPECT_EQ(std::get<ExternalLsaBody>(on_peer->lsa.body).metric, 7u);
}

}  // namespace
}  // namespace nidkit::ospf
