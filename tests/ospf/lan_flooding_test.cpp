// LAN flooding scoping (§13.3 on broadcast networks): DRothers flood
// toward the DR/BDR on 224.0.0.6; the DR refloods to everyone on
// 224.0.0.5; the BDR stays quiet unless the DR fails.
#include <gtest/gtest.h>

#include "ospf_test_util.hpp"

namespace nidkit::ospf {
namespace {

using namespace std::chrono_literals;
using testutil::Rig;

struct LsuObserver {
  explicit LsuObserver(Rig& rig) {
    rig.net.set_tap([this](const netsim::TapEvent& ev) {
      if (ev.direction != netsim::Direction::kSend) return;
      auto d = decode(ev.frame->payload);
      if (!d.ok()) return;
      if (d.value().header.type != PacketType::kLsUpdate) return;
      sends.push_back({ev.node, ev.frame->dst});
    });
  }
  struct Send {
    netsim::NodeId node;
    Ipv4Addr dst;
  };
  std::vector<Send> sends;
};

TEST(LanFlooding, DrOtherFloodsToAllDRouters) {
  // 4-router LAN: ids 1..4, DR = r3 (4.4.4.4), BDR = r2 (3.3.3.3),
  // DROthers = r0, r1. An external originated at DROther r0 must go out
  // to 224.0.0.6 and be refloodeded by the DR to 224.0.0.5.
  Rig rig;
  testutil::init_lan(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  ASSERT_EQ(rig.r(3).interfaces()[0].state, InterfaceState::kDr);
  ASSERT_EQ(rig.r(0).interfaces()[0].state, InterfaceState::kDrOther);

  LsuObserver obs(rig);
  rig.r(0).originate_external(Ipv4Addr{192, 168, 42, 0},
                              Ipv4Addr{255, 255, 255, 0}, 1);
  rig.run_for(20s);

  bool drother_to_alld = false;
  bool dr_to_allspf = false;
  bool bdr_flooded = false;
  for (const auto& s : obs.sends) {
    if (s.node == rig.nodes[0] && s.dst == kAllDRouters)
      drother_to_alld = true;
    if (s.node == rig.nodes[3] && s.dst == kAllSpfRouters)
      dr_to_allspf = true;
    if (s.node == rig.nodes[2] && s.dst == kAllSpfRouters)
      bdr_flooded = true;
  }
  EXPECT_TRUE(drother_to_alld)
      << "the DROther must scope its flood to the (B)DR group";
  EXPECT_TRUE(dr_to_allspf) << "the DR must reflood to all routers";
  EXPECT_FALSE(bdr_flooded) << "the BDR defers to the DR";
}

TEST(LanFlooding, AllRoutersLearnTheLsa) {
  Rig rig;
  testutil::init_lan(rig, 4, bird_profile());
  rig.start_all();
  rig.run_for(150s);
  rig.r(1).originate_external(Ipv4Addr{192, 168, 43, 0},
                              Ipv4Addr{255, 255, 255, 0}, 2);
  rig.run_for(20s);
  const LsaKey key{LsaType::kExternal, Ipv4Addr{192, 168, 43, 0},
                   rig.id(1)};
  for (int i = 0; i < 4; ++i)
    EXPECT_NE(rig.r(i).lsdb().find(key), nullptr) << "router " << i;
}

TEST(LanFlooding, DrOtherToDrOtherTrafficGoesThroughDr) {
  // r0's LSA must reach r1 (another DROther) even though they are not
  // adjacent — the DR relays.
  Rig rig;
  testutil::init_lan(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  ASSERT_EQ(rig.r(0).neighbor_state(rig.id(1)), NeighborState::kTwoWay);
  rig.r(0).originate_external(Ipv4Addr{192, 168, 44, 0},
                              Ipv4Addr{255, 255, 255, 0}, 3);
  rig.run_for(20s);
  const LsaKey key{LsaType::kExternal, Ipv4Addr{192, 168, 44, 0},
                   rig.id(0)};
  EXPECT_NE(rig.r(1).lsdb().find(key), nullptr);
}

TEST(LanFlooding, NonDrRoutersIgnoreAllDRoutersTraffic) {
  // Frames to 224.0.0.6 reach every NIC (and the capture), but DROthers
  // must not act on them: r1 (DROther) never acks or refloods r0's
  // AllDRouters-scoped LSU.
  Rig rig;
  testutil::init_lan(rig, 4, frr_profile());
  rig.start_all();
  rig.run_for(150s);
  LsuObserver obs(rig);
  rig.r(0).originate_external(Ipv4Addr{192, 168, 45, 0},
                              Ipv4Addr{255, 255, 255, 0}, 4);
  rig.run_for(3s);  // before the DR's reflood reaches steady state
  for (const auto& s : obs.sends)
    EXPECT_NE(s.node, rig.nodes[1])
        << "a DROther reflooded traffic it should have ignored";
}

}  // namespace
}  // namespace nidkit::ospf
