// Wall-clock half of the obs contract: phase spans export as Chrome
// trace-event JSON (the schema Perfetto loads), one lane per recording
// thread, with child phases nested inside their scenario span.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/obs.hpp"

namespace nidkit::obs {
namespace {

using namespace std::chrono_literals;

class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Registry::instance().reset();
  }

  static std::string trace_json() {
    std::ostringstream os;
    Registry::instance().write_trace_json(os);
    return os.str();
  }

  static std::size_t occurrences(const std::string& text,
                                 const std::string& needle) {
    std::size_t n = 0;
    for (auto pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
      ++n;
    return n;
  }
};

TEST_F(TraceExportTest, EmitsMetadataAndCompleteEvents) {
  auto& reg = Registry::instance();
  reg.record_span("scenario", "frr/linear-2/s1", 10, 500);
  reg.record_span("simulate", "frr/linear-2/s1", 20, 300);

  const auto json = trace_json();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  // Process + thread metadata give Perfetto its lane names.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-0\""), std::string::npos);
  // One complete ("X") event per span, with the schema's required fields.
  EXPECT_EQ(occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":490"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"label\":\"frr/linear-2/s1\"}"),
            std::string::npos);
  // Crude structural validity: balanced braces/brackets, closed array.
  EXPECT_EQ(occurrences(json, "{"), occurrences(json, "}"));
  EXPECT_EQ(occurrences(json, "["), occurrences(json, "]"));
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST_F(TraceExportTest, EscapesLabelsForJson) {
  Registry::instance().record_span("mine", "odd\"label\\with\ncontrol", 0, 1);
  const auto json = trace_json();
  EXPECT_NE(json.find("odd\\\"label\\\\with\\ncontrol"), std::string::npos);
  // No raw newline may survive inside the label string.
  EXPECT_EQ(json.find("with\ncontrol"), std::string::npos);
}

TEST_F(TraceExportTest, EmptyRegistryStillWritesLoadableSkeleton) {
  const auto json = trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST_F(TraceExportTest, AuditPhaseSpansNestWithinScenario) {
  harness::ExperimentConfig c;
  c.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                  topo::Spec{topo::Kind::kMesh, 3}};
  c.seeds = {1};
  c.duration = 90s;
  c.jobs = 2;
  harness::audit_ospf({ospf::frr_profile(), ospf::bird_profile()}, c,
                      mining::ospf_type_scheme());

  const auto spans = Registry::instance().spans();
  std::vector<SpanEvent> scenarios, children;
  for (const auto& s : spans) {
    if (s.name == "scenario") scenarios.push_back(s);
    if (s.name == "simulate" || s.name == "mine") children.push_back(s);
  }
  ASSERT_EQ(scenarios.size(), 4u);  // 2 impls x 2 topos x 1 seed
  ASSERT_EQ(children.size(), 8u);   // simulate + mine per scenario

  // Every child phase must sit inside a scenario span on the SAME lane —
  // that is what makes the Perfetto view read as nested slices.
  for (const auto& child : children) {
    const bool contained = std::any_of(
        scenarios.begin(), scenarios.end(), [&](const SpanEvent& outer) {
          return outer.tid == child.tid && outer.label == child.label &&
                 outer.ts_us <= child.ts_us &&
                 child.ts_us + child.dur_us <= outer.ts_us + outer.dur_us;
        });
    EXPECT_TRUE(contained) << child.name << " " << child.label;
  }

  // The single-threaded canonical merge shows up as merge spans.
  EXPECT_TRUE(std::any_of(spans.begin(), spans.end(), [](const SpanEvent& s) {
    return s.name == "merge";
  }));
}

}  // namespace
}  // namespace nidkit::obs
