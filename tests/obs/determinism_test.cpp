// The deterministic half of the obs contract: the registry's "sim"
// section is bit-identical across worker counts and cache temperature.
// Worker threads never touch sim counters — every scenario's delta is
// merged in canonical index order on one thread, and cached entries
// replay their stored delta instead of re-simulating.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "harness/experiment.hpp"
#include "obs/obs.hpp"

namespace nidkit::harness {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class ObsDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("nidkit_obs_det_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name())))
               .string();
    fs::remove_all(dir_);
    obs::Registry::instance().reset();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    fs::remove_all(dir_);
  }

  ExperimentConfig config(std::size_t jobs, bool cached) const {
    ExperimentConfig c;
    c.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                    topo::Spec{topo::Kind::kMesh, 3}};
    c.seeds = {1, 2};
    c.duration = 90s;
    c.jobs = jobs;
    if (cached) c.cache_dir = dir_;
    return c;
  }

  /// Runs a two-implementation audit from a clean registry and returns
  /// the deterministic snapshot line it produced.
  std::string audit_sim_json(std::size_t jobs, bool cached,
                             ExecReport* exec = nullptr) {
    obs::Registry::instance().reset();
    const auto audit =
        audit_ospf({ospf::frr_profile(), ospf::bird_profile()},
                   config(jobs, cached), mining::ospf_type_scheme());
    if (exec) *exec = audit.exec;
    return obs::Registry::instance().sim_json();
  }

  std::string dir_;
};

TEST_F(ObsDeterminismTest, SimSectionIdenticalAcrossWorkerCounts) {
  const auto one = audit_sim_json(1, /*cached=*/false);
  // The run actually recorded something — a vacuous comparison of two
  // empty sections would pass without testing anything.
  EXPECT_NE(one.find("\"sim.events_executed\":"), std::string::npos);
  EXPECT_NE(one.find("\"ospf.fsm_transitions\":"), std::string::npos);
  EXPECT_EQ(one, audit_sim_json(4, /*cached=*/false));
  EXPECT_EQ(one, audit_sim_json(8, /*cached=*/false));
}

TEST_F(ObsDeterminismTest, WarmCacheReplaysIdenticalSimSection) {
  ExecReport cold_exec, warm_exec;
  const auto cold = audit_sim_json(2, /*cached=*/true, &cold_exec);
  EXPECT_EQ(cold_exec.cache_misses, 8u);  // 2 impls x 2 topos x 2 seeds

  const auto warm = audit_sim_json(2, /*cached=*/true, &warm_exec);
  EXPECT_EQ(warm_exec.cache_hits, 8u);
  EXPECT_EQ(warm_exec.tasks_run, 0u);  // nothing re-simulated: pure replay

  const auto uncached = audit_sim_json(1, /*cached=*/false);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, uncached);
}

TEST_F(ObsDeterminismTest, SimCountersCoverTheScenarioTaxonomy) {
  audit_sim_json(2, /*cached=*/false);
  const auto& reg = obs::Registry::instance();
  // 8 scenarios merged, each contributing runs=1.
  EXPECT_EQ(reg.sim_counter("scenario.runs"), 8u);
  EXPECT_GT(reg.sim_counter("sim.events_executed"), 0u);
  EXPECT_GT(reg.sim_counter("sim.frames_delivered"), 0u);
  EXPECT_GT(reg.sim_counter("ospf.tx_hello"), 0u);
  EXPECT_GT(reg.sim_counter("ospf.rx_hello"), 0u);
  EXPECT_GT(reg.sim_counter("ospf.fsm_transitions"), 0u);
  EXPECT_GT(reg.sim_counter("ospf.lsa_installs"), 0u);
}

TEST_F(ObsDeterminismTest, SweepSimSectionStableAcrossJobsAndCache) {
  const std::vector<SimDuration> tds = {0ms, 900ms};
  const auto run = [&](std::size_t jobs, bool cached) {
    obs::Registry::instance().reset();
    auto c = config(jobs, cached);
    c.seeds = {1};
    tdelay_sweep(ospf::frr_profile(), c, tds, mining::ospf_type_scheme());
    return obs::Registry::instance().sim_json();
  };
  const auto reference = run(1, false);
  EXPECT_NE(reference.find("\"scenario.runs\":"), std::string::npos);
  EXPECT_EQ(reference, run(4, false));
  EXPECT_EQ(reference, run(2, true));   // cold cache
  EXPECT_EQ(reference, run(8, true));   // warm cache, different width
}

TEST_F(ObsDeterminismTest, DisabledRegistryStaysEmpty) {
  obs::set_enabled(false);
  audit_ospf({ospf::frr_profile(), ospf::bird_profile()},
             config(4, /*cached=*/false), mining::ospf_type_scheme());
  const auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.sim_counter("scenario.runs"), 0u);
  EXPECT_EQ(reg.span_count(), 0u);
  EXPECT_EQ(reg.hot_counter(obs::Hot::kEventsExecuted), 0u);
}

}  // namespace
}  // namespace nidkit::harness
