// Merge-order property: the canonical-order merge discipline is what
// makes the "sim" and "cov" snapshot sections deterministic, so this
// pins down exactly which outputs depend on order and which do not.
// Registry totals are pure sums — any permutation of the same scenario
// deltas must produce an identical snapshot. CoverageMap's final seen
// set is likewise permutation-invariant, while its saturation curve and
// novelty scores are order-*dependent* by design (that is the point of
// canonical order); shuffled merges must still agree on the final
// totals.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "cov/cov.hpp"
#include "obs/obs.hpp"

namespace nidkit {
namespace {

std::vector<obs::ScenarioMetrics> sample_deltas() {
  std::vector<obs::ScenarioMetrics> deltas;
  for (std::uint64_t i = 1; i <= 12; ++i) {
    obs::ScenarioMetrics m;
    m.set("scenario.runs", 1);
    m.set("sim.events_executed", 1000 + 37 * i);
    m.set("sim.frames_delivered", 50 * i);
    m.set("ospf.tx_hello", 10 + i % 3);
    if (i % 2 == 0) m.set("ospf.lsa_installs", i);
    if (i % 3 == 0) m.set("bgp.session_resets", 1);
    deltas.push_back(std::move(m));
  }
  return deltas;
}

std::string registry_json_for_order(const std::vector<obs::ScenarioMetrics>& ds,
                                    const std::vector<std::size_t>& order) {
  auto& reg = obs::Registry::instance();
  reg.reset();
  for (const auto i : order) reg.merge_scenario(ds[i]);
  auto json = reg.sim_json();
  reg.reset();
  return json;
}

TEST(MergeOrder, RegistrySnapshotIsPermutationInvariant) {
  const bool was = obs::enabled();
  obs::set_enabled(true);
  const auto deltas = sample_deltas();
  std::vector<std::size_t> order(deltas.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const auto canonical = registry_json_for_order(deltas, order);
  EXPECT_NE(canonical.find("\"sim.events_executed\":"), std::string::npos);

  std::mt19937 rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    EXPECT_EQ(canonical, registry_json_for_order(deltas, order))
        << "trial " << trial;
  }
  obs::set_enabled(was);
}

std::vector<cov::CoverageVector> sample_vectors() {
  std::vector<cov::CoverageVector> vectors;
  for (unsigned i = 0; i < 10; ++i) {
    cov::CoverageVector v;
    v.add(cov::fsm_edge(cov::Proto::kOspf, 0, 1));  // common to all
    v.add(cov::fsm_edge(cov::Proto::kOspf, i % 6, i % 6 + 1));
    v.add(cov::packet_pair(cov::Proto::kOspf, 1 + i % 5, 1 + (i / 2) % 5));
    if (i % 2 == 0) v.add(cov::chaos(cov::ChaosClass::kLoss));
    if (i % 3 == 0) v.add(cov::lsa_lifecycle(cov::LsaEvent::kOriginate));
    v.finalize();
    vectors.push_back(std::move(v));
  }
  return vectors;
}

TEST(MergeOrder, CoverageTotalsArePermutationInvariantButCurveIsNot) {
  const auto vectors = sample_vectors();
  std::vector<std::size_t> order(vectors.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto& map = cov::CoverageMap::instance();
  const auto run = [&](const std::vector<std::size_t>& ord) {
    map.reset();
    for (const auto i : ord) map.merge_scenario(vectors[i]);
  };

  run(order);
  const auto seen = map.seen_ids();
  const auto features = map.features_seen();
  const auto curve = map.curve();
  ASSERT_GT(features, 1u);
  ASSERT_EQ(curve.back(), features);

  std::mt19937 rng(99);
  bool some_curve_differed = false;
  for (int trial = 0; trial < 8; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    run(order);
    // Final totals never depend on merge order...
    EXPECT_EQ(map.seen_ids(), seen) << "trial " << trial;
    EXPECT_EQ(map.features_seen(), features);
    EXPECT_EQ(map.curve().back(), features);
    // ...but the curve's shape generally does: it narrates *when* each
    // feature first appeared, which is why merges must happen in
    // canonical scenario order.
    some_curve_differed |= map.curve() != curve;
  }
  EXPECT_TRUE(some_curve_differed)
      << "every shuffle produced the canonical curve — the sample "
         "vectors are too uniform to exercise order dependence";
  map.reset();
}

TEST(MergeOrder, ShuffledThenCanonicalizedVectorsMatchCanonicalSnapshot) {
  // The per-scenario vector itself is canonical (sorted unique), so a
  // vector built from features observed in any order finalizes to the
  // same bytes — merge results cannot depend on hook firing order.
  std::vector<cov::FeatureId> features = {
      cov::fsm_edge(cov::Proto::kOspf, 0, 1),
      cov::fsm_edge(cov::Proto::kOspf, 1, 2),
      cov::packet_pair(cov::Proto::kOspf, 1, 2),
      cov::path_marker(cov::OspfMarker::kDrRole),
      cov::lsa_lifecycle(cov::LsaEvent::kRefresh),
      cov::chaos(cov::ChaosClass::kChurn),
  };
  cov::CoverageVector canonical;
  for (const auto id : features) canonical.add(id);
  canonical.finalize();

  std::mt19937 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::shuffle(features.begin(), features.end(), rng);
    cov::CoverageVector shuffled;
    for (const auto id : features) {
      shuffled.add(id);
      shuffled.add(id);  // duplicates collapse too
    }
    shuffled.finalize();
    EXPECT_TRUE(shuffled == canonical) << "trial " << trial;
  }
}

TEST(MergeOrder, SimSectionIsExactlyOneLine) {
  // CI greps '"sim":' out of --metrics-out files and byte-compares the
  // line across jobs/cache laps; that only works if the whole section
  // stays on one line. Same contract as the "cov" section.
  const bool was = obs::enabled();
  obs::set_enabled(true);
  auto& reg = obs::Registry::instance();
  reg.reset();
  for (const auto& d : sample_deltas()) reg.merge_scenario(d);
  const auto line = reg.sim_json();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.rfind("\"sim\":{", 0), 0u);
  reg.reset();
  obs::set_enabled(was);
}

}  // namespace
}  // namespace nidkit
