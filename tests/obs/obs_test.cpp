// Unit contract of the nidkit::obs registry: ScenarioMetrics canonical
// form, hot counters behind the enabled() gate, scenario-delta merging,
// span recording and the line-structured JSON snapshots.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace nidkit::obs {
namespace {

// The registry is a process-wide singleton shared with every other test
// in this binary; each test starts from a clean slate and leaves the
// global switch off so unrelated tests never pay for (or observe) obs.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    Registry::instance().reset();
  }
};

TEST(ScenarioMetricsTest, KeepsEntriesSortedAndUnique) {
  ScenarioMetrics m;
  m.set("zeta", 3);
  m.set("alpha", 1);
  m.set("mid", 2);
  m.set("alpha", 10);  // overwrite, not duplicate

  ASSERT_EQ(m.entries().size(), 3u);
  EXPECT_EQ(m.entries()[0].first, "alpha");
  EXPECT_EQ(m.entries()[1].first, "mid");
  EXPECT_EQ(m.entries()[2].first, "zeta");
  EXPECT_EQ(m.get("alpha"), 10u);
  EXPECT_EQ(m.get("zeta"), 3u);
  EXPECT_EQ(m.get("absent"), 0u);
}

TEST(ScenarioMetricsTest, EqualityIsValueBased) {
  ScenarioMetrics a, b;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a, b);
  // Insertion order must not matter: the canonical form is sorted.
  a.set("x", 1);
  a.set("y", 2);
  b.set("y", 2);
  b.set("x", 1);
  EXPECT_EQ(a, b);
  b.set("x", 9);
  EXPECT_NE(a, b);
}

TEST_F(ObsTest, CountIsNoOpWhenDisabled) {
  set_enabled(false);
  count(Hot::kEventsExecuted, 100);
  count(Hot::kFramesDropped);
  EXPECT_EQ(Registry::instance().hot_counter(Hot::kEventsExecuted), 0u);
  EXPECT_EQ(Registry::instance().hot_counter(Hot::kFramesDropped), 0u);
}

TEST_F(ObsTest, CountAccumulatesAcrossThreads) {
  count(Hot::kEventsExecuted, 5);
  count(Hot::kEventsExecuted);
  // A worker thread writes its own slot; on exit the slot folds into the
  // retired base, so nothing is lost when the thread goes away.
  std::thread worker([] { count(Hot::kEventsExecuted, 7); });
  worker.join();
  EXPECT_EQ(Registry::instance().hot_counter(Hot::kEventsExecuted), 13u);
  EXPECT_EQ(Registry::instance().hot_counter(Hot::kTimersScheduled), 0u);
}

TEST_F(ObsTest, MergeScenarioAddsCountersAndFeedsHistograms) {
  ScenarioMetrics a, b;
  a.set("sim.events_executed", 100);
  a.set("ospf.tx_hello", 4);
  b.set("sim.events_executed", 50);
  b.set("ospf.tx_hello", 6);
  auto& reg = Registry::instance();
  reg.merge_scenario(a);
  reg.merge_scenario(b);

  EXPECT_EQ(reg.sim_counter("sim.events_executed"), 150u);
  EXPECT_EQ(reg.sim_counter("ospf.tx_hello"), 10u);
  EXPECT_EQ(reg.sim_counter("never.set"), 0u);
  // Each merged scenario is one histogram observation.
  const auto json = reg.sim_json();
  EXPECT_NE(json.find("\"sim.events_per_scenario\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

TEST_F(ObsTest, ConvergenceTimeFeedsHistogramNotCounter) {
  ScenarioMetrics m;
  m.set("scenario.convergence_time_us", 42'000);
  Registry::instance().merge_scenario(m);
  // Convergence time is a per-scenario observation, not an additive
  // counter — summing microseconds across scenarios would be nonsense.
  EXPECT_EQ(Registry::instance().sim_counter("scenario.convergence_time_us"),
            0u);
  const auto json = Registry::instance().sim_json();
  EXPECT_NE(json.find("\"sim.convergence_time_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"sum\":42"), std::string::npos);
}

TEST_F(ObsTest, RecordSpanKeepsEventAndFeedsWallHistogram) {
  auto& reg = Registry::instance();
  reg.record_span("simulate", "frr/linear-2/s1", 100, 350);
  ASSERT_EQ(reg.span_count(), 1u);
  const auto spans = reg.spans();
  EXPECT_EQ(spans[0].name, "simulate");
  EXPECT_EQ(spans[0].label, "frr/linear-2/s1");
  EXPECT_EQ(spans[0].ts_us, 100);
  EXPECT_EQ(spans[0].dur_us, 250);

  const auto json = reg.metrics_json();
  EXPECT_NE(json.find("\"wall.simulate_us\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":1"), std::string::npos);
}

TEST_F(ObsTest, SpanRaiiIsNoOpWhenDisabled) {
  set_enabled(false);
  {
    Span span("simulate", "ignored");
  }
  EXPECT_EQ(Registry::instance().span_count(), 0u);
}

TEST_F(ObsTest, SpanFinishIsIdempotent) {
  Span span("mine", "frr/mesh-3/s2");
  span.finish();
  span.finish();
  EXPECT_EQ(Registry::instance().span_count(), 1u);
  // Destruction after finish() must not record a second span.
}

TEST_F(ObsTest, MetricsJsonIsLineStructured) {
  ScenarioMetrics m;
  m.set("sim.events_executed", 7);
  Registry::instance().merge_scenario(m);
  count(Hot::kEventsExecuted, 7);

  // The whole deterministic section lives on one line so determinism
  // checks can extract it with a line-oriented tool.
  const auto sim = Registry::instance().sim_json();
  EXPECT_EQ(sim.find('\n'), std::string::npos);
  EXPECT_EQ(sim.rfind("\"sim\":{", 0), 0u);

  const auto full = Registry::instance().metrics_json();
  EXPECT_EQ(full.rfind("{\n\"version\":1,\n", 0), 0u);
  EXPECT_NE(full.find('\n' + sim + ",\n"), std::string::npos);
  EXPECT_NE(full.find("\"wall\":{"), std::string::npos);
  EXPECT_NE(full.find("\"process.events_executed\":7"), std::string::npos);
}

TEST_F(ObsTest, HeadlineJsonSummarizesBothDomains) {
  ScenarioMetrics m;
  m.set("sim.events_executed", 11);
  m.set("sim.frames_delivered", 5);
  m.set("ospf.fsm_transitions", 3);
  m.set("bgp.fsm_transitions", 2);
  Registry::instance().merge_scenario(m);
  Registry::instance().record_span("merge", "", 0, 1);

  EXPECT_EQ(Registry::instance().headline_json(),
            "{\"sim_events\":11,\"sim_frames_delivered\":5,"
            "\"fsm_transitions\":5,\"spans\":1}");
}

TEST_F(ObsTest, ResetClearsEveryDomain) {
  ScenarioMetrics m;
  m.set("sim.events_executed", 9);
  auto& reg = Registry::instance();
  reg.merge_scenario(m);
  reg.record_span("simulate", "x", 0, 10);
  count(Hot::kFramesDelivered, 3);

  reg.reset();
  EXPECT_EQ(reg.sim_counter("sim.events_executed"), 0u);
  EXPECT_EQ(reg.span_count(), 0u);
  EXPECT_EQ(reg.hot_counter(Hot::kFramesDelivered), 0u);
}

}  // namespace
}  // namespace nidkit::obs
