#include "trace/pcap.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/scenario.hpp"
#include "util/checksum.hpp"

namespace nidkit::trace {
namespace {

using namespace std::chrono_literals;

TraceLog small_trace() {
  harness::Scenario s;
  s.duration = 60s;
  return harness::run_scenario(s).log;
}

std::uint32_t rd32le(const std::string& buf, std::size_t off) {
  return static_cast<std::uint8_t>(buf[off]) |
         (static_cast<std::uint8_t>(buf[off + 1]) << 8) |
         (static_cast<std::uint8_t>(buf[off + 2]) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[off + 3]))
          << 24);
}

TEST(Pcap, GlobalHeaderWellFormed) {
  std::ostringstream os;
  export_pcap(small_trace(), os);
  const auto buf = os.str();
  ASSERT_GE(buf.size(), 24u);
  EXPECT_EQ(rd32le(buf, 0), 0xa1b2c3d4u);  // magic, little-endian, usec
  EXPECT_EQ(rd32le(buf, 20), 101u);        // LINKTYPE_RAW
}

TEST(Pcap, EveryRecordWithBytesBecomesOnePacket) {
  const auto log = small_trace();
  std::ostringstream os;
  const auto written = export_pcap(log, os);
  EXPECT_EQ(written, log.size());  // default scenario keeps bytes
}

TEST(Pcap, PacketFramingConsistentWithLengths) {
  const auto log = small_trace();
  std::ostringstream os;
  const auto written = export_pcap(log, os);
  const auto buf = os.str();
  std::size_t off = 24;
  std::size_t count = 0;
  while (off + 16 <= buf.size()) {
    const auto incl = rd32le(buf, off + 8);
    const auto orig = rd32le(buf, off + 12);
    EXPECT_EQ(incl, orig);
    off += 16 + incl;
    ++count;
  }
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(count, written);
}

TEST(Pcap, SynthesizedIpHeaderIsValid) {
  const auto log = small_trace();
  const auto& rec = log.records().front();
  const auto packet = synthesize_ip_packet(rec);
  ASSERT_GE(packet.size(), 20u);
  EXPECT_EQ(packet[0], 0x45);  // IPv4, 20-byte header
  EXPECT_EQ(packet[9], rec.protocol);
  const auto total =
      static_cast<std::size_t>(packet[2]) << 8 | packet[3];
  EXPECT_EQ(total, packet.size());
  // Header checksum verifies.
  EXPECT_TRUE(internet_checksum_ok({packet.data(), 20}));
  // Addresses round-trip.
  const std::uint32_t src = (std::uint32_t{packet[12]} << 24) |
                            (packet[13] << 16) | (packet[14] << 8) |
                            packet[15];
  EXPECT_EQ(src, rec.src.value());
  // Payload is the raw protocol bytes.
  EXPECT_TRUE(std::equal(packet.begin() + 20, packet.end(),
                         rec.bytes.begin(), rec.bytes.end()));
}

TEST(Pcap, NodeFilterRestrictsPackets) {
  const auto log = small_trace();
  std::ostringstream all_os, one_os;
  const auto all = export_pcap(log, all_os);
  PcapOptions opt;
  opt.node = 0;
  const auto one = export_pcap(log, one_os, opt);
  EXPECT_LT(one, all);
  EXPECT_EQ(one, log.node_records(0).size());
}

TEST(Pcap, DirectionFilterHalvesPointToPointTrace) {
  const auto log = small_trace();
  std::ostringstream os;
  PcapOptions opt;
  opt.direction = netsim::Direction::kSend;
  const auto sends = export_pcap(log, os, opt);
  // Every p2p send has exactly one matching receive.
  EXPECT_EQ(sends * 2, log.size());
}

TEST(Pcap, ByteLessRecordsSkipped) {
  TraceLog log;
  PacketRecord rec;
  rec.time = SimTime{1s};
  log.append(rec);
  std::ostringstream os;
  EXPECT_EQ(export_pcap(log, os), 0u);
  EXPECT_EQ(os.str().size(), 24u);  // header only
}

}  // namespace
}  // namespace nidkit::trace
