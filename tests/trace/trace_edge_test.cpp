// Edge cases of the columnar TraceLog: index reads past the extent,
// byte-less serialization, arena reuse after clear(), and parity between
// the tap path's header-only digest parsers and the full wire decoders.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "harness/scenario.hpp"
#include "trace/trace.hpp"

namespace nidkit::trace {
namespace {

using namespace std::chrono_literals;

harness::ScenarioResult run(harness::Protocol proto, bool keep_bytes = true) {
  harness::Scenario s;
  s.protocol = proto;
  s.topology = {topo::Kind::kMesh, 3};
  s.duration = 60s;
  s.keep_bytes = keep_bytes;
  return harness::run_scenario(s);
}

TEST(TraceEdge, NodeRecordsBeyondIndexExtentIsEmpty) {
  const TraceLog log = run(harness::Protocol::kOspf).log;
  ASSERT_GT(log.node_index_extent(), 0u);
  // Reads past the per-node index's extent are well-defined empties, not
  // out-of-bounds: the miner iterates [0, extent) but ad-hoc consumers may
  // probe arbitrary node ids.
  EXPECT_TRUE(log.node_records(log.node_index_extent()).empty());
  EXPECT_TRUE(log.node_records(log.node_index_extent() + 17).empty());
  EXPECT_TRUE(log.node_records(~netsim::NodeId{0}).empty());
  const TraceLog empty;
  EXPECT_EQ(empty.node_index_extent(), 0u);
  EXPECT_TRUE(empty.node_records(0).empty());
}

TEST(TraceEdge, SaveLoadSaveTextIdenticalWithKeepBytesOff) {
  // With keep_bytes off every record serializes its byte column as "-";
  // the reloaded trace must reproduce the stream byte for byte, and its
  // records stay undecodable (no digest can be recomputed without bytes).
  const TraceLog original = run(harness::Protocol::kOspf, false).log;
  ASSERT_GT(original.size(), 0u);
  std::stringstream first;
  original.save(first);
  const auto loaded = TraceLog::load(first);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), original.size());
  std::stringstream second;
  loaded.value().save(second);
  EXPECT_EQ(first.str(), second.str());
  for (std::size_t i = 0; i < loaded.value().size(); ++i) {
    const RecordView rec = loaded.value().view(i);
    EXPECT_TRUE(rec.bytes.empty());
    EXPECT_EQ(rec.ospf(), nullptr);
  }
}

TEST(TraceEdge, ClearThenReuseRefillsTheSamePages) {
  TraceLog log;
  auto fill = [&log] {
    for (int i = 0; i < 2000; ++i) {
      PacketRecord r;
      r.time = SimTime{std::chrono::seconds{i}};
      r.node = static_cast<netsim::NodeId>(i % 5);
      r.frame_id = static_cast<std::uint64_t>(i + 1);
      r.protocol = 89;
      log.append(std::move(r));
    }
  };
  fill();
  ASSERT_EQ(log.size(), 2000u);
  const std::size_t first_fill_bytes = log.arena_bytes();
  ASSERT_GT(first_fill_bytes, 0u);

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.node_index_extent(), 0u);
  EXPECT_EQ(log.observed_nodes(), 0u);
  EXPECT_EQ(log.arena_bytes(), 0u);

  // Refill with the identical workload: the arena hands back the same
  // pages, so the bump totals match the first fill exactly and the data
  // reads back correctly.
  fill();
  ASSERT_EQ(log.size(), 2000u);
  EXPECT_EQ(log.arena_bytes(), first_fill_bytes);
  EXPECT_EQ(log.node_index_extent(), 5u);
  for (netsim::NodeId n = 0; n < 5; ++n)
    EXPECT_EQ(log.node_records(n).size(), 400u) << "node " << n;
  EXPECT_EQ(log.view(0).frame_id, 1u);
  EXPECT_EQ(log.view(1999).frame_id, 2000u);
  EXPECT_EQ(log.view(1999).time, SimTime{1999s});
}

void expect_digest_parity(const TraceLog& log) {
  ASSERT_GT(log.size(), 0u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    const RecordView rec = log.view(i);
    ASSERT_FALSE(rec.bytes.empty()) << "record " << i;
    // Re-digest the stored wire bytes through the full decoders and
    // compare field by field with what the tap's fast parser pooled.
    netsim::Frame frame;
    frame.src = rec.src;
    frame.dst = rec.dst;
    frame.protocol = rec.protocol;
    frame.payload = rec.bytes;
    const Digest full = digest_frame(frame);

    const auto* full_ospf = std::get_if<OspfDigest>(&full);
    ASSERT_EQ(full_ospf != nullptr, rec.ospf() != nullptr) << "record " << i;
    if (full_ospf != nullptr) {
      const OspfView& got = *rec.ospf();
      EXPECT_EQ(got.pkt_type, full_ospf->pkt_type) << "record " << i;
      EXPECT_EQ(got.dbd_flags, full_ospf->dbd_flags) << "record " << i;
      ASSERT_EQ(got.lsas.size(), full_ospf->lsas.size()) << "record " << i;
      for (std::size_t k = 0; k < got.lsas.size(); ++k) {
        EXPECT_EQ(got.lsas[k].lsa_type, full_ospf->lsas[k].lsa_type);
        EXPECT_EQ(got.lsas[k].seq, full_ospf->lsas[k].seq);
        EXPECT_EQ(got.lsas[k].age, full_ospf->lsas[k].age);
        EXPECT_EQ(got.lsas[k].link_state_id, full_ospf->lsas[k].link_state_id);
        EXPECT_EQ(got.lsas[k].advertising_router,
                  full_ospf->lsas[k].advertising_router);
      }
      EXPECT_EQ(got.max_seq(), full_ospf->max_seq()) << "record " << i;
    }

    const auto* full_rip = std::get_if<RipDigest>(&full);
    ASSERT_EQ(full_rip != nullptr, rec.rip() != nullptr) << "record " << i;
    if (full_rip != nullptr) {
      EXPECT_EQ(rec.rip()->command, full_rip->command) << "record " << i;
      EXPECT_EQ(rec.rip()->entry_count, full_rip->entry_count);
      EXPECT_EQ(rec.rip()->max_metric, full_rip->max_metric);
      EXPECT_EQ(rec.rip()->full_table_request, full_rip->full_table_request);
    }

    const auto* full_bgp = std::get_if<BgpDigest>(&full);
    ASSERT_EQ(full_bgp != nullptr, rec.bgp() != nullptr) << "record " << i;
    if (full_bgp != nullptr) {
      EXPECT_EQ(rec.bgp()->msg_type, full_bgp->msg_type) << "record " << i;
      EXPECT_EQ(rec.bgp()->as_path_len, full_bgp->as_path_len);
      EXPECT_EQ(rec.bgp()->nlri_count, full_bgp->nlri_count);
      EXPECT_EQ(rec.bgp()->withdrawn_count, full_bgp->withdrawn_count);
      EXPECT_EQ(rec.bgp()->error_code, full_bgp->error_code);
    }
  }
}

TEST(TraceEdge, FastOspfDigestMatchesFullDecode) {
  expect_digest_parity(run(harness::Protocol::kOspf).log);
}

TEST(TraceEdge, FastRipDigestMatchesFullDecode) {
  expect_digest_parity(run(harness::Protocol::kRip).log);
}

TEST(TraceEdge, FastBgpDigestMatchesFullDecode) {
  expect_digest_parity(run(harness::Protocol::kBgp).log);
}

}  // namespace
}  // namespace nidkit::trace
