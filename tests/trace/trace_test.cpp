#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "packet/ospf_packet.hpp"
#include "rip/rip_router.hpp"

namespace nidkit::trace {
namespace {

using namespace std::chrono_literals;

netsim::Frame ospf_frame() {
  ospf::LsUpdateBody lsu;
  ospf::Lsa lsa;
  lsa.header.type = ospf::LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{1, 1, 1, 1};
  lsa.header.advertising_router = RouterId{1, 1, 1, 1};
  lsa.header.seq = ospf::kInitialSequenceNumber + 4;
  lsa.body = ospf::RouterLsaBody{};
  lsa.finalize();
  lsu.lsas.push_back(std::move(lsa));
  netsim::Frame f;
  f.dst = kAllSpfRouters;
  f.protocol = ospf::kIpProtoOspf;
  f.payload =
      encode(make_packet(RouterId{1, 1, 1, 1}, kBackboneArea, std::move(lsu)));
  return f;
}

netsim::Frame rip_frame() {
  netsim::Frame f;
  f.dst = rip::kRipMulticast;
  f.protocol = 17;
  f.payload = rip::encode(rip::make_full_table_request());
  return f;
}

struct TraceFixture : ::testing::Test {
  netsim::Simulator sim;
  netsim::Network net{sim, 3};
  netsim::NodeId a = net.add_node("a");
  netsim::NodeId b = net.add_node("b");
  TraceLog log;

  TraceFixture() {
    net.add_p2p(a, b);
    log.attach(net);
  }
};

TEST_F(TraceFixture, RecordsSendAndReceive) {
  net.send(a, 0, ospf_frame());
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log.records()[0].is_send());
  EXPECT_FALSE(log.records()[1].is_send());
  EXPECT_EQ(log.records()[0].node, a);
  EXPECT_EQ(log.records()[1].node, b);
}

TEST_F(TraceFixture, OspfDigestParsed) {
  net.send(a, 0, ospf_frame());
  sim.run();
  const auto* d = log.records()[0].ospf();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->pkt_type, 4);  // LSU
  ASSERT_EQ(d->lsas.size(), 1u);
  EXPECT_EQ(d->lsas[0].lsa_type, 1);
  EXPECT_EQ(d->lsas[0].seq, ospf::kInitialSequenceNumber + 4);
  EXPECT_EQ(d->max_seq(), ospf::kInitialSequenceNumber + 4);
}

TEST_F(TraceFixture, RipDigestParsed) {
  net.send(a, 0, rip_frame());
  sim.run();
  const auto* d = log.records()[0].rip();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->command, 1);
  EXPECT_TRUE(d->full_table_request);
  EXPECT_EQ(log.records()[0].ospf(), nullptr);
}

TEST_F(TraceFixture, UnknownProtocolYieldsMonostate) {
  netsim::Frame junk;
  junk.dst = kAllSpfRouters;
  junk.protocol = 6;  // TCP: not modeled
  junk.payload = {1, 2, 3};
  net.send(a, 0, std::move(junk));
  sim.run();
  EXPECT_EQ(log.records()[0].ospf(), nullptr);
  EXPECT_EQ(log.records()[0].rip(), nullptr);
}

TEST_F(TraceFixture, MalformedOspfYieldsMonostate) {
  netsim::Frame junk;
  junk.dst = kAllSpfRouters;
  junk.protocol = ospf::kIpProtoOspf;
  junk.payload = {2, 1, 0, 4};  // truncated
  net.send(a, 0, std::move(junk));
  sim.run();
  EXPECT_EQ(log.records()[0].ospf(), nullptr);
}

TEST_F(TraceFixture, FrameIdAndProvenanceRecorded) {
  auto f = ospf_frame();
  f.caused_by = 1234;
  net.send(a, 0, std::move(f));
  sim.run();
  EXPECT_NE(log.records()[0].frame_id, 0u);
  EXPECT_EQ(log.records()[0].caused_by, 1234u);
  EXPECT_EQ(log.records()[1].frame_id, log.records()[0].frame_id);
}

TEST_F(TraceFixture, StateProberSnapshotsPerEvent) {
  int state = 7;
  log.set_state_prober([&state](netsim::NodeId) { return state; });
  net.send(a, 0, ospf_frame());
  sim.run();
  EXPECT_EQ(log.records()[0].observer_state, 7);
  state = 9;
  net.send(a, 0, ospf_frame());
  sim.run();
  EXPECT_EQ(log.records()[2].observer_state, 9);
}

TEST_F(TraceFixture, WithoutProberStateIsUnknown) {
  net.send(a, 0, ospf_frame());
  sim.run();
  EXPECT_EQ(log.records()[0].observer_state, -1);
}

TEST_F(TraceFixture, KeepBytesOffDropsPayloadKeepsDigest) {
  log.set_keep_bytes(false);
  net.send(a, 0, ospf_frame());
  sim.run();
  EXPECT_TRUE(log.records()[0].bytes.empty());
  EXPECT_NE(log.records()[0].ospf(), nullptr);
}

TEST_F(TraceFixture, NodeRecordsFiltersAndPreservesOrder) {
  net.send(a, 0, ospf_frame());
  net.send(b, 0, ospf_frame());
  sim.run();
  const auto at_a = log.node_records(a);
  ASSERT_EQ(at_a.size(), 2u);  // a's send + a's receipt of b's frame
  EXPECT_LT(at_a[0], at_a[1]);
  for (const auto idx : at_a) EXPECT_EQ(log.records()[idx].node, a);
  EXPECT_EQ(log.observed_nodes(), 2u);
}

TEST_F(TraceFixture, DumpIsHumanReadable) {
  net.send(a, 0, ospf_frame());
  sim.run();
  std::ostringstream os;
  log.dump(os, net);
  const auto text = os.str();
  EXPECT_NE(text.find("SEND"), std::string::npos);
  EXPECT_NE(text.find("RECV"), std::string::npos);
  EXPECT_NE(text.find("OSPF"), std::string::npos);
}

TEST_F(TraceFixture, ClearEmptiesTheLog) {
  net.send(a, 0, ospf_frame());
  sim.run();
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
}  // namespace nidkit::trace
