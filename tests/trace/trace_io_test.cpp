// Trace serialization round-trip tests.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/scenario.hpp"
#include "mining/miner.hpp"
#include "trace/trace.hpp"

namespace nidkit::trace {
namespace {

using namespace std::chrono_literals;

TraceLog real_trace() {
  harness::Scenario s;
  s.topology = {topo::Kind::kMesh, 3};
  s.duration = 60s;
  return harness::run_scenario(s).log;
}

TEST(TraceIo, RoundTripPreservesEveryField) {
  const TraceLog original = real_trace();
  ASSERT_GT(original.size(), 0u);
  std::stringstream buf;
  original.save(buf);
  auto loaded = TraceLog::load(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  const auto& out = loaded.value();
  ASSERT_EQ(out.size(), original.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto& a = original.records()[i];
    const auto& b = out.records()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.iface, b.iface);
    EXPECT_EQ(a.direction, b.direction);
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.frame_id, b.frame_id);
    EXPECT_EQ(a.caused_by, b.caused_by);
    EXPECT_EQ(a.observer_state, b.observer_state);
    EXPECT_EQ(a.bytes, b.bytes);
  }
}

TEST(TraceIo, DigestsRecomputedOnLoad) {
  const TraceLog original = real_trace();
  std::stringstream buf;
  original.save(buf);
  const auto out = TraceLog::load(buf);
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 0; i < out.value().size(); ++i) {
    const auto* a = original.records()[i].ospf();
    const auto* b = out.value().records()[i].ospf();
    ASSERT_EQ(a == nullptr, b == nullptr) << "record " << i;
    if (a != nullptr) {
      EXPECT_EQ(a->pkt_type, b->pkt_type);
      EXPECT_EQ(a->lsas.size(), b->lsas.size());
    }
  }
}

TEST(TraceIo, MiningAReloadedTraceGivesIdenticalRelations) {
  const TraceLog original = real_trace();
  std::stringstream buf;
  original.save(buf);
  const auto loaded = TraceLog::load(buf);
  ASSERT_TRUE(loaded.ok());
  mining::CausalMiner miner(mining::MinerConfig{});
  const auto scheme = mining::ospf_type_scheme();
  const auto a = miner.mine(original, scheme);
  const auto b = miner.mine(loaded.value(), scheme);
  ASSERT_EQ(a.size(), b.size());
  for (const auto dir : {mining::RelationDirection::kSendToRecv,
                         mining::RelationDirection::kRecvToSend})
    for (const auto& [cell, stats] : a.cells(dir)) {
      const auto* other = b.find(dir, cell);
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(other->count, stats.count);
    }
}

TEST(TraceIo, SaveLoadSaveTextIsIdentical) {
  // The serialized text itself must be a fixed point: save -> load -> save
  // reproduces the stream byte for byte. This pins the format against
  // representation changes (the payload buffer moving from std::vector to
  // a shared cell must be invisible on the wire).
  const TraceLog original = real_trace();
  std::stringstream first;
  original.save(first);
  const auto loaded = TraceLog::load(first);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  std::stringstream second;
  loaded.value().save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(TraceIo, NodeIndexRebuiltOnLoad) {
  // The per-node record index is maintained on append, including the
  // append path load() uses — a reloaded trace must mine per-node exactly
  // like the live one.
  const TraceLog original = real_trace();
  std::stringstream buf;
  original.save(buf);
  const auto loaded = TraceLog::load(buf);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().node_index_extent(),
            original.node_index_extent());
  for (netsim::NodeId n = 0; n < original.node_index_extent(); ++n) {
    const auto got = loaded.value().node_records(n);
    const auto want = original.node_records(n);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "node " << n;
  }
  EXPECT_EQ(loaded.value().observed_nodes(), original.observed_nodes());
}

TEST(TraceIo, RejectsWrongMagic) {
  std::stringstream buf("pcapng 1.0 4\n");
  EXPECT_FALSE(TraceLog::load(buf).ok());
}

TEST(TraceIo, RejectsTruncatedStream) {
  const TraceLog original = real_trace();
  std::stringstream buf;
  original.save(buf);
  std::string text = buf.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_FALSE(TraceLog::load(half).ok());
}

TEST(TraceIo, RejectsCorruptHex) {
  std::stringstream buf(
      "nidkit-trace v1 1\n0 0 0 S 1 2 89 1 0 -1 zz\n");
  EXPECT_FALSE(TraceLog::load(buf).ok());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  TraceLog empty;
  std::stringstream buf;
  empty.save(buf);
  const auto out = TraceLog::load(buf);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 0u);
}

TEST(TraceIo, ByteLessRecordsRoundTripAsUndecodable) {
  TraceLog log;
  PacketRecord r;
  r.time = SimTime{1s};
  r.protocol = 89;
  log.append(r);  // no bytes
  std::stringstream buf;
  log.save(buf);
  const auto out = TraceLog::load(buf);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_TRUE(out.value().records()[0].bytes.empty());
  EXPECT_EQ(out.value().records()[0].ospf(), nullptr);
}

}  // namespace
}  // namespace nidkit::trace
