// Additional RIP engine behaviour tests: update subsumption, better-path
// switching, next-hop refresh semantics, originated-prefix visibility.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "netsim/chaos.hpp"
#include "rip/rip_router.hpp"

namespace nidkit::rip {
namespace {

using namespace std::chrono_literals;

struct Rig {
  Rig() = default;
  Rig(const Rig&) = delete;
  Rig& operator=(const Rig&) = delete;

  netsim::Simulator sim;
  netsim::Network net{sim, 8};
  std::vector<netsim::NodeId> nodes;
  std::vector<std::unique_ptr<RipRouter>> routers;

  void add(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      nodes.push_back(net.add_node("r" + std::to_string(i)));
  }
  void link(std::size_t a, std::size_t b) {
    const auto seg = net.add_p2p(nodes[a], nodes[b]);
    net.fault(seg).delay = 20ms;
  }
  void make(const RipProfile& profile) {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      routers.push_back(
          std::make_unique<RipRouter>(net, nodes[i], profile, 90 + i));
  }
  void start() {
    for (auto& r : routers) r->start();
  }
  void run_for(SimDuration d) { sim.run_until(sim.now() + d); }
};

std::map<std::uint32_t, RipRoute> table_of(RipRouter& r) {
  std::map<std::uint32_t, RipRoute> out;
  for (const auto& route : r.routes()) out[route.prefix.value()] = route;
  return out;
}

TEST(RipBehavior, PeriodicUpdateSubsumesPendingTriggered) {
  // A triggered update scheduled just before the periodic timer fires must
  // not produce a second (redundant) burst: the periodic full-table
  // response clears the changed flags.
  Rig rig;
  rig.add(2);
  rig.link(0, 1);
  auto profile = rip_classic_profile();
  profile.update_jitter = 0ms;  // deterministic periodic schedule
  profile.triggered_delay = 4s;
  rig.make(profile);
  rig.start();
  rig.run_for(27s);  // periodic fires at t=30

  int responses = 0;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != rig.nodes[0] || ev.direction != netsim::Direction::kSend)
      return;
    auto d = decode(ev.frame->payload);
    if (d.ok() && d.value().command == Command::kResponse) ++responses;
  });
  rig.routers[0]->originate(Ipv4Addr{203, 0, 113, 0},
                            Ipv4Addr{255, 255, 255, 0});
  rig.run_for(8s);  // periodic (t=30) lands inside the 4 s suppression
  EXPECT_EQ(responses, 1) << "periodic update must subsume the triggered one";
}

TEST(RipBehavior, SwitchesToBetterMetricFromDifferentNeighbor) {
  // Square: r0 learns r3's prefix via the long side first (if timing so
  // falls), but must end on the 2-hop metric either way.
  Rig rig;
  rig.add(4);
  rig.link(0, 1);
  rig.link(1, 3);
  rig.link(0, 2);
  rig.link(2, 3);
  rig.make(rip_eager_profile());
  rig.start();
  rig.run_for(90s);
  rig.routers[3]->originate(Ipv4Addr{198, 51, 100, 0},
                            Ipv4Addr{255, 255, 255, 0});
  rig.run_for(60s);
  const auto t0 = table_of(*rig.routers[0]);
  const auto it = t0.find(Ipv4Addr{198, 51, 100, 0}.value());
  ASSERT_NE(it, t0.end());
  EXPECT_EQ(it->second.metric, 3u);  // origin 1 + two hops
}

TEST(RipBehavior, WorseNewsFromCurrentNextHopIsBelieved) {
  // §3.9.2: a higher metric from the route's own next hop must replace the
  // entry (the path genuinely got worse); from another router it is
  // ignored.
  Rig rig;
  rig.add(3);
  rig.link(0, 1);  // r0-r1
  rig.link(1, 2);  // r1-r2
  rig.make(rip_classic_profile());
  rig.start();
  rig.run_for(60s);
  rig.routers[2]->originate(Ipv4Addr{198, 51, 101, 0},
                            Ipv4Addr{255, 255, 255, 0}, 1);
  rig.run_for(40s);
  auto t0 = table_of(*rig.routers[0]);
  const auto key = Ipv4Addr{198, 51, 101, 0}.value();
  ASSERT_TRUE(t0.count(key));
  const auto before = t0.at(key).metric;

  // The origin worsens its own metric; the news must propagate through
  // r1 (current next hop for r0) and be believed.
  rig.routers[2]->originate(Ipv4Addr{198, 51, 101, 0},
                            Ipv4Addr{255, 255, 255, 0}, 5);
  rig.run_for(60s);
  t0 = table_of(*rig.routers[0]);
  ASSERT_TRUE(t0.count(key));
  EXPECT_GT(t0.at(key).metric, before);
}

TEST(RipBehavior, OriginatedPrefixAdvertisedOnAllInterfaces) {
  Rig rig;
  rig.add(3);
  rig.link(1, 0);  // r1 in the middle
  rig.link(1, 2);
  rig.make(rip_eager_profile());
  rig.start();
  rig.run_for(40s);
  rig.routers[1]->originate(Ipv4Addr{203, 0, 114, 0},
                            Ipv4Addr{255, 255, 255, 0});
  rig.run_for(10s);
  for (const std::size_t i : {0u, 2u}) {
    const auto t = table_of(*rig.routers[i]);
    EXPECT_TRUE(t.count(Ipv4Addr{203, 0, 114, 0}.value()))
        << "router " << i;
  }
}

TEST(RipBehavior, LargeTablesSplitAcrossMessagesAndStillConverge) {
  // Originate 30 prefixes: every response on the wire must respect the
  // §3.6 25-entry cap (receivers reject larger messages at decode), which
  // forces multi-message full-table updates — and the peer must still
  // learn all 30 routes.
  Rig rig;
  rig.add(2);
  rig.link(0, 1);
  rig.make(rip_classic_profile());
  rig.start();
  rig.run_for(5s);
  for (std::uint8_t i = 0; i < 30; ++i)
    rig.routers[0]->originate(Ipv4Addr{10, 50, i, 0},
                              Ipv4Addr{255, 255, 255, 0});
  std::size_t max_entries = 0;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.direction != netsim::Direction::kSend) return;
    auto d = decode(ev.frame->payload);
    if (d.ok())
      max_entries = std::max(max_entries, d.value().entries.size());
  });
  rig.run_for(60s);
  EXPECT_LE(max_entries, 25u);
  EXPECT_GT(max_entries, 0u);

  const auto t1 = table_of(*rig.routers[1]);
  std::size_t learned = 0;
  for (std::uint8_t i = 0; i < 30; ++i)
    learned += t1.count(Ipv4Addr{10, 50, i, 0}.value());
  EXPECT_EQ(learned, 30u) << "routes past the 25-entry cap must not vanish";
}

// ---- RIPv1 compatibility (§4.6) ----

TEST(RipV1, V1NetworkConvergesWithClassfulMasks) {
  Rig rig;
  rig.add(3);
  rig.link(0, 1);
  rig.link(1, 2);
  rig.make(rip_v1_profile());
  rig.start();
  rig.run_for(90s);
  rig.routers[2]->originate(Ipv4Addr{203, 0, 113, 0},
                            Ipv4Addr{255, 255, 255, 0});
  rig.run_for(40s);
  const auto t0 = table_of(*rig.routers[0]);
  const auto it = t0.find(Ipv4Addr{203, 0, 113, 0}.value());
  ASSERT_NE(it, t0.end());
  // 203.x is class C: the inferred mask is /24 — here it happens to match
  // the true mask, which is exactly why classful inference "worked" for
  // classful deployments.
  EXPECT_EQ(it->second.mask, (Ipv4Addr{255, 255, 255, 0}));
}

TEST(RipV1, V1LosesSubnetMaskInformation) {
  // The v1 wire format cannot express /30: a v2 router's subnet route
  // arrives at a v1-relayed neighbor with a classful /8 mask instead.
  Rig rig;
  rig.add(2);
  rig.link(0, 1);
  rig.make(rip_v1_profile());
  rig.start();
  rig.run_for(40s);
  rig.routers[0]->originate(Ipv4Addr{10, 200, 0, 0},
                            Ipv4Addr{255, 255, 255, 252});  // a /30
  rig.run_for(30s);
  const auto t1 = table_of(*rig.routers[1]);
  const auto it = t1.find(Ipv4Addr{10, 200, 0, 0}.value());
  ASSERT_NE(it, t1.end());
  EXPECT_EQ(it->second.mask, (Ipv4Addr{255, 0, 0, 0}))
      << "class A inference destroys the /30 — the v1 interop hazard";
}

TEST(RipV1, StrictV2RouterIgnoresV1Neighbor) {
  Rig rig;
  rig.add(2);
  rig.link(0, 1);
  rig.routers.push_back(std::make_unique<RipRouter>(
      rig.net, rig.nodes[0], rip_v1_profile(), 90));
  rig.routers.push_back(std::make_unique<RipRouter>(
      rig.net, rig.nodes[1], rip_classic_profile(), 91));  // v2-only
  rig.start();
  rig.run_for(120s);
  rig.routers[0]->originate(Ipv4Addr{203, 0, 115, 0},
                            Ipv4Addr{255, 255, 255, 0});
  rig.routers[1]->originate(Ipv4Addr{203, 0, 116, 0},
                            Ipv4Addr{255, 255, 255, 0});
  rig.run_for(60s);
  // The strict v2 side drops every v1 packet: it never learns the route.
  const auto t1 = table_of(*rig.routers[1]);
  EXPECT_EQ(t1.count(Ipv4Addr{203, 0, 115, 0}.value()), 0u);
  EXPECT_GT(rig.routers[1]->stats().version_rejected, 0u);
  // The v1 side DOES learn the v2 side's routes (it accepts both
  // versions): the failure is asymmetric, which is what makes it nasty.
  const auto t0 = table_of(*rig.routers[0]);
  EXPECT_EQ(t0.count(Ipv4Addr{203, 0, 116, 0}.value()), 1u);
}

TEST(RipV1, WireCarriesNoMaskForV1) {
  Rig rig;
  rig.add(2);
  rig.link(0, 1);
  rig.make(rip_v1_profile());
  bool saw_v1_response = false;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.direction != netsim::Direction::kSend) return;
    // Inspect raw bytes: version at offset 1, first entry mask at 4+8..12.
    const auto& p = ev.frame->payload;
    if (p.size() >= 24 && p[0] == 2 && p[1] == 1) {
      saw_v1_response = true;
      EXPECT_EQ(p[12] | p[13] | p[14] | p[15], 0) << "v1 mask field must be 0";
    }
  });
  rig.start();
  rig.run_for(60s);
  EXPECT_TRUE(saw_v1_response);
}

}  // namespace
}  // namespace nidkit::rip
