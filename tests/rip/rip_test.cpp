// RIPv2 engine tests: convergence, split horizon variants, triggered
// updates, expiry.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "netsim/chaos.hpp"
#include "rip/rip_router.hpp"

namespace nidkit::rip {
namespace {

using namespace std::chrono_literals;

struct RipRig {
  RipRig() = default;
  RipRig(const RipRig&) = delete;
  RipRig& operator=(const RipRig&) = delete;

  netsim::Simulator sim;
  netsim::Network net{sim, 5};
  std::vector<netsim::NodeId> nodes;
  std::vector<std::unique_ptr<RipRouter>> routers;

  void init_line(std::size_t n, const RipProfile& profile,
                 SimDuration delay = 20ms) {
    for (std::size_t i = 0; i < n; ++i)
      nodes.push_back(net.add_node("r" + std::to_string(i)));
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto seg = net.add_p2p(nodes[i], nodes[i + 1]);
      net.fault(seg).delay = delay;
    }
    for (std::size_t i = 0; i < n; ++i)
      routers.push_back(
          std::make_unique<RipRouter>(net, nodes[i], profile, 50 + i));
  }

  void start_all() {
    for (auto& r : routers) r->start();
  }
  void run_for(SimDuration d) { sim.run_until(sim.now() + d); }
  RipRouter& r(std::size_t i) { return *routers.at(i); }
};

std::map<std::uint32_t, RipRoute> table_of(RipRouter& r) {
  std::map<std::uint32_t, RipRoute> out;
  for (const auto& route : r.routes()) out[route.prefix.value()] = route;
  return out;
}

TEST(Rip, ConnectedRoutesInstalledAtStart) {
  RipRig rig;
  rig.init_line(2, rip_classic_profile());
  rig.start_all();
  rig.run_for(1s);
  EXPECT_EQ(rig.r(0).routes().size(), 1u);
  EXPECT_TRUE(rig.r(0).routes()[0].directly_connected);
  EXPECT_EQ(rig.r(0).routes()[0].metric, 1u);
}

TEST(Rip, StartupRequestYieldsImmediateConvergenceOnTwoNodes) {
  RipRig rig;
  rig.init_line(2, rip_classic_profile());
  rig.start_all();
  rig.run_for(5s);  // well inside the first 30 s periodic cycle
  // Each router learned the other's subnet via the answered request.
  EXPECT_EQ(rig.r(0).routes().size(), 1u);  // single shared subnet: nothing new
  EXPECT_GT(rig.r(0).stats().rx_responses, 0u);
}

TEST(Rip, LineConvergesWithAdditiveMetrics) {
  RipRig rig;
  rig.init_line(4, rip_classic_profile());
  rig.start_all();
  rig.run_for(120s);
  const auto t0 = table_of(rig.r(0));
  ASSERT_EQ(t0.size(), 3u);  // three /30 subnets
  std::vector<std::uint32_t> metrics;
  for (const auto& [p, r] : t0) metrics.push_back(r.metric);
  std::sort(metrics.begin(), metrics.end());
  EXPECT_EQ(metrics, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(Rip, EagerVariantAlsoConverges) {
  RipRig rig;
  rig.init_line(4, rip_eager_profile());
  rig.start_all();
  rig.run_for(120s);
  EXPECT_EQ(table_of(rig.r(0)).size(), 3u);
  EXPECT_EQ(table_of(rig.r(3)).size(), 3u);
}

TEST(Rip, SplitHorizonSuppressesLearnedRouteEcho) {
  // r2 learns the far r0-r1 subnet through its only interface; classic
  // split horizon must keep that route out of r2's responses on that same
  // interface entirely.
  RipRig rig;
  rig.init_line(3, rip_classic_profile());
  rig.start_all();
  rig.run_for(1ms);
  const auto far_subnet = rig.r(0).routes()[0].prefix;  // r0-r1 /30
  int echoes = 0;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != rig.nodes[2]) return;
    if (ev.direction != netsim::Direction::kSend) return;
    auto decoded = decode(ev.frame->payload);
    if (!decoded.ok() || decoded.value().command != Command::kResponse)
      return;
    for (const auto& e : decoded.value().entries)
      if (e.prefix == far_subnet) ++echoes;
  });
  rig.run_for(150s);
  // Sanity: r2 did learn the route it is suppressing.
  ASSERT_TRUE(table_of(rig.r(2)).count(far_subnet.value()));
  EXPECT_EQ(echoes, 0);
}

TEST(Rip, PoisonedReverseAdvertisesInfinityBack) {
  RipRig rig;
  rig.init_line(3, rip_eager_profile());
  rig.start_all();
  rig.run_for(40s);
  // r1 learned r2's far subnet via iface 1; poisoned reverse must
  // advertise it back out iface 1 with metric 16.
  int poisoned = 0;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.direction != netsim::Direction::kSend) return;
    auto decoded = decode(ev.frame->payload);
    if (!decoded.ok() || decoded.value().command != Command::kResponse)
      return;
    for (const auto& e : decoded.value().entries)
      if (e.metric == kInfinityMetric) ++poisoned;
  });
  rig.run_for(60s);
  EXPECT_GT(poisoned, 0);
}

TEST(Rip, TriggeredUpdatePropagatesOriginatedPrefix) {
  RipRig rig;
  rig.init_line(3, rip_eager_profile());
  rig.start_all();
  rig.run_for(40s);
  rig.r(0).originate(Ipv4Addr{203, 0, 113, 0}, Ipv4Addr{255, 255, 255, 0});
  rig.run_for(5s);  // far less than the 30 s periodic interval
  const auto t2 = table_of(rig.r(2));
  const auto it = t2.find(Ipv4Addr{203, 0, 113, 0}.value());
  ASSERT_NE(it, t2.end());
  EXPECT_EQ(it->second.metric, 3u);
  EXPECT_GT(rig.r(0).stats().triggered, 0u);
}

TEST(Rip, ClassicTriggeredUpdatesAreSuppressed) {
  // The classic profile delays triggered updates by 2 s; the eager one by
  // 50 ms. Measure propagation latency of an originated prefix.
  auto measure = [](const RipProfile& profile) {
    RipRig rig;
    rig.init_line(2, profile);
    rig.start_all();
    rig.run_for(40s);
    const auto t0 = rig.sim.now();
    rig.r(0).originate(Ipv4Addr{198, 51, 100, 0}, Ipv4Addr{255, 255, 255, 0});
    while (rig.sim.now() < t0 + 29s) {
      rig.run_for(100ms);
      const auto t = table_of(rig.r(1));
      if (t.count(Ipv4Addr{198, 51, 100, 0}.value())) break;
    }
    return rig.sim.now() - t0;
  };
  const auto classic = measure(rip_classic_profile());
  const auto eager = measure(rip_eager_profile());
  EXPECT_GT(classic, eager);
  EXPECT_GE(classic, 2s);
  EXPECT_LT(eager, 1s);
}

TEST(Rip, LearnedRouteExpiresAcrossCutLink) {
  // 4-node line r0-r1-r2-r3; cutting r1-r2 severs r1's *learned* route to
  // the far r2-r3 subnet, which must time out (connected subnets, by
  // contrast, never expire).
  RipRig rig;
  rig.init_line(4, rip_classic_profile());
  rig.start_all();
  rig.run_for(1ms);  // before any learning: r3 holds only its connected /30
  const auto far_subnet = rig.r(3).routes()[0].prefix;  // r2-r3 /30
  rig.run_for(120s);
  ASSERT_TRUE(table_of(rig.r(1)).count(far_subnet.value()));
  netsim::ChaosController chaos(rig.net);
  chaos.cut(1);  // the r1-r2 link
  rig.run_for(220s);  // beyond the 180 s route timeout
  const auto t1 = table_of(rig.r(1));
  const auto it = t1.find(far_subnet.value());
  const bool gone =
      it == t1.end() || it->second.metric >= kInfinityMetric;
  EXPECT_TRUE(gone);
  EXPECT_GT(rig.r(1).stats().routes_expired, 0u);
  // r0 hears the loss from r1 (unreachable advertisement or timeout).
  const auto t0 = table_of(rig.r(0));
  const auto it0 = t0.find(far_subnet.value());
  EXPECT_TRUE(it0 == t0.end() || it0->second.metric >= kInfinityMetric);
}

TEST(Rip, UnreachableRouteGarbageCollected) {
  RipRig rig;
  rig.init_line(4, rip_classic_profile());
  rig.start_all();
  rig.run_for(1ms);
  const auto far_subnet = rig.r(3).routes()[0].prefix;
  rig.run_for(120s);
  netsim::ChaosController chaos(rig.net);
  chaos.cut(1);
  rig.run_for(400s);  // timeout (180) + gc (120) + slack
  const auto t1 = table_of(rig.r(1));
  EXPECT_EQ(t1.count(far_subnet.value()), 0u)
      << "expired routes must eventually be garbage-collected";
}

TEST(Rip, SpecificRequestAnsweredWithExactPrefixes) {
  RipRig rig;
  rig.init_line(2, rip_classic_profile());
  rig.start_all();
  rig.run_for(40s);

  // Hand-craft a specific request from node 0 for a known and an unknown
  // prefix; the reply must quote both, the unknown one at metric 16.
  RipPacket req;
  req.command = Command::kRequest;
  RipEntry known;
  known.prefix = rig.r(1).routes()[0].prefix;
  known.mask = Ipv4Addr{255, 255, 255, 252};
  RipEntry unknown;
  unknown.prefix = Ipv4Addr{9, 9, 9, 0};
  unknown.mask = Ipv4Addr{255, 255, 255, 0};
  req.entries = {known, unknown};

  std::vector<std::uint32_t> reply_metrics;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != rig.nodes[0] || ev.direction != netsim::Direction::kRecv)
      return;
    auto decoded = decode(ev.frame->payload);
    if (!decoded.ok() || decoded.value().command != Command::kResponse)
      return;
    if (decoded.value().entries.size() == 2)
      for (const auto& e : decoded.value().entries)
        reply_metrics.push_back(e.metric);
  });
  netsim::Frame frame;
  frame.dst = rig.net.iface(rig.nodes[1], 0).address;
  frame.protocol = 17;
  frame.payload = encode(req);
  rig.net.send(rig.nodes[0], 0, std::move(frame));
  rig.run_for(5s);
  ASSERT_EQ(reply_metrics.size(), 2u);
  EXPECT_LT(reply_metrics[0], kInfinityMetric);
  EXPECT_EQ(reply_metrics[1], kInfinityMetric);
}

TEST(Rip, PeriodicUpdatesKeepFlowing) {
  RipRig rig;
  rig.init_line(2, rip_classic_profile());
  rig.start_all();
  rig.run_for(200s);
  // ~6 periodic cycles on each of 2 routers; requests answered too.
  EXPECT_GE(rig.r(0).stats().tx_responses, 5u);
  EXPECT_GE(rig.r(0).stats().rx_responses, 5u);
}

}  // namespace
}  // namespace nidkit::rip
