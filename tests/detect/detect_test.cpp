#include "detect/detect.hpp"

#include <gtest/gtest.h>

#include "detect/json.hpp"
#include "detect/report.hpp"

namespace nidkit::detect {
namespace {

using namespace std::chrono_literals;
using mining::RelationDirection;
using mining::RelationSet;

constexpr auto kSR = RelationDirection::kSendToRecv;
constexpr auto kRS = RelationDirection::kRecvToSend;

RelationSet set_with(std::initializer_list<std::pair<const char*, const char*>>
                         sr_cells) {
  RelationSet set;
  for (const auto& [s, r] : sr_cells)
    set.add(kSR, {s, r}, SimTime{1s}, 1, 2);
  return set;
}

TEST(Compare, IdenticalSetsProduceNoDiscrepancies) {
  const auto a = set_with({{"Hello", "Hello"}, {"LSU", "LSAck"}});
  const auto b = set_with({{"Hello", "Hello"}, {"LSU", "LSAck"}});
  EXPECT_TRUE(compare({"a", &a}, {"b", &b}).empty());
}

TEST(Compare, OneSidedCellFlaggedWithHaverAndLacker) {
  const auto a = set_with({{"Hello", "Hello"}, {"LSU", "LSAck"}});
  const auto b = set_with({{"Hello", "Hello"}});
  const auto found = compare({"frr", &a}, {"bird", &b});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].cell, (mining::RelationCell{"LSU", "LSAck"}));
  EXPECT_EQ(found[0].present_in, "frr");
  EXPECT_EQ(found[0].absent_in, "bird");
  EXPECT_EQ(found[0].evidence.count, 1u);
}

TEST(Compare, BothSidesCanBeFlagged) {
  const auto a = set_with({{"X", "Y"}});
  const auto b = set_with({{"P", "Q"}});
  const auto found = compare({"a", &a}, {"b", &b});
  EXPECT_EQ(found.size(), 2u);
}

TEST(Compare, DirectionsComparedSeparately) {
  RelationSet a, b;
  a.add(kSR, {"X", "Y"}, SimTime{0s}, 0, 0);
  b.add(kRS, {"X", "Y"}, SimTime{0s}, 0, 0);
  const auto found = compare({"a", &a}, {"b", &b});
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NE(found[0].direction, found[1].direction);
}

TEST(CompareAll, ThreeWayFlagsPerLacker) {
  const auto a = set_with({{"X", "Y"}});
  const auto b = set_with({{"X", "Y"}});
  const auto c = set_with({});
  const auto found = compare_all({{"a", &a}, {"b", &b}, {"c", &c}});
  // Cell X->Y is missing only from c; flagged once per haver (a and b).
  ASSERT_EQ(found.size(), 2u);
  for (const auto& d : found) EXPECT_EQ(d.absent_in, "c");
}

TEST(Render, MatrixPlacesChecksAndZeros) {
  const auto a = set_with({{"Hello", "Hello"}});
  const auto b = set_with({});
  const auto text = render_matrix({{"frr", &a}, {"bird", &b}}, {"Hello"},
                                  {"Hello"}, kSR);
  // One ✓ (frr block) and one Ø (bird block).
  EXPECT_NE(text.find("✓"), std::string::npos);
  EXPECT_NE(text.find("Ø"), std::string::npos);
  EXPECT_NE(text.find("frr"), std::string::npos);
  EXPECT_NE(text.find("Snd(Hello)"), std::string::npos);
  EXPECT_NE(text.find("Rcv(Hello)"), std::string::npos);
}

TEST(Render, MatrixRespectsRequestedOrder) {
  const auto a = set_with({{"A", "B"}});
  const auto text =
      render_matrix({{"impl", &a}}, {"Z", "A"}, {"B"}, kSR);
  EXPECT_LT(text.find("Snd(Z)"), text.find("Snd(A)"));
}

TEST(Render, DiscrepanciesListIsReadable) {
  const auto a = set_with({{"LSU", "LSAck"}});
  const auto b = set_with({});
  const auto found = compare({"frr", &a}, {"bird", &b});
  const auto text = render_discrepancies(found);
  EXPECT_NE(text.find("LSU -> LSAck"), std::string::npos);
  EXPECT_NE(text.find("present in frr"), std::string::npos);
  EXPECT_NE(text.find("never in bird"), std::string::npos);
}

TEST(Render, NoDiscrepanciesMessage) {
  const auto text = render_discrepancies({});
  EXPECT_NE(text.find("no discrepancies"), std::string::npos);
}

TEST(Render, RelationListingShowsCounts) {
  RelationSet set;
  set.add(kSR, {"A", "B"}, SimTime{0s}, 0, 0);
  set.add(kSR, {"A", "B"}, SimTime{1s}, 0, 0);
  const auto text = render_relations(set);
  EXPECT_NE(text.find("A -> B (2x)"), std::string::npos);
}

TEST(Render, ResponseProfileIsReadable) {
  RelationSet set;
  for (int i = 0; i < 3; ++i)
    set.add(kSR, {"LSU", "LSAck"}, SimTime{0s}, 0, 0);
  set.add(kSR, {"LSU", "Hello"}, SimTime{0s}, 0, 0);
  const auto text =
      render_response_profile(mining::response_profile(set, kSR));
  EXPECT_NE(text.find("after Snd(LSU):"), std::string::npos);
  EXPECT_NE(text.find("Rcv(LSAck) 75% (3x)"), std::string::npos);
  EXPECT_NE(text.find("Rcv(Hello) 25% (1x)"), std::string::npos);
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, AuditShapeIsWellFormed) {
  const auto a = set_with({{"LSU", "LSAck"}});
  const auto b = set_with({});
  const std::vector<NamedRelations> named = {{"frr", &a}, {"bird", &b}};
  const auto flags = compare(named[0], named[1]);
  const auto json = to_json(named, flags);
  // Structural smoke checks (we emit, we do not parse).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"implementations\":[\"frr\",\"bird\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"stimulus\":\"LSU\""), std::string::npos);
  EXPECT_NE(json.find("\"present_in\":\"frr\""), std::string::npos);
  EXPECT_NE(json.find("\"absent_in\":\"bird\""), std::string::npos);
  // Balanced braces/brackets.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Json, EmptyAuditSerializes) {
  const auto json = to_json({}, {});
  EXPECT_EQ(json,
            "{\"implementations\":[],\"relations\":{},\"discrepancies\":[]}");
}

TEST(DirectionLabel, Names) {
  EXPECT_EQ(to_string(kSR), "send->recv");
  EXPECT_EQ(to_string(kRS), "recv->send");
}

}  // namespace
}  // namespace nidkit::detect
