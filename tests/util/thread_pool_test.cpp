#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nidkit {
namespace {

TEST(ThreadPool, DefaultWorkerCountIsAtLeastOne) {
  EXPECT_GE(default_worker_count(), 1u);
}

TEST(ThreadPool, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
}

TEST(ThreadPool, FuturesCarryResultsBack) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, EveryTaskRunsEvenWithOneWorker) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(1);
    for (int i = 1; i <= 100; ++i)
      pool.submit([&sum, i] { sum += i; });
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("scenario failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, AnExceptionDoesNotKillTheWorker) {
  ThreadPool pool(1);
  pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto after = pool.submit([] { return 42; });
  EXPECT_EQ(after.get(), 42);
}

TEST(ThreadPool, CountersTrackTasksAndQueueDepth) {
  constexpr int kTasks = 24;
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < kTasks; ++i)
    futures.push_back(pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }));
  for (auto& f : futures) f.get();
  const auto counters = pool.counters();
  EXPECT_EQ(counters.tasks_run, static_cast<std::uint64_t>(kTasks));
  // With 2 workers draining 1 ms tasks, the queue must have backed up at
  // some point; the high-water mark can never exceed the submission count.
  EXPECT_GE(counters.max_queue_depth, 1u);
  EXPECT_LE(counters.max_queue_depth, static_cast<std::size_t>(kTasks));
}

TEST(ThreadPool, ManyWorkersManyTasks) {
  ThreadPool pool(8);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 200; ++i)
    futures.push_back(pool.submit([i] { return i; }));
  std::size_t sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 200u * 199u / 2);
  EXPECT_EQ(pool.counters().tasks_run, 200u);
}

TEST(ThreadPool, MoveOnlyResultsWork) {
  ThreadPool pool(2);
  auto f = pool.submit([] {
    auto v = std::make_unique<int>(99);
    return v;
  });
  EXPECT_EQ(*f.get(), 99);
}

}  // namespace
}  // namespace nidkit
