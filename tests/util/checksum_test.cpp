#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include "packet/lsa.hpp"
#include "util/rng.hpp"

namespace nidkit {
namespace {

TEST(InternetChecksum, KnownVector) {
  // Classic RFC 1071 worked example: 0x0001 0xf203 0xf4f5 0xf6f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(InternetChecksum, ZeroBufferChecksumIsAllOnes) {
  const std::uint8_t data[4] = {};
  EXPECT_EQ(internet_checksum(data), 0xffff);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::uint8_t odd[] = {0x12};
  const std::uint8_t even[] = {0x12, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(InternetChecksum, EmbeddedChecksumVerifies) {
  std::uint8_t data[] = {0x45, 0x00, 0x00, 0x1c, 0x00, 0x00,
                         0x00, 0x00, 0x40, 0x01, 0x00, 0x00};
  const std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  EXPECT_TRUE(internet_checksum_ok(data));
}

TEST(InternetChecksum, CorruptionDetected) {
  std::uint8_t data[] = {0x45, 0x00, 0x00, 0x1c, 0x00, 0x00,
                         0x00, 0x00, 0x40, 0x01, 0x00, 0x00};
  const std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  data[0] ^= 0x01;
  EXPECT_FALSE(internet_checksum_ok(data));
}

TEST(InternetChecksum, EmptyBuffer) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

std::vector<std::uint8_t> random_lsa_bytes(std::size_t body_len,
                                           std::uint64_t seed) {
  // A synthetic "age-stripped LSA": 18-byte header remainder + body, with
  // the checksum field at offset 14.
  Rng rng(seed);
  std::vector<std::uint8_t> lsa(18 + body_len);
  for (auto& b : lsa) b = static_cast<std::uint8_t>(rng.uniform(256));
  lsa[14] = lsa[15] = 0;
  return lsa;
}

class FletcherProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FletcherProperty, ComputeThenVerifyHolds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto lsa = random_lsa_bytes(GetParam(), seed);
    const std::uint16_t sum = fletcher_checksum(lsa, 14);
    lsa[14] = static_cast<std::uint8_t>(sum >> 8);
    lsa[15] = static_cast<std::uint8_t>(sum);
    EXPECT_TRUE(fletcher_checksum_ok(lsa)) << "seed=" << seed;
  }
}

TEST_P(FletcherProperty, SingleByteCorruptionDetected) {
  auto lsa = random_lsa_bytes(GetParam(), 42);
  const std::uint16_t sum = fletcher_checksum(lsa, 14);
  lsa[14] = static_cast<std::uint8_t>(sum >> 8);
  lsa[15] = static_cast<std::uint8_t>(sum);
  for (std::size_t i = 0; i < lsa.size(); ++i) {
    auto corrupted = lsa;
    corrupted[i] ^= 0x5a;
    EXPECT_FALSE(fletcher_checksum_ok(corrupted)) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(BodySizes, FletcherProperty,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{12}, std::size_t{60},
                                           std::size_t{255},
                                           std::size_t{1024}));

TEST(Fletcher, MatchesRealLsaEncoding) {
  // The LSA codec's finalize() computes the same checksum this module
  // verifies — a cross-module consistency check.
  ospf::Lsa lsa;
  lsa.header.type = ospf::LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{1, 2, 3, 4};
  lsa.header.advertising_router = RouterId{1, 2, 3, 4};
  ospf::RouterLsaBody body;
  body.links.push_back(ospf::RouterLink{Ipv4Addr{10, 0, 0, 0},
                                        Ipv4Addr{255, 255, 255, 252},
                                        ospf::RouterLinkType::kStub, 1});
  lsa.body = body;
  lsa.finalize();
  EXPECT_TRUE(lsa.checksum_ok());
  EXPECT_NE(lsa.header.checksum, 0);
}

TEST(Fletcher, AgeFieldExcludedFromCoverage) {
  // Two instances differing only in age must carry the same checksum.
  ospf::Lsa a;
  a.header.type = ospf::LsaType::kRouter;
  a.header.link_state_id = Ipv4Addr{9, 9, 9, 9};
  a.header.advertising_router = RouterId{9, 9, 9, 9};
  a.body = ospf::RouterLsaBody{};
  a.finalize();
  ospf::Lsa b = a;
  b.header.age = 1234;
  b.finalize();
  EXPECT_EQ(a.header.checksum, b.header.checksum);
}

}  // namespace
}  // namespace nidkit
