// SharedBytes: the frame-payload buffer. The contract under test: copies
// share one cell (refcount, not byte copy), the buffer is value-comparable,
// converts to the span the wire codecs take, and the empty buffer costs
// nothing.
#include "util/shared_bytes.hpp"

#include <gtest/gtest.h>

#include <utility>

namespace nidkit::util {
namespace {

TEST(SharedBytes, EmptyByDefault) {
  SharedBytes b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.use_count(), 0u);
}

TEST(SharedBytes, HoldsACopyOfTheSource) {
  std::vector<std::uint8_t> v{1, 2, 3};
  SharedBytes b = v;
  v[0] = 99;  // the cell is independent of the source vector
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[2], 3);
}

TEST(SharedBytes, CopiesShareOneCell) {
  SharedBytes a{10, 20, 30};
  SharedBytes b = a;
  SharedBytes c = b;
  EXPECT_EQ(a.use_count(), 3u);
  EXPECT_EQ(a.data(), b.data());  // same bytes, not equal bytes
  EXPECT_EQ(b.data(), c.data());
  c = SharedBytes{};
  EXPECT_EQ(a.use_count(), 2u);
}

TEST(SharedBytes, MoveDoesNotBumpTheRefcount) {
  SharedBytes a{1, 2};
  const auto* p = a.data();
  SharedBytes b = std::move(a);
  EXPECT_EQ(b.use_count(), 1u);
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());  // NOLINT: post-move state is pinned
}

TEST(SharedBytes, LastOwnerFreesTheCell) {
  SharedBytes outer;
  {
    SharedBytes inner{5, 6, 7};
    outer = inner;
    EXPECT_EQ(outer.use_count(), 2u);
  }
  EXPECT_EQ(outer.use_count(), 1u);
  EXPECT_EQ(outer.size(), 3u);
  EXPECT_EQ(outer[1], 6);
}

TEST(SharedBytes, EqualityIsByValue) {
  SharedBytes a{1, 2, 3};
  SharedBytes b{1, 2, 3};
  SharedBytes c{1, 2, 4};
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(SharedBytes{}, SharedBytes{});
}

TEST(SharedBytes, ConvertsToCodecSpan) {
  SharedBytes b{0xde, 0xad};
  std::span<const std::uint8_t> s = b;
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], 0xad);
  EXPECT_EQ(b.span().data(), b.data());
}

TEST(SharedBytes, RoundTripsThroughVector) {
  std::vector<std::uint8_t> v{9, 8, 7, 6};
  SharedBytes b = v;
  EXPECT_EQ(b.to_vector(), v);
}

TEST(SharedBytes, IteratesLikeAContainer) {
  SharedBytes b{1, 2, 3, 4};
  int sum = 0;
  for (const auto byte : b) sum += byte;
  EXPECT_EQ(sum, 10);
}

}  // namespace
}  // namespace nidkit::util
