// Property tests pinning the optimized checksums to naive scalar
// references. The production implementations accumulate a word at a time
// with deferred folding; these references do exactly what the RFCs print —
// byte pairs for RFC 1071, per-byte mod-255 accumulators for Fletcher — so
// any unrolling/vectorization bug shows up as a mismatch on some length.
// Every length 0..1500 is exercised (both random fill and all-0xFF carry
// chains), including odd lengths where the pad byte matters.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace nidkit {
namespace {

std::uint16_t ref_internet(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | std::uint32_t{data[i + 1]};
  }
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t ref_fletcher(std::span<const std::uint8_t> lsa,
                           std::size_t checksum_offset) {
  std::int32_t c0 = 0;
  std::int32_t c1 = 0;
  for (std::size_t i = 0; i < lsa.size(); ++i) {
    const std::uint8_t byte =
        (i == checksum_offset || i == checksum_offset + 1) ? 0 : lsa[i];
    c0 = (c0 + byte) % 255;
    c1 = (c1 + c0) % 255;
  }
  const auto len = static_cast<std::int32_t>(lsa.size());
  const auto off = static_cast<std::int32_t>(checksum_offset);
  std::int32_t x = ((len - off - 1) * c0 - c1) % 255;
  if (x < 0) x += 255;
  std::int32_t y = (-c0 - x) % 255;
  if (y < 0) y += 255;
  return static_cast<std::uint16_t>((x << 8) | y);
}

bool ref_fletcher_ok(std::span<const std::uint8_t> lsa) {
  std::int32_t c0 = 0;
  std::int32_t c1 = 0;
  for (std::uint8_t b : lsa) {
    c0 = (c0 + b) % 255;
    c1 = (c1 + c0) % 255;
  }
  return c0 == 0 && c1 == 0;
}

std::vector<std::uint8_t> random_buffer(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> buf(len);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  return buf;
}

TEST(ChecksumProperty, InternetMatchesReferenceOnEveryLength) {
  Rng rng(0x1071);
  for (std::size_t len = 0; len <= 1500; ++len) {
    const auto buf = random_buffer(rng, len);
    ASSERT_EQ(internet_checksum(buf), ref_internet(buf)) << "len=" << len;
  }
}

TEST(ChecksumProperty, InternetSurvivesAllOnesCarryChains) {
  // 0xFF words maximize carry propagation through the deferred fold.
  for (std::size_t len = 0; len <= 1500; ++len) {
    const std::vector<std::uint8_t> buf(len, 0xFF);
    ASSERT_EQ(internet_checksum(buf), ref_internet(buf)) << "len=" << len;
  }
}

TEST(ChecksumProperty, InternetVerifyAgreesWithReference) {
  Rng rng(0x1072);
  for (std::size_t len = 2; len <= 256; ++len) {
    auto buf = random_buffer(rng, len);
    buf[0] = 0;
    buf[1] = 0;
    const std::uint16_t sum = internet_checksum(buf);
    buf[0] = static_cast<std::uint8_t>(sum >> 8);
    buf[1] = static_cast<std::uint8_t>(sum);
    ASSERT_TRUE(internet_checksum_ok(buf)) << "len=" << len;
  }
}

TEST(ChecksumProperty, InternetSplitMatchesContiguous) {
  // The tap-path OSPF parser verifies the header checksum by summing
  // [0,16) and [24,len) separately (the auth field counts as zero). The
  // split form must equal the checksum of the concatenated bytes whenever
  // the first part has even length.
  Rng rng(0x1073);
  for (std::size_t alen : {0u, 2u, 4u, 16u, 30u}) {
    for (std::size_t blen = 0; blen <= 100; ++blen) {
      const auto a = random_buffer(rng, alen);
      const auto b = random_buffer(rng, blen);
      std::vector<std::uint8_t> whole = a;
      whole.insert(whole.end(), b.begin(), b.end());
      ASSERT_EQ(internet_checksum2(a, b), ref_internet(whole))
          << "alen=" << alen << " blen=" << blen;
    }
  }
}

TEST(ChecksumProperty, FletcherMatchesReferenceOnEveryLength) {
  Rng rng(0x0905);
  for (std::size_t len = 0; len <= 1500; ++len) {
    const auto buf = random_buffer(rng, len);
    // Standard LSA checksum offset once the age is stripped; for stubs
    // shorter than a header use offset 0 so both sides see the same args.
    const std::size_t off = len >= 16 ? 14 : 0;
    ASSERT_EQ(fletcher_checksum(buf, off), ref_fletcher(buf, off))
        << "len=" << len;
  }
}

TEST(ChecksumProperty, FletcherSurvivesAllOnesCarryChains) {
  for (std::size_t len = 0; len <= 1500; ++len) {
    const std::vector<std::uint8_t> buf(len, 0xFF);
    const std::size_t off = len >= 16 ? 14 : 0;
    ASSERT_EQ(fletcher_checksum(buf, off), ref_fletcher(buf, off))
        << "len=" << len;
  }
}

TEST(ChecksumProperty, FletcherVerifyAgreesWithReference) {
  Rng rng(0x0906);
  for (std::size_t len = 16; len <= 512; ++len) {
    auto buf = random_buffer(rng, len);
    const std::uint16_t sum = fletcher_checksum(buf, 14);
    buf[14] = static_cast<std::uint8_t>(sum >> 8);
    buf[15] = static_cast<std::uint8_t>(sum);
    ASSERT_TRUE(fletcher_checksum_ok(buf)) << "len=" << len;
    ASSERT_TRUE(ref_fletcher_ok(buf)) << "len=" << len;
    buf[5] ^= 0x01;  // single-bit corruption (not the 0x00/0xFF blind spot)
    ASSERT_FALSE(fletcher_checksum_ok(buf)) << "len=" << len;
  }
}

}  // namespace
}  // namespace nidkit
