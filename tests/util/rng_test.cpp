#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nidkit {
namespace {

using namespace std::chrono_literals;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysBelowBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, JitterWithinRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto d = rng.jitter(10ms, 20ms);
    EXPECT_GE(d, SimDuration{10ms});
    EXPECT_LE(d, SimDuration{20ms});
  }
}

TEST(Rng, JitterDegenerateRangeReturnsLo) {
  Rng rng(29);
  EXPECT_EQ(rng.jitter(5ms, 5ms), SimDuration{5ms});
  EXPECT_EQ(rng.jitter(5ms, 3ms), SimDuration{5ms});
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(31);
  parent2.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (child.next() == parent.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(37), b(37);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.next(), cb.next());
}

}  // namespace
}  // namespace nidkit
