// InlineAction: the simulator's event-closure storage. The contract under
// test: any void() callable runs exactly once, captures survive moves, the
// hot-path closure sizes stay inline, and oversized/throwing-move callables
// still work through the heap fallback.
#include "util/inline_action.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

namespace nidkit::util {
namespace {

TEST(InlineAction, DefaultConstructedIsEmpty) {
  InlineAction a;
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(InlineAction, InvokesCapturedLambda) {
  int hits = 0;
  InlineAction a = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(a));
  a();
  a();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, MoveTransfersTheCallable) {
  int hits = 0;
  InlineAction a = [&hits] { ++hits; };
  InlineAction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: post-move state is pinned
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineAction, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  InlineAction a = [t = std::move(token)] { (void)t; };
  EXPECT_FALSE(alive.expired());
  a = InlineAction{};
  EXPECT_TRUE(alive.expired());
}

TEST(InlineAction, DestructorReleasesCapture) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  {
    InlineAction a = [t = std::move(token)] { (void)t; };
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(InlineAction, HotPathClosureSizesFitInline) {
  // The whole point of the type: a frame-delivery-sized capture must not
  // heap-allocate. ~60 bytes of captured state stays under kInlineSize.
  struct DeliveryShaped {
    void* network;
    std::uint32_t segment, node, iface;
    std::array<unsigned char, 40> frame;
  };
  static_assert(sizeof(DeliveryShaped) <= InlineAction::kInlineSize);
  static_assert(InlineAction::kInlineSize >= 72);
}

TEST(InlineAction, OversizedCallableFallsBackToHeapAndStillRuns) {
  std::array<unsigned char, 200> big{};
  big[199] = 42;
  int seen = -1;
  InlineAction a = [big, &seen] { seen = big[199]; };
  InlineAction b = std::move(a);
  b();
  EXPECT_EQ(seen, 42);
}

TEST(InlineAction, ThrowingMoveCallableUsesHeapPath) {
  // A capture whose move constructor may throw cannot live inline (the
  // relocate op is noexcept), so it must route through the heap cell.
  struct ThrowyMove {
    ThrowyMove() = default;
    ThrowyMove(const ThrowyMove&) = default;
    ThrowyMove(ThrowyMove&&) {}  // NOLINT: deliberately not noexcept
    int v = 9;
  };
  static_assert(!std::is_nothrow_move_constructible_v<ThrowyMove>);
  int seen = 0;
  ThrowyMove t;
  InlineAction a = [t, &seen] { seen = t.v; };
  a();
  EXPECT_EQ(seen, 9);
}

TEST(InlineAction, ReusableAsAQueueSlot) {
  // The simulator stores actions in a vector-heap and move-assigns slots
  // during push_heap/pop_heap sifts; model that churn.
  std::vector<InlineAction> q;
  int sum = 0;
  for (int i = 0; i < 16; ++i) q.push_back([&sum, i] { sum += i; });
  for (int round = 0; round < 3; ++round)
    for (std::size_t i = 1; i < q.size(); ++i) std::swap(q[i - 1], q[i]);
  for (auto& a : q) a();
  EXPECT_EQ(sum, 120);
}

}  // namespace
}  // namespace nidkit::util
