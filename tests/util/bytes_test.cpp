#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace nidkit {
namespace {

TEST(ByteWriter, WritesBigEndianU16) {
  ByteWriter w;
  w.u16(0x1234);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.view()[0], 0x12);
  EXPECT_EQ(w.view()[1], 0x34);
}

TEST(ByteWriter, WritesBigEndianU24) {
  ByteWriter w;
  w.u24(0xabcdef);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.view()[0], 0xab);
  EXPECT_EQ(w.view()[1], 0xcd);
  EXPECT_EQ(w.view()[2], 0xef);
}

TEST(ByteWriter, WritesBigEndianU32) {
  ByteWriter w;
  w.u32(0xdeadbeef);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.view()[0], 0xde);
  EXPECT_EQ(w.view()[3], 0xef);
}

TEST(ByteWriter, SignedRoundTripsThroughU32) {
  ByteWriter w;
  w.i32(-0x7fffffff);
  ByteReader r(w.view());
  EXPECT_EQ(r.i32(), -0x7fffffff);
}

TEST(ByteWriter, AppendsRawBytesAndZeros) {
  ByteWriter w;
  const std::uint8_t data[] = {1, 2, 3};
  w.bytes(data);
  w.zeros(2);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w.view()[2], 3);
  EXPECT_EQ(w.view()[4], 0);
}

TEST(ByteWriter, PatchU16OverwritesInPlace) {
  ByteWriter w;
  w.u32(0);
  w.patch_u16(1, 0xbeef);
  EXPECT_EQ(w.view()[1], 0xbe);
  EXPECT_EQ(w.view()[2], 0xef);
}

TEST(ByteWriter, PatchPastEndThrows) {
  ByteWriter w;
  w.u8(0);
  EXPECT_THROW(w.patch_u16(1, 1), std::out_of_range);
}

TEST(ByteWriter, TakeMovesBufferOut) {
  ByteWriter w;
  w.u16(7);
  auto buf = std::move(w).take();
  EXPECT_EQ(buf.size(), 2u);
}

TEST(ByteReader, ReadsSequentially) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16(), 0x0203);
  EXPECT_EQ(r.u32(), 0x04050607u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, StickyErrorOnOverread) {
  const std::uint8_t data[] = {1, 2};
  ByteReader r(data);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
  // Subsequent reads keep failing even if bytes would be available.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, BytesReturnsSubspan) {
  const std::uint8_t data[] = {9, 8, 7, 6};
  ByteReader r(data);
  auto first = r.bytes(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[2], 7);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteReader, BytesPastEndFails) {
  const std::uint8_t data[] = {1};
  ByteReader r(data);
  EXPECT_TRUE(r.bytes(2).empty());
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, SkipAdvances) {
  const std::uint8_t data[] = {1, 2, 3};
  ByteReader r(data);
  r.skip(2);
  EXPECT_EQ(r.u8(), 3);
  EXPECT_TRUE(r.ok());
}

TEST(ByteReader, SkipPastEndFails) {
  const std::uint8_t data[] = {1};
  ByteReader r(data);
  r.skip(5);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, U24ReadsThreeBytes) {
  const std::uint8_t data[] = {0x10, 0x20, 0x30};
  ByteReader r(data);
  EXPECT_EQ(r.u24(), 0x102030u);
}

TEST(ByteReader, EmptySpanFailsImmediately) {
  ByteReader r({});
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(HexDump, FormatsGroupsOfFour) {
  const std::uint8_t data[] = {0xde, 0xad, 0xbe, 0xef, 0x01};
  EXPECT_EQ(hex_dump(data), "deadbeef 01");
}

TEST(HexDump, EmptyInputEmptyOutput) { EXPECT_EQ(hex_dump({}), ""); }

/// Property: every (writer value, reader value) pair round-trips for a
/// sweep of representative integers.
class BytesRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BytesRoundTrip, U32) {
  ByteWriter w;
  w.u32(GetParam());
  ByteReader r(w.view());
  EXPECT_EQ(r.u32(), GetParam());
}

TEST_P(BytesRoundTrip, U16TruncatedToLowBits) {
  const auto v = static_cast<std::uint16_t>(GetParam());
  ByteWriter w;
  w.u16(v);
  ByteReader r(w.view());
  EXPECT_EQ(r.u16(), v);
}

TEST_P(BytesRoundTrip, U24LowBits) {
  const auto v = GetParam() & 0xffffffu;
  ByteWriter w;
  w.u24(v);
  ByteReader r(w.view());
  EXPECT_EQ(r.u24(), v);
}

INSTANTIATE_TEST_SUITE_P(Representative, BytesRoundTrip,
                         ::testing::Values(0u, 1u, 0x7fu, 0x80u, 0xffu,
                                           0x100u, 0xffffu, 0x10000u,
                                           0xffffffu, 0x1000000u, 0x7fffffffu,
                                           0x80000000u, 0xffffffffu));

}  // namespace
}  // namespace nidkit
