// Arena + ArenaVec: the storage behind the columnar TraceLog. The contract
// under test: bump allocation hands out aligned, disjoint, usable memory;
// reset() rewinds without giving chunks back; a dying arena parks its
// chunks in the process-wide pool for the next scenario to reuse; and
// ArenaVec behaves like a vector whose storage the arena owns.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena_vec.hpp"

namespace nidkit::util {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena a;
  std::vector<std::pair<std::uintptr_t, std::size_t>> blocks;
  for (std::size_t size : {1u, 7u, 8u, 64u, 1000u}) {
    for (std::size_t align : {1u, 2u, 8u, 64u}) {
      void* p = a.allocate(size, align);
      ASSERT_NE(p, nullptr);
      const auto addr = reinterpret_cast<std::uintptr_t>(p);
      EXPECT_EQ(addr % align, 0u);
      for (const auto& [b, n] : blocks) {
        EXPECT_TRUE(addr + size <= b || b + n <= addr)
            << "blocks overlap: " << addr << " and " << b;
      }
      std::memset(p, 0xab, size);  // must be writable end to end
      blocks.emplace_back(addr, size);
    }
  }
  EXPECT_GT(a.bytes_allocated(), 0u);
}

TEST(Arena, ResetRewindsAndReusesChunks) {
  Arena a;
  for (int i = 0; i < 64; ++i) a.allocate(4096, 8);
  const std::size_t chunks = a.chunk_count();
  ASSERT_GE(chunks, 1u);

  a.reset();
  EXPECT_EQ(a.bytes_allocated(), 0u);
  // Chunks stay attached to the arena across reset.
  EXPECT_EQ(a.chunk_count(), chunks);

  // Refilling the same volume must not grow the chunk set.
  for (int i = 0; i < 64; ++i) a.allocate(4096, 8);
  EXPECT_EQ(a.chunk_count(), chunks);
}

TEST(Arena, OversizeRequestGetsAChunkThatFits) {
  Arena a;
  // Larger than the max geometric chunk payload (8 MiB): the arena must
  // size a chunk for the request rather than hand out short storage.
  const std::size_t big = 12 * 1024 * 1024;
  auto* p = static_cast<std::uint8_t*>(a.allocate(big, 8));
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[big - 1] = 2;  // would fault or corrupt if the chunk were capped short
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[big - 1], 2);
}

TEST(Arena, DyingArenaParksChunksInThePool) {
  Arena::trim_pool();
  EXPECT_EQ(Arena::pool_chunks(), 0u);
  {
    Arena a;
    a.allocate(1024, 8);
  }
  EXPECT_GE(Arena::pool_chunks(), 1u);

  // A fresh arena's first chunk comes from the pool, not the OS.
  const std::size_t pooled = Arena::pool_chunks();
  Arena b;
  b.allocate(1024, 8);
  EXPECT_EQ(Arena::pool_chunks(), pooled - 1);
  Arena::trim_pool();
}

TEST(ArenaVec, PushBackGrowsAndPreservesContents) {
  Arena a;
  ArenaVec<std::uint32_t> v(&a);
  EXPECT_TRUE(v.empty());
  for (std::uint32_t i = 0; i < 10000; ++i) v.push_back(i * 7);
  ASSERT_EQ(v.size(), 10000u);
  for (std::uint32_t i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i * 7);
  EXPECT_GE(v.capacity(), v.size());
}

TEST(ArenaVec, ResizeDefaultConstructsNewSlots) {
  Arena a;
  ArenaVec<std::uint64_t> v(&a);
  v.push_back(42);
  v.resize(5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 42u);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(v[i], 0u);
}

TEST(ArenaVec, NestedVectorsShareTheArena) {
  Arena a;
  ArenaVec<ArenaVec<std::uint32_t>> outer(&a);
  outer.resize(3);
  for (auto& inner : outer) inner.set_arena(&a);
  for (std::uint32_t i = 0; i < 3; ++i)
    for (std::uint32_t j = 0; j < 100; ++j) outer[i].push_back(i * 1000 + j);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_EQ(outer[i].size(), 100u);
    EXPECT_EQ(outer[i][99], i * 1000 + 99);
  }
}

TEST(ArenaVec, MoveTransfersOwnership) {
  Arena a;
  ArenaVec<int> v(&a);
  v.push_back(1);
  v.push_back(2);
  ArenaVec<int> w(std::move(v));
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[1], 2);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  v.push_back(9);           // moved-from vector is reusable
  EXPECT_EQ(v.size(), 1u);
}

TEST(ArenaVec, ClearForgetsButArenaKeepsStorage) {
  Arena a;
  ArenaVec<int> v(&a);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const std::size_t used = a.bytes_allocated();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(a.bytes_allocated(), used);  // arena unwinds only on reset
}

}  // namespace
}  // namespace nidkit::util
