#include "util/ip.hpp"

#include <gtest/gtest.h>

namespace nidkit {
namespace {

TEST(Ipv4Addr, OctetConstructorOrdersBytes) {
  EXPECT_EQ((Ipv4Addr{10, 0, 0, 1}.value()), 0x0a000001u);
}

TEST(Ipv4Addr, ToStringDottedQuad) {
  EXPECT_EQ((Ipv4Addr{192, 168, 1, 200}.to_string()), "192.168.1.200");
  EXPECT_EQ(Ipv4Addr{}.to_string(), "0.0.0.0");
  EXPECT_EQ((Ipv4Addr{255, 255, 255, 255}.to_string()), "255.255.255.255");
}

TEST(Ipv4Addr, ParseValid) {
  Ipv4Addr out;
  ASSERT_TRUE(Ipv4Addr::parse("172.16.254.3", &out));
  EXPECT_EQ(out, (Ipv4Addr{172, 16, 254, 3}));
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  Ipv4Addr out{1};
  EXPECT_FALSE(Ipv4Addr::parse("", &out));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3", &out));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5", &out));
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1", &out));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x", &out));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 trailing", &out));
  // Failed parses leave the output untouched.
  EXPECT_EQ(out.value(), 1u);
}

TEST(Ipv4Addr, RoundTripsThroughString) {
  for (const auto addr :
       {Ipv4Addr{0, 0, 0, 0}, Ipv4Addr{127, 0, 0, 1}, Ipv4Addr{10, 20, 30, 40},
        Ipv4Addr{224, 0, 0, 5}, Ipv4Addr{255, 255, 255, 255}}) {
    Ipv4Addr parsed;
    ASSERT_TRUE(Ipv4Addr::parse(addr.to_string(), &parsed));
    EXPECT_EQ(parsed, addr);
  }
}

TEST(Ipv4Addr, OrderingFollowsNumericValue) {
  EXPECT_LT((Ipv4Addr{1, 1, 1, 1}), (Ipv4Addr{1, 1, 1, 2}));
  EXPECT_LT((Ipv4Addr{1, 255, 255, 255}), (Ipv4Addr{2, 0, 0, 0}));
}

TEST(Ipv4Addr, IsZero) {
  EXPECT_TRUE(Ipv4Addr{}.is_zero());
  EXPECT_FALSE((Ipv4Addr{0, 0, 0, 1}).is_zero());
}

TEST(Ipv4Addr, WellKnownMulticastConstants) {
  EXPECT_EQ(kAllSpfRouters.to_string(), "224.0.0.5");
  EXPECT_EQ(kAllDRouters.to_string(), "224.0.0.6");
  EXPECT_TRUE(kBackboneArea.is_zero());
}

}  // namespace
}  // namespace nidkit
