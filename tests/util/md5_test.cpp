#include "util/md5.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nidkit {
namespace {

std::string hex_of(const std::string& text) {
  return md5_hex(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

/// The complete RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(hex_of(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(hex_of("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(hex_of("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(hex_of("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(hex_of("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      hex_of("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(hex_of("1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, PaddingBoundaries) {
  // Lengths around the 56-byte and 64-byte block boundaries exercise the
  // one-block vs two-block finalization paths.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    std::vector<std::uint8_t> data(len, 'x');
    const auto d = md5(data);
    // Self-consistency: same input, same digest; different length,
    // different digest than len-1.
    EXPECT_EQ(d, md5(data)) << len;
    if (len > 0) {
      std::vector<std::uint8_t> shorter(len - 1, 'x');
      EXPECT_NE(d, md5(shorter)) << len;
    }
  }
}

TEST(Md5, SingleBitChangesDigest) {
  std::vector<std::uint8_t> data(100, 0xab);
  const auto base = md5(data);
  data[50] ^= 0x01;
  EXPECT_NE(md5(data), base);
}

TEST(Md5, KnownBinaryVector) {
  // 64 zero bytes (exactly one block before padding).
  std::vector<std::uint8_t> zeros(64, 0);
  EXPECT_EQ(md5_hex(zeros), "3b5d3c7d207e37dceeedd301e35e2e58");
}

}  // namespace
}  // namespace nidkit
