// SmallVec: the digest's LSA-header storage. The contract under test:
// the first N elements live inline (no allocation), spilling past N moves
// everything to the heap transparently, and copies/moves/comparisons
// behave like std::vector's.
#include "util/small_vec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace nidkit::util {
namespace {

using V = SmallVec<std::uint32_t, 4>;

TEST(SmallVec, StartsEmptyAndInline) {
  V v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.is_inline());
}

TEST(SmallVec, StaysInlineUpToN) {
  V v;
  for (std::uint32_t i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_TRUE(v.is_inline());
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v.back(), 30u);
}

TEST(SmallVec, SpillsToHeapPastNKeepingContents) {
  V v;
  for (std::uint32_t i = 0; i < 9; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 9u);
  for (std::uint32_t i = 0; i < 9; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVec, CopyIsDeep) {
  V a;
  for (std::uint32_t i = 0; i < 6; ++i) a.push_back(i);
  V b = a;
  b[0] = 99;
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(b.size(), a.size());
  V c;
  c.push_back(1);
  c = a;  // assignment over existing contents
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c[5], 5u);
}

TEST(SmallVec, MoveStealsHeapStorage) {
  V a;
  for (std::uint32_t i = 0; i < 8; ++i) a.push_back(i);
  const auto* p = a.data();
  V b = std::move(a);
  EXPECT_EQ(b.data(), p);  // heap cell transferred, not copied
  EXPECT_EQ(b.size(), 8u);
  EXPECT_TRUE(a.empty());  // NOLINT: post-move state is pinned
  EXPECT_TRUE(a.is_inline());
}

TEST(SmallVec, MoveOfInlineCopiesElements) {
  V a;
  a.push_back(7);
  V b = std::move(a);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 7u);
  EXPECT_TRUE(b.is_inline());
}

TEST(SmallVec, ClearKeepsCapacity) {
  V v;
  for (std::uint32_t i = 0; i < 8; ++i) v.push_back(i);
  const auto cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  v.push_back(5);
  EXPECT_EQ(v[0], 5u);
}

TEST(SmallVec, ReserveForcesCapacity) {
  V v;
  v.reserve(32);
  EXPECT_GE(v.capacity(), 32u);
  EXPECT_TRUE(v.empty());
}

TEST(SmallVec, EqualityIsByValue) {
  V a, b;
  for (std::uint32_t i = 0; i < 5; ++i) {
    a.push_back(i);
    b.push_back(i);
  }
  EXPECT_EQ(a, b);
  b.push_back(9);
  EXPECT_FALSE(a == b);
}

TEST(SmallVec, RangeForIterates) {
  V v;
  for (std::uint32_t i = 1; i <= 5; ++i) v.push_back(i);
  std::uint32_t sum = 0;
  for (const auto x : v) sum += x;
  EXPECT_EQ(sum, 15u);
}

}  // namespace
}  // namespace nidkit::util
