#include "mining/relation.hpp"

#include <gtest/gtest.h>

namespace nidkit::mining {
namespace {

using namespace std::chrono_literals;

constexpr auto kSR = RelationDirection::kSendToRecv;
constexpr auto kRS = RelationDirection::kRecvToSend;

TEST(RelationSet, AddAndHas) {
  RelationSet set;
  set.add(kSR, {"LSU", "LSAck"}, SimTime{1s}, 10, 11);
  EXPECT_TRUE(set.has(kSR, "LSU", "LSAck"));
  EXPECT_FALSE(set.has(kRS, "LSU", "LSAck"));  // directions are distinct
  EXPECT_FALSE(set.has(kSR, "LSAck", "LSU"));  // cells are ordered pairs
}

TEST(RelationSet, CountsAccumulate) {
  RelationSet set;
  set.add(kSR, {"A", "B"}, SimTime{1s}, 0, 1);
  set.add(kSR, {"A", "B"}, SimTime{2s}, 2, 3);
  const auto* stats = set.find(kSR, {"A", "B"});
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 2u);
}

TEST(RelationSet, EarliestExampleKept) {
  RelationSet set;
  set.add(kSR, {"A", "B"}, SimTime{5s}, 50, 51);
  set.add(kSR, {"A", "B"}, SimTime{2s}, 20, 21);
  set.add(kSR, {"A", "B"}, SimTime{9s}, 90, 91);
  const auto* stats = set.find(kSR, {"A", "B"});
  EXPECT_EQ(stats->first_seen, SimTime{2s});
  EXPECT_EQ(stats->example_stimulus, 20u);
  EXPECT_EQ(stats->example_response, 21u);
}

TEST(RelationSet, SizeCountsBothDirections) {
  RelationSet set;
  set.add(kSR, {"A", "B"}, SimTime{0s}, 0, 0);
  set.add(kSR, {"A", "C"}, SimTime{0s}, 0, 0);
  set.add(kRS, {"A", "B"}, SimTime{0s}, 0, 0);
  EXPECT_EQ(set.size(), 3u);
}

TEST(RelationSet, MergeUnionsAndAccumulates) {
  RelationSet a, b;
  a.add(kSR, {"X", "Y"}, SimTime{3s}, 30, 31);
  b.add(kSR, {"X", "Y"}, SimTime{1s}, 10, 11);
  b.add(kRS, {"P", "Q"}, SimTime{2s}, 20, 21);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  const auto* xy = a.find(kSR, {"X", "Y"});
  EXPECT_EQ(xy->count, 2u);
  EXPECT_EQ(xy->first_seen, SimTime{1s});  // merge keeps the earlier example
  EXPECT_EQ(xy->example_stimulus, 10u);
  EXPECT_TRUE(a.has(kRS, "P", "Q"));
}

TEST(RelationSet, MergeWithEmptyIsIdentity) {
  RelationSet a, empty;
  a.add(kSR, {"X", "Y"}, SimTime{3s}, 0, 0);
  a.merge(empty);
  EXPECT_EQ(a.size(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.size(), 1u);
}

TEST(RelationSet, LabelUniverses) {
  RelationSet set;
  set.add(kSR, {"A", "B"}, SimTime{0s}, 0, 0);
  set.add(kRS, {"C", "D"}, SimTime{0s}, 0, 0);
  const auto stims = set.stimulus_labels();
  const auto resps = set.response_labels();
  EXPECT_TRUE(stims.count("A"));
  EXPECT_TRUE(stims.count("C"));
  EXPECT_TRUE(resps.count("B"));
  EXPECT_TRUE(resps.count("D"));
  EXPECT_FALSE(stims.count("B"));
}

TEST(RelationSet, FindMissingReturnsNull) {
  RelationSet set;
  EXPECT_EQ(set.find(kSR, {"no", "pe"}), nullptr);
}

TEST(ResponseProfile, GroupsByStimulusWithFractions) {
  RelationSet set;
  for (int i = 0; i < 6; ++i) set.add(kSR, {"LSU", "LSAck"}, SimTime{0s}, 0, 0);
  for (int i = 0; i < 3; ++i) set.add(kSR, {"LSU", "LSU"}, SimTime{0s}, 0, 0);
  set.add(kSR, {"LSU", "Hello"}, SimTime{0s}, 0, 0);
  set.add(kSR, {"Hello", "Hello"}, SimTime{0s}, 0, 0);

  const auto profile = response_profile(set, kSR);
  ASSERT_EQ(profile.by_stimulus.size(), 2u);
  const auto& lsu = profile.by_stimulus.at("LSU");
  ASSERT_EQ(lsu.size(), 3u);
  EXPECT_EQ(lsu[0].label, "LSAck");  // most frequent first
  EXPECT_EQ(lsu[0].count, 6u);
  EXPECT_DOUBLE_EQ(lsu[0].fraction, 0.6);
  EXPECT_EQ(lsu[1].label, "LSU");
  EXPECT_DOUBLE_EQ(lsu[1].fraction, 0.3);
  EXPECT_EQ(lsu[2].label, "Hello");
  EXPECT_DOUBLE_EQ(lsu[2].fraction, 0.1);
}

TEST(ResponseProfile, DirectionsAreIndependent) {
  RelationSet set;
  set.add(kSR, {"A", "B"}, SimTime{0s}, 0, 0);
  set.add(kRS, {"C", "D"}, SimTime{0s}, 0, 0);
  EXPECT_EQ(response_profile(set, kSR).by_stimulus.count("C"), 0u);
  EXPECT_EQ(response_profile(set, kRS).by_stimulus.count("A"), 0u);
}

TEST(ResponseProfile, EmptySetYieldsEmptyProfile) {
  RelationSet set;
  EXPECT_TRUE(response_profile(set, kSR).by_stimulus.empty());
}

TEST(RelationCell, OrderingIsLexicographic) {
  EXPECT_LT((RelationCell{"A", "B"}), (RelationCell{"A", "C"}));
  EXPECT_LT((RelationCell{"A", "Z"}), (RelationCell{"B", "A"}));
}

}  // namespace
}  // namespace nidkit::mining
