// Causal-miner unit tests over hand-built traces with exact timings —
// the paper's attribution rule, pinned cell by cell.
#include "mining/miner.hpp"

#include <gtest/gtest.h>

namespace nidkit::mining {
namespace {

using namespace std::chrono_literals;
using netsim::Direction;

constexpr auto kSR = RelationDirection::kSendToRecv;
constexpr auto kRS = RelationDirection::kRecvToSend;

/// Builder for synthetic traces: add(node, dir, time, ospf type, ...).
struct TraceBuilder {
  trace::TraceLog log;
  std::uint64_t next_id = 1;

  std::uint64_t add(netsim::NodeId node, Direction dir, SimTime t,
                    std::uint8_t pkt_type, std::uint64_t caused_by = 0) {
    const std::uint64_t id = next_id++;
    trace::PacketRecord r;
    r.node = node;
    r.direction = dir;
    r.time = t;
    r.frame_id = id;
    r.caused_by = caused_by;
    trace::OspfDigest d;
    d.pkt_type = pkt_type;
    r.digest = d;
    log.append(std::move(r));
    return id;
  }
};

MinerConfig config_900ms() {
  MinerConfig cfg;
  cfg.tdelay = 900ms;
  cfg.window_factor = 2.0;
  cfg.horizon = 5s;
  return cfg;
}

TEST(Miner, FirstRecvPastThresholdAttributed) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);    // Snd Hello @ 0
  tb.add(0, Direction::kRecv, SimTime{1s}, 2);    // too early (< 1.8 s)
  tb.add(0, Direction::kRecv, SimTime{2s}, 4);    // first past threshold
  tb.add(0, Direction::kRecv, SimTime{3s}, 5);    // later: ignored
  CausalMiner miner(config_900ms());
  const auto set = miner.mine(tb.log, ospf_type_scheme());
  EXPECT_TRUE(set.has(kSR, "Hello", "LSU"));
  EXPECT_FALSE(set.has(kSR, "Hello", "DBD"));
  EXPECT_FALSE(set.has(kSR, "Hello", "LSAck"));
}

TEST(Miner, ThresholdIsInclusive) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(0, Direction::kRecv, SimTime{1800ms}, 4);  // exactly 2*TDelay
  CausalMiner miner(config_900ms());
  const auto set = miner.mine(tb.log, ospf_type_scheme());
  EXPECT_TRUE(set.has(kSR, "Hello", "LSU"));
}

TEST(Miner, HorizonExcludesLateResponses) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(0, Direction::kRecv, SimTime{10s}, 4);  // past 1.8 s + 5 s horizon
  CausalMiner miner(config_900ms());
  const auto set = miner.mine(tb.log, ospf_type_scheme());
  EXPECT_EQ(set.size(), 0u);
}

TEST(Miner, ZeroHorizonDisablesTheCap) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(0, Direction::kRecv, SimTime{100s}, 4);
  auto cfg = config_900ms();
  cfg.horizon = SimDuration{0};
  CausalMiner miner(cfg);
  EXPECT_TRUE(miner.mine(tb.log, ospf_type_scheme()).has(kSR, "Hello", "LSU"));
}

TEST(Miner, BothDirectionsMined) {
  TraceBuilder tb;
  tb.add(0, Direction::kRecv, SimTime{0s}, 3);   // Rcv LSR
  tb.add(0, Direction::kSend, SimTime{2s}, 4);   // Snd LSU
  tb.add(0, Direction::kRecv, SimTime{4s}, 5);   // Rcv LSAck
  CausalMiner miner(config_900ms());
  const auto set = miner.mine(tb.log, ospf_type_scheme());
  EXPECT_TRUE(set.has(kRS, "LSR", "LSU"));
  EXPECT_TRUE(set.has(kSR, "LSU", "LSAck"));
}

TEST(Miner, NodesAreIndependent) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(1, Direction::kRecv, SimTime{2s}, 4);  // different router!
  CausalMiner miner(config_900ms());
  EXPECT_EQ(miner.mine(tb.log, ospf_type_scheme()).size(), 0u);
}

TEST(Miner, OneResponseCanServeManyStimuli) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(0, Direction::kSend, SimTime{100ms}, 2);
  tb.add(0, Direction::kRecv, SimTime{3s}, 4);
  CausalMiner miner(config_900ms());
  const auto set = miner.mine(tb.log, ospf_type_scheme());
  EXPECT_TRUE(set.has(kSR, "Hello", "LSU"));
  EXPECT_TRUE(set.has(kSR, "DBD", "LSU"));
}

TEST(Miner, WindowFactorScalesThreshold) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(0, Direction::kRecv, SimTime{1s}, 4);  // 1 s after send
  auto cfg = config_900ms();
  cfg.window_factor = 1.0;  // threshold 0.9 s: the 1 s response matches
  EXPECT_TRUE(CausalMiner(cfg).mine(tb.log, ospf_type_scheme())
                  .has(kSR, "Hello", "LSU"));
  cfg.window_factor = 2.0;  // threshold 1.8 s: it does not
  EXPECT_FALSE(CausalMiner(cfg).mine(tb.log, ospf_type_scheme())
                   .has(kSR, "Hello", "LSU"));
}

TEST(Miner, EmptyTraceYieldsEmptySet) {
  trace::TraceLog log;
  CausalMiner miner(config_900ms());
  EXPECT_EQ(miner.mine(log, ospf_type_scheme()).size(), 0u);
  EXPECT_TRUE(miner.mine_pairs(log).send_to_recv.empty());
}

TEST(Miner, CountsAccumulateAcrossInstances) {
  TraceBuilder tb;
  for (int i = 0; i < 4; ++i) {
    const SimTime base{i * 20s};
    tb.add(0, Direction::kSend, base, 1);
    tb.add(0, Direction::kRecv, base + 2s, 1);
  }
  CausalMiner miner(config_900ms());
  const auto set = miner.mine(tb.log, ospf_type_scheme());
  const auto* stats = set.find(kSR, {"Hello", "Hello"});
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 4u);
  EXPECT_EQ(stats->first_seen, SimTime{0s});
}

TEST(Miner, MinePairsRecordsIndices) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(0, Direction::kRecv, SimTime{2s}, 4);
  CausalMiner miner(config_900ms());
  const auto pairs = miner.mine_pairs(tb.log);
  ASSERT_EQ(pairs.send_to_recv.size(), 1u);
  EXPECT_EQ(pairs.send_to_recv[0].stimulus_index, 0u);
  EXPECT_EQ(pairs.send_to_recv[0].response_index, 1u);
}

// ---- Ground truth extraction ----

TEST(TruePairs, RecvToSendFromProvenance) {
  TraceBuilder tb;
  const auto rx = tb.add(0, Direction::kRecv, SimTime{0s}, 3);
  tb.add(0, Direction::kSend, SimTime{50ms}, 4, rx);  // caused by the LSR
  const auto truth = true_pairs(tb.log);
  ASSERT_EQ(truth.recv_to_send.size(), 1u);
  EXPECT_EQ(truth.recv_to_send[0].stimulus_index, 0u);
  EXPECT_EQ(truth.recv_to_send[0].response_index, 1u);
  EXPECT_TRUE(truth.send_to_recv.empty());
}

TEST(TruePairs, SendToRecvWhenPeerResponds) {
  TraceBuilder tb;
  // Node 0 sends frame F; node 1 receives it; node 1 responds with a frame
  // caused by F; node 0 receives the response.
  const auto f = tb.add(0, Direction::kSend, SimTime{0s}, 3);
  tb.add(1, Direction::kRecv, SimTime{900ms}, 3);  // same frame id? no: new
  // The response frame (new id, caused_by=f) observed at both ends:
  tb.add(1, Direction::kSend, SimTime{950ms}, 4, f);
  tb.add(0, Direction::kRecv, SimTime{1850ms}, 4, f);
  const auto truth = true_pairs(tb.log);
  ASSERT_EQ(truth.send_to_recv.size(), 1u);
  EXPECT_EQ(truth.send_to_recv[0].stimulus_index, 0u);
  EXPECT_EQ(truth.send_to_recv[0].response_index, 3u);
}

TEST(TruePairs, SpontaneousTrafficHasNoPairs) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(0, Direction::kRecv, SimTime{2s}, 1);
  const auto truth = true_pairs(tb.log);
  EXPECT_TRUE(truth.send_to_recv.empty());
  EXPECT_TRUE(truth.recv_to_send.empty());
}

TEST(ScorePairs, PerfectAttributionScoresOne) {
  TraceBuilder tb;
  const auto rx = tb.add(0, Direction::kRecv, SimTime{0s}, 3);
  tb.add(0, Direction::kSend, SimTime{2s}, 4, rx);
  CausalMiner miner(config_900ms());
  const auto acc = score_pairs(tb.log, miner.mine_pairs(tb.log));
  EXPECT_EQ(acc.mined, 1u);
  EXPECT_EQ(acc.truth, 1u);
  EXPECT_EQ(acc.correct, 1u);
  EXPECT_DOUBLE_EQ(acc.precision(), 1.0);
  EXPECT_DOUBLE_EQ(acc.recall(), 1.0);
}

TEST(ScorePairs, MisattributionLowersPrecision) {
  TraceBuilder tb;
  const auto rx = tb.add(0, Direction::kRecv, SimTime{0s}, 3);
  // The true response arrives *before* the threshold (1 s < 1.8 s)...
  tb.add(0, Direction::kSend, SimTime{1s}, 4, rx);
  // ...and an unrelated timer-driven send lands inside the window.
  tb.add(0, Direction::kSend, SimTime{2s}, 1, 0);
  CausalMiner miner(config_900ms());
  const auto acc = score_pairs(tb.log, miner.mine_pairs(tb.log));
  EXPECT_EQ(acc.correct, 0u);
  EXPECT_GT(acc.mined, 0u);
  EXPECT_LT(acc.precision(), 1.0);
  EXPECT_LT(acc.recall(), 1.0);
}

TEST(ScoreCells, UnobservedAndSpuriousCounted) {
  TraceBuilder tb;
  const auto rx = tb.add(0, Direction::kRecv, SimTime{0s}, 3);
  tb.add(0, Direction::kSend, SimTime{1s}, 4, rx);   // true: LSR->LSU (missed)
  tb.add(0, Direction::kSend, SimTime{2s}, 1, 0);    // mined: LSR->Hello (spurious)
  CausalMiner miner(config_900ms());
  const auto scheme = ospf_type_scheme();
  const auto mined = miner.mine(tb.log, scheme);
  const auto acc = score_cells(tb.log, mined, scheme);
  EXPECT_EQ(acc.true_cells, 1u);
  EXPECT_EQ(acc.unobserved, 1u);
  EXPECT_EQ(acc.spurious, 1u);
}

TEST(ScoreCells, PerfectWhenAttributionMatches) {
  TraceBuilder tb;
  const auto rx = tb.add(0, Direction::kRecv, SimTime{0s}, 3);
  tb.add(0, Direction::kSend, SimTime{2s}, 4, rx);
  CausalMiner miner(config_900ms());
  const auto scheme = ospf_type_scheme();
  const auto acc = score_cells(tb.log, miner.mine(tb.log, scheme), scheme);
  EXPECT_EQ(acc.unobserved, 0u);
  EXPECT_EQ(acc.spurious, 0u);
  EXPECT_EQ(acc.mined_cells, acc.true_cells);
}

TEST(Miner, ClassifyReusesPairs) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 4);
  tb.add(0, Direction::kRecv, SimTime{2s}, 5);
  CausalMiner miner(config_900ms());
  const auto pairs = miner.mine_pairs(tb.log);
  const auto by_type = miner.classify(tb.log, pairs, ospf_type_scheme());
  EXPECT_TRUE(by_type.has(kSR, "LSU", "LSAck"));
  // The same pairs under the refined scheme yield nothing (no LSAs).
  const auto refined =
      miner.classify(tb.log, pairs, ospf_greater_lssn_scheme());
  EXPECT_EQ(refined.size(), 0u);
}

}  // namespace
}  // namespace nidkit::mining
