#include "mining/keying.hpp"

#include <gtest/gtest.h>

namespace nidkit::mining {
namespace {

trace::PacketRecord ospf_record(std::uint8_t pkt_type,
                                std::vector<trace::OspfDigest::LsaDigest> lsas = {},
                                int state = -1) {
  trace::PacketRecord r;
  trace::OspfDigest d;
  d.pkt_type = pkt_type;
  for (const auto& l : lsas) d.lsas.push_back(l);
  r.digest = d;
  r.observer_state = state;
  return r;
}

trace::OspfDigest::LsaDigest lsa(std::uint8_t type, std::uint32_t adv,
                                 std::int32_t seq) {
  trace::OspfDigest::LsaDigest l;
  l.lsa_type = type;
  l.link_state_id = Ipv4Addr{adv};
  l.advertising_router = RouterId{adv};
  l.seq = seq;
  return l;
}

trace::PacketRecord rip_record(std::uint8_t command, bool full,
                               std::uint32_t max_metric = 1) {
  trace::PacketRecord r;
  trace::RipDigest d;
  d.command = command;
  d.full_table_request = full;
  d.max_metric = max_metric;
  r.digest = d;
  return r;
}

TEST(TypeScheme, LabelsAllFiveTypes) {
  const auto s = ospf_type_scheme();
  EXPECT_EQ(*s.stimulus(ospf_record(1)), "Hello");
  EXPECT_EQ(*s.stimulus(ospf_record(2)), "DBD");
  EXPECT_EQ(*s.stimulus(ospf_record(3)), "LSR");
  EXPECT_EQ(*s.stimulus(ospf_record(4)), "LSU");
  EXPECT_EQ(*s.stimulus(ospf_record(5)), "LSAck");
}

TEST(TypeScheme, NonOspfExcluded) {
  const auto s = ospf_type_scheme();
  EXPECT_FALSE(s.stimulus(rip_record(2, false)).has_value());
  trace::PacketRecord junk;
  EXPECT_FALSE(s.stimulus(junk).has_value());
}

TEST(TypeScheme, ResponseIgnoresStimulus) {
  const auto s = ospf_type_scheme();
  EXPECT_EQ(*s.response(ospf_record(1), ospf_record(4)), "LSU");
}

TEST(GreaterLssnScheme, StimulusMustBeLsuOrLsackWithLsas) {
  const auto s = ospf_greater_lssn_scheme();
  EXPECT_FALSE(s.stimulus(ospf_record(1)).has_value());
  EXPECT_FALSE(s.stimulus(ospf_record(4)).has_value());  // no LSAs carried
  EXPECT_TRUE(s.stimulus(ospf_record(4, {lsa(1, 1, 100)})).has_value());
  EXPECT_TRUE(s.stimulus(ospf_record(5, {lsa(1, 1, 100)})).has_value());
}

TEST(GreaterLssnScheme, SameLsaGreaterSeqMatches) {
  const auto s = ospf_greater_lssn_scheme();
  const auto stim = ospf_record(4, {lsa(1, 1, 100)});
  const auto resp = ospf_record(5, {lsa(1, 1, 101)});
  const auto label = s.response(stim, resp);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(*label, "LSAck+gtSN");
}

TEST(GreaterLssnScheme, EqualSeqDoesNotMatch) {
  const auto s = ospf_greater_lssn_scheme();
  const auto stim = ospf_record(4, {lsa(1, 1, 100)});
  const auto resp = ospf_record(4, {lsa(1, 1, 100)});
  EXPECT_FALSE(s.response(stim, resp).has_value());
}

TEST(GreaterLssnScheme, DifferentLsaGreaterSeqDoesNotMatch) {
  // The refinement is per-LSA: a higher sequence number on an *unrelated*
  // LSA must not fire.
  const auto s = ospf_greater_lssn_scheme();
  const auto stim = ospf_record(4, {lsa(1, 1, 100)});
  const auto resp = ospf_record(4, {lsa(1, 2, 999)});
  EXPECT_FALSE(s.response(stim, resp).has_value());
}

TEST(GreaterLssnScheme, AnyMatchingLsaInBatchSuffices) {
  const auto s = ospf_greater_lssn_scheme();
  const auto stim = ospf_record(4, {lsa(1, 1, 100), lsa(1, 2, 50)});
  const auto resp = ospf_record(4, {lsa(1, 3, 1), lsa(1, 2, 51)});
  ASSERT_TRUE(s.response(stim, resp).has_value());
  EXPECT_EQ(*s.response(stim, resp), "LSU+gtSN");
}

TEST(GreaterLssnScheme, TypeDifferenceMeansDifferentLsa) {
  const auto s = ospf_greater_lssn_scheme();
  const auto stim = ospf_record(4, {lsa(1, 1, 100)});
  const auto resp = ospf_record(4, {lsa(5, 1, 101)});  // external, same id
  EXPECT_FALSE(s.response(stim, resp).has_value());
}

TEST(StateScheme, AppendsStateLabel) {
  const auto s = ospf_state_scheme();
  EXPECT_EQ(*s.stimulus(ospf_record(4, {}, 4)), "LSU@Exchange");
  EXPECT_EQ(*s.stimulus(ospf_record(1, {}, 6)), "Hello@Full");
  EXPECT_EQ(*s.stimulus(ospf_record(1, {}, -1)), "Hello@NoNbr");
}

TEST(LsaTypeScheme, ListsCarriedTypes) {
  const auto s = ospf_lsa_type_scheme();
  EXPECT_EQ(*s.stimulus(ospf_record(1)), "Hello");
  EXPECT_EQ(*s.stimulus(ospf_record(4, {lsa(1, 1, 1)})), "LSU[router]");
  EXPECT_EQ(*s.stimulus(ospf_record(4, {lsa(1, 1, 1), lsa(5, 2, 1)})),
            "LSU[router,external]");
}

trace::PacketRecord dbd_record(std::uint8_t flags) {
  trace::PacketRecord r;
  trace::OspfDigest d;
  d.pkt_type = 2;
  d.dbd_flags = flags;
  r.digest = d;
  return r;
}

TEST(DbdFlagsScheme, LabelsFlagCombinations) {
  const auto s = ospf_dbd_flags_scheme();
  EXPECT_EQ(*s.stimulus(dbd_record(0x07)), "DBD(I,M,MS)");
  EXPECT_EQ(*s.stimulus(dbd_record(0x01)), "DBD(MS)");
  EXPECT_EQ(*s.stimulus(dbd_record(0x03)), "DBD(M,MS)");
  EXPECT_EQ(*s.stimulus(dbd_record(0x00)), "DBD()");
}

TEST(DbdFlagsScheme, NonDbdPacketsKeepTypeLabels) {
  const auto s = ospf_dbd_flags_scheme();
  EXPECT_EQ(*s.stimulus(ospf_record(1)), "Hello");
  EXPECT_EQ(*s.stimulus(ospf_record(4)), "LSU");
  EXPECT_FALSE(s.stimulus(rip_record(2, false)).has_value());
}

trace::PacketRecord bgp_record(std::uint8_t type, std::uint32_t path_len = 0,
                               std::uint16_t nlri = 0,
                               std::uint16_t withdrawn = 0) {
  trace::PacketRecord r;
  trace::BgpDigest d;
  d.msg_type = type;
  d.as_path_len = path_len;
  d.nlri_count = nlri;
  d.withdrawn_count = withdrawn;
  r.digest = d;
  return r;
}

TEST(BgpScheme, MessageLabels) {
  const auto s = bgp_message_scheme();
  EXPECT_EQ(*s.stimulus(bgp_record(1)), "OPEN");
  EXPECT_EQ(*s.stimulus(bgp_record(4)), "KEEPALIVE");
  EXPECT_EQ(*s.stimulus(bgp_record(3)), "NOTIFICATION");
  EXPECT_EQ(*s.stimulus(bgp_record(2, 3, 1)), "UPDATE");
  EXPECT_EQ(*s.stimulus(bgp_record(2, 150, 1)), "UPDATE+longpath");
  EXPECT_EQ(*s.stimulus(bgp_record(2, 0, 0, 2)), "UPDATE+withdraw");
  EXPECT_FALSE(s.stimulus(ospf_record(1)).has_value());
}

TEST(BgpScheme, ThresholdIsConfigurable) {
  const auto strict = bgp_message_scheme(10);
  EXPECT_EQ(*strict.stimulus(bgp_record(2, 11, 1)), "UPDATE+longpath");
  const auto lax = bgp_message_scheme(1000);
  EXPECT_EQ(*lax.stimulus(bgp_record(2, 11, 1)), "UPDATE");
}

TEST(RipScheme, CommandLabels) {
  const auto s = rip_command_scheme();
  EXPECT_EQ(*s.stimulus(rip_record(1, true)), "Request(full)");
  EXPECT_EQ(*s.stimulus(rip_record(1, false)), "Request");
  EXPECT_EQ(*s.stimulus(rip_record(2, false)), "Response");
  EXPECT_FALSE(s.stimulus(ospf_record(1)).has_value());
}

TEST(RipRefinedScheme, PoisonDistinguished) {
  const auto s = rip_refined_scheme();
  EXPECT_EQ(*s.stimulus(rip_record(2, false, 3)), "Response");
  EXPECT_EQ(*s.stimulus(rip_record(2, false, 16)), "Response(poison)");
  // Requests are never "poison" even with metric 16 (the full-table form).
  EXPECT_EQ(*s.stimulus(rip_record(1, true, 16)), "Request(full)");
}

TEST(Labels, OspfTypeLabelFallback) {
  EXPECT_EQ(ospf_type_label(9), "OSPF?9");
}

}  // namespace
}  // namespace nidkit::mining
