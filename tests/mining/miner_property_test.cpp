// Algebraic properties the parallel executor leans on.
//
// The executor merges per-scenario relation sets in canonical order, and
// the serial loop nest merges them in the same order — but the *miner*
// must also be insensitive to how the trace log interleaves events that
// carry the same timestamp, and RelationSet::merge must be associative
// and commutative so any grouping of per-scenario sets yields the same
// union. These tests pin both properties, directly and via seeded-random
// instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mining/miner.hpp"
#include "util/rng.hpp"

namespace nidkit::mining {
namespace {

using namespace std::chrono_literals;
using netsim::Direction;

constexpr auto kSR = RelationDirection::kSendToRecv;
constexpr auto kRS = RelationDirection::kRecvToSend;

struct TraceBuilder {
  trace::TraceLog log;
  std::uint64_t next_id = 1;

  std::uint64_t add(netsim::NodeId node, Direction dir, SimTime t,
                    std::uint8_t pkt_type) {
    const std::uint64_t id = next_id++;
    trace::PacketRecord r;
    r.node = node;
    r.direction = dir;
    r.time = t;
    r.frame_id = id;
    trace::OspfDigest d;
    d.pkt_type = pkt_type;
    r.digest = d;
    log.append(std::move(r));
    return id;
  }
};

MinerConfig config_900ms() {
  MinerConfig cfg;
  cfg.tdelay = 900ms;
  cfg.window_factor = 2.0;
  cfg.horizon = 5s;
  return cfg;
}

/// Cells, counts and first_seen must match (example trace indices are
/// positions in the log, so they legitimately move when records swap).
void expect_same_observations(const RelationSet& a, const RelationSet& b) {
  for (const auto dir : {kSR, kRS}) {
    const auto& ca = a.cells(dir);
    const auto& cb = b.cells(dir);
    ASSERT_EQ(ca.size(), cb.size());
    for (const auto& [cell, stats] : ca) {
      const auto* other = b.find(dir, cell);
      ASSERT_NE(other, nullptr)
          << cell.stimulus << "->" << cell.response;
      EXPECT_EQ(stats.count, other->count)
          << cell.stimulus << "->" << cell.response;
      EXPECT_EQ(stats.first_seen, other->first_seen);
    }
  }
}

/// Full equality including the surviving example evidence.
void expect_identical(const RelationSet& a, const RelationSet& b) {
  for (const auto dir : {kSR, kRS}) {
    const auto& ca = a.cells(dir);
    const auto& cb = b.cells(dir);
    ASSERT_EQ(ca.size(), cb.size());
    for (const auto& [cell, stats] : ca) {
      const auto* other = b.find(dir, cell);
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(stats.count, other->count);
      EXPECT_EQ(stats.first_seen, other->first_seen);
      EXPECT_EQ(stats.example_stimulus, other->example_stimulus);
      EXPECT_EQ(stats.example_response, other->example_response);
    }
  }
}

// ------------------------------------------- tie-reordering invariance --

TEST(MinerProperty, CoArrivalsAreAllAttributed) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);   // Hello
  tb.add(0, Direction::kRecv, SimTime{2s}, 4);   // LSU  } same
  tb.add(0, Direction::kRecv, SimTime{2s}, 5);   // LSAck} timestamp
  const auto set = CausalMiner(config_900ms()).mine(tb.log, ospf_type_scheme());
  EXPECT_TRUE(set.has(kSR, "Hello", "LSU"));
  EXPECT_TRUE(set.has(kSR, "Hello", "LSAck"));
}

TEST(MinerProperty, TieReorderingDoesNotChangeTheRelationSet) {
  const auto build = [](bool swapped) {
    TraceBuilder tb;
    tb.add(0, Direction::kSend, SimTime{0s}, 1);
    if (swapped) {
      tb.add(0, Direction::kRecv, SimTime{2s}, 5);
      tb.add(0, Direction::kRecv, SimTime{2s}, 4);
    } else {
      tb.add(0, Direction::kRecv, SimTime{2s}, 4);
      tb.add(0, Direction::kRecv, SimTime{2s}, 5);
    }
    tb.add(0, Direction::kRecv, SimTime{3s}, 2);  // later: never attributed
    return std::move(tb.log);
  };
  CausalMiner miner(config_900ms());
  const auto a = miner.mine(build(false), ospf_type_scheme());
  const auto b = miner.mine(build(true), ospf_type_scheme());
  expect_same_observations(a, b);
  EXPECT_FALSE(a.has(kSR, "Hello", "DBD"));
}

TEST(MinerProperty, TiedSameKeyResponsesBothCount) {
  TraceBuilder tb;
  tb.add(0, Direction::kSend, SimTime{0s}, 1);
  tb.add(0, Direction::kRecv, SimTime{2s}, 4);
  tb.add(0, Direction::kRecv, SimTime{2s}, 4);
  const auto set = CausalMiner(config_900ms()).mine(tb.log, ospf_type_scheme());
  const auto* stats = set.find(kSR, RelationCell{"Hello", "LSU"});
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 2u);
}

TEST(MinerProperty, RandomTieShufflesAreInvariant) {
  Rng rng(0x71e0bde5);
  for (int round = 0; round < 20; ++round) {
    // A burst of sends followed by a co-arrival clump: every permutation
    // of the clump must mine identically.
    std::vector<std::uint8_t> clump;
    const std::size_t n = 2 + rng.uniform(3);
    for (std::size_t i = 0; i < n; ++i)
      clump.push_back(static_cast<std::uint8_t>(1 + rng.uniform(5)));

    const auto build = [&clump](const std::vector<std::size_t>& order) {
      TraceBuilder tb;
      tb.add(0, Direction::kSend, SimTime{0s}, 1);
      tb.add(0, Direction::kSend, SimTime{200ms}, 3);
      for (const auto idx : order)
        tb.add(0, Direction::kRecv, SimTime{2500ms}, clump[idx]);
      return std::move(tb.log);
    };

    std::vector<std::size_t> order(clump.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    CausalMiner miner(config_900ms());
    const auto reference = miner.mine(build(order), ospf_type_scheme());
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.uniform(i)]);
      expect_same_observations(reference,
                               miner.mine(build(order), ospf_type_scheme()));
    }
  }
}

// --------------------------------------------------- union as algebra --

RelationSet random_set(Rng& rng) {
  static const char* kLabels[] = {"Hello", "DBD", "LSR", "LSU", "LSAck"};
  RelationSet set;
  const std::size_t n = 1 + rng.uniform(10);
  for (std::size_t i = 0; i < n; ++i) {
    const auto dir = rng.chance(0.5) ? kSR : kRS;
    RelationCell cell{kLabels[rng.uniform(5)], kLabels[rng.uniform(5)]};
    set.add(dir, cell,
            SimTime{static_cast<std::int64_t>(rng.uniform(10'000'000))},
            rng.uniform(500), rng.uniform(500));
  }
  return set;
}

TEST(MinerProperty, MergeIsCommutative) {
  Rng rng(0xc0330712);
  for (int round = 0; round < 50; ++round) {
    const auto a = random_set(rng);
    const auto b = random_set(rng);
    auto ab = a;
    ab.merge(b);
    auto ba = b;
    ba.merge(a);
    expect_identical(ab, ba);
  }
}

TEST(MinerProperty, MergeIsAssociative) {
  Rng rng(0xa5500c17);
  for (int round = 0; round < 50; ++round) {
    const auto a = random_set(rng);
    const auto b = random_set(rng);
    const auto c = random_set(rng);
    auto left = a;   // (a ∪ b) ∪ c
    left.merge(b);
    left.merge(c);
    auto bc = b;     // a ∪ (b ∪ c)
    bc.merge(c);
    auto right = a;
    right.merge(bc);
    expect_identical(left, right);
  }
}

TEST(MinerProperty, MergeKeepsCanonicallyEarliestEvidence) {
  RelationSet a;
  a.add(kSR, {"Hello", "LSU"}, SimTime{5s}, 40, 41);
  RelationSet b;
  b.add(kSR, {"Hello", "LSU"}, SimTime{2s}, 90, 91);
  RelationSet ab = a;
  ab.merge(b);
  const auto* stats = ab.find(kSR, {"Hello", "LSU"});
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 2u);
  EXPECT_EQ(stats->first_seen, SimTime{2s});  // earlier time wins...
  EXPECT_EQ(stats->example_stimulus, 90u);    // ...with its own indices
  EXPECT_EQ(stats->example_response, 91u);
}

TEST(MinerProperty, MergeBreaksTimeTiesByIndices) {
  RelationSet a;
  a.add(kRS, {"LSR", "LSU"}, SimTime{3s}, 70, 71);
  RelationSet b;
  b.add(kRS, {"LSR", "LSU"}, SimTime{3s}, 20, 21);
  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  const auto* sab = ab.find(kRS, {"LSR", "LSU"});
  const auto* sba = ba.find(kRS, {"LSR", "LSU"});
  ASSERT_NE(sab, nullptr);
  ASSERT_NE(sba, nullptr);
  // Same winner regardless of merge direction: the lower index pair.
  EXPECT_EQ(sab->example_stimulus, 20u);
  EXPECT_EQ(sba->example_stimulus, 20u);
}

}  // namespace
}  // namespace nidkit::mining
