#include "mining/relation_codec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "mining/relation.hpp"

namespace nidkit::mining {
namespace {

using namespace std::chrono_literals;

constexpr auto kSR = RelationDirection::kSendToRecv;
constexpr auto kRS = RelationDirection::kRecvToSend;

bool sets_equal(const RelationSet& a, const RelationSet& b) {
  for (const auto dir : {kSR, kRS}) {
    const auto& ca = a.cells(dir);
    const auto& cb = b.cells(dir);
    if (ca.size() != cb.size()) return false;
    auto ib = cb.begin();
    for (const auto& [cell, stats] : ca) {
      if (cell != ib->first) return false;
      const auto& sb = ib->second;
      if (stats.count != sb.count || stats.first_seen != sb.first_seen ||
          stats.example_stimulus != sb.example_stimulus ||
          stats.example_response != sb.example_response)
        return false;
      ++ib;
    }
  }
  return true;
}

TEST(RelationCodec, EmptySetRoundTrips) {
  const RelationSet empty;
  const auto bytes = encode_relations(empty);
  const auto back = decode_relations(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 0u);
  EXPECT_EQ(encode_relations(*back), bytes);
}

TEST(RelationCodec, SingleCellRoundTripsExactly) {
  RelationSet set;
  set.add(kSR, {"LSU", "LSAck"}, SimTime{1500ms}, 42, 43);
  set.add(kSR, {"LSU", "LSAck"}, SimTime{3s}, 90, 91);  // count -> 2
  const auto bytes = encode_relations(set);
  const auto back = decode_relations(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(sets_equal(set, *back));
  const auto* stats = back->find(kSR, {"LSU", "LSAck"});
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 2u);
  EXPECT_EQ(stats->first_seen, SimTime{1500ms});
  EXPECT_EQ(stats->example_stimulus, 42u);
  EXPECT_EQ(stats->example_response, 43u);
}

TEST(RelationCodec, NegativeFirstSeenSurvives) {
  RelationSet set;
  RelationStats stats;
  stats.count = 1;
  stats.first_seen = SimTime{-1s};
  set.add_stats(kRS, {"A", "B"}, stats);
  const auto back = decode_relations(encode_relations(set));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->find(kRS, {"A", "B"})->first_seen, SimTime{-1s});
}

/// A pseudo-random set: both directions, colliding labels, large counts
/// and indices, tied first_seen values across distinct cells.
RelationSet random_set(std::uint64_t seed, int cells) {
  std::mt19937_64 rng(seed);
  const std::vector<std::string> labels = {
      "Hello", "DD", "LSR", "LSU", "LSAck", "LSU-stale", "", "x"};
  RelationSet set;
  for (int i = 0; i < cells; ++i) {
    const auto dir = (rng() % 2) ? kSR : kRS;
    RelationStats stats;
    stats.count = rng() % 1'000'000 + 1;
    stats.first_seen = SimTime{static_cast<std::int64_t>(rng() % 5) * 1000};
    stats.example_stimulus = rng();
    stats.example_response = rng();
    set.add_stats(dir,
                  {labels[rng() % labels.size()], labels[rng() % labels.size()]},
                  stats);
  }
  return set;
}

TEST(RelationCodec, EncodeDecodeEncodeIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto set = random_set(seed, 40);
    const auto bytes = encode_relations(set);
    const auto back = decode_relations(bytes);
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    EXPECT_TRUE(sets_equal(set, *back)) << "seed " << seed;
    // The canonical encoding is unique: re-encoding the decoded set must
    // reproduce the input bytes exactly.
    EXPECT_EQ(encode_relations(*back), bytes) << "seed " << seed;
  }
}

TEST(RelationCodec, MergeCommutesWithCodec) {
  // merge(decode(enc(a)), decode(enc(b))) == decode(enc(merge(a, b))):
  // replaying cached per-scenario sets and merging them is
  // indistinguishable from merging freshly mined sets.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto a = random_set(seed, 25);
    const auto b = random_set(seed + 1000, 25);

    auto merged_fresh = a;
    merged_fresh.merge(b);

    auto da = decode_relations(encode_relations(a));
    const auto db = decode_relations(encode_relations(b));
    ASSERT_TRUE(da && db);
    da->merge(*db);

    EXPECT_TRUE(sets_equal(merged_fresh, *da)) << "seed " << seed;
    EXPECT_EQ(encode_relations(merged_fresh), encode_relations(*da))
        << "seed " << seed;
  }
}

TEST(RelationCodec, TruncatedInputIsRejected) {
  RelationSet set;
  set.add(kSR, {"LSU", "LSAck"}, SimTime{1s}, 1, 2);
  const auto bytes = encode_relations(set);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode_relations(prefix).has_value()) << "cut " << cut;
  }
}

TEST(RelationCodec, TrailingGarbageIsRejected) {
  RelationSet set;
  set.add(kRS, {"A", "B"}, SimTime{1s}, 1, 2);
  auto bytes = encode_relations(set);
  bytes.push_back(0);
  EXPECT_FALSE(decode_relations(bytes).has_value());
}

TEST(RelationCodec, HugeLabelLengthDoesNotAllocate) {
  // A length prefix larger than the remaining input must fail cleanly
  // (no attempt to allocate the claimed size).
  ByteWriter out;
  out.u32(1);           // one send->recv cell
  out.u32(0xFFFFFFFF);  // absurd stimulus label length
  ByteReader in(out.view());
  EXPECT_FALSE(decode_relations(in).has_value());
  EXPECT_FALSE(in.ok());
}

}  // namespace
}  // namespace nidkit::mining
