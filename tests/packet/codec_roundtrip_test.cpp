// Cross-protocol codec property suite.
//
// For every message kind the toolkit can put on the wire — all five OSPF
// packet types (with all four LSA body families), RIP v1/v2, and the four
// BGP message types — seeded-random values must satisfy:
//
//   encode . decode . encode == encode        (wire image is a fixpoint)
//
// and decoding truncated or corrupted buffers must return a clean Result
// error, never crash, and never fabricate a packet that fails to
// re-encode. The parallel executor relies on the codec being a pure
// function; these properties are what "pure" means on the wire.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "packet/bgp_packet.hpp"
#include "packet/lsa.hpp"
#include "packet/ospf_packet.hpp"
#include "packet/rip_packet.hpp"
#include "util/rng.hpp"

namespace nidkit {
namespace {

constexpr int kRounds = 64;

Ipv4Addr random_addr(Rng& rng) {
  return Ipv4Addr{static_cast<std::uint32_t>(rng.next())};
}

// ---------------------------------------------------------------- OSPF --

ospf::Lsa random_lsa(Rng& rng) {
  using namespace ospf;
  Lsa lsa;
  lsa.header.age = static_cast<std::uint16_t>(rng.uniform(kMaxAgeSeconds));
  lsa.header.link_state_id = random_addr(rng);
  lsa.header.advertising_router = random_addr(rng);
  lsa.header.seq =
      kInitialSequenceNumber + static_cast<std::int32_t>(rng.uniform(1000));
  switch (rng.uniform(5)) {
    case 0: {
      lsa.header.type = LsaType::kRouter;
      RouterLsaBody b;
      b.flags = static_cast<std::uint8_t>(rng.uniform(8));
      const std::size_t links = rng.uniform(4);
      for (std::size_t i = 0; i < links; ++i) {
        RouterLink link;
        link.link_id = random_addr(rng);
        link.link_data = random_addr(rng);
        link.type = static_cast<RouterLinkType>(1 + rng.uniform(4));
        link.metric = static_cast<std::uint16_t>(1 + rng.uniform(100));
        b.links.push_back(link);
      }
      lsa.body = std::move(b);
      break;
    }
    case 1: {
      lsa.header.type = LsaType::kNetwork;
      NetworkLsaBody b;
      b.network_mask = Ipv4Addr{255, 255, 255, 0};
      const std::size_t n = rng.uniform(4);
      for (std::size_t i = 0; i < n; ++i)
        b.attached_routers.push_back(random_addr(rng));
      lsa.body = std::move(b);
      break;
    }
    case 2:
    case 3: {
      lsa.header.type =
          rng.chance(0.5) ? LsaType::kSummaryNet : LsaType::kSummaryAsbr;
      SummaryLsaBody b;
      b.network_mask = Ipv4Addr{255, 255, 0, 0};
      b.metric = static_cast<std::uint32_t>(rng.uniform(1u << 24));
      lsa.body = b;
      break;
    }
    default: {
      lsa.header.type = LsaType::kExternal;
      ExternalLsaBody b;
      b.network_mask = Ipv4Addr{255, 255, 255, 0};
      b.type2 = rng.chance(0.5);
      b.metric = static_cast<std::uint32_t>(1 + rng.uniform(1u << 20));
      b.forwarding_address = random_addr(rng);
      b.external_route_tag = static_cast<std::uint32_t>(rng.next());
      lsa.body = std::move(b);
      break;
    }
  }
  lsa.finalize();
  return lsa;
}

ospf::PacketBody random_ospf_body(Rng& rng, int kind) {
  using namespace ospf;
  switch (kind) {
    case 0: {
      HelloBody h;
      h.network_mask = Ipv4Addr{255, 255, 255, 0};
      h.hello_interval = static_cast<std::uint16_t>(1 + rng.uniform(60));
      h.router_priority = static_cast<std::uint8_t>(rng.uniform(256));
      h.dead_interval = static_cast<std::uint32_t>(4 + rng.uniform(240));
      h.designated_router = random_addr(rng);
      h.backup_designated_router = random_addr(rng);
      const std::size_t n = rng.uniform(6);
      for (std::size_t i = 0; i < n; ++i)
        h.neighbors.push_back(random_addr(rng));
      return h;
    }
    case 1: {
      DbdBody d;
      d.interface_mtu = static_cast<std::uint16_t>(576 + rng.uniform(9000));
      d.flags = static_cast<std::uint8_t>(
          rng.uniform(8));  // any combination of I/M/MS
      d.dd_sequence = static_cast<std::uint32_t>(rng.next());
      const std::size_t n = rng.uniform(4);
      for (std::size_t i = 0; i < n; ++i)
        d.lsa_headers.push_back(random_lsa(rng).header);
      return d;
    }
    case 2: {
      LsRequestBody b;
      const std::size_t n = rng.uniform(5);
      for (std::size_t i = 0; i < n; ++i) {
        const auto h = random_lsa(rng).header;
        b.requests.push_back(
            LsRequestEntry{h.type, h.link_state_id, h.advertising_router});
      }
      return b;
    }
    case 3: {
      LsUpdateBody b;
      const std::size_t n = 1 + rng.uniform(3);
      for (std::size_t i = 0; i < n; ++i) b.lsas.push_back(random_lsa(rng));
      return b;
    }
    default: {
      LsAckBody b;
      const std::size_t n = rng.uniform(5);
      for (std::size_t i = 0; i < n; ++i)
        b.lsa_headers.push_back(random_lsa(rng).header);
      return b;
    }
  }
}

/// All five OSPF packet kinds: encode∘decode∘encode must be the identity
/// on the wire image, and the decoded body must equal the original.
TEST(CodecRoundTrip, OspfAllKindsByteIdentical) {
  using namespace ospf;
  Rng rng(0x05921701);
  for (int round = 0; round < kRounds; ++round) {
    for (int kind = 0; kind < 5; ++kind) {
      const auto body = random_ospf_body(rng, kind);
      const auto pkt =
          make_packet(random_addr(rng), kBackboneArea, body);
      const auto wire1 = encode(pkt);
      auto decoded = decode(wire1);
      ASSERT_TRUE(decoded.ok())
          << "kind " << kind << ": " << decoded.error();
      EXPECT_EQ(decoded.value().body, body) << "kind " << kind;
      const auto wire2 = encode(decoded.value());
      ASSERT_EQ(wire1, wire2) << "kind " << kind << " round " << round;
    }
  }
}

/// Simple-password authentication (AuType 1) carries the password bytes
/// through the round trip.
TEST(CodecRoundTrip, OspfSimplePasswordPreserved) {
  using namespace ospf;
  Rng rng(0x0b5e55ed);
  for (int round = 0; round < kRounds; ++round) {
    auto pkt = make_packet(random_addr(rng), kBackboneArea,
                           random_ospf_body(rng, round % 5));
    pkt.header.au_type = 1;
    for (auto& b : pkt.header.auth)
      b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto wire1 = encode(pkt);
    auto decoded = decode(wire1);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value().header.auth, pkt.header.auth);
    EXPECT_EQ(encode(decoded.value()), wire1);
  }
}

/// Truncating an OSPF packet at any byte must yield a clean error (the
/// length field no longer matches) — never a crash, never a bogus packet.
TEST(CodecRoundTrip, OspfTruncationAlwaysCleanError) {
  using namespace ospf;
  Rng rng(0x7241c473);
  for (int round = 0; round < kRounds; ++round) {
    const auto wire = encode(make_packet(random_addr(rng), kBackboneArea,
                                         random_ospf_body(rng, round % 5)));
    const std::size_t cut = rng.uniform(wire.size());
    auto out = decode({wire.data(), cut});
    EXPECT_FALSE(out.ok()) << "truncated to " << cut << " of " << wire.size();
    EXPECT_FALSE(out.error().empty());
  }
}

/// Flipping a random bit must either be caught (checksum / structure) or
/// still produce a packet that re-encodes to the corrupted image.
TEST(CodecRoundTrip, OspfBitflipNeverCrashes) {
  using namespace ospf;
  Rng rng(0xf11bbed5);
  for (int round = 0; round < kRounds * 4; ++round) {
    auto wire = encode(make_packet(random_addr(rng), kBackboneArea,
                                   random_ospf_body(rng, round % 5)));
    wire[rng.uniform(wire.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    auto out = decode(wire);
    if (out.ok() && out.value().header.au_type != 2) {
      EXPECT_EQ(encode(out.value()), wire);
    } else if (!out.ok()) {
      EXPECT_FALSE(out.error().empty());
    }
  }
}

// ----------------------------------------------------------------- RIP --

rip::RipPacket random_rip(Rng& rng, std::uint8_t version) {
  rip::RipPacket pkt;
  pkt.command =
      rng.chance(0.5) ? rip::Command::kRequest : rip::Command::kResponse;
  pkt.version = version;
  const std::size_t n = rng.uniform(26);  // RFC cap is 25
  for (std::size_t i = 0; i < n; ++i) {
    rip::RipEntry e;
    e.prefix = random_addr(rng);
    e.metric = static_cast<std::uint32_t>(1 + rng.uniform(16));
    if (version == 2) {
      e.route_tag = static_cast<std::uint16_t>(rng.uniform(65536));
      e.mask = Ipv4Addr{255, 255, 255, 0};
      e.next_hop = random_addr(rng);
    }  // v1 entries carry no tag/mask/next hop; leave them zero
    pkt.entries.push_back(e);
  }
  return pkt;
}

TEST(CodecRoundTrip, RipV2ByteIdentical) {
  Rng rng(0x12b21776);
  for (int round = 0; round < kRounds; ++round) {
    const auto pkt = random_rip(rng, 2);
    const auto wire1 = rip::encode(pkt);
    auto decoded = rip::decode(wire1);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value(), pkt);
    EXPECT_EQ(rip::encode(decoded.value()), wire1);
  }
}

TEST(CodecRoundTrip, RipV1ByteIdentical) {
  Rng rng(0x12b11776);
  for (int round = 0; round < kRounds; ++round) {
    const auto pkt = random_rip(rng, 1);
    const auto wire1 = rip::encode(pkt);
    auto decoded = rip::decode(wire1);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    // v1 zeroes mask/next hop/tag on the wire; our generator left them
    // zero, so the struct round-trips exactly too.
    EXPECT_EQ(decoded.value(), pkt);
    EXPECT_EQ(rip::encode(decoded.value()), wire1);
  }
}

TEST(CodecRoundTrip, RipFullTableRequestRoundTrips) {
  const auto pkt = rip::make_full_table_request();
  auto decoded = rip::decode(rip::encode(pkt));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(decoded.value().is_full_table_request());
}

/// RIP's wire format is self-framing at 20-byte entry boundaries: a
/// truncation at a boundary parses as a valid shorter packet and must
/// re-encode to exactly the truncated image; any other cut is an error.
TEST(CodecRoundTrip, RipTruncationBoundaryBehaviour) {
  Rng rng(0xa11c0de5);
  for (int round = 0; round < kRounds; ++round) {
    auto pkt = random_rip(rng, 2);
    while (pkt.entries.size() < 3) pkt.entries.push_back(rip::RipEntry{});
    const auto wire = rip::encode(pkt);
    const std::size_t cut = rng.uniform(wire.size());
    auto out = rip::decode({wire.data(), cut});
    if (cut >= 4 && (cut - 4) % 20 == 0) {
      ASSERT_TRUE(out.ok()) << "cut " << cut << ": " << out.error();
      EXPECT_EQ(out.value().entries.size(), (cut - 4) / 20);
      EXPECT_EQ(rip::encode(out.value()),
                std::vector<std::uint8_t>(wire.begin(), wire.begin() + cut));
    } else {
      EXPECT_FALSE(out.ok()) << "cut " << cut << " should be ragged";
      EXPECT_FALSE(out.error().empty());
    }
  }
}

TEST(CodecRoundTrip, RipCorruptedFieldsRejected) {
  Rng rng(1);
  auto wire = rip::encode(random_rip(rng, 2));
  wire[0] = 9;  // bad command
  EXPECT_FALSE(rip::decode(wire).ok());
  wire[0] = 2;
  wire[1] = 3;  // unsupported version
  EXPECT_FALSE(rip::decode(wire).ok());
  EXPECT_FALSE(rip::decode({wire.data(), 2}).ok());  // shorter than header
}

// ----------------------------------------------------------------- BGP --

bgp::Prefix random_prefix(Rng& rng) {
  bgp::Prefix p;
  p.length = static_cast<std::uint8_t>(rng.uniform(33));
  // Mask to the prefix length: bits beyond it are not carried on the wire.
  const std::uint32_t raw = static_cast<std::uint32_t>(rng.next());
  p.network = Ipv4Addr{
      p.length == 0 ? 0 : raw & ~((p.length == 32) ? 0u : (~0u >> p.length))};
  return p;
}

bgp::BgpMessage random_bgp(Rng& rng, int kind) {
  using namespace bgp;
  BgpMessage msg;
  switch (kind) {
    case 0: {
      OpenMessage m;
      m.my_as = static_cast<std::uint16_t>(1 + rng.uniform(65000));
      m.hold_time = static_cast<std::uint16_t>(rng.uniform(300));
      m.bgp_identifier = random_addr(rng);
      msg.body = m;
      break;
    }
    case 1: {
      UpdateMessage m;
      const std::size_t withdrawn = rng.uniform(4);
      for (std::size_t i = 0; i < withdrawn; ++i)
        m.withdrawn.push_back(random_prefix(rng));
      const std::size_t nlri = rng.uniform(4);
      if (nlri > 0) {
        for (std::size_t i = 0; i < nlri; ++i)
          m.nlri.push_back(random_prefix(rng));
        const std::size_t hops = 1 + rng.uniform(8);
        for (std::size_t i = 0; i < hops; ++i)
          m.as_path.push_back(
              static_cast<std::uint16_t>(1 + rng.uniform(65000)));
        m.next_hop = random_addr(rng);
        m.origin = static_cast<std::uint8_t>(rng.uniform(3));
      }
      msg.body = std::move(m);
      break;
    }
    case 2: {
      NotificationMessage m;
      m.error_code = static_cast<std::uint8_t>(1 + rng.uniform(6));
      m.error_subcode = static_cast<std::uint8_t>(rng.uniform(12));
      const std::size_t n = rng.uniform(16);
      for (std::size_t i = 0; i < n; ++i)
        m.data.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      msg.body = std::move(m);
      break;
    }
    default:
      msg.body = KeepaliveMessage{};
      break;
  }
  return msg;
}

TEST(CodecRoundTrip, BgpAllKindsByteIdentical) {
  Rng rng(0xb9b41271);
  for (int round = 0; round < kRounds; ++round) {
    for (int kind = 0; kind < 4; ++kind) {
      const auto msg = random_bgp(rng, kind);
      const auto wire1 = bgp::encode(msg);
      auto decoded = bgp::decode(wire1);
      ASSERT_TRUE(decoded.ok()) << "kind " << kind << ": " << decoded.error();
      EXPECT_EQ(decoded.value().body, msg.body) << "kind " << kind;
      EXPECT_EQ(bgp::encode(decoded.value()), wire1) << "kind " << kind;
    }
  }
}

/// AS paths longer than 255 hops must split into multiple AS_SEQUENCE
/// segments on the wire and rejoin on decode — the exact boundary behind
/// the 2009 incident the bgp module models.
TEST(CodecRoundTrip, BgpLongAsPathCrossesSegmentSplit) {
  Rng rng(0x2009b9b4);
  for (const std::size_t hops : {254u, 255u, 256u, 300u, 511u, 600u}) {
    bgp::UpdateMessage m;
    for (std::size_t i = 0; i < hops; ++i)
      m.as_path.push_back(static_cast<std::uint16_t>(1 + rng.uniform(65000)));
    m.next_hop = Ipv4Addr{10, 0, 0, 1};
    m.nlri.push_back(bgp::Prefix{Ipv4Addr{192, 168, 0, 0}, 16});
    bgp::BgpMessage msg;
    msg.body = m;
    const auto wire1 = bgp::encode(msg);
    auto decoded = bgp::decode(wire1);
    ASSERT_TRUE(decoded.ok()) << hops << " hops: " << decoded.error();
    EXPECT_EQ(std::get<bgp::UpdateMessage>(decoded.value().body).as_path,
              m.as_path)
        << hops << " hops";
    EXPECT_EQ(bgp::encode(decoded.value()), wire1) << hops << " hops";
  }
}

TEST(CodecRoundTrip, BgpTruncationAlwaysCleanError) {
  Rng rng(0x7241b9b4);
  for (int round = 0; round < kRounds; ++round) {
    const auto wire = bgp::encode(random_bgp(rng, round % 4));
    const std::size_t cut = rng.uniform(wire.size());
    auto out = bgp::decode({wire.data(), cut});
    EXPECT_FALSE(out.ok()) << "truncated to " << cut << " of " << wire.size();
    EXPECT_FALSE(out.error().empty());
  }
}

TEST(CodecRoundTrip, BgpCorruptedHeaderRejected) {
  auto wire = bgp::encode(bgp::BgpMessage{});
  {
    auto bad = wire;
    bad[0] = 0x00;  // marker
    auto out = bgp::decode(bad);
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.error().find("marker"), std::string::npos);
  }
  {
    auto bad = wire;
    bad[18] = 9;  // message type
    EXPECT_FALSE(bgp::decode(bad).ok());
  }
  {
    auto bad = wire;
    bad.push_back(0);  // length field no longer matches
    EXPECT_FALSE(bgp::decode(bad).ok());
  }
  {
    bgp::BgpMessage open;
    open.body = bgp::OpenMessage{};
    auto bad = bgp::encode(open);
    bad[19] = 3;  // OPEN version
    EXPECT_FALSE(bgp::decode(bad).ok());
  }
}

/// Decoding arbitrary junk never crashes for any of the three protocols.
TEST(CodecRoundTrip, JunkDecodeIsTotalAcrossProtocols) {
  Rng rng(0xdeadf00d);
  for (int round = 0; round < kRounds * 4; ++round) {
    std::vector<std::uint8_t> junk(rng.uniform(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(256));
    (void)ospf::decode(junk);
    (void)rip::decode(junk);
    (void)bgp::decode(junk);
  }
}

}  // namespace
}  // namespace nidkit
