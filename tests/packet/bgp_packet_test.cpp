#include "packet/bgp_packet.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nidkit::bgp {
namespace {

BgpMessage round_trip(const BgpMessage& in) {
  const auto wire = encode(in);
  auto out = decode(wire);
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error());
  return std::move(out).take();
}

TEST(BgpCodec, OpenRoundTrips) {
  OpenMessage open;
  open.my_as = 65001;
  open.hold_time = 90;
  open.bgp_identifier = Ipv4Addr{1, 1, 1, 1};
  BgpMessage msg;
  msg.body = open;
  const auto out = round_trip(msg);
  EXPECT_EQ(out.type(), MessageType::kOpen);
  EXPECT_EQ(std::get<OpenMessage>(out.body), open);
}

TEST(BgpCodec, KeepaliveIsHeaderOnly) {
  BgpMessage msg;
  msg.body = KeepaliveMessage{};
  const auto wire = encode(msg);
  EXPECT_EQ(wire.size(), kHeaderSize);
  EXPECT_EQ(round_trip(msg).type(), MessageType::kKeepalive);
}

TEST(BgpCodec, NotificationRoundTrips) {
  NotificationMessage notif;
  notif.error_code = kErrorUpdateMessage;
  notif.error_subcode = kSubcodeMalformedAsPath;
  notif.data = {1, 2, 3};
  BgpMessage msg;
  msg.body = notif;
  const auto out = round_trip(msg);
  EXPECT_EQ(std::get<NotificationMessage>(out.body), notif);
}

TEST(BgpCodec, UpdateWithNlriRoundTrips) {
  UpdateMessage update;
  update.as_path = {65001, 65002, 65003};
  update.next_hop = Ipv4Addr{10, 0, 1, 1};
  update.nlri = {Prefix{Ipv4Addr{192, 168, 10, 0}, 24},
                 Prefix{Ipv4Addr{10, 20, 0, 0}, 16}};
  BgpMessage msg;
  msg.body = update;
  const auto out = round_trip(msg);
  EXPECT_EQ(std::get<UpdateMessage>(out.body), update);
}

TEST(BgpCodec, PureWithdrawalRoundTrips) {
  UpdateMessage update;
  update.withdrawn = {Prefix{Ipv4Addr{192, 168, 10, 0}, 24}};
  BgpMessage msg;
  msg.body = update;
  const auto out = round_trip(msg);
  const auto& body = std::get<UpdateMessage>(out.body);
  EXPECT_EQ(body.withdrawn, update.withdrawn);
  EXPECT_TRUE(body.nlri.empty());
  EXPECT_TRUE(body.as_path.empty());
}

TEST(BgpCodec, OddPrefixLengthsEncodeMinimally) {
  for (const std::uint8_t len : {0, 1, 8, 9, 17, 25, 32}) {
    UpdateMessage update;
    update.as_path = {65001};
    update.next_hop = Ipv4Addr{10, 0, 1, 1};
    const std::uint32_t mask =
        len == 0 ? 0 : (~std::uint32_t{0} << (32 - len));
    update.nlri = {Prefix{Ipv4Addr{0xc0a80a00u & mask}, len}};
    BgpMessage msg;
    msg.body = update;
    EXPECT_EQ(std::get<UpdateMessage>(round_trip(msg).body).nlri,
              update.nlri)
        << "prefix length " << int(len);
  }
}

TEST(BgpCodec, LongAsPathSplitsIntoSegments) {
  // 300 ASes exceed one AS_SEQUENCE segment (max 255) — the wire boundary
  // behind the 2009 incident. The codec must split and rejoin losslessly.
  UpdateMessage update;
  for (int i = 0; i < 300; ++i)
    update.as_path.push_back(static_cast<std::uint16_t>(64512 + (i % 100)));
  update.next_hop = Ipv4Addr{10, 0, 1, 1};
  update.nlri = {Prefix{Ipv4Addr{192, 168, 99, 0}, 24}};
  BgpMessage msg;
  msg.body = update;
  const auto out = round_trip(msg);
  EXPECT_EQ(std::get<UpdateMessage>(out.body).as_path, update.as_path);
}

TEST(BgpCodec, ExtendedLengthAttributeUsedForLongPaths) {
  // A path of 200 ASes => 400+ bytes of AS_PATH value: needs the extended
  // length attribute form.
  UpdateMessage update;
  update.as_path.assign(200, 65001);
  update.next_hop = Ipv4Addr{10, 0, 1, 1};
  update.nlri = {Prefix{Ipv4Addr{192, 168, 1, 0}, 24}};
  BgpMessage msg;
  msg.body = update;
  EXPECT_EQ(std::get<UpdateMessage>(round_trip(msg).body).as_path.size(),
            200u);
}

TEST(BgpCodec, AsPathExactly255StaysOneSegment) {
  UpdateMessage update;
  update.as_path.assign(255, 65001);
  update.next_hop = Ipv4Addr{10, 0, 1, 1};
  update.nlri = {Prefix{Ipv4Addr{192, 168, 1, 0}, 24}};
  BgpMessage msg;
  msg.body = update;
  const auto wire = encode(msg);
  // Count AS_SEQUENCE segment markers inside the AS_PATH attribute by
  // round-tripping: the path must be intact either way.
  auto out = decode(wire);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::get<UpdateMessage>(out.value().body).as_path.size(), 255u);
}

TEST(BgpCodec, AsPath256SplitsLosslessly) {
  UpdateMessage update;
  for (int i = 0; i < 256; ++i)
    update.as_path.push_back(static_cast<std::uint16_t>(64000 + i));
  update.next_hop = Ipv4Addr{10, 0, 1, 1};
  update.nlri = {Prefix{Ipv4Addr{192, 168, 2, 0}, 24}};
  BgpMessage msg;
  msg.body = update;
  auto out = decode(encode(msg));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::get<UpdateMessage>(out.value().body).as_path,
            update.as_path);
}

TEST(BgpCodec, CombinedWithdrawAndAnnounceRoundTrips) {
  UpdateMessage update;
  update.withdrawn = {Prefix{Ipv4Addr{10, 1, 0, 0}, 16}};
  update.as_path = {65001};
  update.next_hop = Ipv4Addr{10, 0, 1, 1};
  update.nlri = {Prefix{Ipv4Addr{10, 2, 0, 0}, 16}};
  BgpMessage msg;
  msg.body = update;
  auto out = decode(encode(msg));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::get<UpdateMessage>(out.value().body), update);
}

TEST(BgpCodec, BadMarkerRejected) {
  BgpMessage msg;
  msg.body = KeepaliveMessage{};
  auto wire = encode(msg);
  wire[3] = 0x00;
  EXPECT_FALSE(decode(wire).ok());
}

TEST(BgpCodec, LengthMismatchRejected) {
  BgpMessage msg;
  msg.body = KeepaliveMessage{};
  auto wire = encode(msg);
  wire.push_back(0);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(BgpCodec, BadTypeRejected) {
  BgpMessage msg;
  msg.body = KeepaliveMessage{};
  auto wire = encode(msg);
  wire[18] = 9;
  EXPECT_FALSE(decode(wire).ok());
}

TEST(BgpCodec, RuntRejected) {
  std::vector<std::uint8_t> wire(10, 0xff);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(BgpCodec, KeepaliveWithBodyRejected) {
  BgpMessage msg;
  msg.body = KeepaliveMessage{};
  auto wire = encode(msg);
  wire.push_back(0);
  wire[16] = 0;
  wire[17] = static_cast<std::uint8_t>(wire.size());
  EXPECT_FALSE(decode(wire).ok());
}

TEST(BgpCodec, NlriWithoutMandatoryAttributesRejected) {
  // Hand-craft an UPDATE carrying NLRI but no AS_PATH/NEXT_HOP.
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  w.u16(0);  // length patched below
  w.u8(2);   // UPDATE
  w.u16(0);  // no withdrawn
  w.u16(0);  // no attributes
  w.u8(24);  // NLRI: 192.168.1.0/24
  w.u8(192);
  w.u8(168);
  w.u8(1);
  w.patch_u16(16, static_cast<std::uint16_t>(w.size()));
  auto out = decode(w.view());
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().find("mandatory"), std::string::npos);
}

TEST(BgpCodec, PrefixLengthOver32Rejected) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  w.u16(0);
  w.u8(2);
  w.u16(2);   // withdrawn length: 2 bytes
  w.u8(33);   // invalid prefix length
  w.u8(0);
  w.u16(0);
  w.patch_u16(16, static_cast<std::uint16_t>(w.size()));
  EXPECT_FALSE(decode(w.view()).ok());
}

TEST(BgpCodec, FuzzDecodeIsTotal) {
  Rng rng(777);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.uniform(100));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(256));
    (void)decode(junk);  // must neither crash nor hang
  }
  // Also fuzz with a valid marker + length so the body decoders run.
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> wire(kHeaderSize + rng.uniform(60), 0);
    for (std::size_t k = 0; k < 16; ++k) wire[k] = 0xff;
    wire[16] = static_cast<std::uint8_t>(wire.size() >> 8);
    wire[17] = static_cast<std::uint8_t>(wire.size());
    wire[18] = static_cast<std::uint8_t>(1 + rng.uniform(4));
    for (std::size_t k = kHeaderSize; k < wire.size(); ++k)
      wire[k] = static_cast<std::uint8_t>(rng.uniform(256));
    (void)decode(wire);
  }
}

TEST(BgpCodec, SummaryMentionsPathLength) {
  UpdateMessage update;
  update.as_path.assign(42, 65001);
  update.next_hop = Ipv4Addr{10, 0, 1, 1};
  update.nlri = {Prefix{Ipv4Addr{192, 168, 1, 0}, 24}};
  BgpMessage msg;
  msg.body = update;
  EXPECT_NE(msg.summary().find("path_len=42"), std::string::npos);
}

}  // namespace
}  // namespace nidkit::bgp
