#include "packet/ospf_packet.hpp"

#include <gtest/gtest.h>

#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace nidkit::ospf {
namespace {

const RouterId kR1{1, 1, 1, 1};

Lsa simple_lsa(std::uint32_t adv, std::int32_t seq = kInitialSequenceNumber) {
  Lsa lsa;
  lsa.header.type = LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{adv};
  lsa.header.advertising_router = RouterId{adv};
  lsa.header.seq = seq;
  RouterLsaBody body;
  body.links.push_back(RouterLink{Ipv4Addr{10, 0, 0, 0},
                                  Ipv4Addr{255, 255, 255, 252},
                                  RouterLinkType::kStub, 1});
  lsa.body = std::move(body);
  lsa.finalize();
  return lsa;
}

OspfPacket round_trip(const OspfPacket& in) {
  const auto wire = encode(in);
  auto out = decode(wire);
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error());
  return std::move(out).take();
}

TEST(OspfCodec, HelloRoundTrips) {
  HelloBody h;
  h.network_mask = Ipv4Addr{255, 255, 255, 0};
  h.hello_interval = 10;
  h.router_priority = 5;
  h.dead_interval = 40;
  h.designated_router = Ipv4Addr{10, 0, 0, 1};
  h.backup_designated_router = Ipv4Addr{10, 0, 0, 2};
  h.neighbors = {RouterId{2, 2, 2, 2}, RouterId{3, 3, 3, 3}};
  const auto in = make_packet(kR1, kBackboneArea, h);
  const auto out = round_trip(in);
  EXPECT_EQ(out.header.type, PacketType::kHello);
  EXPECT_EQ(std::get<HelloBody>(out.body), h);
}

TEST(OspfCodec, EmptyNeighborHelloRoundTrips) {
  HelloBody h;
  const auto out = round_trip(make_packet(kR1, kBackboneArea, h));
  EXPECT_TRUE(std::get<HelloBody>(out.body).neighbors.empty());
}

TEST(OspfCodec, DbdRoundTrips) {
  DbdBody d;
  d.interface_mtu = 1500;
  d.flags = kDbdFlagInit | kDbdFlagMore | kDbdFlagMs;
  d.dd_sequence = 0x1234;
  d.lsa_headers.push_back(simple_lsa(0x01010101).header);
  d.lsa_headers.push_back(simple_lsa(0x02020202).header);
  const auto out = round_trip(make_packet(kR1, kBackboneArea, d));
  const auto& body = std::get<DbdBody>(out.body);
  EXPECT_EQ(body, d);
  EXPECT_TRUE(body.init());
  EXPECT_TRUE(body.more());
  EXPECT_TRUE(body.master());
}

TEST(OspfCodec, LsrRoundTrips) {
  LsRequestBody b;
  b.requests.push_back(LsRequestEntry{LsaType::kRouter, Ipv4Addr{1, 1, 1, 1},
                                      RouterId{1, 1, 1, 1}});
  b.requests.push_back(LsRequestEntry{LsaType::kExternal,
                                      Ipv4Addr{192, 168, 0, 0},
                                      RouterId{3, 3, 3, 3}});
  const auto out = round_trip(make_packet(kR1, kBackboneArea, b));
  EXPECT_EQ(std::get<LsRequestBody>(out.body), b);
}

TEST(OspfCodec, LsuRoundTrips) {
  LsUpdateBody b;
  b.lsas.push_back(simple_lsa(0x01010101, kInitialSequenceNumber + 3));
  b.lsas.push_back(simple_lsa(0x02020202));
  const auto out = round_trip(make_packet(kR1, kBackboneArea, b));
  EXPECT_EQ(std::get<LsUpdateBody>(out.body), b);
}

TEST(OspfCodec, LsAckRoundTrips) {
  LsAckBody b;
  b.lsa_headers.push_back(simple_lsa(0x01010101).header);
  const auto out = round_trip(make_packet(kR1, kBackboneArea, b));
  EXPECT_EQ(std::get<LsAckBody>(out.body), b);
}

TEST(OspfCodec, MakePacketSetsMatchingType) {
  EXPECT_EQ(make_packet(kR1, kBackboneArea, HelloBody{}).header.type,
            PacketType::kHello);
  EXPECT_EQ(make_packet(kR1, kBackboneArea, DbdBody{}).header.type,
            PacketType::kDbd);
  EXPECT_EQ(make_packet(kR1, kBackboneArea, LsRequestBody{}).header.type,
            PacketType::kLsRequest);
  EXPECT_EQ(make_packet(kR1, kBackboneArea, LsUpdateBody{}).header.type,
            PacketType::kLsUpdate);
  EXPECT_EQ(make_packet(kR1, kBackboneArea, LsAckBody{}).header.type,
            PacketType::kLsAck);
}

TEST(OspfCodec, LengthFieldMatchesWireSize) {
  const auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  const std::uint16_t length =
      (std::uint16_t{wire[2]} << 8) | std::uint16_t{wire[3]};
  EXPECT_EQ(length, wire.size());
}

TEST(OspfCodec, HeaderChecksumExcludesAuthField) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  // Corrupting the 8-byte authentication field (header bytes 16-23) must
  // NOT break the checksum (§D.4 excludes it).
  wire[20] ^= 0xff;
  EXPECT_TRUE(decode(wire).ok());
}

TEST(OspfCodec, CorruptedBodyRejected) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire[kOspfHeaderSize] ^= 0x01;  // first body byte (network mask)
  auto out = decode(wire);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().find("checksum"), std::string::npos);
}

TEST(OspfCodec, CorruptedHeaderRejected) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire[4] ^= 0x01;  // router id
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OspfCodec, TruncatedPacketRejected) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire.resize(wire.size() - 1);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OspfCodec, RuntPacketRejected) {
  const std::vector<std::uint8_t> wire(10, 0);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OspfCodec, BadVersionRejected) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire[0] = 3;
  // Repair the checksum so version is the only problem.
  wire[12] = wire[13] = 0;
  const auto csum = internet_checksum(wire);
  wire[12] = static_cast<std::uint8_t>(csum >> 8);
  wire[13] = static_cast<std::uint8_t>(csum);
  auto out = decode(wire);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().find("version"), std::string::npos);
}

TEST(OspfCodec, BadTypeRejected) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire[1] = 9;
  wire[12] = wire[13] = 0;
  const auto csum = internet_checksum(wire);
  wire[12] = static_cast<std::uint8_t>(csum >> 8);
  wire[13] = static_cast<std::uint8_t>(csum);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OspfCodec, SimplePasswordAuthAccepted) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire[15] = 1;  // AuType = simple password
  wire[12] = wire[13] = 0;
  const auto csum = internet_checksum(wire);
  wire[12] = static_cast<std::uint8_t>(csum >> 8);
  wire[13] = static_cast<std::uint8_t>(csum);
  auto out = decode(wire);
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value().header.au_type, 1);
}

TEST(OspfCodec, Autype2WithoutDigestFramingRejected) {
  // Flipping AuType to 2 without appending the 16-byte digest makes the
  // length field inconsistent with the cryptographic framing.
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire[15] = 2;
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OspfCodec, UnknownAuthTypeRejected) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire[15] = 3;
  wire[12] = wire[13] = 0;
  const auto csum = internet_checksum(wire);
  wire[12] = static_cast<std::uint8_t>(csum >> 8);
  wire[13] = static_cast<std::uint8_t>(csum);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OspfCodec, LengthMismatchRejected) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  wire.push_back(0);  // extra trailing byte
  EXPECT_FALSE(decode(wire).ok());
}

TEST(OspfCodec, LsuWithCorruptedLsaRejected) {
  LsUpdateBody b;
  b.lsas.push_back(simple_lsa(0x01010101));
  auto pkt = make_packet(kR1, kBackboneArea, b);
  // Corrupt the LSA *after* finalize, then re-encode with a fixed-up outer
  // checksum so only the Fletcher check can catch it.
  std::get<LsUpdateBody>(pkt.body).lsas[0].header.seq += 1;
  auto wire = encode(pkt);
  auto out = decode(wire);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().find("Fletcher"), std::string::npos);
}

TEST(OspfCodec, RaggedHelloNeighborListRejected) {
  auto wire = encode(make_packet(kR1, kBackboneArea, HelloBody{}));
  // Append 2 junk bytes to the neighbor list and fix length+checksum.
  wire.insert(wire.end(), {0xab, 0xcd});
  const std::uint16_t len = static_cast<std::uint16_t>(wire.size());
  wire[2] = static_cast<std::uint8_t>(len >> 8);
  wire[3] = static_cast<std::uint8_t>(len);
  wire[12] = wire[13] = 0;
  const auto csum = internet_checksum(wire);
  wire[12] = static_cast<std::uint8_t>(csum >> 8);
  wire[13] = static_cast<std::uint8_t>(csum);
  auto out = decode(wire);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.error().find("ragged"), std::string::npos);
}

TEST(OspfCodec, PeekTypeReadsWithoutDecoding) {
  const auto wire = encode(make_packet(kR1, kBackboneArea, LsUpdateBody{}));
  EXPECT_EQ(peek_type(wire), 4);
  EXPECT_EQ(peek_type({wire.data(), 1}), 0);
}

TEST(OspfCodec, SummaryStringsNameTheType) {
  EXPECT_NE(make_packet(kR1, kBackboneArea, HelloBody{}).summary().find(
                "Hello"),
            std::string::npos);
  EXPECT_NE(
      make_packet(kR1, kBackboneArea, DbdBody{}).summary().find("DBD"),
      std::string::npos);
  EXPECT_NE(make_packet(kR1, kBackboneArea, LsUpdateBody{}).summary().find(
                "LSU"),
            std::string::npos);
}

/// Property: decoding arbitrary bytes never crashes and never produces a
/// packet that fails to re-encode.
TEST(OspfCodec, FuzzDecodeIsTotal) {
  Rng rng(20260706);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.uniform(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(256));
    auto out = decode(junk);
    if (out.ok() && out.value().header.au_type != 2) {
      // Astronomically unlikely, but if it decodes it must re-encode.
      EXPECT_EQ(encode(out.value()).size(), junk.size());
    }
  }
}

/// Property: every packet type round-trips bit-exactly (encode∘decode∘
/// encode is the identity on the wire image).
class WireStability : public ::testing::TestWithParam<int> {};

TEST_P(WireStability, EncodeDecodeEncodeIsStable) {
  PacketBody body;
  switch (GetParam()) {
    case 1: {
      HelloBody h;
      h.neighbors = {RouterId{7, 7, 7, 7}};
      body = h;
      break;
    }
    case 2: {
      DbdBody d;
      d.lsa_headers.push_back(simple_lsa(0x05050505).header);
      body = d;
      break;
    }
    case 3: {
      LsRequestBody b;
      b.requests.push_back(LsRequestEntry{});
      body = b;
      break;
    }
    case 4: {
      LsUpdateBody b;
      b.lsas.push_back(simple_lsa(0x09090909));
      body = b;
      break;
    }
    default: {
      LsAckBody b;
      b.lsa_headers.push_back(simple_lsa(0x0a0a0a0a).header);
      body = b;
      break;
    }
  }
  const auto wire1 = encode(make_packet(kR1, kBackboneArea, body));
  auto decoded = decode(wire1);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  const auto wire2 = encode(decoded.value());
  EXPECT_EQ(wire1, wire2);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WireStability, ::testing::Range(1, 6));

}  // namespace
}  // namespace nidkit::ospf
