#include "packet/lsa.hpp"

#include <gtest/gtest.h>

#include "packet/ospf_packet.hpp"

namespace nidkit::ospf {
namespace {

Lsa sample_router_lsa() {
  Lsa lsa;
  lsa.header.type = LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{1, 1, 1, 1};
  lsa.header.advertising_router = RouterId{1, 1, 1, 1};
  RouterLsaBody body;
  body.flags = 0x02;
  body.links.push_back(RouterLink{Ipv4Addr{2, 2, 2, 2}, Ipv4Addr{10, 0, 1, 1},
                                  RouterLinkType::kPointToPoint, 3});
  body.links.push_back(RouterLink{Ipv4Addr{10, 0, 1, 0},
                                  Ipv4Addr{255, 255, 255, 252},
                                  RouterLinkType::kStub, 1});
  lsa.body = std::move(body);
  lsa.finalize();
  return lsa;
}

Lsa round_trip(const Lsa& in) {
  ByteWriter w;
  in.encode(w);
  ByteReader r(w.view());
  auto out = Lsa::decode(r);
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error());
  return std::move(out).take();
}

TEST(Lsa, RouterLsaRoundTrips) {
  const Lsa in = sample_router_lsa();
  const Lsa out = round_trip(in);
  EXPECT_EQ(in, out);
  EXPECT_TRUE(out.checksum_ok());
}

TEST(Lsa, NetworkLsaRoundTrips) {
  Lsa in;
  in.header.type = LsaType::kNetwork;
  in.header.link_state_id = Ipv4Addr{10, 0, 1, 1};
  in.header.advertising_router = RouterId{1, 1, 1, 1};
  NetworkLsaBody body;
  body.network_mask = Ipv4Addr{255, 255, 255, 0};
  body.attached_routers = {RouterId{1, 1, 1, 1}, RouterId{2, 2, 2, 2},
                           RouterId{3, 3, 3, 3}};
  in.body = std::move(body);
  in.finalize();
  EXPECT_EQ(in, round_trip(in));
}

TEST(Lsa, SummaryLsaRoundTrips) {
  Lsa in;
  in.header.type = LsaType::kSummaryNet;
  in.header.link_state_id = Ipv4Addr{172, 16, 0, 0};
  in.header.advertising_router = RouterId{1, 1, 1, 1};
  in.body = SummaryLsaBody{Ipv4Addr{255, 255, 0, 0}, 777};
  in.finalize();
  EXPECT_EQ(in, round_trip(in));
}

TEST(Lsa, ExternalLsaRoundTrips) {
  Lsa in;
  in.header.type = LsaType::kExternal;
  in.header.link_state_id = Ipv4Addr{192, 168, 50, 0};
  in.header.advertising_router = RouterId{4, 4, 4, 4};
  ExternalLsaBody body;
  body.network_mask = Ipv4Addr{255, 255, 255, 0};
  body.type2 = true;
  body.metric = 20;
  body.forwarding_address = Ipv4Addr{10, 9, 9, 9};
  body.external_route_tag = 0xdeadbeef;
  in.body = std::move(body);
  in.finalize();
  const Lsa out = round_trip(in);
  EXPECT_EQ(in, out);
  EXPECT_TRUE(std::get<ExternalLsaBody>(out.body).type2);
}

TEST(Lsa, Type1ExternalEBitClear) {
  Lsa in;
  in.header.type = LsaType::kExternal;
  in.header.link_state_id = Ipv4Addr{192, 168, 51, 0};
  in.header.advertising_router = RouterId{4, 4, 4, 4};
  ExternalLsaBody body;
  body.type2 = false;
  in.body = std::move(body);
  in.finalize();
  EXPECT_FALSE(std::get<ExternalLsaBody>(round_trip(in).body).type2);
}

TEST(Lsa, FinalizeComputesLength) {
  const Lsa lsa = sample_router_lsa();
  // 20-byte header + 4-byte fixed router body + 2 links * 12 bytes.
  EXPECT_EQ(lsa.header.length, 20u + 4u + 24u);
}

TEST(Lsa, FinalizeChecksumValidatesAndChangesWithContent) {
  Lsa lsa = sample_router_lsa();
  const auto before = lsa.header.checksum;
  std::get<RouterLsaBody>(lsa.body).links[0].metric = 99;
  lsa.finalize();
  EXPECT_NE(before, lsa.header.checksum);
  EXPECT_TRUE(lsa.checksum_ok());
}

TEST(Lsa, CorruptedBodyFailsChecksum) {
  Lsa lsa = sample_router_lsa();
  std::get<RouterLsaBody>(lsa.body).links[0].metric ^= 1;
  // finalize() NOT called: the stored checksum no longer matches.
  EXPECT_FALSE(lsa.checksum_ok());
}

TEST(Lsa, DecodeRejectsTruncatedHeader) {
  ByteWriter w;
  sample_router_lsa().encode(w);
  auto bytes = w.take();
  bytes.resize(10);
  ByteReader r(bytes);
  EXPECT_FALSE(Lsa::decode(r).ok());
}

TEST(Lsa, DecodeRejectsTruncatedBody) {
  ByteWriter w;
  sample_router_lsa().encode(w);
  auto bytes = w.take();
  bytes.resize(bytes.size() - 4);
  ByteReader r(bytes);
  EXPECT_FALSE(Lsa::decode(r).ok());
}

TEST(Lsa, DecodeRejectsBadType) {
  ByteWriter w;
  sample_router_lsa().encode(w);
  auto bytes = w.take();
  bytes[3] = 9;  // type field
  ByteReader r(bytes);
  EXPECT_FALSE(Lsa::decode(r).ok());
}

TEST(Lsa, DecodeRejectsBadRouterLinkType) {
  Lsa lsa = sample_router_lsa();
  ByteWriter w;
  lsa.encode(w);
  auto bytes = w.take();
  bytes[20 + 4 + 8] = 7;  // first link's type byte
  ByteReader r(bytes);
  EXPECT_FALSE(Lsa::decode(r).ok());
}

TEST(Lsa, DecodeRejectsLengthShorterThanHeader) {
  ByteWriter w;
  sample_router_lsa().encode(w);
  auto bytes = w.take();
  bytes[18] = 0;
  bytes[19] = 10;  // length = 10 < 20
  ByteReader r(bytes);
  EXPECT_FALSE(Lsa::decode(r).ok());
}

TEST(Lsa, SameLsaComparesKeyOnly) {
  LsaHeader a, b;
  a.type = b.type = LsaType::kRouter;
  a.link_state_id = b.link_state_id = Ipv4Addr{1, 1, 1, 1};
  a.advertising_router = b.advertising_router = RouterId{1, 1, 1, 1};
  a.seq = 5;
  b.seq = 9;
  EXPECT_TRUE(same_lsa(a, b));
  b.advertising_router = RouterId{2, 2, 2, 2};
  EXPECT_FALSE(same_lsa(a, b));
}

// ---- §13.1 instance-freshness ordering ----

LsaHeader header_with(std::int32_t seq, std::uint16_t checksum,
                      std::uint16_t age) {
  LsaHeader h;
  h.seq = seq;
  h.checksum = checksum;
  h.age = age;
  return h;
}

TEST(CompareInstances, GreaterSeqWins) {
  EXPECT_GT(compare_instances(header_with(10, 0, 0), header_with(9, 999, 0)),
            0);
  EXPECT_LT(compare_instances(header_with(9, 0, 0), header_with(10, 0, 0)),
            0);
}

TEST(CompareInstances, NegativeSeqSpaceOrdersCorrectly) {
  // Initial sequence 0x80000001 is the most negative int32; any later
  // instance must compare newer.
  EXPECT_GT(compare_instances(header_with(kInitialSequenceNumber + 1, 0, 0),
                              header_with(kInitialSequenceNumber, 0, 0)),
            0);
}

TEST(CompareInstances, ChecksumBreaksSeqTie) {
  EXPECT_GT(
      compare_instances(header_with(5, 200, 0), header_with(5, 100, 0)), 0);
}

TEST(CompareInstances, MaxAgeInstanceIsNewer) {
  EXPECT_GT(compare_instances(header_with(5, 7, kMaxAgeSeconds),
                              header_with(5, 7, 10)),
            0);
}

TEST(CompareInstances, LargeAgeGapPrefersYounger) {
  EXPECT_GT(compare_instances(header_with(5, 7, 10),
                              header_with(5, 7, 10 + kMaxAgeDiffSeconds + 1)),
            0);
}

TEST(CompareInstances, SmallAgeGapIsSameInstance) {
  EXPECT_EQ(compare_instances(header_with(5, 7, 10), header_with(5, 7, 100)),
            0);
}

TEST(Lsa, HeaderToStringMentionsKeyFields) {
  const auto s = sample_router_lsa().header.to_string();
  EXPECT_NE(s.find("router-LSA"), std::string::npos);
  EXPECT_NE(s.find("1.1.1.1"), std::string::npos);
}

}  // namespace
}  // namespace nidkit::ospf
