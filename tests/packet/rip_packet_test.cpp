#include "packet/rip_packet.hpp"

#include <gtest/gtest.h>

namespace nidkit::rip {
namespace {

RipEntry entry(std::uint8_t third_octet, std::uint32_t metric) {
  RipEntry e;
  e.prefix = Ipv4Addr{10, 0, third_octet, 0};
  e.mask = Ipv4Addr{255, 255, 255, 0};
  e.metric = metric;
  return e;
}

TEST(RipCodec, ResponseRoundTrips) {
  RipPacket in;
  in.command = Command::kResponse;
  in.entries = {entry(1, 1), entry(2, 5), entry(3, 16)};
  const auto wire = encode(in);
  auto out = decode(wire);
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value(), in);
}

TEST(RipCodec, WireSizeIsHeaderPlusEntries) {
  RipPacket in;
  in.entries = {entry(1, 1), entry(2, 2)};
  EXPECT_EQ(encode(in).size(), 4u + 2 * 20u);
}

TEST(RipCodec, FullTableRequestShape) {
  const RipPacket req = make_full_table_request();
  EXPECT_TRUE(req.is_full_table_request());
  auto out = decode(encode(req));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().is_full_table_request());
}

TEST(RipCodec, SpecificRequestIsNotFullTable) {
  RipPacket req;
  req.command = Command::kRequest;
  req.entries = {entry(1, 1)};
  EXPECT_FALSE(req.is_full_table_request());
}

TEST(RipCodec, RuntRejected) {
  const std::vector<std::uint8_t> wire = {2, 2};
  EXPECT_FALSE(decode(wire).ok());
}

TEST(RipCodec, RaggedEntryListRejected) {
  auto wire = encode(make_full_table_request());
  wire.push_back(0);
  EXPECT_FALSE(decode(wire).ok());
}

TEST(RipCodec, BadCommandRejected) {
  auto wire = encode(make_full_table_request());
  wire[0] = 3;
  EXPECT_FALSE(decode(wire).ok());
}

TEST(RipCodec, Version1Accepted) {
  auto wire = encode(make_full_table_request());
  wire[1] = 1;
  auto out = decode(wire);
  ASSERT_TRUE(out.ok()) << out.error();
  EXPECT_EQ(out.value().version, 1);
}

TEST(RipCodec, Version3Rejected) {
  auto wire = encode(make_full_table_request());
  wire[1] = 3;
  EXPECT_FALSE(decode(wire).ok());
}

TEST(RipCodec, V1EncodingZeroesMaskAndNextHop) {
  RipPacket pkt;
  pkt.version = 1;
  pkt.command = Command::kResponse;
  RipEntry e;
  e.prefix = Ipv4Addr{10, 1, 0, 0};
  e.mask = Ipv4Addr{255, 255, 252, 0};
  e.next_hop = Ipv4Addr{10, 9, 9, 9};
  e.route_tag = 77;
  e.metric = 2;
  pkt.entries = {e};
  const auto wire = encode(pkt);
  // Within the 20-byte entry: route tag (2-4), mask (8-12) and next hop
  // (12-16) are must-be-zero in version 1.
  for (const std::size_t i :
       {2u, 3u, 8u, 9u, 10u, 11u, 12u, 13u, 14u, 15u})
    EXPECT_EQ(wire[4 + i], 0) << "offset " << i;
  auto out = decode(wire);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().entries[0].mask.is_zero());
}

TEST(RipCodec, MetricZeroRejected) {
  RipPacket in;
  in.entries = {entry(1, 1)};
  auto wire = encode(in);
  wire[4 + 16 + 3] = 0;  // metric low byte -> 0
  EXPECT_FALSE(decode(wire).ok());
}

TEST(RipCodec, MetricAboveInfinityRejected) {
  RipPacket in;
  in.entries = {entry(1, 1)};
  auto wire = encode(in);
  wire[4 + 16 + 3] = 17;
  EXPECT_FALSE(decode(wire).ok());
}

TEST(RipCodec, TwentyFiveEntriesAccepted) {
  RipPacket in;
  for (std::uint8_t i = 0; i < 25; ++i) in.entries.push_back(entry(i, 1));
  EXPECT_TRUE(decode(encode(in)).ok());
}

TEST(RipCodec, TwentySixEntriesRejected) {
  RipPacket in;
  for (std::uint8_t i = 0; i < 26; ++i) in.entries.push_back(entry(i, 1));
  EXPECT_FALSE(decode(encode(in)).ok());
}

TEST(RipCodec, SummaryMentionsCommand) {
  EXPECT_NE(make_full_table_request().summary().find("Request"),
            std::string::npos);
}

}  // namespace
}  // namespace nidkit::rip
