// BGP advertisement mechanics: MRAI batching, path grouping, withdrawal
// propagation, keepalive/hold interplay.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/bgp_router.hpp"
#include "netsim/chaos.hpp"

namespace nidkit::bgp {
namespace {

using namespace std::chrono_literals;

struct Rig2 {
  Rig2() {
    nodes.push_back(net.add_node("a"));
    nodes.push_back(net.add_node("b"));
    const auto seg = net.add_p2p(nodes[0], nodes[1]);
    net.fault(seg).delay = 50ms;
    net.fault(seg).fifo = true;
    for (int i = 0; i < 2; ++i) {
      BgpConfig cfg;
      cfg.as_number = static_cast<std::uint16_t>(65001 + i);
      const auto b = static_cast<std::uint8_t>(i + 1);
      cfg.router_id = RouterId{b, b, b, b};
      cfg.profile = bgp_robust_profile();
      routers.push_back(
          std::make_unique<BgpRouter>(net, nodes[i], cfg, 40 + i));
    }
  }
  netsim::Simulator sim;
  netsim::Network net{sim, 4};
  std::vector<netsim::NodeId> nodes;
  std::vector<std::unique_ptr<BgpRouter>> routers;
  void run_for(SimDuration d) { sim.run_until(sim.now() + d); }
};

Prefix pfx(std::uint8_t third) {
  return Prefix{Ipv4Addr{172, 16, third, 0}, 24};
}

TEST(BgpAdvertise, MraiBatchesSamePathPrefixesIntoOneUpdate) {
  Rig2 rig;
  rig.routers[0]->start();
  rig.routers[1]->start();
  rig.run_for(10s);

  int updates = 0;
  int nlri_total = 0;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != rig.nodes[0] || ev.direction != netsim::Direction::kSend)
      return;
    auto d = decode(ev.frame->payload);
    if (!d.ok()) return;
    if (const auto* u = std::get_if<UpdateMessage>(&d.value().body)) {
      ++updates;
      nlri_total += static_cast<int>(u->nlri.size());
    }
  });
  // Three originations within one MRAI window, all sharing the same
  // (locally originated, single-AS) path: one UPDATE, three NLRI.
  for (std::uint8_t i = 0; i < 3; ++i) rig.routers[0]->originate(pfx(i));
  rig.run_for(5s);
  EXPECT_EQ(updates, 1);
  EXPECT_EQ(nlri_total, 3);
}

TEST(BgpAdvertise, DifferentPrependsSplitUpdates) {
  Rig2 rig;
  rig.routers[0]->start();
  rig.routers[1]->start();
  rig.run_for(10s);
  int updates = 0;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != rig.nodes[0] || ev.direction != netsim::Direction::kSend)
      return;
    auto d = decode(ev.frame->payload);
    if (d.ok() && std::holds_alternative<UpdateMessage>(d.value().body))
      ++updates;
  });
  rig.routers[0]->originate(pfx(1), 1);
  rig.routers[0]->originate(pfx(2), 5);  // different path length
  rig.run_for(5s);
  EXPECT_EQ(updates, 2) << "distinct AS_PATHs cannot share one UPDATE";
}

TEST(BgpAdvertise, WithdrawalCarriesNoAttributes) {
  Rig2 rig;
  rig.routers[0]->start();
  rig.routers[1]->start();
  rig.run_for(10s);
  rig.routers[0]->originate(pfx(7));
  rig.run_for(5s);
  bool saw_withdraw = false;
  rig.net.set_tap([&](const netsim::TapEvent& ev) {
    if (ev.node != rig.nodes[0] || ev.direction != netsim::Direction::kSend)
      return;
    auto d = decode(ev.frame->payload);
    if (!d.ok()) return;
    if (const auto* u = std::get_if<UpdateMessage>(&d.value().body)) {
      if (!u->withdrawn.empty()) {
        saw_withdraw = true;
        EXPECT_TRUE(u->nlri.empty());
        EXPECT_TRUE(u->as_path.empty());
        EXPECT_EQ(u->withdrawn[0], pfx(7));
      }
    }
  });
  rig.routers[0]->withdraw(pfx(7));
  rig.run_for(5s);
  EXPECT_TRUE(saw_withdraw);
  EXPECT_TRUE(rig.routers[1]->routes().empty());
}

TEST(BgpAdvertise, KeepalivesRefreshHoldTimer) {
  Rig2 rig;
  rig.routers[0]->start();
  rig.routers[1]->start();
  // Hold time is 90 s, keepalives every 30 s: the session must survive far
  // beyond one hold interval with no UPDATE traffic at all.
  rig.run_for(400s);
  EXPECT_EQ(rig.routers[0]->session_state(0), SessionState::kEstablished);
  EXPECT_EQ(rig.routers[0]->stats().session_resets, 0u);
}

TEST(BgpAdvertise, ReAdvertisesAfterSessionRecovery) {
  Rig2 rig;
  rig.routers[0]->start();
  rig.routers[1]->start();
  rig.run_for(10s);
  rig.routers[0]->originate(pfx(9));
  rig.run_for(5s);
  ASSERT_EQ(rig.routers[1]->routes().size(), 1u);

  netsim::ChaosController chaos(rig.net);
  chaos.cut(0);
  rig.run_for(120s);  // hold expiry + resets
  EXPECT_TRUE(rig.routers[1]->routes().empty());
  chaos.restore(0);
  rig.run_for(60s);
  ASSERT_EQ(rig.routers[1]->routes().size(), 1u);
  EXPECT_EQ(rig.routers[1]->routes()[0].prefix, pfx(9));
}

TEST(BgpAdvertise, BestPathSwitchesOnShorterAlternative) {
  // Triangle: r2 hears r0's prefix directly (1 AS) and via r1 (2 ASes);
  // when the direct session dies, r2 must fall back to the longer path.
  netsim::Simulator sim;
  netsim::Network net(sim, 5);
  std::vector<netsim::NodeId> n = {net.add_node("a"), net.add_node("b"),
                                   net.add_node("c")};
  const auto s01 = net.add_p2p(n[0], n[1]);
  const auto s12 = net.add_p2p(n[1], n[2]);
  const auto s02 = net.add_p2p(n[0], n[2]);
  for (const auto s : {s01, s12, s02}) {
    net.fault(s).delay = 50ms;
    net.fault(s).fifo = true;
  }
  std::vector<std::unique_ptr<BgpRouter>> routers;
  for (int i = 0; i < 3; ++i) {
    BgpConfig cfg;
    cfg.as_number = static_cast<std::uint16_t>(65001 + i);
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = bgp_robust_profile();
    routers.push_back(std::make_unique<BgpRouter>(net, n[i], cfg, 60 + i));
  }
  for (auto& r : routers) r->start();
  sim.run_until(SimTime{10s});
  routers[0]->originate(pfx(5));
  sim.run_until(SimTime{20s});
  auto at_r2 = routers[2]->routes();
  ASSERT_EQ(at_r2.size(), 1u);
  EXPECT_EQ(at_r2[0].path.size(), 1u);  // direct via the r0-r2 link

  netsim::ChaosController chaos(net);
  chaos.cut(s02);
  sim.run_until(SimTime{150s});  // hold expiry + reconvergence
  at_r2 = routers[2]->routes();
  ASSERT_EQ(at_r2.size(), 1u);
  EXPECT_EQ(at_r2[0].path, (AsPath{65002, 65001}));  // via r1 now
}

}  // namespace
}  // namespace nidkit::bgp
