// BGP engine tests: session FSM, route propagation, path selection, loop
// prevention, withdrawal — and the 2009-incident behaviour split.
#include <gtest/gtest.h>

#include <memory>

#include "bgp/bgp_router.hpp"
#include "netsim/chaos.hpp"

namespace nidkit::bgp {
namespace {

using namespace std::chrono_literals;

struct BgpRig {
  BgpRig() = default;
  BgpRig(const BgpRig&) = delete;
  BgpRig& operator=(const BgpRig&) = delete;

  netsim::Simulator sim;
  netsim::Network net{sim, 9};
  std::vector<netsim::NodeId> nodes;
  std::vector<std::unique_ptr<BgpRouter>> routers;

  void init_line(std::size_t n, const BgpProfile& profile,
                 SimDuration delay = 50ms) {
    for (std::size_t i = 0; i < n; ++i)
      nodes.push_back(net.add_node("as" + std::to_string(65001 + i)));
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto seg = net.add_p2p(nodes[i], nodes[i + 1]);
      net.fault(seg).delay = delay;
      net.fault(seg).fifo = true;
    }
    for (std::size_t i = 0; i < n; ++i) {
      BgpConfig cfg;
      cfg.as_number = static_cast<std::uint16_t>(65001 + i);
      const auto b = static_cast<std::uint8_t>(i + 1);
      cfg.router_id = RouterId{b, b, b, b};
      cfg.profile = profile;
      routers.push_back(
          std::make_unique<BgpRouter>(net, nodes[i], cfg, 70 + i));
    }
  }

  void start_all() {
    for (auto& r : routers) r->start();
  }
  void run_for(SimDuration d) { sim.run_until(sim.now() + d); }
  BgpRouter& r(std::size_t i) { return *routers.at(i); }
};

Prefix test_prefix(std::uint8_t third = 10) {
  return Prefix{Ipv4Addr{172, 16, third, 0}, 24};
}

TEST(Bgp, SessionsEstablish) {
  BgpRig rig;
  rig.init_line(2, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  EXPECT_EQ(rig.r(0).session_state(0), SessionState::kEstablished);
  EXPECT_EQ(rig.r(1).session_state(0), SessionState::kEstablished);
}

TEST(Bgp, RoutePropagatesAlongLine) {
  BgpRig rig;
  rig.init_line(4, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix());
  rig.run_for(10s);
  const auto routes = rig.r(3).routes();
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].prefix, test_prefix());
  // Path accumulated one AS per hop: 65003, 65002, 65001.
  EXPECT_EQ(routes[0].path, (AsPath{65003, 65002, 65001}));
}

TEST(Bgp, LocallyOriginatedBeatsLearned) {
  BgpRig rig;
  rig.init_line(2, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix());
  rig.r(1).originate(test_prefix());
  rig.run_for(10s);
  for (int i = 0; i < 2; ++i) {
    const auto routes = rig.r(i).routes();
    ASSERT_EQ(routes.size(), 1u);
    EXPECT_TRUE(routes[0].local) << "router " << i;
  }
}

TEST(Bgp, ShortestPathWinsInRing) {
  // Square ring of 4: as3 reaches as1's prefix via as2 OR as4 (2 hops
  // each); as2 reaches it directly (1 hop).
  BgpRig rig;
  rig.init_line(4, bgp_robust_profile());
  const auto seg = rig.net.add_p2p(rig.nodes[3], rig.nodes[0]);
  rig.net.fault(seg).delay = 50ms;
  rig.net.fault(seg).fifo = true;
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix());
  rig.run_for(20s);
  const auto at_r3 = rig.r(3).routes();
  ASSERT_EQ(at_r3.size(), 1u);
  EXPECT_EQ(at_r3[0].path.size(), 1u);  // direct: {65001}
  const auto at_r2 = rig.r(2).routes();
  ASSERT_EQ(at_r2.size(), 1u);
  EXPECT_EQ(at_r2[0].path.size(), 2u);  // via 65002 or 65004
}

TEST(Bgp, TriangleConvergesDespiteCycle) {
  BgpRig rig;
  rig.init_line(3, bgp_robust_profile());
  const auto seg = rig.net.add_p2p(rig.nodes[2], rig.nodes[0]);  // triangle
  rig.net.fault(seg).delay = 50ms;
  rig.net.fault(seg).fifo = true;
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix());
  rig.run_for(30s);
  // Despite the cycle, every router holds exactly one best route.
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(rig.r(i).routes().size(), 1u) << "router " << i;
}

TEST(Bgp, LoopPreventionRejectsOwnAs) {
  // Source-peer split horizon suppresses most natural loops, so exercise
  // the AS_PATH check directly: hand the router an UPDATE whose path
  // already contains its own AS.
  BgpRig rig;
  rig.init_line(2, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  ASSERT_EQ(rig.r(1).session_state(0), SessionState::kEstablished);

  UpdateMessage update;
  update.as_path = {65001, 65002, 64999};  // 65002 is r1's own AS
  update.next_hop = rig.net.iface(rig.nodes[0], 0).address;
  update.nlri = {test_prefix()};
  BgpMessage msg;
  msg.body = update;
  netsim::Frame frame;
  frame.dst = rig.net.iface(rig.nodes[1], 0).address;
  frame.protocol = kIpProtoTcp;
  frame.payload = encode(msg);
  rig.net.send(rig.nodes[0], 0, std::move(frame));
  rig.run_for(5s);

  EXPECT_EQ(rig.r(1).stats().loop_rejects, 1u);
  EXPECT_TRUE(rig.r(1).routes().empty());
}

TEST(Bgp, WithdrawRemovesRouteEverywhere) {
  BgpRig rig;
  rig.init_line(3, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix());
  rig.run_for(10s);
  ASSERT_EQ(rig.r(2).routes().size(), 1u);
  EXPECT_TRUE(rig.r(0).withdraw(test_prefix()));
  rig.run_for(10s);
  EXPECT_TRUE(rig.r(2).routes().empty());
  EXPECT_FALSE(rig.r(0).withdraw(test_prefix()));  // already gone
}

TEST(Bgp, HoldTimerDetectsSilentPeer) {
  BgpRig rig;
  rig.init_line(2, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  netsim::ChaosController chaos(rig.net);
  chaos.cut(0);
  rig.run_for(95s);  // hold time 90 s
  EXPECT_NE(rig.r(0).session_state(0), SessionState::kEstablished);
  EXPECT_GT(rig.r(0).stats().session_resets, 0u);
}

TEST(Bgp, SessionRecoversAfterLinkRestored) {
  BgpRig rig;
  rig.init_line(2, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix());
  rig.run_for(5s);
  netsim::ChaosController chaos(rig.net);
  chaos.cut(0);
  rig.run_for(120s);
  chaos.restore(0);
  rig.run_for(60s);
  EXPECT_EQ(rig.r(0).session_state(0), SessionState::kEstablished);
  ASSERT_EQ(rig.r(1).routes().size(), 1u);  // route re-learned
}

TEST(Bgp, RouteLostWhenSessionDies) {
  BgpRig rig;
  rig.init_line(2, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix());
  rig.run_for(5s);
  ASSERT_EQ(rig.r(1).routes().size(), 1u);
  netsim::ChaosController chaos(rig.net);
  chaos.cut(0);
  rig.run_for(100s);
  EXPECT_TRUE(rig.r(1).routes().empty());
}

// ---- The 2009 incident ----

TEST(Bgp, RobustNetworkCarriesLongPath) {
  BgpRig rig;
  rig.init_line(3, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix(), /*prepend=*/120);
  rig.run_for(20s);
  const auto routes = rig.r(2).routes();
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].path.size(), 121u);  // 120 prepends + as 65002
  std::uint64_t resets = 0;
  for (int i = 0; i < 3; ++i) resets += rig.r(i).stats().session_resets;
  EXPECT_EQ(resets, 0u);
}

TEST(Bgp, FragileNetworkResetLoopsOnLongPath) {
  BgpRig rig;
  rig.init_line(2, bgp_fragile_profile());
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix(), /*prepend=*/120);
  rig.run_for(120s);
  // The receiver keeps rejecting the announcement: NOTIFICATION, reset,
  // re-establish, re-announce, reject again — the incident's reset loop.
  EXPECT_GE(rig.r(1).stats().long_path_rejects, 3u);
  EXPECT_GE(rig.r(1).stats().tx_notification, 3u);
  EXPECT_GE(rig.r(0).stats().session_resets +
                rig.r(1).stats().session_resets,
            6u);
  // The long-path route never sticks.
  EXPECT_TRUE(rig.r(1).routes().empty());
}

TEST(Bgp, FragileAcceptsPathsUnderTheLimit) {
  BgpRig rig;
  rig.init_line(2, bgp_fragile_profile());
  rig.start_all();
  rig.run_for(10s);
  rig.r(0).originate(test_prefix(), /*prepend=*/50);  // below the 100 limit
  rig.run_for(20s);
  ASSERT_EQ(rig.r(1).routes().size(), 1u);
  EXPECT_EQ(rig.r(1).stats().long_path_rejects, 0u);
}

TEST(Bgp, MixedNetworkOnlyFragileSideFlaps) {
  BgpRig rig;
  rig.init_line(3, bgp_robust_profile());
  rig.start_all();
  rig.run_for(10s);
  // Replace nothing — instead build a custom pair: robust r0/r1 already
  // running; verify a fragile third router wedged onto the line flaps
  // while the robust pair stays up.
  // (Mixed profiles per router require manual construction.)
  BgpRig mixed;
  mixed.nodes.push_back(mixed.net.add_node("a"));
  mixed.nodes.push_back(mixed.net.add_node("b"));
  mixed.nodes.push_back(mixed.net.add_node("c"));
  for (int i = 0; i < 2; ++i) {
    const auto seg = mixed.net.add_p2p(mixed.nodes[i], mixed.nodes[i + 1]);
    mixed.net.fault(seg).delay = 50ms;
    mixed.net.fault(seg).fifo = true;
  }
  auto make = [&](int i, const BgpProfile& p) {
    BgpConfig cfg;
    cfg.as_number = static_cast<std::uint16_t>(65001 + i);
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    cfg.profile = p;
    mixed.routers.push_back(
        std::make_unique<BgpRouter>(mixed.net, mixed.nodes[i], cfg, 80 + i));
  };
  make(0, bgp_robust_profile());
  make(1, bgp_robust_profile());
  make(2, bgp_fragile_profile());
  mixed.start_all();
  mixed.run_for(10s);
  mixed.r(0).originate(test_prefix(), /*prepend=*/120);
  mixed.run_for(120s);
  // The robust pair keeps its session; the fragile edge flaps.
  EXPECT_EQ(mixed.r(0).session_state(0), SessionState::kEstablished);
  EXPECT_GT(mixed.r(2).stats().long_path_rejects, 0u);
  EXPECT_GT(mixed.r(2).stats().session_resets, 0u);
  // The robust middle router carries the route; the fragile edge never
  // holds it.
  EXPECT_EQ(mixed.r(1).routes().size(), 1u);
  EXPECT_TRUE(mixed.r(2).routes().empty());
}

TEST(Bgp, StatsCountMessages) {
  BgpRig rig;
  rig.init_line(2, bgp_robust_profile());
  rig.start_all();
  rig.run_for(120s);
  const auto& s = rig.r(0).stats();
  EXPECT_GE(s.tx_open, 1u);
  EXPECT_GE(s.rx_open, 1u);
  EXPECT_GE(s.tx_keepalive, 3u);  // periodic keepalives flowing
  EXPECT_EQ(s.tx_notification, 0u);
}

}  // namespace
}  // namespace nidkit::bgp
