// Configuration-surface tests: the small helpers gluing experiment
// parameters into scenarios and miners.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

TEST(Config, MinerConfigMirrorsExperiment) {
  ExperimentConfig c;
  c.tdelay = 300ms;
  c.window_factor = 2.5;
  c.miner_horizon = 7s;
  const auto m = c.miner_config();
  EXPECT_EQ(m.tdelay, SimDuration{300ms});
  EXPECT_DOUBLE_EQ(m.window_factor, 2.5);
  EXPECT_EQ(m.horizon, SimDuration{7s});
  EXPECT_EQ(m.threshold(), SimDuration{750ms});
}

TEST(Config, MinerThresholdScalesWithFactor) {
  mining::MinerConfig m;
  m.tdelay = 900ms;
  m.window_factor = 2.0;
  EXPECT_EQ(m.threshold(), SimDuration{1800ms});
  m.window_factor = 1.0;
  EXPECT_EQ(m.threshold(), SimDuration{900ms});
  m.window_factor = 0.5;
  EXPECT_EQ(m.threshold(), SimDuration{450ms});
}

TEST(Config, ScenarioForCopiesExperimentKnobs) {
  ExperimentConfig c;
  c.tdelay = 450ms;
  c.link_jitter = 33ms;
  c.link_loss = 0.007;
  c.duration = 99s;
  c.lsa_refresh = 31s;
  c.keep_bytes = true;
  c.churn_times = {25s, 45s, 77s};
  const auto s = c.scenario_for(topo::Spec{topo::Kind::kRing, 4}, 42);
  EXPECT_EQ(s.topology.kind, topo::Kind::kRing);
  EXPECT_EQ(s.topology.routers, 4u);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_EQ(s.tdelay, SimDuration{450ms});
  EXPECT_EQ(s.link_jitter, SimDuration{33ms});
  EXPECT_DOUBLE_EQ(s.link_loss, 0.007);
  EXPECT_EQ(s.duration, SimDuration{99s});
  EXPECT_EQ(s.lsa_refresh, SimDuration{31s});
  EXPECT_TRUE(s.keep_bytes);
  ASSERT_EQ(s.churn_times.size(), 3u);
  EXPECT_EQ(s.churn_times[0], SimTime{25s});
  EXPECT_EQ(s.churn_times[2], SimTime{77s});
}

TEST(Config, ChurnDefaultMatchesScenarioDefault) {
  // The audit's default chaos schedule and a directly-run Scenario's must
  // agree, or triage's audit-matrix repro search would probe different
  // scenarios than the audit ran.
  EXPECT_EQ(ExperimentConfig{}.churn_times, Scenario{}.churn_times);
}

TEST(Config, KeepBytesDefaultsOffForExperimentsOnForScenarios) {
  // Direct scenario runs (trace/pcap export) need the wire bytes; the
  // mining pipelines read digests only, so experiments drop the buffers
  // unless the user opts in with --keep-bytes.
  EXPECT_TRUE(Scenario{}.keep_bytes);
  ExperimentConfig c;
  EXPECT_FALSE(c.keep_bytes);
  EXPECT_FALSE(c.scenario_for(topo::Spec{topo::Kind::kRing, 4}, 1).keep_bytes);
  c.keep_bytes = true;
  EXPECT_TRUE(c.scenario_for(topo::Spec{topo::Kind::kRing, 4}, 1).keep_bytes);
}

TEST(Config, JobsIsAnExecutorKnobNotAScenarioKnob) {
  ExperimentConfig c;
  // 0 = "use the hardware"; the executor resolves it, the scenarios never
  // see it. Changing jobs must not change any scenario parameter — that
  // is half of the determinism contract (the other half is the canonical
  // merge order, pinned in parallel_executor_test.cpp).
  EXPECT_EQ(c.jobs, 0u);
  c.jobs = 8;
  const auto spec = topo::Spec{topo::Kind::kRing, 4};
  const auto s8 = c.scenario_for(spec, 42);
  c.jobs = 1;
  const auto s1 = c.scenario_for(spec, 42);
  EXPECT_EQ(s8.tdelay, s1.tdelay);
  EXPECT_EQ(s8.link_jitter, s1.link_jitter);
  EXPECT_DOUBLE_EQ(s8.link_loss, s1.link_loss);
  EXPECT_EQ(s8.duration, s1.duration);
  EXPECT_EQ(s8.lsa_refresh, s1.lsa_refresh);
  EXPECT_EQ(s8.seed, s1.seed);
  EXPECT_EQ(s8.keep_bytes, s1.keep_bytes);
}

TEST(Config, PaperDefaultsMatchThePaper) {
  ExperimentConfig c;
  EXPECT_EQ(c.tdelay, SimDuration{900ms});       // §3: TDelay = 900 ms
  EXPECT_DOUBLE_EQ(c.window_factor, 2.0);        // §2: at least 2*TDelay
  ASSERT_EQ(c.topologies.size(), 4u);            // §2: four topologies
  EXPECT_EQ(c.topologies[0].name(), "linear-2");
  EXPECT_EQ(c.topologies[3].name(), "mesh-5");
  // Horizon below the retransmission timeout, per the paper's TDelay
  // upper-bound rule.
  EXPECT_LE(c.miner_horizon, ospf::BehaviorProfile{}.rxmt_interval);
}

TEST(Config, DefaultProfilesHaveRfcTimers) {
  ospf::RouterConfig cfg;
  EXPECT_EQ(cfg.hello_interval, SimDuration{10s});
  EXPECT_EQ(cfg.dead_interval, SimDuration{40s});
  EXPECT_EQ(cfg.mtu, 1500);
  EXPECT_TRUE(cfg.auth_password.empty());
  EXPECT_TRUE(cfg.md5_key.empty());
  EXPECT_EQ(cfg.cost_of(0), 1);
  cfg.interface_costs[2] = 30;
  EXPECT_EQ(cfg.cost_of(2), 30);
  EXPECT_EQ(cfg.cost_of(3), 1);
}

TEST(Config, BgpDefaultsMatchRfcSuggestions) {
  bgp::BgpProfile p;
  EXPECT_EQ(p.hold_time, 90);
  EXPECT_EQ(p.keepalive_interval, SimDuration{30s});  // hold/3
  EXPECT_EQ(bgp::bgp_robust_profile().as_path_accept_limit, 0u);
  EXPECT_GT(bgp::bgp_fragile_profile().as_path_accept_limit, 0u);
}

TEST(Config, RipProfilesDifferWhereDocumented) {
  const auto classic = rip::rip_classic_profile();
  const auto eager = rip::rip_eager_profile();
  const auto v1 = rip::rip_v1_profile();
  EXPECT_FALSE(classic.poisoned_reverse);
  EXPECT_TRUE(eager.poisoned_reverse);
  EXPECT_GT(classic.triggered_delay, eager.triggered_delay);
  EXPECT_EQ(v1.send_version, 1);
  EXPECT_TRUE(v1.accept_v1);
  EXPECT_EQ(classic.send_version, 2);
  EXPECT_FALSE(classic.accept_v1);
}

}  // namespace
}  // namespace nidkit::harness
