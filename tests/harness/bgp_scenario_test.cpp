// BGP through the full harness pipeline: scenario, mining, detection —
// the paper's motivating 2009 incident surfacing as a mined discrepancy.
#include <gtest/gtest.h>

#include "detect/detect.hpp"
#include "harness/experiment.hpp"

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

Scenario bgp_scenario(const bgp::BgpProfile& profile) {
  Scenario s;
  s.protocol = Protocol::kBgp;
  s.bgp_profile = profile;
  s.topology = {topo::Kind::kLinear, 3};
  s.duration = 300s;
  s.churn_times = {60s};
  return s;
}

TEST(BgpScenario, RobustNetworkConverges) {
  const auto r = run_scenario(bgp_scenario(bgp::bgp_robust_profile()));
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.routes_consistent);
  EXPECT_EQ(r.bgp_totals.session_resets, 0u);
  EXPECT_EQ(r.bgp_totals.tx_notification, 0u);
  EXPECT_GT(r.bgp_totals.tx_update, 0u);
}

TEST(BgpScenario, FragileNetworkFlapsOnLongPath) {
  const auto r = run_scenario(bgp_scenario(bgp::bgp_fragile_profile()));
  EXPECT_GT(r.bgp_totals.long_path_rejects, 2u);
  EXPECT_GT(r.bgp_totals.tx_notification, 2u);
  EXPECT_GT(r.bgp_totals.session_resets, 4u);
}

TEST(BgpScenario, WithoutLongPathBothProfilesAgree) {
  for (const auto& profile :
       {bgp::bgp_robust_profile(), bgp::bgp_fragile_profile()}) {
    Scenario s = bgp_scenario(profile);
    s.bgp_longpath_prepend = 0;  // no incident stimulus
    const auto r = run_scenario(s);
    EXPECT_TRUE(r.converged) << profile.name;
    EXPECT_EQ(r.bgp_totals.tx_notification, 0u) << profile.name;
  }
}

TEST(BgpScenario, MinerFlagsTheIncident) {
  // Run both homogeneous networks with the long-path stimulus, mine with
  // the BGP scheme, compare: only the fragile implementation exhibits
  // Rcv(UPDATE+longpath) -> Snd(NOTIFICATION).
  mining::CausalMiner miner([] {
    mining::MinerConfig m;
    m.tdelay = 900ms;
    m.horizon = 5s;
    return m;
  }());
  const auto scheme = mining::bgp_message_scheme();

  const auto robust_run = run_scenario(bgp_scenario(bgp::bgp_robust_profile()));
  const auto fragile_run =
      run_scenario(bgp_scenario(bgp::bgp_fragile_profile()));
  const auto robust = miner.mine(robust_run.log, scheme);
  const auto fragile = miner.mine(fragile_run.log, scheme);

  // The fragile router answers the long-path UPDATE with an immediate
  // NOTIFICATION; the *sender* observes it one RTT (2*TDelay) later, so
  // the relationship surfaces in the send->recv direction (the same
  // vantage as the paper's tables).
  const auto dir = mining::RelationDirection::kSendToRecv;
  EXPECT_TRUE(fragile.has(dir, "UPDATE+longpath", "NOTIFICATION"));
  EXPECT_FALSE(robust.has(dir, "UPDATE+longpath", "NOTIFICATION"));

  const auto flags = detect::compare({"bgp-robust", &robust},
                                     {"bgp-fragile", &fragile});
  bool incident_flagged = false;
  for (const auto& d : flags)
    if (d.cell.stimulus == "UPDATE+longpath" &&
        d.cell.response == "NOTIFICATION" && d.present_in == "bgp-fragile")
      incident_flagged = true;
  EXPECT_TRUE(incident_flagged)
      << "the 2009 incident behaviour must be flagged as a discrepancy";
}

TEST(BgpScenario, TraceContainsBgpDigests) {
  const auto r = run_scenario(bgp_scenario(bgp::bgp_robust_profile()));
  std::size_t updates = 0, longpaths = 0, keepalives = 0;
  for (const auto& rec : r.log.records()) {
    const auto* b = rec.bgp();
    if (b == nullptr) continue;
    if (b->msg_type == 2) {
      ++updates;
      if (b->as_path_len > 100) ++longpaths;
    }
    if (b->msg_type == 4) ++keepalives;
  }
  EXPECT_GT(updates, 0u);
  EXPECT_GT(longpaths, 0u);  // the churn stimulus is visible in the trace
  EXPECT_GT(keepalives, 0u);
}

TEST(BgpScenario, Deterministic) {
  const auto a = run_scenario(bgp_scenario(bgp::bgp_fragile_profile()));
  const auto b = run_scenario(bgp_scenario(bgp::bgp_fragile_profile()));
  EXPECT_EQ(a.log.size(), b.log.size());
  EXPECT_EQ(a.bgp_totals.session_resets, b.bgp_totals.session_resets);
}

}  // namespace
}  // namespace nidkit::harness
