// Packet-injection validation tests (the paper's future-work feature):
// each supported stimulus class is injected into a target implementation
// and the response classes are asserted.
#include "harness/injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

InjectionConfig config_for(const std::string& stimulus,
                           ospf::BehaviorProfile profile) {
  InjectionConfig c;
  c.stimulus = stimulus;
  c.target_profile = std::move(profile);
  return c;
}

TEST(Injection, SupportedStimuliAdvertised) {
  for (const auto* s : {"Hello", "DBD", "LSR", "LSU", "LSU+gtSN", "LSU-stale",
                        "LSAck", "LSAck+gtSN"})
    EXPECT_TRUE(injection_supports(s)) << s;
  EXPECT_FALSE(injection_supports("Bogus"));
}

TEST(Injection, CanonicalLabelsMapToThemselves) {
  for (const auto& label : injection_stimulus_labels()) {
    EXPECT_EQ(injection_canonical_stimulus(label), label);
    EXPECT_TRUE(injection_supports(label)) << label;
  }
}

TEST(Injection, AliasesResolveIntoTheCanonicalTable) {
  const auto& labels = injection_stimulus_labels();
  for (const auto& [alias, canonical] : injection_stimulus_aliases()) {
    // An alias never shadows a canonical label, and always lands on one.
    EXPECT_EQ(std::find(labels.begin(), labels.end(), alias), labels.end())
        << alias;
    EXPECT_NE(std::find(labels.begin(), labels.end(), canonical), labels.end())
        << canonical;
    EXPECT_EQ(injection_canonical_stimulus(alias), canonical);
  }
  // The audit's mined label for a fresh flood maps to the plain LSU
  // synthesizer — the alias this table exists for.
  EXPECT_EQ(injection_canonical_stimulus("LSU+gtSN"), "LSU");
  EXPECT_EQ(injection_canonical_stimulus("Bogus"), "");
}

TEST(Injection, AliasInjectsLikeItsCanonicalButEchoesTheRequest) {
  const auto alias =
      inject_and_observe(config_for("LSU+gtSN", ospf::frr_profile()));
  const auto canonical =
      inject_and_observe(config_for("LSU", ospf::frr_profile()));
  ASSERT_TRUE(alias.injected);
  ASSERT_TRUE(canonical.injected);
  EXPECT_EQ(alias.responses, canonical.responses);
  // The outcome echoes what the caller asked for, not the resolved label.
  EXPECT_EQ(alias.stimulus, "LSU+gtSN");
  EXPECT_EQ(canonical.stimulus, "LSU");
}

TEST(Validation, StimulusForCellStaysWithinTheTables) {
  using mining::RelationCell;
  const auto dir = mining::RelationDirection::kSendToRecv;
  // Every stimulus the cell mapper can emit must be injectable — a
  // mapper output outside the tables would silently degrade triage.
  for (const auto* stim : {"LSU", "LSAck", "LSR", "Hello", "DBD"}) {
    const auto mapped = stimulus_for_cell(RelationCell{stim, "LSAck"}, dir);
    if (!mapped.empty()) EXPECT_TRUE(injection_supports(mapped)) << mapped;
  }
  EXPECT_TRUE(injection_supports(
      stimulus_for_cell(RelationCell{"LSU", "LSAck+gtSN"}, dir)));
  EXPECT_TRUE(injection_supports(
      stimulus_for_cell(RelationCell{"LSAck", "LSAck+gtSN"}, dir)));
}

TEST(Injection, UnsupportedStimulusNotInjected) {
  const auto out = inject_and_observe(config_for("Bogus", ospf::frr_profile()));
  EXPECT_FALSE(out.injected);
}

TEST(Injection, LsrTriggersLsuResponse) {
  for (const auto& profile : {ospf::frr_profile(), ospf::bird_profile()}) {
    const auto out = inject_and_observe(config_for("LSR", profile));
    ASSERT_TRUE(out.injected) << profile.name;
    EXPECT_TRUE(out.saw("LSU")) << profile.name;
  }
}

TEST(Injection, FreshLsuAcknowledged) {
  for (const auto& profile : {ospf::frr_profile(), ospf::bird_profile()}) {
    const auto out = inject_and_observe(config_for("LSU", profile));
    ASSERT_TRUE(out.injected) << profile.name;
    EXPECT_TRUE(out.saw("LSAck")) << profile.name;
  }
}

TEST(Injection, StaleLsuDistinguishesTheImplementations) {
  // The paper's flagged discrepancy, validated by injection: FRR answers a
  // stale LSU with the newer LSA; BIRD acknowledges it from its database
  // (an LSAck carrying a greater LS-SN).
  const auto frr =
      inject_and_observe(config_for("LSU-stale", ospf::frr_profile()));
  ASSERT_TRUE(frr.injected);
  EXPECT_TRUE(frr.saw("LSU+gtSN"));
  EXPECT_FALSE(frr.saw("LSAck+gtSN"));

  const auto bird =
      inject_and_observe(config_for("LSU-stale", ospf::bird_profile()));
  ASSERT_TRUE(bird.injected);
  EXPECT_TRUE(bird.saw("LSAck+gtSN"));
  EXPECT_FALSE(bird.saw("LSU+gtSN"));
}

TEST(Injection, UnsolicitedAckDrawsNoResponse) {
  // Neither implementation reacts to an unsolicited ack of the current
  // instance — the Table 2 row that is Ø for both.
  for (const auto& profile : {ospf::frr_profile(), ospf::bird_profile()}) {
    const auto out = inject_and_observe(config_for("LSAck", profile));
    ASSERT_TRUE(out.injected) << profile.name;
    EXPECT_FALSE(out.saw("LSU+gtSN")) << profile.name;
    EXPECT_FALSE(out.saw("LSAck+gtSN")) << profile.name;
  }
}

TEST(Injection, GreaterSnAckDrawsNoGreaterSnResponse) {
  for (const auto& profile : {ospf::frr_profile(), ospf::bird_profile()}) {
    const auto out = inject_and_observe(config_for("LSAck+gtSN", profile));
    ASSERT_TRUE(out.injected) << profile.name;
    EXPECT_FALSE(out.saw("LSAck+gtSN")) << profile.name;
  }
}

TEST(Injection, OutOfSequenceDbdRestartsExchange) {
  for (const auto& profile : {ospf::frr_profile(), ospf::bird_profile()}) {
    const auto out = inject_and_observe(config_for("DBD", profile));
    ASSERT_TRUE(out.injected) << profile.name;
    EXPECT_TRUE(out.saw("DBD")) << profile.name
                                << ": SeqNumberMismatch must restart the "
                                   "exchange with a fresh DBD";
  }
}

TEST(Injection, HelloKeepsAdjacencyQuiet) {
  const auto out = inject_and_observe(config_for("Hello", ospf::frr_profile()));
  ASSERT_TRUE(out.injected);
  // A routine hello in Full state provokes no database traffic.
  EXPECT_FALSE(out.saw("LSR"));
  EXPECT_FALSE(out.saw("DBD"));
}

TEST(Validation, StimulusForCellMapsRefinements) {
  using mining::RelationCell;
  const auto dir = mining::RelationDirection::kSendToRecv;
  EXPECT_EQ(stimulus_for_cell(RelationCell{"LSU", "LSAck+gtSN"}, dir),
            "LSU-stale");
  EXPECT_EQ(stimulus_for_cell(RelationCell{"LSAck", "LSAck+gtSN"}, dir),
            "LSAck+gtSN");
  EXPECT_EQ(stimulus_for_cell(RelationCell{"LSR", "LSU"}, dir), "LSR");
  EXPECT_EQ(stimulus_for_cell(RelationCell{"Hello", "Hello"}, dir), "Hello");
  // State-conditioned labels strip to their base type.
  EXPECT_EQ(stimulus_for_cell(RelationCell{"LSR@Loading", "LSU@Full"}, dir),
            "LSR");
  EXPECT_EQ(stimulus_for_cell(RelationCell{"Bogus", "X"}, dir), "");
}

TEST(Validation, ConfirmsTheTable2Flag) {
  detect::Discrepancy d;
  d.direction = mining::RelationDirection::kSendToRecv;
  d.cell = {"LSU", "LSAck+gtSN"};
  d.present_in = "bird";
  d.absent_in = "frr";
  const std::map<std::string, ospf::BehaviorProfile> impls = {
      {"frr", ospf::frr_profile()}, {"bird", ospf::bird_profile()}};
  const auto report = validate_discrepancies({d}, impls);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].verdict, Verdict::kConfirmed);
  EXPECT_EQ(report[0].stimulus, "LSU-stale");
  EXPECT_TRUE(report[0].outcome_present.saw("LSAck+gtSN"));
  EXPECT_FALSE(report[0].outcome_absent.saw("LSAck+gtSN"));
}

TEST(Validation, UnknownImplementationIsUnsupported) {
  detect::Discrepancy d;
  d.cell = {"LSR", "LSU"};
  d.present_in = "quagga";
  d.absent_in = "frr";
  const std::map<std::string, ospf::BehaviorProfile> impls = {
      {"frr", ospf::frr_profile()}};
  const auto report = validate_discrepancies({d}, impls);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].verdict, Verdict::kUnsupported);
}

TEST(Validation, IdenticalBehaviourNotReproduced) {
  // LSR handling is identical across profiles; a (hypothetical) flag on
  // it must come back not-reproduced.
  detect::Discrepancy d;
  d.direction = mining::RelationDirection::kSendToRecv;
  d.cell = {"LSR", "LSU"};
  d.present_in = "frr";
  d.absent_in = "strict";
  const std::map<std::string, ospf::BehaviorProfile> impls = {
      {"frr", ospf::frr_profile()}, {"strict", ospf::strict_profile()}};
  const auto report = validate_discrepancies({d}, impls);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].verdict, Verdict::kNotReproduced);
}

TEST(Injection, DeterministicAcrossRuns) {
  const auto a = inject_and_observe(config_for("LSR", ospf::frr_profile()));
  const auto b = inject_and_observe(config_for("LSR", ospf::frr_profile()));
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.responses, b.responses);
}

}  // namespace
}  // namespace nidkit::harness
