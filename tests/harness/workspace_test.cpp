// Workspace reuse contract: a scenario run on a warm (previously used)
// workspace must be byte-identical to the same scenario run on a fresh
// one. This is what makes per-worker workspace pooling invisible to the
// audit/sweep pipelines — any divergence here would show up as a cache
// key mismatch or a report diff three layers up.
#include "harness/workspace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/scenario.hpp"

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

std::string trace_text(const ScenarioResult& r) {
  std::ostringstream os;
  r.log.save(os);
  return os.str();
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b,
                      const char* label) {
  EXPECT_EQ(trace_text(a), trace_text(b)) << label;
  EXPECT_EQ(a.metrics, b.metrics) << label;
  EXPECT_EQ(a.routers, b.routers) << label;
  EXPECT_EQ(a.segments, b.segments) << label;
  EXPECT_EQ(a.full_adjacencies, b.full_adjacencies) << label;
  EXPECT_EQ(a.converged, b.converged) << label;
  EXPECT_EQ(a.convergence_time, b.convergence_time) << label;
  EXPECT_EQ(a.routes_consistent, b.routes_consistent) << label;
  EXPECT_EQ(a.frames_delivered, b.frames_delivered) << label;
  EXPECT_EQ(a.frames_dropped, b.frames_dropped) << label;
}

Scenario ospf_scenario(topo::Kind kind, std::size_t n, std::uint64_t seed) {
  Scenario s;
  s.topology = {kind, n};
  s.seed = seed;
  s.duration = 90s;
  return s;
}

TEST(Workspace, WarmReuseIsByteIdenticalToFreshConstruction) {
  const Scenario big = ospf_scenario(topo::Kind::kMesh, 4, 11);
  const Scenario small = ospf_scenario(topo::Kind::kLinear, 2, 22);

  // Fresh baselines: each scenario on its own never-used workspace.
  Workspace fresh_big, fresh_small;
  const auto base_big = run_scenario(big, fresh_big);
  const auto base_small = run_scenario(small, fresh_small);

  // Warm runs: big → small → big on ONE workspace. The small run must
  // cope with oversized leftover storage (more nodes/segments/routers
  // than it needs); the second big run must cope with a shrunken live
  // set growing back.
  Workspace ws;
  const auto warm_big1 = run_scenario(big, ws);
  const auto warm_small = run_scenario(small, ws);
  const auto warm_big2 = run_scenario(big, ws);

  expect_identical(warm_big1, base_big, "first use");
  expect_identical(warm_small, base_small, "shrinking reuse");
  expect_identical(warm_big2, base_big, "regrowing reuse");
}

TEST(Workspace, ReuseAcrossProtocolsIsByteIdentical) {
  Scenario ospf = ospf_scenario(topo::Kind::kMesh, 3, 5);
  Scenario rip = ospf;
  rip.protocol = Protocol::kRip;
  Scenario bgp = ospf;
  bgp.protocol = Protocol::kBgp;

  Workspace fresh1, fresh2, fresh3;
  const auto base_ospf = run_scenario(ospf, fresh1);
  const auto base_rip = run_scenario(rip, fresh2);
  const auto base_bgp = run_scenario(bgp, fresh3);

  Workspace ws;
  const auto warm_ospf = run_scenario(ospf, ws);
  const auto warm_rip = run_scenario(rip, ws);
  const auto warm_bgp = run_scenario(bgp, ws);
  // And back to OSPF: the OSPF pool was idle for two runs.
  const auto warm_ospf2 = run_scenario(ospf, ws);

  expect_identical(warm_ospf, base_ospf, "ospf");
  expect_identical(warm_rip, base_rip, "rip after ospf");
  expect_identical(warm_bgp, base_bgp, "bgp after rip");
  expect_identical(warm_ospf2, base_ospf, "ospf after bgp");
}

TEST(Workspace, ThreadLocalPathMatchesExplicitWorkspace) {
  const Scenario s = ospf_scenario(topo::Kind::kRing, 4, 9);
  Workspace ws;
  const auto explicit_run = run_scenario(s, ws);
  // The convenience overload routes through the calling thread's
  // workspace — which this test suite has already dirtied with earlier
  // runs, making this a reuse case too.
  const auto tls_run = run_scenario(s);
  expect_identical(tls_run, explicit_run, "thread-local vs explicit");
}

TEST(Workspace, ResetRestoresDeterministicSeedStreams) {
  // Two identical scenario runs on the same workspace must agree even
  // though the network's rng was advanced arbitrarily by the first run:
  // reset(seed) rewinds the stream, the subnet allocator and the frame-id
  // counters.
  const Scenario s = ospf_scenario(topo::Kind::kMesh, 4, 33);
  Workspace ws;
  const auto first = run_scenario(s, ws);
  const auto second = run_scenario(s, ws);
  expect_identical(first, second, "same workspace, same seed");
}

}  // namespace
}  // namespace nidkit::harness
