#include "harness/stability.hpp"

#include <gtest/gtest.h>

#include "detect/detect.hpp"

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

ExperimentConfig tiny_config() {
  ExperimentConfig c;
  c.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                  topo::Spec{topo::Kind::kMesh, 3}};
  c.seeds = {1, 2, 3};
  c.duration = 120s;
  return c;
}

TEST(Stability, FractionsAreWellFormedAndSorted) {
  const auto stability = ospf_relation_stability(
      ospf::frr_profile(), tiny_config(), mining::ospf_type_scheme());
  ASSERT_FALSE(stability.empty());
  std::size_t prev = stability.front().seeds_seen;
  for (const auto& s : stability) {
    EXPECT_GE(s.seeds_seen, 1u);
    EXPECT_LE(s.seeds_seen, 3u);
    EXPECT_EQ(s.seeds_total, 3u);
    EXPECT_GT(s.total_count, 0u);
    EXPECT_LE(s.seeds_seen, prev);  // sorted most-stable first
    prev = s.seeds_seen;
  }
}

TEST(Stability, CoreHandshakeIsFullyStable) {
  const auto stability = ospf_relation_stability(
      ospf::frr_profile(), tiny_config(), mining::ospf_type_scheme());
  bool found = false;
  for (const auto& s : stability) {
    if (s.direction == mining::RelationDirection::kSendToRecv &&
        s.cell == mining::RelationCell{"DBD", "DBD"}) {
      found = true;
      EXPECT_DOUBLE_EQ(s.fraction(), 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Stability, ThresholdOneKeepsOnlyUniversalCells) {
  const auto all = stable_relations(ospf::frr_profile(), tiny_config(),
                                    mining::ospf_type_scheme(), 0.0);
  const auto universal = stable_relations(ospf::frr_profile(), tiny_config(),
                                          mining::ospf_type_scheme(), 1.0);
  EXPECT_GT(all.size(), 0u);
  EXPECT_LE(universal.size(), all.size());
  // Every universal cell is in the full set.
  for (const auto dir : {mining::RelationDirection::kSendToRecv,
                         mining::RelationDirection::kRecvToSend})
    for (const auto& [cell, stats] : universal.cells(dir))
      EXPECT_NE(all.find(dir, cell), nullptr);
}

TEST(Stability, StableComparisonStillFlagsTable2Discrepancy) {
  ExperimentConfig c;  // paper defaults (4 topologies, 3 seeds)
  const auto frr = stable_relations(ospf::frr_profile(), c,
                                    mining::ospf_greater_lssn_scheme(), 0.5);
  const auto bird = stable_relations(ospf::bird_profile(), c,
                                     mining::ospf_greater_lssn_scheme(), 0.5);
  const auto flags =
      detect::compare({"frr", &frr}, {"bird", &bird});
  bool headline = false;
  for (const auto& d : flags)
    if (d.cell.response == "LSAck+gtSN" && d.present_in == "bird")
      headline = true;
  EXPECT_TRUE(headline)
      << "the Table 2 discrepancy must survive stability filtering";
}

}  // namespace
}  // namespace nidkit::harness
