// Property-test suite for the delta-debug minimizer: invariants checked
// over randomized scenarios, predicates and probe budgets with synthetic
// (pure-predicate) oracles, so the shrink loop's soundness is proved
// without paying for simulations. Numbered P1..P10 — the triage layer
// leans on every one of them.
#include "harness/minimize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

/// Deterministic xorshift generator for scenario/predicate fuzz — seeds
/// are pinned so every run explores the same lattice.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

Scenario random_scenario(Rng& rng) {
  Scenario s;
  constexpr topo::Kind kKinds[] = {topo::Kind::kLinear, topo::Kind::kMesh,
                                   topo::Kind::kRing, topo::Kind::kStar,
                                   topo::Kind::kTree, topo::Kind::kLan};
  s.topology.kind = kKinds[rng.below(6)];
  s.topology.routers = 2 + rng.below(5);
  if (s.topology.kind == topo::Kind::kRing && s.topology.routers < 3)
    s.topology.routers = 3;
  s.seed = 1 + rng.below(100);
  s.tdelay = SimDuration{std::chrono::milliseconds{100 + rng.below(1700)}};
  s.churn_times.clear();
  const auto events = rng.below(4);
  for (std::uint64_t i = 0; i < events; ++i)
    s.churn_times.push_back(SimTime{std::chrono::seconds{30 + 20 * i}});
  return s;
}

/// A random predicate the start scenario is guaranteed to satisfy:
/// thresholds on each shrink dimension drawn at or below the start's
/// values, optionally plus a non-monotone "churn must keep its first
/// event" constraint. Pure, so the oracle is trivially memoizable.
std::function<bool(const Scenario&)> random_predicate(Rng& rng,
                                                      const Scenario& start) {
  const std::size_t min_routers = 2 + rng.below(start.topology.routers - 1);
  const std::size_t min_churn = rng.below(start.churn_times.size() + 1);
  const std::uint64_t min_seed = 1 + rng.below(start.seed);
  const SimDuration min_tdelay{start.tdelay.count() / (1 + rng.below(4))};
  const bool needs_first_event =
      !start.churn_times.empty() && rng.below(2) == 0;
  const SimTime first_event =
      start.churn_times.empty() ? SimTime{0} : start.churn_times.front();
  return [=](const Scenario& s) {
    if (s.topology.routers < min_routers) return false;
    if (s.churn_times.size() < min_churn) return false;
    if (s.seed < min_seed) return false;
    if (s.tdelay < min_tdelay) return false;
    if (needs_first_event &&
        std::find(s.churn_times.begin(), s.churn_times.end(), first_event) ==
            s.churn_times.end())
      return false;
    return true;
  };
}

/// Wraps a predicate as a batch oracle, recording every probed signature
/// and the number of oracle invocations.
struct RecordingOracle {
  std::function<bool(const Scenario&)> predicate;
  std::vector<std::string> probed;
  std::size_t calls = 0;

  BatchOracle oracle() {
    return [this](const std::vector<Scenario>& batch) {
      ++calls;
      std::vector<bool> verdicts;
      for (const auto& s : batch) {
        probed.push_back(shrink_signature(s));
        verdicts.push_back(predicate(s));
      }
      return verdicts;
    };
  }
};

std::string trace_string(const MinimizeResult& r) {
  std::ostringstream os;
  for (const auto& step : r.trace)
    os << step.phase << '|' << step.action << '|' << step.reproduced << '|'
       << step.kept << '\n';
  return os.str();
}

constexpr int kCases = 60;

TEST(MinimizeProperty, P1_KeptStepsAndFinalReproduce) {
  Rng rng{0x9e3779b97f4a7c15ull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    const auto pred = random_predicate(rng, start);
    ASSERT_TRUE(pred(start));
    RecordingOracle rec{pred};
    const auto r = minimize_scenario(start, {}, rec.oracle());
    // Every kept step was a reproducing candidate, and the result the loop
    // hands back still satisfies the predicate.
    for (const auto& step : r.trace)
      if (step.kept) EXPECT_TRUE(step.reproduced) << step.action;
    EXPECT_TRUE(pred(r.minimal)) << shrink_signature(r.minimal);
  }
}

TEST(MinimizeProperty, P2_FixpointIsOneMinimal) {
  Rng rng{0xdeadbeefcafef00dull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    const auto pred = random_predicate(rng, start);
    RecordingOracle rec{pred};
    const auto r = minimize_scenario(start, {}, rec.oracle());
    ASSERT_TRUE(r.fixpoint) << "default budget must suffice for this lattice";
    // Independent re-derivation: no single-step reduction of the minimal
    // scenario may still satisfy the predicate.
    for (const auto& cand : shrink_candidates(r.minimal))
      EXPECT_FALSE(pred(cand.scenario))
          << cand.action << " of " << shrink_signature(r.minimal);
  }
}

TEST(MinimizeProperty, P3_DeterministicByteIdenticalTrace) {
  Rng rng{0x1234567890abcdefull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    const auto pred = random_predicate(rng, start);
    RecordingOracle rec1{pred}, rec2{pred};
    const auto a = minimize_scenario(start, {}, rec1.oracle());
    const auto b = minimize_scenario(start, {}, rec2.oracle());
    EXPECT_EQ(trace_string(a), trace_string(b));
    EXPECT_EQ(shrink_signature(a.minimal), shrink_signature(b.minimal));
    EXPECT_EQ(a.probes, b.probes);
    EXPECT_EQ(a.fixpoint, b.fixpoint);
    EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  }
}

TEST(MinimizeProperty, P4_JobsInvariantSelection) {
  // A fanned-out oracle evaluates its batch in any order; only the
  // positional verdict vector reaches the minimizer. Emulate the worst
  // case — reverse evaluation order — and demand identical results.
  Rng rng{0x0123456789abcdefull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    const auto pred = random_predicate(rng, start);
    RecordingOracle serial{pred};
    const auto a = minimize_scenario(start, {}, serial.oracle());
    const auto b = minimize_scenario(
        start, {}, [&](const std::vector<Scenario>& batch) {
          std::vector<bool> verdicts(batch.size());
          for (std::size_t i = batch.size(); i-- > 0;)
            verdicts[i] = pred(batch[i]);
          return verdicts;
        });
    EXPECT_EQ(trace_string(a), trace_string(b));
    EXPECT_EQ(shrink_signature(a.minimal), shrink_signature(b.minimal));
  }
}

TEST(MinimizeProperty, P5_ProbeBudgetRespected) {
  Rng rng{0xfeedfacefeedfaceull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    const auto pred = random_predicate(rng, start);
    for (const std::size_t budget : {std::size_t{1}, std::size_t{3},
                                     std::size_t{7}, std::size_t{200}}) {
      RecordingOracle rec{pred};
      MinimizeConfig mc;
      mc.max_probes = budget;
      const auto r = minimize_scenario(start, mc, rec.oracle());
      EXPECT_LE(r.probes, budget);
      EXPECT_EQ(r.probes, rec.probed.size());
      // The budget never breaks soundness, only completeness.
      EXPECT_TRUE(pred(r.minimal));
      if (r.budget_exhausted) {
        // Truncation is only claimed when the budget was spent to the last
        // probe: a truncated round always fills the budget exactly.
        EXPECT_EQ(r.probes, budget);
      }
    }
  }
}

TEST(MinimizeProperty, P6_NoSignatureProbedTwice) {
  Rng rng{0xa5a5a5a55a5a5a5aull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    RecordingOracle rec{random_predicate(rng, start)};
    minimize_scenario(start, {}, rec.oracle());
    std::set<std::string> unique(rec.probed.begin(), rec.probed.end());
    EXPECT_EQ(unique.size(), rec.probed.size())
        << "memoization must prevent duplicate probes";
  }
}

TEST(MinimizeProperty, P7_ShrinkDimensionsNeverGrow) {
  Rng rng{0x0f0f0f0ff0f0f0f0ull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    RecordingOracle rec{random_predicate(rng, start)};
    const auto r = minimize_scenario(start, {}, rec.oracle());
    EXPECT_LE(r.minimal.topology.routers, start.topology.routers);
    EXPECT_LE(r.minimal.churn_times.size(), start.churn_times.size());
    EXPECT_LE(r.minimal.seed, start.seed);
    EXPECT_LE(r.minimal.tdelay, start.tdelay);
    // Only shrink dimensions move; everything else is untouched.
    EXPECT_EQ(r.minimal.duration, start.duration);
    EXPECT_EQ(r.minimal.link_jitter, start.link_jitter);
    EXPECT_DOUBLE_EQ(r.minimal.link_loss, start.link_loss);
  }
}

TEST(MinimizeProperty, P8_TraceAccountsForEveryProbe) {
  Rng rng{0x5ee15ee15ee15ee1ull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    RecordingOracle rec{random_predicate(rng, start)};
    const auto r = minimize_scenario(start, {}, rec.oracle());
    // Each fresh probe corresponds to a traced consideration; memoized
    // re-considerations may add trace entries but never probes.
    EXPECT_LE(r.probes, r.trace.size());
    // When no step was kept, the minimizer returns the input untouched.
    std::size_t kept = 0;
    for (const auto& step : r.trace) kept += step.kept ? 1 : 0;
    if (kept == 0)
      EXPECT_EQ(shrink_signature(r.minimal), shrink_signature(start));
    EXPECT_EQ(r.fixpoint || r.budget_exhausted, true)
        << "the loop ends either proven minimal or out of budget";
  }
}

TEST(MinimizeProperty, P9_CandidatesWellFormed) {
  Rng rng{0xc001d00dc001d00dull};
  for (int c = 0; c < 200; ++c) {
    const Scenario s = random_scenario(rng);
    const auto cands = shrink_candidates(s);
    std::set<std::string> seen;
    seen.insert(shrink_signature(s));
    for (const auto& cand : cands) {
      // Never the scenario itself, never a duplicate.
      EXPECT_TRUE(seen.insert(shrink_signature(cand.scenario)).second)
          << cand.action;
      // Always a buildable topology.
      EXPECT_GE(cand.scenario.topology.routers, 2u);
      if (cand.scenario.topology.kind == topo::Kind::kRing)
        EXPECT_GE(cand.scenario.topology.routers, 3u);
      // TDelay reductions stay expressible as --tdelay-ms.
      EXPECT_EQ(cand.scenario.tdelay.count() % 1000, 0)
          << "sub-millisecond tdelay cannot round-trip the repro command";
      EXPECT_GE(cand.scenario.tdelay,
                SimDuration{std::chrono::milliseconds{100}});
      EXPECT_GE(cand.scenario.seed, 1u);
    }
    // A fully-minimal scenario generates nothing.
    Scenario bottom;
    bottom.topology = topo::Spec{topo::Kind::kLinear, 2};
    bottom.churn_times.clear();
    bottom.seed = 1;
    bottom.tdelay = SimDuration{std::chrono::milliseconds{150}};
    EXPECT_TRUE(shrink_candidates(bottom).empty());
  }
}

TEST(MinimizeProperty, P10_UnshrinkableInputIsIdentityFixpoint) {
  // A predicate that only the start satisfies leaves the scenario intact:
  // no kept steps, fixpoint proven, minimal == start.
  Rng rng{0xbadc0ffee0ddf00dull};
  for (int c = 0; c < kCases; ++c) {
    const Scenario start = random_scenario(rng);
    const std::string sig = shrink_signature(start);
    RecordingOracle rec{
        [&sig](const Scenario& s) { return shrink_signature(s) == sig; }};
    const auto r = minimize_scenario(start, {}, rec.oracle());
    EXPECT_EQ(shrink_signature(r.minimal), sig);
    EXPECT_TRUE(r.fixpoint);
    for (const auto& step : r.trace) {
      EXPECT_FALSE(step.kept);
      EXPECT_FALSE(step.reproduced);
    }
  }
}

}  // namespace
}  // namespace nidkit::harness
