// Property-based sweeps: global invariants that must hold for every
// (protocol, topology, profile, seed) combination — the safety net under
// all the behaviour-specific tests.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "mining/miner.hpp"

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

struct PropertyCase {
  topo::Spec spec;
  std::uint64_t seed;
  bool bird;
};

class OspfInvariants : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(OspfInvariants, Hold) {
  Scenario s;
  s.topology = GetParam().spec;
  s.seed = GetParam().seed;
  s.ospf_profile =
      GetParam().bird ? ospf::bird_profile() : ospf::frr_profile();
  const auto r = run_scenario(s);

  // I1: the protocol converges and routes agree.
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.routes_consistent);

  // I2: every frame on the wire is well-formed (receivers decode all).
  EXPECT_EQ(r.ospf_totals.decode_failures, 0u);

  // I3: the trace is time-ordered and every receive has a matching send
  //     with the same frame id and earlier timestamp.
  SimTime prev{0};
  std::map<std::uint64_t, SimTime> send_time;
  for (const auto& rec : r.log.records()) {
    EXPECT_GE(rec.time, prev);
    prev = rec.time;
    if (rec.is_send()) send_time.emplace(rec.frame_id, rec.time);
  }
  for (const auto& rec : r.log.records()) {
    if (rec.is_send()) continue;
    auto it = send_time.find(rec.frame_id);
    ASSERT_NE(it, send_time.end()) << "receive without a send";
    EXPECT_LT(it->second, rec.time);
  }

  // I4: provenance is acyclic and refers to existing earlier frames.
  for (const auto& rec : r.log.records()) {
    if (!rec.is_send() || rec.caused_by == 0) continue;
    EXPECT_LT(rec.caused_by, rec.frame_id)
        << "a frame can only be caused by an earlier frame";
  }

  // I5: mining the trace never produces a relationship whose example
  //     indices are out of range or time-inverted.
  mining::CausalMiner miner(mining::MinerConfig{});
  const auto set = miner.mine(r.log, mining::ospf_type_scheme());
  for (const auto dir : {mining::RelationDirection::kSendToRecv,
                         mining::RelationDirection::kRecvToSend}) {
    for (const auto& [cell, stats] : set.cells(dir)) {
      ASSERT_LT(stats.example_stimulus, r.log.size());
      ASSERT_LT(stats.example_response, r.log.size());
      EXPECT_LT(r.log.records()[stats.example_stimulus].time,
                r.log.records()[stats.example_response].time);
    }
  }
}

std::vector<PropertyCase> property_cases() {
  std::vector<PropertyCase> cases;
  const std::vector<topo::Spec> specs = {
      {topo::Kind::kLinear, 2}, {topo::Kind::kLinear, 4},
      {topo::Kind::kMesh, 4},   {topo::Kind::kRing, 5},
      {topo::Kind::kStar, 4},   {topo::Kind::kLan, 3}};
  std::uint64_t seed = 11;
  for (const auto& spec : specs) {
    cases.push_back({spec, seed++, false});
    cases.push_back({spec, seed++, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OspfInvariants, ::testing::ValuesIn(property_cases()),
    [](const auto& info) {
      auto name = info.param.spec.name() + "_seed" +
                  std::to_string(info.param.seed) +
                  (info.param.bird ? "_bird" : "_frr");
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

class RipInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RipInvariants, Hold) {
  Scenario s;
  s.protocol = Protocol::kRip;
  s.rip_profile = GetParam() % 2 ? rip::rip_eager_profile()
                                 : rip::rip_classic_profile();
  s.topology = {topo::Kind::kLinear, 4};
  s.seed = GetParam();
  s.duration = 240s;
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.converged);
  // No router ever advertises a metric above infinity: receivers would
  // reject it at decode, so decode success across the run implies it.
  EXPECT_GT(r.rip_totals.rx_responses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RipInvariants, ::testing::Range<std::uint64_t>(1, 6));

class BgpInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BgpInvariants, Hold) {
  Scenario s;
  s.protocol = Protocol::kBgp;
  s.bgp_profile = bgp::bgp_robust_profile();
  s.topology = {topo::Kind::kRing, 4};
  s.seed = GetParam();
  s.duration = 300s;
  s.churn_times = {60s};
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.routes_consistent);
  EXPECT_EQ(r.bgp_totals.tx_notification, 0u);
  // Keepalives flow on every session for the whole run.
  EXPECT_GT(r.bgp_totals.tx_keepalive, 8u * 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpInvariants, ::testing::Range<std::uint64_t>(1, 6));

TEST(DeterminismProperty, IdenticalAcrossManyConfigs) {
  for (const auto& spec :
       {topo::Spec{topo::Kind::kMesh, 3}, topo::Spec{topo::Kind::kLan, 4}}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Scenario s;
      s.topology = spec;
      s.seed = seed;
      const auto a = run_scenario(s);
      const auto b = run_scenario(s);
      ASSERT_EQ(a.log.size(), b.log.size())
          << spec.name() << " seed " << seed;
      EXPECT_EQ(a.full_adjacencies, b.full_adjacencies);
      EXPECT_EQ(a.frames_delivered, b.frames_delivered);
    }
  }
}

}  // namespace
}  // namespace nidkit::harness
