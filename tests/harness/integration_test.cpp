// End-to-end integration tests: the complete paper pipeline (emulate →
// capture → mine → compare → validate) with the key result shapes pinned.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/injection.hpp"

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;
using mining::RelationDirection;

TEST(Integration, PaperPipelineTable2Shape) {
  // The paper's headline discrepancy, end to end on the paper's four
  // topologies: only BIRD produces LSAcks carrying a greater LS-SN.
  ExperimentConfig config;  // paper defaults
  const auto audit =
      audit_ospf({ospf::frr_profile(), ospf::bird_profile()}, config,
                 mining::ospf_greater_lssn_scheme());
  const auto& frr = audit.by_impl.at("frr");
  const auto& bird = audit.by_impl.at("bird");
  const auto dir = RelationDirection::kSendToRecv;

  // Row 1 (both ✓✓): LSU-with-greater-SN responses exist everywhere.
  EXPECT_TRUE(frr.has(dir, "LSU", "LSU+gtSN"));
  EXPECT_TRUE(frr.has(dir, "LSAck", "LSU+gtSN"));
  EXPECT_TRUE(bird.has(dir, "LSU", "LSU+gtSN"));
  EXPECT_TRUE(bird.has(dir, "LSAck", "LSU+gtSN"));

  // Row 2: FRR all Ø; BIRD exhibits greater-SN acks.
  EXPECT_FALSE(frr.has(dir, "LSU", "LSAck+gtSN"));
  EXPECT_FALSE(frr.has(dir, "LSAck", "LSAck+gtSN"));
  EXPECT_TRUE(bird.has(dir, "LSU", "LSAck+gtSN"));

  // And the detector flags it.
  bool flagged = false;
  for (const auto& d : audit.discrepancies)
    if (d.cell.response == "LSAck+gtSN" && d.present_in == "bird")
      flagged = true;
  EXPECT_TRUE(flagged);
}

TEST(Integration, FlaggedDiscrepancyValidatedByInjection) {
  // Close the loop the paper leaves as future work: take the Table 2
  // discrepancy and confirm it against each implementation by injecting
  // the stimulus and watching the response.
  InjectionConfig probe;
  probe.stimulus = "LSU-stale";

  probe.target_profile = ospf::bird_profile();
  const auto bird = inject_and_observe(probe);
  ASSERT_TRUE(bird.injected);
  EXPECT_TRUE(bird.saw("LSAck+gtSN"));

  probe.target_profile = ospf::frr_profile();
  const auto frr = inject_and_observe(probe);
  ASSERT_TRUE(frr.injected);
  EXPECT_FALSE(frr.saw("LSAck+gtSN"));
}

TEST(Integration, Table1MatricesDifferButHandshakeAgrees) {
  ExperimentConfig config;
  config.seeds = {1, 2};
  const auto audit = audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config,
      mining::ospf_type_scheme());
  EXPECT_FALSE(audit.discrepancies.empty());
  const auto dir = RelationDirection::kSendToRecv;
  // The plain hello handshake is never a discrepancy.
  for (const auto& d : audit.discrepancies) {
    EXPECT_FALSE(d.direction == dir && d.cell.stimulus == "Hello" &&
                 d.cell.response == "Hello");
  }
  // Both implementations answer database description packets.
  EXPECT_TRUE(audit.by_impl.at("frr").has(
      RelationDirection::kRecvToSend, "DBD", "DBD"));
  EXPECT_TRUE(audit.by_impl.at("bird").has(
      RelationDirection::kRecvToSend, "DBD", "DBD"));
}

TEST(Integration, StateConditionedMiningRefinesTypeMining) {
  ExperimentConfig config;
  config.topologies = {topo::Spec{topo::Kind::kMesh, 3}};
  config.seeds = {1};
  const auto by_type =
      mine_ospf(ospf::frr_profile(), config, mining::ospf_type_scheme());
  const auto by_state =
      mine_ospf(ospf::frr_profile(), config, mining::ospf_state_scheme());
  // State labels partition type labels: at least as many cells.
  EXPECT_GE(by_state.size(), by_type.size());
  // Projection property: stripping "@state" from a state-conditioned cell
  // yields a cell present in the type-level set.
  for (const auto dir : {RelationDirection::kSendToRecv,
                         RelationDirection::kRecvToSend}) {
    for (const auto& [cell, stats] : by_state.cells(dir)) {
      const auto strip = [](const std::string& label) {
        return label.substr(0, label.find('@'));
      };
      EXPECT_TRUE(by_type.has(dir, strip(cell.stimulus), strip(cell.response)))
          << cell.stimulus << "->" << cell.response;
    }
  }
}

TEST(Integration, RecvSendDirectionConsistentWithSendRecv) {
  // The paper notes the recv->send relationships are "completely
  // consistent" with send->recv. In our terms: a response class R to
  // stimulus S at one router implies R was *sent* by some router — so the
  // mined relation sets must overlap heavily. We check a weaker, exact
  // invariant: every packet type that appears as a send->recv response
  // also appears somewhere in the recv->send direction.
  ExperimentConfig config;
  config.seeds = {1};
  const auto set =
      mine_ospf(ospf::frr_profile(), config, mining::ospf_type_scheme());
  const auto rs_stimuli = [&] {
    std::set<std::string> out;
    for (const auto& [cell, stats] :
         set.cells(RelationDirection::kRecvToSend)) {
      out.insert(cell.stimulus);
      out.insert(cell.response);
    }
    return out;
  }();
  for (const auto& [cell, stats] :
       set.cells(RelationDirection::kSendToRecv)) {
    EXPECT_TRUE(rs_stimuli.count(cell.response))
        << cell.response << " observed as response but never participates "
        << "in recv->send relations";
  }
}

TEST(Integration, RipPipelineFlagsVariantDifferences) {
  ExperimentConfig config;
  config.topologies = {topo::Spec{topo::Kind::kLinear, 3}};
  config.seeds = {1};
  config.duration = 240s;
  const auto audit =
      audit_rip({rip::rip_classic_profile(), rip::rip_eager_profile()},
                config, mining::rip_refined_scheme());
  bool poison_flagged = false;
  for (const auto& d : audit.discrepancies)
    if (d.present_in == "rip-eager" &&
        (d.cell.stimulus.find("poison") != std::string::npos ||
         d.cell.response.find("poison") != std::string::npos))
      poison_flagged = true;
  EXPECT_TRUE(poison_flagged);
}

}  // namespace
}  // namespace nidkit::harness
