// End-to-end determinism contract of the result cache: audits and sweeps
// must produce identical reports whether every scenario is freshly
// simulated, replayed from a warm cache, or a mix — across worker counts.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "detect/json.hpp"
#include "harness/experiment.hpp"
#include "harness/stability.hpp"

namespace nidkit::harness {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class CacheIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("nidkit_cache_it_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ExperimentConfig config(std::size_t jobs, bool cached) const {
    ExperimentConfig c;
    c.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                    topo::Spec{topo::Kind::kMesh, 3}};
    c.seeds = {1, 2};
    c.duration = 90s;
    c.jobs = jobs;
    if (cached) c.cache_dir = dir_;
    return c;
  }

  static std::string report_json(const AuditResult& audit) {
    return detect::to_json(audit.named(), audit.discrepancies);
  }

  std::string dir_;
};

TEST_F(CacheIntegrationTest, WarmAuditIsByteIdenticalAndAllHits) {
  const auto profiles = {ospf::frr_profile(), ospf::bird_profile()};
  const auto cold =
      audit_ospf(profiles, config(1, true), mining::ospf_type_scheme());
  EXPECT_EQ(cold.exec.cache_hits, 0u);
  EXPECT_EQ(cold.exec.cache_misses, 8u);  // 2 impls x 2 topos x 2 seeds
  EXPECT_EQ(cold.exec.cache_stores, 8u);

  const auto warm =
      audit_ospf(profiles, config(1, true), mining::ospf_type_scheme());
  EXPECT_EQ(warm.exec.cache_hits, 8u);
  EXPECT_EQ(warm.exec.cache_misses, 0u);
  EXPECT_EQ(warm.exec.tasks_run, 0u);  // nothing was simulated

  const auto uncached =
      audit_ospf(profiles, config(1, false), mining::ospf_type_scheme());
  EXPECT_EQ(uncached.exec.cache_hits, 0u);
  EXPECT_EQ(uncached.exec.cache_misses, 0u);  // cache off, not missing

  EXPECT_EQ(report_json(cold), report_json(warm));
  EXPECT_EQ(report_json(cold), report_json(uncached));
}

TEST_F(CacheIntegrationTest, WorkerCountNeverChangesTheReport) {
  const auto profiles = {ospf::frr_profile(), ospf::bird_profile()};
  const auto reference =
      audit_ospf(profiles, config(1, false), mining::ospf_type_scheme());
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    // Cold (partially warm on the second lap) and warm, at each width.
    const auto cached =
        audit_ospf(profiles, config(jobs, true), mining::ospf_type_scheme());
    EXPECT_EQ(report_json(reference), report_json(cached)) << jobs;
  }
}

TEST_F(CacheIntegrationTest, DuplicateSeedsComputeOnce) {
  auto c = config(2, true);
  c.seeds = {1, 1, 1};  // three identical keys per (impl, topo)
  ExecReport exec;
  const auto set = mine_ospf(ospf::frr_profile(), c,
                             mining::ospf_type_scheme(), &exec);
  EXPECT_GT(set.size(), 0u);
  // 2 topologies x 3 seeds = 6 jobs; each topology's key is computed once
  // and fanned in to the two duplicates.
  EXPECT_EQ(exec.cache_misses, 2u);
  EXPECT_EQ(exec.cache_dedup, 4u);
  EXPECT_EQ(exec.tasks_run, 2u);

  // The dedup must be invisible: identical to the uncached run.
  auto plain = c;
  plain.cache_dir.clear();
  const auto uncached =
      mine_ospf(ospf::frr_profile(), plain, mining::ospf_type_scheme());
  EXPECT_EQ(set.size(), uncached.size());
  for (const auto dir : {mining::RelationDirection::kSendToRecv,
                         mining::RelationDirection::kRecvToSend})
    for (const auto& [cell, stats] : set.cells(dir)) {
      const auto* other = uncached.find(dir, cell);
      ASSERT_NE(other, nullptr) << cell.stimulus << "->" << cell.response;
      EXPECT_EQ(stats.count, other->count);
      EXPECT_EQ(stats.first_seen, other->first_seen);
    }
}

TEST_F(CacheIntegrationTest, SweepWarmRunMatchesColdExactly) {
  auto c = config(2, true);
  c.seeds = {1};
  const std::vector<SimDuration> tds = {0ms, 300ms, 900ms};
  ExecReport cold_exec, warm_exec;
  const auto cold = tdelay_sweep(ospf::frr_profile(), c, tds,
                                 mining::ospf_type_scheme(), &cold_exec);
  const auto warm = tdelay_sweep(ospf::frr_profile(), c, tds,
                                 mining::ospf_type_scheme(), &warm_exec);
  EXPECT_EQ(cold_exec.cache_misses, 6u);  // 3 points x 2 topos
  EXPECT_EQ(warm_exec.cache_hits, 6u);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].tdelay, warm[i].tdelay);
    EXPECT_EQ(cold[i].mined_cells, warm[i].mined_cells);
    EXPECT_EQ(cold[i].unobserved_cells, warm[i].unobserved_cells);
    EXPECT_EQ(cold[i].spurious_cells, warm[i].spurious_cells);
    // Bit-exact double equality is the point: ratios are derived from
    // cached integer partials, never cached themselves.
    EXPECT_EQ(cold[i].precision, warm[i].precision);
    EXPECT_EQ(cold[i].recall, warm[i].recall);
  }
}

TEST_F(CacheIntegrationTest, ReportJsonCarriesCacheObjectOnlyWhenCached) {
  const auto profiles = {ospf::frr_profile(), ospf::bird_profile()};
  const auto cached =
      audit_ospf(profiles, config(2, true), mining::ospf_type_scheme());
  EXPECT_TRUE(cached.exec.cache_enabled);
  const auto cached_json = cached.exec.to_json();
  EXPECT_NE(cached_json.find("\"cache\":{"), std::string::npos);
  EXPECT_NE(cached_json.find("\"misses\":8"), std::string::npos);

  const auto plain =
      audit_ospf(profiles, config(2, false), mining::ospf_type_scheme());
  EXPECT_FALSE(plain.exec.cache_enabled);
  EXPECT_EQ(plain.exec.to_json().find("\"cache\""), std::string::npos);
}

TEST_F(CacheIntegrationTest, StabilityReusesAuditEntries) {
  // Stability over the same (profile, config, scheme) keys as a prior
  // audit replays the audit's cached scenarios instead of re-simulating.
  auto c = config(1, true);
  const auto profiles = {ospf::frr_profile(), ospf::bird_profile()};
  audit_ospf(profiles, c, mining::ospf_type_scheme());

  ExecReport exec;
  const auto report =
      ospf_relation_stability(ospf::frr_profile(), c,
                              mining::ospf_type_scheme(), &exec);
  EXPECT_FALSE(report.empty());
  EXPECT_EQ(exec.cache_hits, 4u);  // frr's 2 topos x 2 seeds, all cached
  EXPECT_EQ(exec.cache_misses, 0u);
}

}  // namespace
}  // namespace nidkit::harness
