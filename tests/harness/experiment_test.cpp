#include "harness/experiment.hpp"

#include <gtest/gtest.h>

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                  topo::Spec{topo::Kind::kMesh, 3}};
  c.seeds = {1};
  c.duration = 120s;
  return c;
}

TEST(Experiment, MineOspfProducesRelations) {
  const auto set = mine_ospf(ospf::frr_profile(), small_config(),
                             mining::ospf_type_scheme());
  EXPECT_GT(set.size(), 5u);
  // The universal handshake relationship: a sent DBD is answered by the
  // peer's DBD, arriving one RTT (= 2*TDelay) later — exactly at the
  // attribution threshold, so it is always observable.
  EXPECT_TRUE(set.has(mining::RelationDirection::kSendToRecv, "DBD", "DBD"));
}

TEST(Experiment, AuditIdenticalProfilesFindsNothing) {
  auto frr2 = ospf::frr_profile();
  frr2.name = "frr-clone";
  const auto audit = audit_ospf({ospf::frr_profile(), frr2}, small_config(),
                                mining::ospf_type_scheme());
  EXPECT_TRUE(audit.discrepancies.empty())
      << "identical implementations must not be flagged";
}

TEST(Experiment, AuditDifferentProfilesFlagsDiscrepancies) {
  const auto audit =
      audit_ospf({ospf::frr_profile(), ospf::bird_profile()}, small_config(),
                 mining::ospf_type_scheme());
  EXPECT_FALSE(audit.discrepancies.empty());
  // Every discrepancy names one of the two implementations on each side.
  for (const auto& d : audit.discrepancies) {
    EXPECT_TRUE(d.present_in == "frr" || d.present_in == "bird");
    EXPECT_TRUE(d.absent_in == "frr" || d.absent_in == "bird");
    EXPECT_NE(d.present_in, d.absent_in);
    EXPECT_GT(d.evidence.count, 0u);
  }
}

TEST(Experiment, AuditIsDeterministic) {
  const auto a = audit_ospf({ospf::frr_profile(), ospf::bird_profile()},
                            small_config(), mining::ospf_type_scheme());
  const auto b = audit_ospf({ospf::frr_profile(), ospf::bird_profile()},
                            small_config(), mining::ospf_type_scheme());
  ASSERT_EQ(a.discrepancies.size(), b.discrepancies.size());
  for (std::size_t i = 0; i < a.discrepancies.size(); ++i) {
    EXPECT_EQ(a.discrepancies[i].cell, b.discrepancies[i].cell);
    EXPECT_EQ(a.discrepancies[i].present_in, b.discrepancies[i].present_in);
  }
}

TEST(Experiment, UnionGrowsWithTopologies) {
  ExperimentConfig one = small_config();
  one.topologies = {topo::Spec{topo::Kind::kLinear, 2}};
  ExperimentConfig two = small_config();
  const auto set1 =
      mine_ospf(ospf::frr_profile(), one, mining::ospf_type_scheme());
  const auto set2 =
      mine_ospf(ospf::frr_profile(), two, mining::ospf_type_scheme());
  EXPECT_GE(set2.size(), set1.size());
  // Union property: everything mined from the subset appears in the
  // superset run.
  for (const auto dir : {mining::RelationDirection::kSendToRecv,
                         mining::RelationDirection::kRecvToSend})
    for (const auto& [cell, stats] : set1.cells(dir))
      EXPECT_NE(set2.find(dir, cell), nullptr)
          << cell.stimulus << "->" << cell.response;
}

TEST(Experiment, ExtensivenessCumulativeIsMonotone) {
  ExperimentConfig c = small_config();
  c.topologies = topo::paper_topologies();
  const auto points = topology_extensiveness(ospf::frr_profile(), c,
                                             mining::ospf_type_scheme());
  ASSERT_EQ(points.size(), 4u);
  std::size_t prev = 0;
  for (const auto& p : points) {
    EXPECT_GE(p.cumulative_cells, prev);
    EXPECT_EQ(p.cumulative_cells, prev + p.new_cells);
    prev = p.cumulative_cells;
  }
  EXPECT_GT(points.front().new_cells, 0u);
}

TEST(Experiment, TdelaySweepReportsEveryPoint) {
  ExperimentConfig c = small_config();
  const std::vector<SimDuration> tds = {0ms, 900ms};
  const auto sweep = tdelay_sweep(ospf::frr_profile(), c, tds,
                                  mining::ospf_type_scheme());
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_EQ(sweep[0].tdelay, SimDuration{0ms});
  EXPECT_EQ(sweep[1].tdelay, SimDuration{900ms});
  for (const auto& p : sweep) {
    EXPECT_GE(p.precision, 0.0);
    EXPECT_LE(p.precision, 1.0);
    EXPECT_GE(p.recall, 0.0);
    EXPECT_LE(p.recall, 1.0);
    EXPECT_GT(p.mined_cells, 0u);
  }
}

TEST(Experiment, MineRipProducesRelations) {
  ExperimentConfig c = small_config();
  c.duration = 240s;
  const auto set = mine_rip(rip::rip_classic_profile(), c,
                            mining::rip_command_scheme());
  EXPECT_GT(set.size(), 0u);
  EXPECT_TRUE(set.has(mining::RelationDirection::kRecvToSend, "Request(full)",
                      "Response"));
}

TEST(Experiment, NamedViewMatchesByImpl) {
  const auto audit =
      audit_ospf({ospf::frr_profile(), ospf::bird_profile()}, small_config(),
                 mining::ospf_type_scheme());
  const auto named = audit.named();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].name, "frr");
  EXPECT_EQ(named[0].relations, &audit.by_impl.at("frr"));
}

}  // namespace
}  // namespace nidkit::harness
