// Determinism regression suite for the parallel experiment executor.
//
// The executor's contract (parallel.hpp) is that for ANY worker count the
// merged relation sets, audit output and report JSON are bit-identical to
// the serial path. These tests pin that contract for every experiment
// entry point that fans out: mine, audit, stability, and the TDelay
// sweep.
#include "harness/parallel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "detect/json.hpp"
#include "harness/experiment.hpp"
#include "harness/stability.hpp"

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;
using mining::RelationDirection;

ExperimentConfig small_config(std::size_t jobs) {
  ExperimentConfig c;
  c.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                  topo::Spec{topo::Kind::kMesh, 3}};
  c.seeds = {1, 2};
  c.duration = 120s;
  c.jobs = jobs;
  return c;
}

void expect_equal_sets(const mining::RelationSet& a,
                       const mining::RelationSet& b) {
  for (const auto dir :
       {RelationDirection::kSendToRecv, RelationDirection::kRecvToSend}) {
    const auto& ca = a.cells(dir);
    const auto& cb = b.cells(dir);
    ASSERT_EQ(ca.size(), cb.size());
    auto ita = ca.begin();
    auto itb = cb.begin();
    for (; ita != ca.end(); ++ita, ++itb) {
      EXPECT_EQ(ita->first, itb->first);
      EXPECT_EQ(ita->second.count, itb->second.count)
          << ita->first.stimulus << "->" << ita->first.response;
      EXPECT_EQ(ita->second.first_seen, itb->second.first_seen);
      EXPECT_EQ(ita->second.example_stimulus, itb->second.example_stimulus);
      EXPECT_EQ(ita->second.example_response, itb->second.example_response);
    }
  }
}

TEST(ParallelExecutor, MineOspfParallelMatchesSerial) {
  const auto serial = mine_ospf(ospf::frr_profile(), small_config(1),
                                mining::ospf_type_scheme());
  const auto parallel = mine_ospf(ospf::frr_profile(), small_config(4),
                                  mining::ospf_type_scheme());
  expect_equal_sets(serial, parallel);
}

TEST(ParallelExecutor, AuditParallelMatchesSerialByteForByte) {
  const std::vector<ospf::BehaviorProfile> impls = {ospf::frr_profile(),
                                                    ospf::bird_profile()};
  const auto serial =
      audit_ospf(impls, small_config(1), mining::ospf_type_scheme());
  const auto parallel =
      audit_ospf(impls, small_config(4), mining::ospf_type_scheme());

  ASSERT_EQ(serial.names, parallel.names);
  for (const auto& name : serial.names)
    expect_equal_sets(serial.by_impl.at(name), parallel.by_impl.at(name));

  ASSERT_EQ(serial.discrepancies.size(), parallel.discrepancies.size());
  for (std::size_t i = 0; i < serial.discrepancies.size(); ++i) {
    EXPECT_EQ(serial.discrepancies[i].cell, parallel.discrepancies[i].cell);
    EXPECT_EQ(serial.discrepancies[i].present_in,
              parallel.discrepancies[i].present_in);
    EXPECT_EQ(serial.discrepancies[i].absent_in,
              parallel.discrepancies[i].absent_in);
    EXPECT_EQ(serial.discrepancies[i].evidence.count,
              parallel.discrepancies[i].evidence.count);
  }

  // The end-to-end artifact: the report JSON must be byte-identical.
  EXPECT_EQ(detect::to_json(serial.named(), serial.discrepancies),
            detect::to_json(parallel.named(), parallel.discrepancies));
}

TEST(ParallelExecutor, OversubscribedJobsStillMatch) {
  // More workers than scenarios: the merge order must still be canonical.
  const auto serial = mine_ospf(ospf::bird_profile(), small_config(1),
                                mining::ospf_type_scheme());
  const auto parallel = mine_ospf(ospf::bird_profile(), small_config(16),
                                  mining::ospf_type_scheme());
  expect_equal_sets(serial, parallel);
}

TEST(ParallelExecutor, StabilityParallelMatchesSerial) {
  const auto serial = ospf_relation_stability(
      ospf::frr_profile(), small_config(1), mining::ospf_type_scheme());
  const auto parallel = ospf_relation_stability(
      ospf::frr_profile(), small_config(4), mining::ospf_type_scheme());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].direction, parallel[i].direction);
    EXPECT_EQ(serial[i].cell, parallel[i].cell);
    EXPECT_EQ(serial[i].seeds_seen, parallel[i].seeds_seen);
    EXPECT_EQ(serial[i].total_count, parallel[i].total_count);
  }
}

TEST(ParallelExecutor, TdelaySweepParallelMatchesSerial) {
  const std::vector<SimDuration> tds = {0ms, 900ms};
  const auto serial = tdelay_sweep(ospf::frr_profile(), small_config(1), tds,
                                   mining::ospf_type_scheme());
  const auto parallel = tdelay_sweep(ospf::frr_profile(), small_config(4),
                                     tds, mining::ospf_type_scheme());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].tdelay, parallel[i].tdelay);
    // Partial sums accumulate in canonical order on one thread, so even
    // the floating-point ratios must match exactly, not approximately.
    EXPECT_EQ(serial[i].precision, parallel[i].precision);
    EXPECT_EQ(serial[i].recall, parallel[i].recall);
    EXPECT_EQ(serial[i].mined_cells, parallel[i].mined_cells);
    EXPECT_EQ(serial[i].unobserved_cells, parallel[i].unobserved_cells);
    EXPECT_EQ(serial[i].spurious_cells, parallel[i].spurious_cells);
  }
}

TEST(ParallelExecutor, ExecReportListsEveryScenarioCanonically) {
  const std::vector<ospf::BehaviorProfile> impls = {ospf::frr_profile(),
                                                    ospf::bird_profile()};
  const auto config = small_config(4);
  const auto audit = audit_ospf(impls, config, mining::ospf_type_scheme());
  const std::size_t expected =
      impls.size() * config.topologies.size() * config.seeds.size();
  ASSERT_EQ(audit.exec.tasks.size(), expected);
  EXPECT_EQ(audit.exec.tasks_run, expected);
  EXPECT_EQ(audit.exec.jobs, 4u);
  for (std::size_t i = 0; i < audit.exec.tasks.size(); ++i) {
    EXPECT_EQ(audit.exec.tasks[i].index, i);
    EXPECT_FALSE(audit.exec.tasks[i].label.empty());
  }
  // Canonical order is (implementation, topology, seed): frr first.
  EXPECT_EQ(audit.exec.tasks.front().label.rfind("frr/", 0), 0u);
  EXPECT_EQ(audit.exec.tasks.back().label.rfind("bird/", 0), 0u);
  // Telemetry JSON is well-formed enough to name every scenario.
  const auto json = audit.exec.to_json();
  EXPECT_NE(json.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(json.find(audit.exec.tasks.front().label), std::string::npos);
  // No cache was configured, so the report must not claim one: the
  // "cache" object only appears on cache-enabled runs.
  EXPECT_FALSE(audit.exec.cache_enabled);
  EXPECT_EQ(json.find("\"cache\""), std::string::npos);
}

TEST(ParallelExecutor, RunIndexedReturnsCanonicalOrder) {
  ParallelExecutor exec(4);
  const auto results = exec.run_indexed(
      40, {}, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 40u);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i], i * i);
  EXPECT_EQ(exec.report().tasks_run, 40u);
  EXPECT_EQ(exec.report().tasks.size(), 40u);
}

TEST(ParallelExecutor, JobsZeroMeansHardware) {
  ParallelExecutor exec(0);
  EXPECT_EQ(exec.jobs(), default_worker_count());
}

TEST(ParallelExecutor, AccumulateRebasesIndices) {
  ExecReport a;
  a.jobs = 2;
  a.tasks_run = 3;
  a.wall_ms = 10;
  a.tasks = {{0, "x", 1}, {1, "y", 2}, {2, "z", 3}};
  ExecReport b;
  b.jobs = 4;
  b.tasks_run = 2;
  b.wall_ms = 5;
  b.max_queue_depth = 7;
  b.tasks = {{0, "p", 4}, {1, "q", 5}};
  a.accumulate(b);
  EXPECT_EQ(a.jobs, 4u);
  EXPECT_EQ(a.tasks_run, 5u);
  EXPECT_EQ(a.wall_ms, 15);
  EXPECT_EQ(a.max_queue_depth, 7u);
  ASSERT_EQ(a.tasks.size(), 5u);
  EXPECT_EQ(a.tasks[3].index, 3u);
  EXPECT_EQ(a.tasks[3].label, "p");
  EXPECT_EQ(a.tasks[4].index, 4u);
}

}  // namespace
}  // namespace nidkit::harness
