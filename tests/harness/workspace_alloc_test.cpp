// Allocation-budget test for the workspace reuse path.
//
// The point of Workspace is that per-scenario setup stops costing heap
// traffic once a worker is warm: reset() rewinds the simulator, network
// and router pools without releasing their storage, and the next
// scenario's topology build + router construction refills the same
// memory. This binary links nidkit_alloc_count, so the budget below is
// exact and a regression (say, a reset() that clear()s a vector by
// swapping in a fresh one) fails here instead of showing up as an
// audit_wall_ms drift three PRs later.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/workspace.hpp"
#include "ospf/router.hpp"
#include "topo/topo.hpp"
#include "util/alloc_count.hpp"
#include "util/rng.hpp"

namespace nidkit::harness {
namespace {

/// One scenario's worth of setup, minus the event loop: exactly what
/// run_scenario does before scheduling work.
void setup_lap(Workspace& ws, std::uint64_t seed) {
  ws.reset(seed);
  const topo::Built built = topo::build(ws.net(), {topo::Kind::kMesh, 5});
  Rng seeder(seed * 0x9e3779b97f4a7c15ULL + 1);
  for (std::size_t i = 0; i < built.nodes.size(); ++i) {
    ospf::RouterConfig cfg;
    const auto b = static_cast<std::uint8_t>(i + 1);
    cfg.router_id = RouterId{b, b, b, b};
    ws.ospf_routers().create(ws.net(), built.nodes[i], cfg, seeder.next());
  }
}

TEST(AllocBudget, WorkspaceResetIsAllocationFree) {
  Workspace ws;
  setup_lap(ws, 1);  // populate pools so reset has real work to do
  const auto before = util::allocation_count();
  ws.reset(2);
  const auto after = util::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "Workspace::reset allocated; storage is supposed to be retained";
}

TEST(AllocBudget, WarmScenarioSetupIsNearlyAllocationFree) {
  Workspace ws;
  // Warm-up: first lap grows node/segment vectors, router slots, rng
  // forks; second lap catches anything sized on first use.
  setup_lap(ws, 1);
  setup_lap(ws, 2);

  const auto before = util::allocation_count();
  setup_lap(ws, 3);
  const auto mid = util::allocation_count();
  setup_lap(ws, 4);
  const auto after = util::allocation_count();

  const auto lap1 = mid - before;
  const auto lap2 = after - mid;
  // Steady state: the per-lap cost must be flat (nothing accumulates)...
  EXPECT_EQ(lap1, lap2) << "setup allocations grow lap over lap";
  // ...and essentially zero. The allowance of 2 is topo::Built's two
  // result vectors, which are returned by value and cannot be pooled.
  EXPECT_LE(lap1, 2u) << "warm scenario setup should not hit the heap";
}

}  // namespace
}  // namespace nidkit::harness
