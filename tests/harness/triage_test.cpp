// Triage pipeline tests: golden-file incident report JSON, the injection
// confirmation rule table, the repro command line, ranking, and the
// end-to-end determinism contract (jobs- and cache-invariance) on a small
// real audit.
#include "harness/triage.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>

namespace nidkit::harness {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

Scenario scenario(topo::Kind kind, std::size_t routers, std::uint64_t seed,
                  SimDuration tdelay, std::vector<SimTime> churn) {
  Scenario s;
  s.topology = topo::Spec{kind, routers};
  s.seed = seed;
  s.tdelay = tdelay;
  s.duration = 180s;
  s.churn_times = std::move(churn);
  return s;
}

detect::Discrepancy discrepancy(mining::RelationDirection dir,
                                const std::string& stimulus,
                                const std::string& response,
                                std::uint64_t count, SimTime first_seen) {
  detect::Discrepancy d;
  d.direction = dir;
  d.cell = {stimulus, response};
  d.present_in = "bird";
  d.absent_in = "frr";
  d.evidence.count = count;
  d.evidence.first_seen = first_seen;
  return d;
}

// ---- Golden-file report JSON ----
//
// The report is the machine-readable triage artifact CI byte-compares, so
// its exact shape is pinned: stable field order, the whole incidents
// array on one line (grep '"incidents":' | cmp), and a trailing newline.

TEST(TriageReport, GoldenJson) {
  TriageResult tr;
  tr.impl_names = {"frr", "bird"};
  tr.scheme = "ospf-greater-lssn";
  tr.flagged = 2;
  tr.total_probes = 5;

  IncidentReport a;
  a.rank = 1;
  a.discrepancy = discrepancy(mining::RelationDirection::kSendToRecv, "LSU",
                              "LSAck+gtSN", 4, SimTime{16506816us});
  a.reproduced = true;
  a.find_probes = 3;
  a.original = scenario(topo::Kind::kMesh, 3, 2, 900ms, {60s, 110s});
  a.minimal = scenario(topo::Kind::kLinear, 2, 1, 450ms, {});
  a.smaller = true;
  a.shrink.probes = 2;
  a.shrink.fixpoint = true;
  a.shrink.trace = {
      ShrinkStep{"topology", "topology mesh-3 -> linear-2", true, true},
      ShrinkStep{"churn", "drop all churn (2 events)", true, true}};
  a.stimulus = "LSU-stale";
  a.confirmation = Confirmation::kConfirmed;
  a.outcome_present.injected = true;
  a.outcome_present.responses = {"LSAck", "LSAck+gtSN"};
  a.outcome_absent.injected = true;
  a.outcome_absent.responses = {"LSAck"};
  tr.incidents.push_back(a);

  IncidentReport b;
  b.rank = 2;
  b.discrepancy = discrepancy(mining::RelationDirection::kRecvToSend, "LSAck",
                              "LSAck+gtSN", 1, SimTime{123us});
  b.find_probes = 3;
  b.reason =
      "no single-scenario reproduction in the audit matrix (cell emerges "
      "only from the merged matrix)";
  tr.incidents.push_back(b);

  const std::string expected =
      "{\"schema\":\"nidt-triage-v1\",\n"
      "\"implementations\":[\"frr\",\"bird\"],\n"
      "\"scheme\":\"ospf-greater-lssn\",\n"
      "\"flagged\":2,\n"
      "\"incidents\":["
      "{\"rank\":1,\"direction\":\"send->recv\",\"stimulus\":\"LSU\","
      "\"response\":\"LSAck+gtSN\",\"present_in\":\"bird\","
      "\"absent_in\":\"frr\",\"count\":4,\"first_seen_us\":16506816,"
      "\"reproduced\":true,\"find_probes\":3,"
      "\"original\":{\"topology\":\"mesh-3\",\"seed\":2,\"tdelay_ms\":900,"
      "\"duration_s\":180,\"churn_s\":[60,110]},"
      "\"minimal\":{\"topology\":\"linear-2\",\"seed\":1,\"tdelay_ms\":450,"
      "\"duration_s\":180,\"churn_s\":[]},"
      "\"smaller\":true,"
      "\"shrink\":{\"probes\":2,\"fixpoint\":true,\"budget_exhausted\":false,"
      "\"steps\":[{\"phase\":\"topology\","
      "\"action\":\"topology mesh-3 -> linear-2\",\"reproduced\":true,"
      "\"kept\":true},{\"phase\":\"churn\","
      "\"action\":\"drop all churn (2 events)\",\"reproduced\":true,"
      "\"kept\":true}]},"
      "\"injection\":{\"stimulus\":\"LSU-stale\",\"verdict\":\"confirmed\","
      "\"reason\":\"\",\"present_responses\":[\"LSAck\",\"LSAck+gtSN\"],"
      "\"absent_responses\":[\"LSAck\"]},"
      "\"repro\":\"nidt audit --impls bird,frr --scheme ospf-greater-lssn "
      "--topos linear-2 --seeds 1 --tdelay-ms 450 --duration-s 180 "
      "--churn-s none --format json\"},"
      "{\"rank\":2,\"direction\":\"recv->send\",\"stimulus\":\"LSAck\","
      "\"response\":\"LSAck+gtSN\",\"present_in\":\"bird\","
      "\"absent_in\":\"frr\",\"count\":1,\"first_seen_us\":123,"
      "\"reproduced\":false,\"find_probes\":3,\"verdict\":\"unconfirmed\","
      "\"reason\":\"no single-scenario reproduction in the audit matrix "
      "(cell emerges only from the merged matrix)\"}"
      "],\n"
      "\"summary\":{\"incidents\":2,\"reproduced\":1,\"confirmed\":1,"
      "\"refuted\":0,\"unconfirmed\":1,\"probes\":5}}\n";
  EXPECT_EQ(triage_report_json(tr), expected);
}

TEST(TriageReport, IncidentsArrayOccupiesOneLine) {
  TriageResult tr;
  tr.impl_names = {"frr", "bird"};
  tr.scheme = "ospf-greater-lssn";
  IncidentReport inc;
  inc.rank = 1;
  inc.discrepancy = discrepancy(mining::RelationDirection::kSendToRecv,
                                "LSU", "LSAck+gtSN", 4, SimTime{1us});
  inc.reproduced = true;
  inc.original = scenario(topo::Kind::kMesh, 3, 2, 900ms, {60s, 110s});
  inc.minimal = scenario(topo::Kind::kLinear, 2, 1, 450ms, {});
  inc.shrink.trace = {
      ShrinkStep{"topology", "topology mesh-3 -> linear-2", true, true}};
  tr.incidents.push_back(inc);
  const std::string report = triage_report_json(tr);
  std::size_t lines_with_incidents = 0;
  std::istringstream is(report);
  std::string line;
  while (std::getline(is, line))
    if (line.rfind("\"incidents\":[", 0) == 0) {
      ++lines_with_incidents;
      EXPECT_NE(line.find("\"repro\":"), std::string::npos)
          << "the whole array must sit on the incidents line";
      EXPECT_EQ(line.back(), ',') << "array closes on its own line-member";
    }
  EXPECT_EQ(lines_with_incidents, 1u)
      << "exactly one line starts the incidents array ("
         "the summary object's \"incidents\" count must not be counted)";
}

// ---- Injection confirmation rule table ----

struct ClassifyCase {
  const char* name;
  std::string stimulus;
  bool present_injected;
  std::set<std::string> present_responses;
  bool absent_injected;
  std::set<std::string> absent_responses;
  Confirmation want;
  std::string reason_contains;
};

class TriageClassify : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(TriageClassify, Table) {
  const auto& c = GetParam();
  const auto d = discrepancy(mining::RelationDirection::kSendToRecv, "LSU",
                             "LSAck+gtSN", 4, SimTime{1us});
  InjectionOutcome present, absent;
  present.injected = c.present_injected;
  present.responses = c.present_responses;
  absent.injected = c.absent_injected;
  absent.responses = c.absent_responses;
  std::string reason = "stale";
  EXPECT_EQ(classify_injection(d, c.stimulus, present, absent, reason),
            c.want);
  if (c.reason_contains.empty())
    EXPECT_TRUE(reason.empty()) << reason;
  else
    EXPECT_NE(reason.find(c.reason_contains), std::string::npos) << reason;
}

INSTANTIATE_TEST_SUITE_P(
    Rules, TriageClassify,
    ::testing::Values(
        // Unsupported stimulus classes degrade to unconfirmed with a
        // reason — never an error.
        ClassifyCase{"unsupported", "", false, {}, false, {},
                     Confirmation::kUnconfirmed,
                     "no injection synthesizer for stimulus class 'LSU'"},
        // Adjacency-never-formed outcomes are reported, not dropped, and
        // name the side that failed.
        ClassifyCase{"present_no_adjacency", "LSU-stale", false, {}, true,
                     std::set<std::string>{"LSAck"},
                     Confirmation::kUnconfirmed,
                     "adjacency never formed probing bird"},
        ClassifyCase{"absent_no_adjacency", "LSU-stale", true,
                     std::set<std::string>{"LSAck"}, false, {},
                     Confirmation::kUnconfirmed,
                     "adjacency never formed probing frr"},
        ClassifyCase{"isolating_confirms", "LSU-stale", true,
                     std::set<std::string>{"LSAck", "LSAck+gtSN"}, true,
                     std::set<std::string>{"LSAck"},
                     Confirmation::kConfirmed, ""},
        ClassifyCase{"identical_refutes", "LSU-stale", true,
                     std::set<std::string>{"LSAck"}, true,
                     std::set<std::string>{"LSAck"}, Confirmation::kRefuted,
                     "respond identically"},
        ClassifyCase{"non_isolating_difference", "LSU-stale", true,
                     std::set<std::string>{"LSU"}, true,
                     std::set<std::string>{"LSAck", "LSAck+gtSN"},
                     Confirmation::kUnconfirmed, "do not isolate"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(TriageClassify, RefinedResponseMatchesBaseProbeLabel) {
  // A state-refined cell like "LSAck+gtSN@Full" confirms via the probe's
  // unrefined "LSAck+gtSN" observation.
  auto d = discrepancy(mining::RelationDirection::kSendToRecv, "LSU",
                       "LSAck+gtSN@Full", 4, SimTime{1us});
  InjectionOutcome present, absent;
  present.injected = absent.injected = true;
  present.responses = {"LSAck", "LSAck+gtSN"};
  absent.responses = {"LSAck"};
  std::string reason;
  EXPECT_EQ(classify_injection(d, "LSU-stale", present, absent, reason),
            Confirmation::kConfirmed);
}

// ---- Repro command ----

TEST(TriageRepro, CommandRoundTripsScenarioKnobs) {
  const auto s = scenario(topo::Kind::kRing, 4, 7, 750ms, {60s, 110s});
  EXPECT_EQ(repro_command(s, "bird", "frr", "ospf-greater-lssn"),
            "nidt audit --impls bird,frr --scheme ospf-greater-lssn "
            "--topos ring-4 --seeds 7 --tdelay-ms 750 --duration-s 180 "
            "--churn-s 60,110 --format json");
}

TEST(TriageRepro, EmptyChurnSpelledNone) {
  const auto s = scenario(topo::Kind::kLinear, 2, 1, 900ms, {});
  const auto cmd = repro_command(s, "bird", "frr", "gtsn");
  EXPECT_NE(cmd.find("--churn-s none"), std::string::npos) << cmd;
}

// ---- End-to-end determinism and acceptance ----

class TriageEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("nidkit_triage_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  TriageConfig config(std::size_t jobs, bool cached) const {
    TriageConfig tc;
    tc.experiment.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                                topo::Spec{topo::Kind::kMesh, 3}};
    tc.experiment.seeds = {1, 2};
    tc.experiment.duration = 90s;
    tc.experiment.jobs = jobs;
    if (cached) tc.experiment.cache_dir = dir_;
    return tc;
  }

  std::string dir_;
};

TEST_F(TriageEndToEnd, ReportIsJobsAndCacheInvariant) {
  const std::vector<ospf::BehaviorProfile> impls = {ospf::frr_profile(),
                                                    ospf::bird_profile()};
  const auto serial = triage_report_json(triage_ospf(impls, config(1, false)));
  const auto wide = triage_report_json(triage_ospf(impls, config(4, false)));
  EXPECT_EQ(serial, wide);
  const auto cold = triage_report_json(triage_ospf(impls, config(4, true)));
  const auto warm = triage_report_json(triage_ospf(impls, config(4, true)));
  EXPECT_EQ(serial, cold);
  EXPECT_EQ(cold, warm);
}

TEST_F(TriageEndToEnd, IncidentsRankedAndAccounted) {
  const std::vector<ospf::BehaviorProfile> impls = {ospf::frr_profile(),
                                                    ospf::bird_profile()};
  auto tc = config(4, false);
  const auto result = triage_ospf(impls, tc);
  ASSERT_EQ(result.incidents.size(), result.flagged);
  std::size_t probes = 0;
  int prev_order = -1;
  for (std::size_t i = 0; i < result.incidents.size(); ++i) {
    const auto& inc = result.incidents[i];
    EXPECT_EQ(inc.rank, i + 1);
    EXPECT_LE(inc.find_probes + inc.shrink.probes, tc.max_probes);
    probes += inc.find_probes + inc.shrink.probes;
    // Ranking puts confirmed before unconfirmed before refuted.
    const int order = inc.confirmation == Confirmation::kConfirmed ? 0
                      : inc.confirmation == Confirmation::kUnconfirmed ? 1
                                                                       : 2;
    EXPECT_GE(order, prev_order);
    prev_order = order;
    if (inc.reproduced) {
      // A minimized scenario is never larger than its original, and a
      // finished shrink is a verified fixpoint.
      EXPECT_LE(inc.minimal.topology.routers, inc.original.topology.routers);
      EXPECT_LE(inc.minimal.churn_times.size(),
                inc.original.churn_times.size());
      if (!inc.shrink.budget_exhausted) EXPECT_TRUE(inc.shrink.fixpoint);
    } else {
      EXPECT_EQ(inc.confirmation, Confirmation::kUnconfirmed);
      EXPECT_FALSE(inc.reason.empty());
    }
  }
  EXPECT_EQ(result.total_probes, probes);
}

TEST_F(TriageEndToEnd, MaxIncidentsCapsTriage) {
  const std::vector<ospf::BehaviorProfile> impls = {ospf::frr_profile(),
                                                    ospf::bird_profile()};
  auto tc = config(4, false);
  tc.max_incidents = 1;
  const auto result = triage_ospf(impls, tc);
  if (result.flagged > 0) EXPECT_EQ(result.incidents.size(), 1u);
  EXPECT_GE(result.flagged, result.incidents.size());
}

}  // namespace
}  // namespace nidkit::harness
