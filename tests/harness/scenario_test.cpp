#include "harness/scenario.hpp"

#include <gtest/gtest.h>

#include "mining/miner.hpp"

namespace nidkit::harness {
namespace {

using namespace std::chrono_literals;

TEST(Scenario, DefaultOspfScenarioConverges) {
  Scenario s;
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.routes_consistent);
  EXPECT_EQ(r.routers, 2u);
  EXPECT_GT(r.log.size(), 0u);
  EXPECT_EQ(r.ospf_totals.decode_failures, 0u);
}

TEST(Scenario, DeterministicForSameSeed) {
  Scenario s;
  s.topology = {topo::Kind::kMesh, 3};
  const auto a = run_scenario(s);
  const auto b = run_scenario(s);
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_EQ(a.log.records()[i].time, b.log.records()[i].time);
    EXPECT_EQ(a.log.records()[i].node, b.log.records()[i].node);
    EXPECT_EQ(a.log.records()[i].bytes, b.log.records()[i].bytes);
  }
}

TEST(Scenario, DifferentSeedsDiverge) {
  Scenario s;
  s.seed = 1;
  const auto a = run_scenario(s);
  s.seed = 2;
  const auto b = run_scenario(s);
  // Traces must differ somewhere (timing at minimum).
  bool differs = a.log.size() != b.log.size();
  for (std::size_t i = 0; !differs && i < a.log.size(); ++i)
    differs = a.log.records()[i].time != b.log.records()[i].time;
  EXPECT_TRUE(differs);
}

class ScenarioTopologies : public ::testing::TestWithParam<topo::Spec> {};

TEST_P(ScenarioTopologies, ConvergesWithBothProfiles) {
  for (const auto& profile : {ospf::frr_profile(), ospf::bird_profile()}) {
    Scenario s;
    s.topology = GetParam();
    s.ospf_profile = profile;
    const auto r = run_scenario(s);
    EXPECT_TRUE(r.converged) << GetParam().name() << " " << profile.name;
    EXPECT_TRUE(r.routes_consistent)
        << GetParam().name() << " " << profile.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperAndExtended, ScenarioTopologies,
    ::testing::ValuesIn(topo::extended_topologies()),
    [](const auto& info) {
      auto name = info.param.name();
      for (auto& c : name)
        if (c == '-') c = '_';  // gtest names must be identifiers
      return name;
    });

TEST(Scenario, TDelayShapesTraceTiming) {
  // With TDelay=900 ms, no response can arrive sooner than 900 ms after
  // the stimulating send; check receive timestamps against send times.
  Scenario s;
  s.link_jitter = 0ms;
  const auto r = run_scenario(s);
  for (const auto& rec : r.log.records()) {
    if (rec.is_send() || rec.caused_by == 0) continue;
    // Find the matching send on the peer.
    for (const auto& peer : r.log.records()) {
      if (!peer.is_send() || peer.frame_id != rec.frame_id) continue;
      EXPECT_GE(rec.time - peer.time, SimDuration{900ms});
    }
  }
}

TEST(Scenario, ChurnInjectsExternals) {
  Scenario s;
  s.churn_times = {60s, 90s, 120s};
  const auto with_churn = run_scenario(s);
  s.churn_times = {};
  const auto without = run_scenario(s);
  EXPECT_GT(with_churn.ospf_totals.lsa_installs,
            without.ospf_totals.lsa_installs);
}

TEST(Scenario, StateProbeAnnotatesRecords) {
  Scenario s;
  const auto r = run_scenario(s);
  bool any_probed = false;
  for (const auto& rec : r.log.records())
    if (rec.observer_state >= 0) any_probed = true;
  EXPECT_TRUE(any_probed);
}

TEST(Scenario, StateProbeOffLeavesUnknown) {
  Scenario s;
  s.state_probe = false;
  const auto r = run_scenario(s);
  for (const auto& rec : r.log.records())
    EXPECT_EQ(rec.observer_state, -1);
}

TEST(Scenario, RipScenarioConverges) {
  Scenario s;
  s.protocol = Protocol::kRip;
  s.rip_profile = rip::rip_classic_profile();
  s.topology = {topo::Kind::kLinear, 3};
  s.duration = 240s;
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.rip_totals.tx_responses, 0u);
  EXPECT_GT(r.rip_totals.routes_learned, 0u);
}

TEST(Scenario, LossCountersExposed) {
  Scenario s;
  s.topology = {topo::Kind::kMesh, 3};  // enough traffic for drops to occur
  s.link_loss = 0.2;
  const auto r = run_scenario(s);
  EXPECT_GT(r.frames_dropped, 0u);
  EXPECT_GT(r.frames_delivered, 0u);
}

TEST(Scenario, ExpectedAdjacencyEndpoints) {
  EXPECT_EQ(expected_adjacency_endpoints({topo::Kind::kLinear, 2}), 2u);
  EXPECT_EQ(expected_adjacency_endpoints({topo::Kind::kLinear, 5}), 8u);
  EXPECT_EQ(expected_adjacency_endpoints({topo::Kind::kMesh, 5}), 20u);
  EXPECT_EQ(expected_adjacency_endpoints({topo::Kind::kRing, 4}), 8u);
  EXPECT_EQ(expected_adjacency_endpoints({topo::Kind::kStar, 5}), 8u);
  EXPECT_EQ(expected_adjacency_endpoints({topo::Kind::kLan, 4}), 10u);
}

TEST(Scenario, ConvergenceTimeRecorded) {
  Scenario s;
  const auto r = run_scenario(s);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.convergence_time.count(), 0);
  EXPECT_LT(r.convergence_time, s.duration);
}

TEST(Scenario, ConvergenceTimeUnsetWhenPartitioned) {
  Scenario s;
  s.duration = 30s;  // too short: hello discovery alone takes ~10 s and
  s.tdelay = 5s;     // a 10 s RTT stalls the exchange far past 30 s
  const auto r = run_scenario(s);
  EXPECT_FALSE(r.converged);
  EXPECT_LT(r.convergence_time.count(), 0);
}

TEST(Scenario, ProvenanceCoversRealTraffic) {
  // A healthy scenario must contain both spontaneous (timer) and caused
  // (response) traffic — the ground truth the sweep bench relies on.
  Scenario s;
  const auto r = run_scenario(s);
  std::size_t caused = 0, spontaneous = 0;
  for (const auto& rec : r.log.records()) {
    if (!rec.is_send()) continue;
    (rec.caused_by != 0 ? caused : spontaneous) += 1;
  }
  EXPECT_GT(caused, 0u);
  EXPECT_GT(spontaneous, 0u);
}

}  // namespace
}  // namespace nidkit::harness
