// CLI tests: argument parsing and end-to-end subcommand runs through the
// stream-parameterized entry point.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cache/key.hpp"
#include "cache/store.hpp"
#include "harness/scenario.hpp"

namespace nidkit::cli {
namespace {

struct Run {
  int code;
  std::string out;
  std::string err;
};

Run run(std::initializer_list<std::string> tokens) {
  std::ostringstream out, err;
  const int code = run_cli(std::vector<std::string>(tokens), out, err);
  return Run{code, out.str(), err.str()};
}

TEST(ParseArgs, CommandAndFlags) {
  std::ostringstream err;
  const auto args = parse_args({"audit", "--impls", "frr,bird",
                                "--tdelay-ms", "900"},
                               err);
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->command, "audit");
  EXPECT_EQ(args->get("impls", ""), "frr,bird");
  EXPECT_EQ(args->get_int("tdelay-ms"), 900);
  EXPECT_EQ(args->get("missing", "fallback"), "fallback");
  EXPECT_FALSE(args->get_int("impls").has_value());  // not numeric
}

TEST(ParseArgs, FlagWithoutValueRejected) {
  std::ostringstream err;
  EXPECT_FALSE(parse_args({"audit", "--impls"}, err).has_value());
  EXPECT_NE(err.str().find("needs a value"), std::string::npos);
}

TEST(ParseArgs, StrayPositionalRejected) {
  std::ostringstream err;
  EXPECT_FALSE(parse_args({"audit", "oops"}, err).has_value());
}

TEST(ParseArgs, EmptyIsHelp) {
  const auto r = run({});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage"), std::string::npos);
}

TEST(SplitList, Splits) {
  EXPECT_EQ(split_list("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list(""), std::vector<std::string>{});
  EXPECT_EQ(split_list("x"), std::vector<std::string>{"x"});
  EXPECT_EQ(split_list("a,,b"), (std::vector<std::string>{"a", "b"}));
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run({"frobnicate"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, AuditSmallRunPrintsMatrixAndFlags) {
  const auto r = run({"audit", "--impls", "frr,bird", "--topos", "linear-2",
                      "--seeds", "1", "--duration-s", "120"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Snd("), std::string::npos);
  EXPECT_NE(r.out.find("frr"), std::string::npos);
  EXPECT_NE(r.out.find("bird"), std::string::npos);
}

TEST(Cli, BgpAuditFlagsTheIncident) {
  const auto r = run({"audit", "--protocol", "bgp", "--topos", "linear-2",
                      "--seeds", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("UPDATE+longpath -> NOTIFICATION"),
            std::string::npos);
  EXPECT_NE(r.out.find("bgp-fragile"), std::string::npos);
}

TEST(Cli, RipAuditFlagsPoison) {
  const auto r = run({"audit", "--protocol", "rip", "--topos", "linear-3",
                      "--seeds", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Response(poison)"), std::string::npos);
}

TEST(Cli, AuditRejectsUnknownImplementation) {
  const auto r = run({"audit", "--impls", "frr,quagga"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("unknown OSPF implementation"), std::string::npos);
}

TEST(Cli, AuditRejectsSingleImplementation) {
  const auto r = run({"audit", "--impls", "frr"});
  EXPECT_NE(r.code, 0);
}

TEST(Cli, AuditRejectsBadTopology) {
  const auto r = run({"audit", "--impls", "frr,bird", "--topos", "moebius-3"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("unknown topology"), std::string::npos);
}

TEST(Cli, TraceThenMineRoundTrips) {
  const std::string path = "cli_test_trace.tmp";
  const auto t = run({"trace", "--impl", "frr", "--topo", "linear-2",
                      "--duration-s", "60", "--out", path});
  EXPECT_EQ(t.code, 0) << t.err;
  EXPECT_NE(t.out.find("wrote"), std::string::npos);

  const auto m = run({"mine", "--in", path});
  EXPECT_EQ(m.code, 0) << m.err;
  EXPECT_NE(m.out.find("send->recv"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, TraceToStdoutIsLoadableFormat) {
  const auto t = run({"trace", "--impl", "bird", "--topo", "linear-2",
                      "--duration-s", "60"});
  EXPECT_EQ(t.code, 0);
  EXPECT_EQ(t.out.rfind("nidkit-trace v1", 0), 0u);
}

TEST(Cli, MineMissingFileFails) {
  const auto r = run({"mine", "--in", "/nonexistent/trace.txt"});
  EXPECT_NE(r.code, 0);
}

TEST(Cli, InjectReportsResponses) {
  const auto r = run({"inject", "--target", "bird", "--stimulus",
                      "LSU-stale"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("LSAck+gtSN"), std::string::npos);
}

TEST(Cli, InjectRejectsUnknownStimulus) {
  const auto r = run({"inject", "--target", "frr", "--stimulus", "Nonsense"});
  EXPECT_NE(r.code, 0);
}

TEST(Cli, ValidateConfirmsFlagsByInjection) {
  const auto r = run({"validate", "--impls", "frr,bird", "--topos",
                      "linear-2,mesh-3", "--seeds", "1", "--duration-s",
                      "120"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mined"), std::string::npos);
  EXPECT_NE(r.out.find("CONFIRMED"), std::string::npos);
  EXPECT_NE(r.out.find("confirmed by injection"), std::string::npos);
}

TEST(Cli, SweepPrintsSeries) {
  const auto r = run({"sweep", "--impl", "frr", "--max-ms", "300",
                      "--step-ms", "150"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("tdelay_ms"), std::string::npos);
  // 0, 150, 300 => header + 3 rows.
  EXPECT_EQ(std::count(r.out.begin(), r.out.end(), '\n'), 4);
}

TEST(Cli, StabilityPrintsSeedFractions) {
  const auto r = run({"stability", "--impl", "frr", "--topos", "linear-2",
                      "--seeds", "1,2", "--duration-s", "120"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("2/2"), std::string::npos);
}

TEST(ParseArgs, CacheSubcommandAndSwitches) {
  std::ostringstream err;
  const auto args =
      parse_args({"cache", "prune", "--cache-dir", "/tmp/c", "--no-cache"},
                 err);
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->command, "cache");
  EXPECT_EQ(args->subcommand, "prune");
  EXPECT_TRUE(args->has("no-cache"));  // boolean switch, no value consumed
  EXPECT_EQ(args->get("cache-dir", ""), "/tmp/c");
  // Other commands still reject a second positional.
  EXPECT_FALSE(parse_args({"audit", "prune"}, err).has_value());
}

TEST(Cli, CacheNeedsADirectory) {
  const auto r = run({"cache", "ls", "--no-cache"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("cache-dir"), std::string::npos);
}

TEST(Cli, CacheRejectsUnknownAction) {
  const auto r = run({"cache", "frobnicate", "--cache-dir", "cli_cache.tmp"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("unknown cache action"), std::string::npos);
}

TEST(Cli, WarmAuditIsByteIdenticalAndMaintainable) {
  const std::string dir = "cli_cache_test.tmp";
  run({"cache", "clear", "--cache-dir", dir});
  const std::initializer_list<std::string> audit = {
      "audit", "--impls", "frr,bird", "--topos", "linear-2", "--seeds", "1",
      "--duration-s", "90", "--format", "json", "--cache-dir", dir};
  const auto cold = run(audit);
  EXPECT_EQ(cold.code, 0) << cold.err;
  const auto warm = run(audit);
  EXPECT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(cold.out, warm.out);

  const auto ls = run({"cache", "ls", "--cache-dir", dir});
  EXPECT_EQ(ls.code, 0) << ls.err;
  EXPECT_NE(ls.out.find("2 entries"), std::string::npos);
  EXPECT_NE(ls.out.find("hits"), std::string::npos);  // reuse column

  const auto cleared = run({"cache", "clear", "--cache-dir", dir});
  EXPECT_EQ(cleared.code, 0);
  EXPECT_NE(cleared.out.find("cleared 2"), std::string::npos);
  const auto empty = run({"cache", "ls", "--cache-dir", dir});
  EXPECT_NE(empty.out.find("0 entries"), std::string::npos);
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

TEST(Cli, StatsOutMetricsOutAndTraceOutWriteFiles) {
  const std::string stats = "cli_stats_out.tmp";
  const std::string metrics = "cli_metrics_out.tmp";
  const std::string trace = "cli_trace_out.tmp";
  const auto r = run({"audit", "--impls", "frr,bird", "--topos", "linear-2",
                      "--seeds", "1", "--duration-s", "90", "--stats-out",
                      stats, "--metrics-out", metrics, "--trace-out", trace});
  EXPECT_EQ(r.code, 0) << r.err;

  const auto stats_json = slurp(stats);
  EXPECT_NE(stats_json.find("\"tasks_run\":"), std::string::npos);
  // The obs session was live for this run, so the executor telemetry
  // carries the headline metrics object too.
  EXPECT_NE(stats_json.find("\"metrics\":{\"sim_events\":"),
            std::string::npos);
  // No cache configured: the stats JSON must not claim one.
  EXPECT_EQ(stats_json.find("\"cache\""), std::string::npos);

  const auto metrics_json = slurp(metrics);
  EXPECT_EQ(metrics_json.rfind("{\n\"version\":1,\n", 0), 0u);
  EXPECT_NE(metrics_json.find("\"sim\":{"), std::string::npos);
  EXPECT_NE(metrics_json.find("\"ospf.fsm_transitions\":"),
            std::string::npos);
  EXPECT_NE(metrics_json.find("\"wall\":{"), std::string::npos);

  const auto trace_json = slurp(trace);
  EXPECT_NE(trace_json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"name\":\"scenario\""), std::string::npos);

  std::remove(stats.c_str());
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}

TEST(Cli, StatsFlagStillWritesItsOwnFile) {
  const std::string stats = "cli_stats_flag.tmp";
  const auto r = run({"sweep", "--impl", "frr", "--max-ms", "0",
                      "--step-ms", "150", "--stats", stats});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(slurp(stats).find("\"tasks_run\":"), std::string::npos);
  std::remove(stats.c_str());
}

TEST(Cli, CacheLsJsonListsEntries) {
  const std::string dir = "cli_cache_json_test.tmp";
  run({"cache", "clear", "--cache-dir", dir});
  const auto audit = run({"audit", "--impls", "frr,bird", "--topos",
                          "linear-2", "--seeds", "1", "--duration-s", "90",
                          "--cache-dir", dir});
  EXPECT_EQ(audit.code, 0) << audit.err;

  const auto ls = run({"cache", "ls", "--json", "--cache-dir", dir});
  EXPECT_EQ(ls.code, 0) << ls.err;
  EXPECT_EQ(ls.out.rfind("[{", 0), 0u);
  EXPECT_NE(ls.out.find("\"key\":\""), std::string::npos);
  EXPECT_NE(ls.out.find("\"kind\":\"mined\""), std::string::npos);
  EXPECT_NE(ls.out.find("\"bytes\":"), std::string::npos);
  EXPECT_NE(ls.out.find("\"hits\":0"), std::string::npos);
  EXPECT_NE(ls.out.find("\"valid\":true"), std::string::npos);

  // A warm re-run consumes every entry once; the hit counter shows it.
  const auto warm = run({"audit", "--impls", "frr,bird", "--topos",
                         "linear-2", "--seeds", "1", "--duration-s", "90",
                         "--cache-dir", dir});
  EXPECT_EQ(warm.code, 0) << warm.err;
  const auto warm_ls = run({"cache", "ls", "--json", "--cache-dir", dir});
  EXPECT_NE(warm_ls.out.find("\"hits\":1"), std::string::npos);
  EXPECT_EQ(warm_ls.out.find("\"hits\":0"), std::string::npos);

  run({"cache", "clear", "--cache-dir", dir});
  const auto empty = run({"cache", "ls", "--json", "--cache-dir", dir});
  EXPECT_EQ(empty.out, "[]\n");
}

TEST(Cli, TriageReportIsJobsAndCacheInvariant) {
  const std::string dir = "cli_triage_cache.tmp";
  const std::string rep_a = "cli_triage_a.tmp";
  const std::string rep_b = "cli_triage_b.tmp";
  run({"cache", "clear", "--cache-dir", dir});

  const auto cold = run({"triage", "--impls", "frr,bird", "--topos",
                         "linear-2,mesh-3", "--seeds", "1,2", "--duration-s",
                         "90", "--jobs", "1", "--cache-dir", dir,
                         "--report-out", rep_a});
  EXPECT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.out.find("flagged"), std::string::npos);

  // Warm cache, different worker count: the report must not move a byte.
  const auto warm = run({"triage", "--impls", "frr,bird", "--topos",
                         "linear-2,mesh-3", "--seeds", "1,2", "--duration-s",
                         "90", "--jobs", "4", "--cache-dir", dir,
                         "--report-out", rep_b});
  EXPECT_EQ(warm.code, 0) << warm.err;

  const auto report_a = slurp(rep_a);
  const auto report_b = slurp(rep_b);
  ASSERT_FALSE(report_a.empty());
  EXPECT_EQ(report_a, report_b);
  EXPECT_NE(report_a.find("\"nidt-triage-v1\""), std::string::npos);
  EXPECT_NE(report_a.find("\"incidents\":["), std::string::npos);

  run({"cache", "clear", "--cache-dir", dir});
  std::remove(rep_a.c_str());
  std::remove(rep_b.c_str());
}

TEST(Cli, TriageJsonFormatPrintsTheReport) {
  const auto r = run({"triage", "--impls", "frr,bird", "--topos",
                      "linear-2,mesh-3", "--seeds", "1,2", "--duration-s",
                      "90", "--format", "json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.rfind("{\"schema\":\"nidt-triage-v1\",\n", 0), 0u);
  EXPECT_NE(r.out.find("\"repro\":\"nidt audit"), std::string::npos);
}

TEST(Cli, TriageRejectsBadBudget) {
  const auto r = run({"triage", "--impls", "frr,bird", "--max-probes", "0"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("max-probes"), std::string::npos);
}

TEST(Cli, ChurnFlagAcceptsSecondsAndNone) {
  const auto none = run({"audit", "--impls", "frr,bird", "--topos",
                         "linear-2", "--seeds", "1", "--duration-s", "90",
                         "--churn-s", "none"});
  EXPECT_EQ(none.code, 0) << none.err;

  const auto timed = run({"audit", "--impls", "frr,bird", "--topos",
                          "linear-2", "--seeds", "1", "--duration-s", "90",
                          "--churn-s", "40,70"});
  EXPECT_EQ(timed.code, 0) << timed.err;

  const auto bad = run({"audit", "--impls", "frr,bird", "--churn-s", "soon"});
  EXPECT_NE(bad.code, 0);
  EXPECT_NE(bad.err.find("churn-s"), std::string::npos);
}

TEST(Cli, CoverageSmokePrintsSaturationReport) {
  const auto r = run({"coverage", "--impls", "frr,bird", "--topos",
                      "linear-2", "--seeds", "1", "--duration-s", "90"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("coverage: "), std::string::npos);
  EXPECT_NE(r.out.find("/120 features over 2 scenarios"), std::string::npos);
  EXPECT_NE(r.out.find("  fsm "), std::string::npos);
  EXPECT_NE(r.out.find("  pair "), std::string::npos);
  EXPECT_NE(r.out.find("saturation:"), std::string::npos);
  EXPECT_NE(r.out.find("fsm.ospf.Down>Init"), std::string::npos);
  EXPECT_NE(r.out.find("lsa.originate"), std::string::npos);
}

TEST(Cli, CoverageJsonIsJobsInvariant) {
  const std::initializer_list<std::string> base = {
      "coverage", "--impls", "frr,bird", "--topos", "linear-2", "--seeds",
      "1", "--duration-s", "90", "--format", "json"};
  auto serial = std::vector<std::string>(base);
  serial.insert(serial.end(), {"--jobs", "1"});
  auto wide = std::vector<std::string>(base);
  wide.insert(wide.end(), {"--jobs", "4"});

  std::ostringstream out_a, err_a, out_b, err_b;
  EXPECT_EQ(run_cli(serial, out_a, err_a), 0) << err_a.str();
  EXPECT_EQ(run_cli(wide, out_b, err_b), 0) << err_b.str();
  EXPECT_EQ(out_a.str(), out_b.str());
  EXPECT_EQ(out_a.str().rfind("{\n\"version\":1,\n", 0), 0u);
  EXPECT_NE(out_a.str().find("\"cov\":{"), std::string::npos);
}

TEST(Cli, CoverageOutWritesOneLineCovSection) {
  const std::string path = "cli_coverage_out.tmp";
  const auto r = run({"audit", "--impls", "frr,bird", "--topos", "linear-2",
                      "--seeds", "1", "--duration-s", "90", "--coverage-out",
                      path});
  EXPECT_EQ(r.code, 0) << r.err;

  const auto doc = slurp(path);
  EXPECT_EQ(doc.rfind("{\n\"version\":1,\n", 0), 0u);
  // The whole "cov" section occupies exactly one line, so CI can
  // `grep '"cov":' | cmp` across jobs/cache laps (same contract as the
  // --metrics-out "sim" section).
  std::size_t cov_lines = 0;
  std::istringstream lines(doc);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("\"cov\":{", 0) == 0) {
      ++cov_lines;
      EXPECT_NE(line.find("\"universe\":120"), std::string::npos);
      EXPECT_NE(line.find("\"curve\":["), std::string::npos);
      EXPECT_EQ(line.back(), '}');
    }
  }
  EXPECT_EQ(cov_lines, 1u);
  std::remove(path.c_str());
}

TEST(Cli, CacheLsJsonReportsEntryFormat) {
  const std::string dir = "cli_cache_format_test.tmp";
  run({"cache", "clear", "--cache-dir", dir});
  const auto audit = run({"audit", "--impls", "frr,bird", "--topos",
                          "linear-2", "--seeds", "1", "--duration-s", "90",
                          "--cache-dir", dir});
  EXPECT_EQ(audit.code, 0) << audit.err;

  const auto ls = run({"cache", "ls", "--json", "--cache-dir", dir});
  EXPECT_EQ(ls.code, 0) << ls.err;
  EXPECT_NE(ls.out.find("\"format\":" +
                        std::to_string(cache::kCacheFormatVersion)),
            std::string::npos);
  run({"cache", "clear", "--cache-dir", dir});
}

TEST(Cli, CacheCompactReportsVersionSkew) {
  const std::string dir = "cli_cache_skew_test.tmp";
  run({"cache", "clear", "--cache-dir", dir});

  // Two current-format entries, one rewritten as the previous format.
  harness::Scenario keep_scenario, skew_scenario;
  keep_scenario.seed = 1;
  skew_scenario.seed = 2;
  const auto keep = cache::scenario_key(keep_scenario, {}, "type",
                                        cache::PayloadKind::kMinedRelations);
  const auto skew = cache::scenario_key(skew_scenario, {}, "type",
                                        cache::PayloadKind::kMinedRelations);
  cache::Entry entry;
  entry.coverage.add(cov::fsm_edge(cov::Proto::kOspf, 0, 1));
  entry.coverage.finalize();
  {
    cache::Store store(dir);
    store.put(keep, entry);
    store.put(skew, entry);
  }
  auto old = cache::encode_entry(skew, entry);
  old[7] = 2;  // big-endian version field: patch 3 -> 2
  const auto path = std::filesystem::path(dir) / skew.prefix() /
                    (skew.hex() + ".nidc");
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(old.data()),
            static_cast<std::streamsize>(old.size()));
  }

  const auto r = run({"cache", "compact", "--cache-dir", dir});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("packed 1 loose entries"), std::string::npos);
  EXPECT_NE(r.out.find("skipped 1 for format-version skew"),
            std::string::npos);
  run({"cache", "clear", "--cache-dir", dir});
  std::filesystem::remove_all(dir);
}

TEST(Cli, NoCacheOverridesCacheDir) {
  const std::string dir = "cli_nocache_test.tmp";
  run({"cache", "clear", "--cache-dir", dir});
  const auto r = run({"audit", "--impls", "frr,bird", "--topos", "linear-2",
                      "--seeds", "1", "--duration-s", "90", "--cache-dir",
                      dir, "--no-cache"});
  EXPECT_EQ(r.code, 0) << r.err;
  const auto ls = run({"cache", "ls", "--cache-dir", dir});
  EXPECT_NE(ls.out.find("0 entries"), std::string::npos);
}

}  // namespace
}  // namespace nidkit::cli
