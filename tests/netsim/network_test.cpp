#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace nidkit::netsim {
namespace {

using namespace std::chrono_literals;

Frame make_frame(Ipv4Addr dst, std::uint8_t first_byte = 0xaa) {
  Frame f;
  f.dst = dst;
  f.protocol = 89;
  f.payload = {first_byte, 2, 3};
  return f;
}

struct NetFixture : ::testing::Test {
  Simulator sim;
  Network net{sim, 1234};
};

TEST_F(NetFixture, P2pDeliversToPeer) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_p2p(a, b);
  std::vector<std::uint8_t> got;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame& f) {
    got = f.payload.to_vector();
  });
  net.send(a, 0, make_frame(kAllSpfRouters, 0x42));
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 0x42);
}

TEST_F(NetFixture, SenderDoesNotReceiveOwnFrame) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_p2p(a, b);
  int a_got = 0;
  net.set_receive_handler(a, [&](IfaceIndex, const Frame&) { ++a_got; });
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  EXPECT_EQ(a_got, 0);
}

TEST_F(NetFixture, DelayAppliedToDelivery) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).delay = 900ms;
  SimTime arrival{-1};
  net.set_receive_handler(b, [&](IfaceIndex, const Frame&) {
    arrival = sim.now();
  });
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  EXPECT_EQ(arrival, SimTime{900ms});
}

TEST_F(NetFixture, JitterAddsBoundedExtraDelay) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).delay = 100ms;
  net.fault(seg).jitter = 50ms;
  std::vector<SimTime> arrivals;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame&) {
    arrivals.push_back(sim.now());
  });
  for (int i = 0; i < 50; ++i) net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  ASSERT_EQ(arrivals.size(), 50u);
  for (const auto t : arrivals) {
    EXPECT_GE(t, SimTime{100ms});
    EXPECT_LE(t, SimTime{150ms});
  }
}

TEST_F(NetFixture, UnicastDeliversOnlyToAddressee) {
  std::vector<NodeId> nodes = {net.add_node("a"), net.add_node("b"),
                               net.add_node("c")};
  net.add_lan(nodes);
  int b_got = 0, c_got = 0;
  net.set_receive_handler(nodes[1], [&](IfaceIndex, const Frame&) { ++b_got; });
  net.set_receive_handler(nodes[2], [&](IfaceIndex, const Frame&) { ++c_got; });
  const Ipv4Addr b_addr = net.iface(nodes[1], 0).address;
  net.send(nodes[0], 0, make_frame(b_addr));
  sim.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
}

TEST_F(NetFixture, MulticastDeliversToAllOthersOnLan) {
  std::vector<NodeId> nodes = {net.add_node("a"), net.add_node("b"),
                               net.add_node("c"), net.add_node("d")};
  net.add_lan(nodes);
  int got = 0;
  for (std::size_t i = 1; i < nodes.size(); ++i)
    net.set_receive_handler(nodes[i], [&](IfaceIndex, const Frame&) { ++got; });
  net.send(nodes[0], 0, make_frame(kAllDRouters));
  sim.run();
  EXPECT_EQ(got, 3);
}

TEST_F(NetFixture, LossDropsFrames) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).loss = 0.5;
  int got = 0;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame&) { ++got; });
  for (int i = 0; i < 500; ++i) net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  EXPECT_GT(got, 150);
  EXPECT_LT(got, 350);
  EXPECT_EQ(net.frames_dropped() + net.frames_delivered(), 500u);
}

TEST_F(NetFixture, DownSegmentDropsEverything) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).down = true;
  int got = 0;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame&) { ++got; });
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.frames_dropped(), 1u);
}

TEST_F(NetFixture, DuplicationDeliversTwice) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).duplicate = 1.0;
  int got = 0;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame&) { ++got; });
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  EXPECT_EQ(got, 2);
}

TEST_F(NetFixture, ReorderDelaysSomeFrames) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).delay = 10ms;
  net.fault(seg).reorder = 1.0;
  net.fault(seg).reorder_extra = 100ms;
  SimTime arrival{0};
  net.set_receive_handler(b, [&](IfaceIndex, const Frame&) {
    arrival = sim.now();
  });
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  EXPECT_EQ(arrival, SimTime{110ms});
}

TEST_F(NetFixture, BandwidthSerializesBackToBackFrames) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).bytes_per_sec = 3000;  // 3-byte frame => 1 ms each
  std::vector<SimTime> arrivals;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame&) {
    arrivals.push_back(sim.now());
  });
  net.send(a, 0, make_frame(kAllSpfRouters));
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], SimTime{1ms});
  EXPECT_EQ(arrivals[1], SimTime{2ms});
}

TEST_F(NetFixture, FrameIdsAreUniqueAndMonotonic) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_p2p(a, b);
  std::vector<std::uint64_t> ids;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame& f) {
    ids.push_back(f.id);
  });
  for (int i = 0; i < 3; ++i) net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_LT(ids[1], ids[2]);
  EXPECT_NE(ids[0], 0u);
}

TEST_F(NetFixture, TapSeesSendAndReceive) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_p2p(a, b);
  std::vector<std::pair<NodeId, Direction>> taps;
  net.set_tap([&](const TapEvent& ev) {
    taps.emplace_back(ev.node, ev.direction);
  });
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  ASSERT_EQ(taps.size(), 2u);
  EXPECT_EQ(taps[0], std::make_pair(a, Direction::kSend));
  EXPECT_EQ(taps[1], std::make_pair(b, Direction::kRecv));
}

TEST_F(NetFixture, TapSeesFramesEvenWhenNoHandlerInstalled) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_p2p(a, b);
  int taps = 0;
  net.set_tap([&](const TapEvent&) { ++taps; });
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  EXPECT_EQ(taps, 2);
}

TEST_F(NetFixture, SourceAddressDefaultsToInterface) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_p2p(a, b);
  Ipv4Addr seen_src;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame& f) {
    seen_src = f.src;
  });
  net.send(a, 0, make_frame(kAllSpfRouters));
  sim.run();
  EXPECT_EQ(seen_src, net.iface(a, 0).address);
}

TEST_F(NetFixture, P2pAddressesShareSlash30) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  const auto ia = net.iface(a, 0);
  const auto ib = net.iface(b, 0);
  EXPECT_EQ(ia.prefix_len, 30);
  EXPECT_EQ(ia.address.value() & ~3u, ib.address.value() & ~3u);
  EXPECT_NE(ia.address, ib.address);
  EXPECT_FALSE(net.segment_is_lan(seg));
}

TEST_F(NetFixture, DistinctSegmentsGetDistinctSubnets) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  net.add_p2p(a, b);
  net.add_p2p(b, c);
  const auto ab = net.iface(a, 0).address.value() & ~3u;
  const auto bc = net.iface(c, 0).address.value() & ~3u;
  EXPECT_NE(ab, bc);
}

TEST_F(NetFixture, P2pPeerLookup) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  EXPECT_EQ(net.p2p_peer(seg, a), b);
  EXPECT_EQ(net.p2p_peer(seg, b), a);
}

TEST_F(NetFixture, LanAttachmentsEnumerated) {
  std::vector<NodeId> nodes = {net.add_node("a"), net.add_node("b"),
                               net.add_node("c")};
  const auto seg = net.add_lan(nodes);
  EXPECT_TRUE(net.segment_is_lan(seg));
  EXPECT_EQ(net.attachments(seg).size(), 3u);
  EXPECT_EQ(net.p2p_peer(seg, nodes[0]), kInvalidNode);
}

TEST_F(NetFixture, SelfLinkRejected) {
  const auto a = net.add_node("a");
  EXPECT_THROW(net.add_p2p(a, a), std::invalid_argument);
}

TEST_F(NetFixture, TinyLanRejected) {
  const auto a = net.add_node("a");
  const NodeId members[] = {a};
  EXPECT_THROW(net.add_lan(members), std::invalid_argument);
}

TEST_F(NetFixture, JitterCanReorderByDefault) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).delay = 10ms;
  net.fault(seg).jitter = 200ms;
  std::vector<std::uint8_t> arrivals;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame& f) {
    arrivals.push_back(f.payload[0]);
  });
  for (std::uint8_t i = 0; i < 100; ++i)
    net.send(a, 0, make_frame(kAllSpfRouters, i));
  sim.run();
  ASSERT_EQ(arrivals.size(), 100u);
  EXPECT_FALSE(std::is_sorted(arrivals.begin(), arrivals.end()))
      << "plain IP links under jitter must be able to reorder";
}

TEST_F(NetFixture, FifoModePreservesOrderUnderJitter) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto seg = net.add_p2p(a, b);
  net.fault(seg).delay = 10ms;
  net.fault(seg).jitter = 200ms;
  net.fault(seg).fifo = true;
  std::vector<std::uint8_t> arrivals;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame& f) {
    arrivals.push_back(f.payload[0]);
  });
  for (std::uint8_t i = 0; i < 100; ++i)
    net.send(a, 0, make_frame(kAllSpfRouters, i));
  sim.run();
  ASSERT_EQ(arrivals.size(), 100u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()))
      << "fifo links model an ordered transport";
}

TEST_F(NetFixture, CausedByPropagatesToTap) {
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_p2p(a, b);
  std::uint64_t seen = 0;
  net.set_tap([&](const TapEvent& ev) {
    if (ev.direction == Direction::kRecv) seen = ev.frame->caused_by;
  });
  Frame f = make_frame(kAllSpfRouters);
  f.caused_by = 777;
  net.send(a, 0, std::move(f));
  sim.run();
  EXPECT_EQ(seen, 777u);
}

}  // namespace
}  // namespace nidkit::netsim
