#include "netsim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nidkit::netsim {
namespace {

using namespace std::chrono_literals;

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), kSimStart);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30ms, [&] { order.push_back(3); });
  sim.schedule(10ms, [&] { order.push_back(1); });
  sim.schedule(20ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SimultaneousEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule(10ms, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen{-1};
  sim.schedule(250ms, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime{250ms});
  EXPECT_EQ(sim.now(), SimTime{250ms});
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto h = sim.schedule(10ms, [&] { ran = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  int runs = 0;
  auto h = sim.schedule(1ms, [&] { ++runs; });
  sim.run();
  h.cancel();
  h.cancel();
  EXPECT_EQ(runs, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  TimerHandle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // must not crash
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(1ms, recurse);
  };
  sim.schedule(1ms, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime{5ms});
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ran = 0;
  sim.schedule(10ms, [&] { ++ran; });
  sim.schedule(30ms, [&] { ++ran; });
  sim.run_until(SimTime{20ms});
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), SimTime{20ms});
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.run_until(SimTime{1s});
  EXPECT_EQ(sim.now(), SimTime{1s});
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule(20ms, [&] { ran = true; });
  sim.run_until(SimTime{20ms});
  EXPECT_TRUE(ran);
}

TEST(Simulator, StepReturnsFalseWhenDrained) {
  Simulator sim;
  sim.schedule(1ms, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, StepSkipsCancelledEvents) {
  Simulator sim;
  bool second = false;
  auto h = sim.schedule(1ms, [] {});
  sim.schedule(2ms, [&] { second = true; });
  h.cancel();
  EXPECT_TRUE(sim.step());  // skips cancelled, runs the live one
  EXPECT_TRUE(second);
}

TEST(Simulator, ExecutedCounterCountsLiveEventsOnly) {
  Simulator sim;
  auto h = sim.schedule(1ms, [] {});
  sim.schedule(2ms, [] {});
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime seen{0};
  sim.schedule_at(SimTime{77ms}, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime{77ms});
}

}  // namespace
}  // namespace nidkit::netsim
