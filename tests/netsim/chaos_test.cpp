#include "netsim/chaos.hpp"

#include <gtest/gtest.h>

namespace nidkit::netsim {
namespace {

using namespace std::chrono_literals;

struct ChaosFixture : ::testing::Test {
  Simulator sim;
  Network net{sim, 1};
  NodeId a = net.add_node("a");
  NodeId b = net.add_node("b");
  NodeId c = net.add_node("c");
  SegmentId ab = net.add_p2p(a, b);
  SegmentId bc = net.add_p2p(b, c);
  ChaosController chaos{net};
};

TEST_F(ChaosFixture, SetDelayAllHitsEverySegment) {
  chaos.set_delay_all(900ms);
  EXPECT_EQ(net.fault(ab).delay, SimDuration{900ms});
  EXPECT_EQ(net.fault(bc).delay, SimDuration{900ms});
}

TEST_F(ChaosFixture, PerSegmentDelayAndJitter) {
  chaos.set_delay(ab, 100ms, 20ms);
  EXPECT_EQ(net.fault(ab).delay, SimDuration{100ms});
  EXPECT_EQ(net.fault(ab).jitter, SimDuration{20ms});
  EXPECT_EQ(net.fault(bc).delay, SimDuration{0ms});
}

TEST_F(ChaosFixture, LossDuplicateReorderKnobs) {
  chaos.set_loss(ab, 0.25);
  chaos.set_duplicate(ab, 0.5);
  chaos.set_reorder(ab, 0.75, 40ms);
  EXPECT_DOUBLE_EQ(net.fault(ab).loss, 0.25);
  EXPECT_DOUBLE_EQ(net.fault(ab).duplicate, 0.5);
  EXPECT_DOUBLE_EQ(net.fault(ab).reorder, 0.75);
  EXPECT_EQ(net.fault(ab).reorder_extra, SimDuration{40ms});
}

TEST_F(ChaosFixture, CutAndRestore) {
  chaos.cut(ab);
  EXPECT_TRUE(net.fault(ab).down);
  chaos.restore(ab);
  EXPECT_FALSE(net.fault(ab).down);
}

TEST_F(ChaosFixture, ScheduledWindowAppliesAndReverts) {
  chaos.set_delay(ab, 10ms);
  FaultModel storm;
  storm.delay = 500ms;
  storm.loss = 0.9;
  chaos.schedule_window(ab, SimTime{1s}, 2s, storm);

  sim.run_until(SimTime{500ms});
  EXPECT_EQ(net.fault(ab).delay, SimDuration{10ms});

  sim.run_until(SimTime{1500ms});
  EXPECT_EQ(net.fault(ab).delay, SimDuration{500ms});
  EXPECT_DOUBLE_EQ(net.fault(ab).loss, 0.9);

  sim.run_until(SimTime{3500ms});
  EXPECT_EQ(net.fault(ab).delay, SimDuration{10ms});
  EXPECT_DOUBLE_EQ(net.fault(ab).loss, 0.0);
}

TEST_F(ChaosFixture, WindowedCutDisruptsDelivery) {
  FaultModel cut_model;
  cut_model.down = true;
  chaos.schedule_window(ab, SimTime{10ms}, 100ms, cut_model);
  int got = 0;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame&) { ++got; });

  auto send = [&] {
    Frame f;
    f.dst = kAllSpfRouters;
    f.protocol = 89;
    f.payload = {1};
    net.send(a, 0, std::move(f));
  };
  sim.schedule(5ms, send);    // before the window: delivered
  sim.schedule(50ms, send);   // inside: dropped
  sim.schedule(200ms, send);  // after: delivered
  sim.run();
  EXPECT_EQ(got, 2);
}

TEST_F(ChaosFixture, FifoSurvivesMidRunDelayChange) {
  // An in-flight frame delayed 500 ms must not be overtaken by a frame
  // sent later under a reduced 10 ms delay when the link is FIFO.
  net.fault(ab).fifo = true;
  chaos.set_delay(ab, 500ms);
  std::vector<std::uint8_t> order;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame& f) {
    order.push_back(f.payload[0]);
  });
  auto send = [&](std::uint8_t tag) {
    Frame f;
    f.dst = kAllSpfRouters;
    f.protocol = 89;
    f.payload = {tag};
    net.send(a, 0, std::move(f));
  };
  send(1);
  sim.schedule(100ms, [&] {
    chaos.set_delay(ab, 10ms);
    send(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint8_t>{1, 2}));
}

TEST_F(ChaosFixture, NonFifoAllowsOvertakingAfterDelayDrop) {
  chaos.set_delay(ab, 500ms);
  std::vector<std::uint8_t> order;
  net.set_receive_handler(b, [&](IfaceIndex, const Frame& f) {
    order.push_back(f.payload[0]);
  });
  auto send = [&](std::uint8_t tag) {
    Frame f;
    f.dst = kAllSpfRouters;
    f.protocol = 89;
    f.payload = {tag};
    net.send(a, 0, std::move(f));
  };
  send(1);
  sim.schedule(100ms, [&] {
    chaos.set_delay(ab, 10ms);
    send(2);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint8_t>{2, 1}))
      << "plain IP links deliver per-frame: the fast frame wins";
}

}  // namespace
}  // namespace nidkit::netsim
