// Allocation-budget regression test for the simulator hot path.
//
// The zero-allocation contract: once warm (timer slab grown, event-heap
// vector at capacity, payload encoded), scheduling a timer, re-arming it,
// and fanning a frame out across a LAN must not touch the heap at all.
// This binary links nidkit_alloc_count, which replaces the global operator
// new/delete with counting versions, so the assertion below is exact — one
// stray allocation per event fails the build's test suite, not a profiler
// session three PRs later.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "util/alloc_count.hpp"

namespace nidkit::netsim {
namespace {

using namespace std::chrono_literals;

struct TimerChurn {
  Simulator& sim;
  std::uint64_t remaining;
};

void timer_tick(TimerChurn& st) {
  if (st.remaining == 0) return;  // budget shared by all chains
  --st.remaining;
  st.sim.schedule(1ms, [&st] { timer_tick(st); });
}

TEST(AllocBudget, SteadyStateTimerChurnIsAllocationFree) {
  Simulator sim;
  TimerChurn st{sim, 20'000};
  // 32 concurrent self-rescheduling chains, like a network of routers each
  // holding hello/retransmit/refresh timers.
  for (int i = 0; i < 32; ++i) sim.schedule(1ms, [&st] { timer_tick(st); });
  // Warm-up: grow the timer slab and the event-heap vector to capacity.
  while (st.remaining > 10'000 && sim.step()) {
  }
  const auto before = util::allocation_count();
  while (sim.step()) {
  }
  const auto after = util::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "timer scheduling allocated on the steady-state path";
}

struct HelloFlood {
  Simulator& sim;
  Network& net;
  Frame proto;         // pre-encoded once, shared by refcount per send
  NodeId sender;
  std::uint64_t remaining;
};

void flood_tick(HelloFlood& st) {
  if (st.remaining == 0) return;
  --st.remaining;
  st.sim.schedule(10ms, [&st] { flood_tick(st); });
  st.net.send(st.sender, 0, st.proto);  // Frame copy = refcount bump
}

TEST(AllocBudget, SteadyStateHelloFloodIsAllocationFree) {
  Simulator sim;
  Network net(sim, /*seed=*/7);
  std::vector<NodeId> members;
  for (int i = 0; i < 8; ++i) members.push_back(net.add_node("r"));
  net.add_lan(members);

  std::uint64_t delivered = 0;
  for (const NodeId n : members)
    net.set_receive_handler(n, [&delivered](IfaceIndex, const Frame&) {
      ++delivered;
    });

  HelloFlood st{sim, net, Frame{}, members[0], 4'000};
  st.proto.dst = Ipv4Addr{0xe0000005};  // 224.0.0.5: LAN-wide fan-out
  st.proto.protocol = 253;
  st.proto.payload = std::vector<std::uint8_t>(100, 0xab);

  flood_tick(st);
  // Warm-up: the delivery heap reaches its high-water mark within a few
  // ticks (7 in-flight deliveries + 1 timer).
  while (st.remaining > 2'000 && sim.step()) {
  }
  const auto before = util::allocation_count();
  while (sim.step()) {
  }
  const auto after = util::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "frame delivery allocated on the steady-state path";
  EXPECT_GT(delivered, 10'000u);  // 2000 sends x 7 receivers measured
}

TEST(AllocBudget, CancelledTimersRecycleTheirSlots) {
  // Schedule-then-cancel churn (retransmission timers that never fire)
  // must recycle slots through the freelist, not grow the slab.
  Simulator sim;
  std::uint64_t fired = 0;
  // Warm the slab with a burst of live timers.
  for (int i = 0; i < 64; ++i) sim.schedule(1ms, [&fired] { ++fired; });
  sim.run();
  const auto before = util::allocation_count();
  for (int round = 0; round < 1'000; ++round) {
    auto h = sim.schedule(1ms, [&fired] { ++fired; });
    h.cancel();
    sim.run();
  }
  const auto after = util::allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "schedule/cancel churn allocated after warm-up";
  EXPECT_EQ(fired, 64u);
}

}  // namespace
}  // namespace nidkit::netsim
