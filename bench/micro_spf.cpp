// SPF kernel microbenchmark: cold reference vs flat kernel vs memoized
// probes, on three synthetic LSDB shapes.
//
// The audit pipeline probes routing tables after every scenario (route
// consistency checks, convergence sampling), and before the flat kernel
// every probe re-ran the std::map/std::set Dijkstra from scratch. This
// bench isolates the three cost tiers the incremental-SPF work created:
//
//   cold      compute_routes_reference — the retained naive oracle, what
//             every probe used to cost.
//   flat      compute_routes on a reused SpfScratch — the dense-index
//             kernel, same answer, no per-run node allocations.
//   memoized  RouteCache::get on an unchanged database — a version
//             compare plus a validity-horizon check; what repeated probes
//             between topology changes cost now.
//
// Topologies: a full mesh (dense, ECMP-heavy), a ring (sparse, long
// paths), and an ISP-like two-tier shape (core mesh + edge stars + a LAN
// + externals) sized like the larger audit scenarios.
//
// Exits nonzero when the speedups the PR promises stop holding:
// memoized >= 5x cold, flat measurably (>= 1.1x) faster than cold, and
// flat/reference answers identical on every shape.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ospf/lsdb.hpp"
#include "ospf/spf.hpp"
#include "util/ip.hpp"

using namespace nidkit;
using namespace nidkit::ospf;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

namespace {

RouterId rid(std::uint32_t i) {
  return RouterId{static_cast<std::uint8_t>((i >> 8) + 1),
                  static_cast<std::uint8_t>(i & 0xff), 0, 1};
}

Lsa router_lsa(RouterId id, std::vector<RouterLink> links) {
  Lsa lsa;
  lsa.header.type = LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{id.value()};
  lsa.header.advertising_router = id;
  lsa.body = RouterLsaBody{0, std::move(links)};
  return lsa;
}

void add_p2p(std::vector<std::vector<RouterLink>>& links, std::size_t a,
             std::size_t b, std::uint16_t metric) {
  links[a].push_back({Ipv4Addr{rid(static_cast<std::uint32_t>(b)).value()},
                      Ipv4Addr{}, RouterLinkType::kPointToPoint, metric});
  links[b].push_back({Ipv4Addr{rid(static_cast<std::uint32_t>(a)).value()},
                      Ipv4Addr{}, RouterLinkType::kPointToPoint, metric});
}

void add_stub(std::vector<std::vector<RouterLink>>& links, std::size_t i) {
  links[i].push_back({Ipv4Addr{10, 1, static_cast<std::uint8_t>(i >> 8),
                               static_cast<std::uint8_t>(i & 0xff)},
                      Ipv4Addr{255, 255, 255, 255}, RouterLinkType::kStub, 1});
}

struct Shape {
  std::string name;
  Lsdb db;
  std::size_t routers = 0;
};

Shape make_mesh(std::size_t n) {
  Shape s;
  s.name = "mesh-" + std::to_string(n);
  s.routers = n;
  std::vector<std::vector<RouterLink>> links(n);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b) add_p2p(links, a, b, 10);
  for (std::size_t i = 0; i < n; ++i) {
    add_stub(links, i);
    s.db.install(router_lsa(rid(static_cast<std::uint32_t>(i)), links[i]),
                 0s);
  }
  return s;
}

Shape make_ring(std::size_t n) {
  Shape s;
  s.name = "ring-" + std::to_string(n);
  s.routers = n;
  std::vector<std::vector<RouterLink>> links(n);
  for (std::size_t i = 0; i < n; ++i)
    add_p2p(links, i, (i + 1) % n, 1 + static_cast<std::uint16_t>(i % 3));
  for (std::size_t i = 0; i < n; ++i) {
    add_stub(links, i);
    s.db.install(router_lsa(rid(static_cast<std::uint32_t>(i)), links[i]),
                 0s);
  }
  return s;
}

/// Two-tier ISP-like shape: a core mesh, `edge` stub routers hanging off
/// each core router, a LAN joining the first three cores, and externals
/// originated at the last core (the AS exit).
Shape make_isp(std::size_t core, std::size_t edge) {
  Shape s;
  const std::size_t n = core + core * edge;
  s.name = "isp-" + std::to_string(n);
  s.routers = n;
  std::vector<std::vector<RouterLink>> links(n);
  for (std::size_t a = 0; a < core; ++a)
    for (std::size_t b = a + 1; b < core; ++b) add_p2p(links, a, b, 5);
  for (std::size_t c = 0; c < core; ++c)
    for (std::size_t e = 0; e < edge; ++e)
      add_p2p(links, c, core + c * edge + e, 20);

  const Ipv4Addr dr_addr{10, 200, 0, 1};
  const Ipv4Addr lan_mask{255, 255, 255, 0};
  std::vector<RouterId> attached;
  for (std::size_t c = 0; c < 3 && c < core; ++c) {
    attached.push_back(rid(static_cast<std::uint32_t>(c)));
    links[c].push_back({dr_addr,
                        Ipv4Addr{10, 200, 0, static_cast<std::uint8_t>(c + 1)},
                        RouterLinkType::kTransit, 1});
  }

  for (std::size_t i = 0; i < n; ++i) {
    add_stub(links, i);
    s.db.install(router_lsa(rid(static_cast<std::uint32_t>(i)), links[i]),
                 0s);
  }

  Lsa net_lsa;
  net_lsa.header.type = LsaType::kNetwork;
  net_lsa.header.link_state_id = dr_addr;
  net_lsa.header.advertising_router = rid(0);
  net_lsa.body = NetworkLsaBody{lan_mask, attached};
  s.db.install(net_lsa, 0s);

  for (std::uint8_t e = 0; e < 8; ++e) {
    Lsa ext;
    ext.header.type = LsaType::kExternal;
    ext.header.link_state_id = Ipv4Addr{203, 0, e, 0};
    ext.header.advertising_router = rid(static_cast<std::uint32_t>(core - 1));
    ExternalLsaBody body;
    body.network_mask = Ipv4Addr{255, 255, 255, 0};
    body.type2 = true;
    body.metric = 10 + e;
    ext.body = body;
    s.db.install(ext, 0s);
  }
  return s;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `fn` repeatedly for ~`budget` wall seconds, returns calls/sec.
template <typename Fn>
double rate_of(Fn&& fn, double budget) {
  // Calibrate the batch size so the timed loop checks the clock rarely.
  std::uint64_t batch = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < batch; ++i) fn();
    if (seconds_since(start) > budget / 50 || batch > (1ull << 30)) break;
    batch *= 4;
  }
  std::uint64_t calls = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    for (std::uint64_t i = 0; i < batch; ++i) fn();
    calls += batch;
    elapsed = seconds_since(start);
  } while (elapsed < budget);
  return calls / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else {
      std::fprintf(stderr, "usage: micro_spf [--short]\n");
      return 2;
    }
  }
  const double budget = short_mode ? 0.1 : 0.5;

  std::vector<Shape> shapes;
  shapes.push_back(make_mesh(short_mode ? 12 : 24));
  shapes.push_back(make_ring(short_mode ? 16 : 48));
  shapes.push_back(make_isp(short_mode ? 4 : 8, 3));

  std::printf("=== SPF kernel microbenchmark (%s mode) ===\n\n",
              short_mode ? "short" : "full");
  std::printf("%-10s %14s %14s %16s %8s %8s\n", "shape", "cold/s", "flat/s",
              "memoized/s", "flat_x", "memo_x");

  bool ok = true;
  const SimTime now = 30s;
  for (Shape& shape : shapes) {
    const RouterId self = rid(0);

    // Answers must agree before timing means anything.
    SpfScratch scratch;
    std::vector<Route> flat_routes;
    compute_routes(shape.db, self, now, scratch, flat_routes);
    const auto ref_routes = compute_routes_reference(shape.db, self, now);
    if (!(flat_routes == ref_routes)) {
      std::printf("%-10s FLAT KERNEL DISAGREES WITH REFERENCE\n",
                  shape.name.c_str());
      ok = false;
      continue;
    }

    const double cold = rate_of(
        [&] { (void)compute_routes_reference(shape.db, self, now); }, budget);
    const double flat = rate_of(
        [&] { compute_routes(shape.db, self, now, scratch, flat_routes); },
        budget);
    RouteCache cache;
    (void)cache.get(shape.db, self, now);
    const double memo =
        rate_of([&] { (void)cache.get(shape.db, self, now); }, budget);

    const double flat_x = flat / cold;
    const double memo_x = memo / cold;
    std::printf("%-10s %14.0f %14.0f %16.0f %7.1fx %7.0fx\n",
                shape.name.c_str(), cold, flat, memo, flat_x, memo_x);

    // The PR's promises: memoized probes >= 5x a cold recompute, and the
    // flat kernel a measurable (>= 1.1x) win over the reference.
    if (memo_x < 5.0) {
      std::printf("  FAIL: memoized probe speedup %.1fx < 5x\n", memo_x);
      ok = false;
    }
    if (flat_x < 1.1) {
      std::printf("  FAIL: flat kernel speedup %.2fx < 1.1x\n", flat_x);
      ok = false;
    }
  }

  std::printf("\nspf gates (flat >= 1.1x, memoized >= 5x): %s\n",
              ok ? "ok" : "FAIL");
  return ok ? 0 : 3;
}
