// The paper's motivating example (§1), reproduced end to end: the 2009
// global slowdown, where routes with an extremely long AS_PATH caused one
// implementation to reset its BGP sessions repeatedly while others carried
// the route.
//
// Two homogeneous networks (bgp-robust, bgp-fragile) run the same
// workload — ordinary originations plus one long-path announcement — and
// the causal miner compares their message-level relationships. The flagged
// discrepancy is exactly the incident: Snd(UPDATE+longpath) →
// Rcv(NOTIFICATION) exists only against the fragile implementation.
#include <cstdio>
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  mining::MinerConfig miner_config;
  miner_config.tdelay = 900ms;
  miner_config.horizon = 5s;
  mining::CausalMiner miner(miner_config);
  const auto scheme = mining::bgp_message_scheme();

  std::map<std::string, mining::RelationSet> by_impl;
  std::map<std::string, harness::ScenarioResult> stats;
  for (const auto& profile :
       {bgp::bgp_robust_profile(), bgp::bgp_fragile_profile()}) {
    mining::RelationSet set;
    harness::ScenarioResult last;
    for (const auto& spec : {topo::Spec{topo::Kind::kLinear, 2},
                             topo::Spec{topo::Kind::kLinear, 3},
                             topo::Spec{topo::Kind::kRing, 4}}) {
      harness::Scenario s;
      s.protocol = harness::Protocol::kBgp;
      s.bgp_profile = profile;
      s.topology = spec;
      s.duration = 300s;
      s.churn_times = {60s};
      auto run = harness::run_scenario(s);
      set.merge(miner.mine(run.log, scheme));
      last = std::move(run);
    }
    by_impl.emplace(profile.name, std::move(set));
    stats.emplace(profile.name, std::move(last));
  }

  const std::vector<std::string> labels = {"OPEN", "KEEPALIVE", "UPDATE",
                                           "UPDATE+longpath",
                                           "UPDATE+withdraw", "NOTIFICATION"};
  const std::vector<detect::NamedRelations> named = {
      {"bgp-robust", &by_impl.at("bgp-robust")},
      {"bgp-fragile", &by_impl.at("bgp-fragile")}};

  std::cout << "=== BGP message causal relationships (2009 incident "
               "workload) ===\n\n"
            << detect::render_matrix(named, labels, labels,
                                     mining::RelationDirection::kSendToRecv);

  const auto flags = detect::compare(named[0], named[1]);
  std::cout << "\n=== Flagged candidate non-interoperabilities ===\n"
            << detect::render_discrepancies(flags);

  std::printf("\nsession health during the workload (last topology):\n");
  for (const auto& [name, r] : stats) {
    std::printf("  %-12s resets=%llu notifications=%llu long-path "
                "rejections=%llu\n",
                name.c_str(),
                static_cast<unsigned long long>(r.bgp_totals.session_resets),
                static_cast<unsigned long long>(r.bgp_totals.tx_notification),
                static_cast<unsigned long long>(
                    r.bgp_totals.long_path_rejects));
  }

  const auto dir = mining::RelationDirection::kSendToRecv;
  const bool incident =
      by_impl.at("bgp-fragile").has(dir, "UPDATE+longpath", "NOTIFICATION") &&
      !by_impl.at("bgp-robust").has(dir, "UPDATE+longpath", "NOTIFICATION");
  const bool both_carry_normal =
      by_impl.at("bgp-robust").has(dir, "UPDATE", "KEEPALIVE") ||
      by_impl.at("bgp-robust").has(dir, "UPDATE", "UPDATE");
  std::printf("\npaper shape check:\n"
              "  long-path UPDATE answered by NOTIFICATION only in the "
              "fragile implementation: %s\n"
              "  ordinary UPDATE traffic uneventful in the robust "
              "implementation: %s\n",
              incident ? "yes" : "NO", both_carry_normal ? "yes" : "NO");
  return (incident && both_carry_normal) ? 0 : 1;
}
