// Simulator-core microbenchmark: events/sec, frames/sec, allocations per
// event.
//
// The audit pipeline's throughput ceiling is the single-threaded event
// loop: every hello, flood, retransmission and delivery is one scheduled
// closure. This bench isolates that loop from the protocol engines so the
// cost of scheduling machinery (closure storage, timer bookkeeping, frame
// payload hand-off, trace capture) is measured directly:
//
//   timer_churn     self-rescheduling timers, no frames — pure event-loop
//                   overhead (schedule + pop + invoke).
//   frame_fanout    one node multicasts a pre-encoded ~100-byte frame on an
//                   8-node LAN per tick — the LAN fan-out delivery path.
//   traced_fanout   frame_fanout with a TraceLog attached — what an audit
//                   scenario actually runs.
//   spf_probe       memoized routing-table probes against an unchanged
//                   LSDB (RouteCache::get hits) — the steady-state cost of
//                   the route-consistency and convergence sampling probes.
//   audit           wall-clock of the paper's default `nidt audit`
//                   workload at --jobs 1 (measured in both modes; --short
//                   takes the best of several repeats so CI can gate it).
//
// Linked against nidkit_alloc_count, so steady-state allocations per event
// are exact, not sampled. Results are printed and written to
// BENCH_simcore.json (override with --out). `--short` shrinks the event
// counts for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cov/cov.hpp"
#include "harness/experiment.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "obs/obs.hpp"
#include "ospf/lsdb.hpp"
#include "ospf/spf.hpp"
#include "trace/trace.hpp"
#include "util/alloc_count.hpp"
#include "util/ip.hpp"

using namespace nidkit;
using Clock = std::chrono::steady_clock;

namespace {

struct Measurement {
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t events = 0;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Self-rescheduling tick chain: each event schedules its successor until
/// the budget runs out. Mirrors a protocol timer re-arming itself.
void tick(netsim::Simulator& sim, std::uint64_t& remaining) {
  if (remaining == 0) return;
  --remaining;
  sim.schedule(SimDuration{10}, [&sim, &remaining] { tick(sim, remaining); });
}

Measurement bench_timer_churn(std::uint64_t events, std::uint64_t warmup) {
  netsim::Simulator sim;
  // 32 concurrent chains keep the queue realistically deep.
  constexpr std::uint64_t kChains = 32;
  std::vector<std::uint64_t> budgets(kChains, warmup / kChains);
  for (auto& b : budgets) tick(sim, b);
  while (sim.step()) {
  }

  for (auto& b : budgets) {
    b = events / kChains;
    tick(sim, b);
  }
  const std::uint64_t executed_before = sim.executed();
  const std::uint64_t allocs_before = util::allocation_count();
  const auto start = Clock::now();
  while (sim.step()) {
  }
  const double wall = seconds_since(start);
  const std::uint64_t ran = sim.executed() - executed_before;
  const std::uint64_t allocs = util::allocation_count() - allocs_before;

  Measurement m;
  m.events = ran;
  m.events_per_sec = ran / wall;
  m.allocs_per_event = static_cast<double>(allocs) / ran;
  return m;
}

/// Fan-out workload state: one sender re-transmitting a pre-encoded frame.
struct FanoutState {
  netsim::Simulator& sim;
  netsim::Network& net;
  netsim::Frame proto;
  netsim::NodeId sender = 0;
  std::uint64_t remaining = 0;
};

void send_tick(FanoutState& st) {
  if (st.remaining == 0) return;
  --st.remaining;
  netsim::Frame f = st.proto;
  st.net.send(st.sender, 0, std::move(f));
  st.sim.schedule(SimDuration{100}, [&st] { send_tick(st); });
}

/// One sender multicasts a pre-encoded frame per tick on an 8-node LAN;
/// every delivery is one event. `traced` attaches a TraceLog, as audit
/// scenarios do.
Measurement bench_frame_fanout(std::uint64_t sends, std::uint64_t warmup,
                               bool traced) {
  netsim::Simulator sim;
  netsim::Network net(sim, 42);
  std::vector<netsim::NodeId> nodes;
  for (int i = 0; i < 8; ++i)
    nodes.push_back(net.add_node("n" + std::to_string(i)));
  net.add_lan(nodes);

  trace::TraceLog log;
  if (traced) log.attach(net);

  // A realistic LSU-sized payload, encoded once. (Protocol number 253 is
  // reserved-for-experiments: the digest parser ignores these frames, so
  // the bench measures capture cost, not codec cost.)
  FanoutState st{sim, net, {}, nodes[0], 0};
  st.proto.dst = kAllSpfRouters;
  st.proto.protocol = 253;
  st.proto.payload = std::vector<std::uint8_t>(100, 0xab);

  st.remaining = warmup;
  send_tick(st);
  while (sim.step()) {
  }
  if (traced) {
    log.clear();
  }

  st.remaining = sends;
  send_tick(st);
  const std::uint64_t delivered_before = net.frames_delivered();
  const std::uint64_t executed_before = sim.executed();
  const std::uint64_t allocs_before = util::allocation_count();
  const auto start = Clock::now();
  while (sim.step()) {
  }
  const double wall = seconds_since(start);
  const std::uint64_t events = sim.executed() - executed_before;
  const std::uint64_t delivered = net.frames_delivered() - delivered_before;
  const std::uint64_t allocs = util::allocation_count() - allocs_before;

  Measurement m;
  m.events = delivered;
  m.events_per_sec = delivered / wall;  // frames/sec
  m.allocs_per_event = static_cast<double>(allocs) / events;
  return m;
}

/// Memoized SPF probe: repeated RouteCache::get against an unchanged
/// mesh LSDB, with `now` advancing inside the validity horizon — every
/// call is a cache hit, as post-convergence probes are in a scenario.
Measurement bench_spf_probe(std::uint64_t probes) {
  using namespace std::chrono_literals;
  constexpr std::size_t kRouters = 12;
  const auto rid = [](std::size_t i) {
    const auto b = static_cast<std::uint8_t>(i + 1);
    return RouterId{b, b, b, b};
  };
  ospf::Lsdb db;
  for (std::size_t a = 0; a < kRouters; ++a) {
    ospf::Lsa lsa;
    lsa.header.type = ospf::LsaType::kRouter;
    lsa.header.link_state_id = Ipv4Addr{rid(a).value()};
    lsa.header.advertising_router = rid(a);
    ospf::RouterLsaBody body;
    for (std::size_t b = 0; b < kRouters; ++b) {
      if (a == b) continue;
      body.links.push_back({Ipv4Addr{rid(b).value()}, Ipv4Addr{},
                            ospf::RouterLinkType::kPointToPoint, 10});
    }
    body.links.push_back({Ipv4Addr{10, 1, static_cast<std::uint8_t>(a), 0},
                          Ipv4Addr{255, 255, 255, 0},
                          ospf::RouterLinkType::kStub, 1});
    lsa.body = std::move(body);
    db.install(lsa, SimTime{0});
  }

  ospf::RouteCache cache;
  SimTime now = 1s;
  (void)cache.get(db, rid(0), now);  // warm: one real SPF run

  const std::uint64_t allocs_before = util::allocation_count();
  const auto start = Clock::now();
  std::uint64_t table_entries = 0;
  for (std::uint64_t i = 0; i < probes; ++i) {
    now += SimTime{1};  // 1 us per probe keeps the whole run inside MaxAge
    table_entries += cache.get(db, rid(0), now).size();
  }
  const double wall = seconds_since(start);
  const std::uint64_t allocs = util::allocation_count() - allocs_before;

  Measurement m;
  m.events = probes;
  m.events_per_sec = probes / wall;
  m.allocs_per_event = static_cast<double>(allocs) / probes;
  // One stub route per router; anything else means the probe loop was not
  // actually hitting a correct cached table.
  if (table_entries != probes * kRouters) m.events_per_sec = -1;
  return m;
}

/// Naive extractor for the flat JSON this bench itself writes: finds
/// `"<bench>":{"<field>":<number>` and parses the number. Returns -1 when
/// the shape is absent (e.g. a baseline from an older build).
double extract_rate(const std::string& json, const std::string& bench,
                    const std::string& field) {
  const std::string needle = "\"" + bench + "\":{\"" + field + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atof(json.c_str() + pos + needle.size());
}

double bench_audit_wall_ms() {
  harness::ExperimentConfig config;  // paper defaults
  config.jobs = 1;
  const auto start = Clock::now();
  const auto audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config,
      mining::ospf_type_scheme());
  (void)audit;
  return seconds_since(start) * 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string out_path = "BENCH_simcore.json";
  std::string baseline_path;
  double gate_pct = 2.0;
  double audit_gate_pct = 30.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate-pct") == 0 && i + 1 < argc) {
      gate_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--audit-gate-pct") == 0 && i + 1 < argc) {
      audit_gate_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_simcore [--short] [--out file] "
                   "[--baseline file] [--gate-pct 2.0] "
                   "[--audit-gate-pct 30.0]\n");
      return 2;
    }
  }

  const std::uint64_t timer_events = short_mode ? 200'000 : 2'000'000;
  const std::uint64_t fanout_sends = short_mode ? 20'000 : 200'000;
  const std::uint64_t warmup = short_mode ? 20'000 : 100'000;
  // The gated sections take the best of several repeats: peak rate is the
  // stable statistic under scheduler noise (regressions shift the peak;
  // noise only shifts the tail).
  const int repeats = short_mode ? 5 : 3;
  const auto best_of = [&](auto&& measure) {
    Measurement best = measure();
    for (int r = 1; r < repeats; ++r) {
      const Measurement m = measure();
      if (m.allocs_per_event > best.allocs_per_event)
        best.allocs_per_event = m.allocs_per_event;  // worst-case allocs
      if (m.events_per_sec > best.events_per_sec)
        best.events_per_sec = m.events_per_sec;
    }
    return best;
  };

  std::printf("=== simcore microbenchmark (%s mode) ===\n\n",
              short_mode ? "short" : "full");

  const Measurement timer =
      best_of([&] { return bench_timer_churn(timer_events, warmup); });
  std::printf("timer_churn:   %12.0f events/s   %.3f allocs/event"
              "   (%llu events)\n",
              timer.events_per_sec, timer.allocs_per_event,
              static_cast<unsigned long long>(timer.events));

  const Measurement fanout = best_of(
      [&] { return bench_frame_fanout(fanout_sends, warmup / 8, false); });
  std::printf("frame_fanout:  %12.0f frames/s   %.3f allocs/event"
              "   (%llu deliveries)\n",
              fanout.events_per_sec, fanout.allocs_per_event,
              static_cast<unsigned long long>(fanout.events));

  const Measurement traced = best_of(
      [&] { return bench_frame_fanout(fanout_sends, warmup / 8, true); });
  std::printf("traced_fanout: %12.0f frames/s   %.3f allocs/event"
              "   (%llu deliveries)\n",
              traced.events_per_sec, traced.allocs_per_event,
              static_cast<unsigned long long>(traced.events));

  // A/B: the same fan-out with the obs registry live. The warmup inside
  // the measured call attaches this thread's hot-counter block, so the
  // measured section sees only the steady-state cost (one enabled() load
  // plus a relaxed fetch_add per hook).
  obs::Registry::instance().reset();
  obs::set_enabled(true);
  const Measurement obs_fanout =
      bench_frame_fanout(fanout_sends, warmup / 8, false);
  obs::set_enabled(false);
  const double obs_overhead_pct =
      fanout.events_per_sec > 0
          ? (fanout.events_per_sec - obs_fanout.events_per_sec) * 100.0 /
                fanout.events_per_sec
          : 0.0;
  std::printf("obs_fanout:    %12.0f frames/s   %.3f allocs/event"
              "   (enabled registry, %+.2f%% vs disabled)\n",
              obs_fanout.events_per_sec, obs_fanout.allocs_per_event,
              obs_overhead_pct);

  // A/B: the same fan-out with coverage reporting enabled. Collection is
  // always-on (plain integer ORs at existing stat-bump choke points), so
  // flipping cov::enabled() may only add the relaxed load at merge time —
  // the per-event delivery path must not move and must stay
  // allocation-free.
  cov::CoverageMap::instance().reset();
  cov::set_enabled(true);
  const Measurement cov_fanout =
      bench_frame_fanout(fanout_sends, warmup / 8, false);
  cov::set_enabled(false);
  cov::CoverageMap::instance().reset();
  const double cov_overhead_pct =
      fanout.events_per_sec > 0
          ? (fanout.events_per_sec - cov_fanout.events_per_sec) * 100.0 /
                fanout.events_per_sec
          : 0.0;
  std::printf("cov_fanout:    %12.0f frames/s   %.3f allocs/event"
              "   (coverage enabled, %+.2f%% vs disabled)\n",
              cov_fanout.events_per_sec, cov_fanout.allocs_per_event,
              cov_overhead_pct);

  const Measurement spf = best_of([&] {
    return bench_spf_probe(short_mode ? 2'000'000 : 20'000'000);
  });
  std::printf("spf_probe:     %12.0f probes/s   %.3f allocs/probe"
              "   (%llu probes)\n",
              spf.events_per_sec, spf.allocs_per_event,
              static_cast<unsigned long long>(spf.events));

  // The audit workload runs in both modes so CI can gate it. Best-of
  // repeats: wall clock on shared runners is noisy, and only a shift of
  // the fastest run indicates a real regression.
  double audit_ms = bench_audit_wall_ms();
  for (int r = 1; r < repeats; ++r)
    audit_ms = std::min(audit_ms, bench_audit_wall_ms());
  std::printf("audit (paper defaults, jobs=1): %.0f ms\n", audit_ms);

  char json[2048];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"simcore\",\"mode\":\"%s\","
      "\"timer_churn\":{\"events_per_sec\":%.0f,\"allocs_per_event\":%.4f},"
      "\"frame_fanout\":{\"frames_per_sec\":%.0f,\"allocs_per_event\":%.4f},"
      "\"traced_fanout\":{\"frames_per_sec\":%.0f,\"allocs_per_event\":%.4f},"
      "\"obs_fanout\":{\"frames_per_sec\":%.0f,\"allocs_per_event\":%.4f,"
      "\"overhead_pct\":%.2f},"
      "\"cov_fanout\":{\"frames_per_sec\":%.0f,\"allocs_per_event\":%.4f,"
      "\"overhead_pct\":%.2f},"
      "\"spf_probe\":{\"probes_per_sec\":%.0f,\"allocs_per_probe\":%.4f},"
      "\"audit_wall_ms\":%.0f}",
      short_mode ? "short" : "full", timer.events_per_sec,
      timer.allocs_per_event, fanout.events_per_sec, fanout.allocs_per_event,
      traced.events_per_sec, traced.allocs_per_event,
      obs_fanout.events_per_sec, obs_fanout.allocs_per_event,
      obs_overhead_pct, cov_fanout.events_per_sec,
      cov_fanout.allocs_per_event, cov_overhead_pct, spf.events_per_sec,
      spf.allocs_per_event, audit_ms);
  std::printf("\n%s\n", json);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json << "\n";

  // Steady-state allocation gate: the scheduling/delivery machinery must
  // not allocate, with the obs registry off (the shipping default) or on.
  // (The traced path appends to the record vector, which amortises; only
  // the untraced paths are gated.)
  const bool zero_alloc = timer.allocs_per_event == 0.0 &&
                          fanout.allocs_per_event == 0.0 &&
                          obs_fanout.allocs_per_event == 0.0 &&
                          cov_fanout.allocs_per_event == 0.0 &&
                          spf.allocs_per_event == 0.0;
  std::printf(
      "\nzero steady-state allocations (timer + fanout + obs + cov + spf): "
      "%s\n",
      zero_alloc ? "yes" : "NO");

  // Disabled-registry regression gate: against a baseline JSON, the
  // disabled-path rates must stay within --gate-pct. Wall-clock rates only
  // compare on the same machine — CI runs the bench twice and gates the
  // second run against the first, bounding run-to-run drift.
  bool gate_ok = true;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string base = ss.str();
    const auto check = [&](const char* name, double base_rate,
                           double current) {
      if (base_rate <= 0) return;  // shape absent in baseline: skip
      const double delta_pct = (base_rate - current) * 100.0 / base_rate;
      const bool ok = delta_pct <= gate_pct;
      std::printf("gate %-13s %.0f -> %.0f (%+.2f%%, limit %.2f%%): %s\n",
                  name, base_rate, current, -delta_pct, gate_pct,
                  ok ? "ok" : "FAIL");
      if (!ok) gate_ok = false;
    };
    check("timer_churn",
          extract_rate(base, "timer_churn", "events_per_sec"),
          timer.events_per_sec);
    check("frame_fanout",
          extract_rate(base, "frame_fanout", "frames_per_sec"),
          fanout.events_per_sec);
    check("traced_fanout",
          extract_rate(base, "traced_fanout", "frames_per_sec"),
          traced.events_per_sec);
    check("cov_fanout",
          extract_rate(base, "cov_fanout", "frames_per_sec"),
          cov_fanout.events_per_sec);
    check("spf_probe",
          extract_rate(base, "spf_probe", "probes_per_sec"),
          spf.events_per_sec);
    // audit_wall_ms is a time, not a rate: lower is better, and at
    // ~tens of ms it is far noisier than the tight fan-out loops, so it
    // gets its own (looser) limit.
    const std::string audit_needle = "\"audit_wall_ms\":";
    const auto audit_pos = base.find(audit_needle);
    const double base_audit_ms =
        audit_pos == std::string::npos
            ? -1
            : std::atof(base.c_str() + audit_pos + audit_needle.size());
    if (base_audit_ms > 0 && audit_ms > 0) {
      const double delta_pct =
          (audit_ms - base_audit_ms) * 100.0 / base_audit_ms;
      const bool ok = delta_pct <= audit_gate_pct;
      std::printf(
          "gate %-13s %.0f ms -> %.0f ms (%+.2f%%, limit %.2f%%): %s\n",
          "audit_wall_ms", base_audit_ms, audit_ms, delta_pct,
          audit_gate_pct, ok ? "ok" : "FAIL");
      if (!ok) gate_ok = false;
    }
  }

  return zero_alloc && gate_ok ? 0 : 3;
}
