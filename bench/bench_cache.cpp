// Result-cache benchmark + correctness gate.
//
// Runs the paper's default audit (4 topologies × 3 seeds, frr vs bird)
// cold into a fresh cache directory, warm from the loose files, then
// compacts into pack files and runs warm again from the mmap'd packs,
// and measures:
//
//   cold_ms / warm_ms     end-to-end audit wall clock — the headline
//                         number: a warm cache replays every scenario
//                         instead of simulating it. warm_ms is the packed
//                         run; warm_loose_ms the pre-compact one.
//   mean_lookup_us        mean per-entry Store::get latency against the
//                         packed store, fresh Store instances so every
//                         get decodes from the mapping (no memory hits).
//   mean_loose_lookup_us  the same measurement before compaction — the
//                         open+read+decode path packs exist to beat.
//   mean_batch_lookup_us  per-key latency of one Store::get_batch over
//                         the full key set (the run_cached warm path).
//
// Exit status: nonzero if any warm report JSON differs from the cold one
// byte-for-byte, if a warm run missed, if the packed run was not served
// entirely from packs, or if the packed mean lookup exceeds the gate —
// 3µs by default in full mode (the ISSUE's acceptance floor), override
// or enable in short mode with --gate-lookup-us N. Full mode also keeps
// the warm-speedup >= 5x floor. Results are printed and written to
// BENCH_cache.json (override with --out).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/pack.hpp"
#include "cache/store.hpp"
#include "detect/json.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

namespace {

struct Run {
  std::string json;
  double wall_ms = 0;
  harness::ExecReport exec;
};

Run run_audit(const harness::ExperimentConfig& config) {
  const auto start = Clock::now();
  const auto audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config,
      mining::ospf_type_scheme());
  Run run;
  run.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  run.json = detect::to_json(audit.named(), audit.discrepancies);
  run.exec = audit.exec;
  return run;
}

/// Per-entry Store::get latency over every entry in `dir`: the minimum
/// per-round mean across `rounds` timed rounds of >= `min_lookups` gets
/// each. Min-of-means rather than one long mean because the gate runs on
/// shared CI machines — a scheduler preemption can inflate a mean but
/// never deflate a minimum, so the number is the achievable steady-state
/// latency and the regression gate does not flap on noise.
///
/// `fresh_store_per_pass` controls what each get pays. For the loose
/// store it must be true: loose hits are promoted into the in-process
/// memory map, so a reused Store would measure memory hits instead of
/// disk decodes. For the packed store it should be false: pack hits are
/// never promoted (every get decodes from the mapping), so one
/// long-lived Store measures exactly what a warm fleet process pays —
/// open the manifest once, look entries up many times.
double mean_lookup_us(const std::string& dir,
                      const std::vector<cache::ScenarioKey>& keys,
                      bool fresh_store_per_pass,
                      std::size_t rounds = 8,
                      std::size_t min_lookups = 2048) {
  if (keys.empty()) return 0;
  cache::Store reused(dir);
  double best_us = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::size_t done = 0;
    std::size_t found = 0;
    const auto start = Clock::now();
    while (done < min_lookups) {
      std::optional<cache::Store> fresh;
      if (fresh_store_per_pass) fresh.emplace(dir);
      cache::Store& store = fresh ? *fresh : reused;
      for (const auto& key : keys)
        if (store.get(key).has_value()) ++found;
      done += keys.size();
    }
    const double total_us =
        std::chrono::duration<double, std::micro>(Clock::now() - start).count();
    if (found == 0) continue;
    const double mean = total_us / static_cast<double>(found);
    if (best_us == 0 || mean < best_us) best_us = mean;
  }
  return best_us;
}

/// Per-key latency of batched lookups against the packed store (one
/// long-lived Store, min-of-means — same reasoning as mean_lookup_us).
double mean_batch_lookup_us(const std::string& dir,
                            const std::vector<cache::ScenarioKey>& keys,
                            std::size_t rounds = 8,
                            std::size_t min_lookups = 2048) {
  if (keys.empty()) return 0;
  cache::Store store(dir);
  double best_us = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::size_t done = 0;
    std::size_t found = 0;
    const auto start = Clock::now();
    while (done < min_lookups) {
      const auto batch = store.get_batch(keys);
      for (const auto& e : batch.entries)
        if (e.has_value()) ++found;
      done += keys.size();
    }
    const double total_us =
        std::chrono::duration<double, std::micro>(Clock::now() - start).count();
    if (found == 0) continue;
    const double mean = total_us / static_cast<double>(found);
    if (best_us == 0 || mean < best_us) best_us = mean;
  }
  return best_us;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string out_path = "BENCH_cache.json";
  double gate_lookup_us = -1;  // <0: default policy (3µs in full mode)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gate-lookup-us") == 0 && i + 1 < argc) {
      gate_lookup_us = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_cache [--short] [--out file]"
                   " [--gate-lookup-us N]\n");
      return 2;
    }
  }
  if (gate_lookup_us < 0) gate_lookup_us = short_mode ? 0 : 3.0;

  harness::ExperimentConfig config;  // paper defaults: 4 topologies, 3 seeds
  config.jobs = 1;  // serial baseline: isolates caching from parallelism
  if (short_mode) {
    config.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                         topo::Spec{topo::Kind::kMesh, 3}};
    config.seeds = {1};
    config.duration = std::chrono::seconds(90);
  }

  const fs::path dir =
      fs::temp_directory_path() / "nidkit_bench_cache";
  fs::remove_all(dir);
  config.cache_dir = dir.string();

  std::printf("=== Result cache: audit cold vs warm (%s mode) ===\n\n",
              short_mode ? "short" : "full");

  const Run cold = run_audit(config);
  const Run warm_loose = run_audit(config);

  std::vector<cache::ScenarioKey> keys;
  for (const auto& f : cache::Store::ls(config.cache_dir))
    keys.push_back(f.key);
  const double loose_lookup_us =
      mean_lookup_us(config.cache_dir, keys, /*fresh_store_per_pass=*/true);

  const auto compacted = cache::compact(config.cache_dir);
  const bool compact_ok = compacted.has_value() &&
                          compacted->packed == keys.size() &&
                          compacted->skipped == 0;
  const Run warm_packed = run_audit(config);
  const double packed_lookup_us =
      mean_lookup_us(config.cache_dir, keys, /*fresh_store_per_pass=*/false);
  const double batch_lookup_us =
      mean_batch_lookup_us(config.cache_dir, keys);

  const auto files = cache::Store::ls(config.cache_dir);
  std::uint64_t cache_bytes = 0;
  for (const auto& f : files) cache_bytes += f.bytes;
  fs::remove_all(dir);

  const bool identical =
      cold.json == warm_loose.json && cold.json == warm_packed.json;
  const bool all_hits =
      warm_loose.exec.cache_misses == 0 && warm_packed.exec.cache_misses == 0 &&
      warm_loose.exec.cache_hits == cold.exec.cache_misses &&
      warm_packed.exec.cache_hits == cold.exec.cache_misses;
  const bool all_packed =
      warm_packed.exec.cache_pack_hits == warm_packed.exec.cache_hits;
  const double speedup = warm_packed.wall_ms > 0
                             ? cold.wall_ms / warm_packed.wall_ms
                             : 0;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"cache\",\"mode\":\"%s\",\"scenarios\":%llu,"
      "\"cold_ms\":%.2f,\"warm_loose_ms\":%.2f,\"warm_ms\":%.2f,"
      "\"speedup\":%.2f,\"mean_lookup_us\":%.2f,"
      "\"mean_loose_lookup_us\":%.2f,\"mean_batch_lookup_us\":%.2f,"
      "\"cache_bytes\":%llu,\"warm_hits\":%llu,\"warm_pack_hits\":%llu,"
      "\"warm_misses\":%llu,\"report_json_identical\":%s}",
      short_mode ? "short" : "full",
      static_cast<unsigned long long>(cold.exec.cache_misses), cold.wall_ms,
      warm_loose.wall_ms, warm_packed.wall_ms, speedup, packed_lookup_us,
      loose_lookup_us, batch_lookup_us,
      static_cast<unsigned long long>(cache_bytes),
      static_cast<unsigned long long>(warm_packed.exec.cache_hits),
      static_cast<unsigned long long>(warm_packed.exec.cache_pack_hits),
      static_cast<unsigned long long>(warm_packed.exec.cache_misses),
      identical ? "true" : "false");
  std::printf("%s\n\n", json);

  std::printf("correctness checks:\n"
              "  warm report JSONs byte-identical to cold:  %s\n"
              "  warm runs served entirely from cache:      %s\n"
              "  compact packed every entry:                %s\n"
              "  packed run served entirely from packs:     %s\n",
              identical ? "yes" : "NO", all_hits ? "yes" : "NO",
              compact_ok ? "yes" : "NO", all_packed ? "yes" : "NO");
  const bool lookup_ok =
      gate_lookup_us <= 0 || packed_lookup_us <= gate_lookup_us;
  if (gate_lookup_us > 0)
    std::printf("lookup gate:\n"
                "  packed mean lookup <= %.1fus: %s (%.2fus; loose %.2fus,"
                " batch %.2fus)\n",
                gate_lookup_us, lookup_ok ? "yes" : "NO", packed_lookup_us,
                loose_lookup_us, batch_lookup_us);
  std::printf("speedup check (%s in %s mode):\n"
              "  warm >= 5x faster than cold: %s (%.1fx)\n",
              short_mode ? "informational only" : "enforced",
              short_mode ? "short" : "full", speedup >= 5.0 ? "yes" : "NO",
              speedup);

  std::ofstream file(out_path);
  if (file) {
    file << json << "\n";
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }

  if (!identical || !all_hits || !compact_ok || !all_packed) return 1;
  if (!lookup_ok) return 1;
  if (!short_mode && speedup < 5.0) return 1;
  return 0;
}
