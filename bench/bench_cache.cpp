// Result-cache benchmark + correctness gate.
//
// Runs the paper's default audit (4 topologies × 3 seeds, frr vs bird)
// cold into a fresh cache directory, then warm from it, and measures:
//
//   cold_ms / warm_ms   end-to-end audit wall clock — the headline number:
//                       a warm cache replays every scenario instead of
//                       simulating it.
//   lookup_us           mean per-entry Store::get latency against a fresh
//                       Store instance (disk decode, no memory hits).
//
// Exit status: nonzero if the warm report JSON differs from the cold one
// byte-for-byte, if the warm run missed, or — in full mode only — if the
// warm speedup is below 5x (the ISSUE's acceptance floor; --short runs a
// reduced workload where fixed costs dominate, so the ratio is reported
// but not enforced). Results are printed and written to BENCH_cache.json
// (override with --out).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "cache/store.hpp"
#include "detect/json.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

namespace {

struct Run {
  std::string json;
  double wall_ms = 0;
  harness::ExecReport exec;
};

Run run_audit(const harness::ExperimentConfig& config) {
  const auto start = Clock::now();
  const auto audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config,
      mining::ospf_type_scheme());
  Run run;
  run.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  run.json = detect::to_json(audit.named(), audit.discrepancies);
  run.exec = audit.exec;
  return run;
}

/// Mean Store::get latency over every entry in `dir`, using a fresh Store
/// per measurement pass so each get decodes from disk.
double mean_lookup_us(const std::string& dir) {
  const auto entries = cache::Store::ls(dir);
  if (entries.empty()) return 0;
  cache::Store store(dir);
  const auto start = Clock::now();
  std::size_t found = 0;
  for (const auto& e : entries)
    if (store.get(e.key).has_value()) ++found;
  const double total_us =
      std::chrono::duration<double, std::micro>(Clock::now() - start).count();
  return found == 0 ? 0 : total_us / static_cast<double>(found);
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string out_path = "BENCH_cache.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_cache [--short] [--out file]\n");
      return 2;
    }
  }

  harness::ExperimentConfig config;  // paper defaults: 4 topologies, 3 seeds
  config.jobs = 1;  // serial baseline: isolates caching from parallelism
  if (short_mode) {
    config.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                         topo::Spec{topo::Kind::kMesh, 3}};
    config.seeds = {1};
    config.duration = std::chrono::seconds(90);
  }

  const fs::path dir =
      fs::temp_directory_path() / "nidkit_bench_cache";
  fs::remove_all(dir);
  config.cache_dir = dir.string();

  std::printf("=== Result cache: audit cold vs warm (%s mode) ===\n\n",
              short_mode ? "short" : "full");

  const Run cold = run_audit(config);
  const Run warm = run_audit(config);
  const double lookup_us = mean_lookup_us(config.cache_dir);
  const auto files = cache::Store::ls(config.cache_dir);
  std::uint64_t cache_bytes = 0;
  for (const auto& f : files) cache_bytes += f.bytes;
  fs::remove_all(dir);

  const bool identical = cold.json == warm.json;
  const bool all_hits = warm.exec.cache_misses == 0 &&
                        warm.exec.cache_hits == cold.exec.cache_misses;
  const double speedup = warm.wall_ms > 0 ? cold.wall_ms / warm.wall_ms : 0;

  char json[768];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"cache\",\"mode\":\"%s\",\"scenarios\":%llu,"
      "\"cold_ms\":%.2f,\"warm_ms\":%.2f,\"speedup\":%.2f,"
      "\"mean_lookup_us\":%.2f,\"cache_bytes\":%llu,"
      "\"warm_hits\":%llu,\"warm_misses\":%llu,"
      "\"report_json_identical\":%s}",
      short_mode ? "short" : "full",
      static_cast<unsigned long long>(cold.exec.cache_misses), cold.wall_ms,
      warm.wall_ms, speedup, lookup_us,
      static_cast<unsigned long long>(cache_bytes),
      static_cast<unsigned long long>(warm.exec.cache_hits),
      static_cast<unsigned long long>(warm.exec.cache_misses),
      identical ? "true" : "false");
  std::printf("%s\n\n", json);

  std::printf("correctness checks:\n"
              "  warm report JSON byte-identical to cold: %s\n"
              "  warm run served entirely from cache:     %s\n",
              identical ? "yes" : "NO", all_hits ? "yes" : "NO");
  std::printf("speedup check (%s in %s mode):\n"
              "  warm >= 5x faster than cold: %s (%.1fx)\n",
              short_mode ? "informational only" : "enforced",
              short_mode ? "short" : "full", speedup >= 5.0 ? "yes" : "NO",
              speedup);

  std::ofstream file(out_path);
  if (file) {
    file << json << "\n";
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
  }

  if (!identical || !all_hits) return 1;
  if (!short_mode && speedup < 5.0) return 1;
  return 0;
}
