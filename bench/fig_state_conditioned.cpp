// Future-work reproduction (§3): "we also aim to scale our system to
// consider ... router states during the packet causal relationship
// computations."
//
// The trace's state prober snapshots each router's highest neighbor-FSM
// state on every packet event; the state-conditioned key scheme keys each
// packet as "<type>@<state>" (e.g. "LSU@Exchange", "Hello@Full"). The
// bench prints, per implementation, the state-conditioned discrepancies —
// strictly more precise flags than Table 1's (a relationship may exist in
// both implementations but in *different states*, which type-level mining
// cannot see).
#include <cstdio>
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  harness::ExperimentConfig config;  // paper defaults
  const auto scheme = mining::ospf_state_scheme();
  const harness::AuditResult audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config, scheme);

  std::printf("=== State-conditioned packet causal relationships ===\n\n");
  for (const auto& name : audit.names) {
    const auto& set = audit.by_impl.at(name);
    std::printf("[%s] %zu relationship cells\n", name.c_str(), set.size());
  }

  std::cout << "\n=== State-conditioned discrepancies (candidate "
               "non-interoperabilities) ===\n"
            << detect::render_discrepancies(audit.discrepancies);

  // Consistency check against the coarse scheme: every type-level
  // discrepancy must still be visible at state granularity (projecting
  // state-conditioned cells onto types is a superset of type mining).
  const harness::AuditResult coarse = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config,
      mining::ospf_type_scheme());
  std::printf("\ntype-level cells: frr=%zu bird=%zu; state-conditioned: "
              "frr=%zu bird=%zu\n",
              coarse.by_impl.at("frr").size(), coarse.by_impl.at("bird").size(),
              audit.by_impl.at("frr").size(), audit.by_impl.at("bird").size());
  const bool finer = audit.by_impl.at("frr").size() >=
                         coarse.by_impl.at("frr").size() &&
                     audit.by_impl.at("bird").size() >=
                         coarse.by_impl.at("bird").size();
  std::printf("state granularity is at least as fine as type granularity: "
              "%s\n", finer ? "yes" : "NO");
  return finer ? 0 : 1;
}
