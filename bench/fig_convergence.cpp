// Ablation: what the discretionary behaviours cost and buy.
//
// The same knobs that create minable relationship differences also change
// measurable protocol performance. This bench compares the three OSPF
// profiles on bring-up time (time until every expected adjacency is Full)
// and bring-up traffic — showing, e.g., that FRR's immediate-hello
// behaviour buys faster convergence, which is presumably *why* FRR does it.
#include <cstdio>

#include "harness/scenario.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  const std::vector<topo::Spec> topologies = {
      {topo::Kind::kLinear, 2}, {topo::Kind::kLinear, 5},
      {topo::Kind::kMesh, 5},   {topo::Kind::kLan, 4}};

  std::printf("=== Convergence time and bring-up cost by profile "
              "(TDelay 900 ms) ===\n\n");
  std::printf("%-10s %-8s %14s %10s %10s\n", "topology", "profile",
              "converged-at", "packets", "retrans");

  bool frr_never_slower_everywhere = true;
  for (const auto& spec : topologies) {
    SimTime frr_time{0}, bird_time{0};
    for (const auto& profile :
         {ospf::frr_profile(), ospf::bird_profile(), ospf::strict_profile()}) {
      harness::Scenario s;
      s.topology = spec;
      s.ospf_profile = profile;
      s.churn_times = {};  // bring-up only
      const auto r = harness::run_scenario(s);
      std::uint64_t packets = 0;
      for (int t = 1; t <= ospf::kNumPacketTypes; ++t)
        packets += r.ospf_totals.tx_by_type[t];
      std::printf("%-10s %-8s %13.1fs %10llu %10llu\n", spec.name().c_str(),
                  profile.name.c_str(),
                  r.convergence_time.count() / 1e6,
                  static_cast<unsigned long long>(packets),
                  static_cast<unsigned long long>(
                      r.ospf_totals.retransmissions));
      if (profile.name == "frr") frr_time = r.convergence_time;
      if (profile.name == "bird") bird_time = r.convergence_time;
    }
    std::printf("\n");
    // "Never slower" with a 1 s sampling tolerance.
    if (frr_time > bird_time + 1s) frr_never_slower_everywhere = false;
  }

  std::printf("shape check:\n"
              "  FRR's eager hellos never converge slower than BIRD's "
              "timer-driven ones: %s\n",
              frr_never_slower_everywhere ? "yes" : "NO");
  return frr_never_slower_everywhere ? 0 : 1;
}
