// Methodology extension (beyond the paper): relationship stability across
// seeds.
//
// First-match attribution is timing-sensitive, so a single run's relation
// set mixes an implementation's *systematic* behaviour with one-off
// schedule artifacts. Mining five seeds independently and histogramming
// per-cell seed coverage separates the two — and filtering the comparison
// to fully-stable cells yields high-confidence flags (the paper's Table 2
// discrepancy survives; most single-seed noise does not).
#include <cstdio>

#include "bench_flags.hpp"
#include "detect/detect.hpp"
#include "harness/stability.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  harness::ExperimentConfig config;
  config.seeds = {1, 2, 3, 4, 5};
  config.jobs = bench::jobs_from_argv(argc, argv);

  std::printf("=== Relationship stability across %zu seeds (type "
              "granularity) ===\n\n",
              config.seeds.size());
  std::printf("%-6s %10s %10s\n", "impl", "seen-in-k", "cells");
  std::size_t frr_total = 0, frr_stable = 0;
  for (const auto& profile : {ospf::frr_profile(), ospf::bird_profile()}) {
    const auto report = harness::ospf_relation_stability(
        profile, config, mining::ospf_type_scheme());
    std::size_t histogram[6] = {};
    for (const auto& cell : report) ++histogram[cell.seeds_seen];
    for (std::size_t k = config.seeds.size(); k >= 1; --k) {
      std::printf("%-6s %8zu/%zu %10zu\n", profile.name.c_str(), k,
                  config.seeds.size(), histogram[k]);
    }
    if (profile.name == "frr") {
      frr_total = report.size();
      frr_stable = histogram[config.seeds.size()];
    }
    std::printf("\n");
  }

  // High-confidence comparison: only cells present in every seed.
  const auto frr = harness::stable_relations(
      ospf::frr_profile(), config, mining::ospf_greater_lssn_scheme(), 1.0);
  const auto bird = harness::stable_relations(
      ospf::bird_profile(), config, mining::ospf_greater_lssn_scheme(), 1.0);
  const auto flags = detect::compare({"frr", &frr}, {"bird", &bird});
  std::printf("fully-stable greater-LS-SN discrepancies: %zu\n",
              flags.size());
  bool headline = false;
  for (const auto& d : flags)
    if (d.cell.response == "LSAck+gtSN" && d.present_in == "bird")
      headline = true;

  const bool has_unstable_tail = frr_stable < frr_total;
  std::printf("\nshape check:\n"
              "  a stable core exists alongside an unstable tail: %s "
              "(%zu/%zu cells fully stable)\n"
              "  the Table 2 headline discrepancy survives 100%%-stability "
              "filtering: %s\n",
              has_unstable_tail ? "yes" : "NO", frr_stable, frr_total,
              headline ? "yes" : "NO");
  return (has_unstable_tail && headline) ? 0 : 1;
}
