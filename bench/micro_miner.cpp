// Microbenchmarks: causal-miner and simulator throughput, plus ablations
// of the miner's design choices called out in DESIGN.md:
//
//   * horizon cap on vs off — the paper's implicit bound (TDelay below the
//     retransmission timeout) made explicit;
//   * window factor 1x vs 2x vs 3x — the paper's "at least 2*TDelay" rule.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "harness/experiment.hpp"
#include "mining/miner.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

namespace {

/// One mesh-5 trace, shared by the miner benches (computed once).
const trace::TraceLog& mesh5_trace() {
  static const trace::TraceLog log = [] {
    harness::Scenario s;
    s.topology = {topo::Kind::kMesh, 5};
    s.ospf_profile = ospf::frr_profile();
    s.duration = 180s;
    return harness::run_scenario(s).log;
  }();
  return log;
}

void BM_ScenarioMesh5(benchmark::State& state) {
  for (auto _ : state) {
    harness::Scenario s;
    s.topology = {topo::Kind::kMesh, 5};
    s.ospf_profile = ospf::frr_profile();
    s.duration = 180s;
    s.seed = 1;
    auto r = harness::run_scenario(s);
    benchmark::DoNotOptimize(r.log.size());
  }
}
BENCHMARK(BM_ScenarioMesh5)->Unit(benchmark::kMillisecond);

void BM_MinePairs(benchmark::State& state) {
  const auto& log = mesh5_trace();
  mining::MinerConfig cfg;
  for (auto _ : state) {
    mining::CausalMiner miner(cfg);
    benchmark::DoNotOptimize(miner.mine_pairs(log));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * log.size()));
}
BENCHMARK(BM_MinePairs);

void BM_MineAndClassify(benchmark::State& state) {
  const auto& log = mesh5_trace();
  mining::MinerConfig cfg;
  const auto scheme = mining::ospf_type_scheme();
  for (auto _ : state) {
    mining::CausalMiner miner(cfg);
    benchmark::DoNotOptimize(miner.mine(log, scheme));
  }
}
BENCHMARK(BM_MineAndClassify);

void BM_TruePairs(benchmark::State& state) {
  const auto& log = mesh5_trace();
  for (auto _ : state) benchmark::DoNotOptimize(mining::true_pairs(log));
}
BENCHMARK(BM_TruePairs);

// ---- Ablation: horizon cap ----
// Without the cap, a stimulus can be paired with a response minutes later;
// the counters show how many extra (meaningless) cells that admits.
void BM_Ablation_Horizon(benchmark::State& state) {
  const auto& log = mesh5_trace();
  mining::MinerConfig cfg;
  cfg.horizon = state.range(0) == 0 ? SimDuration{0}  // uncapped
                                    : SimDuration{state.range(0) * 1000};
  const auto scheme = mining::ospf_type_scheme();
  std::size_t cells = 0;
  for (auto _ : state) {
    mining::CausalMiner miner(cfg);
    const auto set = miner.mine(log, scheme);
    cells = set.size();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["cells"] = static_cast<double>(cells);
}
BENCHMARK(BM_Ablation_Horizon)->Arg(0)->Arg(1000)->Arg(5000)->Arg(30000);

// ---- Ablation: window factor ----
void BM_Ablation_WindowFactor(benchmark::State& state) {
  const auto& log = mesh5_trace();
  mining::MinerConfig cfg;
  cfg.window_factor = static_cast<double>(state.range(0));
  const auto scheme = mining::ospf_type_scheme();
  std::size_t unobserved = 0;
  for (auto _ : state) {
    mining::CausalMiner miner(cfg);
    const auto set = miner.mine(log, scheme);
    const auto acc = mining::score_cells(log, set, scheme);
    unobserved = acc.unobserved;
    benchmark::DoNotOptimize(unobserved);
  }
  state.counters["unobserved"] = static_cast<double>(unobserved);
}
BENCHMARK(BM_Ablation_WindowFactor)->Arg(1)->Arg(2)->Arg(3);

// ---- Simulator event throughput ----
void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    netsim::Simulator sim;
    const std::int64_t n = state.range(0);
    std::int64_t fired = 0;
    for (std::int64_t i = 0; i < n; ++i)
      sim.schedule(SimDuration{i}, [&fired] { ++fired; });
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEvents)->Arg(1000)->Arg(100000);

}  // namespace

// Custom main so CI can pass the same `--short` flag as the other benches:
// it maps to a small per-bench time budget (the fixture trace still runs
// once in full) instead of google-benchmark's 0.5 s default, keeping the
// release-bench smoke run to a few seconds while exercising every bench.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool short_mode = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--short") == 0)
      short_mode = true;
    else
      args.push_back(argv[i]);
  }
  static char min_time[] = "--benchmark_min_time=0.05";
  if (short_mode) args.push_back(min_time);
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
