// Reproduces Table 2 of the paper: refined packet causal relationships —
// can sending/receiving LSU or LSAck packets trigger LSU/LSAck packets
// carrying a *greater LS sequence number* for the same LSA?
//
// The paper's result: both implementations exhibit LSU-with-greater-LS-SN
// responses, but only BIRD ever produces an *LSAck* with a greater LS-SN
// (it acknowledges from its database, which may hold a newer instance than
// the update being acknowledged). FRR echoes the received instance in its
// acks, so its row is all Ø.
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  harness::ExperimentConfig config;  // paper defaults
  const auto scheme = mining::ospf_greater_lssn_scheme();
  const harness::AuditResult audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config, scheme);

  const std::vector<std::string> stims = {"LSU", "LSAck"};
  const std::vector<std::string> resps = {"LSU+gtSN", "LSAck+gtSN"};

  std::cout << "=== Table 2: greater LS sequence number in LSA for LSU and "
               "LSAck ===\n\n"
            << detect::render_matrix(audit.named(), stims, resps,
                                     mining::RelationDirection::kSendToRecv)
            << "\n=== Flagged candidate non-interoperabilities ===\n"
            << detect::render_discrepancies(audit.discrepancies);

  // Paper shape: FRR never sends/receives greater-LS-SN *acks*; BIRD does.
  const auto& frr = audit.by_impl.at("frr");
  const auto& bird = audit.by_impl.at("bird");
  const auto dir = mining::RelationDirection::kSendToRecv;
  const bool frr_no_gt_acks = !frr.has(dir, "LSU", "LSAck+gtSN") &&
                              !frr.has(dir, "LSAck", "LSAck+gtSN");
  const bool bird_gt_acks = bird.has(dir, "LSU", "LSAck+gtSN");
  const bool both_gt_lsu = frr.has(dir, "LSU", "LSU+gtSN") &&
                           frr.has(dir, "LSAck", "LSU+gtSN") &&
                           bird.has(dir, "LSU", "LSU+gtSN") &&
                           bird.has(dir, "LSAck", "LSU+gtSN");

  std::cout << "\npaper shape check:\n"
            << "  both impls show LSU-with-greater-SN responses:      "
            << (both_gt_lsu ? "yes" : "NO") << "\n"
            << "  FRR never produces greater-SN LSAcks (row all zero): "
            << (frr_no_gt_acks ? "yes" : "NO") << "\n"
            << "  BIRD produces greater-SN LSAcks after Snd(LSU):      "
            << (bird_gt_acks ? "yes" : "NO") << "\n";
  return (frr_no_gt_acks && bird_gt_acks && both_gt_lsu) ? 0 : 1;
}
