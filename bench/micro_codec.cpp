// Microbenchmarks: OSPF wire codec and checksum throughput.
//
// The mining pipeline decodes every captured frame once; these benches
// establish that the codec is nowhere near the bottleneck (a single core
// decodes hundreds of thousands of packets per second — traces from the
// paper-scale experiments hold a few thousand).
#include <benchmark/benchmark.h>

#include "packet/ospf_packet.hpp"
#include "packet/rip_packet.hpp"
#include "util/checksum.hpp"

using namespace nidkit;
using namespace nidkit::ospf;

namespace {

OspfPacket sample_hello() {
  HelloBody h;
  h.network_mask = Ipv4Addr{255, 255, 255, 0};
  for (int i = 1; i <= 4; ++i)
    h.neighbors.push_back(RouterId{static_cast<std::uint32_t>(i)});
  return make_packet(RouterId{1, 1, 1, 1}, kBackboneArea, std::move(h));
}

Lsa sample_router_lsa(int links) {
  Lsa lsa;
  lsa.header.type = LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{1, 1, 1, 1};
  lsa.header.advertising_router = RouterId{1, 1, 1, 1};
  RouterLsaBody body;
  for (int i = 0; i < links; ++i) {
    body.links.push_back(RouterLink{Ipv4Addr{static_cast<std::uint32_t>(i + 2)},
                                    Ipv4Addr{10, 0, 0, 1},
                                    RouterLinkType::kPointToPoint, 1});
  }
  lsa.body = std::move(body);
  lsa.finalize();
  return lsa;
}

OspfPacket sample_lsu(int lsas, int links) {
  LsUpdateBody b;
  for (int i = 0; i < lsas; ++i) {
    Lsa lsa = sample_router_lsa(links);
    lsa.header.link_state_id = Ipv4Addr{static_cast<std::uint32_t>(i + 1)};
    lsa.header.advertising_router =
        RouterId{static_cast<std::uint32_t>(i + 1)};
    lsa.finalize();
    b.lsas.push_back(std::move(lsa));
  }
  return make_packet(RouterId{1, 1, 1, 1}, kBackboneArea, std::move(b));
}

void BM_EncodeHello(benchmark::State& state) {
  const auto pkt = sample_hello();
  for (auto _ : state) benchmark::DoNotOptimize(encode(pkt));
}
BENCHMARK(BM_EncodeHello);

void BM_DecodeHello(benchmark::State& state) {
  const auto wire = encode(sample_hello());
  for (auto _ : state) {
    auto out = decode(wire);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_DecodeHello);

void BM_EncodeLsu(benchmark::State& state) {
  const auto pkt = sample_lsu(static_cast<int>(state.range(0)), 4);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto wire = encode(pkt);
    bytes += wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EncodeLsu)->Arg(1)->Arg(4)->Arg(16);

void BM_DecodeLsu(benchmark::State& state) {
  const auto wire = encode(sample_lsu(static_cast<int>(state.range(0)), 4));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto out = decode(wire);
    benchmark::DoNotOptimize(out.ok());
    bytes += wire.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_DecodeLsu)->Arg(1)->Arg(4)->Arg(16);

void BM_FletcherChecksum(benchmark::State& state) {
  Lsa lsa = sample_router_lsa(static_cast<int>(state.range(0)));
  ByteWriter w;
  lsa.encode(w);
  const auto view = w.view();
  for (auto _ : state)
    benchmark::DoNotOptimize(fletcher_checksum_ok(view.subspan(2)));
}
BENCHMARK(BM_FletcherChecksum)->Arg(2)->Arg(16)->Arg(64);

void BM_InternetChecksum(benchmark::State& state) {
  const auto wire = encode(sample_lsu(8, 4));
  for (auto _ : state) benchmark::DoNotOptimize(internet_checksum(wire));
}
BENCHMARK(BM_InternetChecksum);

void BM_RipRoundTrip(benchmark::State& state) {
  rip::RipPacket pkt;
  pkt.command = rip::Command::kResponse;
  for (int i = 0; i < 25; ++i) {
    rip::RipEntry e;
    e.prefix = Ipv4Addr{static_cast<std::uint32_t>((10u << 24) | (i << 8))};
    e.mask = Ipv4Addr{255, 255, 255, 0};
    e.metric = 1 + (i % 15);
    pkt.entries.push_back(e);
  }
  for (auto _ : state) {
    auto wire = rip::encode(pkt);
    auto out = rip::decode(wire);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_RipRoundTrip);

}  // namespace

BENCHMARK_MAIN();
