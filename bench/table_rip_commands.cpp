// Protocol-generality table (motivated by the paper's §1: interoperability
// bugs are not OSPF-specific): the same pipeline applied to two RIPv2
// behaviour variants.
//
//   rip-classic — RFC-suggested timers, plain split horizon, 2 s
//                 triggered-update suppression;
//   rip-eager   — near-immediate triggered updates, poisoned reverse.
//
// The causal miner needs nothing protocol-specific beyond a key scheme
// (command names here), demonstrating the technique's black-box claim.
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  harness::ExperimentConfig config;
  config.duration = 240s;  // RIP's 30 s periodic timer needs longer runs

  const auto scheme = mining::rip_refined_scheme();
  const harness::AuditResult audit = harness::audit_rip(
      {rip::rip_classic_profile(), rip::rip_eager_profile()}, config, scheme);

  const std::vector<std::string> stims = {"Request(full)", "Request",
                                          "Response", "Response(poison)"};
  const std::vector<std::string> resps = stims;

  std::cout << "=== RIP packet causal relationships (field-refined) ===\n\n"
            << detect::render_matrix(audit.named(), stims, resps,
                                     mining::RelationDirection::kSendToRecv)
            << "\n=== Flagged candidate non-interoperabilities ===\n"
            << detect::render_discrepancies(audit.discrepancies);

  // Shape: both variants answer the startup whole-table request, and the
  // poisoned-reverse variant is the only one emitting infinity-metric
  // responses in steady state — the technique must flag that discrepancy.
  const auto dir = mining::RelationDirection::kSendToRecv;
  const bool both_answer =
      audit.by_impl.at("rip-classic").has(dir, "Request(full)", "Response") &&
      audit.by_impl.at("rip-eager").has(dir, "Request(full)", "Response");
  bool poison_flagged = false;
  for (const auto& d : audit.discrepancies) {
    if ((d.cell.stimulus == "Response(poison)" ||
         d.cell.response == "Response(poison)") &&
        d.present_in == "rip-eager")
      poison_flagged = true;
  }
  std::cout << "\nshape check:\n  both variants answer whole-table requests: "
            << (both_answer ? "yes" : "NO")
            << "\n  poisoned-reverse traffic flagged as eager-only: "
            << (poison_flagged ? "yes" : "NO") << "\n";
  return (both_answer && poison_flagged) ? 0 : 1;
}
