// Reproduces the paper's TDelay calibration (§3): "we set TDelay to
// 900 ms, because the reduction in the unobserved packet causal
// relationships plateaued with this amount of delay."
//
// We sweep the injected TDelay from 0 to 1500 ms over the paper's four
// topologies with realistic RTT variance (±400 ms jitter, modeling
// container scheduling + processing time) and report, per TDelay:
//
//   unobserved — true relationship cells the miner failed to observe
//                (computable here because the simulator stamps every frame
//                with ground-truth provenance, which the paper's black-box
//                setting cannot);
//   spurious   — mined cells not supported by any provenance-caused pair;
//   precision/recall — pair-level attribution accuracy.
//
// Expected shape: unobserved falls steeply once TDelay exceeds the RTT/
// processing variance, then plateaus; pushing TDelay toward the
// retransmission timeout (5 s here) buys nothing further — exactly the
// paper's "greater than the variance in RTT … lower than the
// retransmission timeout" guidance.
#include <cstdio>

#include "bench_flags.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  harness::ExperimentConfig config;
  config.seeds = {1, 2};
  config.link_jitter = 400ms;
  config.jobs = bench::jobs_from_argv(argc, argv);

  std::vector<SimDuration> tdelays;
  for (int ms = 0; ms <= 1500; ms += 150) tdelays.push_back(SimDuration{ms * 1000});

  const auto sweep = harness::tdelay_sweep(
      ospf::frr_profile(), config, tdelays, mining::ospf_type_scheme());

  std::printf("=== TDelay calibration sweep (FRR profile, 4 topologies, "
              "jitter 400 ms) ===\n\n");
  std::printf("%8s %12s %10s %12s %11s %9s\n", "TDelay", "unobserved",
              "spurious", "mined-cells", "precision", "recall");
  for (const auto& p : sweep) {
    std::printf("%6lldms %12zu %10zu %12zu %11.3f %9.3f\n",
                static_cast<long long>(p.tdelay.count() / 1000),
                p.unobserved_cells, p.spurious_cells, p.mined_cells,
                p.precision, p.recall);
  }

  // Shape check: the unobserved count at the calibrated 900 ms must sit at
  // (or near) the plateau — substantially below the TDelay=0 value, and
  // within noise of the 1500 ms tail.
  const auto& first = sweep.front();
  const auto& tail = sweep.back();
  std::size_t at_900 = first.unobserved_cells;
  for (const auto& p : sweep)
    if (p.tdelay == 900ms) at_900 = p.unobserved_cells;

  const bool drops = at_900 * 3 <= first.unobserved_cells * 2;  // >=33% drop
  const bool plateaued =
      at_900 <= tail.unobserved_cells + 5 && tail.unobserved_cells <= at_900 + 5;
  std::printf("\npaper shape check:\n"
              "  unobserved(900ms) well below unobserved(0ms): %s (%zu vs %zu)\n"
              "  flat between 900ms and 1500ms (plateau):      %s (%zu vs %zu)\n",
              drops ? "yes" : "NO", at_900, first.unobserved_cells,
              plateaued ? "yes" : "NO", at_900, tail.unobserved_cells);
  return (drops && plateaued) ? 0 : 1;
}
