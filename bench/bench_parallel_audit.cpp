// Parallel executor benchmark + determinism gate.
//
// Runs the paper's audit (4 topologies × 3 seeds, frr vs bird) at --jobs
// 1, 4 and 8 and verifies that the report JSON is byte-identical across
// every worker count — the executor's core guarantee. Wall-clock numbers
// are printed as a machine-readable JSON entry (recorded in
// BENCH_parallel_audit.json at the repo root).
//
// Exit status: nonzero if any JSON differs, or if the jobs=4 speedup is
// below 2x *on hardware with at least 4 cores*. On smaller machines (CI
// containers are often 1-2 vCPUs) the speedup check is reported but not
// enforced — a single core cannot run two simulations at once, and
// failing the build over physics would be noise.
#include <chrono>
#include <cstdio>
#include <string>

#include "detect/json.hpp"
#include "harness/experiment.hpp"
#include "util/thread_pool.hpp"

using namespace nidkit;
using Clock = std::chrono::steady_clock;

namespace {

struct Run {
  std::string json;
  double wall_ms = 0;
  double scenario_ms = 0;     ///< sum of per-scenario wall times
  std::size_t queue_depth = 0;
};

Run run_audit(std::size_t jobs) {
  harness::ExperimentConfig config;  // paper defaults: 4 topologies, 3 seeds
  config.jobs = jobs;
  const auto start = Clock::now();
  const auto audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config,
      mining::ospf_type_scheme());
  Run run;
  run.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  run.json = detect::to_json(audit.named(), audit.discrepancies);
  for (const auto& t : audit.exec.tasks) run.scenario_ms += t.wall_ms;
  run.queue_depth = audit.exec.max_queue_depth;
  return run;
}

}  // namespace

int main() {
  const std::size_t cores = default_worker_count();
  std::printf("=== Parallel audit: 4 topologies x 3 seeds x {frr,bird}, "
              "%zu hardware threads ===\n\n", cores);

  const Run j1 = run_audit(1);
  const Run j4 = run_audit(4);
  const Run j8 = run_audit(8);

  const bool identical = j1.json == j4.json && j1.json == j8.json;
  const double speedup4 = j4.wall_ms > 0 ? j1.wall_ms / j4.wall_ms : 0;
  const double speedup8 = j8.wall_ms > 0 ? j1.wall_ms / j8.wall_ms : 0;

  std::printf("{\"bench\":\"parallel_audit\",\"topologies\":4,\"seeds\":3,"
              "\"implementations\":2,\"hardware_concurrency\":%zu,"
              "\"wall_ms\":{\"jobs1\":%.2f,\"jobs4\":%.2f,\"jobs8\":%.2f},"
              "\"scenario_ms_total\":{\"jobs1\":%.2f,\"jobs4\":%.2f},"
              "\"max_queue_depth_jobs8\":%zu,"
              "\"speedup\":{\"jobs4\":%.2f,\"jobs8\":%.2f},"
              "\"report_json_identical\":%s}\n\n",
              cores, j1.wall_ms, j4.wall_ms, j8.wall_ms, j1.scenario_ms,
              j4.scenario_ms, j8.queue_depth, speedup4, speedup8,
              identical ? "true" : "false");

  std::printf("determinism check:\n"
              "  report JSON byte-identical across jobs 1/4/8: %s\n",
              identical ? "yes" : "NO");
  const bool enforce_speedup = cores >= 4;
  std::printf("speedup check (%s on %zu-core hardware):\n"
              "  jobs=4 speedup >= 2x: %s (%.2fx)\n",
              enforce_speedup ? "enforced" : "informational only",
              cores, speedup4 >= 2.0 ? "yes" : "NO", speedup4);

  if (!identical) return 1;
  if (enforce_speedup && speedup4 < 2.0) return 1;
  return 0;
}
