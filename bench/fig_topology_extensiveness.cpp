// Reproduces the paper's topology-extensiveness claim (§2): "we stopped
// seeing significant changes in the packet causal relationships after
// considering these four topologies, but additional topologies can be
// added."
//
// We add topologies one at a time — the paper's four first, then four
// extras (ring-4, star-5, tree-7, lan-4) — and report how many new
// relationship cells each contributes to the cumulative union. Expected
// shape: the paper's four topologies contribute nearly everything; the
// extras add little to nothing.
#include <cstdio>

#include "bench_flags.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  harness::ExperimentConfig config;
  config.topologies = topo::extended_topologies();
  config.seeds = {1, 2};
  config.jobs = bench::jobs_from_argv(argc, argv);

  std::printf("=== Relationship extensiveness vs topology set ===\n\n");

  std::size_t after_paper_four = 0;
  std::size_t total = 0;
  for (const auto& profile : {ospf::frr_profile(), ospf::bird_profile()}) {
    const auto points = harness::topology_extensiveness(
        profile, config, mining::ospf_type_scheme());
    std::printf("[%s]\n%12s %10s %12s\n", profile.name.c_str(), "+topology",
                "new-cells", "cumulative");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      std::printf("%12s %10zu %12zu\n", p.topology.c_str(), p.new_cells,
                  p.cumulative_cells);
      if (profile.name == "frr") {
        if (i == 3) after_paper_four = p.cumulative_cells;
        total = p.cumulative_cells;
      }
    }
    std::printf("\n");
  }

  const bool plateau = total <= after_paper_four + 2;
  std::printf("paper shape check:\n"
              "  four extra topologies add <=2 cells beyond the paper's "
              "four: %s (%zu -> %zu)\n",
              plateau ? "yes" : "NO", after_paper_four, total);
  return plateau ? 0 : 1;
}
