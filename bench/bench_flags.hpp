// Tiny argv helper shared by the bench drivers: the figure binaries take
// no positional arguments, only an optional `--jobs N` for the parallel
// experiment executor (0 = hardware concurrency; results are identical
// for every N, only wall-clock changes).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nidkit::bench {

inline std::size_t jobs_from_argv(int argc, char** argv,
                                  std::size_t fallback = 0) {
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const long v = std::strtol(argv[i + 1], nullptr, 10);
      if (v >= 0) return static_cast<std::size_t>(v);
      std::fprintf(stderr, "ignoring negative --jobs %s\n", argv[i + 1]);
    }
  }
  return fallback;
}

}  // namespace nidkit::bench
