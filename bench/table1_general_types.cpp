// Reproduces Table 1 of the paper: packet causal relationships by general
// OSPF packet type, FRR-like vs BIRD-like, mined over the paper's four
// topologies (linear-2, mesh-3, linear-5, mesh-5) with TDelay = 900 ms.
//
// Presentation follows the paper: columns Snd(type), rows Rcv(type), in
// the paper's type order (Hello, DB Description, LS Update, LS Request,
// LS Acknowledge — note the paper swaps the RFC's 3/4 order), one column
// block per implementation, ✓ = relationship observed at least once,
// Ø = never observed. The flagged discrepancy list below the matrix is the
// technique's actual output: candidate non-interoperabilities.
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  harness::ExperimentConfig config;  // paper defaults: 4 topologies, 900 ms
  const auto scheme = mining::ospf_type_scheme();
  const harness::AuditResult audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config, scheme);

  // Paper presentation order: (1) Hello (2) DBD (3) LSU (4) LSR (5) LSAck.
  const std::vector<std::string> order = {"Hello", "DBD", "LSU", "LSR",
                                          "LSAck"};

  std::cout << "=== Table 1: packet causal relationships, general types ===\n"
            << "(send->recv direction: cell (Rcv R, Snd S) is checked when,\n"
            << " after sending S, the first packet received >= 2*TDelay\n"
            << " later was an R, in at least one observed instance)\n\n"
            << detect::render_matrix(audit.named(), order, order,
                                     mining::RelationDirection::kSendToRecv);

  std::cout << "\n--- recv->send direction (the paper reports it is "
               "consistent; shown for completeness) ---\n\n"
            << detect::render_matrix(audit.named(), order, order,
                                     mining::RelationDirection::kRecvToSend,
                                     "Snd", "Rcv");

  std::cout << "\n=== Flagged candidate non-interoperabilities ===\n"
            << detect::render_discrepancies(audit.discrepancies);

  std::cout << "\npaper shape check: matrices must differ between the two "
               "implementations,\nwith discrepancies concentrated in the "
               "LSR/LSU/LSAck (database-exchange and\nflooding) region and "
               "none in the plain Hello<->Hello handshake.\n";
  const bool differs = !audit.discrepancies.empty();
  bool hello_hello_flagged = false;
  for (const auto& d : audit.discrepancies)
    if (d.cell.stimulus == "Hello" && d.cell.response == "Hello" &&
        d.direction == mining::RelationDirection::kSendToRecv)
      hello_hello_flagged = true;
  std::cout << "  implementations differ: " << (differs ? "yes" : "NO")
            << "\n  Hello->Hello agrees:    "
            << (hello_hello_flagged ? "NO" : "yes") << "\n";
  return differs && !hello_hello_flagged ? 0 : 1;
}
