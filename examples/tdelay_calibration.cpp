// TDelay calibration — how a user of the toolkit picks the delay to
// inject, reproducing the paper's §3 methodology ("we set TDelay to
// 900 ms, because the reduction in the unobserved packet causal
// relationships plateaued").
//
// The example sweeps candidate TDelays, prints the accuracy curve, and
// programmatically picks the knee: the smallest TDelay whose unobserved-
// relationship count is within tolerance of the plateau level. Because the
// simulator stamps ground-truth provenance on every frame, the example can
// also print the pair-level precision/recall the paper could not measure.
#include <algorithm>
#include <cstdio>

#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  harness::ExperimentConfig config;
  config.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                       topo::Spec{topo::Kind::kMesh, 3}};
  config.seeds = {1, 2};
  config.link_jitter = 400ms;  // the variance TDelay must dominate

  std::vector<SimDuration> candidates;
  for (int ms = 0; ms <= 1500; ms += 100)
    candidates.push_back(SimDuration{ms * 1000});

  const auto sweep = harness::tdelay_sweep(
      ospf::frr_profile(), config, candidates, mining::ospf_type_scheme());

  std::printf("%8s %12s %10s %11s %9s\n", "TDelay", "unobserved", "spurious",
              "precision", "recall");
  for (const auto& p : sweep)
    std::printf("%6lldms %12zu %10zu %11.3f %9.3f\n",
                static_cast<long long>(p.tdelay.count() / 1000),
                p.unobserved_cells, p.spurious_cells, p.precision, p.recall);

  // Pick the knee: plateau level = median of the last third of the sweep;
  // calibrated TDelay = first point within +2 cells of it.
  std::vector<std::size_t> tail;
  for (std::size_t i = sweep.size() * 2 / 3; i < sweep.size(); ++i)
    tail.push_back(sweep[i].unobserved_cells);
  std::sort(tail.begin(), tail.end());
  const std::size_t plateau = tail[tail.size() / 2];

  SimDuration calibrated = sweep.back().tdelay;
  for (const auto& p : sweep) {
    if (p.tdelay.count() == 0) continue;  // 0 disables the technique
    if (p.unobserved_cells <= plateau + 2) {
      calibrated = p.tdelay;
      break;
    }
  }
  std::printf("\nplateau level: %zu unobserved cells\n", plateau);
  std::printf("calibrated TDelay: %lld ms (paper: 900 ms on its Docker "
              "testbed)\n",
              static_cast<long long>(calibrated.count() / 1000));
  std::printf("rule of thumb confirmed: pick TDelay above the RTT/processing"
              " variance\n(%lld ms here) and below the retransmission timeout"
              " (5000 ms).\n",
              static_cast<long long>(config.link_jitter.count() / 1000));
  return 0;
}
