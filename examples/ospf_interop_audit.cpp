// Full interoperability audit — the paper's complete workflow on the
// paper's configuration:
//
//   * three implementations under test (FRR-like, BIRD-like, and a strict
//     RFC-literal profile as a reference comparator);
//   * the paper's four topologies plus the extended set, three seeds each;
//   * three keying granularities (general types, greater-LS-SN refinement,
//     state-conditioned);
//   * a final report with matrices, per-granularity discrepancies, and the
//     evidence (time + occurrence count) for each flag.
//
// Run time: a few seconds (each emulated network runs 180 simulated
// seconds; the discrete-event simulator covers that in milliseconds).
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  harness::ExperimentConfig config;
  config.topologies = topo::extended_topologies();
  config.seeds = {1, 2, 3};

  const std::vector<ospf::BehaviorProfile> impls = {
      ospf::frr_profile(), ospf::bird_profile(), ospf::strict_profile()};

  const std::vector<std::string> types = {"Hello", "DBD", "LSU", "LSR",
                                          "LSAck"};

  std::cout << "###############################################\n"
            << "# nidkit interoperability audit: OSPFv2       #\n"
            << "# implementations: frr, bird, strict          #\n"
            << "# topologies: " << config.topologies.size()
            << " x seeds: " << config.seeds.size() << "\n"
            << "###############################################\n\n";

  // ---- Granularity 1: general packet types (Table 1 style) ----
  {
    const auto audit =
        harness::audit_ospf(impls, config, mining::ospf_type_scheme());
    std::cout << "== general packet types ==\n\n"
              << detect::render_matrix(audit.named(), types, types,
                                       mining::RelationDirection::kSendToRecv)
              << "\ndiscrepancies:\n"
              << detect::render_discrepancies(audit.discrepancies) << "\n";
  }

  // ---- Granularity 2: greater LS-SN refinement (Table 2 style) ----
  {
    const auto audit = harness::audit_ospf(
        impls, config, mining::ospf_greater_lssn_scheme());
    std::cout << "== greater LS sequence number refinement ==\n\n"
              << detect::render_matrix(audit.named(), {"LSU", "LSAck"},
                                       {"LSU+gtSN", "LSAck+gtSN"},
                                       mining::RelationDirection::kSendToRecv)
              << "\ndiscrepancies:\n"
              << detect::render_discrepancies(audit.discrepancies) << "\n";
  }

  // ---- Granularity 3: state-conditioned (future work) ----
  {
    const auto audit =
        harness::audit_ospf(impls, config, mining::ospf_state_scheme());
    std::cout << "== state-conditioned (neighbor FSM) ==\n";
    for (const auto& name : audit.names)
      std::cout << "  " << name << ": " << audit.by_impl.at(name).size()
                << " relationship cells\n";
    std::cout << "  " << audit.discrepancies.size()
              << " state-conditioned discrepancies (first 10 shown)\n\n";
    std::vector<detect::Discrepancy> head(
        audit.discrepancies.begin(),
        audit.discrepancies.begin() +
            std::min<std::size_t>(10, audit.discrepancies.size()));
    std::cout << detect::render_discrepancies(head);
  }
  return 0;
}
