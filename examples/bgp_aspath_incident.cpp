// Walkthrough of the paper's motivating example: the February 2009 global
// slowdown. A small ISP announced a route with an extraordinarily long
// AS_PATH; routers of one implementation mishandled it and reset their
// sessions over and over, degrading traffic worldwide.
//
// This example stages the incident in three acts:
//   1. a healthy mixed network (robust + fragile routers) converges;
//   2. the long-path announcement is injected; the fragile edge begins a
//      NOTIFICATION/reset loop while robust routers carry the route;
//   3. the black-box miner — with no knowledge of BGP semantics beyond the
//      message format — flags the behavioural difference.
#include <cstdio>

#include "bgp/bgp_router.hpp"
#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  std::printf("== Act 1: a mixed network converges ==\n");
  netsim::Simulator sim;
  netsim::Network net(sim, 2009);
  const auto a = net.add_node("supronet");   // originator (robust)
  const auto b = net.add_node("transit");    // robust transit
  const auto c = net.add_node("edge");       // fragile edge
  for (const auto seg : {net.add_p2p(a, b), net.add_p2p(b, c)}) {
    net.fault(seg).delay = 50ms;
    net.fault(seg).fifo = true;
  }
  auto mk = [&](netsim::NodeId node, std::uint16_t as, std::uint8_t id,
                const bgp::BgpProfile& profile) {
    bgp::BgpConfig cfg;
    cfg.as_number = as;
    cfg.router_id = RouterId{id, id, id, id};
    cfg.profile = profile;
    return std::make_unique<bgp::BgpRouter>(net, node, cfg, id);
  };
  auto r_origin = mk(a, 65001, 1, bgp::bgp_robust_profile());
  auto r_transit = mk(b, 65002, 2, bgp::bgp_robust_profile());
  auto r_edge = mk(c, 65003, 3, bgp::bgp_fragile_profile());
  r_origin->start();
  r_transit->start();
  r_edge->start();
  r_origin->originate(bgp::Prefix{Ipv4Addr{10, 1, 0, 0}, 16});
  sim.run_until(SimTime{30s});
  std::printf("  edge session: %s, edge routes: %zu, resets so far: %llu\n",
              to_string(r_edge->session_state(0)).c_str(),
              r_edge->routes().size(),
              static_cast<unsigned long long>(
                  r_edge->stats().session_resets));

  std::printf("\n== Act 2: the long AS_PATH announcement ==\n");
  r_origin->originate(bgp::Prefix{Ipv4Addr{10, 99, 0, 0}, 16},
                      /*prepend=*/252);  // the incident's path length
  sim.run_until(SimTime{240s});
  std::printf("  transit carries %zu routes (incl. the long-path one); "
              "edge carries %zu\n",
              r_transit->routes().size(), r_edge->routes().size());
  std::printf("  fragile edge: %llu long-path rejections, %llu session "
              "resets (the reset loop)\n",
              static_cast<unsigned long long>(
                  r_edge->stats().long_path_rejects),
              static_cast<unsigned long long>(
                  r_edge->stats().session_resets));
  std::printf("  robust transit: %llu resets\n",
              static_cast<unsigned long long>(
                  r_transit->stats().session_resets));

  std::printf("\n== Act 3: the technique detects it black-box ==\n");
  mining::MinerConfig mc;
  mc.tdelay = 900ms;
  mc.horizon = 5s;
  mining::CausalMiner miner(mc);
  const auto scheme = mining::bgp_message_scheme();
  std::map<std::string, mining::RelationSet> sets;
  for (const auto& profile :
       {bgp::bgp_robust_profile(), bgp::bgp_fragile_profile()}) {
    harness::Scenario s;
    s.protocol = harness::Protocol::kBgp;
    s.bgp_profile = profile;
    s.topology = {topo::Kind::kLinear, 3};
    s.duration = 300s;
    s.churn_times = {60s};
    const auto run = harness::run_scenario(s);
    sets.emplace(profile.name, miner.mine(run.log, scheme));
  }
  const auto flags =
      detect::compare({"bgp-robust", &sets.at("bgp-robust")},
                      {"bgp-fragile", &sets.at("bgp-fragile")});
  std::fputs(detect::render_discrepancies(flags).c_str(), stdout);
  std::printf("\nthe flag to act on: UPDATE+longpath -> NOTIFICATION, "
              "present only in bgp-fragile.\n");
  return 0;
}
