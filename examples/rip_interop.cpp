// Protocol generality: the identical pipeline applied to RIPv2.
//
// The technique is black-box — it needs only (1) packets on the wire and
// (2) a keying function over the formally specified packet structure. This
// example audits two RIP behaviour variants and walks through the flagged
// discrepancy the way an operator would read it.
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  harness::ExperimentConfig config;
  config.topologies = {topo::Spec{topo::Kind::kLinear, 3},
                       topo::Spec{topo::Kind::kRing, 4}};
  config.seeds = {1, 2};
  config.duration = 300s;  // several 30 s periodic cycles

  const auto audit = harness::audit_rip(
      {rip::rip_classic_profile(), rip::rip_eager_profile()}, config,
      mining::rip_refined_scheme());

  const std::vector<std::string> labels = {"Request(full)", "Request",
                                           "Response", "Response(poison)"};
  std::cout << "RIP packet causal relationships (field-refined):\n\n"
            << detect::render_matrix(audit.named(), labels, labels,
                                     mining::RelationDirection::kSendToRecv)
            << "\nFlagged candidate non-interoperabilities:\n"
            << detect::render_discrepancies(audit.discrepancies);

  std::cout <<
      "\nReading the flags: the eager variant runs poisoned reverse, so its\n"
      "steady-state responses carry infinity-metric entries; the classic\n"
      "variant never emits them. A receiver that mishandles metric-16\n"
      "entries (e.g. treats them as parse errors) would interoperate with\n"
      "the classic variant but fail against the eager one — exactly the\n"
      "class of bug the paper's technique is designed to surface before\n"
      "deployment.\n";
  return 0;
}
