// Quickstart: detect non-interoperability candidates between two OSPF
// implementations in ~40 lines of API use.
//
//   1. Describe an experiment (topologies, TDelay, duration).
//   2. Audit two behaviour profiles: each runs alone in emulated networks,
//      its packet trace is mined for causal relationships.
//   3. Print the side-by-side relationship matrix and the flagged
//      discrepancies.
#include <cstdio>
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  harness::ExperimentConfig config;
  config.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                       topo::Spec{topo::Kind::kMesh, 3}};
  config.tdelay = 900ms;    // the paper's calibrated TDelay
  config.duration = 180s;   // per scenario, simulated time

  const auto scheme = mining::ospf_type_scheme();
  const harness::AuditResult audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config, scheme);

  const std::vector<std::string> types = {"Hello", "DBD", "LSU", "LSR",
                                          "LSAck"};
  std::cout << "Packet causal relationships (send->recv direction):\n\n"
            << detect::render_matrix(audit.named(), types, types,
                                     mining::RelationDirection::kSendToRecv)
            << "\nWhat each implementation expects in response (the paper's "
               "§2 formalization):\n\n";
  for (const auto& name : {"frr", "bird"}) {
    std::cout << "[" << name << "]\n"
              << detect::render_response_profile(mining::response_profile(
                     audit.by_impl.at(name),
                     mining::RelationDirection::kSendToRecv))
              << "\n";
  }
  std::cout << "Flagged candidate non-interoperabilities:\n"
            << detect::render_discrepancies(audit.discrepancies);
  return 0;
}
