// The downstream use case: you maintain an OSPF implementation and want to
// know, before deployment, where its discretionary behaviours diverge from
// an established implementation.
//
// Describe your implementation as a BehaviorProfile (every knob is one
// documented discretionary choice from RFC 2328), audit it against the
// reference, and read the flags. Here the "custom" implementation makes
// two plausible-looking choices: it never answers stale LSAs (silent
// discard — the RFC's "should" is read as optional) and it acknowledges
// nothing until a large batching delay expires.
#include <iostream>

#include "detect/report.hpp"
#include "harness/experiment.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  ospf::BehaviorProfile mine;
  mine.name = "custom";
  mine.immediate_hello_on_discovery = false;
  mine.immediate_hello_on_two_way = false;
  // Choice 1: very lazy acknowledgments (6 s batching — slower than the
  // peers' 5 s retransmission interval, a classic interop hazard).
  mine.delayed_ack_delay = 6s;
  // Choice 2: stale LSAs are silently discarded — no newer-copy response,
  // no ack. (RFC 2328 §13 step 8 says the router "should" respond; a
  // literal reader might not.)
  mine.respond_stale_with_newer = false;
  mine.ack_stale_from_database = false;

  harness::ExperimentConfig config;
  config.seeds = {1, 2};

  const auto audit = harness::audit_ospf({ospf::frr_profile(), mine}, config,
                                         mining::ospf_type_scheme());
  const std::vector<std::string> types = {"Hello", "DBD", "LSU", "LSR",
                                          "LSAck"};
  std::cout << "auditing 'custom' against the FRR-like reference:\n\n"
            << detect::render_matrix(audit.named(), types, types,
                                     mining::RelationDirection::kSendToRecv)
            << "\nflags:\n"
            << detect::render_discrepancies(audit.discrepancies);

  std::cout <<
      "\nHow to read this: each flag is a stimulus your implementation\n"
      "answers differently than the reference. Before shipping, decide for\n"
      "each one whether the difference is benign (timing preference) or a\n"
      "seed for real non-interoperability (e.g. a peer retransmitting\n"
      "forever because your acks are too lazy, or databases that never\n"
      "reconverge because stale LSAs are dropped silently).\n";

  // The lazy-ack choice has a measurable cost: count retransmissions in a
  // homogeneous network of the custom implementation.
  harness::Scenario s;
  // A linear topology isolates the effect: no alternate flooding paths, so
  // explicit acks are the only thing that stops retransmission.
  s.topology = {topo::Kind::kLinear, 5};
  s.ospf_profile = mine;
  const auto custom_run = harness::run_scenario(s);
  s.ospf_profile = ospf::frr_profile();
  const auto ref_run = harness::run_scenario(s);
  std::cout << "\nretransmissions in a linear-5 run: custom="
            << custom_run.ospf_totals.retransmissions
            << " vs reference=" << ref_run.ospf_totals.retransmissions
            << " (lazy acks force peers to retransmit)\n";
  return 0;
}
