// Injection validation — the paper's future work, operational: take every
// discrepancy the miner flags between FRR-like and BIRD-like OSPF, inject
// the stimulus into a live network of each implementation, and classify
// the flag as CONFIRMED (the implementations demonstrably respond
// differently) or NOT-REPRODUCED (a mining artifact).
#include <cstdio>
#include <set>

#include "harness/experiment.hpp"
#include "harness/injection.hpp"

using namespace nidkit;
using namespace std::chrono_literals;

int main() {
  // Step 1: mine the Table-2-granularity discrepancies.
  harness::ExperimentConfig config;
  const auto audit = harness::audit_ospf(
      {ospf::frr_profile(), ospf::bird_profile()}, config,
      mining::ospf_greater_lssn_scheme());

  std::printf("mined %zu discrepancies at greater-LS-SN granularity\n\n",
              audit.discrepancies.size());

  // Step 2: validate every flag automatically — each discrepancy cell is
  // mapped to a synthesizable stimulus, injected into *both*
  // implementations over a live adjacency, and judged by whether the
  // responses differ.
  const std::map<std::string, ospf::BehaviorProfile> impls = {
      {"frr", ospf::frr_profile()}, {"bird", ospf::bird_profile()}};
  const auto report =
      harness::validate_discrepancies(audit.discrepancies, impls);

  int confirmed = 0;
  int not_reproduced = 0;
  for (const auto& entry : report) {
    const auto& d = entry.discrepancy;
    std::printf("flag: %s -> %s (present in %s)\n", d.cell.stimulus.c_str(),
                d.cell.response.c_str(), d.present_in.c_str());
    if (entry.verdict == harness::Verdict::kUnsupported) {
      std::printf("  => no synthesizer for this stimulus class\n");
      continue;
    }
    std::printf("  injected %-12s %s: {", entry.stimulus.c_str(),
                d.present_in.c_str());
    for (const auto& r : entry.outcome_present.responses)
      std::printf(" %s", r.c_str());
    std::printf(" }  %s: {", d.absent_in.c_str());
    for (const auto& r : entry.outcome_absent.responses)
      std::printf(" %s", r.c_str());
    std::printf(" }\n  => %s\n", to_string(entry.verdict).c_str());
    if (entry.verdict == harness::Verdict::kConfirmed)
      ++confirmed;
    else
      ++not_reproduced;
  }

  std::printf("\n%d confirmed, %d not reproduced\n", confirmed,
              not_reproduced);
  std::printf("(the paper's Table 2 discrepancy corresponds to the "
              "LSU-stale probe: FRR\nanswers with the newer LSA, BIRD with "
              "a greater-LS-SN acknowledgment.)\n");
  return confirmed > 0 ? 0 : 1;
}
