#include "mining/relation.hpp"

#include <algorithm>

namespace nidkit::mining {

namespace {

/// Canonical "earlier evidence" order: observation time, then trace
/// position. Using the full triple (not just the time) makes add() and
/// merge() insensitive to the order observations arrive in, which in turn
/// makes set union associative and commutative — the property the
/// parallel executor's deterministic merge and the tie-reordering
/// invariance tests rely on.
bool earlier_evidence(SimTime when, std::size_t stimulus_index,
                      std::size_t response_index, const RelationStats& stats) {
  if (when != stats.first_seen) return when < stats.first_seen;
  if (stimulus_index != stats.example_stimulus)
    return stimulus_index < stats.example_stimulus;
  return response_index < stats.example_response;
}

}  // namespace

void RelationSet::add(RelationDirection dir, const RelationCell& cell,
                      SimTime when, std::size_t stimulus_index,
                      std::size_t response_index) {
  auto& table = dir == RelationDirection::kSendToRecv ? send_to_recv_
                                                      : recv_to_send_;
  auto [it, inserted] = table.try_emplace(cell);
  auto& stats = it->second;
  if (inserted ||
      earlier_evidence(when, stimulus_index, response_index, stats)) {
    stats.first_seen = when;
    stats.example_stimulus = stimulus_index;
    stats.example_response = response_index;
  }
  ++stats.count;
}

bool RelationSet::has(RelationDirection dir, const std::string& stimulus,
                      const std::string& response) const {
  return find(dir, RelationCell{stimulus, response}) != nullptr;
}

const RelationStats* RelationSet::find(RelationDirection dir,
                                       const RelationCell& cell) const {
  const auto& table = dir == RelationDirection::kSendToRecv ? send_to_recv_
                                                            : recv_to_send_;
  auto it = table.find(cell);
  return it == table.end() ? nullptr : &it->second;
}

void RelationSet::merge(const RelationSet& other) {
  for (const auto dir :
       {RelationDirection::kSendToRecv, RelationDirection::kRecvToSend}) {
    for (const auto& [cell, stats] : other.cells(dir))
      add_stats(dir, cell, stats);
  }
}

void RelationSet::add_stats(RelationDirection dir, const RelationCell& cell,
                            const RelationStats& stats) {
  auto& table = dir == RelationDirection::kSendToRecv ? send_to_recv_
                                                      : recv_to_send_;
  auto [it, inserted] = table.try_emplace(cell, stats);
  if (!inserted) {
    it->second.count += stats.count;
    if (earlier_evidence(stats.first_seen, stats.example_stimulus,
                         stats.example_response, it->second)) {
      it->second.first_seen = stats.first_seen;
      it->second.example_stimulus = stats.example_stimulus;
      it->second.example_response = stats.example_response;
    }
  }
}

std::set<std::string> RelationSet::stimulus_labels() const {
  std::set<std::string> out;
  for (const auto& [cell, stats] : send_to_recv_) out.insert(cell.stimulus);
  for (const auto& [cell, stats] : recv_to_send_) out.insert(cell.stimulus);
  return out;
}

std::set<std::string> RelationSet::response_labels() const {
  std::set<std::string> out;
  for (const auto& [cell, stats] : send_to_recv_) out.insert(cell.response);
  for (const auto& [cell, stats] : recv_to_send_) out.insert(cell.response);
  return out;
}

ResponseProfile response_profile(const RelationSet& set,
                                 RelationDirection direction) {
  ResponseProfile out;
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [cell, stats] : set.cells(direction)) {
    out.by_stimulus[cell.stimulus].push_back(
        ResponseProfile::Response{cell.response, stats.count, 0.0});
    totals[cell.stimulus] += stats.count;
  }
  for (auto& [stimulus, responses] : out.by_stimulus) {
    const auto total = totals[stimulus];
    for (auto& r : responses)
      r.fraction = total == 0 ? 0.0
                              : static_cast<double>(r.count) / total;
    std::sort(responses.begin(), responses.end(),
              [](const auto& a, const auto& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.label < b.label;
              });
  }
  return out;
}

}  // namespace nidkit::mining
