#include "mining/relation.hpp"

#include <algorithm>

namespace nidkit::mining {

namespace {

/// Canonical "earlier evidence" order: observation time, then trace
/// position. Using the full triple (not just the time) makes add() and
/// merge() insensitive to the order observations arrive in, which in turn
/// makes set union associative and commutative — the property the
/// parallel executor's deterministic merge and the tie-reordering
/// invariance tests rely on.
bool earlier_evidence(SimTime when, std::size_t stimulus_index,
                      std::size_t response_index, const RelationStats& stats) {
  if (when != stats.first_seen) return when < stats.first_seen;
  if (stimulus_index != stats.example_stimulus)
    return stimulus_index < stats.example_stimulus;
  return response_index < stats.example_response;
}

RelationSet::CellTable::iterator lower_bound_cell(RelationSet::CellTable& table,
                                                  const RelationCell& cell) {
  return std::lower_bound(
      table.begin(), table.end(), cell,
      [](const auto& entry, const RelationCell& c) { return entry.first < c; });
}

/// Folds `stats` into `into` (same cell observed again): counts add, the
/// canonically earliest evidence survives.
void fold_stats(const RelationStats& stats, RelationStats& into) {
  into.count += stats.count;
  if (earlier_evidence(stats.first_seen, stats.example_stimulus,
                       stats.example_response, into)) {
    into.first_seen = stats.first_seen;
    into.example_stimulus = stats.example_stimulus;
    into.example_response = stats.example_response;
  }
}

}  // namespace

void RelationSet::add(RelationDirection dir, const RelationCell& cell,
                      SimTime when, std::size_t stimulus_index,
                      std::size_t response_index) {
  auto& t = table(dir);
  auto it = lower_bound_cell(t, cell);
  if (it == t.end() || it->first != cell) {
    it = t.emplace(it, cell, RelationStats{});
    it->second.first_seen = when;
    it->second.example_stimulus = stimulus_index;
    it->second.example_response = response_index;
  } else if (earlier_evidence(when, stimulus_index, response_index,
                              it->second)) {
    it->second.first_seen = when;
    it->second.example_stimulus = stimulus_index;
    it->second.example_response = response_index;
  }
  ++it->second.count;
}

bool RelationSet::has(RelationDirection dir, const std::string& stimulus,
                      const std::string& response) const {
  return find(dir, RelationCell{stimulus, response}) != nullptr;
}

const RelationStats* RelationSet::find(RelationDirection dir,
                                       const RelationCell& cell) const {
  const auto& t = cells(dir);
  const auto it = std::lower_bound(
      t.begin(), t.end(), cell,
      [](const auto& entry, const RelationCell& c) { return entry.first < c; });
  return it == t.end() || it->first != cell ? nullptr : &it->second;
}

void RelationSet::merge(const RelationSet& other) {
  for (const auto dir :
       {RelationDirection::kSendToRecv, RelationDirection::kRecvToSend}) {
    const auto& src = other.cells(dir);
    if (src.empty()) continue;
    auto& dst = table(dir);
    if (dst.empty()) {
      dst = src;
      continue;
    }
    // Linear merge of two sorted tables — O(n + m) instead of m
    // individual binary-search inserts.
    CellTable merged;
    merged.reserve(dst.size() + src.size());
    auto a = dst.begin();
    auto b = src.begin();
    while (a != dst.end() && b != src.end()) {
      if (a->first < b->first) {
        merged.push_back(std::move(*a++));
      } else if (b->first < a->first) {
        merged.push_back(*b++);
      } else {
        merged.push_back(std::move(*a++));
        fold_stats(b++->second, merged.back().second);
      }
    }
    merged.insert(merged.end(), std::make_move_iterator(a),
                  std::make_move_iterator(dst.end()));
    merged.insert(merged.end(), b, src.end());
    dst = std::move(merged);
  }
}

void RelationSet::add_stats(RelationDirection dir, const RelationCell& cell,
                            const RelationStats& stats) {
  auto& t = table(dir);
  auto it = lower_bound_cell(t, cell);
  if (it == t.end() || it->first != cell)
    t.emplace(it, cell, stats);
  else
    fold_stats(stats, it->second);
}

void RelationSet::append_sorted(RelationDirection dir, RelationCell&& cell,
                                const RelationStats& stats) {
  auto& t = table(dir);
  if (t.empty() || t.back().first < cell) {
    t.emplace_back(std::move(cell), stats);
    return;
  }
  add_stats(dir, cell, stats);
}

std::set<std::string> RelationSet::stimulus_labels() const {
  std::set<std::string> out;
  for (const auto& [cell, stats] : send_to_recv_) out.insert(cell.stimulus);
  for (const auto& [cell, stats] : recv_to_send_) out.insert(cell.stimulus);
  return out;
}

std::set<std::string> RelationSet::response_labels() const {
  std::set<std::string> out;
  for (const auto& [cell, stats] : send_to_recv_) out.insert(cell.response);
  for (const auto& [cell, stats] : recv_to_send_) out.insert(cell.response);
  return out;
}

ResponseProfile response_profile(const RelationSet& set,
                                 RelationDirection direction) {
  ResponseProfile out;
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [cell, stats] : set.cells(direction)) {
    out.by_stimulus[cell.stimulus].push_back(
        ResponseProfile::Response{cell.response, stats.count, 0.0});
    totals[cell.stimulus] += stats.count;
  }
  for (auto& [stimulus, responses] : out.by_stimulus) {
    const auto total = totals[stimulus];
    for (auto& r : responses)
      r.fraction = total == 0 ? 0.0
                              : static_cast<double>(r.count) / total;
    std::sort(responses.begin(), responses.end(),
              [](const auto& a, const auto& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.label < b.label;
              });
  }
  return out;
}

}  // namespace nidkit::mining
