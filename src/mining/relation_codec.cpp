#include "mining/relation_codec.hpp"

#include <string>

namespace nidkit::mining {

namespace {

void encode_label(const std::string& s, ByteWriter& out) {
  out.u32(static_cast<std::uint32_t>(s.size()));
  out.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

bool decode_label(ByteReader& in, std::string& out) {
  const std::uint32_t len = in.u32();
  // bytes() bounds-checks before touching the data, so a corrupted length
  // field sets the sticky error flag instead of triggering a huge
  // allocation; the string is only assigned from a validated span.
  const auto bytes = in.bytes(len);
  if (!in.ok()) return false;
  out.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return true;
}

void encode_direction(const RelationSet& set, RelationDirection dir,
                      ByteWriter& out) {
  const auto& cells = set.cells(dir);
  out.u32(static_cast<std::uint32_t>(cells.size()));
  for (const auto& [cell, stats] : cells) {
    encode_label(cell.stimulus, out);
    encode_label(cell.response, out);
    out.u32(static_cast<std::uint32_t>(stats.count >> 32));
    out.u32(static_cast<std::uint32_t>(stats.count));
    out.i32(static_cast<std::int32_t>(stats.first_seen.count() >> 32));
    out.u32(static_cast<std::uint32_t>(stats.first_seen.count()));
    out.u32(static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(stats.example_stimulus) >> 32));
    out.u32(static_cast<std::uint32_t>(stats.example_stimulus));
    out.u32(static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(stats.example_response) >> 32));
    out.u32(static_cast<std::uint32_t>(stats.example_response));
  }
}

std::uint64_t read_u64(ByteReader& in) {
  const std::uint64_t hi = in.u32();
  return (hi << 32) | in.u32();
}

bool decode_direction(ByteReader& in, RelationDirection dir,
                      RelationSet& set) {
  const std::uint32_t count = in.u32();
  // Cells were encoded in canonical (sorted) order, so decoding is a
  // reserve + straight appends — no per-cell search or reallocation. The
  // count is bounds-sanity-checked against the remaining bytes before
  // reserving so a corrupted length can't trigger a huge allocation.
  if (in.ok() && count <= in.remaining() / 8) set.reserve(dir, count);
  for (std::uint32_t i = 0; in.ok() && i < count; ++i) {
    RelationCell cell;
    if (!decode_label(in, cell.stimulus)) return false;
    if (!decode_label(in, cell.response)) return false;
    RelationStats stats;
    stats.count = read_u64(in);
    stats.first_seen = SimTime{static_cast<std::int64_t>(read_u64(in))};
    stats.example_stimulus = static_cast<std::size_t>(read_u64(in));
    stats.example_response = static_cast<std::size_t>(read_u64(in));
    if (!in.ok()) return false;
    set.append_sorted(dir, std::move(cell), stats);
  }
  return in.ok();
}

}  // namespace

void encode_relations(const RelationSet& set, ByteWriter& out) {
  encode_direction(set, RelationDirection::kSendToRecv, out);
  encode_direction(set, RelationDirection::kRecvToSend, out);
}

std::optional<RelationSet> decode_relations(ByteReader& in) {
  RelationSet set;
  if (!decode_direction(in, RelationDirection::kSendToRecv, set))
    return std::nullopt;
  if (!decode_direction(in, RelationDirection::kRecvToSend, set))
    return std::nullopt;
  return set;
}

std::vector<std::uint8_t> encode_relations(const RelationSet& set) {
  ByteWriter out;
  encode_relations(set, out);
  return out.take();
}

std::optional<RelationSet> decode_relations(
    std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  auto set = decode_relations(in);
  if (!set || in.remaining() != 0) return std::nullopt;
  return set;
}

}  // namespace nidkit::mining
