// Keying schemes: how a causal pair is mapped to relationship-cell labels.
//
// The paper computes relationships at increasing granularity: by OSPF
// packet type (Table 1), refined by packet fields such as "carries an LSA
// with a greater LS sequence number" (Table 2), and — as future work — by
// router state. Each granularity is a KeyScheme here. A scheme may key the
// response *relative to the stimulus* (pair predicates), which is how the
// greater-LS-SN refinement works.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace nidkit::mining {

struct KeyScheme {
  std::string name;

  /// Label for a stimulus record, or nullopt if the record does not
  /// participate in this scheme (e.g. a non-OSPF frame).
  std::function<std::optional<std::string>(const trace::RecordView&)>
      stimulus;

  /// Label for a response record given its stimulus, or nullopt if the
  /// pair is outside the scheme.
  std::function<std::optional<std::string>(const trace::RecordView& stim,
                                           const trace::RecordView& resp)>
      response;
};

/// Table 1 granularity: OSPF general packet types
/// ("Hello", "DBD", "LSR", "LSU", "LSAck").
KeyScheme ospf_type_scheme();

/// Table 2 granularity: stimulus ∈ {LSU, LSAck}; response ∈ {LSU, LSAck}
/// carrying an LSA whose LS sequence number exceeds every LS-SN in the
/// stimulus. Labels: "LSU", "LSAck" → "LSU+gtSN", "LSAck+gtSN".
KeyScheme ospf_greater_lssn_scheme();

/// Future-work granularity: packet type conditioned on the observing
/// router's highest neighbor FSM state at the event
/// (e.g. "LSU@Exchange", "Hello@Full"). Requires a state prober on the
/// trace.
KeyScheme ospf_state_scheme();

/// LSA-type refinement: packet type plus the types of LSAs carried
/// (e.g. "LSU[router]", "LSU[external]").
KeyScheme ospf_lsa_type_scheme();

/// DBD-flag refinement (the paper's "more packet fields" future work):
/// database description packets are keyed by their I/M/MS bits — e.g.
/// "DBD(I,M,MS)" for the ExStart negotiation probe, "DBD(MS)" for a
/// master's final batch, "DBD()" for a slave's final echo. Non-DBD packets
/// keep their type labels.
KeyScheme ospf_dbd_flags_scheme();

/// RIP granularity: command names ("Request", "Response"), with the
/// whole-table request distinguished as "Request(full)".
KeyScheme rip_command_scheme();

/// RIP field-refined granularity: Responses carrying an infinity-metric
/// (16) entry are labeled "Response(poison)" — poisoned-reverse and
/// route-withdrawal traffic a plain split-horizon implementation never
/// emits in steady state.
KeyScheme rip_refined_scheme();

/// BGP granularity: message type names, with UPDATEs refined by payload —
/// "UPDATE+longpath" for AS_PATHs longer than `longpath_threshold`,
/// "UPDATE+withdraw" for pure withdrawals. Captures the paper's motivating
/// 2009 incident: Rcv(UPDATE+longpath) → Snd(NOTIFICATION) appears only in
/// implementations with an AS_PATH length limit.
KeyScheme bgp_message_scheme(std::size_t longpath_threshold = 100);

/// Human-readable OSPF packet-type label for a wire type code.
std::string ospf_type_label(std::uint8_t wire_type);

/// Neighbor-state label used by ospf_state_scheme (wraps
/// ospf::to_string(NeighborState)).
std::string state_label(int state);

}  // namespace nidkit::mining
