// Packet causal relationships and relationship sets.
//
// A packet causal relationship (the paper's §2) correlates a packet a
// router sent (or received) with the set of packets it expects to receive
// (or send) in response. We represent a mined relationship as a pair of
// labels — (stimulus key, response key) — in one of two directions:
//
//   send→recv : "after sending a packet keyed S, the first packet received
//                at least 2·TDelay later was keyed R"
//   recv→send : the symmetric direction.
//
// A RelationSet is the union of all such pairs observed across the routers
// of a network (and, at the experiment level, across topologies). Comparing
// two implementations' RelationSets flags candidate non-interoperabilities.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace nidkit::mining {

enum class RelationDirection { kSendToRecv, kRecvToSend };

/// Evidence for one relationship cell.
struct RelationStats {
  std::uint64_t count = 0;
  SimTime first_seen{0};
  /// Trace indices of the first observed (stimulus, response) instance —
  /// the starting point for injection-based validation.
  std::size_t example_stimulus = 0;
  std::size_t example_response = 0;
};

/// Label pair identifying a relationship cell.
struct RelationCell {
  std::string stimulus;
  std::string response;

  friend auto operator<=>(const RelationCell&, const RelationCell&) = default;
};

class RelationSet {
 public:
  /// Cells of one direction, sorted by cell label pair. A flat sorted
  /// vector rather than a std::map: relation sets are small (tens of
  /// cells), read-heavy, and decoded from the result cache on the warm
  /// path, where per-node allocation dominated the lookup cost. Iteration
  /// order is identical to the map it replaced, so every canonical-order
  /// merge and report stays bit-identical.
  using CellTable = std::vector<std::pair<RelationCell, RelationStats>>;

  void add(RelationDirection dir, const RelationCell& cell, SimTime when,
           std::size_t stimulus_index, std::size_t response_index);

  bool has(RelationDirection dir, const std::string& stimulus,
           const std::string& response) const;

  const RelationStats* find(RelationDirection dir,
                            const RelationCell& cell) const;

  /// Union with another set. Counts accumulate; the surviving example is
  /// the one with the canonically earliest (first_seen, stimulus index,
  /// response index) evidence. The total order on evidence makes merge
  /// associative and commutative — merging per-scenario sets in any
  /// grouping or order yields the same set, which is what lets the
  /// parallel executor's canonical-order merge match the serial loop nest
  /// bit-for-bit.
  void merge(const RelationSet& other);

  /// Reinstates one fully-specified cell — the deserialization path (see
  /// relation_codec.hpp). Equivalent to merging a singleton set holding
  /// exactly `stats`, so restoring into a non-empty set accumulates like
  /// merge() and decode(encode(s)) reproduces `s` exactly.
  void add_stats(RelationDirection dir, const RelationCell& cell,
                 const RelationStats& stats);

  /// Codec fast path: appends a cell known to sort strictly after every
  /// cell already in `dir` — the serialized form is written in canonical
  /// order, so deserialization is a straight append with no search.
  /// Degrades to add_stats() when the input is not actually sorted
  /// (corrupted bytes), preserving set semantics either way.
  void append_sorted(RelationDirection dir, RelationCell&& cell,
                     const RelationStats& stats);

  /// Pre-sizes one direction's table (decode knows the cell count).
  void reserve(RelationDirection dir, std::size_t n) { table(dir).reserve(n); }

  const CellTable& cells(RelationDirection dir) const {
    return dir == RelationDirection::kSendToRecv ? send_to_recv_
                                                 : recv_to_send_;
  }

  /// All stimulus / response labels appearing in either direction
  /// (row/column universe for table rendering).
  std::set<std::string> stimulus_labels() const;
  std::set<std::string> response_labels() const;

  std::size_t size() const {
    return send_to_recv_.size() + recv_to_send_.size();
  }

 private:
  CellTable& table(RelationDirection dir) {
    return dir == RelationDirection::kSendToRecv ? send_to_recv_
                                                 : recv_to_send_;
  }

  CellTable send_to_recv_;
  CellTable recv_to_send_;
};

/// The paper's §2 formalization, made explicit: for each stimulus class,
/// the *set of responses* the implementation was observed to produce (or
/// elicit), with observation counts — "after sending a packet A, there
/// exists a set of possible packets that the implementation expects to
/// receive as compliant responses to A".
struct ResponseProfile {
  struct Response {
    std::string label;
    std::uint64_t count = 0;
    double fraction = 0.0;  ///< share of the stimulus's observations
  };
  /// stimulus label -> responses, most frequent first.
  std::map<std::string, std::vector<Response>> by_stimulus;
};

/// Projects one direction of a RelationSet into per-stimulus response
/// sets.
ResponseProfile response_profile(const RelationSet& set,
                                 RelationDirection direction);

}  // namespace nidkit::mining
