// The causal miner: the paper's core algorithm.
//
// Stage 1 (mine_pairs) applies the delay-window attribution rule to a
// packet trace: for every packet a router sent (received), the first packet
// the same router received (sent) at least `window_factor * TDelay` later —
// but no later than `horizon` past that threshold — is taken as causally
// related. Packets tied at that earliest qualifying timestamp are all
// attributed (co-arrivals are indistinguishable to a capture), so mined
// relations are invariant under reordering of equal-time trace events.
// The TDelay is injected by the chaos controller, exactly as the
// paper injects it with Pumba; the 2× factor covers the stimulus's own
// one-way delay plus the response's.
//
// Stage 2 (KeyScheme, see keying.hpp) maps each causal pair to zero or more
// relationship cells; RelationSet unions them.
//
// Because the simulator's protocol engines stamp every frame with ground-
// truth provenance (Frame::caused_by), the miner's output can also be
// *scored* — precision/recall the paper could not measure on black-box
// daemons. bench/fig_tdelay_sweep uses this to reproduce the paper's
// "unobserved relationships plateau at 900 ms" calibration claim.
#pragma once

#include <cstddef>
#include <vector>

#include "mining/keying.hpp"
#include "mining/relation.hpp"
#include "trace/trace.hpp"
#include "util/time.hpp"

namespace nidkit::mining {

using namespace std::chrono_literals;

struct MinerConfig {
  /// The fixed one-way delay injected on every interface.
  SimDuration tdelay = 900ms;
  /// Attribution threshold = window_factor * tdelay (the paper uses 2).
  double window_factor = 2.0;
  /// Maximum lookahead past the threshold. The paper bounds TDelay by the
  /// retransmission timeout; we make the bound explicit so a response
  /// minutes later is never attributed. 0 disables the cap.
  SimDuration horizon = 5s;

  SimDuration threshold() const {
    return SimDuration{
        static_cast<std::int64_t>(window_factor * tdelay.count())};
  }
};

/// One attributed (stimulus, response) pair; indices into the trace.
struct CausalPair {
  std::size_t stimulus_index = 0;
  std::size_t response_index = 0;
};

struct MinedPairs {
  std::vector<CausalPair> send_to_recv;
  std::vector<CausalPair> recv_to_send;
};

class CausalMiner {
 public:
  explicit CausalMiner(MinerConfig config) : config_(config) {}

  const MinerConfig& config() const { return config_; }

  /// Stage 1: delay-window attribution over every router in the trace.
  MinedPairs mine_pairs(const trace::TraceLog& log) const;

  /// Stages 1+2: mined relationship set under `scheme`.
  RelationSet mine(const trace::TraceLog& log, const KeyScheme& scheme) const;

  /// Applies a key scheme to already-mined pairs (lets one expensive
  /// mine_pairs feed several schemes).
  RelationSet classify(const trace::TraceLog& log, const MinedPairs& pairs,
                       const KeyScheme& scheme) const;

 private:
  MinerConfig config_;
};

/// Ground-truth pairs from frame provenance: a response record whose
/// frame-level `caused_by` names the stimulus frame.
MinedPairs true_pairs(const trace::TraceLog& log);

/// Pair-level accuracy of mined attribution against ground truth.
struct PairAccuracy {
  std::size_t mined = 0;
  std::size_t truth = 0;
  std::size_t correct = 0;  ///< mined pairs confirmed by provenance
  double precision() const {
    return mined == 0 ? 1.0 : static_cast<double>(correct) / mined;
  }
  double recall() const {
    return truth == 0 ? 1.0 : static_cast<double>(correct) / truth;
  }
};

PairAccuracy score_pairs(const trace::TraceLog& log, const MinedPairs& mined);

/// Cell-level comparison against ground truth under a key scheme:
/// `unobserved` = true relationship cells the miner missed;
/// `spurious` = mined cells no true pair supports.
struct CellAccuracy {
  std::size_t mined_cells = 0;
  std::size_t true_cells = 0;
  std::size_t unobserved = 0;
  std::size_t spurious = 0;
};

CellAccuracy score_cells(const trace::TraceLog& log, const RelationSet& mined,
                         const KeyScheme& scheme);

}  // namespace nidkit::mining
