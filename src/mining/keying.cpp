#include "mining/keying.hpp"

#include <limits>

#include "ospf/router.hpp"
#include "packet/rip_packet.hpp"

namespace nidkit::mining {

std::string ospf_type_label(std::uint8_t wire_type) {
  switch (wire_type) {
    case 1: return "Hello";
    case 2: return "DBD";
    case 3: return "LSR";
    case 4: return "LSU";
    case 5: return "LSAck";
  }
  return "OSPF?" + std::to_string(wire_type);
}

std::string state_label(int state) {
  if (state < 0) return "NoNbr";
  return ospf::to_string(static_cast<ospf::NeighborState>(state));
}

KeyScheme ospf_type_scheme() {
  KeyScheme s;
  s.name = "ospf-type";
  s.stimulus = [](const trace::RecordView& r) -> std::optional<std::string> {
    const auto* o = r.ospf();
    if (o == nullptr) return std::nullopt;
    return ospf_type_label(o->pkt_type);
  };
  s.response = [](const trace::RecordView&, const trace::RecordView& resp)
      -> std::optional<std::string> {
    const auto* o = resp.ospf();
    if (o == nullptr) return std::nullopt;
    return ospf_type_label(o->pkt_type);
  };
  return s;
}

KeyScheme ospf_greater_lssn_scheme() {
  KeyScheme s;
  s.name = "ospf-greater-lssn";
  s.stimulus = [](const trace::RecordView& r) -> std::optional<std::string> {
    const auto* o = r.ospf();
    if (o == nullptr) return std::nullopt;
    if (o->pkt_type != 4 && o->pkt_type != 5) return std::nullopt;
    if (o->lsas.empty()) return std::nullopt;
    return ospf_type_label(o->pkt_type);
  };
  s.response = [](const trace::RecordView& stim,
                  const trace::RecordView& resp)
      -> std::optional<std::string> {
    const auto* so = stim.ospf();
    const auto* ro = resp.ospf();
    if (so == nullptr || ro == nullptr) return std::nullopt;
    if (ro->pkt_type != 4 && ro->pkt_type != 5) return std::nullopt;
    if (ro->lsas.empty() || so->lsas.empty()) return std::nullopt;
    // "Greater LS sequence number" compares instances of the *same* LSA
    // (type, link-state id, advertising router): the response must carry a
    // strictly newer instance of an LSA the stimulus carried.
    for (const auto& rl : ro->lsas) {
      for (const auto& sl : so->lsas) {
        if (rl.lsa_type == sl.lsa_type &&
            rl.link_state_id == sl.link_state_id &&
            rl.advertising_router == sl.advertising_router &&
            rl.seq > sl.seq) {
          return ospf_type_label(ro->pkt_type) + "+gtSN";
        }
      }
    }
    return std::nullopt;
  };
  return s;
}

KeyScheme ospf_state_scheme() {
  KeyScheme s;
  s.name = "ospf-state";
  s.stimulus = [](const trace::RecordView& r) -> std::optional<std::string> {
    const auto* o = r.ospf();
    if (o == nullptr) return std::nullopt;
    return ospf_type_label(o->pkt_type) + "@" + state_label(r.observer_state);
  };
  s.response = [](const trace::RecordView&, const trace::RecordView& resp)
      -> std::optional<std::string> {
    const auto* o = resp.ospf();
    if (o == nullptr) return std::nullopt;
    return ospf_type_label(o->pkt_type) + "@" +
           state_label(resp.observer_state);
  };
  return s;
}

KeyScheme ospf_lsa_type_scheme() {
  auto label = [](const trace::RecordView& r) -> std::optional<std::string> {
    const auto* o = r.ospf();
    if (o == nullptr) return std::nullopt;
    std::string out = ospf_type_label(o->pkt_type);
    if (!o->lsas.empty()) {
      bool types[6] = {};
      for (const auto& l : o->lsas)
        if (l.lsa_type <= 5) types[l.lsa_type] = true;
      static constexpr const char* kNames[6] = {"?",       "router", "network",
                                                "summary", "asbr",   "external"};
      out += "[";
      bool first = true;
      for (int t = 1; t <= 5; ++t) {
        if (!types[t]) continue;
        if (!first) out += ",";
        out += kNames[t];
        first = false;
      }
      out += "]";
    }
    return out;
  };
  KeyScheme s;
  s.name = "ospf-lsa-type";
  s.stimulus = label;
  s.response = [label](const trace::RecordView&,
                       const trace::RecordView& resp) {
    return label(resp);
  };
  return s;
}

KeyScheme rip_refined_scheme() {
  auto label = [](const trace::RecordView& r) -> std::optional<std::string> {
    const auto* p = r.rip();
    if (p == nullptr) return std::nullopt;
    if (p->command == 1)
      return std::string(p->full_table_request ? "Request(full)" : "Request");
    if (p->max_metric >= 16) return std::string("Response(poison)");
    return std::string("Response");
  };
  KeyScheme s;
  s.name = "rip-refined";
  s.stimulus = label;
  s.response = [label](const trace::RecordView&,
                       const trace::RecordView& resp) {
    return label(resp);
  };
  return s;
}

KeyScheme ospf_dbd_flags_scheme() {
  auto label = [](const trace::RecordView& r) -> std::optional<std::string> {
    const auto* o = r.ospf();
    if (o == nullptr) return std::nullopt;
    if (o->pkt_type != 2) return ospf_type_label(o->pkt_type);
    std::string out = "DBD(";
    bool first = true;
    auto append = [&out, &first](const char* bit) {
      if (!first) out += ",";
      out += bit;
      first = false;
    };
    if (o->dbd_flags & 0x04) append("I");
    if (o->dbd_flags & 0x02) append("M");
    if (o->dbd_flags & 0x01) append("MS");
    out += ")";
    return out;
  };
  KeyScheme s;
  s.name = "ospf-dbd-flags";
  s.stimulus = label;
  s.response = [label](const trace::RecordView&,
                       const trace::RecordView& resp) {
    return label(resp);
  };
  return s;
}

KeyScheme bgp_message_scheme(std::size_t longpath_threshold) {
  auto label = [longpath_threshold](
                   const trace::RecordView& r) -> std::optional<std::string> {
    const auto* b = r.bgp();
    if (b == nullptr) return std::nullopt;
    switch (b->msg_type) {
      case 1: return std::string("OPEN");
      case 2:
        if (b->as_path_len > longpath_threshold)
          return std::string("UPDATE+longpath");
        if (b->nlri_count == 0 && b->withdrawn_count > 0)
          return std::string("UPDATE+withdraw");
        return std::string("UPDATE");
      case 3: return std::string("NOTIFICATION");
      case 4: return std::string("KEEPALIVE");
    }
    return std::nullopt;
  };
  KeyScheme s;
  s.name = "bgp-message";
  s.stimulus = label;
  s.response = [label](const trace::RecordView&,
                       const trace::RecordView& resp) {
    return label(resp);
  };
  return s;
}

KeyScheme rip_command_scheme() {
  auto label = [](const trace::RecordView& r) -> std::optional<std::string> {
    const auto* p = r.rip();
    if (p == nullptr) return std::nullopt;
    if (p->command == 1)
      return std::string(p->full_table_request ? "Request(full)" : "Request");
    return std::string("Response");
  };
  KeyScheme s;
  s.name = "rip-command";
  s.stimulus = label;
  s.response = [label](const trace::RecordView&,
                       const trace::RecordView& resp) {
    return label(resp);
  };
  return s;
}

}  // namespace nidkit::mining
