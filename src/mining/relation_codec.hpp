// Compact binary codec for mined relationship sets.
//
// The result cache (src/cache/) persists each scenario's mined
// RelationSet; for a cache hit to be undetectable downstream, decoding
// must reproduce the set *exactly* — cell maps, counts, first_seen
// timestamps and the example trace indices all bit-identical — so merge
// order, discrepancy detection and the report JSON do not depend on
// whether a set was mined or replayed. Both directions' cells are encoded
// in their map (i.e. canonical cell) order, which also makes
// encode(decode(bytes)) == bytes: the encoding of a set is unique.
//
// All integers are big-endian (util::ByteWriter / ByteReader), labels are
// u32-length-prefixed UTF-8, SimTime is the raw microsecond count as a
// signed 64-bit value.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "mining/relation.hpp"
#include "util/bytes.hpp"

namespace nidkit::mining {

/// Appends the canonical encoding of `set` to `out`.
void encode_relations(const RelationSet& set, ByteWriter& out);

/// Decodes one RelationSet from `in`. Returns nullopt on truncated or
/// malformed input (the reader's error flag is also left set). Leaves the
/// reader positioned after the set on success, so the codec composes with
/// surrounding cache-entry framing.
std::optional<RelationSet> decode_relations(ByteReader& in);

/// Convenience one-shot encode.
std::vector<std::uint8_t> encode_relations(const RelationSet& set);

/// Convenience one-shot decode; input must contain exactly one set.
std::optional<RelationSet> decode_relations(
    std::span<const std::uint8_t> bytes);

}  // namespace nidkit::mining
