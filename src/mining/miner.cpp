#include "mining/miner.hpp"

#include <map>
#include <set>

namespace nidkit::mining {

MinedPairs CausalMiner::mine_pairs(const trace::TraceLog& log) const {
  MinedPairs out;
  // Attribution touches only the time and direction of each record, so it
  // reads the trace's flat columns directly — no per-record
  // materialization on the mining hot path.
  const auto times = log.times();
  const auto sends_col = log.send_flags();
  const SimDuration threshold = config_.threshold();
  const bool capped = config_.horizon.count() > 0;

  // Per-node grouping comes straight from the trace's maintained index
  // (ascending node id, matching the std::map iteration this replaces);
  // the direction split buffers are reused across nodes so a whole mine
  // costs two vector high-water marks instead of a map of vectors.
  std::vector<std::size_t> sends;
  std::vector<std::size_t> recvs;
  for (netsim::NodeId node = 0; node < log.node_index_extent(); ++node) {
    const auto idx = log.node_records(node);
    if (idx.empty()) continue;
    // Split the node's records by direction, preserving time order, so the
    // "first opposite-direction record past the threshold" is a single
    // monotone binary search per stimulus.
    sends.clear();
    recvs.clear();
    sends.reserve(idx.size());
    recvs.reserve(idx.size());
    for (const std::uint32_t i : idx)
      (sends_col[i] ? sends : recvs).push_back(i);

    auto attribute = [&](const std::vector<std::size_t>& stimuli,
                         const std::vector<std::size_t>& responses,
                         std::vector<CausalPair>& sink) {
      std::size_t cursor = 0;  // stimuli are time-ordered, so this advances
      for (const std::size_t si : stimuli) {
        const SimTime earliest = times[si] + threshold;
        while (cursor < responses.size() &&
               times[responses[cursor]] < earliest)
          ++cursor;
        if (cursor == responses.size()) break;
        const SimTime first_time = times[responses[cursor]];
        if (capped && first_time > earliest + config_.horizon) continue;
        // "First packet past the threshold", generalized to simultaneous
        // arrivals: all records tied at the earliest qualifying timestamp
        // are attributed. Co-arrivals are indistinguishable to a capture,
        // so taking the whole tie set makes the mined relations invariant
        // under reordering of equal-time trace events.
        for (std::size_t j = cursor; j < responses.size() &&
                                     times[responses[j]] == first_time;
             ++j)
          sink.push_back(CausalPair{si, responses[j]});
      }
    };
    attribute(sends, recvs, out.send_to_recv);
    attribute(recvs, sends, out.recv_to_send);
  }
  return out;
}

RelationSet CausalMiner::classify(const trace::TraceLog& log,
                                  const MinedPairs& pairs,
                                  const KeyScheme& scheme) const {
  RelationSet set;
  auto apply = [&](const std::vector<CausalPair>& list,
                   RelationDirection dir) {
    for (const auto& p : list) {
      const trace::RecordView stim = log.view(p.stimulus_index);
      const trace::RecordView resp = log.view(p.response_index);
      const auto skey = scheme.stimulus(stim);
      if (!skey) continue;
      const auto rkey = scheme.response(stim, resp);
      if (!rkey) continue;
      set.add(dir, RelationCell{*skey, *rkey}, stim.time, p.stimulus_index,
              p.response_index);
    }
  };
  apply(pairs.send_to_recv, RelationDirection::kSendToRecv);
  apply(pairs.recv_to_send, RelationDirection::kRecvToSend);
  return set;
}

RelationSet CausalMiner::mine(const trace::TraceLog& log,
                              const KeyScheme& scheme) const {
  return classify(log, mine_pairs(log), scheme);
}

MinedPairs true_pairs(const trace::TraceLog& log) {
  MinedPairs out;
  // Provenance mining needs only four columns; walk them flat.
  const auto nodes = log.nodes();
  const auto sends = log.send_flags();
  const auto frame_ids = log.frame_ids();
  const auto caused = log.caused_by_ids();
  const std::size_t count = log.size();
  // Per node: map frame id -> latest record index that carried it, per
  // direction, so provenance lookups are O(log n).
  std::map<std::pair<netsim::NodeId, std::uint64_t>, std::size_t> recv_by_id;
  std::map<std::pair<netsim::NodeId, std::uint64_t>, std::size_t> send_by_id;
  for (std::size_t i = 0; i < count; ++i) {
    auto key = std::make_pair(nodes[i], frame_ids[i]);
    if (sends[i])
      send_by_id.emplace(key, i);  // first transmission wins
    else
      recv_by_id.emplace(key, i);
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (caused[i] == 0) continue;
    if (sends[i]) {
      // This node sent a frame caused by a frame it received earlier:
      // recv→send ground truth at this node.
      auto it = recv_by_id.find({nodes[i], caused[i]});
      if (it != recv_by_id.end())
        out.recv_to_send.push_back(CausalPair{it->second, i});
    } else {
      // This node received a frame that a *peer* sent in response to a
      // frame this node transmitted: send→recv ground truth here.
      auto it = send_by_id.find({nodes[i], caused[i]});
      if (it != send_by_id.end())
        out.send_to_recv.push_back(CausalPair{it->second, i});
    }
  }
  return out;
}

PairAccuracy score_pairs(const trace::TraceLog& log, const MinedPairs& mined) {
  const auto frame_ids = log.frame_ids();
  const auto caused = log.caused_by_ids();
  PairAccuracy acc;
  const MinedPairs truth = true_pairs(log);
  acc.truth = truth.send_to_recv.size() + truth.recv_to_send.size();
  acc.mined = mined.send_to_recv.size() + mined.recv_to_send.size();

  std::set<std::pair<std::size_t, std::size_t>> truth_set;
  for (const auto& p : truth.send_to_recv)
    truth_set.emplace(p.stimulus_index, p.response_index);
  for (const auto& p : truth.recv_to_send)
    truth_set.emplace(p.stimulus_index, p.response_index);

  auto check = [&](const std::vector<CausalPair>& list) {
    for (const auto& p : list) {
      // A mined pair is correct if provenance directly confirms it...
      if (truth_set.count({p.stimulus_index, p.response_index})) {
        ++acc.correct;
        continue;
      }
      // ...or if the response's cause chain points at the stimulus frame
      // (covers multi-record frames, e.g. LAN fan-out).
      if (caused[p.response_index] != 0 &&
          caused[p.response_index] == frame_ids[p.stimulus_index])
        ++acc.correct;
    }
  };
  check(mined.send_to_recv);
  check(mined.recv_to_send);
  return acc;
}

CellAccuracy score_cells(const trace::TraceLog& log, const RelationSet& mined,
                         const KeyScheme& scheme) {
  CellAccuracy acc;
  MinerConfig dummy;  // classification does not depend on the window
  CausalMiner miner(dummy);
  const RelationSet truth = miner.classify(log, true_pairs(log), scheme);

  for (const auto dir :
       {RelationDirection::kSendToRecv, RelationDirection::kRecvToSend}) {
    for (const auto& [cell, stats] : truth.cells(dir)) {
      ++acc.true_cells;
      if (mined.find(dir, cell) == nullptr) ++acc.unobserved;
    }
    for (const auto& [cell, stats] : mined.cells(dir)) {
      ++acc.mined_cells;
      if (truth.find(dir, cell) == nullptr) ++acc.spurious;
    }
  }
  return acc;
}

}  // namespace nidkit::mining
