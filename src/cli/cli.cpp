#include "cli/cli.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cache/store.hpp"
#include "cov/cov.hpp"
#include "detect/json.hpp"
#include "detect/report.hpp"
#include "harness/experiment.hpp"
#include "harness/injection.hpp"
#include "harness/stability.hpp"
#include "harness/triage.hpp"
#include "obs/obs.hpp"
#include "trace/pcap.hpp"

namespace nidkit::cli {

using namespace std::chrono_literals;

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

std::optional<long long> Args::get_int(const std::string& key) const {
  auto it = flags.find(key);
  if (it == flags.end()) return std::nullopt;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<Args> parse_args(const std::vector<std::string>& tokens,
                               std::ostream& err) {
  Args args;
  std::size_t i = 0;
  if (i < tokens.size() && tokens[i].rfind("--", 0) != 0)
    args.command = tokens[i++];
  // The cache command takes an action word: `nidt cache ls|prune|clear`.
  if (args.command == "cache" && i < tokens.size() &&
      tokens[i].rfind("--", 0) != 0)
    args.subcommand = tokens[i++];
  while (i < tokens.size()) {
    const auto& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      err << "unexpected positional argument: " << tok << "\n";
      return std::nullopt;
    }
    // Boolean switches: presence means "on", no value token follows.
    if (tok == "--keep-bytes" || tok == "--no-cache" || tok == "--json" ||
        tok == "--from-audit") {
      args.flags[tok.substr(2)] = "1";
      i += 1;
      continue;
    }
    if (i + 1 >= tokens.size()) {
      err << "flag " << tok << " needs a value\n";
      return std::nullopt;
    }
    args.flags[tok.substr(2)] = tokens[i + 1];
    i += 2;
  }
  return args;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(csv);
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

namespace {

int usage(std::ostream& out) {
  out << "nidt — non-interoperability detection for routing protocols\n"
         "\n"
         "usage: nidt <command> [--flag value ...]\n"
         "\n"
         "commands:\n"
         "  audit      --protocol ospf|rip|bgp  --impls frr,bird\n"
         "             [--scheme type|gtsn|state|lsatype] [--topos paper|extended]\n"
         "             [--format text|json]\n"
         "             [--tdelay-ms 900] [--seeds 1,2,3] [--duration-s 180]\n"
         "             [--jobs N] [--stats file.json|inline] [--keep-bytes]\n"
         "             [--stats-out file.json] [--metrics-out m.json]\n"
         "             [--trace-out t.json]\n"
         "  trace      --impl frr [--topo mesh-5] [--seed 1]\n"
         "             [--out trace.txt | --pcap capture.pcap]\n"
         "  mine       --in trace.txt [--tdelay-ms 900] [--scheme type]\n"
         "  sweep      [--impl frr] [--max-ms 1500] [--step-ms 150] [--jobs N]\n"
         "             [--keep-bytes]\n"
         "  inject     --target frr|bird|strict --stimulus LSU-stale|LSR|...\n"
         "  validate   --impls frr,bird [--scheme gtsn] : mine flags, then\n"
         "             confirm each by crafted-packet injection\n"
         "  triage     --impls frr,bird [--from-audit] [--scheme gtsn]\n"
         "             [--max-probes 200] [--max-incidents N] [--jobs N]\n"
         "             [--report-out report.json] [--format text|json]\n"
         "             [--churn-s 60,110|none] : audit, then delta-debug\n"
         "             each flag to a minimal repro, confirm by injection,\n"
         "             and rank incidents\n"
         "  stability  [--impl frr] [--scheme type] [--seeds 1,2,3] [--jobs N]\n"
         "  coverage   [audit flags] [--format text|json] : run the audit\n"
         "             with behavioral-coverage collection enabled and\n"
         "             report the accumulated feature map, per-class\n"
         "             saturation and the features-seen curve\n"
         "  cache      ls|prune|clear|compact  --cache-dir DIR\n"
         "             [--max-age-days 30] [--json] : compact consolidates\n"
         "             loose entries into mmap'd pack files + manifest for\n"
         "             fast warm lookups; loose writes stay the write path\n"
         "  help\n"
         "\n"
         "  --jobs N parallelizes scenario execution over N workers\n"
         "  (default: hardware concurrency; results are identical for\n"
         "  every N). --stats writes executor wall-time/queue telemetry.\n"
         "  Audit/sweep traces keep only protocol digests; --keep-bytes\n"
         "  retains raw wire bytes too (for pcap export of audit runs).\n"
         "  --cache-dir DIR memoizes per-scenario results on disk, keyed\n"
         "  by every simulation-affecting knob; repeat runs (audit, sweep,\n"
         "  stability) replay hits instead of re-simulating, with byte-\n"
         "  identical output. NIDKIT_CACHE_DIR sets a default directory;\n"
         "  --no-cache overrides both.\n"
         "  --stats-out FILE always writes executor telemetry to FILE (in\n"
         "  addition to whatever --stats does). --metrics-out FILE writes\n"
         "  an obs metrics snapshot: the \"sim\" section is deterministic\n"
         "  (bit-identical for every --jobs value and cache temperature);\n"
         "  the \"wall\" section holds wall-clock histograms and span\n"
         "  counts. --trace-out FILE writes a Chrome trace-event JSON of\n"
         "  the run's phase spans — open it in ui.perfetto.dev.\n"
         "  --coverage-out FILE (audit/sweep/triage/stability) writes a\n"
         "  behavioral-coverage snapshot; its \"cov\" section is one line\n"
         "  and deterministic, like the metrics \"sim\" section.\n";
  return 0;
}

std::optional<ospf::BehaviorProfile> ospf_profile_by_name(
    const std::string& name) {
  if (name == "frr") return ospf::frr_profile();
  if (name == "bird") return ospf::bird_profile();
  if (name == "strict") return ospf::strict_profile();
  return std::nullopt;
}

std::optional<mining::KeyScheme> scheme_by_name(const std::string& name) {
  // Short CLI spellings and the schemes' own names are both accepted —
  // triage's repro command lines quote the latter.
  if (name == "type" || name == "ospf-type") return mining::ospf_type_scheme();
  if (name == "gtsn" || name == "ospf-greater-lssn")
    return mining::ospf_greater_lssn_scheme();
  if (name == "state" || name == "ospf-state")
    return mining::ospf_state_scheme();
  if (name == "lsatype" || name == "ospf-lsa-type")
    return mining::ospf_lsa_type_scheme();
  return std::nullopt;
}

std::optional<topo::Spec> topo_by_name(const std::string& name) {
  const auto dash = name.rfind('-');
  if (dash == std::string::npos) return std::nullopt;
  const std::string kind = name.substr(0, dash);
  std::size_t n = 0;
  try {
    n = std::stoul(name.substr(dash + 1));
  } catch (...) {
    return std::nullopt;
  }
  if (kind == "linear") return topo::Spec{topo::Kind::kLinear, n};
  if (kind == "mesh") return topo::Spec{topo::Kind::kMesh, n};
  if (kind == "ring") return topo::Spec{topo::Kind::kRing, n};
  if (kind == "star") return topo::Spec{topo::Kind::kStar, n};
  if (kind == "tree") return topo::Spec{topo::Kind::kTree, n};
  if (kind == "lan") return topo::Spec{topo::Kind::kLan, n};
  return std::nullopt;
}

/// Cache directory for this invocation: --no-cache wins, then --cache-dir,
/// then the NIDKIT_CACHE_DIR environment variable. Empty means caching is
/// off (the default).
std::string resolve_cache_dir(const Args& args) {
  if (args.has("no-cache")) return "";
  if (args.has("cache-dir")) return args.get("cache-dir", "");
  if (const char* env = std::getenv("NIDKIT_CACHE_DIR")) return env;
  return "";
}

std::optional<harness::ExperimentConfig> config_from(const Args& args,
                                                     std::ostream& err) {
  harness::ExperimentConfig config;
  const std::string topos = args.get("topos", "paper");
  if (topos == "paper") {
    config.topologies = topo::paper_topologies();
  } else if (topos == "extended") {
    config.topologies = topo::extended_topologies();
  } else {
    config.topologies.clear();
    for (const auto& name : split_list(topos)) {
      const auto spec = topo_by_name(name);
      if (!spec) {
        err << "unknown topology: " << name << "\n";
        return std::nullopt;
      }
      config.topologies.push_back(*spec);
    }
  }
  if (const auto ms = args.get_int("tdelay-ms"))
    config.tdelay = SimDuration{*ms * 1000};
  if (const auto s = args.get_int("duration-s"))
    config.duration = std::chrono::seconds(*s);
  if (args.has("churn-s")) {
    // The link-churn schedule, in seconds; "none" disables churn — the
    // spelling triage's repro command lines use for an empty schedule.
    config.churn_times.clear();
    const std::string churn = args.get("churn-s", "");
    if (churn != "none") {
      for (const auto& s : split_list(churn)) {
        try {
          config.churn_times.push_back(
              std::chrono::seconds(std::stoll(s)));
        } catch (...) {
          err << "--churn-s needs seconds (comma-separated) or none\n";
          return std::nullopt;
        }
      }
    }
  }
  if (args.has("seeds")) {
    config.seeds.clear();
    for (const auto& s : split_list(args.get("seeds", "")))
      config.seeds.push_back(std::stoull(s));
    if (config.seeds.empty()) {
      err << "--seeds must name at least one seed\n";
      return std::nullopt;
    }
  }
  if (args.has("jobs")) {
    const auto jobs = args.get_int("jobs");
    if (!jobs || *jobs < 0) {
      err << "--jobs needs a non-negative worker count\n";
      return std::nullopt;
    }
    // 0 keeps the default: as many workers as the hardware allows.
    config.jobs = static_cast<std::size_t>(*jobs);
  }
  // Experiment pipelines drop raw wire bytes from trace records by default
  // (mining reads digests only); --keep-bytes opts back in, e.g. to pcap-
  // export audit traces.
  config.keep_bytes = args.has("keep-bytes");
  config.cache_dir = resolve_cache_dir(args);
  return config;
}

/// Writes executor telemetry to the --stats destination ("inline" is
/// handled by the caller — it embeds into the report JSON instead) and,
/// independently, to --stats-out (always a file).
bool write_stats_file(const Args& args, const harness::ExecReport& exec,
                      std::ostream& err) {
  auto write_to = [&](const std::string& path) {
    std::ofstream file(path);
    if (!file) {
      err << "cannot open " << path << "\n";
      return false;
    }
    file << exec.to_json() << "\n";
    return true;
  };
  const std::string stats = args.get("stats", "");
  if (!stats.empty() && stats != "inline" && !write_to(stats)) return false;
  const std::string stats_out = args.get("stats-out", "");
  if (!stats_out.empty() && !write_to(stats_out)) return false;
  return true;
}

/// Scoped obs/cov session for one command: when --metrics-out or
/// --trace-out is given, resets the obs registry and enables collection;
/// when --coverage-out is given, does the same for the coverage map. On
/// finish() writes the requested files and restores the previous enabled
/// states (run_cli is re-entrant — tests share one process).
class ObsSession {
 public:
  ObsSession(const Args& args, std::ostream& err)
      : metrics_path_(args.get("metrics-out", "")),
        trace_path_(args.get("trace-out", "")),
        coverage_path_(args.get("coverage-out", "")),
        err_(err),
        was_enabled_(obs::enabled()),
        cov_was_enabled_(cov::enabled()) {
    if (active()) {
      obs::Registry::instance().reset();
      obs::set_enabled(true);
    }
    if (cov_active()) {
      cov::CoverageMap::instance().reset();
      cov::set_enabled(true);
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    if (finished_) return;
    if (active()) obs::set_enabled(was_enabled_);
    if (cov_active()) cov::set_enabled(cov_was_enabled_);
  }

  bool active() const {
    return !metrics_path_.empty() || !trace_path_.empty();
  }
  bool cov_active() const { return !coverage_path_.empty(); }

  /// Writes the requested output files and restores the enabled states.
  /// Returns false after reporting any I/O failure.
  bool finish() {
    if ((!active() && !cov_active()) || finished_) return true;
    finished_ = true;
    bool ok = true;
    if (!metrics_path_.empty()) {
      std::ofstream file(metrics_path_);
      if (!file) {
        err_ << "cannot open " << metrics_path_ << "\n";
        ok = false;
      } else {
        file << obs::Registry::instance().metrics_json();
      }
    }
    if (!trace_path_.empty()) {
      std::ofstream file(trace_path_);
      if (!file) {
        err_ << "cannot open " << trace_path_ << "\n";
        ok = false;
      } else {
        obs::Registry::instance().write_trace_json(file);
      }
    }
    if (!coverage_path_.empty()) {
      std::ofstream file(coverage_path_);
      if (!file) {
        err_ << "cannot open " << coverage_path_ << "\n";
        ok = false;
      } else {
        file << cov::CoverageMap::instance().coverage_json();
      }
    }
    if (active()) obs::set_enabled(was_enabled_);
    if (cov_active()) cov::set_enabled(cov_was_enabled_);
    return ok;
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string coverage_path_;
  std::ostream& err_;
  bool was_enabled_;
  bool cov_was_enabled_;
  bool finished_ = false;
};

int cmd_audit(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string protocol = args.get("protocol", "ospf");
  auto config = config_from(args, err);
  if (!config) return 2;

  if (protocol == "ospf") {
    std::vector<ospf::BehaviorProfile> impls;
    for (const auto& name : split_list(args.get("impls", "frr,bird"))) {
      const auto p = ospf_profile_by_name(name);
      if (!p) {
        err << "unknown OSPF implementation: " << name << "\n";
        return 2;
      }
      impls.push_back(*p);
    }
    if (impls.size() < 2) {
      err << "audit needs at least two implementations\n";
      return 2;
    }
    const auto scheme = scheme_by_name(args.get("scheme", "type"));
    if (!scheme) {
      err << "unknown scheme: " << args.get("scheme", "type") << "\n";
      return 2;
    }
    const auto audit = harness::audit_ospf(impls, *config, *scheme);
    if (!write_stats_file(args, audit.exec, err)) return 2;
    if (args.get("format", "text") == "json") {
      if (args.get("stats", "") == "inline") {
        const auto runtime = audit.exec.to_json();
        out << detect::to_json(audit.named(), audit.discrepancies, &runtime)
            << "\n";
      } else {
        out << detect::to_json(audit.named(), audit.discrepancies) << "\n";
      }
      return 0;
    }
    std::set<std::string> stims, resps;
    for (const auto& [name, set] : audit.by_impl) {
      for (const auto& s : set.stimulus_labels()) stims.insert(s);
      for (const auto& r : set.response_labels()) resps.insert(r);
    }
    out << detect::render_matrix(
               audit.named(),
               std::vector<std::string>(stims.begin(), stims.end()),
               std::vector<std::string>(resps.begin(), resps.end()),
               mining::RelationDirection::kSendToRecv)
        << "\n"
        << detect::render_discrepancies(audit.discrepancies);
    return 0;
  }
  if (protocol == "rip") {
    config->duration = std::max(config->duration, SimDuration{240s});
    const auto audit = harness::audit_rip(
        {rip::rip_classic_profile(), rip::rip_eager_profile()}, *config,
        mining::rip_refined_scheme());
    if (!write_stats_file(args, audit.exec, err)) return 2;
    out << detect::render_discrepancies(audit.discrepancies);
    return 0;
  }
  if (protocol == "bgp") {
    config->duration = std::max(config->duration, SimDuration{300s});
    if (!args.has("topos")) {
      // BGP sessions are point-to-point; the default OSPF topology set is
      // fine but smaller line/ring shapes converge faster.
      config->topologies = {topo::Spec{topo::Kind::kLinear, 3},
                            topo::Spec{topo::Kind::kRing, 4}};
    }
    const auto audit = harness::audit_bgp(
        {bgp::bgp_robust_profile(), bgp::bgp_fragile_profile()}, *config,
        mining::bgp_message_scheme());
    if (!write_stats_file(args, audit.exec, err)) return 2;
    out << detect::render_discrepancies(audit.discrepancies);
    return 0;
  }
  err << "unknown protocol: " << protocol << "\n";
  return 2;
}

int cmd_trace(const Args& args, std::ostream& out, std::ostream& err) {
  const auto profile = ospf_profile_by_name(args.get("impl", "frr"));
  if (!profile) {
    err << "unknown implementation\n";
    return 2;
  }
  const auto spec = topo_by_name(args.get("topo", "mesh-5"));
  if (!spec) {
    err << "unknown topology\n";
    return 2;
  }
  harness::Scenario s;
  s.topology = *spec;
  s.ospf_profile = *profile;
  if (const auto seed = args.get_int("seed"))
    s.seed = static_cast<std::uint64_t>(*seed);
  if (const auto ms = args.get_int("tdelay-ms")) s.tdelay = SimDuration{*ms * 1000};
  if (const auto secs = args.get_int("duration-s"))
    s.duration = std::chrono::seconds(*secs);
  const auto result = harness::run_scenario(s);
  if (args.has("pcap")) {
    std::ofstream file(args.get("pcap", ""), std::ios::binary);
    if (!file) {
      err << "cannot open " << args.get("pcap", "") << "\n";
      return 2;
    }
    const auto n = trace::export_pcap(result.log, file);
    out << "wrote " << n << " packets to " << args.get("pcap", "") << "\n";
    return 0;
  }
  if (args.has("out")) {
    std::ofstream file(args.get("out", ""));
    if (!file) {
      err << "cannot open " << args.get("out", "") << "\n";
      return 2;
    }
    result.log.save(file);
    out << "wrote " << result.log.size() << " records to "
        << args.get("out", "") << "\n";
  } else {
    result.log.save(out);
  }
  return 0;
}

int cmd_mine(const Args& args, std::ostream& out, std::ostream& err) {
  if (!args.has("in")) {
    err << "mine needs --in <trace file>\n";
    return 2;
  }
  std::ifstream file(args.get("in", ""));
  if (!file) {
    err << "cannot open " << args.get("in", "") << "\n";
    return 2;
  }
  auto log = trace::TraceLog::load(file);
  if (!log.ok()) {
    err << "bad trace: " << log.error() << "\n";
    return 2;
  }
  const auto scheme = scheme_by_name(args.get("scheme", "type"));
  if (!scheme) {
    err << "unknown scheme\n";
    return 2;
  }
  mining::MinerConfig mc;
  if (const auto ms = args.get_int("tdelay-ms"))
    mc.tdelay = SimDuration{*ms * 1000};
  mining::CausalMiner miner(mc);
  out << detect::render_relations(miner.mine(log.value(), *scheme));
  return 0;
}

int cmd_sweep(const Args& args, std::ostream& out, std::ostream& err) {
  const auto profile = ospf_profile_by_name(args.get("impl", "frr"));
  if (!profile) {
    err << "unknown implementation\n";
    return 2;
  }
  harness::ExperimentConfig config;
  config.topologies = {topo::Spec{topo::Kind::kLinear, 2},
                       topo::Spec{topo::Kind::kMesh, 3}};
  config.seeds = {1};
  config.link_jitter = 400ms;
  if (const auto jobs = args.get_int("jobs"); jobs && *jobs >= 0)
    config.jobs = static_cast<std::size_t>(*jobs);
  config.cache_dir = resolve_cache_dir(args);
  const long long max_ms = args.get_int("max-ms").value_or(1500);
  const long long step_ms = std::max<long long>(
      50, args.get_int("step-ms").value_or(150));
  std::vector<SimDuration> tds;
  for (long long ms = 0; ms <= max_ms; ms += step_ms)
    tds.push_back(SimDuration{ms * 1000});
  harness::ExecReport exec;
  const auto sweep = harness::tdelay_sweep(*profile, config, tds,
                                           mining::ospf_type_scheme(), &exec);
  if (!write_stats_file(args, exec, err)) return 2;
  out << "tdelay_ms unobserved spurious precision recall\n";
  for (const auto& p : sweep) {
    std::ostringstream line;
    line << p.tdelay.count() / 1000 << ' ' << p.unobserved_cells << ' '
         << p.spurious_cells << ' ' << p.precision << ' ' << p.recall
         << '\n';
    out << line.str();
  }
  // Text reports have nowhere to embed telemetry; "inline" goes to err so
  // the data rows stay machine-readable.
  if (args.get("stats", "") == "inline") err << exec.to_json() << "\n";
  return 0;
}

int cmd_inject(const Args& args, std::ostream& out, std::ostream& err) {
  const auto profile = ospf_profile_by_name(args.get("target", ""));
  if (!profile) {
    err << "inject needs --target frr|bird|strict\n";
    return 2;
  }
  const std::string stimulus = args.get("stimulus", "LSU-stale");
  if (!harness::injection_supports(stimulus)) {
    err << "unsupported stimulus: " << stimulus << "\n";
    return 2;
  }
  harness::InjectionConfig config;
  config.stimulus = stimulus;
  config.target_profile = *profile;
  const auto outcome = harness::inject_and_observe(config);
  if (!outcome.injected) {
    out << "adjacency never formed; nothing injected\n";
    return 1;
  }
  out << "injected " << stimulus << " into " << profile->name
      << "; responses observed:";
  for (const auto& r : outcome.responses) out << ' ' << r;
  out << "\n";
  return 0;
}

int cmd_validate(const Args& args, std::ostream& out, std::ostream& err) {
  auto config = config_from(args, err);
  if (!config) return 2;
  std::map<std::string, ospf::BehaviorProfile> impls;
  for (const auto& name : split_list(args.get("impls", "frr,bird"))) {
    const auto p = ospf_profile_by_name(name);
    if (!p) {
      err << "unknown OSPF implementation: " << name << "\n";
      return 2;
    }
    impls.emplace(name, *p);
  }
  if (impls.size() < 2) {
    err << "validate needs at least two implementations\n";
    return 2;
  }
  const auto scheme = scheme_by_name(args.get("scheme", "gtsn"));
  if (!scheme) {
    err << "unknown scheme\n";
    return 2;
  }
  std::vector<ospf::BehaviorProfile> profile_list;
  for (const auto& [name, p] : impls) profile_list.push_back(p);
  const auto audit = harness::audit_ospf(profile_list, *config, *scheme);
  out << "mined " << audit.discrepancies.size() << " discrepancies\n";
  const auto report =
      harness::validate_discrepancies(audit.discrepancies, impls);
  int confirmed = 0;
  for (const auto& entry : report) {
    out << "[" << to_string(entry.verdict) << "] "
        << entry.discrepancy.cell.stimulus << " -> "
        << entry.discrepancy.cell.response << " (present in "
        << entry.discrepancy.present_in << ")";
    if (!entry.stimulus.empty()) out << " probed with " << entry.stimulus;
    out << "\n";
    if (entry.verdict == harness::Verdict::kConfirmed) ++confirmed;
  }
  out << confirmed << "/" << report.size() << " confirmed by injection\n";
  return 0;
}

int cmd_triage(const Args& args, std::ostream& out, std::ostream& err) {
  auto config = config_from(args, err);
  if (!config) return 2;

  harness::TriageConfig tc;
  tc.experiment = *config;
  std::vector<ospf::BehaviorProfile> impls;
  for (const auto& name : split_list(args.get("impls", "frr,bird"))) {
    const auto p = ospf_profile_by_name(name);
    if (!p) {
      err << "unknown OSPF implementation: " << name << "\n";
      return 2;
    }
    impls.push_back(*p);
  }
  if (impls.size() < 2) {
    err << "triage needs at least two implementations\n";
    return 2;
  }
  // gtsn is the triage default (unlike audit's "type"): its cells carry
  // the +gtSN refinement the injection stimulus table maps directly.
  const auto scheme = scheme_by_name(args.get("scheme", "gtsn"));
  if (!scheme) {
    err << "unknown scheme: " << args.get("scheme", "gtsn") << "\n";
    return 2;
  }
  tc.scheme = *scheme;
  if (args.has("max-probes")) {
    const auto n = args.get_int("max-probes");
    if (!n || *n < 1) {
      err << "--max-probes needs a positive probe budget\n";
      return 2;
    }
    tc.max_probes = static_cast<std::size_t>(*n);
  }
  if (args.has("max-incidents")) {
    const auto n = args.get_int("max-incidents");
    if (!n || *n < 0) {
      err << "--max-incidents needs a non-negative count\n";
      return 2;
    }
    tc.max_incidents = static_cast<std::size_t>(*n);
  }
  // --from-audit (the default and only source today) is accepted for
  // forward compatibility with triaging a saved audit report.

  const auto result = harness::triage_ospf(impls, tc);
  if (!write_stats_file(args, result.exec, err)) return 2;
  const std::string report = harness::triage_report_json(result);
  const std::string report_out = args.get("report-out", "");
  if (!report_out.empty()) {
    std::ofstream file(report_out);
    if (!file) {
      err << "cannot open " << report_out << "\n";
      return 2;
    }
    file << report;
  }
  if (args.get("format", "text") == "json") {
    out << report;
    return 0;
  }
  out << "flagged " << result.flagged << " discrepancies, triaged "
      << result.incidents.size() << " (" << result.total_probes
      << " reproduction probes)\n";
  for (const auto& inc : result.incidents) {
    out << "#" << inc.rank << " [" << to_string(inc.confirmation) << "] "
        << detect::to_string(inc.discrepancy.direction) << " "
        << inc.discrepancy.cell.stimulus << " -> "
        << inc.discrepancy.cell.response << " (present in "
        << inc.discrepancy.present_in << ", absent in "
        << inc.discrepancy.absent_in << ")\n";
    if (!inc.reproduced) {
      out << "    " << inc.reason << "\n";
      continue;
    }
    out << "    minimized " << inc.original.topology.name() << "/s"
        << inc.original.seed << " -> " << inc.minimal.topology.name()
        << "/s" << inc.minimal.seed << ", churn "
        << inc.original.churn_times.size() << " -> "
        << inc.minimal.churn_times.size() << " events, tdelay "
        << inc.minimal.tdelay.count() / 1000 << "ms ("
        << inc.shrink.probes << " probes"
        << (inc.shrink.fixpoint ? ", fixpoint" : "")
        << (inc.shrink.budget_exhausted ? ", budget exhausted" : "")
        << ")\n";
    if (!inc.reason.empty()) out << "    " << inc.reason << "\n";
    out << "    repro: "
        << harness::repro_command(inc.minimal, inc.discrepancy.present_in,
                                  inc.discrepancy.absent_in, result.scheme)
        << "\n";
  }
  return 0;
}

int cmd_stability(const Args& args, std::ostream& out, std::ostream& err) {
  const auto profile = ospf_profile_by_name(args.get("impl", "frr"));
  if (!profile) {
    err << "unknown implementation\n";
    return 2;
  }
  auto config = config_from(args, err);
  if (!config) return 2;
  const auto scheme = scheme_by_name(args.get("scheme", "type"));
  if (!scheme) {
    err << "unknown scheme\n";
    return 2;
  }
  harness::ExecReport exec;
  const auto report =
      harness::ospf_relation_stability(*profile, *config, *scheme, &exec);
  if (!write_stats_file(args, exec, err)) return 2;
  out << "seeds stimulus -> response (occurrences)\n";
  for (const auto& cell : report) {
    out << cell.seeds_seen << '/' << cell.seeds_total << ' '
        << cell.cell.stimulus << " -> " << cell.cell.response << " ["
        << detect::to_string(cell.direction) << "] (" << cell.total_count
        << ")\n";
  }
  if (args.get("stats", "") == "inline") err << exec.to_json() << "\n";
  return 0;
}

int cmd_coverage(const Args& args, std::ostream& out, std::ostream& err) {
  // Runs the audit pipeline with behavioral-coverage collection enabled
  // and reports the accumulated map. The audit's own report is discarded
  // — `nidt audit --coverage-out` keeps both. Everything printed here is
  // derived from the canonically merged CoverageMap, so the report is
  // byte-identical for every --jobs value and cache temperature.
  auto& map = cov::CoverageMap::instance();
  const bool prior = cov::enabled();
  if (!prior) {
    map.reset();
    cov::set_enabled(true);
  }
  std::ostringstream sink;
  const int rc = cmd_audit(args, sink, err);
  if (rc != 0) {
    if (!prior) cov::set_enabled(false);
    return rc;
  }
  if (args.get("format", "text") == "json") {
    out << map.coverage_json();
  } else {
    out << "coverage: " << map.features_seen() << "/" << cov::universe_size()
        << " features over " << map.scenarios() << " scenarios\n";
    static constexpr struct {
      cov::FeatureClass cls;
      const char* name;
    } kRows[] = {{cov::FeatureClass::kFsmEdge, "fsm"},
                 {cov::FeatureClass::kPacketPair, "pair"},
                 {cov::FeatureClass::kPathMarker, "path"},
                 {cov::FeatureClass::kLsaLifecycle, "lsa"},
                 {cov::FeatureClass::kChaos, "chaos"}};
    for (const auto& row : kRows) {
      out << "  " << row.name << " " << map.class_seen(row.cls) << "/"
          << cov::universe_size(row.cls) << "\n";
    }
    out << "saturation:";
    for (const auto v : map.curve()) out << ' ' << v;
    out << "\nfeatures:\n";
    for (const auto id : map.seen_ids())
      out << "  " << cov::feature_name(id) << "\n";
  }
  if (!prior) cov::set_enabled(false);
  return 0;
}

int cmd_cache(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string dir = resolve_cache_dir(args);
  if (dir.empty()) {
    err << "cache needs a directory: pass --cache-dir or set "
           "NIDKIT_CACHE_DIR\n";
    return 2;
  }
  const std::string action =
      args.subcommand.empty() ? "ls" : args.subcommand;
  if (action == "ls") {
    const auto entries = cache::Store::ls(dir);
    if (args.has("json")) {
      out << "[";
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto& e = entries[i];
        if (i) out << ",";
        out << "{\"key\":\"" << e.key.hex() << "\",\"kind\":\""
            << (e.kind == cache::PayloadKind::kSweepStats ? "sweep"
                                                          : "mined")
            << "\",\"format\":" << e.format
            << ",\"bytes\":" << e.bytes << ",\"age_s\":" << e.age_seconds
            << ",\"hits\":" << e.hits
            << ",\"src\":\"" << (e.packed ? "pack" : "loose")
            << "\",\"valid\":" << (e.valid ? "true" : "false") << "}";
      }
      out << "]\n";
      return 0;
    }
    out << "key kind bytes age_s hits src valid\n";
    for (const auto& e : entries) {
      out << e.key.hex() << ' '
          << (e.kind == cache::PayloadKind::kSweepStats ? "sweep" : "mined")
          << ' ' << e.bytes << ' ' << e.age_seconds << ' ' << e.hits << ' '
          << (e.packed ? "pack" : "loose") << ' '
          << (e.valid ? "yes" : "NO") << '\n';
    }
    out << entries.size() << " entries\n";
    return 0;
  }
  if (action == "prune") {
    const auto days = args.get_int("max-age-days").value_or(30);
    if (days < 0) {
      err << "--max-age-days needs a non-negative value\n";
      return 2;
    }
    const auto removed = cache::Store::prune(dir, days);
    out << "pruned " << removed << " entries older than " << days
        << " days (plus any unreadable ones)\n";
    return 0;
  }
  if (action == "clear") {
    const auto removed = cache::Store::clear(dir);
    out << "cleared " << removed << " entries\n";
    return 0;
  }
  if (action == "compact") {
    const auto result = cache::compact(dir);
    if (!result) {
      err << "compact failed: cannot write " << dir << "/"
          << cache::kPacksDirName << "\n";
      return 2;
    }
    out << "packed " << result->packed << " loose entries, carried "
        << result->carried << " packed entries";
    if (result->skipped) out << ", skipped " << result->skipped << " invalid";
    if (result->skipped_version)
      out << ", skipped " << result->skipped_version
          << " for format-version skew";
    out << "\n"
        << result->entries << " entries in " << result->segments
        << " segments (" << result->bytes << " bytes)\n";
    return 0;
  }
  err << "unknown cache action: " << action
      << " (try ls, prune, clear, compact)\n";
  return 2;
}

/// Runs an experiment command inside an ObsSession so --metrics-out /
/// --trace-out capture it. File-write failures fail an otherwise
/// successful command.
template <typename Fn>
int with_obs(const Args& args, std::ostream& err, Fn&& fn) {
  ObsSession session(args, err);
  const int rc = fn();
  if (!session.finish() && rc == 0) return 2;
  return rc;
}

}  // namespace

int run_cli(const std::vector<std::string>& tokens, std::ostream& out,
            std::ostream& err) {
  auto args = parse_args(tokens, err);
  if (!args) return 2;
  if (args->command.empty() || args->command == "help") return usage(out);
  if (args->command == "audit")
    return with_obs(*args, err, [&] { return cmd_audit(*args, out, err); });
  if (args->command == "trace") return cmd_trace(*args, out, err);
  if (args->command == "mine") return cmd_mine(*args, out, err);
  if (args->command == "sweep")
    return with_obs(*args, err, [&] { return cmd_sweep(*args, out, err); });
  if (args->command == "inject") return cmd_inject(*args, out, err);
  if (args->command == "validate") return cmd_validate(*args, out, err);
  if (args->command == "triage")
    return with_obs(*args, err, [&] { return cmd_triage(*args, out, err); });
  if (args->command == "stability")
    return with_obs(*args, err,
                    [&] { return cmd_stability(*args, out, err); });
  if (args->command == "coverage")
    return with_obs(*args, err,
                    [&] { return cmd_coverage(*args, out, err); });
  if (args->command == "cache") return cmd_cache(*args, out, err);
  err << "unknown command: " << args->command << " (try `nidt help`)\n";
  return 2;
}

}  // namespace nidkit::cli
