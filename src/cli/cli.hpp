// nidt — the toolkit's command-line interface.
//
// Subcommands (see `nidt help`):
//   audit      run the full pipeline for 2+ implementations and print the
//              relationship matrix + flagged discrepancies
//   trace      run one scenario and save/dump its packet trace
//   mine       mine a saved trace into relationships
//   sweep      TDelay calibration sweep
//   inject     craft-and-probe validation of a stimulus class
//   stability  per-cell seed-coverage report
//   cache      maintain the scenario result cache (ls/prune/clear)
//
// The CLI is a thin layer: every subcommand parses flags into a struct and
// calls the harness. run_cli is stream-parameterized so tests can drive it
// end to end without spawning processes.
#pragma once

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace nidkit::cli {

/// Parsed command line: positional subcommand + --key value flags.
struct Args {
  std::string command;
  /// Second positional token — only the `cache` command takes one
  /// (`nidt cache ls|prune|clear`); empty elsewhere.
  std::string subcommand;
  std::map<std::string, std::string> flags;

  bool has(const std::string& key) const { return flags.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const;
  std::optional<long long> get_int(const std::string& key) const;
};

/// Parses argv-style tokens. Returns nullopt (and writes a message to
/// `err`) on malformed input such as a flag without a value.
std::optional<Args> parse_args(const std::vector<std::string>& tokens,
                               std::ostream& err);

/// Splits "a,b,c" into {"a","b","c"} (empty items dropped).
std::vector<std::string> split_list(const std::string& csv);

/// Runs the CLI. Returns the process exit code.
int run_cli(const std::vector<std::string>& tokens, std::ostream& out,
            std::ostream& err);

}  // namespace nidkit::cli
