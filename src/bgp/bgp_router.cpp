#include "bgp/bgp_router.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace nidkit::bgp {

BgpProfile bgp_robust_profile() {
  BgpProfile p;
  p.name = "bgp-robust";
  p.as_path_accept_limit = 0;  // any wire-valid path is carried
  return p;
}

BgpProfile bgp_fragile_profile() {
  BgpProfile p;
  p.name = "bgp-fragile";
  // Paths beyond this are treated as malformed: NOTIFICATION + reset.
  // (The 2009 incident: an implementation limit well below what the wire
  // format allows.)
  p.as_path_accept_limit = 100;
  return p;
}

std::string to_string(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

BgpRouter::BgpRouter(netsim::Network& net, netsim::NodeId node,
                     BgpConfig config, std::uint64_t seed)
    : net_(net), node_(node), config_(std::move(config)), rng_(seed) {
  net_.set_receive_handler(
      node_, [this](netsim::IfaceIndex idx, const netsim::Frame& f) {
        on_frame(idx, f);
      });
}

void BgpRouter::start() {
  started_ = true;
  const auto n = net_.iface_count(node_);
  peers_.reserve(n);
  for (netsim::IfaceIndex i = 0; i < n; ++i) {
    Peer peer;
    peer.iface = i;
    const auto& ifc = net_.iface(node_, i);
    for (const auto& att : net_.attachments(ifc.segment))
      if (att.node != node_) peer.address = att.address;
    peers_.push_back(std::move(peer));
  }
  for (auto& peer : peers_) open_session(peer);
}

void BgpRouter::open_session(Peer& peer) {
  OpenMessage open;
  open.my_as = config_.as_number;
  open.hold_time = config_.profile.hold_time;
  open.bgp_identifier = config_.router_id;
  set_session_state(peer, SessionState::kOpenSent);
  send_message(peer, open, current_cause_);
  // Retry if the OPEN exchange stalls.
  peer.retry_timer.cancel();
  peer.retry_timer =
      net_.sim().schedule(config_.profile.connect_retry, [this, &peer] {
        if (peer.state != SessionState::kEstablished) open_session(peer);
      });
}

void BgpRouter::send_message(Peer& peer, MessageBody body,
                             std::uint64_t cause) {
  BgpMessage msg;
  msg.body = std::move(body);
  switch (msg.type()) {
    case MessageType::kOpen: ++stats_.tx_open; break;
    case MessageType::kUpdate: ++stats_.tx_update; break;
    case MessageType::kNotification: ++stats_.tx_notification; break;
    case MessageType::kKeepalive: ++stats_.tx_keepalive; break;
  }
  netsim::Frame frame;
  frame.dst = peer.address;
  frame.protocol = kIpProtoTcp;
  frame.payload = encode(msg);
  frame.caused_by = cause;
  net_.send(node_, peer.iface, std::move(frame));
}

void BgpRouter::on_frame(netsim::IfaceIndex iface,
                         const netsim::Frame& frame) {
  if (!started_ || frame.protocol != kIpProtoTcp) return;
  Peer* peer = nullptr;
  for (auto& p : peers_)
    if (p.iface == iface) peer = &p;
  if (peer == nullptr || !(frame.src == peer->address)) return;

  auto decoded = decode(frame.payload);
  if (!decoded.ok()) return;
  current_cause_ = frame.id;
  const BgpMessage& msg = decoded.value();
  if (const auto* open = std::get_if<OpenMessage>(&msg.body)) {
    ++stats_.rx_open;
    handle_open(*peer, *open);
  } else if (const auto* update = std::get_if<UpdateMessage>(&msg.body)) {
    ++stats_.rx_update;
    handle_update(*peer, *update, frame.id);
  } else if (const auto* notif =
                 std::get_if<NotificationMessage>(&msg.body)) {
    ++stats_.rx_notification;
    handle_notification(*peer, *notif);
  } else {
    ++stats_.rx_keepalive;
    handle_keepalive(*peer);
  }
  current_cause_ = 0;
}

void BgpRouter::handle_open(Peer& peer, const OpenMessage& open) {
  // FSM error (§8.2.2): an OPEN on an *established* session means the peer
  // restarted behind our back. Tear down and let the retry logic rebuild —
  // otherwise the session wedges half-open.
  if (peer.state == SessionState::kEstablished) {
    send_notification(peer, kErrorCease, 0, current_cause_);
    reset_session(peer, /*send_cease=*/false);
    return;
  }
  // A duplicate OPEN in OpenConfirm is a harmless collision echo (our
  // resent OPEN crossed theirs): confirm again and stay.
  if (peer.state == SessionState::kOpenConfirm) {
    send_message(peer, KeepaliveMessage{}, current_cause_);
    return;
  }
  peer.peer_as = open.my_as;
  peer.peer_id = open.bgp_identifier;
  if (peer.state == SessionState::kIdle) {
    // Passive side: answer with our own OPEN first.
    open_session(peer);
  } else {
    // OpenSent: the peer may have been down when our OPEN went out (there
    // is no TCP to tell us); resend it so both sides can confirm.
    OpenMessage mine;
    mine.my_as = config_.as_number;
    mine.hold_time = config_.profile.hold_time;
    mine.bgp_identifier = config_.router_id;
    send_message(peer, mine, current_cause_);
  }
  send_message(peer, KeepaliveMessage{}, current_cause_);
  if (peer.state == SessionState::kOpenSent)
    set_session_state(peer, SessionState::kOpenConfirm);
  arm_hold(peer);
  arm_keepalive(peer);
}

void BgpRouter::handle_keepalive(Peer& peer) {
  // FSM error (§8.2.2): a KEEPALIVE before the OPEN exchange finished.
  if (peer.state == SessionState::kOpenSent) {
    send_notification(peer, kErrorCease, 0, current_cause_);
    reset_session(peer, /*send_cease=*/false);
    return;
  }
  if (peer.state == SessionState::kIdle) return;
  arm_hold(peer);
  if (peer.state == SessionState::kOpenConfirm) session_established(peer);
}

void BgpRouter::set_session_state(Peer& peer, SessionState to) {
  if (peer.state == to) return;
  stats_.fsm_edge_mask |= 1ull << (static_cast<unsigned>(peer.state) * 8 +
                                   static_cast<unsigned>(to));
  peer.state = to;
  ++stats_.fsm_transitions;
}

void BgpRouter::session_established(Peer& peer) {
  set_session_state(peer, SessionState::kEstablished);
  peer.retry_timer.cancel();
  NIDKIT_LOG(kInfo, net_.sim().now(), "bgp",
             "AS" << config_.as_number << " session with AS" << peer.peer_as
                  << " established");
  // Initial table push: everything in loc-RIB.
  for (const auto& [prefix, source] : best_source_)
    peer.pending.insert(prefix);
  for (const auto& [prefix, lr] : local_routes_) peer.pending.insert(prefix);
  if (!peer.pending.empty()) schedule_advertisement(peer, current_cause_);
}

void BgpRouter::arm_keepalive(Peer& peer) {
  peer.keepalive_timer.cancel();
  peer.keepalive_timer =
      net_.sim().schedule(config_.profile.keepalive_interval, [this, &peer] {
        if (peer.state >= SessionState::kOpenConfirm) {
          send_message(peer, KeepaliveMessage{}, /*cause=*/0);
          arm_keepalive(peer);
        }
      });
}

void BgpRouter::arm_hold(Peer& peer) {
  peer.hold_timer.cancel();
  peer.hold_timer = net_.sim().schedule(
      std::chrono::seconds(config_.profile.hold_time), [this, &peer] {
        if (peer.state < SessionState::kOpenConfirm) return;
        send_notification(peer, kErrorHoldTimerExpired, 0, /*cause=*/0);
        reset_session(peer, /*send_cease=*/false);
      });
}

void BgpRouter::send_notification(Peer& peer, std::uint8_t code,
                                  std::uint8_t subcode, std::uint64_t cause) {
  NotificationMessage notif;
  notif.error_code = code;
  notif.error_subcode = subcode;
  send_message(peer, std::move(notif), cause);
}

void BgpRouter::reset_session(Peer& peer, bool send_cease) {
  if (send_cease && peer.state >= SessionState::kOpenConfirm)
    send_notification(peer, kErrorCease, 0, current_cause_);
  ++stats_.session_resets;
  set_session_state(peer, SessionState::kIdle);
  peer.keepalive_timer.cancel();
  peer.hold_timer.cancel();
  peer.mrai_timer.cancel();
  peer.pending.clear();
  peer.pending_withdraw.clear();
  peer.advertised.clear();

  // Routes learned from this peer are invalidated.
  std::vector<Prefix> lost;
  for (const auto& [prefix, entry] : peer.adj_rib_in) lost.push_back(prefix);
  peer.adj_rib_in.clear();
  for (const auto& prefix : lost) decide(prefix, current_cause_);

  // Try again after the retry interval (sessions flap rather than die —
  // the incident's reset loop).
  peer.retry_timer.cancel();
  peer.retry_timer =
      net_.sim().schedule(config_.profile.connect_retry, [this, &peer] {
        if (peer.state == SessionState::kIdle) open_session(peer);
      });
}

void BgpRouter::handle_notification(Peer& peer, const NotificationMessage&) {
  reset_session(peer, /*send_cease=*/false);
}

void BgpRouter::handle_update(Peer& peer, const UpdateMessage& update,
                              std::uint64_t frame_id) {
  if (peer.state != SessionState::kEstablished) return;
  arm_hold(peer);

  // --- The discretionary behaviour under test: AS_PATH length limits.
  const auto limit = config_.profile.as_path_accept_limit;
  if (limit != 0 && update.as_path.size() > limit) {
    ++stats_.long_path_rejects;
    NIDKIT_LOG(kWarn, net_.sim().now(), "bgp",
               "AS" << config_.as_number << " rejects AS_PATH of length "
                    << update.as_path.size() << " from AS" << peer.peer_as);
    send_notification(peer, kErrorUpdateMessage, kSubcodeMalformedAsPath,
                      frame_id);
    reset_session(peer, /*send_cease=*/false);
    return;
  }

  for (const auto& prefix : update.withdrawn) {
    if (peer.adj_rib_in.erase(prefix) > 0) decide(prefix, frame_id);
  }
  if (update.nlri.empty()) return;

  // Loop prevention: our own AS in the path means the route came back.
  if (std::find(update.as_path.begin(), update.as_path.end(),
                config_.as_number) != update.as_path.end()) {
    ++stats_.loop_rejects;
    return;
  }
  for (const auto& prefix : update.nlri) {
    peer.adj_rib_in[prefix] = AdjRibEntry{update.as_path, update.next_hop};
    decide(prefix, frame_id);
  }
}

void BgpRouter::decide(const Prefix& prefix, std::uint64_t cause) {
  // Best path: local origination wins; otherwise shortest AS_PATH, tie
  // broken by lowest peer id.
  int best = kLocal - 1;  // "no route"
  const AsPath* best_path = nullptr;
  if (local_routes_.count(prefix)) {
    best = kLocal;
  } else {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      auto it = peers_[i].adj_rib_in.find(prefix);
      if (it == peers_[i].adj_rib_in.end()) continue;
      if (best < kLocal || best_path == nullptr ||
          it->second.path.size() < best_path->size() ||
          (it->second.path.size() == best_path->size() &&
           peers_[i].peer_id < peers_[static_cast<std::size_t>(best)]
                                   .peer_id)) {
        best = static_cast<int>(i);
        best_path = &it->second.path;
      }
    }
  }

  const bool have = best >= kLocal;
  // Note: even when the best *source* is unchanged the path may have
  // changed (the peer re-announced), so the change is always propagated;
  // MRAI batching absorbs the chatter.
  if (have) {
    best_source_[prefix] = best;
    ++stats_.routes_selected;
  } else {
    best_source_.erase(prefix);
  }

  // Propagate the change to every peer (the new best, or a withdrawal).
  for (auto& peer : peers_) {
    if (peer.state != SessionState::kEstablished) continue;
    if (have) {
      peer.pending.insert(prefix);
      peer.pending_withdraw.erase(prefix);
    } else if (peer.advertised.count(prefix)) {
      peer.pending_withdraw.insert(prefix);
      peer.pending.erase(prefix);
    }
    schedule_advertisement(peer, cause);
  }
}

std::optional<AsPath> BgpRouter::advertised_path(const Prefix& prefix,
                                                 const Peer& peer) const {
  auto local = local_routes_.find(prefix);
  if (local != local_routes_.end()) {
    return AsPath(local->second.prepend, config_.as_number);
  }
  auto source = best_source_.find(prefix);
  if (source == best_source_.end() || source->second < 0)
    return std::nullopt;
  const auto& src_peer = peers_[static_cast<std::size_t>(source->second)];
  if (&src_peer == &peer) return std::nullopt;  // never back to the source
  auto it = src_peer.adj_rib_in.find(prefix);
  if (it == src_peer.adj_rib_in.end()) return std::nullopt;
  AsPath path;
  path.reserve(it->second.path.size() + 1);
  path.push_back(config_.as_number);
  path.insert(path.end(), it->second.path.begin(), it->second.path.end());
  return path;
}

void BgpRouter::schedule_advertisement(Peer& peer, std::uint64_t cause) {
  if (peer.mrai_cause == 0) peer.mrai_cause = cause;
  if (peer.mrai_timer.valid()) {
    // A flush is already scheduled; the new prefixes ride along.
  }
  peer.mrai_timer.cancel();
  peer.mrai_timer = net_.sim().schedule(config_.profile.mrai, [this, &peer] {
    flush_advertisements(peer);
  });
}

void BgpRouter::flush_advertisements(Peer& peer) {
  if (peer.state != SessionState::kEstablished) return;
  const std::uint64_t cause = peer.mrai_cause;
  peer.mrai_cause = 0;
  peer.mrai_timer = netsim::TimerHandle{};

  // Withdrawals first, as one UPDATE.
  if (!peer.pending_withdraw.empty()) {
    UpdateMessage update;
    for (const auto& prefix : peer.pending_withdraw) {
      update.withdrawn.push_back(prefix);
      peer.advertised.erase(prefix);
    }
    peer.pending_withdraw.clear();
    send_message(peer, std::move(update), cause);
  }

  // Announcements grouped by identical path.
  std::map<AsPath, std::vector<Prefix>> groups;
  for (const auto& prefix : peer.pending) {
    const auto path = advertised_path(prefix, peer);
    if (!path) continue;
    groups[*path].push_back(prefix);
  }
  peer.pending.clear();
  const Ipv4Addr own_addr = net_.iface(node_, peer.iface).address;
  for (auto& [path, prefixes] : groups) {
    UpdateMessage update;
    update.as_path = path;
    update.next_hop = own_addr;
    update.nlri = std::move(prefixes);
    for (const auto& prefix : update.nlri) peer.advertised.insert(prefix);
    send_message(peer, std::move(update), cause);
  }
}

void BgpRouter::originate(Prefix prefix, std::size_t prepend) {
  local_routes_[prefix] = LocalRoute{std::max<std::size_t>(1, prepend)};
  decide(prefix, current_cause_);
}

bool BgpRouter::withdraw(Prefix prefix) {
  if (local_routes_.erase(prefix) == 0) return false;
  decide(prefix, current_cause_);
  return true;
}

SessionState BgpRouter::session_state(netsim::IfaceIndex iface) const {
  for (const auto& p : peers_)
    if (p.iface == iface) return p.state;
  return SessionState::kIdle;
}

bool BgpRouter::all_sessions_established() const {
  for (const auto& p : peers_)
    if (p.state != SessionState::kEstablished) return false;
  return !peers_.empty();
}

std::vector<BgpRoute> BgpRouter::routes() const {
  std::vector<BgpRoute> out;
  for (const auto& [prefix, source] : best_source_) {
    BgpRoute r;
    r.prefix = prefix;
    if (source == kLocal) {
      r.local = true;
    } else {
      const auto& peer = peers_[static_cast<std::size_t>(source)];
      auto it = peer.adj_rib_in.find(prefix);
      if (it == peer.adj_rib_in.end()) continue;
      r.path = it->second.path;
      r.via = it->second.next_hop;
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace nidkit::bgp
