// BGP-4 speaker (RFC 4271 subset) with pluggable AS_PATH-handling
// behaviour.
//
// This module exists to reproduce the paper's motivating example (§1): the
// 2009 global slowdown, where routes carrying an extremely long AS_PATH
// made one vendor's routers reset their sessions repeatedly while others
// carried the route without complaint. The two profiles model that split:
//
//   * bgp_robust_profile()  — accepts arbitrarily long (wire-valid) paths;
//   * bgp_fragile_profile() — treats paths longer than a limit as a
//     malformed-AS_PATH error: NOTIFICATION + session reset (and, because
//     the peer keeps re-advertising after re-establishment, a reset loop —
//     the incident's "repeated reboots").
//
// The causal miner then flags Rcv(UPDATE+longpath) → Snd(NOTIFICATION) as
// a fragile-only relationship: the paper's technique detecting the paper's
// own motivating bug.
//
// Sessions run over the simulator's reliable p2p links (TCP itself is not
// modeled; BGP assumes a reliable transport, so BGP scenarios run with
// zero frame loss).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "packet/bgp_packet.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace nidkit::bgp {

using namespace std::chrono_literals;

/// IP protocol number used for BGP frames (TCP).
inline constexpr std::uint8_t kIpProtoTcp = 6;

struct BgpProfile {
  std::string name = "generic";
  SimDuration keepalive_interval = 30s;
  std::uint16_t hold_time = 90;  ///< seconds, advertised in OPEN
  SimDuration connect_retry = 20s;
  /// Minimum interval between UPDATE bursts to one peer (MRAI batching).
  SimDuration mrai = 200ms;
  /// AS_PATH acceptance limit: 0 = no limit (robust). A received UPDATE
  /// whose path exceeds the limit triggers NOTIFICATION (UPDATE error,
  /// malformed AS_PATH) and a session reset (fragile, incident-like).
  std::size_t as_path_accept_limit = 0;
};

BgpProfile bgp_robust_profile();
BgpProfile bgp_fragile_profile();

/// Session FSM states (RFC 4271 §8.2.2; Connect/Active are collapsed into
/// Idle since transport setup is immediate here).
enum class SessionState {
  kIdle = 0,
  kOpenSent = 1,
  kOpenConfirm = 2,
  kEstablished = 3,
};

std::string to_string(SessionState s);

struct BgpConfig {
  std::uint16_t as_number = 0;
  Ipv4Addr router_id;
  BgpProfile profile;
};

/// A route as learned from one peer.
struct AdjRibEntry {
  AsPath path;
  Ipv4Addr next_hop;
};

/// A selected (best) route.
struct BgpRoute {
  Prefix prefix;
  AsPath path;            ///< empty for locally originated prefixes
  Ipv4Addr via;           ///< next hop (0 for local)
  bool local = false;

  friend bool operator==(const BgpRoute&, const BgpRoute&) = default;
};

class BgpRouter {
 public:
  BgpRouter(netsim::Network& net, netsim::NodeId node, BgpConfig config,
            std::uint64_t seed);

  BgpRouter(const BgpRouter&) = delete;
  BgpRouter& operator=(const BgpRouter&) = delete;

  /// Opens a session on every interface (one eBGP peer per p2p link).
  void start();

  /// Originates `prefix` locally. `prepend` controls how many copies of
  /// the own AS the advertisement carries (traffic-engineering prepending;
  /// large values reproduce the 2009 long-path announcement).
  void originate(Prefix prefix, std::size_t prepend = 1);

  /// Withdraws a locally originated prefix.
  bool withdraw(Prefix prefix);

  const BgpConfig& config() const { return config_; }
  SessionState session_state(netsim::IfaceIndex iface) const;
  bool all_sessions_established() const;
  std::vector<BgpRoute> routes() const;

  struct Stats {
    std::uint64_t tx_open = 0, rx_open = 0;
    std::uint64_t tx_update = 0, rx_update = 0;
    std::uint64_t tx_keepalive = 0, rx_keepalive = 0;
    std::uint64_t tx_notification = 0, rx_notification = 0;
    std::uint64_t session_resets = 0;
    std::uint64_t loop_rejects = 0;
    std::uint64_t long_path_rejects = 0;
    std::uint64_t routes_selected = 0;
    /// Session FSM state changes (any `state` reassignment to a new value).
    std::uint64_t fsm_transitions = 0;
    /// Behavioral coverage mask (cov subsystem): bit from*8+to set for
    /// every session FSM edge taken.
    std::uint64_t fsm_edge_mask = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Peer {
    netsim::IfaceIndex iface = 0;
    Ipv4Addr address;  ///< far end of the p2p link
    SessionState state = SessionState::kIdle;
    std::uint16_t peer_as = 0;
    Ipv4Addr peer_id;
    std::map<Prefix, AdjRibEntry> adj_rib_in;
    std::set<Prefix> advertised;  ///< prefixes we announced (for withdraws)
    std::set<Prefix> pending;     ///< prefixes to (re)announce at next MRAI
    std::set<Prefix> pending_withdraw;
    netsim::TimerHandle keepalive_timer;
    netsim::TimerHandle hold_timer;
    netsim::TimerHandle retry_timer;
    netsim::TimerHandle mrai_timer;
    std::uint64_t mrai_cause = 0;
  };

  struct LocalRoute {
    std::size_t prepend = 1;
  };

  void on_frame(netsim::IfaceIndex iface, const netsim::Frame& frame);
  void open_session(Peer& peer);
  void handle_open(Peer& peer, const OpenMessage& open);
  void handle_keepalive(Peer& peer);
  void handle_update(Peer& peer, const UpdateMessage& update,
                     std::uint64_t frame_id);
  void handle_notification(Peer& peer, const NotificationMessage& notif);
  void session_established(Peer& peer);
  void reset_session(Peer& peer, bool send_cease);
  /// All session FSM transitions funnel through here so stats count them.
  void set_session_state(Peer& peer, SessionState to);
  void send_notification(Peer& peer, std::uint8_t code, std::uint8_t subcode,
                         std::uint64_t cause);
  void arm_keepalive(Peer& peer);
  void arm_hold(Peer& peer);
  void send_message(Peer& peer, MessageBody body, std::uint64_t cause);

  /// Re-runs best-path selection for `prefix`; queues advertisements and
  /// withdrawals on change.
  void decide(const Prefix& prefix, std::uint64_t cause);
  void schedule_advertisement(Peer& peer, std::uint64_t cause);
  void flush_advertisements(Peer& peer);
  /// The path this router advertises for `prefix` (own AS prepended), or
  /// nullopt if the prefix must not be advertised to `peer`.
  std::optional<AsPath> advertised_path(const Prefix& prefix,
                                        const Peer& peer) const;

  netsim::Network& net_;
  netsim::NodeId node_;
  BgpConfig config_;
  Rng rng_;
  std::vector<Peer> peers_;
  std::map<Prefix, LocalRoute> local_routes_;
  /// Best-path table: peer index (or kLocal) per prefix.
  static constexpr int kLocal = -1;
  std::map<Prefix, int> best_source_;
  std::uint64_t current_cause_ = 0;
  Stats stats_;
  bool started_ = false;
};

}  // namespace nidkit::bgp
