#include "cov/cov.hpp"

#include <algorithm>
#include <sstream>

namespace nidkit::cov {

namespace {

const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kOspf:
      return "ospf";
    case Proto::kRip:
      return "rip";
    case Proto::kBgp:
      return "bgp";
  }
  return "";
}

// FSM state names, by protocol, matching the engines' to_string spellings.
const char* fsm_state_name(Proto p, unsigned s) {
  static const char* const kOspf[kOspfFsmStates] = {
      "Down", "Init", "TwoWay", "ExStart", "Exchange", "Loading", "Full"};
  static const char* const kBgp[kBgpFsmStates] = {"Idle", "OpenSent",
                                                  "OpenConfirm", "Established"};
  if (p == Proto::kOspf && s < kOspfFsmStates) return kOspf[s];
  if (p == Proto::kBgp && s < kBgpFsmStates) return kBgp[s];
  return "";
}

// Wire packet-kind names, 1-based (packet type / command / message type).
const char* packet_kind_name(Proto p, unsigned k) {
  static const char* const kOspf[kOspfPacketKinds] = {
      "Hello", "Dbd", "LsRequest", "LsUpdate", "LsAck"};
  static const char* const kRip[kRipPacketKinds] = {"Request", "Response"};
  static const char* const kBgp[kBgpPacketKinds] = {"Open", "Update",
                                                    "Notification", "Keepalive"};
  if (k == 0) return "";
  if (p == Proto::kOspf && k <= kOspfPacketKinds) return kOspf[k - 1];
  if (p == Proto::kRip && k <= kRipPacketKinds) return kRip[k - 1];
  if (p == Proto::kBgp && k <= kBgpPacketKinds) return kBgp[k - 1];
  return "";
}

unsigned marker_count(Proto p) {
  switch (p) {
    case Proto::kOspf:
      return kOspfMarkers;
    case Proto::kRip:
      return kRipMarkers;
    case Proto::kBgp:
      return kBgpMarkers;
  }
  return 0;
}

const char* marker_name(Proto p, unsigned m) {
  static const char* const kOspf[kOspfMarkers] = {
      "retransmission", "duplicate_lsa", "stale_lsa",
      "dr_role",        "bdr_role",      "drother_role"};
  static const char* const kBgp[kBgpMarkers] = {"session_reset", "loop_reject",
                                                "long_path_reject"};
  static const char* const kRip[kRipMarkers] = {"triggered_update",
                                                "route_expired",
                                                "version_rejected"};
  if (m == 0) return "";
  if (p == Proto::kOspf && m <= kOspfMarkers) return kOspf[m - 1];
  if (p == Proto::kBgp && m <= kBgpMarkers) return kBgp[m - 1];
  if (p == Proto::kRip && m <= kRipMarkers) return kRip[m - 1];
  return "";
}

const char* lsa_event_name(unsigned e) {
  static const char* const kNames[kLsaEvents] = {"originate", "refresh",
                                                 "maxage_flush"};
  return e >= 1 && e <= kLsaEvents ? kNames[e - 1] : "";
}

const char* chaos_class_name(unsigned c) {
  static const char* const kNames[kChaosClasses] = {
      "delay", "jitter", "loss", "duplicate", "reorder", "churn"};
  return c >= 1 && c <= kChaosClasses ? kNames[c - 1] : "";
}

bool valid_proto(unsigned p) {
  return p >= 1 && p <= static_cast<unsigned>(Proto::kBgp);
}

struct ClassRow {
  FeatureClass cls;
  const char* key;  ///< short name in the "classes" JSON object
};
constexpr ClassRow kClassRows[] = {
    {FeatureClass::kFsmEdge, "fsm"},   {FeatureClass::kPacketPair, "pair"},
    {FeatureClass::kPathMarker, "path"}, {FeatureClass::kLsaLifecycle, "lsa"},
    {FeatureClass::kChaos, "chaos"},
};

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

unsigned fsm_state_count(Proto p) {
  switch (p) {
    case Proto::kOspf:
      return kOspfFsmStates;
    case Proto::kRip:
      return kRipFsmStates;
    case Proto::kBgp:
      return kBgpFsmStates;
  }
  return 0;
}

unsigned packet_kind_count(Proto p) {
  switch (p) {
    case Proto::kOspf:
      return kOspfPacketKinds;
    case Proto::kRip:
      return kRipPacketKinds;
    case Proto::kBgp:
      return kBgpPacketKinds;
  }
  return 0;
}

bool declared(FeatureId id) {
  const std::uint32_t payload = id & 0xFFFFFF;
  const unsigned proto = payload >> 16 & 0xFF;
  const unsigned hi = payload >> 8 & 0xFF;
  const unsigned lo = payload & 0xFF;
  switch (feature_class(id)) {
    case FeatureClass::kFsmEdge: {
      if (!valid_proto(proto)) return false;
      const unsigned states = fsm_state_count(static_cast<Proto>(proto));
      return hi < states && lo < states && hi != lo;
    }
    case FeatureClass::kPacketPair: {
      if (!valid_proto(proto)) return false;
      const unsigned kinds = packet_kind_count(static_cast<Proto>(proto));
      return hi >= 1 && hi <= kinds && lo >= 1 && lo <= kinds;
    }
    case FeatureClass::kPathMarker:
      return valid_proto(proto) && hi == 0 && lo >= 1 &&
             lo <= marker_count(static_cast<Proto>(proto));
    case FeatureClass::kLsaLifecycle:
      return proto == 0 && hi == 0 && lo >= 1 && lo <= kLsaEvents;
    case FeatureClass::kChaos:
      return proto == 0 && hi == 0 && lo >= 1 && lo <= kChaosClasses;
  }
  return false;
}

std::string feature_name(FeatureId id) {
  if (!declared(id)) return "";
  const std::uint32_t payload = id & 0xFFFFFF;
  const auto proto = static_cast<Proto>(payload >> 16 & 0xFF);
  const unsigned hi = payload >> 8 & 0xFF;
  const unsigned lo = payload & 0xFF;
  std::string name;
  switch (feature_class(id)) {
    case FeatureClass::kFsmEdge:
      name = "fsm.";
      name += proto_name(proto);
      name += '.';
      name += fsm_state_name(proto, hi);
      name += '>';
      name += fsm_state_name(proto, lo);
      break;
    case FeatureClass::kPacketPair:
      name = "pair.";
      name += proto_name(proto);
      name += '.';
      name += packet_kind_name(proto, hi);
      name += '>';
      name += packet_kind_name(proto, lo);
      break;
    case FeatureClass::kPathMarker:
      name = "path.";
      name += proto_name(proto);
      name += '.';
      name += marker_name(proto, lo);
      break;
    case FeatureClass::kLsaLifecycle:
      name = "lsa.";
      name += lsa_event_name(lo);
      break;
    case FeatureClass::kChaos:
      name = "chaos.";
      name += chaos_class_name(lo);
      break;
  }
  return name;
}

std::uint64_t universe_size(FeatureClass cls) {
  auto edges = [](unsigned states) -> std::uint64_t {
    return states == 0 ? 0 : std::uint64_t{states} * (states - 1);
  };
  auto square = [](unsigned kinds) -> std::uint64_t {
    return std::uint64_t{kinds} * kinds;
  };
  switch (cls) {
    case FeatureClass::kFsmEdge:
      return edges(kOspfFsmStates) + edges(kRipFsmStates) +
             edges(kBgpFsmStates);
    case FeatureClass::kPacketPair:
      return square(kOspfPacketKinds) + square(kRipPacketKinds) +
             square(kBgpPacketKinds);
    case FeatureClass::kPathMarker:
      return kOspfMarkers + kRipMarkers + kBgpMarkers;
    case FeatureClass::kLsaLifecycle:
      return kLsaEvents;
    case FeatureClass::kChaos:
      return kChaosClasses;
  }
  return 0;
}

std::uint64_t universe_size() {
  std::uint64_t total = 0;
  for (const auto& row : kClassRows) total += universe_size(row.cls);
  return total;
}

void CoverageVector::finalize() {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

CoverageMap& CoverageMap::instance() {
  static CoverageMap map;
  return map;
}

void CoverageMap::reset() {
  std::lock_guard lock(mutex_);
  seen_.clear();
  curve_.clear();
  novelty_.clear();
}

std::uint64_t CoverageMap::merge_scenario(const CoverageVector& delta) {
  std::lock_guard lock(mutex_);
  std::uint64_t novel = 0;
  for (const FeatureId id : delta.ids()) {
    const auto it = std::lower_bound(seen_.begin(), seen_.end(), id);
    if (it == seen_.end() || *it != id) {
      seen_.insert(it, id);
      ++novel;
    }
  }
  curve_.push_back(seen_.size());
  novelty_.push_back(novel);
  return novel;
}

std::uint64_t CoverageMap::scenarios() const {
  std::lock_guard lock(mutex_);
  return curve_.size();
}

std::uint64_t CoverageMap::features_seen() const {
  std::lock_guard lock(mutex_);
  return seen_.size();
}

std::uint64_t CoverageMap::class_seen(FeatureClass cls) const {
  std::lock_guard lock(mutex_);
  std::uint64_t count = 0;
  for (const FeatureId id : seen_) count += feature_class(id) == cls ? 1 : 0;
  return count;
}

std::vector<FeatureId> CoverageMap::seen_ids() const {
  std::lock_guard lock(mutex_);
  return seen_;
}

std::vector<std::uint64_t> CoverageMap::curve() const {
  std::lock_guard lock(mutex_);
  return curve_;
}

std::vector<std::uint64_t> CoverageMap::novelty() const {
  std::lock_guard lock(mutex_);
  return novelty_;
}

std::string CoverageMap::cov_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << "\"cov\":{\"scenarios\":" << curve_.size()
     << ",\"features_seen\":" << seen_.size()
     << ",\"universe\":" << universe_size() << ",\"classes\":{";
  bool first = true;
  for (const auto& row : kClassRows) {
    std::uint64_t count = 0;
    for (const FeatureId id : seen_) count += feature_class(id) == row.cls;
    if (!first) os << ',';
    first = false;
    os << '"' << row.key << "\":{\"seen\":" << count
       << ",\"universe\":" << universe_size(row.cls) << '}';
  }
  os << "},\"novelty\":[";
  for (std::size_t i = 0; i < novelty_.size(); ++i) {
    if (i) os << ',';
    os << novelty_[i];
  }
  os << "],\"curve\":[";
  for (std::size_t i = 0; i < curve_.size(); ++i) {
    if (i) os << ',';
    os << curve_[i];
  }
  os << "],\"features\":[";
  // seen_ is sorted by id; feature names are emitted in that stable order.
  for (std::size_t i = 0; i < seen_.size(); ++i) {
    if (i) os << ',';
    os << '"' << feature_name(seen_[i]) << '"';
  }
  os << "]}";
  return os.str();
}

std::string CoverageMap::coverage_json() const {
  std::string out = "{\n\"version\":1,\n";
  out += cov_json();
  out += "\n}\n";
  return out;
}

}  // namespace nidkit::cov
