// Deterministic behavioral coverage subsystem (nidkit::cov).
//
// A scenario run does not just produce mined relations and metrics — it
// *exercises* a set of behaviors: neighbor/session FSM transition edges,
// stimulus→response packet-kind pairs, retransmission and DR-election
// paths, LSA lifecycle events, chaos-event classes. Each such behavior is
// a FeatureId; the set a scenario exercised is its CoverageVector. The
// fan-out layer merges vectors into the global CoverageMap in canonical
// scenario-index order (the same discipline as obs::Registry and
// RelationSet merges), so the accumulated map — including per-scenario
// novelty scores and the saturation curve — is bit-identical across
// --jobs 1/8 and cache cold/warm. Cached entries carry their vector and
// replay it on hits instead of re-simulating.
//
// Cost model mirrors obs: collection is always on — the hooks are plain
// integer ORs at existing stat-bump choke points plus one end-of-run pass,
// nothing per-event — so cache entries never depend on a reporting flag.
// enabled() (one relaxed atomic load) gates only the global map merge and
// report emission; the disabled path stays within the one-relaxed-atomic-
// per-hook budget obs established, bench-gated at ≤2% overhead.
//
// Layering: cov sits beside obs, below the protocol engines. The feature
// universe (state counts, packet-kind counts) is therefore declared here
// as plain constants; the hook-coverage guard test links everything and
// asserts these tables match the real enums, so a new FSM state cannot
// silently fall outside the declared universe.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace nidkit::cov {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Global coverage-reporting switch. Off by default; the CLI flips it on
/// for `nidt coverage` / --coverage-out runs. Collection into per-scenario
/// vectors is unconditional — this only gates the global map merge.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// A behavioral feature: top byte = class, low 24 bits = class-specific
/// payload. Stable across runs and builds — FeatureIds are cached.
using FeatureId = std::uint32_t;

enum class FeatureClass : std::uint8_t {
  kFsmEdge = 1,       ///< proto<<16 | from_state<<8 | to_state
  kPacketPair = 2,    ///< proto<<16 | rcv_kind<<8 | snd_kind
  kPathMarker = 3,    ///< proto<<16 | marker id
  kLsaLifecycle = 4,  ///< lifecycle event id
  kChaos = 5,         ///< chaos-event class id
};

enum class Proto : std::uint8_t { kOspf = 1, kRip = 2, kBgp = 3 };

// ---- Declared feature universe ----
//
// Per-protocol FSM state and packet-kind counts. These mirror (but do not
// include) the protocol engines' enums; hook_guard_test pins them to the
// real definitions enumerator by enumerator.
inline constexpr unsigned kOspfFsmStates = 7;  ///< ospf::NeighborState
inline constexpr unsigned kBgpFsmStates = 4;   ///< bgp::SessionState
inline constexpr unsigned kRipFsmStates = 0;   ///< RIP has no peer FSM
/// Wire packet kinds, 1-based: OSPF packet types 1..5, RIP commands 1..2,
/// BGP message types 1..4.
inline constexpr unsigned kOspfPacketKinds = 5;
inline constexpr unsigned kRipPacketKinds = 2;
inline constexpr unsigned kBgpPacketKinds = 4;

/// Path markers: protocol machinery a scenario drove at least once.
enum class OspfMarker : std::uint8_t {
  kRetransmission = 1,  ///< LSU retransmission fired
  kDuplicateLsa = 2,    ///< duplicate LSA instance received
  kStaleLsa = 3,        ///< older LSA instance received
  kDrRole = 4,          ///< some interface held the DR role
  kBdrRole = 5,         ///< some interface held the Backup role
  kDrOtherRole = 6,     ///< some interface settled as DROther
};
enum class BgpMarker : std::uint8_t {
  kSessionReset = 1,
  kLoopReject = 2,
  kLongPathReject = 3,
};
enum class RipMarker : std::uint8_t {
  kTriggeredUpdate = 1,
  kRouteExpired = 2,
  kVersionRejected = 3,
};
inline constexpr unsigned kOspfMarkers = 6;
inline constexpr unsigned kBgpMarkers = 3;
inline constexpr unsigned kRipMarkers = 3;

/// LSA lifecycle events (OSPF-only class).
enum class LsaEvent : std::uint8_t {
  kOriginate = 1,    ///< a self-origination happened
  kRefresh = 2,      ///< an LSRefreshTime re-origination happened
  kMaxAgeFlush = 3,  ///< a MaxAge instance left a database
};
inline constexpr unsigned kLsaEvents = 3;

/// Chaos-event classes that actually fired (not merely configured —
/// except delay/jitter/churn, which fire by construction when non-zero).
enum class ChaosClass : std::uint8_t {
  kDelay = 1,      ///< non-zero TDelay injected
  kJitter = 2,     ///< non-zero link jitter injected
  kLoss = 3,       ///< at least one frame dropped by loss
  kDuplicate = 4,  ///< at least one frame duplicated
  kReorder = 5,    ///< at least one frame reorder-delayed
  kChurn = 6,      ///< the churn workload ran
};
inline constexpr unsigned kChaosClasses = 6;

// ---- FeatureId constructors ----

constexpr FeatureId make_feature(FeatureClass cls, std::uint32_t payload) {
  return static_cast<std::uint32_t>(cls) << 24 | (payload & 0xFFFFFF);
}
constexpr FeatureId fsm_edge(Proto p, unsigned from, unsigned to) {
  return make_feature(FeatureClass::kFsmEdge,
                      static_cast<std::uint32_t>(p) << 16 | from << 8 | to);
}
constexpr FeatureId packet_pair(Proto p, unsigned rcv, unsigned snd) {
  return make_feature(FeatureClass::kPacketPair,
                      static_cast<std::uint32_t>(p) << 16 | rcv << 8 | snd);
}
constexpr FeatureId path_marker(Proto p, unsigned marker) {
  return make_feature(FeatureClass::kPathMarker,
                      static_cast<std::uint32_t>(p) << 16 | marker);
}
constexpr FeatureId path_marker(OspfMarker m) {
  return path_marker(Proto::kOspf, static_cast<unsigned>(m));
}
constexpr FeatureId path_marker(BgpMarker m) {
  return path_marker(Proto::kBgp, static_cast<unsigned>(m));
}
constexpr FeatureId path_marker(RipMarker m) {
  return path_marker(Proto::kRip, static_cast<unsigned>(m));
}
constexpr FeatureId lsa_lifecycle(LsaEvent event) {
  return make_feature(FeatureClass::kLsaLifecycle,
                      static_cast<std::uint32_t>(event));
}
constexpr FeatureId chaos(ChaosClass cls) {
  return make_feature(FeatureClass::kChaos, static_cast<std::uint32_t>(cls));
}

constexpr FeatureClass feature_class(FeatureId id) {
  return static_cast<FeatureClass>(id >> 24);
}

/// Number of FSM states / packet kinds the universe declares for `p`.
unsigned fsm_state_count(Proto p);
unsigned packet_kind_count(Proto p);

/// True when `id` lies inside the declared universe — a well-formed class
/// with in-range protocol, states, kinds and event ids. Every feature a
/// scenario records must be declared (hook_guard_test enforces it).
bool declared(FeatureId id);

/// Stable human-readable name, e.g. "fsm.ospf.ExStart>Exchange",
/// "pair.bgp.Update>Notification", "path.ospf.retransmission",
/// "lsa.refresh", "chaos.loss". Empty for undeclared ids.
std::string feature_name(FeatureId id);

/// Declared universe sizes (for saturation reporting). FSM edges count
/// from != to only — set_*_state early-returns on self-transitions.
std::uint64_t universe_size(FeatureClass cls);
std::uint64_t universe_size();  ///< total over all classes

/// Canonical per-scenario feature set: sorted unique FeatureIds.
/// Deterministic in the scenario, cached alongside the metrics delta and
/// replayed on cache hits.
class CoverageVector {
 public:
  /// Collects a feature (duplicates welcome; finalize() dedups).
  void add(FeatureId id) { ids_.push_back(id); }

  /// Sorts and dedups — the canonical form every consumer (codec, merge,
  /// equality) expects. Idempotent.
  void finalize();

  void reserve(std::size_t n) { ids_.reserve(n); }
  const std::vector<FeatureId>& ids() const { return ids_; }
  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  friend bool operator==(const CoverageVector&,
                         const CoverageVector&) = default;

 private:
  std::vector<FeatureId> ids_;
};

/// The process-wide accumulated coverage map. Mirrors obs::Registry's
/// determinism contract: merge_scenario MUST be called in canonical
/// scenario-index order from a single thread (the fan-out merge loop), so
/// the seen set, per-scenario novelty scores and the saturation curve are
/// bit-identical for any worker count and cache temperature.
class CoverageMap {
 public:
  static CoverageMap& instance();

  CoverageMap(const CoverageMap&) = delete;
  CoverageMap& operator=(const CoverageMap&) = delete;

  /// Drops all accumulated coverage. The enabled flag is left untouched.
  void reset();

  /// Folds one scenario's vector in and returns its novelty score: the
  /// number of features this scenario contributed that no earlier merge
  /// had seen. Canonical order, single thread — never from workers.
  std::uint64_t merge_scenario(const CoverageVector& delta);

  std::uint64_t scenarios() const;
  std::uint64_t features_seen() const;
  std::uint64_t class_seen(FeatureClass cls) const;
  /// All features seen so far, sorted.
  std::vector<FeatureId> seen_ids() const;
  /// Cumulative unique-feature count after each merge (the saturation
  /// curve: curve()[i] = features seen after scenario i).
  std::vector<std::uint64_t> curve() const;
  /// Per-scenario novelty scores, in merge (= canonical) order.
  std::vector<std::uint64_t> novelty() const;

  /// The deterministic snapshot section — the single line `"cov":{...}`
  /// (no embedded newline, matching the "sim" section convention so CI
  /// can grep '"cov":' | cmp across jobs/cache laps).
  std::string cov_json() const;

  /// The full --coverage-out document. Line-structured JSON:
  ///   {\n"version":1,\n"cov":{...}\n}\n
  /// with the "cov" object on exactly one line.
  std::string coverage_json() const;

 private:
  CoverageMap() = default;

  mutable std::mutex mutex_;
  std::vector<FeatureId> seen_;  ///< sorted unique
  std::vector<std::uint64_t> curve_;
  std::vector<std::uint64_t> novelty_;
};

}  // namespace nidkit::cov
