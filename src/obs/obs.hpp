// Deterministic metrics + span-profiling subsystem (nidkit::obs).
//
// Two time domains, kept strictly apart:
//
//  * simulated time — counters and fixed-bucket histograms derived from
//    the deterministic event loop (hellos sent, neighbor-FSM transitions,
//    LSA floods/retransmissions, frames delivered/dropped/delayed by
//    chaos...). Every scenario run produces a canonical ScenarioMetrics
//    delta; the harness merges deltas into the global registry in
//    canonical scenario-index order — exactly like RelationSet::merge —
//    so a snapshot's "sim" section is bit-identical across --jobs 1/4/8
//    and cache warm/cold (cached entries carry their scenario's delta and
//    replay it on a hit instead of re-simulating).
//
//  * wall clock — phase spans (simulate / mine / merge / cache-lookup /
//    cache-store / queue-wait) recorded per worker thread and exported as
//    Chrome trace-event JSON (loads in ui.perfetto.dev, one lane per
//    worker), plus live process counters bumped on the event hot path.
//    Everything wall-clock lives in the snapshot's "wall" section, which
//    determinism comparisons strip.
//
// Cost model: every recording operation is behind enabled() — one relaxed
// atomic bool load. Disabled (the default), the event hot path pays a
// single predictable branch: no stores, no locks, no allocation (gated by
// bench_simcore). Enabled, hot counters land in per-thread slots (relaxed
// atomics, never shared between threads), and spans — a handful per
// scenario, never per event — take a mutex off the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nidkit::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Global observability switch. Off by default; the CLI flips it on for
/// --metrics-out / --trace-out runs.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Hot-path process counters (wall domain: they reflect what *this
/// process* executed, so a warm cache legitimately shows fewer events
/// than a cold one). Bumped from the simulator/network inner loops, so
/// the disabled cost must stay at one branch.
enum class Hot : std::size_t {
  kEventsExecuted = 0,  ///< simulator events run (all scenarios, live)
  kTimersScheduled,     ///< events pushed into simulator heaps
  kFramesDelivered,     ///< network deliveries executed
  kFramesDropped,       ///< frames dropped by loss or down segments
};
inline constexpr std::size_t kHotCount = 4;

namespace detail {
void count_slow(Hot which, std::uint64_t n);
}  // namespace detail

/// Adds `n` to a hot counter. Disabled: one relaxed load + branch.
/// Enabled: a relaxed add on this thread's private slot.
inline void count(Hot which, std::uint64_t n = 1) {
  if (!enabled()) return;
  detail::count_slow(which, n);
}

/// Microseconds since the process's observability epoch (first use).
/// Monotonic; shared by every span so trace lanes line up.
std::int64_t now_us();

/// Canonical per-scenario simulated-time metric delta: (name, value)
/// pairs kept sorted by name with no duplicates. Deterministic in the
/// scenario — the same scenario always produces the same delta — so it is
/// cached alongside mined relations and replayed on cache hits.
class ScenarioMetrics {
 public:
  /// Inserts or overwrites `name`. Keeps entries sorted.
  void set(std::string_view name, std::uint64_t value);

  /// Codec fast path: appends an entry known to sort strictly after every
  /// existing one (the serialized form is written in sorted order), with
  /// no search or shift. Degrades to set() when the input is not actually
  /// sorted, preserving the invariant either way.
  void append_sorted(std::string&& name, std::uint64_t value);

  /// Pre-sizes the entry table (decode knows the count up front).
  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Value of `name`, or 0 when absent.
  std::uint64_t get(std::string_view name) const;

  const std::vector<std::pair<std::string, std::uint64_t>>& entries() const {
    return entries_;
  }
  bool empty() const { return entries_.empty(); }

  friend bool operator==(const ScenarioMetrics&,
                         const ScenarioMetrics&) = default;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> entries_;
};

/// One completed phase span, as exported to the trace file.
struct SpanEvent {
  std::string name;    ///< phase: simulate, mine, merge, cache-lookup...
  std::string label;   ///< e.g. "frr/mesh-5/s2"
  std::uint32_t tid = 0;  ///< dense per-thread lane id
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
};

/// Read-only view of a fixed-bucket histogram. `bounds[i]` is bucket i's
/// inclusive upper bound; `counts` has one extra overflow bucket.
struct HistogramSnapshot {
  std::string name;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

/// The process-wide registry of counters, histograms and spans.
class Registry {
 public:
  static Registry& instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Drops all recorded data (counters, histograms, spans) and rebases
  /// per-thread hot slots. The enabled flag is left untouched.
  void reset();

  // ---- simulated-time domain (deterministic) ----

  /// Folds one scenario's delta into the sim-domain counters and
  /// histograms. MUST be called in canonical scenario-index order from a
  /// single thread — the harness's merge loop — never from workers.
  void merge_scenario(const ScenarioMetrics& delta);

  /// Current value of a sim-domain counter (0 when never merged).
  std::uint64_t sim_counter(std::string_view name) const;

  // ---- wall-clock domain ----

  /// Adds `value` to a wall-domain histogram (created on first use with
  /// fixed decade buckets).
  void observe_wall(std::string_view histogram, std::uint64_t value);

  /// Records a completed span [start_us, end_us) on the calling thread's
  /// lane and feeds the matching "wall.<name>_us" histogram.
  void record_span(std::string_view name, std::string label,
                   std::int64_t start_us, std::int64_t end_us);

  std::vector<SpanEvent> spans() const;
  std::size_t span_count() const;
  std::uint64_t hot_counter(Hot which) const;

  // ---- snapshots ----

  /// The full metrics snapshot. Line-structured JSON: the "sim" object is
  /// emitted on exactly one line so determinism checks can strip the
  /// wall-clock section with a line-oriented tool (grep '"sim":').
  std::string metrics_json() const;

  /// Just the deterministic section — the line `"sim":{...}`.
  std::string sim_json() const;

  /// Headline numbers folded into --stats output.
  /// {"sim_events":...,"sim_frames_delivered":...,
  ///  "fsm_transitions":...,"spans":...}
  std::string headline_json() const;

  /// Chrome trace-event JSON (Perfetto-loadable): one "X" event per span,
  /// one lane per recording thread, with thread_name metadata.
  void write_trace_json(std::ostream& os) const;

  // ---- hot-counter plumbing (used by the per-thread blocks) ----
  struct HotBlock {
    std::array<std::atomic<std::uint64_t>, kHotCount> slots{};
  };
  void attach_hot_block(HotBlock* block);
  void detach_hot_block(HotBlock* block);

 private:
  Registry();

  struct Histogram {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    void observe(std::uint64_t value);
  };

  Histogram& sim_histogram(std::string_view name);
  Histogram& wall_histogram(std::string_view name);
  void append_section(std::string& out, const char* domain,
                      bool wall_clock) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> sim_counters_;
  std::map<std::string, Histogram, std::less<>> sim_histograms_;
  std::map<std::string, Histogram, std::less<>> wall_histograms_;
  std::vector<SpanEvent> spans_;
  std::vector<HotBlock*> hot_blocks_;
  std::array<std::uint64_t, kHotCount> hot_retired_{};
  std::atomic<std::uint32_t> next_tid_{0};
};

/// RAII phase span. Construction snapshots the clock when the registry is
/// enabled; destruction records the span. Cheap no-op when disabled.
class Span {
 public:
  explicit Span(const char* name, std::string label = {}) {
    if (!enabled()) return;
    active_ = true;
    name_ = name;
    label_ = std::move(label);
    start_us_ = now_us();
  }
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early (idempotent).
  void finish() {
    if (!active_) return;
    active_ = false;
    Registry::instance().record_span(name_, std::move(label_), start_us_,
                                     now_us());
  }

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  std::string label_;
  std::int64_t start_us_ = 0;
};

}  // namespace nidkit::obs
