#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace nidkit::obs {

namespace {

/// Fixed decade buckets shared by every histogram: 1, 10, ... 1e9, plus
/// the implicit overflow bucket. Fixed (never derived from data) so two
/// runs can never disagree on bucket layout.
const std::vector<std::uint64_t>& decade_bounds() {
  static const std::vector<std::uint64_t> bounds = {
      1,         10,         100,         1'000,         10'000,
      100'000,   1'000'000,  10'000'000,  100'000'000,   1'000'000'000};
  return bounds;
}

/// Minimal JSON string escaping (labels are plain ASCII identifiers, but
/// never trust an input). Local on purpose: obs sits below detect in the
/// layer graph and cannot borrow its json helpers.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Dense trace lane id for the calling thread, assigned on first use.
std::uint32_t lane_id(std::atomic<std::uint32_t>& next) {
  thread_local std::uint32_t tid = ~std::uint32_t{0};
  if (tid == ~std::uint32_t{0}) tid = next.fetch_add(1);
  return tid;
}

/// Per-thread hot-counter block, registered with the registry for its
/// lifetime; on thread exit the block's totals fold into the retired
/// base so no samples are lost.
struct ThreadHot {
  Registry::HotBlock block;
  ThreadHot() { Registry::instance().attach_hot_block(&block); }
  ~ThreadHot() { Registry::instance().detach_hot_block(&block); }
};

Registry::HotBlock& hot_block() {
  thread_local ThreadHot t;
  return t.block;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {
void count_slow(Hot which, std::uint64_t n) {
  hot_block().slots[static_cast<std::size_t>(which)].fetch_add(
      n, std::memory_order_relaxed);
}
}  // namespace detail

std::int64_t now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

// ---- ScenarioMetrics ----

void ScenarioMetrics::set(std::string_view name, std::uint64_t value) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it != entries_.end() && it->first == name) {
    it->second = value;
    return;
  }
  entries_.emplace(it, std::string(name), value);
}

void ScenarioMetrics::append_sorted(std::string&& name, std::uint64_t value) {
  if (entries_.empty() || entries_.back().first < name) {
    entries_.emplace_back(std::move(name), value);
    return;
  }
  set(name, value);
}

std::uint64_t ScenarioMetrics::get(std::string_view name) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  return (it != entries_.end() && it->first == name) ? it->second : 0;
}

// ---- Registry ----

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Registry() = default;

void Registry::Histogram::observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  ++counts[static_cast<std::size_t>(it - bounds.begin())];
  ++count;
  sum += value;
}

Registry::Histogram& Registry::sim_histogram(std::string_view name) {
  auto it = sim_histograms_.find(name);
  if (it == sim_histograms_.end()) {
    Histogram h;
    h.bounds = decade_bounds();
    h.counts.assign(h.bounds.size() + 1, 0);
    it = sim_histograms_.emplace(std::string(name), std::move(h)).first;
  }
  return it->second;
}

Registry::Histogram& Registry::wall_histogram(std::string_view name) {
  auto it = wall_histograms_.find(name);
  if (it == wall_histograms_.end()) {
    Histogram h;
    h.bounds = decade_bounds();
    h.counts.assign(h.bounds.size() + 1, 0);
    it = wall_histograms_.emplace(std::string(name), std::move(h)).first;
  }
  return it->second;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  sim_counters_.clear();
  sim_histograms_.clear();
  wall_histograms_.clear();
  spans_.clear();
  hot_retired_.fill(0);
  for (HotBlock* block : hot_blocks_)
    for (auto& slot : block->slots) slot.store(0, std::memory_order_relaxed);
}

void Registry::merge_scenario(const ScenarioMetrics& delta) {
  std::lock_guard lock(mutex_);
  for (const auto& [name, value] : delta.entries()) {
    // Per-scenario observations feed histograms; everything else is a
    // plain additive counter. Both are order-independent, but the caller
    // still merges in canonical index order so the rule never has to be
    // relitigated when a non-commutative metric appears.
    if (name == "scenario.convergence_time_us") {
      sim_histogram("sim.convergence_time_ms").observe(value / 1000);
      continue;
    }
    sim_counters_[name] += value;
    if (name == "sim.events_executed")
      sim_histogram("sim.events_per_scenario").observe(value);
    else if (name == "sim.frames_delivered")
      sim_histogram("sim.frames_per_scenario").observe(value);
  }
}

std::uint64_t Registry::sim_counter(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = sim_counters_.find(name);
  return it == sim_counters_.end() ? 0 : it->second;
}

void Registry::observe_wall(std::string_view histogram, std::uint64_t value) {
  std::lock_guard lock(mutex_);
  wall_histogram(histogram).observe(value);
}

void Registry::record_span(std::string_view name, std::string label,
                           std::int64_t start_us, std::int64_t end_us) {
  const std::uint32_t tid = lane_id(next_tid_);
  const std::int64_t dur = end_us > start_us ? end_us - start_us : 0;
  std::lock_guard lock(mutex_);
  spans_.push_back(SpanEvent{std::string(name), std::move(label), tid,
                             start_us, dur});
  wall_histogram("wall." + std::string(name) + "_us")
      .observe(static_cast<std::uint64_t>(dur));
}

std::vector<SpanEvent> Registry::spans() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

std::size_t Registry::span_count() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

std::uint64_t Registry::hot_counter(Hot which) const {
  const auto i = static_cast<std::size_t>(which);
  std::lock_guard lock(mutex_);
  std::uint64_t total = hot_retired_[i];
  for (const HotBlock* block : hot_blocks_)
    total += block->slots[i].load(std::memory_order_relaxed);
  return total;
}

void Registry::attach_hot_block(HotBlock* block) {
  std::lock_guard lock(mutex_);
  hot_blocks_.push_back(block);
}

void Registry::detach_hot_block(HotBlock* block) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < kHotCount; ++i)
    hot_retired_[i] += block->slots[i].load(std::memory_order_relaxed);
  hot_blocks_.erase(
      std::remove(hot_blocks_.begin(), hot_blocks_.end(), block),
      hot_blocks_.end());
}

namespace {

void append_counters(
    std::string& out,
    const std::map<std::string, std::uint64_t, std::less<>>& counters) {
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += '}';
}

}  // namespace

void Registry::append_section(std::string& out, const char* domain,
                              bool wall_clock) const {
  // Caller holds no lock; this takes it per section.
  std::lock_guard lock(mutex_);
  out += '"';
  out += domain;
  out += "\":{";
  if (!wall_clock) {
    append_counters(out, sim_counters_);
  } else {
    std::map<std::string, std::uint64_t, std::less<>> process;
    const auto sum_slot = [&](std::size_t i) {
      std::uint64_t total = hot_retired_[i];
      for (const HotBlock* b : hot_blocks_)
        total += b->slots[i].load(std::memory_order_relaxed);
      return total;
    };
    process["process.events_executed"] =
        sum_slot(static_cast<std::size_t>(Hot::kEventsExecuted));
    process["process.timers_scheduled"] =
        sum_slot(static_cast<std::size_t>(Hot::kTimersScheduled));
    process["process.frames_delivered"] =
        sum_slot(static_cast<std::size_t>(Hot::kFramesDelivered));
    process["process.frames_dropped"] =
        sum_slot(static_cast<std::size_t>(Hot::kFramesDropped));
    append_counters(out, process);
  }
  out += ",\"histograms\":{";
  const auto& histograms = wall_clock ? wall_histograms_ : sim_histograms_;
  bool first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "],\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += '}';
  }
  out += "}";
  if (wall_clock) {
    out += ",\"spans\":";
    out += std::to_string(spans_.size());
  }
  out += '}';
}

std::string Registry::sim_json() const {
  std::string out;
  append_section(out, "sim", /*wall_clock=*/false);
  return out;
}

std::string Registry::metrics_json() const {
  // Line-structured on purpose: "sim" occupies exactly one line so
  // byte-comparisons across --jobs / cache temperature can strip the
  // wall-clock line with grep (see the metrics-determinism CI job).
  std::string out = "{\n\"version\":1,\n";
  append_section(out, "sim", /*wall_clock=*/false);
  out += ",\n";
  append_section(out, "wall", /*wall_clock=*/true);
  out += "\n}\n";
  return out;
}

std::string Registry::headline_json() const {
  const std::uint64_t fsm = sim_counter("ospf.fsm_transitions") +
                            sim_counter("bgp.fsm_transitions");
  std::string out = "{\"sim_events\":";
  out += std::to_string(sim_counter("sim.events_executed"));
  out += ",\"sim_frames_delivered\":";
  out += std::to_string(sim_counter("sim.frames_delivered"));
  out += ",\"fsm_transitions\":";
  out += std::to_string(fsm);
  out += ",\"spans\":";
  out += std::to_string(span_count());
  out += '}';
  return out;
}

void Registry::write_trace_json(std::ostream& os) const {
  std::vector<SpanEvent> events = spans();
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // parents before children
            });
  std::uint32_t max_tid = 0;
  for (const auto& e : events) max_tid = std::max(max_tid, e.tid);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"nidt\"}}";
  if (!events.empty()) {
    for (std::uint32_t tid = 0; tid <= max_tid; ++tid) {
      os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker-" << tid
         << "\"}}";
    }
  }
  for (const auto& e : events) {
    os << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
       << ",\"cat\":\"phase\",\"name\":\"" << json_escape(e.name) << "\"";
    if (!e.label.empty())
      os << ",\"args\":{\"label\":\"" << json_escape(e.label) << "\"}";
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace nidkit::obs
