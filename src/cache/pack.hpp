// Pack files + manifest: the memory-mapped warm path of the result cache.
//
// Loose `<2hex>/<key>.nidc` entries are perfect for writes (atomic
// temp+rename, no coordination) but poor for warm reads: every lookup
// pays a file open, a full read and a heap decode, and maintenance scans
// 256 shard directories. `nidt cache compact` consolidates loose entries
// into append-only *pack segments* (`packs/pack-<serial>.nidp`, each
// entry's bytes identical to its loose file, key-echo framing included)
// plus a sorted *manifest* (`packs/manifest.nidm`: ScenarioKey → pack,
// offset, length, hits, mtime) written temp+rename. Readers mmap each
// pack once per process and decode entries straight out of the mapping.
//
// The manifest is strictly an accelerator, never an authority:
//
//   * loose files remain the write path — new entries land beside the
//     packs and win lookups until the next compact folds them in;
//   * every packed entry still carries its full framing and its manifest
//     record a content checksum, so a truncated pack, a bit-flipped
//     entry or a manifest record pointing past EOF decodes as a miss and
//     the lookup falls back to the loose path;
//   * a missing, version-skewed or corrupt manifest simply fails to
//     open, degrading the store to today's loose-only behaviour;
//   * compaction deletes the loose originals (and their hit sidecars)
//     only after the new manifest is durably renamed into place — a
//     crash in between leaves harmless duplicates.
//
// Hit counting: sidecar counters of packed entries are folded into the
// manifest at compact time; live hits on packed entries append fixed
// 16-byte key records to `packs/hits.nidl` through one O_APPEND
// descriptor kept open per process (appends never interleave), and the
// next compact folds the log into the manifest and truncates it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/key.hpp"

namespace nidkit::cache {

inline constexpr std::uint32_t kManifestMagic = 0x4E49444D;  // "NIDM"
inline constexpr const char* kPacksDirName = "packs";
inline constexpr const char* kManifestName = "manifest.nidm";
inline constexpr const char* kHitLogName = "hits.nidl";
inline constexpr const char* kPackExtension = ".nidp";

/// One manifest record: where a packed entry's bytes live.
struct PackedRecord {
  ScenarioKey key;
  PayloadKind kind = PayloadKind::kMinedRelations;
  std::uint32_t pack = 0;       ///< index into the manifest's pack table
  std::uint64_t offset = 0;     ///< byte offset inside the pack segment
  std::uint64_t length = 0;     ///< encoded entry length
  std::uint64_t hits = 0;       ///< lifetime hits folded in at compact time
  std::int64_t mtime_s = 0;     ///< original entry mtime, epoch seconds
  /// pack_checksum() of the entry's bytes, computed at compact time and
  /// verified before every mmap decode. The entry framing (magic, version,
  /// key echo) catches structural damage, but a bit flip inside the
  /// payload values would decode silently as wrong data — the checksum is
  /// what turns that into a miss.
  std::uint64_t checksum = 0;
};

/// Fast content checksum over an entry's encoded bytes: 8-byte lanes
/// folded with multiply-xor. Every step is bijective in its input word,
/// so any single-bit flip — lane or tail — changes the digest; this is a
/// corruption detector, not a cryptographic hash.
std::uint64_t pack_checksum(std::span<const std::uint8_t> bytes);

/// Read-only memory-mapped view over a cache directory's manifest and
/// pack segments. open() returns nullopt when there is no usable
/// manifest (absent, foreign, version-skewed, truncated, trailing
/// garbage) — the store then behaves exactly as if compaction never ran.
/// A pack segment that is missing or shorter than a record claims yields
/// an empty span for that record only; other entries stay servable.
class PackSet {
 public:
  static std::optional<PackSet> open(const std::string& dir);

  PackSet(PackSet&&) noexcept;
  PackSet& operator=(PackSet&&) noexcept;
  PackSet(const PackSet&) = delete;
  PackSet& operator=(const PackSet&) = delete;
  ~PackSet();

  /// Binary search over the sorted records. nullptr on absence.
  const PackedRecord* find(const ScenarioKey& key) const;

  /// The record's bytes inside its mapped pack; empty when the pack is
  /// missing or too short (truncation ⇒ per-entry miss, never a crash).
  std::span<const std::uint8_t> bytes_of(const PackedRecord& rec) const;

  const std::vector<PackedRecord>& records() const { return records_; }

  /// The manifest's pack table (segment file names and their recorded
  /// sizes), exposed for compaction merges.
  const std::vector<std::string>& pack_names() const { return pack_names_; }
  const std::vector<std::uint64_t>& pack_sizes() const { return pack_sizes_; }

  /// Records a hit on `key`. Hits buffer in memory and are appended to
  /// the hit log in batches (one O_APPEND write per kHitFlushBytes, plus
  /// a final flush at destruction) through a per-PackSet descriptor
  /// opened on first flush. Failures are swallowed like every other
  /// cache I/O (the count is telemetry, not an answer); a crash loses at
  /// most one buffer of hit events.
  void note_hit(const ScenarioKey& key);

  /// Forces buffered hits out to the log (also runs at destruction).
  void flush_hits();

  /// Size and mtime of the manifest this set was opened from, used to
  /// detect a concurrent compact and reopen.
  std::uint64_t manifest_size() const { return manifest_size_; }
  std::int64_t manifest_mtime_ns() const { return manifest_mtime_ns_; }

 private:
  PackSet() = default;

  struct Mapping {
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
    bool mmapped = false;
    std::vector<std::uint8_t> fallback;  ///< non-POSIX read-into-memory
  };

  std::string dir_;
  std::vector<PackedRecord> records_;   ///< sorted by key
  std::vector<std::string> pack_names_; ///< manifest pack table
  std::vector<std::uint64_t> pack_sizes_;
  std::vector<Mapping> packs_;          ///< parallel to the pack table
  std::uint64_t manifest_size_ = 0;
  std::int64_t manifest_mtime_ns_ = 0;
  /// Buffered hit records awaiting a flush (16 bytes per hit).
  static constexpr std::size_t kHitFlushBytes = 4096;
  std::vector<std::uint8_t> hit_buffer_;
  int hit_fd_ = -1;  ///< lazily opened O_APPEND fd for the hit log
};

/// Per-key record counts of the live hit log (empty when absent).
std::map<ScenarioKey, std::uint64_t> read_hit_log(const std::string& dir);

/// True when `dir` has a manifest file (cheap existence probe; the
/// manifest may still fail to parse).
bool has_manifest(const std::string& dir);

struct CompactResult {
  std::size_t packed = 0;    ///< loose entries consolidated this pass
  std::size_t carried = 0;   ///< previously packed entries re-indexed
  std::size_t skipped = 0;   ///< loose files that failed validation
  /// Loose files with intact framing but a different entry format
  /// version (counted separately from corruption so `cache compact` can
  /// report version skew instead of silently leaving them loose).
  std::size_t skipped_version = 0;
  std::size_t segments = 0;  ///< pack segments referenced afterwards
  std::size_t entries = 0;   ///< manifest records afterwards
  std::uint64_t bytes = 0;   ///< packed payload bytes afterwards
};

/// Consolidates every valid loose entry into a new pack segment, merges
/// with the existing manifest (folding sidecar counters and the hit log
/// into the records' hit counts), renames the new manifest into place,
/// then removes the packed loose files, their sidecars, the hit log and
/// any pack segment no record references anymore. Safe to run while
/// concurrent readers/writers use the directory. Returns nullopt only
/// when the pack directory cannot be created or written.
std::optional<CompactResult> compact(const std::string& dir);

/// Drops the manifest, every pack segment and the hit log (cache clear,
/// or prune deciding to invalidate). Returns the number of manifest
/// records that disappeared with them (0 when no manifest parsed).
std::size_t remove_packs(const std::string& dir);

/// Rewrites the packs keeping only `keep` (sorted by key): survivors are
/// copied into one fresh segment, a new manifest replaces the old one,
/// and unreferenced segments plus the hit log are removed. An empty
/// `keep` degenerates to remove_packs(). Used by prune.
bool repack(const std::string& dir, const std::vector<PackedRecord>& keep,
            const PackSet& source);

}  // namespace nidkit::cache
