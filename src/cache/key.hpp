// Content-addressed scenario keys.
//
// A ScenarioKey is a 128-bit fingerprint over every input that can change
// what a scenario run produces: the full harness::Scenario (topology,
// protocol, behaviour profiles, delays, loss, seed, churn schedule, state
// probing — everything except presentation-only knobs like keep_bytes),
// the mining::MinerConfig it will be mined with, the key-scheme id, the
// payload kind, and a format-version constant that is bumped whenever the
// cached encoding or the key derivation itself changes. Two scenarios with
// equal keys are guaranteed to produce bit-identical cached payloads;
// changing any simulation-affecting knob changes the key, so stale results
// can never be served for a new configuration.
//
// The coverage contract (mirroring the copy-through guard in
// experiment.cpp): every field added to Scenario, MinerConfig or one of
// the behaviour profiles must either be appended to the fingerprint in
// key.cpp or documented there as key-irrelevant. Static size guards on all
// hashed structs trip the build when one of them grows, so a new knob
// cannot silently be left out of the hash and cause stale cache hits.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "harness/scenario.hpp"
#include "mining/miner.hpp"
#include "util/fingerprint.hpp"

namespace nidkit::cache {

/// Bump on any change to the key derivation or the on-disk entry
/// encoding. Old entries then simply miss (different key → different
/// file name); no migration logic is ever needed.
inline constexpr std::uint32_t kCacheFormatVersion = 3;

/// What the cached entry holds. Folded into the key so the two payload
/// shapes mined from one scenario (full relation set vs. sweep accuracy
/// counters) address distinct entries.
enum class PayloadKind : std::uint8_t {
  kMinedRelations = 1,  ///< RelationSet mined under the key scheme
  kSweepStats = 2,      ///< tdelay_sweep per-scenario accuracy counters
};

struct ScenarioKey {
  util::Digest128 digest;

  /// 32 lowercase hex chars — the on-disk file stem.
  std::string hex() const { return digest.hex(); }
  /// First two hex chars — the shard directory name.
  std::string prefix() const { return hex().substr(0, 2); }

  friend auto operator<=>(const ScenarioKey&, const ScenarioKey&) = default;
};

/// Derives the key for (scenario, miner, scheme, payload kind).
/// `scheme_id` is the KeyScheme name — schemes are identified by name, so
/// two schemes with equal names must label packets identically.
ScenarioKey scenario_key(const harness::Scenario& scenario,
                         const mining::MinerConfig& miner,
                         std::string_view scheme_id, PayloadKind kind);

// Expected sizes of every hashed struct on the guard platform. key.cpp
// static-asserts these against sizeof(...) so a newly added field breaks
// the build until the fingerprint (and these constants) are updated; the
// coverage test re-checks them at runtime so the contract is visible in
// the test suite too.
#if defined(__GLIBCXX__) && defined(__x86_64__)
inline constexpr std::size_t kHashedScenarioSize = 408;
inline constexpr std::size_t kHashedMinerConfigSize = 24;
inline constexpr std::size_t kHashedOspfProfileSize = 136;
inline constexpr std::size_t kHashedRipProfileSize = 88;
inline constexpr std::size_t kHashedBgpProfileSize = 72;
inline constexpr std::size_t kHashedTopoSpecSize = 16;
#endif

}  // namespace nidkit::cache
