#include "cache/pack.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <system_error>
#include <utility>

#include "cache/store.hpp"
#include "util/bytes.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define NIDKIT_CACHE_HAVE_MMAP 1
#endif

namespace nidkit::cache {

namespace fs = std::filesystem;

namespace {

constexpr const char* kEntryExtension = ".nidc";
constexpr const char* kHitsExtension = ".hits";
constexpr std::size_t kKeyBytes = 16;

fs::path packs_path(const std::string& dir) {
  return fs::path(dir) / kPacksDirName;
}

fs::path manifest_path(const std::string& dir) {
  return packs_path(dir) / kManifestName;
}

fs::path hit_log_path(const std::string& dir) {
  return packs_path(dir) / kHitLogName;
}

void write_u64(ByteWriter& out, std::uint64_t v) {
  out.u32(static_cast<std::uint32_t>(v >> 32));
  out.u32(static_cast<std::uint32_t>(v));
}

std::uint64_t read_u64(ByteReader& in) {
  const std::uint64_t hi = in.u32();
  return (hi << 32) | in.u32();
}

std::optional<std::vector<std::uint8_t>> read_file(const fs::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                                  std::istreambuf_iterator<char>());
  if (file.bad()) return std::nullopt;
  return bytes;
}

/// Best-effort durability: flush a freshly written file to stable storage
/// before a manifest rename makes it load-bearing.
void sync_file(const fs::path& path) {
#if defined(NIDKIT_CACHE_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// Unique-per-writer temp path in `parent`, same discipline as the loose
/// entry writer: the final rename stays within one directory, so it is
/// atomic and concurrent compacts cannot tear each other's files.
fs::path temp_path(const fs::path& parent, const std::string& stem) {
  static std::atomic<std::uint64_t> temp_serial{0};
  std::uint64_t writer_id = temp_serial.fetch_add(1);
#if defined(NIDKIT_CACHE_HAVE_MMAP)
  writer_id |= static_cast<std::uint64_t>(::getpid()) << 32;
#endif
  return parent / (stem + "." + std::to_string(writer_id) + ".tmp");
}

bool write_file_atomic(const fs::path& target,
                       std::span<const std::uint8_t> bytes) {
  const fs::path temp = temp_path(target.parent_path(), target.stem().string());
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file) {
      file.close();
      std::error_code ec;
      fs::remove(temp, ec);
      return false;
    }
  }
  sync_file(temp);
  std::error_code ec;
  fs::rename(temp, target, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

std::int64_t now_epoch_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::int64_t mtime_epoch_seconds(const fs::path& path) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return now_epoch_seconds();
  // Via the file clock's own "now" rather than clock_cast, which older
  // standard libraries lack.
  const auto age = fs::file_time_type::clock::now() - mtime;
  return now_epoch_seconds() -
         std::chrono::duration_cast<std::chrono::seconds>(age).count();
}

std::optional<ScenarioKey> key_from_stem(const std::string& stem) {
  if (stem.size() != 2 * kKeyBytes) return std::nullopt;
  ScenarioKey key;
  for (std::size_t i = 0; i < kKeyBytes; ++i) {
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = nibble(stem[2 * i]);
    const int lo = nibble(stem[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    key.digest.bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return key;
}

/// All loose entry files under `dir`, skipping the packs directory.
std::vector<fs::path> loose_entry_files(const std::string& dir) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code sub;
    if (!it->is_directory(sub) || it->path().filename() == kPacksDirName)
      continue;
    for (fs::directory_iterator shard(it->path(), sub), send;
         !sub && shard != send; shard.increment(sub)) {
      if (shard->is_regular_file(sub) &&
          shard->path().extension() == kEntryExtension)
        out.push_back(shard->path());
    }
  }
  return out;
}

/// The parsed manifest, before any pack is mapped.
struct Manifest {
  std::vector<std::string> pack_names;
  std::vector<std::uint64_t> pack_sizes;
  std::vector<PackedRecord> records;  ///< strictly increasing by key
};

std::vector<std::uint8_t> encode_manifest(const Manifest& m) {
  ByteWriter out(64 + m.records.size() * 64);
  out.u32(kManifestMagic);
  out.u32(kCacheFormatVersion);
  out.u32(static_cast<std::uint32_t>(m.pack_names.size()));
  for (std::size_t i = 0; i < m.pack_names.size(); ++i) {
    const auto& name = m.pack_names[i];
    out.u16(static_cast<std::uint16_t>(name.size()));
    out.bytes(std::span(reinterpret_cast<const std::uint8_t*>(name.data()),
                        name.size()));
    write_u64(out, m.pack_sizes[i]);
  }
  out.u32(static_cast<std::uint32_t>(m.records.size()));
  for (const auto& rec : m.records) {
    out.bytes(rec.key.digest.bytes);
    out.u8(static_cast<std::uint8_t>(rec.kind));
    out.u32(rec.pack);
    write_u64(out, rec.offset);
    write_u64(out, rec.length);
    write_u64(out, rec.hits);
    write_u64(out, static_cast<std::uint64_t>(rec.mtime_s));
    write_u64(out, rec.checksum);
  }
  return out.take();
}

/// Strict parse: wrong magic/version, truncation, trailing garbage, an
/// out-of-table pack index, an unknown payload kind or keys out of order
/// all reject the whole manifest — the caller then degrades to the loose
/// path, which can serve stale-but-correct answers, never wrong ones.
std::optional<Manifest> decode_manifest(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  if (in.u32() != kManifestMagic) return std::nullopt;
  if (in.u32() != kCacheFormatVersion) return std::nullopt;
  Manifest m;
  const std::uint32_t pack_count = in.u32();
  if (!in.ok()) return std::nullopt;
  for (std::uint32_t i = 0; i < pack_count; ++i) {
    const std::uint16_t len = in.u16();
    const auto name = in.bytes(len);
    const std::uint64_t size = read_u64(in);
    if (!in.ok() || name.empty()) return std::nullopt;
    m.pack_names.emplace_back(reinterpret_cast<const char*>(name.data()),
                              name.size());
    m.pack_sizes.push_back(size);
  }
  const std::uint32_t record_count = in.u32();
  if (!in.ok()) return std::nullopt;
  m.records.reserve(record_count);
  for (std::uint32_t i = 0; i < record_count; ++i) {
    PackedRecord rec;
    const auto key = in.bytes(kKeyBytes);
    const std::uint8_t kind = in.u8();
    rec.pack = in.u32();
    rec.offset = read_u64(in);
    rec.length = read_u64(in);
    rec.hits = read_u64(in);
    rec.mtime_s = static_cast<std::int64_t>(read_u64(in));
    rec.checksum = read_u64(in);
    if (!in.ok()) return std::nullopt;
    std::copy(key.begin(), key.end(), rec.key.digest.bytes.begin());
    if (kind != static_cast<std::uint8_t>(PayloadKind::kMinedRelations) &&
        kind != static_cast<std::uint8_t>(PayloadKind::kSweepStats))
      return std::nullopt;
    rec.kind = static_cast<PayloadKind>(kind);
    if (rec.pack >= m.pack_names.size()) return std::nullopt;
    if (!m.records.empty() && !(m.records.back().key < rec.key))
      return std::nullopt;
    m.records.push_back(rec);
  }
  if (in.remaining() != 0) return std::nullopt;
  return m;
}

std::optional<Manifest> load_manifest(const std::string& dir) {
  const auto bytes = read_file(manifest_path(dir));
  if (!bytes) return std::nullopt;
  return decode_manifest(*bytes);
}

/// Serial of `pack-<8hex>.nidp`, or nullopt for any other file name.
std::optional<std::uint64_t> pack_serial(const std::string& name) {
  constexpr std::string_view prefix = "pack-";
  constexpr std::string_view suffix = kPackExtension;
  if (name.size() != prefix.size() + 8 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  std::uint64_t serial = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 8; ++i) {
    const char c = name[i];
    int v;
    if (c >= '0' && c <= '9')
      v = c - '0';
    else if (c >= 'a' && c <= 'f')
      v = c - 'a' + 10;
    else
      return std::nullopt;
    serial = serial * 16 + static_cast<std::uint64_t>(v);
  }
  return serial;
}

std::string pack_name_for_serial(std::uint64_t serial) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pack-%08llx%s",
                static_cast<unsigned long long>(serial), kPackExtension);
  return buf;
}

/// Deletes every pack segment in `dir`'s pack directory whose name is not
/// in `referenced` (superseded segments, crashed temp leftovers).
void remove_unreferenced_segments(const std::string& dir,
                                  const std::vector<std::string>& referenced) {
  std::error_code ec;
  std::vector<fs::path> doomed;
  for (fs::directory_iterator it(packs_path(dir), ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name == kManifestName || name == kHitLogName) continue;
    if (std::find(referenced.begin(), referenced.end(), name) ==
        referenced.end())
      doomed.push_back(it->path());
  }
  for (const auto& path : doomed) fs::remove(path, ec);
}

}  // namespace

std::uint64_t pack_checksum(std::span<const std::uint8_t> bytes) {
  // Four independent xor-multiply accumulators keep the multiply latency
  // off the critical path (the checksum runs on every warm pack lookup).
  // Each update is bijective in its input word and the lane position picks
  // the accumulator, so any single-bit flip — and any reordering of
  // words — changes the digest.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;  // FNV-1a 64-bit prime
  std::uint64_t h0 = 0xcbf29ce484222325ull ^ (bytes.size() * kPrime);
  std::uint64_t h1 = 0x9e3779b97f4a7c15ull;
  std::uint64_t h2 = 0xc2b2ae3d27d4eb4full;
  std::uint64_t h3 = 0x165667b19e3779f9ull;
  std::size_t i = 0;
  for (; i + 32 <= bytes.size(); i += 32) {
    std::uint64_t k0, k1, k2, k3;
    std::memcpy(&k0, bytes.data() + i, 8);
    std::memcpy(&k1, bytes.data() + i + 8, 8);
    std::memcpy(&k2, bytes.data() + i + 16, 8);
    std::memcpy(&k3, bytes.data() + i + 24, 8);
    h0 = (h0 ^ k0) * kPrime;
    h1 = (h1 ^ k1) * kPrime;
    h2 = (h2 ^ k2) * kPrime;
    h3 = (h3 ^ k3) * kPrime;
  }
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t k;
    std::memcpy(&k, bytes.data() + i, 8);
    h0 = (h0 ^ k) * kPrime;
  }
  if (i < bytes.size()) {
    std::uint64_t tail = 0;
    for (std::size_t j = 0; i + j < bytes.size(); ++j)
      tail |= static_cast<std::uint64_t>(bytes[i + j]) << (8 * j);
    h0 = (h0 ^ tail) * kPrime;
  }
  std::uint64_t h = (h0 ^ h1) * kPrime;
  h = (h ^ h2) * kPrime;
  h = (h ^ h3) * kPrime;
  h ^= h >> 32;
  return h;
}

// ---- PackSet ----

std::optional<PackSet> PackSet::open(const std::string& dir) {
  auto manifest = load_manifest(dir);
  if (!manifest) return std::nullopt;

  PackSet set;
  set.dir_ = dir;
  set.records_ = std::move(manifest->records);

  std::error_code ec;
  set.manifest_size_ = fs::file_size(manifest_path(dir), ec);
  if (ec) set.manifest_size_ = 0;
  const auto mtime = fs::last_write_time(manifest_path(dir), ec);
  set.manifest_mtime_ns_ =
      ec ? 0 : static_cast<std::int64_t>(mtime.time_since_epoch().count());

  set.packs_.resize(manifest->pack_names.size());
  set.pack_names_ = std::move(manifest->pack_names);
  set.pack_sizes_ = std::move(manifest->pack_sizes);
  for (std::size_t i = 0; i < set.pack_names_.size(); ++i) {
    // A segment that fails to map leaves an empty Mapping: its records
    // yield empty spans (per-entry miss) rather than failing the set.
    const fs::path path = packs_path(dir) / set.pack_names_[i];
    Mapping& m = set.packs_[i];
#if defined(NIDKIT_CACHE_HAVE_MMAP)
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) continue;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
      ::close(fd);
      continue;
    }
    void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) continue;
    m.data = static_cast<const std::uint8_t*>(addr);
    m.size = static_cast<std::size_t>(st.st_size);
    m.mmapped = true;
#else
    if (auto bytes = read_file(path)) {
      m.fallback = std::move(*bytes);
      m.data = m.fallback.data();
      m.size = m.fallback.size();
    }
#endif
  }
  return set;
}

PackSet::PackSet(PackSet&& other) noexcept
    : dir_(std::move(other.dir_)),
      records_(std::move(other.records_)),
      pack_names_(std::move(other.pack_names_)),
      pack_sizes_(std::move(other.pack_sizes_)),
      packs_(std::move(other.packs_)),
      manifest_size_(other.manifest_size_),
      manifest_mtime_ns_(other.manifest_mtime_ns_),
      hit_buffer_(std::move(other.hit_buffer_)),
      hit_fd_(other.hit_fd_) {
  other.packs_.clear();
  other.hit_buffer_.clear();
  other.hit_fd_ = -1;
}

PackSet& PackSet::operator=(PackSet&& other) noexcept {
  if (this != &other) {
    this->~PackSet();
    new (this) PackSet(std::move(other));
  }
  return *this;
}

PackSet::~PackSet() {
  flush_hits();
#if defined(NIDKIT_CACHE_HAVE_MMAP)
  for (auto& m : packs_) {
    if (m.mmapped && m.data != nullptr)
      ::munmap(const_cast<std::uint8_t*>(m.data), m.size);
  }
  if (hit_fd_ >= 0) ::close(hit_fd_);
#endif
}

const PackedRecord* PackSet::find(const ScenarioKey& key) const {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), key,
      [](const PackedRecord& rec, const ScenarioKey& k) { return rec.key < k; });
  if (it == records_.end() || !(it->key == key)) return nullptr;
  return &*it;
}

std::span<const std::uint8_t> PackSet::bytes_of(const PackedRecord& rec) const {
  if (rec.pack >= packs_.size()) return {};
  const Mapping& m = packs_[rec.pack];
  if (m.data == nullptr) return {};
  if (rec.offset > m.size || rec.length > m.size - rec.offset) return {};
  return {m.data + rec.offset, static_cast<std::size_t>(rec.length)};
}

void PackSet::note_hit(const ScenarioKey& key) {
  // Hits buffer in memory and land in one O_APPEND write per kHitFlushBytes
  // (or at destruction) — a syscall per hit would be the single biggest
  // cost left on the warm lookup path. The log is telemetry: a crash loses
  // at most a buffer of hit events, never an answer.
  hit_buffer_.insert(hit_buffer_.end(), key.digest.bytes.begin(),
                     key.digest.bytes.end());
  if (hit_buffer_.size() >= kHitFlushBytes) flush_hits();
}

void PackSet::flush_hits() {
  if (hit_buffer_.empty()) return;
#if defined(NIDKIT_CACHE_HAVE_MMAP)
  if (hit_fd_ == -2) return;  // open failed once; stop retrying
  if (hit_fd_ < 0) {
    hit_fd_ = ::open(hit_log_path(dir_).c_str(),
                     O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (hit_fd_ < 0) {
      hit_fd_ = -2;
      return;
    }
  }
  // One O_APPEND write for the whole buffer: appends never interleave, so
  // the log stays a whole number of records under concurrent writers.
  [[maybe_unused]] const auto n =
      ::write(hit_fd_, hit_buffer_.data(), hit_buffer_.size());
#else
  std::ofstream file(hit_log_path(dir_), std::ios::binary | std::ios::app);
  if (file)
    file.write(reinterpret_cast<const char*>(hit_buffer_.data()),
               static_cast<std::streamsize>(hit_buffer_.size()));
#endif
  hit_buffer_.clear();
}

std::map<ScenarioKey, std::uint64_t> read_hit_log(const std::string& dir) {
  std::map<ScenarioKey, std::uint64_t> counts;
  const auto bytes = read_file(hit_log_path(dir));
  if (!bytes) return counts;
  const std::size_t whole = bytes->size() / kKeyBytes;
  for (std::size_t i = 0; i < whole; ++i) {
    ScenarioKey key;
    std::memcpy(key.digest.bytes.data(), bytes->data() + i * kKeyBytes,
                kKeyBytes);
    ++counts[key];
  }
  return counts;
}

bool has_manifest(const std::string& dir) {
  std::error_code ec;
  return fs::is_regular_file(manifest_path(dir), ec) && !ec;
}

// ---- Compaction ----

std::optional<CompactResult> compact(const std::string& dir) {
  CompactResult result;
  std::error_code ec;
  if (!fs::exists(dir, ec) || ec) return result;  // nothing to compact

  auto old = PackSet::open(dir);
  auto hit_log = read_hit_log(dir);

  // Validate every loose entry end-to-end before it is packed: compaction
  // is a maintenance pass and can afford the full decode that lookups
  // amortize away. Invalid files are left for prune.
  struct LooseEntry {
    std::vector<std::uint8_t> bytes;
    PayloadKind kind = PayloadKind::kMinedRelations;
    std::uint64_t hits = 0;
    std::int64_t mtime_s = 0;
    fs::path path;
  };
  std::map<ScenarioKey, LooseEntry> loose;
  for (const auto& path : loose_entry_files(dir)) {
    const auto key = key_from_stem(path.stem().string());
    auto bytes = key ? read_file(path) : std::nullopt;
    const auto entry = bytes ? decode_entry(*key, *bytes) : std::nullopt;
    if (!entry) {
      // Distinguish version skew (readable framing, other format) from
      // corruption: skewed entries are expected after a format bump and
      // deserve their own count in the compact summary.
      const std::uint32_t format = bytes ? peek_entry_format(*bytes) : 0;
      if (format != 0 && format != kCacheFormatVersion)
        ++result.skipped_version;
      else
        ++result.skipped;
      continue;
    }
    LooseEntry le;
    le.bytes = std::move(*bytes);
    le.kind = entry->kind;
    le.mtime_s = mtime_epoch_seconds(path);
    fs::path sidecar = path;
    sidecar += kHitsExtension;
    const auto sidecar_size = fs::file_size(sidecar, ec);
    le.hits = ec ? 0 : sidecar_size;
    ec.clear();
    le.path = path;
    loose.emplace(*key, std::move(le));
  }

  if (loose.empty() && hit_log.empty()) {
    // Nothing new to fold in; report the existing state without rewriting.
    if (old) {
      result.entries = old->records().size();
      result.carried = result.entries;
      result.segments = old->pack_names().size();
      for (const auto& rec : old->records()) result.bytes += rec.length;
    }
    return result;
  }

  // Merge: carried pack records first (hit log folded in), then loose
  // entries — the write path — override any packed duplicate, summing
  // both copies' hit counts.
  std::map<ScenarioKey, PackedRecord> merged;
  if (old) {
    for (const auto& rec : old->records()) {
      auto carried = rec;
      if (const auto it = hit_log.find(rec.key); it != hit_log.end())
        carried.hits += it->second;
      merged.emplace(rec.key, carried);
    }
  }
  std::vector<const LooseEntry*> to_pack;  // key order (map iteration)
  std::uint64_t new_pack_size = 0;
  for (auto& [key, le] : loose) {
    PackedRecord rec;
    rec.key = key;
    rec.kind = le.kind;
    rec.pack = UINT32_MAX;  // patched to the new segment's index below
    rec.offset = new_pack_size;
    rec.length = le.bytes.size();
    rec.hits = le.hits;
    rec.mtime_s = le.mtime_s;
    rec.checksum = pack_checksum(le.bytes);
    if (const auto it = merged.find(key); it != merged.end())
      rec.hits += it->second.hits;  // already includes the hit log
    else if (const auto hl = hit_log.find(key); hl != hit_log.end())
      rec.hits += hl->second;
    merged.insert_or_assign(key, rec);
    to_pack.push_back(&le);
    new_pack_size += le.bytes.size();
  }

  // New pack table: old segments still referenced (remapped densely) plus
  // the new segment holding this pass's loose entries.
  Manifest manifest;
  std::vector<std::uint32_t> remap(old ? old->pack_names().size() : 0,
                                   UINT32_MAX);
  for (const auto& [key, rec] : merged) {
    if (rec.pack == UINT32_MAX) continue;  // new segment, patched later
    if (remap[rec.pack] == UINT32_MAX) {
      remap[rec.pack] = static_cast<std::uint32_t>(manifest.pack_names.size());
      manifest.pack_names.push_back(old->pack_names()[rec.pack]);
      manifest.pack_sizes.push_back(old->pack_sizes()[rec.pack]);
    }
  }
  const auto new_pack_index =
      static_cast<std::uint32_t>(manifest.pack_names.size());

  fs::create_directories(packs_path(dir), ec);
  if (ec) return std::nullopt;

  if (!to_pack.empty()) {
    // Serial = 1 + highest existing, including unreferenced leftovers, so
    // a crashed compact can never alias a new segment onto stale bytes.
    std::uint64_t serial = 0;
    for (fs::directory_iterator it(packs_path(dir), ec), end; !ec && it != end;
         it.increment(ec)) {
      if (const auto s = pack_serial(it->path().filename().string()))
        serial = std::max(serial, *s + 1);
    }
    std::vector<std::uint8_t> blob;
    blob.reserve(new_pack_size);
    for (const auto* le : to_pack)
      blob.insert(blob.end(), le->bytes.begin(), le->bytes.end());
    const std::string name = pack_name_for_serial(serial);
    if (!write_file_atomic(packs_path(dir) / name, blob)) return std::nullopt;
    manifest.pack_names.push_back(name);
    manifest.pack_sizes.push_back(new_pack_size);
  }

  for (auto& [key, rec] : merged) {
    auto out = rec;
    out.pack = out.pack == UINT32_MAX ? new_pack_index : remap[out.pack];
    manifest.records.push_back(out);
    result.bytes += out.length;
  }
  if (!write_file_atomic(manifest_path(dir), encode_manifest(manifest)))
    return std::nullopt;

  // The manifest is durably in place: retire everything it superseded.
  // A crash before this point leaves harmless duplicates; a crash during
  // it leaves some — the next compact or prune finishes the job.
  fs::remove(hit_log_path(dir), ec);
  for (const auto* le : to_pack) {
    fs::remove(le->path, ec);
    fs::path sidecar = le->path;
    sidecar += kHitsExtension;
    fs::remove(sidecar, ec);
  }
  remove_unreferenced_segments(dir, manifest.pack_names);
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code sub;
    if (it->is_directory(sub) && it->path().filename() != kPacksDirName &&
        fs::is_empty(it->path(), sub) && !sub)
      fs::remove(it->path(), sub);
  }

  result.packed = to_pack.size();
  result.entries = manifest.records.size();
  result.carried = result.entries - result.packed;
  result.segments = manifest.pack_names.size();
  return result;
}

std::size_t remove_packs(const std::string& dir) {
  std::size_t entries = 0;
  if (const auto manifest = load_manifest(dir))
    entries = manifest->records.size();
  std::error_code ec;
  fs::remove_all(packs_path(dir), ec);
  return entries;
}

bool repack(const std::string& dir, const std::vector<PackedRecord>& keep,
            const PackSet& source) {
  if (keep.empty()) {
    remove_packs(dir);
    return true;
  }
  std::error_code ec;
  std::uint64_t serial = 0;
  for (fs::directory_iterator it(packs_path(dir), ec), end; !ec && it != end;
       it.increment(ec)) {
    if (const auto s = pack_serial(it->path().filename().string()))
      serial = std::max(serial, *s + 1);
  }
  Manifest manifest;
  std::vector<std::uint8_t> blob;
  std::uint64_t offset = 0;
  for (const auto& rec : keep) {
    const auto bytes = source.bytes_of(rec);
    if (bytes.empty()) continue;  // unreadable survivor: drop it
    auto out = rec;
    out.pack = 0;
    out.offset = offset;
    manifest.records.push_back(out);
    blob.insert(blob.end(), bytes.begin(), bytes.end());
    offset += bytes.size();
  }
  if (manifest.records.empty()) {
    remove_packs(dir);
    return true;
  }
  const std::string name = pack_name_for_serial(serial);
  if (!write_file_atomic(packs_path(dir) / name, blob)) return false;
  manifest.pack_names.push_back(name);
  manifest.pack_sizes.push_back(offset);
  if (!write_file_atomic(manifest_path(dir), encode_manifest(manifest)))
    return false;
  fs::remove(hit_log_path(dir), ec);
  remove_unreferenced_segments(dir, manifest.pack_names);
  return true;
}

}  // namespace nidkit::cache
