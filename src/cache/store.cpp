#include "cache/store.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "mining/relation_codec.hpp"

namespace nidkit::cache {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x4E494443;  // "NIDC"
constexpr const char* kExtension = ".nidc";
constexpr const char* kHitsExtension = ".hits";

fs::path hits_path(const fs::path& entry) {
  fs::path p = entry;
  p += kHitsExtension;
  return p;
}

/// Appends one byte to the entry's hit sidecar. O_APPEND writes of one
/// byte never interleave, so the count (= file size) stays exact under
/// concurrent readers; failures are swallowed like every other cache I/O.
void record_hit_on_disk(const fs::path& entry) {
  std::ofstream file(hits_path(entry), std::ios::binary | std::ios::app);
  if (file) file.put('h');
}

std::uint64_t hits_of(const fs::path& entry) {
  std::error_code ec;
  const auto size = fs::file_size(hits_path(entry), ec);
  return ec ? 0 : size;
}

void write_u64(ByteWriter& out, std::uint64_t v) {
  out.u32(static_cast<std::uint32_t>(v >> 32));
  out.u32(static_cast<std::uint32_t>(v));
}

std::uint64_t read_u64(ByteReader& in) {
  const std::uint64_t hi = in.u32();
  return (hi << 32) | in.u32();
}

void encode_summary(const ScenarioSummary& s, ByteWriter& out) {
  write_u64(out, s.routers);
  write_u64(out, s.segments);
  write_u64(out, s.full_adjacencies);
  out.u8(s.converged ? 1 : 0);
  out.u8(s.routes_consistent ? 1 : 0);
  write_u64(out, static_cast<std::uint64_t>(s.convergence_time_us));
  write_u64(out, s.frames_delivered);
  write_u64(out, s.frames_dropped);
}

ScenarioSummary decode_summary(ByteReader& in) {
  ScenarioSummary s;
  s.routers = read_u64(in);
  s.segments = read_u64(in);
  s.full_adjacencies = read_u64(in);
  s.converged = in.u8() != 0;
  s.routes_consistent = in.u8() != 0;
  s.convergence_time_us = static_cast<std::int64_t>(read_u64(in));
  s.frames_delivered = read_u64(in);
  s.frames_dropped = read_u64(in);
  return s;
}

void encode_sweep(const SweepStats& s, ByteWriter& out) {
  write_u64(out, s.mined_pairs);
  write_u64(out, s.truth_pairs);
  write_u64(out, s.correct_pairs);
  write_u64(out, s.mined_cells);
  write_u64(out, s.unobserved_cells);
  write_u64(out, s.spurious_cells);
}

void encode_metrics(const obs::ScenarioMetrics& m, ByteWriter& out) {
  const auto& entries = m.entries();
  out.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [name, value] : entries) {
    out.u16(static_cast<std::uint16_t>(name.size()));
    out.bytes(std::span(reinterpret_cast<const std::uint8_t*>(name.data()),
                        name.size()));
    write_u64(out, value);
  }
}

std::optional<obs::ScenarioMetrics> decode_metrics(ByteReader& in) {
  obs::ScenarioMetrics m;
  const std::uint32_t count = in.u32();
  if (!in.ok()) return std::nullopt;
  // Entries were written in sorted order, so decoding is a reserve plus
  // straight appends; the count is sanity-checked against the remaining
  // bytes so a corrupted field can't trigger a huge allocation.
  if (count <= in.remaining() / 10) m.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint16_t len = in.u16();
    const auto name_bytes = in.bytes(len);
    if (!in.ok()) return std::nullopt;
    std::string name(reinterpret_cast<const char*>(name_bytes.data()),
                     name_bytes.size());
    const std::uint64_t value = read_u64(in);
    if (!in.ok()) return std::nullopt;
    m.append_sorted(std::move(name), value);
  }
  return m;
}

void encode_coverage(const cov::CoverageVector& cv, ByteWriter& out) {
  out.u32(static_cast<std::uint32_t>(cv.ids().size()));
  for (const cov::FeatureId id : cv.ids()) out.u32(id);
}

std::optional<cov::CoverageVector> decode_coverage(ByteReader& in) {
  cov::CoverageVector cv;
  const std::uint32_t count = in.u32();
  if (!in.ok()) return std::nullopt;
  // Count sanity-checked against remaining bytes before reserving.
  if (count > in.remaining() / 4) return std::nullopt;
  cv.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) cv.add(in.u32());
  if (!in.ok()) return std::nullopt;
  cv.finalize();  // canonical form regardless of what was on disk
  return cv;
}

SweepStats decode_sweep(ByteReader& in) {
  SweepStats s;
  s.mined_pairs = read_u64(in);
  s.truth_pairs = read_u64(in);
  s.correct_pairs = read_u64(in);
  s.mined_cells = read_u64(in);
  s.unobserved_cells = read_u64(in);
  s.spurious_cells = read_u64(in);
  return s;
}

/// Header = magic + version + key echo + payload kind. Returns the kind,
/// or nullopt if the framing is malformed or names a different key.
std::optional<PayloadKind> decode_header(ByteReader& in,
                                         const ScenarioKey& expected) {
  if (in.u32() != kMagic) return std::nullopt;
  if (in.u32() != kCacheFormatVersion) return std::nullopt;
  const auto echoed = in.bytes(expected.digest.bytes.size());
  if (!in.ok() ||
      !std::equal(echoed.begin(), echoed.end(),
                  expected.digest.bytes.begin()))
    return std::nullopt;
  const std::uint8_t kind = in.u8();
  if (!in.ok()) return std::nullopt;
  if (kind != static_cast<std::uint8_t>(PayloadKind::kMinedRelations) &&
      kind != static_cast<std::uint8_t>(PayloadKind::kSweepStats))
    return std::nullopt;
  return static_cast<PayloadKind>(kind);
}

std::optional<ScenarioKey> key_from_stem(const std::string& stem) {
  if (stem.size() != 32) return std::nullopt;
  ScenarioKey key;
  for (std::size_t i = 0; i < 16; ++i) {
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = nibble(stem[2 * i]);
    const int lo = nibble(stem[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    key.digest.bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return key;
}

std::optional<std::vector<std::uint8_t>> read_file(const fs::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)),
      std::istreambuf_iterator<char>());
  if (file.bad()) return std::nullopt;
  return bytes;
}

/// All loose entry files under `dir`, unsorted, skipping the packs
/// directory. Missing directory → empty.
std::vector<fs::path> entry_files(const std::string& dir) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code sub;
    if (!it->is_directory(sub) || it->path().filename() == kPacksDirName)
      continue;
    for (fs::directory_iterator shard(it->path(), sub), send;
         !sub && shard != send; shard.increment(sub)) {
      if (shard->is_regular_file(sub) &&
          shard->path().extension() == kExtension)
        out.push_back(shard->path());
    }
  }
  return out;
}

double age_seconds_of(const fs::path& path) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return 0;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

std::int64_t now_epoch_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<std::uint8_t> encode_entry(const ScenarioKey& key,
                                       const Entry& entry) {
  ByteWriter out(256);
  out.u32(kMagic);
  out.u32(kCacheFormatVersion);
  out.bytes(key.digest.bytes);
  out.u8(static_cast<std::uint8_t>(entry.kind));
  encode_summary(entry.summary, out);
  encode_metrics(entry.metrics, out);
  encode_coverage(entry.coverage, out);
  if (entry.kind == PayloadKind::kMinedRelations)
    mining::encode_relations(entry.relations, out);
  else
    encode_sweep(entry.sweep, out);
  return out.take();
}

std::optional<Entry> decode_entry(const ScenarioKey& expected,
                                  std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const auto kind = decode_header(in, expected);
  if (!kind) return std::nullopt;
  Entry entry;
  entry.kind = *kind;
  entry.summary = decode_summary(in);
  if (!in.ok()) return std::nullopt;
  auto metrics = decode_metrics(in);
  if (!metrics) return std::nullopt;
  entry.metrics = std::move(*metrics);
  auto coverage = decode_coverage(in);
  if (!coverage) return std::nullopt;
  entry.coverage = std::move(*coverage);
  if (entry.kind == PayloadKind::kMinedRelations) {
    auto relations = mining::decode_relations(in);
    if (!relations) return std::nullopt;
    entry.relations = std::move(*relations);
  } else {
    entry.sweep = decode_sweep(in);
  }
  if (!in.ok() || in.remaining() != 0) return std::nullopt;
  return entry;
}

std::uint32_t peek_entry_format(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  if (in.u32() != kMagic) return 0;
  const std::uint32_t version = in.u32();
  return in.ok() ? version : 0;
}

Store::Store(std::string dir) : dir_(std::move(dir)) {}

std::string Store::entry_path(const ScenarioKey& key) const {
  return (fs::path(dir_) / key.prefix() / (key.hex() + kExtension))
      .string();
}

void Store::ensure_packs_locked() {
  if (packs_probed_) return;
  packs_probed_ = true;
  packs_ = PackSet::open(dir_);
}

bool Store::reopen_packs_if_changed_locked() {
  std::error_code ec;
  const auto path = fs::path(dir_) / kPacksDirName / kManifestName;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    // No manifest on disk: drop a pack set whose files were cleared away.
    if (!packs_) return false;
    packs_.reset();
    return true;
  }
  const auto mtime = fs::last_write_time(path, ec);
  const auto mtime_ns =
      ec ? 0 : static_cast<std::int64_t>(mtime.time_since_epoch().count());
  if (packs_ && packs_->manifest_size() == size &&
      packs_->manifest_mtime_ns() == mtime_ns)
    return false;
  packs_ = PackSet::open(dir_);
  return packs_.has_value();
}

std::optional<Entry> Store::try_pack_locked(const PackedRecord& rec,
                                            const ScenarioKey& key) {
  const auto bytes = packs_->bytes_of(rec);
  if (bytes.empty()) {
    ++counters_.bad_entries;  // truncated/missing segment
    return std::nullopt;
  }
  if (pack_checksum(bytes) != rec.checksum) {
    ++counters_.bad_entries;  // payload bit flip the framing can't see
    return std::nullopt;
  }
  auto entry = decode_entry(key, bytes);
  if (!entry) {
    ++counters_.bad_entries;  // bit flip, bad echo, foreign bytes
    return std::nullopt;
  }
  packs_->note_hit(key);
  return entry;
}

std::optional<Entry> Store::try_loose_locked(const ScenarioKey& key) {
  const auto bytes = read_file(entry_path(key));
  if (!bytes) return std::nullopt;
  auto entry = decode_entry(key, *bytes);
  if (!entry) {
    ++counters_.bad_entries;
    return std::nullopt;
  }
  record_hit_on_disk(entry_path(key));
  memory_.emplace(key, *entry);
  return entry;
}

std::optional<Entry> Store::get(const ScenarioKey& key) {
  std::lock_guard lock(mutex_);
  if (auto it = memory_.find(key); it != memory_.end()) {
    ++counters_.memory_hits;
    record_hit_on_disk(entry_path(key));
    return it->second;
  }
  ensure_packs_locked();
  // Two attempts: the second runs only when a full miss coincides with a
  // manifest that changed on disk (a concurrent compact moved entries out
  // of the loose tree between our open and this lookup).
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (packs_) {
      if (const auto* rec = packs_->find(key)) {
        if (auto entry = try_pack_locked(*rec, key)) {
          ++counters_.pack_hits;
          return entry;
        }
      }
    }
    if (auto entry = try_loose_locked(key)) {
      ++counters_.disk_hits;
      return entry;
    }
    if (attempt == 0 && !reopen_packs_if_changed_locked()) break;
  }
  ++counters_.misses;
  return std::nullopt;
}

Store::BatchResult Store::get_batch(std::span<const ScenarioKey> keys) {
  BatchResult out;
  out.entries.resize(keys.size());
  std::lock_guard lock(mutex_);
  ensure_packs_locked();

  // Key-sorted visit order: the manifest (also key-sorted) is then walked
  // monotonically — one forward pass, each binary search bounded below by
  // the previous hit.
  std::vector<std::uint32_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return keys[a] < keys[b]; });

  const PackedRecord* lo = packs_ ? packs_->records().data() : nullptr;
  const PackedRecord* hi =
      packs_ ? lo + packs_->records().size() : nullptr;
  for (const auto i : order) {
    const ScenarioKey& key = keys[i];
    if (auto it = memory_.find(key); it != memory_.end()) {
      ++counters_.memory_hits;
      record_hit_on_disk(entry_path(key));
      ++out.loose_hits;
      out.entries[i] = it->second;
      continue;
    }
    if (lo != hi) {
      lo = std::lower_bound(lo, hi, key,
                            [](const PackedRecord& rec, const ScenarioKey& k) {
                              return rec.key < k;
                            });
      if (lo != hi && lo->key == key) {
        if (auto entry = try_pack_locked(*lo, key)) {
          ++counters_.pack_hits;
          ++out.pack_hits;
          out.entries[i] = std::move(*entry);
          continue;
        }
      }
    }
    if (auto entry = try_loose_locked(key)) {
      ++counters_.disk_hits;
      ++out.loose_hits;
      out.entries[i] = std::move(*entry);
      continue;
    }
    ++counters_.misses;
    ++out.misses;
  }
  return out;
}

void Store::put(const ScenarioKey& key, const Entry& entry) {
  std::lock_guard lock(mutex_);
  memory_.insert_or_assign(key, entry);
  ++counters_.stores;

  const auto encoded = encode_entry(key, entry);
  const fs::path target(entry_path(key));
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);
  if (ec) return;

  // Unique-per-writer temp name in the target directory, so the final
  // rename never crosses a filesystem boundary and is atomic.
  static std::atomic<std::uint64_t> temp_serial{0};
  std::uint64_t writer_id = temp_serial.fetch_add(1);
#if defined(__unix__) || defined(__APPLE__)
  writer_id |= static_cast<std::uint64_t>(::getpid()) << 32;
#endif
  const fs::path temp =
      target.parent_path() /
      (key.hex() + "." + std::to_string(writer_id) + ".tmp");
  {
    std::ofstream file(temp, std::ios::binary | std::ios::trunc);
    if (!file) return;
    file.write(reinterpret_cast<const char*>(encoded.data()),
               static_cast<std::streamsize>(encoded.size()));
    if (!file) {
      file.close();
      fs::remove(temp, ec);
      return;
    }
  }
  fs::rename(temp, target, ec);
  if (ec) fs::remove(temp, ec);
}

StoreCounters Store::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::vector<Store::FileInfo> Store::ls(const std::string& dir) {
  std::map<ScenarioKey, FileInfo> by_key;
  std::vector<FileInfo> unkeyed;  // stems that do not parse as keys

  if (const auto packs = PackSet::open(dir)) {
    const auto hit_log = read_hit_log(dir);
    const auto now_s = now_epoch_seconds();
    for (const auto& rec : packs->records()) {
      FileInfo info;
      info.key = rec.key;
      info.kind = rec.kind;
      info.packed = true;
      info.bytes = rec.length;
      info.age_seconds =
          static_cast<double>(std::max<std::int64_t>(0, now_s - rec.mtime_s));
      info.hits = rec.hits;
      if (const auto it = hit_log.find(rec.key); it != hit_log.end())
        info.hits += it->second;
      const auto bytes = packs->bytes_of(rec);
      ByteReader in(bytes);
      info.format = peek_entry_format(bytes);
      info.valid = !bytes.empty() && pack_checksum(bytes) == rec.checksum &&
                   decode_header(in, rec.key).has_value();
      by_key.insert_or_assign(rec.key, info);
    }
  }

  for (const auto& path : entry_files(dir)) {
    FileInfo info;
    std::error_code ec;
    info.bytes = fs::file_size(path, ec);
    info.age_seconds = age_seconds_of(path);
    info.hits = hits_of(path);
    const auto key = key_from_stem(path.stem().string());
    if (!key) {
      unkeyed.push_back(info);
      continue;
    }
    info.key = *key;
    if (const auto bytes = read_file(path)) {
      ByteReader in(*bytes);
      info.format = peek_entry_format(*bytes);
      if (const auto kind = decode_header(in, *key)) {
        info.kind = *kind;
        info.valid = true;
      }
    }
    // A loose duplicate of a packed entry (compaction crash window) is
    // one logical entry: the loose copy — the write path — wins the
    // listing, with both copies' hit counts summed.
    if (const auto it = by_key.find(*key); it != by_key.end())
      info.hits += it->second.hits;
    by_key.insert_or_assign(*key, info);
  }

  std::vector<FileInfo> out = std::move(unkeyed);
  out.reserve(out.size() + by_key.size());
  for (auto& [key, info] : by_key) out.push_back(std::move(info));
  std::sort(out.begin(), out.end(), [](const FileInfo& a, const FileInfo& b) {
    return a.key < b.key;
  });
  return out;
}

std::size_t Store::prune(const std::string& dir, double max_age_days) {
  const double max_age_seconds = max_age_days * 24.0 * 3600.0;
  std::size_t removed = 0;
  for (const auto& path : entry_files(dir)) {
    bool drop = age_seconds_of(path) > max_age_seconds;
    if (!drop) {
      const auto key = key_from_stem(path.stem().string());
      const auto bytes = key ? read_file(path) : std::nullopt;
      bool valid = false;
      if (bytes) {
        ByteReader in(*bytes);
        valid = decode_header(in, *key).has_value();
      }
      drop = !valid;
    }
    if (drop) {
      std::error_code ec;
      if (fs::remove(path, ec) && !ec) ++removed;
      fs::remove(hits_path(path), ec);
    }
  }

  if (const auto packs = PackSet::open(dir)) {
    // Age and validity over the manifest records; dropping any rewrites
    // the survivors into a fresh segment so the manifest never points at
    // pruned bytes (and stale segments are reclaimed).
    const auto hit_log = read_hit_log(dir);
    const auto now_s = now_epoch_seconds();
    std::vector<PackedRecord> keep;
    bool dropped = false;
    for (const auto& rec : packs->records()) {
      // Manifest mtimes carry second resolution, so this age floors the
      // true age (a loose file's fractional age always exceeds it). >=
      // compensates: a record at exactly the cutoff — in particular any
      // record under `prune 0` — drops, matching the loose path.
      const auto age =
          static_cast<double>(std::max<std::int64_t>(0, now_s - rec.mtime_s));
      const auto bytes = packs->bytes_of(rec);
      ByteReader in(bytes);
      const bool valid = !bytes.empty() &&
                         pack_checksum(bytes) == rec.checksum &&
                         decode_header(in, rec.key).has_value();
      if (!valid || age >= max_age_seconds) {
        ++removed;
        dropped = true;
        continue;
      }
      auto survivor = rec;
      if (const auto it = hit_log.find(rec.key); it != hit_log.end())
        survivor.hits += it->second;
      keep.push_back(survivor);
    }
    if (dropped) repack(dir, keep, *packs);
  }
  return removed;
}

std::size_t Store::clear(const std::string& dir) {
  std::size_t removed = 0;
  for (const auto& path : entry_files(dir)) {
    std::error_code ec;
    if (fs::remove(path, ec) && !ec) ++removed;
    fs::remove(hits_path(path), ec);
  }
  removed += remove_packs(dir);
  // Sweep now-empty shard directories so clear leaves a pristine tree.
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; ++it) {
    std::error_code sub;
    if (it->is_directory(sub) && fs::is_empty(it->path(), sub) && !sub)
      fs::remove(it->path(), sub);
  }
  return removed;
}

}  // namespace nidkit::cache
