#include "cache/key.hpp"

namespace nidkit::cache {

// Field-coverage guards. If one of these trips you added a field to a
// struct the ScenarioKey fingerprints: append it below (or document it as
// key-irrelevant, like Scenario::keep_bytes), extend Key.CoverageGuard /
// the per-knob distinctness cases in tests/cache/key_test.cpp, bump
// kCacheFormatVersion if the field changes simulation behaviour at its
// default value, and update the expected size in key.hpp.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(harness::Scenario) == kHashedScenarioSize,
              "Scenario grew: add the new knob to scenario_key (or document "
              "it as key-irrelevant) and update kHashedScenarioSize");
static_assert(sizeof(mining::MinerConfig) == kHashedMinerConfigSize,
              "MinerConfig grew: add the new knob to scenario_key and "
              "update kHashedMinerConfigSize");
static_assert(sizeof(ospf::BehaviorProfile) == kHashedOspfProfileSize,
              "ospf::BehaviorProfile grew: add the new knob to scenario_key "
              "and update kHashedOspfProfileSize");
static_assert(sizeof(rip::RipProfile) == kHashedRipProfileSize,
              "rip::RipProfile grew: add the new knob to scenario_key and "
              "update kHashedRipProfileSize");
static_assert(sizeof(bgp::BgpProfile) == kHashedBgpProfileSize,
              "bgp::BgpProfile grew: add the new knob to scenario_key and "
              "update kHashedBgpProfileSize");
static_assert(sizeof(topo::Spec) == kHashedTopoSpecSize,
              "topo::Spec grew: add the new field to scenario_key and "
              "update kHashedTopoSpecSize");
#endif

namespace {

void hash_duration(util::Fingerprint& fp, SimDuration d) {
  fp.i64(d.count());
}

void hash_spec(util::Fingerprint& fp, const topo::Spec& spec) {
  fp.u8(static_cast<std::uint8_t>(spec.kind));
  fp.u64(spec.routers);
}

void hash_ospf_profile(util::Fingerprint& fp,
                       const ospf::BehaviorProfile& p) {
  fp.str(p.name);
  fp.boolean(p.immediate_hello_on_discovery);
  fp.boolean(p.immediate_hello_on_two_way);
  hash_duration(fp, p.hello_jitter);
  hash_duration(fp, p.delayed_ack_delay);
  fp.boolean(p.ack_from_database);
  fp.boolean(p.direct_ack_duplicates);
  fp.boolean(p.check_mtu);
  fp.boolean(p.lsr_per_dbd);
  fp.u64(p.lsr_max_entries);
  fp.u64(p.dbd_max_headers);
  fp.u64(p.lsu_max_lsas);
  hash_duration(fp, p.flood_pacing);
  fp.boolean(p.respond_stale_with_newer);
  fp.boolean(p.ack_stale_from_database);
  hash_duration(fp, p.min_ls_arrival);
  hash_duration(fp, p.rxmt_interval);
  hash_duration(fp, p.lsa_refresh_interval);
  hash_duration(fp, p.min_ls_interval);
}

void hash_rip_profile(util::Fingerprint& fp, const rip::RipProfile& p) {
  fp.str(p.name);
  hash_duration(fp, p.update_interval);
  hash_duration(fp, p.update_jitter);
  hash_duration(fp, p.route_timeout);
  hash_duration(fp, p.gc_interval);
  fp.boolean(p.poisoned_reverse);
  fp.boolean(p.triggered_updates);
  hash_duration(fp, p.triggered_delay);
  fp.boolean(p.request_on_start);
  fp.boolean(p.respond_unicast);
  fp.u8(p.send_version);
  fp.boolean(p.accept_v1);
}

void hash_bgp_profile(util::Fingerprint& fp, const bgp::BgpProfile& p) {
  fp.str(p.name);
  hash_duration(fp, p.keepalive_interval);
  fp.u16(p.hold_time);
  hash_duration(fp, p.connect_retry);
  hash_duration(fp, p.mrai);
  fp.u64(p.as_path_accept_limit);
}

}  // namespace

ScenarioKey scenario_key(const harness::Scenario& scenario,
                         const mining::MinerConfig& miner,
                         std::string_view scheme_id, PayloadKind kind) {
  util::Fingerprint fp;
  fp.u32(kCacheFormatVersion);
  fp.u8(static_cast<std::uint8_t>(kind));
  fp.str(scheme_id);

  // MinerConfig — every field.
  hash_duration(fp, miner.tdelay);
  fp.f64(miner.window_factor);
  hash_duration(fp, miner.horizon);

  // Scenario — every field in declaration order, except keep_bytes:
  // mining reads digests only, so dropping or keeping raw wire bytes
  // cannot change any cached payload (pinned by Key.KeepBytesIrrelevant).
  fp.u8(static_cast<std::uint8_t>(scenario.protocol));
  hash_spec(fp, scenario.topology);
  hash_ospf_profile(fp, scenario.ospf_profile);
  hash_rip_profile(fp, scenario.rip_profile);
  hash_bgp_profile(fp, scenario.bgp_profile);
  fp.u64(scenario.bgp_longpath_prepend);
  hash_duration(fp, scenario.tdelay);
  hash_duration(fp, scenario.link_jitter);
  fp.f64(scenario.link_loss);
  hash_duration(fp, scenario.duration);
  fp.u64(scenario.seed);
  hash_duration(fp, scenario.lsa_refresh);
  fp.u64(scenario.churn_times.size());
  for (const auto when : scenario.churn_times) hash_duration(fp, when);
  fp.boolean(scenario.state_probe);

  ScenarioKey key;
  key.digest = fp.digest();
  return key;
}

}  // namespace nidkit::cache
