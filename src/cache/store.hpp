// Persistent, content-addressed scenario result store.
//
// Layout: <dir>/<first-two-hex>/<key>.nidc, one entry per file. Each file
// carries a magic + format version + the full key it claims to hold, so a
// renamed or corrupted file can never satisfy the wrong lookup — it simply
// decodes as a miss (counted in counters().bad_entries). Writes go to a
// temp file in the same shard directory and are renamed into place, which
// is atomic on POSIX: concurrent --jobs workers, concurrent nidt
// processes, or a reader racing a writer see either the old complete
// entry, the new complete entry, or a miss — never a torn file.
//
// Warm path: `nidt cache compact` consolidates loose entries into
// memory-mapped pack segments indexed by a sorted manifest (see
// cache/pack.hpp). Lookups consult the manifest first and decode straight
// out of the mapping — no file open, no read, no byte copy — and fall
// back to the loose file on any mismatch, so a stale or corrupt manifest
// can only cost speed, never correctness. Loose files remain the write
// path; the next compact folds them in.
//
// An in-process map fronts the disk: within one run, a key is decoded (or
// computed) at most once, and repeated lookups — including in-flight
// duplicates the experiment layer fans in — are memory hits.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/key.hpp"
#include "cache/pack.hpp"
#include "cov/cov.hpp"
#include "mining/relation.hpp"
#include "obs/obs.hpp"
#include "util/bytes.hpp"

namespace nidkit::cache {

/// The simulation-health summary of the run that produced an entry —
/// ScenarioResult's scalar statistics, preserved so a replayed scenario
/// can report the same convergence/health numbers the original run did.
struct ScenarioSummary {
  std::uint64_t routers = 0;
  std::uint64_t segments = 0;
  std::uint64_t full_adjacencies = 0;
  bool converged = false;
  bool routes_consistent = false;
  std::int64_t convergence_time_us = -1'000'000;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;

  friend bool operator==(const ScenarioSummary&,
                         const ScenarioSummary&) = default;
};

/// Per-scenario accuracy counters cached for tdelay_sweep points. Integer
/// partials only — precision/recall ratios are derived after the canonical
/// accumulation, so cached and fresh sweeps agree bit-for-bit.
struct SweepStats {
  std::uint64_t mined_pairs = 0;
  std::uint64_t truth_pairs = 0;
  std::uint64_t correct_pairs = 0;
  std::uint64_t mined_cells = 0;
  std::uint64_t unobserved_cells = 0;
  std::uint64_t spurious_cells = 0;

  friend bool operator==(const SweepStats&, const SweepStats&) = default;
};

/// One cached scenario result. `relations` is meaningful for
/// kMinedRelations, `sweep` for kSweepStats; the summary is always kept.
struct Entry {
  PayloadKind kind = PayloadKind::kMinedRelations;
  ScenarioSummary summary;
  mining::RelationSet relations;
  SweepStats sweep;
  /// Deterministic per-scenario metric deltas, preserved so a warm cache
  /// run replays exactly the metrics the original run produced.
  obs::ScenarioMetrics metrics;
  /// Canonical behavioral-coverage feature set (sorted unique ids),
  /// replayed on hits the same way the metrics are.
  cov::CoverageVector coverage;
};

/// Serializes an entry with its file framing (magic, version, key echo).
std::vector<std::uint8_t> encode_entry(const ScenarioKey& key,
                                       const Entry& entry);

/// Decodes an entry, verifying framing and that it holds `expected`.
/// Returns nullopt on any mismatch, truncation or trailing garbage.
std::optional<Entry> decode_entry(const ScenarioKey& expected,
                                  std::span<const std::uint8_t> bytes);

/// Reads just the format-version field out of an encoded entry's framing.
/// Returns the version when the magic matches, 0 otherwise (foreign or
/// corrupt bytes). Lets maintenance commands distinguish version skew
/// from corruption without a full decode.
std::uint32_t peek_entry_format(std::span<const std::uint8_t> bytes);

struct StoreCounters {
  std::uint64_t memory_hits = 0;
  /// Served from a memory-mapped pack segment via the manifest.
  std::uint64_t pack_hits = 0;
  /// Served from a loose <2hex>/<key>.nidc file (the pre-pack path).
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  /// Files or packed spans that existed but failed to decode (corruption,
  /// foreign format, version skew). Treated as misses; never fatal.
  std::uint64_t bad_entries = 0;
};

class Store {
 public:
  /// `dir` need not exist yet; it is created on the first put().
  explicit Store(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Memory first, then the pack manifest (mmap decode), then the loose
  /// file. Loose hits are promoted into memory; pack hits are not —
  /// re-decoding straight from the mapping is about as fast as a memory
  /// copy would be, and skipping the promotion copy keeps the warm
  /// lookup allocation-light.
  std::optional<Entry> get(const ScenarioKey& key);

  /// Batched lookup: resolves every key against the manifest in one
  /// sorted pass under a single lock, then falls back to loose files for
  /// the rest. Entries come back in input order (nullopt = miss). This is
  /// the experiment warm path — workers never touch the filesystem for a
  /// key resolved here.
  struct BatchResult {
    std::vector<std::optional<Entry>> entries;  ///< input order
    /// Hit split for telemetry, so warm-path regressions (pack lookups
    /// silently degrading to loose reads) show up in --stats. Memory
    /// hits count as loose_hits: memory entries only ever originate from
    /// put() or a loose-file promotion.
    std::uint64_t pack_hits = 0;
    std::uint64_t loose_hits = 0;
    std::uint64_t misses = 0;
  };
  BatchResult get_batch(std::span<const ScenarioKey> keys);

  /// Inserts into memory and persists to disk (atomic temp+rename). Disk
  /// I/O failures are swallowed: the cache degrades to memory-only rather
  /// than failing the experiment.
  void put(const ScenarioKey& key, const Entry& entry);

  StoreCounters counters() const;

  // ---- Maintenance (nidt cache ls/prune/clear/compact) ----

  struct FileInfo {
    ScenarioKey key;
    PayloadKind kind = PayloadKind::kMinedRelations;
    bool valid = false;          ///< framing decoded and key matches
    bool packed = false;         ///< lives in a pack segment, not a file
    /// On-disk entry format version (0 when the magic is unreadable).
    std::uint32_t format = 0;
    std::uint64_t bytes = 0;
    double age_seconds = 0;      ///< since last modification
    /// Lifetime hit count (memory + disk) across every process that used
    /// this entry — e.g. triage probes replaying audit results. Loose
    /// entries persist it as a 1-byte-per-hit sidecar (<entry>.hits);
    /// packed entries carry the compact-time total in the manifest plus
    /// live appends in the packs/hits.nidl log.
    std::uint64_t hits = 0;
  };

  /// Every entry under `dir`, sorted by key hex. Reads the manifest when
  /// present (one file instead of a 256-shard scan) and folds in loose
  /// entries written since the last compact; a key present both packed
  /// and loose (compaction crash window) is listed once.
  static std::vector<FileInfo> ls(const std::string& dir);

  /// Deletes entries older than `max_age_days` (and any entry that fails
  /// validation), loose and packed alike — dropping packed entries
  /// rewrites the surviving records into a fresh pack + manifest, so the
  /// manifest never points at pruned data. Returns entries removed.
  static std::size_t prune(const std::string& dir, double max_age_days);

  /// Deletes every cache entry — loose files, pack segments, manifest,
  /// hit log and empty shard directories. Returns entries removed.
  static std::size_t clear(const std::string& dir);

 private:
  std::string entry_path(const ScenarioKey& key) const;

  /// Opens the pack set on first use (one manifest read + mmap per
  /// process). Caller holds mutex_.
  void ensure_packs_locked();
  /// Re-opens the pack set iff the manifest changed on disk (a concurrent
  /// `cache compact`). Called only after a full miss, so the stat cost
  /// never touches the warm path. Returns true when a new set was loaded.
  bool reopen_packs_if_changed_locked();
  /// Decodes `rec` out of the mapping and logs the hit (no promotion).
  std::optional<Entry> try_pack_locked(const PackedRecord& rec,
                                       const ScenarioKey& key);
  /// Reads + decodes the loose file, promotes and counts the hit.
  std::optional<Entry> try_loose_locked(const ScenarioKey& key);

  std::string dir_;
  mutable std::mutex mutex_;
  /// put() inserts and loose hits promote; pack hits never land here.
  std::map<ScenarioKey, Entry> memory_;
  std::optional<PackSet> packs_;
  bool packs_probed_ = false;
  StoreCounters counters_;
};

}  // namespace nidkit::cache
