#include "harness/stability.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "harness/cached_fanout.hpp"
#include "obs/obs.hpp"

namespace nidkit::harness {

namespace {

/// Mined relation sets for every seed — one cache-aware fan-out over the
/// flattened (seed × topology) scenario list, then per-seed unions in
/// canonical topology order, matching the serial per-seed loop
/// bit-for-bit. The per-scenario keys are identical to the audit
/// pipeline's, so a stability report over audited settings replays the
/// audit's cached scenarios instead of re-simulating them.
std::vector<mining::RelationSet> mine_per_seed(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme, ExecReport* exec) {
  const mining::CausalMiner miner(config.miner_config());

  std::vector<CachedJob> jobs;
  for (const auto seed : config.seeds) {
    for (const auto& spec : config.topologies) {
      Scenario s = config.scenario_for(spec, seed);
      s.ospf_profile = profile;
      jobs.push_back(CachedJob{std::move(s),
                               profile.name + "/" + spec.name() + "/s" +
                                   std::to_string(seed),
                               config.miner_config()});
    }
  }

  std::optional<cache::Store> store;
  if (!config.cache_dir.empty()) store.emplace(config.cache_dir);
  auto entries = run_cached(
      jobs, config.jobs, store ? &*store : nullptr,
      cache::PayloadKind::kMinedRelations, scheme.name,
      [&](const CachedJob& job) {
        obs::Span scenario_span("scenario", job.label);
        cache::Entry entry;
        entry.kind = cache::PayloadKind::kMinedRelations;
        {
          obs::Span span("simulate", job.label);
          const ScenarioResult run = run_scenario(job.scenario);
          entry.summary = summarize(run);
          entry.metrics = run.metrics;
          entry.coverage = run.coverage;
          span.finish();
          obs::Span mine_span("mine", job.label);
          entry.relations = miner.mine(run.log, scheme);
        }
        return entry;
      },
      exec);

  std::vector<mining::RelationSet> per_seed(config.seeds.size());
  std::size_t next = 0;
  for (std::size_t s = 0; s < config.seeds.size(); ++s)
    for (std::size_t t = 0; t < config.topologies.size(); ++t)
      per_seed[s].merge(entries[next++].relations);
  return per_seed;
}

}  // namespace

std::vector<CellStability> ospf_relation_stability(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme, ExecReport* exec) {
  using Key = std::pair<mining::RelationDirection, mining::RelationCell>;
  std::map<Key, CellStability> acc;

  for (const auto& set : mine_per_seed(profile, config, scheme, exec)) {
    for (const auto dir : {mining::RelationDirection::kSendToRecv,
                           mining::RelationDirection::kRecvToSend}) {
      for (const auto& [cell, stats] : set.cells(dir)) {
        auto& entry = acc[{dir, cell}];
        entry.direction = dir;
        entry.cell = cell;
        ++entry.seeds_seen;
        entry.total_count += stats.count;
      }
    }
  }

  std::vector<CellStability> out;
  out.reserve(acc.size());
  for (auto& [key, entry] : acc) {
    entry.seeds_total = config.seeds.size();
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const CellStability& a, const CellStability& b) {
              if (a.seeds_seen != b.seeds_seen)
                return a.seeds_seen > b.seeds_seen;
              if (a.total_count != b.total_count)
                return a.total_count > b.total_count;
              if (a.direction != b.direction)
                return a.direction < b.direction;
              return a.cell < b.cell;
            });
  return out;
}

mining::RelationSet stable_relations(const ospf::BehaviorProfile& profile,
                                     const ExperimentConfig& config,
                                     const mining::KeyScheme& scheme,
                                     double min_fraction) {
  const auto stability = ospf_relation_stability(profile, config, scheme);
  mining::RelationSet out;
  for (const auto& s : stability) {
    if (s.fraction() + 1e-9 < min_fraction) continue;
    out.add(s.direction, s.cell, SimTime{0}, 0, 0);
  }
  return out;
}

}  // namespace nidkit::harness
