#include "harness/stability.hpp"

#include <algorithm>
#include <map>

namespace nidkit::harness {

namespace {

/// Mined relation set for one seed (union over the config's topologies).
mining::RelationSet mine_one_seed(const ospf::BehaviorProfile& profile,
                                  const ExperimentConfig& config,
                                  const mining::KeyScheme& scheme,
                                  std::uint64_t seed) {
  mining::CausalMiner miner(config.miner_config());
  mining::RelationSet out;
  for (const auto& spec : config.topologies) {
    Scenario s = config.scenario_for(spec, seed);
    s.ospf_profile = profile;
    const ScenarioResult run = run_scenario(s);
    out.merge(miner.mine(run.log, scheme));
  }
  return out;
}

}  // namespace

std::vector<CellStability> ospf_relation_stability(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme) {
  using Key = std::pair<mining::RelationDirection, mining::RelationCell>;
  std::map<Key, CellStability> acc;

  for (const auto seed : config.seeds) {
    const auto set = mine_one_seed(profile, config, scheme, seed);
    for (const auto dir : {mining::RelationDirection::kSendToRecv,
                           mining::RelationDirection::kRecvToSend}) {
      for (const auto& [cell, stats] : set.cells(dir)) {
        auto& entry = acc[{dir, cell}];
        entry.direction = dir;
        entry.cell = cell;
        ++entry.seeds_seen;
        entry.total_count += stats.count;
      }
    }
  }

  std::vector<CellStability> out;
  out.reserve(acc.size());
  for (auto& [key, entry] : acc) {
    entry.seeds_total = config.seeds.size();
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const CellStability& a, const CellStability& b) {
              if (a.seeds_seen != b.seeds_seen)
                return a.seeds_seen > b.seeds_seen;
              if (a.total_count != b.total_count)
                return a.total_count > b.total_count;
              if (a.direction != b.direction)
                return a.direction < b.direction;
              return a.cell < b.cell;
            });
  return out;
}

mining::RelationSet stable_relations(const ospf::BehaviorProfile& profile,
                                     const ExperimentConfig& config,
                                     const mining::KeyScheme& scheme,
                                     double min_fraction) {
  const auto stability = ospf_relation_stability(profile, config, scheme);
  mining::RelationSet out;
  for (const auto& s : stability) {
    if (s.fraction() + 1e-9 < min_fraction) continue;
    out.add(s.direction, s.cell, SimTime{0}, 0, 0);
  }
  return out;
}

}  // namespace nidkit::harness
