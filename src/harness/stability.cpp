#include "harness/stability.hpp"

#include <algorithm>
#include <map>

namespace nidkit::harness {

namespace {

/// Mined relation sets for every seed — one fan-out over the flattened
/// (seed × topology) scenario list, then per-seed unions in canonical
/// topology order, matching the serial per-seed loop bit-for-bit.
std::vector<mining::RelationSet> mine_per_seed(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme) {
  const mining::CausalMiner miner(config.miner_config());

  std::vector<Scenario> scenarios;
  std::vector<std::string> labels;
  for (const auto seed : config.seeds) {
    for (const auto& spec : config.topologies) {
      Scenario s = config.scenario_for(spec, seed);
      s.ospf_profile = profile;
      scenarios.push_back(std::move(s));
      labels.push_back(profile.name + "/" + spec.name() + "/s" +
                       std::to_string(seed));
    }
  }

  ParallelExecutor executor(config.jobs);
  auto sets =
      executor.run_indexed(scenarios.size(), labels, [&](std::size_t i) {
        const ScenarioResult run = run_scenario(scenarios[i]);
        return miner.mine(run.log, scheme);
      });

  std::vector<mining::RelationSet> per_seed(config.seeds.size());
  std::size_t next = 0;
  for (std::size_t s = 0; s < config.seeds.size(); ++s)
    for (std::size_t t = 0; t < config.topologies.size(); ++t)
      per_seed[s].merge(sets[next++]);
  return per_seed;
}

}  // namespace

std::vector<CellStability> ospf_relation_stability(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme) {
  using Key = std::pair<mining::RelationDirection, mining::RelationCell>;
  std::map<Key, CellStability> acc;

  for (const auto& set : mine_per_seed(profile, config, scheme)) {
    for (const auto dir : {mining::RelationDirection::kSendToRecv,
                           mining::RelationDirection::kRecvToSend}) {
      for (const auto& [cell, stats] : set.cells(dir)) {
        auto& entry = acc[{dir, cell}];
        entry.direction = dir;
        entry.cell = cell;
        ++entry.seeds_seen;
        entry.total_count += stats.count;
      }
    }
  }

  std::vector<CellStability> out;
  out.reserve(acc.size());
  for (auto& [key, entry] : acc) {
    entry.seeds_total = config.seeds.size();
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const CellStability& a, const CellStability& b) {
              if (a.seeds_seen != b.seeds_seen)
                return a.seeds_seen > b.seeds_seen;
              if (a.total_count != b.total_count)
                return a.total_count > b.total_count;
              if (a.direction != b.direction)
                return a.direction < b.direction;
              return a.cell < b.cell;
            });
  return out;
}

mining::RelationSet stable_relations(const ospf::BehaviorProfile& profile,
                                     const ExperimentConfig& config,
                                     const mining::KeyScheme& scheme,
                                     double min_fraction) {
  const auto stability = ospf_relation_stability(profile, config, scheme);
  mining::RelationSet out;
  for (const auto& s : stability) {
    if (s.fraction() + 1e-9 < min_fraction) continue;
    out.add(s.direction, s.cell, SimTime{0}, 0, 0);
  }
  return out;
}

}  // namespace nidkit::harness
