// Cache-aware scenario fan-out.
//
// The bridge between the parallel executor and the result cache, shared by
// every experiment entry point (mine_*/audit_*/tdelay_sweep/stability).
// Given a canonical job list it:
//
//   1. derives each job's content-addressed ScenarioKey;
//   2. serves cache hits without touching the executor;
//   3. collapses in-flight duplicate keys — a key appearing several times
//      in one fan-out is computed once and its result fanned in to every
//      duplicate (the serial path would recompute; the results are
//      identical by the determinism contract, so dedup is invisible);
//   4. fans only the remaining misses out to the worker pool, stores each
//      computed entry (atomic write, see cache::Store), and returns all
//      results in canonical job order.
//
// With no store configured it degenerates to the plain executor fan-out.
// Hit/miss/dedup/store counts accumulate into the ExecReport, so --stats
// exposes cache effectiveness without perturbing report determinism.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/store.hpp"
#include "harness/parallel.hpp"
#include "harness/scenario.hpp"

namespace nidkit::harness {

/// One cacheable unit of work. The miner config rides along because it is
/// part of the key and may vary per job (a TDelay sweep fans out scenarios
/// with per-point miner thresholds in a single batch).
struct CachedJob {
  Scenario scenario;
  std::string label;  ///< telemetry label, e.g. "frr/mesh-5/s2"
  mining::MinerConfig miner;
};

/// Runs every job (or fetches it), returning entries in canonical job
/// order. `compute` must be a pure function of the job — it runs on worker
/// threads for misses only. `store` may be null (caching disabled).
std::vector<cache::Entry> run_cached(
    const std::vector<CachedJob>& jobs, std::size_t workers,
    cache::Store* store, cache::PayloadKind kind, std::string_view scheme_id,
    const std::function<cache::Entry(const CachedJob&)>& compute,
    ExecReport* exec);

/// Snapshot of a finished run's health statistics for the cached entry.
cache::ScenarioSummary summarize(const ScenarioResult& run);

}  // namespace nidkit::harness
