// Scenario runner: one emulated network, one implementation, one topology.
//
// This is the equivalent of the paper's "small-scale network running a
// single implementation inside Docker, delayed with Pumba, captured with
// tcpdump": it wires up the simulator, topology, chaos delay, routers and
// trace log, runs for a configured duration, and hands back the trace plus
// convergence/health statistics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bgp/bgp_router.hpp"
#include "cov/cov.hpp"
#include "netsim/chaos.hpp"
#include "obs/obs.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "ospf/router.hpp"
#include "rip/rip_router.hpp"
#include "topo/topo.hpp"
#include "trace/trace.hpp"

namespace nidkit::harness {

using namespace std::chrono_literals;

/// Which protocol the network runs.
enum class Protocol { kOspf, kRip, kBgp };

struct Scenario {
  Protocol protocol = Protocol::kOspf;
  topo::Spec topology{topo::Kind::kLinear, 2};

  /// OSPF behaviour profile for every router in the network (the paper
  /// runs one implementation per network).
  ospf::BehaviorProfile ospf_profile;
  /// RIP behaviour profile (protocol == kRip).
  rip::RipProfile rip_profile;
  /// BGP behaviour profile (protocol == kBgp).
  bgp::BgpProfile bgp_profile;
  /// BGP workload: the AS_PATH prepend length of the long-path
  /// announcement injected at the first churn time (the 2009-incident
  /// stimulus). 0 disables it.
  std::size_t bgp_longpath_prepend = 120;

  /// The injected per-interface one-way delay (the paper's TDelay).
  SimDuration tdelay = 900ms;
  /// Uniform extra delay in [0, jitter] modeling RTT/processing variance.
  SimDuration link_jitter = 10ms;
  /// Frame loss probability per segment (containers under load do drop
  /// packets; loss also exercises the retransmission machinery).
  double link_loss = 0.002;
  SimDuration duration = 180s;
  std::uint64_t seed = 1;

  /// Shortened LSRefreshTime so sequence numbers advance within the run
  /// (0 keeps the profile's default of 30 min, i.e. refresh-free runs).
  SimDuration lsa_refresh = 0s;

  /// Workload churn: routers originate external LSAs (OSPF) or extra
  /// prefixes (RIP) at these times, creating LSDB/table changes mid-run.
  std::vector<SimTime> churn_times = {60s, 110s};

  /// Record the observing router's max neighbor FSM state on every packet
  /// event (needed by the state-conditioned key scheme).
  bool state_probe = true;

  /// Keep raw wire bytes in each trace record. On by default so direct
  /// scenario runs can dump/save/pcap-export their traces; the audit and
  /// sweep pipelines turn it off (digests are all the miner reads) unless
  /// the user opts back in with --keep-bytes.
  bool keep_bytes = true;
};

/// Everything a run produces. Routers and network are torn down; the trace
/// and summary statistics survive.
struct ScenarioResult {
  trace::TraceLog log;
  std::size_t routers = 0;
  std::size_t segments = 0;
  /// Sum of Full adjacencies over all routers at the end of the run
  /// (OSPF; each adjacency is counted from both ends).
  std::size_t full_adjacencies = 0;
  /// True when every router pair expected to be adjacent reached Full.
  bool converged = false;
  /// First simulation instant at which the expected adjacency count was
  /// reached (OSPF; sampled at 1 s granularity). -1 s if never.
  SimTime convergence_time{-1s};
  /// Routers' route tables agreed pairwise on prefix->cost at the end.
  bool routes_consistent = false;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  ospf::Router::Stats ospf_totals;
  rip::RipRouter::Stats rip_totals;
  bgp::BgpRouter::Stats bgp_totals;
  /// Deterministic per-scenario metric deltas (simulated-time domain).
  /// Always collected — it is cheap, end-of-run bookkeeping — so cached
  /// results can replay their metrics on a warm run. Merged into the
  /// global obs::Registry in canonical job order by the fan-out layer.
  obs::ScenarioMetrics metrics;
  /// Canonical behavioral-coverage feature set. Like `metrics`, always
  /// collected (cache entries never depend on reporting flags) and merged
  /// into the global cov::CoverageMap in canonical job order.
  cov::CoverageVector coverage;
};

class Workspace;

/// Runs one scenario to completion. Deterministic in (scenario, seed).
/// Uses the calling thread's Workspace (see workspace.hpp), so
/// back-to-back scenarios on one thread reuse simulator/network/router
/// storage — with output byte-identical to a fresh construction.
ScenarioResult run_scenario(const Scenario& scenario);

/// Same, on an explicit workspace (reset()s it first). Exposed for tests
/// and benchmarks that manage workspace lifetime themselves.
ScenarioResult run_scenario(const Scenario& scenario, Workspace& ws);

/// Expected number of Full adjacency endpoints for a topology (2 per
/// p2p link; LAN: 2*(n-1) DR-centric pairs... computed per spec).
std::size_t expected_adjacency_endpoints(const topo::Spec& spec);

}  // namespace nidkit::harness
