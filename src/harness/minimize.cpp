#include "harness/minimize.hpp"

#include <map>
#include <set>
#include <utility>

namespace nidkit::harness {

namespace {

bool valid_spec(topo::Kind kind, std::size_t routers) {
  if (routers < 2) return false;
  if (kind == topo::Kind::kRing && routers < 3) return false;
  return true;
}

std::string ms_string(SimDuration d) {
  return std::to_string(d.count() / 1000) + "ms";
}

}  // namespace

std::string shrink_signature(const Scenario& s) {
  std::string sig = "topo=" + s.topology.name();
  sig += ";churn=";
  for (std::size_t i = 0; i < s.churn_times.size(); ++i) {
    if (i) sig += ',';
    sig += std::to_string(s.churn_times[i].count());
  }
  sig += ";seed=" + std::to_string(s.seed);
  sig += ";td=" + std::to_string(s.tdelay.count());
  return sig;
}

std::vector<ShrinkCandidate> shrink_candidates(const Scenario& s) {
  std::vector<ShrinkCandidate> out;
  std::set<std::string> seen;
  seen.insert(shrink_signature(s));
  auto push = [&](Scenario c, const char* phase, std::string action) {
    if (!seen.insert(shrink_signature(c)).second) return;
    out.push_back(ShrinkCandidate{std::move(c), phase, std::move(action)});
  };
  auto with_spec = [&](topo::Spec spec) {
    Scenario c = s;
    c.topology = spec;
    return c;
  };
  auto topo_action = [&](const topo::Spec& to) {
    return "topology " + s.topology.name() + " -> " + to.name();
  };

  // Topology, aggressive jump first: straight to the 2-router chain, then
  // one router fewer, then the same router count on plain p2p links.
  const topo::Spec linear2{topo::Kind::kLinear, 2};
  if (!(s.topology.kind == topo::Kind::kLinear && s.topology.routers == 2))
    push(with_spec(linear2), "topology", topo_action(linear2));
  if (s.topology.routers >= 3 &&
      valid_spec(s.topology.kind, s.topology.routers - 1)) {
    const topo::Spec spec{s.topology.kind, s.topology.routers - 1};
    push(with_spec(spec), "topology", topo_action(spec));
  }
  if (s.topology.kind != topo::Kind::kLinear) {
    const topo::Spec spec{topo::Kind::kLinear, s.topology.routers};
    push(with_spec(spec), "topology", topo_action(spec));
  }

  // Churn (the chaos/workload schedule): all events at once, then each
  // single event.
  if (s.churn_times.size() >= 2) {
    Scenario c = s;
    c.churn_times.clear();
    push(std::move(c), "churn",
         "drop all churn (" + std::to_string(s.churn_times.size()) +
             " events)");
  }
  for (std::size_t i = 0; i < s.churn_times.size(); ++i) {
    Scenario c = s;
    c.churn_times.erase(c.churn_times.begin() +
                        static_cast<std::ptrdiff_t>(i));
    push(std::move(c), "churn",
         "drop churn[" + std::to_string(i) + "] @" +
             ms_string(s.churn_times[i]));
  }

  // Seed, bisected toward 1.
  if (s.seed > 1) {
    Scenario c = s;
    c.seed = 1;
    push(std::move(c), "seed",
         "seed " + std::to_string(s.seed) + " -> 1");
  }
  if (s.seed / 2 > 1) {
    Scenario c = s;
    c.seed = s.seed / 2;
    push(std::move(c), "seed",
         "seed " + std::to_string(s.seed) + " -> " +
             std::to_string(s.seed / 2));
  }

  // TDelay, halved to whole-millisecond values (so the minimal scenario
  // stays expressible as --tdelay-ms) with a 100 ms floor — below that the
  // 2×TDelay mining window collapses into protocol processing noise.
  if (s.tdelay >= SimDuration{std::chrono::milliseconds{200}}) {
    Scenario c = s;
    c.tdelay = SimDuration{(s.tdelay.count() / 2 / 1000) * 1000};
    push(std::move(c), "tdelay",
         "tdelay " + ms_string(s.tdelay) + " -> " + ms_string(c.tdelay));
  }

  return out;
}

MinimizeResult minimize_scenario(const Scenario& start,
                                 const MinimizeConfig& config,
                                 const BatchOracle& oracle) {
  MinimizeResult out;
  out.minimal = start;

  // Oracle memo: candidate signature -> verdict. Probing each distinct
  // scenario at most once keeps the probe count deterministic and the
  // loop convergent (a refuted candidate regenerated from a later,
  // smaller scenario is rejected from memory).
  std::map<std::string, bool> memo;

  bool progressed = true;
  while (progressed) {
    progressed = false;
    const auto cands = shrink_candidates(out.minimal);

    // Walk candidates in canonical order, collecting the ones that need a
    // fresh probe. The round stops early when the budget cannot cover the
    // next fresh probe — candidates past the cut are not considered at
    // all, so probe accounting is independent of oracle fan-out.
    std::vector<std::size_t> considered;
    std::vector<std::size_t> to_probe;
    bool round_truncated = false;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!memo.count(shrink_signature(cands[i].scenario))) {
        if (out.probes + to_probe.size() + 1 > config.max_probes) {
          round_truncated = true;
          out.budget_exhausted = true;
          break;
        }
        to_probe.push_back(i);
      }
      considered.push_back(i);
    }

    if (!to_probe.empty()) {
      std::vector<Scenario> batch;
      batch.reserve(to_probe.size());
      for (const auto i : to_probe) batch.push_back(cands[i].scenario);
      const auto verdicts = oracle(batch);
      out.probes += to_probe.size();
      for (std::size_t k = 0; k < to_probe.size(); ++k)
        memo[shrink_signature(cands[to_probe[k]].scenario)] =
            k < verdicts.size() && verdicts[k];
    }

    // Trace every considered candidate, then keep the canonically first
    // reproducing one. Probing the whole batch before selecting is what
    // makes the trace identical for any oracle worker count.
    std::size_t accepted = considered.size();
    const std::size_t base = out.trace.size();
    for (std::size_t j = 0; j < considered.size(); ++j) {
      const auto& cand = cands[considered[j]];
      const bool reproduced = memo.at(shrink_signature(cand.scenario));
      out.trace.push_back(
          ShrinkStep{cand.phase, cand.action, reproduced, false});
      if (accepted == considered.size() && reproduced) accepted = j;
    }
    if (accepted < considered.size()) {
      out.trace[base + accepted].kept = true;
      out.minimal = cands[considered[accepted]].scenario;
      progressed = true;
    } else if (!round_truncated) {
      // Every single-step reduction of the final scenario was probed (this
      // round or a previous one) and refuted: 1-minimal.
      out.fixpoint = true;
    }
  }
  return out;
}

}  // namespace nidkit::harness
