#include "harness/workspace.hpp"

namespace nidkit::harness {

Workspace& Workspace::of_current_thread() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace nidkit::harness
