#include "harness/experiment.hpp"

#include <optional>
#include <utility>

#include "harness/cached_fanout.hpp"
#include "obs/obs.hpp"

namespace nidkit::harness {

// Copy-through guard for ExperimentConfig::scenario_for. If this trips you
// added a field to ExperimentConfig: either copy it into the Scenario in
// scenario_for (and extend Config.ScenarioForCopiesExperimentKnobs), or —
// for executor-level knobs that do not describe a single scenario, like
// `jobs` and `cache_dir` — document the exemption there. Then update the
// expected size.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(ExperimentConfig) == 176,
              "ExperimentConfig grew: thread the new knob through "
              "scenario_for (or exempt it) and update this guard");
#endif

namespace {

std::string job_label(const std::string& impl, const topo::Spec& spec,
                      std::uint64_t seed) {
  return impl + "/" + spec.name() + "/s" + std::to_string(seed);
}

/// Runs every job through the cache-aware fan-out and mines each computed
/// trace under `scheme`; hits skip simulate+mine entirely. Returned sets
/// are in canonical job order; merging them left-to-right reproduces the
/// serial loop nest exactly (cached sets decode bit-identically, see
/// relation_codec.hpp).
std::vector<mining::RelationSet> mine_jobs(const std::vector<CachedJob>& jobs,
                                           const ExperimentConfig& config,
                                           const mining::KeyScheme& scheme,
                                           ExecReport* exec,
                                           cache::Store* store) {
  const mining::CausalMiner miner(config.miner_config());
  auto entries = run_cached(
      jobs, config.jobs, store, cache::PayloadKind::kMinedRelations,
      scheme.name,
      [&](const CachedJob& job) {
        obs::Span scenario_span("scenario", job.label);
        cache::Entry entry;
        entry.kind = cache::PayloadKind::kMinedRelations;
        {
          obs::Span span("simulate", job.label);
          const ScenarioResult run = run_scenario(job.scenario);
          entry.summary = summarize(run);
          entry.metrics = run.metrics;
          entry.coverage = run.coverage;
          span.finish();
          obs::Span mine_span("mine", job.label);
          entry.relations = miner.mine(run.log, scheme);
        }
        return entry;
      },
      exec);
  std::vector<mining::RelationSet> sets;
  sets.reserve(entries.size());
  for (auto& e : entries) sets.push_back(std::move(e.relations));
  return sets;
}

std::vector<mining::RelationSet> mine_jobs(const std::vector<CachedJob>& jobs,
                                           const ExperimentConfig& config,
                                           const mining::KeyScheme& scheme,
                                           ExecReport* exec) {
  // Store is neither movable nor copyable (it owns a mutex), so it is
  // built in place when a cache directory is configured.
  std::optional<cache::Store> store;
  if (!config.cache_dir.empty()) store.emplace(config.cache_dir);
  return mine_jobs(jobs, config, scheme, exec, store ? &*store : nullptr);
}

/// (topology × seed) job list for one implementation, in the serial
/// loop-nest order (topologies outer, seeds inner).
template <typename Setup>
std::vector<CachedJob> scenario_jobs(const ExperimentConfig& config,
                                     const std::string& impl_name,
                                     Setup&& setup) {
  std::vector<CachedJob> jobs;
  jobs.reserve(config.topologies.size() * config.seeds.size());
  for (const auto& spec : config.topologies) {
    for (const auto seed : config.seeds) {
      Scenario s = config.scenario_for(spec, seed);
      setup(s);
      jobs.push_back(CachedJob{std::move(s), job_label(impl_name, spec, seed),
                               config.miner_config()});
    }
  }
  return jobs;
}

mining::RelationSet merge_in_order(std::vector<mining::RelationSet> sets) {
  obs::Span span("merge", "");
  mining::RelationSet out;
  for (const auto& set : sets) out.merge(set);
  return out;
}

/// Shared audit pipeline: one fan-out over every (implementation,
/// topology, seed) scenario, then per-implementation merges in canonical
/// order and the pairwise comparison.
template <typename Profile, typename Setup>
AuditResult audit_impls(const std::vector<Profile>& profiles,
                        const ExperimentConfig& config,
                        const mining::KeyScheme& scheme, Setup&& setup) {
  AuditResult result;
  std::vector<CachedJob> jobs;
  for (const auto& p : profiles) {
    result.names.push_back(p.name);
    auto impl_jobs =
        scenario_jobs(config, p.name, [&](Scenario& s) { setup(s, p); });
    jobs.insert(jobs.end(), std::make_move_iterator(impl_jobs.begin()),
                std::make_move_iterator(impl_jobs.end()));
  }

  auto sets = mine_jobs(jobs, config, scheme, &result.exec);

  const std::size_t per_impl = config.topologies.size() * config.seeds.size();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    obs::Span span("merge", profiles[p].name);
    mining::RelationSet merged;
    for (std::size_t i = 0; i < per_impl; ++i)
      merged.merge(sets[p * per_impl + i]);
    result.by_impl.emplace(profiles[p].name, std::move(merged));
  }
  result.discrepancies = detect::compare_all(result.named());
  return result;
}

}  // namespace

mining::RelationSet mine_ospf(const ospf::BehaviorProfile& profile,
                              const ExperimentConfig& config,
                              const mining::KeyScheme& scheme,
                              ExecReport* exec) {
  auto jobs = scenario_jobs(config, profile.name, [&](Scenario& s) {
    s.protocol = Protocol::kOspf;
    s.ospf_profile = profile;
  });
  return merge_in_order(mine_jobs(jobs, config, scheme, exec));
}

mining::RelationSet mine_rip(const rip::RipProfile& profile,
                             const ExperimentConfig& config,
                             const mining::KeyScheme& scheme,
                             ExecReport* exec) {
  auto jobs = scenario_jobs(config, profile.name, [&](Scenario& s) {
    s.protocol = Protocol::kRip;
    s.rip_profile = profile;
  });
  return merge_in_order(mine_jobs(jobs, config, scheme, exec));
}

mining::RelationSet mine_bgp(const bgp::BgpProfile& profile,
                             const ExperimentConfig& config,
                             const mining::KeyScheme& scheme,
                             ExecReport* exec) {
  auto jobs = scenario_jobs(config, profile.name, [&](Scenario& s) {
    s.protocol = Protocol::kBgp;
    s.bgp_profile = profile;
  });
  return merge_in_order(mine_jobs(jobs, config, scheme, exec));
}

std::vector<detect::NamedRelations> AuditResult::named() const {
  std::vector<detect::NamedRelations> out;
  for (const auto& name : names)
    out.push_back(detect::NamedRelations{name, &by_impl.at(name)});
  return out;
}

AuditResult audit_ospf(const std::vector<ospf::BehaviorProfile>& profiles,
                       const ExperimentConfig& config,
                       const mining::KeyScheme& scheme) {
  return audit_impls(profiles, config, scheme,
                     [](Scenario& s, const ospf::BehaviorProfile& p) {
                       s.protocol = Protocol::kOspf;
                       s.ospf_profile = p;
                     });
}

AuditResult audit_rip(const std::vector<rip::RipProfile>& profiles,
                      const ExperimentConfig& config,
                      const mining::KeyScheme& scheme) {
  return audit_impls(profiles, config, scheme,
                     [](Scenario& s, const rip::RipProfile& p) {
                       s.protocol = Protocol::kRip;
                       s.rip_profile = p;
                     });
}

AuditResult audit_bgp(const std::vector<bgp::BgpProfile>& profiles,
                      const ExperimentConfig& config,
                      const mining::KeyScheme& scheme) {
  return audit_impls(profiles, config, scheme,
                     [](Scenario& s, const bgp::BgpProfile& p) {
                       s.protocol = Protocol::kBgp;
                       s.bgp_profile = p;
                     });
}

std::vector<SweepPoint> tdelay_sweep(const ospf::BehaviorProfile& profile,
                                     const ExperimentConfig& base,
                                     const std::vector<SimDuration>& tdelays,
                                     const mining::KeyScheme& scheme,
                                     ExecReport* exec) {
  // Flatten (tdelay × topology × seed) into one fan-out so short TDelay
  // points do not leave workers idle while long ones finish. Each job
  // carries its point's miner config — it is part of the cache key, so a
  // re-run of a sweep (or a different sweep sharing points) hits.
  std::vector<CachedJob> jobs;
  for (const auto tdelay : tdelays) {
    ExperimentConfig c = base;
    c.tdelay = tdelay;
    for (const auto& spec : c.topologies) {
      for (const auto seed : c.seeds) {
        Scenario s = c.scenario_for(spec, seed);
        s.ospf_profile = profile;
        jobs.push_back(
            CachedJob{std::move(s),
                      std::to_string(tdelay.count() / 1000) + "ms/" +
                          job_label(profile.name, spec, seed),
                      c.miner_config()});
      }
    }
  }

  std::optional<cache::Store> store;
  if (!base.cache_dir.empty()) store.emplace(base.cache_dir);
  // Per-scenario integer partials (cache::SweepStats); accumulated per
  // sweep point in canonical order, so integer totals (and the ratios
  // derived from them) match the serial nest bit-for-bit whether each
  // partial was computed or replayed from the cache.
  auto entries = run_cached(
      jobs, base.jobs, store ? &*store : nullptr,
      cache::PayloadKind::kSweepStats, scheme.name,
      [&](const CachedJob& job) {
        obs::Span scenario_span("scenario", job.label);
        const mining::CausalMiner miner(job.miner);
        obs::Span sim_span("simulate", job.label);
        const ScenarioResult run = run_scenario(job.scenario);
        sim_span.finish();
        obs::Span mine_span("mine", job.label);
        const auto pairs = miner.mine_pairs(run.log);
        const auto acc = mining::score_pairs(run.log, pairs);
        const auto set = miner.classify(run.log, pairs, scheme);
        const auto cells = mining::score_cells(run.log, set, scheme);
        mine_span.finish();
        cache::Entry entry;
        entry.kind = cache::PayloadKind::kSweepStats;
        entry.summary = summarize(run);
        entry.metrics = run.metrics;
        entry.coverage = run.coverage;
        entry.sweep.mined_pairs = acc.mined;
        entry.sweep.truth_pairs = acc.truth;
        entry.sweep.correct_pairs = acc.correct;
        entry.sweep.mined_cells = cells.mined_cells;
        entry.sweep.unobserved_cells = cells.unobserved;
        entry.sweep.spurious_cells = cells.spurious;
        return entry;
      },
      exec);

  const std::size_t per_point = base.topologies.size() * base.seeds.size();
  std::vector<SweepPoint> out;
  out.reserve(tdelays.size());
  for (std::size_t t = 0; t < tdelays.size(); ++t) {
    SweepPoint point;
    point.tdelay = tdelays[t];
    std::uint64_t mined_pairs = 0;
    std::uint64_t truth_pairs = 0;
    std::uint64_t correct_pairs = 0;
    for (std::size_t i = 0; i < per_point; ++i) {
      const auto& p = entries[t * per_point + i].sweep;
      mined_pairs += p.mined_pairs;
      truth_pairs += p.truth_pairs;
      correct_pairs += p.correct_pairs;
      point.mined_cells += p.mined_cells;
      point.unobserved_cells += p.unobserved_cells;
      point.spurious_cells += p.spurious_cells;
    }
    point.precision =
        mined_pairs == 0 ? 1.0
                         : static_cast<double>(correct_pairs) / mined_pairs;
    point.recall = truth_pairs == 0
                       ? 1.0
                       : static_cast<double>(correct_pairs) / truth_pairs;
    out.push_back(point);
  }
  return out;
}

std::vector<ExtensivenessPoint> topology_extensiveness(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme) {
  // All scenarios run in one fan-out; the cumulative union is then built
  // serially topology-by-topology, as the figure requires.
  auto jobs = scenario_jobs(config, profile.name, [&](Scenario& s) {
    s.ospf_profile = profile;
  });
  auto sets = mine_jobs(jobs, config, scheme, nullptr);

  mining::RelationSet cumulative;
  std::vector<ExtensivenessPoint> out;
  std::size_t next = 0;
  for (const auto& spec : config.topologies) {
    const std::size_t before = cumulative.size();
    for (std::size_t s = 0; s < config.seeds.size(); ++s)
      cumulative.merge(sets[next++]);
    out.push_back(ExtensivenessPoint{spec.name(),
                                     cumulative.size() - before,
                                     cumulative.size()});
  }
  return out;
}

}  // namespace nidkit::harness
