#include "harness/experiment.hpp"

namespace nidkit::harness {

mining::RelationSet mine_ospf(const ospf::BehaviorProfile& profile,
                              const ExperimentConfig& config,
                              const mining::KeyScheme& scheme) {
  mining::CausalMiner miner(config.miner_config());
  mining::RelationSet out;
  for (const auto& spec : config.topologies) {
    for (const auto seed : config.seeds) {
      Scenario s = config.scenario_for(spec, seed);
      s.protocol = Protocol::kOspf;
      s.ospf_profile = profile;
      const ScenarioResult run = run_scenario(s);
      out.merge(miner.mine(run.log, scheme));
    }
  }
  return out;
}

mining::RelationSet mine_rip(const rip::RipProfile& profile,
                             const ExperimentConfig& config,
                             const mining::KeyScheme& scheme) {
  mining::CausalMiner miner(config.miner_config());
  mining::RelationSet out;
  for (const auto& spec : config.topologies) {
    for (const auto seed : config.seeds) {
      Scenario s = config.scenario_for(spec, seed);
      s.protocol = Protocol::kRip;
      s.rip_profile = profile;
      const ScenarioResult run = run_scenario(s);
      out.merge(miner.mine(run.log, scheme));
    }
  }
  return out;
}

mining::RelationSet mine_bgp(const bgp::BgpProfile& profile,
                             const ExperimentConfig& config,
                             const mining::KeyScheme& scheme) {
  mining::CausalMiner miner(config.miner_config());
  mining::RelationSet out;
  for (const auto& spec : config.topologies) {
    for (const auto seed : config.seeds) {
      Scenario s = config.scenario_for(spec, seed);
      s.protocol = Protocol::kBgp;
      s.bgp_profile = profile;
      const ScenarioResult run = run_scenario(s);
      out.merge(miner.mine(run.log, scheme));
    }
  }
  return out;
}

std::vector<detect::NamedRelations> AuditResult::named() const {
  std::vector<detect::NamedRelations> out;
  for (const auto& name : names)
    out.push_back(detect::NamedRelations{name, &by_impl.at(name)});
  return out;
}

AuditResult audit_ospf(const std::vector<ospf::BehaviorProfile>& profiles,
                       const ExperimentConfig& config,
                       const mining::KeyScheme& scheme) {
  AuditResult result;
  for (const auto& p : profiles) {
    result.names.push_back(p.name);
    result.by_impl.emplace(p.name, mine_ospf(p, config, scheme));
  }
  result.discrepancies = detect::compare_all(result.named());
  return result;
}

AuditResult audit_rip(const std::vector<rip::RipProfile>& profiles,
                      const ExperimentConfig& config,
                      const mining::KeyScheme& scheme) {
  AuditResult result;
  for (const auto& p : profiles) {
    result.names.push_back(p.name);
    result.by_impl.emplace(p.name, mine_rip(p, config, scheme));
  }
  result.discrepancies = detect::compare_all(result.named());
  return result;
}

AuditResult audit_bgp(const std::vector<bgp::BgpProfile>& profiles,
                      const ExperimentConfig& config,
                      const mining::KeyScheme& scheme) {
  AuditResult result;
  for (const auto& p : profiles) {
    result.names.push_back(p.name);
    result.by_impl.emplace(p.name, mine_bgp(p, config, scheme));
  }
  result.discrepancies = detect::compare_all(result.named());
  return result;
}

std::vector<SweepPoint> tdelay_sweep(const ospf::BehaviorProfile& profile,
                                     const ExperimentConfig& base,
                                     const std::vector<SimDuration>& tdelays,
                                     const mining::KeyScheme& scheme) {
  std::vector<SweepPoint> out;
  for (const auto tdelay : tdelays) {
    ExperimentConfig config = base;
    config.tdelay = tdelay;
    mining::CausalMiner miner(config.miner_config());

    SweepPoint point;
    point.tdelay = tdelay;
    std::size_t mined_pairs = 0;
    std::size_t truth_pairs = 0;
    std::size_t correct_pairs = 0;
    for (const auto& spec : config.topologies) {
      for (const auto seed : config.seeds) {
        Scenario s = config.scenario_for(spec, seed);
        s.ospf_profile = profile;
        const ScenarioResult run = run_scenario(s);
        const auto pairs = miner.mine_pairs(run.log);
        const auto acc = mining::score_pairs(run.log, pairs);
        mined_pairs += acc.mined;
        truth_pairs += acc.truth;
        correct_pairs += acc.correct;
        const auto set = miner.classify(run.log, pairs, scheme);
        const auto cells = mining::score_cells(run.log, set, scheme);
        point.mined_cells += cells.mined_cells;
        point.unobserved_cells += cells.unobserved;
        point.spurious_cells += cells.spurious;
      }
    }
    point.precision =
        mined_pairs == 0 ? 1.0
                         : static_cast<double>(correct_pairs) / mined_pairs;
    point.recall = truth_pairs == 0
                       ? 1.0
                       : static_cast<double>(correct_pairs) / truth_pairs;
    out.push_back(point);
  }
  return out;
}

std::vector<ExtensivenessPoint> topology_extensiveness(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme) {
  mining::CausalMiner miner(config.miner_config());
  mining::RelationSet cumulative;
  std::vector<ExtensivenessPoint> out;
  for (const auto& spec : config.topologies) {
    const std::size_t before = cumulative.size();
    for (const auto seed : config.seeds) {
      Scenario s = config.scenario_for(spec, seed);
      s.ospf_profile = profile;
      const ScenarioResult run = run_scenario(s);
      cumulative.merge(miner.mine(run.log, scheme));
    }
    out.push_back(ExtensivenessPoint{spec.name(),
                                     cumulative.size() - before,
                                     cumulative.size()});
  }
  return out;
}

}  // namespace nidkit::harness
