#include "harness/experiment.hpp"

#include <utility>

namespace nidkit::harness {

// Copy-through guard for ExperimentConfig::scenario_for. If this trips you
// added a field to ExperimentConfig: either copy it into the Scenario in
// scenario_for (and extend Config.ScenarioForCopiesExperimentKnobs), or —
// for executor-level knobs that do not describe a single scenario, like
// `jobs` — document the exemption there. Then update the expected size.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(ExperimentConfig) == 120,
              "ExperimentConfig grew: thread the new knob through "
              "scenario_for (or exempt it) and update this guard");
#endif

namespace {

/// One fanned-out unit of work: a fully-specified scenario plus its
/// human-readable label ("impl/topology/seed") for the telemetry report.
struct ScenarioJob {
  Scenario scenario;
  std::string label;
};

std::string job_label(const std::string& impl, const topo::Spec& spec,
                      std::uint64_t seed) {
  return impl + "/" + spec.name() + "/s" + std::to_string(seed);
}

/// Runs every job on the executor and mines each trace under `scheme`.
/// Returned sets are in canonical job order; merging them left-to-right
/// reproduces the serial loop nest exactly.
std::vector<mining::RelationSet> mine_jobs(
    const std::vector<ScenarioJob>& jobs, const ExperimentConfig& config,
    const mining::KeyScheme& scheme, ExecReport* exec) {
  const mining::CausalMiner miner(config.miner_config());
  std::vector<std::string> labels;
  labels.reserve(jobs.size());
  for (const auto& j : jobs) labels.push_back(j.label);

  ParallelExecutor executor(config.jobs);
  auto sets = executor.run_indexed(jobs.size(), labels, [&](std::size_t i) {
    const ScenarioResult run = run_scenario(jobs[i].scenario);
    return miner.mine(run.log, scheme);
  });
  if (exec) exec->accumulate(executor.report());
  return sets;
}

/// (topology × seed) job list for one implementation, in the serial
/// loop-nest order (topologies outer, seeds inner).
template <typename Setup>
std::vector<ScenarioJob> scenario_jobs(const ExperimentConfig& config,
                                       const std::string& impl_name,
                                       Setup&& setup) {
  std::vector<ScenarioJob> jobs;
  jobs.reserve(config.topologies.size() * config.seeds.size());
  for (const auto& spec : config.topologies) {
    for (const auto seed : config.seeds) {
      Scenario s = config.scenario_for(spec, seed);
      setup(s);
      jobs.push_back(
          ScenarioJob{std::move(s), job_label(impl_name, spec, seed)});
    }
  }
  return jobs;
}

mining::RelationSet merge_in_order(std::vector<mining::RelationSet> sets) {
  mining::RelationSet out;
  for (const auto& set : sets) out.merge(set);
  return out;
}

/// Shared audit pipeline: one fan-out over every (implementation,
/// topology, seed) scenario, then per-implementation merges in canonical
/// order and the pairwise comparison.
template <typename Profile, typename Setup>
AuditResult audit_impls(const std::vector<Profile>& profiles,
                        const ExperimentConfig& config,
                        const mining::KeyScheme& scheme, Setup&& setup) {
  AuditResult result;
  std::vector<ScenarioJob> jobs;
  for (const auto& p : profiles) {
    result.names.push_back(p.name);
    auto impl_jobs =
        scenario_jobs(config, p.name, [&](Scenario& s) { setup(s, p); });
    jobs.insert(jobs.end(), std::make_move_iterator(impl_jobs.begin()),
                std::make_move_iterator(impl_jobs.end()));
  }

  auto sets = mine_jobs(jobs, config, scheme, &result.exec);

  const std::size_t per_impl = config.topologies.size() * config.seeds.size();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    mining::RelationSet merged;
    for (std::size_t i = 0; i < per_impl; ++i)
      merged.merge(sets[p * per_impl + i]);
    result.by_impl.emplace(profiles[p].name, std::move(merged));
  }
  result.discrepancies = detect::compare_all(result.named());
  return result;
}

}  // namespace

mining::RelationSet mine_ospf(const ospf::BehaviorProfile& profile,
                              const ExperimentConfig& config,
                              const mining::KeyScheme& scheme,
                              ExecReport* exec) {
  auto jobs = scenario_jobs(config, profile.name, [&](Scenario& s) {
    s.protocol = Protocol::kOspf;
    s.ospf_profile = profile;
  });
  return merge_in_order(mine_jobs(jobs, config, scheme, exec));
}

mining::RelationSet mine_rip(const rip::RipProfile& profile,
                             const ExperimentConfig& config,
                             const mining::KeyScheme& scheme,
                             ExecReport* exec) {
  auto jobs = scenario_jobs(config, profile.name, [&](Scenario& s) {
    s.protocol = Protocol::kRip;
    s.rip_profile = profile;
  });
  return merge_in_order(mine_jobs(jobs, config, scheme, exec));
}

mining::RelationSet mine_bgp(const bgp::BgpProfile& profile,
                             const ExperimentConfig& config,
                             const mining::KeyScheme& scheme,
                             ExecReport* exec) {
  auto jobs = scenario_jobs(config, profile.name, [&](Scenario& s) {
    s.protocol = Protocol::kBgp;
    s.bgp_profile = profile;
  });
  return merge_in_order(mine_jobs(jobs, config, scheme, exec));
}

std::vector<detect::NamedRelations> AuditResult::named() const {
  std::vector<detect::NamedRelations> out;
  for (const auto& name : names)
    out.push_back(detect::NamedRelations{name, &by_impl.at(name)});
  return out;
}

AuditResult audit_ospf(const std::vector<ospf::BehaviorProfile>& profiles,
                       const ExperimentConfig& config,
                       const mining::KeyScheme& scheme) {
  return audit_impls(profiles, config, scheme,
                     [](Scenario& s, const ospf::BehaviorProfile& p) {
                       s.protocol = Protocol::kOspf;
                       s.ospf_profile = p;
                     });
}

AuditResult audit_rip(const std::vector<rip::RipProfile>& profiles,
                      const ExperimentConfig& config,
                      const mining::KeyScheme& scheme) {
  return audit_impls(profiles, config, scheme,
                     [](Scenario& s, const rip::RipProfile& p) {
                       s.protocol = Protocol::kRip;
                       s.rip_profile = p;
                     });
}

AuditResult audit_bgp(const std::vector<bgp::BgpProfile>& profiles,
                      const ExperimentConfig& config,
                      const mining::KeyScheme& scheme) {
  return audit_impls(profiles, config, scheme,
                     [](Scenario& s, const bgp::BgpProfile& p) {
                       s.protocol = Protocol::kBgp;
                       s.bgp_profile = p;
                     });
}

std::vector<SweepPoint> tdelay_sweep(const ospf::BehaviorProfile& profile,
                                     const ExperimentConfig& base,
                                     const std::vector<SimDuration>& tdelays,
                                     const mining::KeyScheme& scheme) {
  // Per-scenario partial sums; accumulated per sweep point in canonical
  // order, so integer totals (and the ratios derived from them) match the
  // serial nest bit-for-bit.
  struct Partial {
    std::size_t mined_pairs = 0;
    std::size_t truth_pairs = 0;
    std::size_t correct_pairs = 0;
    std::size_t mined_cells = 0;
    std::size_t unobserved = 0;
    std::size_t spurious = 0;
  };

  // Flatten (tdelay × topology × seed) into one fan-out so short TDelay
  // points do not leave workers idle while long ones finish.
  std::vector<ExperimentConfig> configs;
  configs.reserve(tdelays.size());
  for (const auto tdelay : tdelays) {
    ExperimentConfig c = base;
    c.tdelay = tdelay;
    configs.push_back(std::move(c));
  }

  struct SweepJob {
    const ExperimentConfig* config;
    Scenario scenario;
    std::string label;
  };
  std::vector<SweepJob> jobs;
  for (const auto& config : configs) {
    for (const auto& spec : config.topologies) {
      for (const auto seed : config.seeds) {
        Scenario s = config.scenario_for(spec, seed);
        s.ospf_profile = profile;
        jobs.push_back(SweepJob{
            &config, std::move(s),
            std::to_string(config.tdelay.count() / 1000) + "ms/" +
                job_label(profile.name, spec, seed)});
      }
    }
  }

  std::vector<std::string> labels;
  labels.reserve(jobs.size());
  for (const auto& j : jobs) labels.push_back(j.label);

  ParallelExecutor executor(base.jobs);
  auto partials = executor.run_indexed(jobs.size(), labels, [&](std::size_t i) {
    const auto& job = jobs[i];
    const mining::CausalMiner miner(job.config->miner_config());
    const ScenarioResult run = run_scenario(job.scenario);
    const auto pairs = miner.mine_pairs(run.log);
    const auto acc = mining::score_pairs(run.log, pairs);
    const auto set = miner.classify(run.log, pairs, scheme);
    const auto cells = mining::score_cells(run.log, set, scheme);
    Partial p;
    p.mined_pairs = acc.mined;
    p.truth_pairs = acc.truth;
    p.correct_pairs = acc.correct;
    p.mined_cells = cells.mined_cells;
    p.unobserved = cells.unobserved;
    p.spurious = cells.spurious;
    return p;
  });

  const std::size_t per_point =
      base.topologies.size() * base.seeds.size();
  std::vector<SweepPoint> out;
  out.reserve(tdelays.size());
  for (std::size_t t = 0; t < tdelays.size(); ++t) {
    SweepPoint point;
    point.tdelay = tdelays[t];
    std::size_t mined_pairs = 0;
    std::size_t truth_pairs = 0;
    std::size_t correct_pairs = 0;
    for (std::size_t i = 0; i < per_point; ++i) {
      const auto& p = partials[t * per_point + i];
      mined_pairs += p.mined_pairs;
      truth_pairs += p.truth_pairs;
      correct_pairs += p.correct_pairs;
      point.mined_cells += p.mined_cells;
      point.unobserved_cells += p.unobserved;
      point.spurious_cells += p.spurious;
    }
    point.precision =
        mined_pairs == 0 ? 1.0
                         : static_cast<double>(correct_pairs) / mined_pairs;
    point.recall = truth_pairs == 0
                       ? 1.0
                       : static_cast<double>(correct_pairs) / truth_pairs;
    out.push_back(point);
  }
  return out;
}

std::vector<ExtensivenessPoint> topology_extensiveness(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme) {
  // All scenarios run in one fan-out; the cumulative union is then built
  // serially topology-by-topology, as the figure requires.
  auto jobs = scenario_jobs(config, profile.name, [&](Scenario& s) {
    s.ospf_profile = profile;
  });
  auto sets = mine_jobs(jobs, config, scheme, nullptr);

  mining::RelationSet cumulative;
  std::vector<ExtensivenessPoint> out;
  std::size_t next = 0;
  for (const auto& spec : config.topologies) {
    const std::size_t before = cumulative.size();
    for (std::size_t s = 0; s < config.seeds.size(); ++s)
      cumulative.merge(sets[next++]);
    out.push_back(ExtensivenessPoint{spec.name(),
                                     cumulative.size() - before,
                                     cumulative.size()});
  }
  return out;
}

}  // namespace nidkit::harness
