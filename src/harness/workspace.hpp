// Reusable per-worker scenario workspace.
//
// A Workspace owns the heavyweight machinery one scenario needs — the
// simulator (event heap + timer slab), the network (node/segment storage),
// and pooled router fleets — and hands it to run_scenario. reset() between
// scenarios rewinds everything while keeping the allocated storage, so a
// worker batching many scenarios refills the same memory the way the trace
// arena already recycles its pages: after the first (largest) scenario on
// a thread, setup is allocation-free at steady state.
//
// Reuse is invisible in the output by construction: reset() restores
// exactly the state a freshly constructed simulator/network would have
// (clock, sequence numbers, rng streams, subnet/frame-id counters), so a
// scenario run on a warm workspace is byte-identical to one run on a cold
// one — the workspace_test suite and the report-byte-identity CI job hold
// this contract.
#pragma once

#include <cstdint>

#include "bgp/bgp_router.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "ospf/router.hpp"
#include "rip/rip_router.hpp"
#include "util/object_pool.hpp"

namespace nidkit::harness {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Rewinds the workspace for the next scenario: destroys the previous
  /// fleet, then resets the simulator and the network (reseeded). Storage
  /// — event heap, timer slab, node/segment vectors, router slots — is
  /// retained.
  void reset(std::uint64_t seed) {
    // Routers go first: they hold TimerHandles into the simulator and
    // closures registered with the network.
    ospf_routers_.clear();
    rip_routers_.clear();
    bgp_routers_.clear();
    sim_.reset();
    net_.reset(seed);
  }

  netsim::Simulator& sim() { return sim_; }
  netsim::Network& net() { return net_; }
  util::ObjectPool<ospf::Router>& ospf_routers() { return ospf_routers_; }
  util::ObjectPool<rip::RipRouter>& rip_routers() { return rip_routers_; }
  util::ObjectPool<bgp::BgpRouter>& bgp_routers() { return bgp_routers_; }

  /// The calling thread's lazily constructed workspace. Worker threads in
  /// the fan-out layers (and the serial --jobs 1 path) route every
  /// run_scenario through this, so back-to-back scenarios on one thread
  /// reuse the same memory.
  static Workspace& of_current_thread();

 private:
  // Declaration order is destruction-order-critical: pools are destroyed
  // before net_/sim_ (reverse order), so routers die while the network and
  // simulator they reference are still alive.
  netsim::Simulator sim_;
  netsim::Network net_{sim_, 0};
  util::ObjectPool<ospf::Router> ospf_routers_;
  util::ObjectPool<rip::RipRouter> rip_routers_;
  util::ObjectPool<bgp::BgpRouter> bgp_routers_;
};

}  // namespace nidkit::harness
