#include "harness/parallel.hpp"

#include <algorithm>
#include <sstream>

#include "detect/json.hpp"

namespace nidkit::harness {

void ExecReport::accumulate(const ExecReport& other) {
  jobs = std::max(jobs, other.jobs);
  max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
  tasks_run += other.tasks_run;
  wall_ms += other.wall_ms;
  const std::size_t base = tasks.size();
  tasks.insert(tasks.end(), other.tasks.begin(), other.tasks.end());
  for (std::size_t i = base; i < tasks.size(); ++i) tasks[i].index = i;
}

std::string ExecReport::to_json() const {
  std::ostringstream os;
  os << "{\"jobs\":" << jobs << ",\"max_queue_depth\":" << max_queue_depth
     << ",\"tasks_run\":" << tasks_run << ",\"wall_ms\":" << wall_ms
     << ",\"scenarios\":[";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i) os << ",";
    os << "{\"index\":" << tasks[i].index << ",\"label\":\""
       << detect::json_escape(tasks[i].label) << "\",\"wall_ms\":"
       << tasks[i].wall_ms << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace nidkit::harness
