#include "harness/parallel.hpp"

#include <algorithm>
#include <sstream>

#include "detect/json.hpp"

namespace nidkit::harness {

void ExecReport::accumulate(const ExecReport& other) {
  jobs = std::max(jobs, other.jobs);
  max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
  tasks_run += other.tasks_run;
  wall_ms += other.wall_ms;
  cache_enabled = cache_enabled || other.cache_enabled;
  cache_hits += other.cache_hits;
  cache_pack_hits += other.cache_pack_hits;
  cache_loose_hits += other.cache_loose_hits;
  cache_misses += other.cache_misses;
  cache_dedup += other.cache_dedup;
  cache_stores += other.cache_stores;
  cov_enabled = cov_enabled || other.cov_enabled;
  cov_features += other.cov_features;
  cov_novel += other.cov_novel;
  const std::size_t base = tasks.size();
  tasks.insert(tasks.end(), other.tasks.begin(), other.tasks.end());
  for (std::size_t i = base; i < tasks.size(); ++i) tasks[i].index = i;
}

std::string ExecReport::to_json() const {
  std::ostringstream os;
  os << "{\"jobs\":" << jobs << ",\"max_queue_depth\":" << max_queue_depth
     << ",\"tasks_run\":" << tasks_run << ",\"wall_ms\":" << wall_ms;
  if (cache_enabled) {
    os << ",\"cache\":{\"hits\":" << cache_hits << ",\"pack_hits\":"
       << cache_pack_hits << ",\"loose_hits\":" << cache_loose_hits
       << ",\"misses\":" << cache_misses << ",\"in_flight_dedup\":"
       << cache_dedup << ",\"stores\":" << cache_stores << "}";
  }
  if (cov_enabled) {
    os << ",\"coverage\":{\"scenario_features\":" << cov_features
       << ",\"novel\":" << cov_novel << "}";
  }
  if (obs::enabled())
    os << ",\"metrics\":" << obs::Registry::instance().headline_json();
  os << ",\"scenarios\":[";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i) os << ",";
    os << "{\"index\":" << tasks[i].index << ",\"label\":\""
       << detect::json_escape(tasks[i].label) << "\",\"wall_ms\":"
       << tasks[i].wall_ms << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace nidkit::harness
