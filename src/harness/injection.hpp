// Packet-injection validation (the paper's future work, §3).
//
// A mined discrepancy says: implementation A exhibits stimulus→response
// relationship (S → R), implementation B never does. To verify that this
// is a real behavioural difference rather than a mining artifact, we build
// a network containing one router of the *target* implementation plus a
// prober — a full protocol engine under harness control — establish a real
// adjacency, inject a crafted packet of class S, and observe whether the
// target answers with class R within the causal window.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "detect/detect.hpp"
#include "harness/scenario.hpp"

namespace nidkit::harness {

/// Stimulus classes the injector can synthesize. Labels match the key
/// schemes' labels so mined discrepancy cells can be validated directly.
///   "Hello"       periodic hello
///   "DBD"         out-of-sequence database description
///   "LSR"         request for the target's router-LSA
///   "LSU"         fresh instance (seq+1) of the prober's router-LSA
///   "LSU-stale"   stale instance (seq-1) of the target's router-LSA
///   "LSAck"       unsolicited ack of the target's current router-LSA
///   "LSAck+gtSN"  ack carrying seq+1 of the target's router-LSA
/// plus the aliases in injection_stimulus_aliases() — e.g. "LSU+gtSN" is
/// "LSU" (the crafted instance always carries a greater LS-SN than
/// anything previously sent).
///
/// These tables are the single source of truth for what the synthesizer
/// in inject_and_observe dispatches on; triage's cell→stimulus mapping is
/// tested against them so the two cannot silently drift apart.
const std::vector<std::string>& injection_stimulus_labels();
const std::map<std::string, std::string>& injection_stimulus_aliases();

/// Canonical form of a stimulus label: aliases resolve to their target,
/// canonical labels map to themselves, anything else to "".
std::string injection_canonical_stimulus(const std::string& stimulus_label);

bool injection_supports(const std::string& stimulus_label);

struct InjectionConfig {
  ospf::BehaviorProfile target_profile;
  std::string stimulus;
  SimDuration tdelay = 900ms;
  /// Observation window after injection; responses later than this are
  /// not attributed (mirrors the miner's threshold + horizon).
  SimDuration observe_window = 7s;
  /// When to inject; must leave room for adjacency establishment.
  SimTime inject_at = 60s;
  std::uint64_t seed = 7;
};

struct InjectionOutcome {
  bool injected = false;  ///< false if the adjacency never formed
  std::string stimulus;
  /// Response classes observed at the prober within the window, labeled by
  /// packet type with the +gtSN refinement relative to the stimulus.
  std::set<std::string> responses;

  bool saw(const std::string& label) const { return responses.count(label); }
};

/// Runs the probe. Deterministic in (config, seed).
InjectionOutcome inject_and_observe(const InjectionConfig& config);

// ---- Automated discrepancy validation ----
//
// Maps each mined discrepancy to a synthesizable stimulus, probes *both*
// implementations, and classifies the flag:
//   kConfirmed      — the implementations demonstrably respond differently
//                     (the exhibiting one produces the response class, the
//                     other does not);
//   kNotReproduced  — both respond alike in the 2-router probe (a mining
//                     artifact, or a behaviour needing multi-router
//                     context);
//   kUnsupported    — no synthesizer exists for the stimulus class.

enum class Verdict { kConfirmed, kNotReproduced, kUnsupported };

std::string to_string(Verdict v);

struct ValidationEntry {
  detect::Discrepancy discrepancy;
  std::string stimulus;  ///< what was injected (empty if kUnsupported)
  InjectionOutcome outcome_present;  ///< probe of the exhibiting impl
  InjectionOutcome outcome_absent;   ///< probe of the lacking impl
  Verdict verdict = Verdict::kUnsupported;
};

/// Picks the injection stimulus for a discrepancy cell, or empty if the
/// class cannot be synthesized in a 2-router probe.
std::string stimulus_for_cell(const mining::RelationCell& cell,
                              mining::RelationDirection direction);

/// Validates every discrepancy against the named implementations.
/// Deterministic; probes each (implementation, stimulus) pair once and
/// caches.
std::vector<ValidationEntry> validate_discrepancies(
    const std::vector<detect::Discrepancy>& discrepancies,
    const std::map<std::string, ospf::BehaviorProfile>& impls,
    const InjectionConfig& base = {});

}  // namespace nidkit::harness
