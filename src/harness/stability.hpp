// Relationship stability across seeds.
//
// The paper unions relationships over topologies of one run. First-match
// attribution is timing-sensitive, so some mined cells are one-off
// artifacts of a particular schedule. Mining each seed independently and
// measuring, per cell, the fraction of seeds in which it appears separates
// *stable* relationships (the implementation's actual behaviour) from
// noise — and discrepancies supported only by unstable cells can be
// demoted before an operator spends time on them.
#pragma once

#include <vector>

#include "harness/experiment.hpp"

namespace nidkit::harness {

struct CellStability {
  mining::RelationDirection direction = mining::RelationDirection::kSendToRecv;
  mining::RelationCell cell;
  std::size_t seeds_seen = 0;
  std::size_t seeds_total = 0;
  std::uint64_t total_count = 0;  ///< occurrences summed over all seeds

  double fraction() const {
    return seeds_total == 0
               ? 0.0
               : static_cast<double>(seeds_seen) / seeds_total;
  }
};

/// Mines each seed of `config` separately (union over topologies within a
/// seed) and reports per-cell seed coverage, most stable first. When
/// `exec` is non-null, executor and result-cache telemetry accumulate
/// into it (the CLI's --stats path).
std::vector<CellStability> ospf_relation_stability(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme, ExecReport* exec = nullptr);

/// The union relation set restricted to cells observed in at least
/// `min_fraction` of seeds. Feeding both implementations' stable sets to
/// detect::compare yields high-confidence flags.
mining::RelationSet stable_relations(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme, double min_fraction);

}  // namespace nidkit::harness
