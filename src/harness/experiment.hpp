// Experiment orchestration: everything the paper's evaluation does.
//
//  * mine one implementation across several topologies and union the
//    relationship sets (extensiveness, §2);
//  * audit two or more implementations and flag discrepancies (§3);
//  * sweep TDelay and score accuracy against the simulator's ground truth
//    (the paper's 900 ms calibration);
//  * measure how the relation set grows as topologies are added (the
//    paper's "no significant changes after four topologies" claim).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "detect/detect.hpp"
#include "harness/parallel.hpp"
#include "harness/scenario.hpp"
#include "mining/miner.hpp"

namespace nidkit::harness {

struct ExperimentConfig {
  std::vector<topo::Spec> topologies = topo::paper_topologies();
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  SimDuration tdelay = 900ms;
  SimDuration link_jitter = 10ms;
  /// Calibrated against the paper's tables: light loss (containers under
  /// load) exercises retransmission-driven relationships without drowning
  /// the matrices in attribution noise.
  double link_loss = 0.002;
  SimDuration duration = 180s;
  /// 0 keeps the profiles' RFC default (30 min, i.e. no refresh within a
  /// run): sequence numbers still advance through convergence-time
  /// re-origination, as in the paper's testbed.
  SimDuration lsa_refresh = 0s;
  SimDuration miner_horizon = 5s;
  double window_factor = 2.0;
  /// Link-churn schedule (the chaos workload), copied into every scenario.
  /// Triage shrinks this list event by event; the audit default matches
  /// Scenario's.
  std::vector<SimTime> churn_times = {60s, 110s};
  /// Worker threads for fanning out (topology, seed, implementation)
  /// scenarios. 0 = hardware_concurrency, 1 = the serial reference path.
  /// Results are bit-identical for every value (see parallel.hpp).
  std::size_t jobs = 0;
  /// Keep raw wire bytes in trace records. Off by default in experiment
  /// pipelines: mining reads digests only, so dropping the byte buffers
  /// changes nothing in the reports while shrinking sweep memory. CLI
  /// --keep-bytes flips it (needed for pcap export of audit traces).
  bool keep_bytes = false;
  /// Directory of the persistent scenario-result cache (see cache::Store).
  /// Empty — the default — disables caching. Executor-level knob like
  /// `jobs`, exempt from the scenario_for copy-through: the cache location
  /// cannot change what a scenario computes (content-addressed keys cover
  /// every knob that can), only whether it is recomputed.
  std::string cache_dir;

  mining::MinerConfig miner_config() const {
    mining::MinerConfig m;
    m.tdelay = tdelay;
    m.window_factor = window_factor;
    m.horizon = miner_horizon;
    return m;
  }

  // Copy-through contract: every *per-scenario* knob added to this struct
  // must be threaded through here (executor-level knobs such as `jobs`
  // are exempt). A size guard in experiment.cpp trips on growth so a new
  // field cannot be forgotten silently; the copied set is pinned by
  // Config.ScenarioForCopiesExperimentKnobs.
  Scenario scenario_for(const topo::Spec& spec, std::uint64_t seed) const {
    Scenario s;
    s.topology = spec;
    s.tdelay = tdelay;
    s.link_jitter = link_jitter;
    s.link_loss = link_loss;
    s.duration = duration;
    s.lsa_refresh = lsa_refresh;
    s.churn_times = churn_times;
    s.seed = seed;
    s.keep_bytes = keep_bytes;
    return s;
  }
};

/// Mines one OSPF implementation: runs every (topology, seed) scenario —
/// fanned out over config.jobs workers — mines each trace, and unions the
/// per-scenario sets in canonical (topology, seed) order. When `exec` is
/// non-null, per-scenario wall times accumulate into it.
mining::RelationSet mine_ospf(const ospf::BehaviorProfile& profile,
                              const ExperimentConfig& config,
                              const mining::KeyScheme& scheme,
                              ExecReport* exec = nullptr);

/// Same for a RIP variant.
mining::RelationSet mine_rip(const rip::RipProfile& profile,
                             const ExperimentConfig& config,
                             const mining::KeyScheme& scheme,
                             ExecReport* exec = nullptr);

/// Same for a BGP variant. Scenarios include the long-path churn workload
/// (the incident stimulus) so AS_PATH-handling differences surface.
mining::RelationSet mine_bgp(const bgp::BgpProfile& profile,
                             const ExperimentConfig& config,
                             const mining::KeyScheme& scheme,
                             ExecReport* exec = nullptr);

/// Full audit: mine every implementation, compare pairwise. All
/// (implementation, topology, seed) scenarios share one fan-out, so the
/// pool stays busy even while the widest topology of one implementation
/// is still simulating.
struct AuditResult {
  std::vector<std::string> names;
  std::map<std::string, mining::RelationSet> by_impl;
  std::vector<detect::Discrepancy> discrepancies;
  /// Execution telemetry (worker count, per-scenario wall times, queue
  /// depth). Nondeterministic by nature — kept out of the report JSON
  /// unless explicitly requested (see cli --stats).
  ExecReport exec;

  std::vector<detect::NamedRelations> named() const;
};

AuditResult audit_ospf(const std::vector<ospf::BehaviorProfile>& profiles,
                       const ExperimentConfig& config,
                       const mining::KeyScheme& scheme);

AuditResult audit_rip(const std::vector<rip::RipProfile>& profiles,
                      const ExperimentConfig& config,
                      const mining::KeyScheme& scheme);

AuditResult audit_bgp(const std::vector<bgp::BgpProfile>& profiles,
                      const ExperimentConfig& config,
                      const mining::KeyScheme& scheme);

/// E3: accuracy as a function of TDelay, scored against frame provenance.
struct SweepPoint {
  SimDuration tdelay{0};
  double precision = 0;
  double recall = 0;
  std::size_t mined_cells = 0;
  std::size_t unobserved_cells = 0;  ///< the paper's plateau metric
  std::size_t spurious_cells = 0;
};

std::vector<SweepPoint> tdelay_sweep(const ospf::BehaviorProfile& profile,
                                     const ExperimentConfig& base,
                                     const std::vector<SimDuration>& tdelays,
                                     const mining::KeyScheme& scheme,
                                     ExecReport* exec = nullptr);

/// E4: cumulative relationship count as topologies are added one by one.
struct ExtensivenessPoint {
  std::string topology;
  std::size_t new_cells = 0;
  std::size_t cumulative_cells = 0;
};

std::vector<ExtensivenessPoint> topology_extensiveness(
    const ospf::BehaviorProfile& profile, const ExperimentConfig& config,
    const mining::KeyScheme& scheme);

}  // namespace nidkit::harness
