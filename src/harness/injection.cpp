#include "harness/injection.hpp"

#include <algorithm>
#include <limits>

#include "mining/keying.hpp"
#include "netsim/chaos.hpp"
#include "packet/ospf_packet.hpp"

namespace nidkit::harness {

const std::vector<std::string>& injection_stimulus_labels() {
  static const std::vector<std::string> kLabels = {
      "Hello", "DBD", "LSR", "LSU", "LSU-stale", "LSAck", "LSAck+gtSN"};
  return kLabels;
}

const std::map<std::string, std::string>& injection_stimulus_aliases() {
  static const std::map<std::string, std::string> kAliases = {
      {"LSU+gtSN", "LSU"}};
  return kAliases;
}

std::string injection_canonical_stimulus(const std::string& s) {
  const auto& aliases = injection_stimulus_aliases();
  if (const auto it = aliases.find(s); it != aliases.end()) return it->second;
  const auto& labels = injection_stimulus_labels();
  if (std::find(labels.begin(), labels.end(), s) != labels.end()) return s;
  return "";
}

bool injection_supports(const std::string& s) {
  return !injection_canonical_stimulus(s).empty();
}

namespace {

/// Largest LS sequence number carried by an OSPF digest, or INT32_MIN.
std::int32_t max_seq(const trace::OspfView& d) { return d.max_seq(); }

}  // namespace

InjectionOutcome inject_and_observe(const InjectionConfig& config) {
  InjectionOutcome outcome;
  outcome.stimulus = config.stimulus;  // echo the requested label
  // Dispatch on the canonical label so aliases cannot diverge from their
  // targets ("" — unsupported — falls through every branch below).
  const std::string stimulus = injection_canonical_stimulus(config.stimulus);

  netsim::Simulator sim;
  netsim::Network net(sim, config.seed);
  const netsim::NodeId prober_node = net.add_node("prober");
  const netsim::NodeId target_node = net.add_node("target");
  net.add_p2p(prober_node, target_node);

  trace::TraceLog log;
  log.attach(net);
  netsim::ChaosController chaos(net);
  chaos.set_delay_all(config.tdelay);

  // The prober runs a strict-RFC engine so that the adjacency it offers the
  // target is uncontroversial.
  ospf::RouterConfig prober_cfg;
  prober_cfg.router_id = RouterId{9, 9, 9, 9};
  prober_cfg.profile = ospf::strict_profile();
  ospf::Router prober(net, prober_node, prober_cfg, config.seed * 3 + 1);

  ospf::RouterConfig target_cfg;
  target_cfg.router_id = RouterId{1, 1, 1, 1};
  target_cfg.profile = config.target_profile;
  ospf::Router target(net, target_node, target_cfg, config.seed * 3 + 2);

  prober.start();
  target.start();

  sim.run_until(config.inject_at);
  if (prober.neighbor_state(target_cfg.router_id) !=
      ospf::NeighborState::kFull) {
    return outcome;  // injected=false: no adjacency to probe over
  }

  // ---- Craft the stimulus from the prober's protocol knowledge.
  const Ipv4Addr target_addr = net.iface(target_node, 0).address;
  const auto prober_key = ospf::LsaKey{
      ospf::LsaType::kRouter, Ipv4Addr{prober_cfg.router_id.value()},
      prober_cfg.router_id};
  const auto target_key = ospf::LsaKey{
      ospf::LsaType::kRouter, Ipv4Addr{target_cfg.router_id.value()},
      target_cfg.router_id};
  const auto* own_entry = prober.lsdb().find(prober_key);
  const auto* target_entry = prober.lsdb().find(target_key);
  if (own_entry == nullptr || target_entry == nullptr) return outcome;

  ospf::PacketBody body;
  Ipv4Addr dst = target_addr;
  std::int32_t stimulus_seq = std::numeric_limits<std::int32_t>::min();

  if (stimulus == "Hello") {
    ospf::HelloBody hello;
    hello.network_mask = Ipv4Addr{255, 255, 255, 252};
    hello.neighbors.push_back(target_cfg.router_id);
    dst = kAllSpfRouters;
    body = std::move(hello);
  } else if (stimulus == "DBD") {
    ospf::DbdBody dbd;
    dbd.flags = ospf::kDbdFlagInit | ospf::kDbdFlagMore | ospf::kDbdFlagMs;
    dbd.dd_sequence = 0xdead;
    body = std::move(dbd);
  } else if (stimulus == "LSR") {
    ospf::LsRequestBody lsr;
    lsr.requests.push_back(ospf::LsRequestEntry{
        ospf::LsaType::kRouter, target_key.link_state_id,
        target_key.advertising_router});
    body = std::move(lsr);
  } else if (stimulus == "LSU" || stimulus == "LSU-stale") {
    ospf::Lsa lsa = own_entry->lsa;
    if (stimulus == "LSU-stale") {
      // A stale instance of the *target's* LSA, older than its database
      // copy.
      lsa = target_entry->lsa;
      lsa.header.seq -= 1;
    } else {
      lsa.header.seq += 1;
    }
    lsa.header.age = 1;
    lsa.finalize();
    stimulus_seq = lsa.header.seq;
    ospf::LsUpdateBody lsu;
    lsu.lsas.push_back(std::move(lsa));
    body = std::move(lsu);
  } else if (stimulus == "LSAck" || stimulus == "LSAck+gtSN") {
    ospf::LsaHeader h = target_entry->lsa.header;
    if (stimulus == "LSAck+gtSN") {
      h.seq += 1;  // acknowledge an instance newer than anything sent
    }
    stimulus_seq = h.seq;
    ospf::LsAckBody ack;
    ack.lsa_headers.push_back(h);
    body = std::move(ack);
  } else {
    return outcome;  // unsupported stimulus
  }

  const ospf::OspfPacket pkt =
      make_packet(prober_cfg.router_id, kBackboneArea, std::move(body));
  netsim::Frame frame;
  frame.dst = dst;
  frame.protocol = ospf::kIpProtoOspf;
  frame.payload = encode(pkt);
  const SimTime injected_at = sim.now();
  net.send(prober_node, 0, std::move(frame));
  outcome.injected = true;

  sim.run_until(injected_at + config.observe_window);

  // ---- Classify everything the prober received inside the window.
  for (const auto& rec : log.records()) {
    if (rec.node != prober_node || rec.is_send()) continue;
    if (rec.time <= injected_at) continue;
    const auto* o = rec.ospf();
    if (o == nullptr) continue;
    std::string label = mining::ospf_type_label(o->pkt_type);
    outcome.responses.insert(label);
    if ((o->pkt_type == 4 || o->pkt_type == 5) && !o->lsas.empty() &&
        stimulus_seq != std::numeric_limits<std::int32_t>::min() &&
        max_seq(*o) > stimulus_seq) {
      outcome.responses.insert(label + "+gtSN");
    }
  }
  return outcome;
}

std::string to_string(Verdict v) {
  switch (v) {
    case Verdict::kConfirmed: return "CONFIRMED";
    case Verdict::kNotReproduced: return "not-reproduced";
    case Verdict::kUnsupported: return "unsupported";
  }
  return "?";
}

std::string stimulus_for_cell(const mining::RelationCell& cell,
                              mining::RelationDirection direction) {
  // The stimulus of a send->recv relationship is what the flagged
  // implementation *sends*; probing means synthesizing that packet toward
  // the other implementation. recv->send cells invert the roles: the
  // stimulus is what the implementation received — also what we inject.
  (void)direction;
  const std::string& s = cell.stimulus;
  const bool gtsn_response = cell.response.find("+gtSN") != std::string::npos;
  if (s == "LSU" && gtsn_response) return "LSU-stale";
  if (s == "LSAck" && gtsn_response) return "LSAck+gtSN";
  if (injection_supports(s)) return s;
  // Strip refinements like "@Exchange" or "[router]".
  const auto cut = s.find_first_of("@[+");
  if (cut != std::string::npos) {
    const std::string base = s.substr(0, cut);
    if (injection_supports(base)) return base;
  }
  return "";
}

std::vector<ValidationEntry> validate_discrepancies(
    const std::vector<detect::Discrepancy>& discrepancies,
    const std::map<std::string, ospf::BehaviorProfile>& impls,
    const InjectionConfig& base) {
  // Probe cache: (implementation, stimulus) -> outcome.
  std::map<std::pair<std::string, std::string>, InjectionOutcome> cache;
  auto probe = [&](const std::string& impl,
                   const std::string& stimulus) -> InjectionOutcome {
    const auto key = std::make_pair(impl, stimulus);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    InjectionConfig config = base;
    config.stimulus = stimulus;
    config.target_profile = impls.at(impl);
    auto outcome = inject_and_observe(config);
    cache.emplace(key, outcome);
    return outcome;
  };

  std::vector<ValidationEntry> out;
  for (const auto& d : discrepancies) {
    ValidationEntry entry;
    entry.discrepancy = d;
    entry.stimulus = stimulus_for_cell(d.cell, d.direction);
    if (entry.stimulus.empty() || !impls.count(d.present_in) ||
        !impls.count(d.absent_in)) {
      entry.verdict = Verdict::kUnsupported;
      out.push_back(std::move(entry));
      continue;
    }
    entry.outcome_present = probe(d.present_in, entry.stimulus);
    entry.outcome_absent = probe(d.absent_in, entry.stimulus);
    if (!entry.outcome_present.injected || !entry.outcome_absent.injected) {
      entry.verdict = Verdict::kNotReproduced;
    } else if (entry.outcome_present.responses !=
               entry.outcome_absent.responses) {
      entry.verdict = Verdict::kConfirmed;
    } else {
      entry.verdict = Verdict::kNotReproduced;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace nidkit::harness
