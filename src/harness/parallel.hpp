// Deterministic parallel experiment execution.
//
// Every (topology, seed, implementation) scenario the paper's evaluation
// runs is an independent single-threaded simulation, so the experiment
// layer fans them out to a fixed-size worker pool. Determinism is
// preserved by construction rather than by synchronization discipline:
//
//   * each scenario is tagged with its *canonical index* — its position
//     in the serial (implementation, topology, seed) loop nest;
//   * workers compute per-scenario results into their own slots, never
//     touching shared accumulators;
//   * the caller merges the slots in canonical index order on one thread.
//
// The merged relation sets, audit reports and report JSON are therefore
// bit-identical to the serial path regardless of worker count or task
// completion order. Wall-clock timings (which *are* nondeterministic) are
// kept out of the report JSON and surfaced separately via ExecReport.
#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace nidkit::harness {

/// Wall-clock record for one fanned-out scenario.
struct TaskTiming {
  std::size_t index = 0;  ///< canonical scenario index
  std::string label;      ///< e.g. "frr/mesh-5/s2"
  double wall_ms = 0.0;   ///< real time the worker spent on the scenario
};

/// Execution telemetry for a fan-out (or several, via accumulate()).
/// Everything here is observability data: it never feeds back into mined
/// relations, so emitting it cannot perturb determinism.
struct ExecReport {
  std::size_t jobs = 1;              ///< worker count used
  std::size_t max_queue_depth = 0;   ///< pool queue high-water mark
  std::uint64_t tasks_run = 0;       ///< scenarios executed
  double wall_ms = 0.0;              ///< wall time of the fan-out(s)
  std::vector<TaskTiming> tasks;     ///< canonical index order

  // Result-cache telemetry. cache_enabled flips when a fan-out actually
  // ran against a store; without it the counters are meaningless zeros and
  // to_json omits the cache object entirely.
  bool cache_enabled = false;
  std::uint64_t cache_hits = 0;    ///< scenarios served from the cache
  /// Hit split by storage layer: pack = served via the mmap'd manifest
  /// path, loose = read from a <2hex>/<key>.nidc file. pack + loose ==
  /// hits; a warm run whose pack_hits collapse to loose_hits has silently
  /// lost its compacted fast path — visible here and in --stats.
  std::uint64_t cache_pack_hits = 0;
  std::uint64_t cache_loose_hits = 0;
  std::uint64_t cache_misses = 0;  ///< scenarios simulated (and stored)
  /// Scenarios whose key duplicated an earlier scenario of the same
  /// fan-out: computed (or fetched) once, fanned in to every duplicate.
  std::uint64_t cache_dedup = 0;
  std::uint64_t cache_stores = 0;  ///< entries written to the store

  // Behavioral-coverage telemetry (cov subsystem). cov_enabled flips when
  // a fan-out merged into the global CoverageMap; the counters sum over
  // scenarios in canonical order, so they are deterministic.
  bool cov_enabled = false;
  /// Total features carried by the merged scenarios (with multiplicity).
  std::uint64_t cov_features = 0;
  /// Features that were globally unseen when their scenario merged.
  std::uint64_t cov_novel = 0;

  /// Folds another fan-out's telemetry into this one (tasks append with
  /// re-based indices; wall times add; depth takes the max).
  void accumulate(const ExecReport& other);

  /// {"jobs":N,"max_queue_depth":...,"tasks_run":...,"wall_ms":...,
  ///  "cache":{"hits":...,"pack_hits":...,"loose_hits":...,"misses":...,
  ///           "in_flight_dedup":...,"stores":...},
  ///  "coverage":{"scenario_features":...,"novel":...},
  ///  "scenarios":[{"index":i,"label":"...","wall_ms":...},...]}
  /// The cache object appears only when cache_enabled; a "metrics"
  /// headline object is appended when the obs registry is live.
  std::string to_json() const;
};

/// Fans indexed tasks out to a fixed worker pool and returns their results
/// in canonical index order. jobs == 1 degenerates to a plain serial loop
/// on the calling thread (no pool, no futures) — the reference path the
/// parallel one must match bit-for-bit.
class ParallelExecutor {
 public:
  /// jobs == 0 means "as many workers as the hardware allows".
  explicit ParallelExecutor(std::size_t jobs = 0)
      : jobs_(jobs == 0 ? default_worker_count() : jobs) {
    report_.jobs = jobs_;
  }

  std::size_t jobs() const { return jobs_; }

  /// Runs fn(0) .. fn(count-1), each labeled by labels[i] (labels may be
  /// empty), and returns the results indexed canonically. Per-task wall
  /// times and queue-depth counters land in report().
  template <typename Fn>
  auto run_indexed(std::size_t count, const std::vector<std::string>& labels,
                   Fn&& fn) -> std::vector<decltype(fn(std::size_t{0}))> {
    using R = decltype(fn(std::size_t{0}));
    using Clock = std::chrono::steady_clock;

    std::vector<TaskTiming> timings(count);
    for (std::size_t i = 0; i < count; ++i) {
      timings[i].index = i;
      if (i < labels.size()) timings[i].label = labels[i];
    }

    const auto fanout_start = Clock::now();
    std::vector<R> results;
    results.reserve(count);

    auto timed = [&fn, &timings](std::size_t i) -> R {
      const auto start = Clock::now();
      R value = fn(i);
      timings[i].wall_ms =  // each task writes only its own slot
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      return value;
    };

    if (jobs_ <= 1) {
      for (std::size_t i = 0; i < count; ++i) results.push_back(timed(i));
      report_.tasks_run += count;
    } else {
      ThreadPool pool(jobs_);
      std::vector<std::future<R>> futures;
      futures.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        // Enqueue timestamp → queue-wait span, recorded on the worker the
        // moment it picks the task up. Wall-clock only; never deterministic.
        const std::int64_t enqueued_us = obs::enabled() ? obs::now_us() : -1;
        futures.push_back(pool.submit([&timed, &timings, i, enqueued_us] {
          if (enqueued_us >= 0 && obs::enabled()) {
            obs::Registry::instance().record_span(
                "queue-wait", timings[i].label, enqueued_us, obs::now_us());
          }
          return timed(i);
        }));
      }
      // Collect in canonical index order; completion order is irrelevant.
      for (auto& f : futures) results.push_back(f.get());
      const auto counters = pool.counters();
      report_.tasks_run += counters.tasks_run;
      if (counters.max_queue_depth > report_.max_queue_depth)
        report_.max_queue_depth = counters.max_queue_depth;
    }

    report_.wall_ms +=
        std::chrono::duration<double, std::milli>(Clock::now() - fanout_start)
            .count();
    const std::size_t base = report_.tasks.size();
    report_.tasks.insert(report_.tasks.end(),
                         std::make_move_iterator(timings.begin()),
                         std::make_move_iterator(timings.end()));
    for (std::size_t i = base; i < report_.tasks.size(); ++i)
      report_.tasks[i].index = i;
    return results;
  }

  const ExecReport& report() const { return report_; }

 private:
  std::size_t jobs_;
  ExecReport report_;
};

}  // namespace nidkit::harness
