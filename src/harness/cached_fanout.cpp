#include "harness/cached_fanout.hpp"

#include <map>
#include <utility>

#include "cov/cov.hpp"
#include "obs/obs.hpp"

namespace nidkit::harness {

namespace {

/// Folds every entry's deterministic metric delta into the global registry,
/// in canonical job order and on the calling thread — the same discipline
/// RelationSet merges follow, so the aggregate is bit-identical for any
/// --jobs value and any cache temperature.
void merge_metrics(const std::vector<cache::Entry>& results) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::instance();
  for (const auto& entry : results) reg.merge_scenario(entry.metrics);
}

/// Same canonical-order discipline for behavioral coverage: every entry's
/// vector — fresh or replayed from the cache — folds into the global
/// CoverageMap on the calling thread, so the seen set, novelty scores and
/// saturation curve are bit-identical for any --jobs value and any cache
/// temperature.
void merge_coverage(const std::vector<cache::Entry>& results,
                    ExecReport* exec) {
  if (!cov::enabled()) return;
  auto& map = cov::CoverageMap::instance();
  std::uint64_t features = 0;
  std::uint64_t novel = 0;
  for (const auto& entry : results) {
    features += entry.coverage.ids().size();
    novel += map.merge_scenario(entry.coverage);
  }
  if (exec) {
    exec->cov_enabled = true;
    exec->cov_features += features;
    exec->cov_novel += novel;
  }
}

}  // namespace

cache::ScenarioSummary summarize(const ScenarioResult& run) {
  cache::ScenarioSummary s;
  s.routers = run.routers;
  s.segments = run.segments;
  s.full_adjacencies = run.full_adjacencies;
  s.converged = run.converged;
  s.routes_consistent = run.routes_consistent;
  s.convergence_time_us = run.convergence_time.count();
  s.frames_delivered = run.frames_delivered;
  s.frames_dropped = run.frames_dropped;
  return s;
}

std::vector<cache::Entry> run_cached(
    const std::vector<CachedJob>& jobs, std::size_t workers,
    cache::Store* store, cache::PayloadKind kind, std::string_view scheme_id,
    const std::function<cache::Entry(const CachedJob&)>& compute,
    ExecReport* exec) {
  if (store == nullptr) {
    ParallelExecutor executor(workers);
    std::vector<std::string> labels;
    labels.reserve(jobs.size());
    for (const auto& j : jobs) labels.push_back(j.label);
    auto results = executor.run_indexed(
        jobs.size(), labels, [&](std::size_t i) { return compute(jobs[i]); });
    if (exec) exec->accumulate(executor.report());
    merge_metrics(results);
    merge_coverage(results, exec);
    return results;
  }

  std::vector<cache::Entry> results(jobs.size());
  std::vector<cache::ScenarioKey> keys;
  keys.reserve(jobs.size());
  for (const auto& j : jobs)
    keys.push_back(cache::scenario_key(j.scenario, j.miner, scheme_id, kind));

  // Triage in canonical order: owner jobs (first occurrence of a key)
  // resolve against the store; later duplicates fan in afterwards.
  std::map<cache::ScenarioKey, std::size_t> owner_of;
  std::vector<std::size_t> owners;
  std::uint64_t dedup = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto [it, inserted] = owner_of.try_emplace(keys[i], i);
    if (inserted)
      owners.push_back(i);
    else
      ++dedup;
  }

  // One batched lookup for the whole owner set: the store resolves every
  // key against the pack manifest in a single sorted pass, then falls
  // back to loose files — workers dispatched below never touch the
  // filesystem for a key resolved here.
  std::vector<cache::ScenarioKey> owner_keys;
  owner_keys.reserve(owners.size());
  for (const auto i : owners) owner_keys.push_back(keys[i]);
  cache::Store::BatchResult batch;
  {
    obs::Span lookup("cache-lookup", "batch");
    batch = store->get_batch(owner_keys);
  }
  if (obs::enabled()) {
    auto& reg = obs::Registry::instance();
    reg.observe_wall("cache.pack_hits", batch.pack_hits);
    reg.observe_wall("cache.loose_hits", batch.loose_hits);
    reg.observe_wall("cache.misses", batch.misses);
  }

  std::vector<std::size_t> to_run;
  std::vector<bool> resolved(jobs.size(), false);
  std::uint64_t hits = 0;
  for (std::size_t k = 0; k < owners.size(); ++k) {
    const std::size_t i = owners[k];
    if (batch.entries[k]) {
      results[i] = std::move(*batch.entries[k]);
      resolved[i] = true;
      ++hits;
    } else {
      to_run.push_back(i);
    }
  }

  ParallelExecutor executor(workers);
  std::vector<std::string> run_labels;
  run_labels.reserve(to_run.size());
  for (const auto i : to_run) run_labels.push_back(jobs[i].label);
  auto computed = executor.run_indexed(
      to_run.size(), run_labels,
      [&](std::size_t k) { return compute(jobs[to_run[k]]); });
  for (std::size_t k = 0; k < to_run.size(); ++k) {
    const std::size_t i = to_run[k];
    {
      obs::Span span("cache-store", jobs[i].label);
      store->put(keys[i], computed[k]);
    }
    results[i] = std::move(computed[k]);
    resolved[i] = true;
  }

  // Fan the owners' results in to their in-flight duplicates.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (resolved[i]) continue;
    results[i] = results[owner_of.at(keys[i])];
  }

  if (exec) {
    ExecReport delta = executor.report();
    delta.cache_enabled = true;
    delta.cache_hits = hits;
    delta.cache_pack_hits = batch.pack_hits;
    delta.cache_loose_hits = batch.loose_hits;
    delta.cache_misses = to_run.size();
    delta.cache_dedup = dedup;
    delta.cache_stores = to_run.size();
    exec->accumulate(delta);
  }
  merge_metrics(results);
  merge_coverage(results, exec);
  return results;
}

}  // namespace nidkit::harness
