#include "harness/scenario.hpp"

#include <algorithm>
#include <map>

#include "harness/workspace.hpp"

namespace nidkit::harness {

std::size_t expected_adjacency_endpoints(const topo::Spec& spec) {
  const std::size_t n = spec.routers;
  switch (spec.kind) {
    case topo::Kind::kLinear:
      return 2 * (n - 1);
    case topo::Kind::kMesh:
      return n * (n - 1);
    case topo::Kind::kRing:
      return 2 * n;
    case topo::Kind::kStar:
    case topo::Kind::kTree:
      return 2 * (n - 1);
    case topo::Kind::kLan:
      // Adjacencies form with DR and BDR only: the DR and BDR are adjacent
      // to everyone (n-1 each), others to the two of them.
      return n <= 2 ? 2 : 2 * (n - 1) + 2 * (n - 2);
  }
  return 0;
}

ScenarioResult run_scenario(const Scenario& scenario) {
  return run_scenario(scenario, Workspace::of_current_thread());
}

ScenarioResult run_scenario(const Scenario& scenario, Workspace& ws) {
  // The workspace hands back simulator/network state identical to a fresh
  // construction; only the allocations are recycled.
  ws.reset(scenario.seed);
  netsim::Simulator& sim = ws.sim();
  netsim::Network& net = ws.net();
  const topo::Built built = topo::build(net, scenario.topology);

  trace::TraceLog log;
  log.set_keep_bytes(scenario.keep_bytes);
  log.attach(net);

  netsim::ChaosController chaos(net);
  chaos.set_delay_all(scenario.tdelay);
  for (netsim::SegmentId s = 0; s < net.segment_count(); ++s) {
    if (scenario.link_jitter.count() > 0)
      net.fault(s).jitter = scenario.link_jitter;
    if (scenario.link_loss > 0) net.fault(s).loss = scenario.link_loss;
  }

  ScenarioResult result;
  result.routers = built.nodes.size();
  result.segments = built.segments.size();

  Rng seeder(scenario.seed * 0x9e3779b97f4a7c15ULL + 1);

  if (scenario.protocol == Protocol::kOspf) {
    util::ObjectPool<ospf::Router>& routers = ws.ospf_routers();
    for (std::size_t i = 0; i < built.nodes.size(); ++i) {
      ospf::RouterConfig cfg;
      const auto b = static_cast<std::uint8_t>(i + 1);
      cfg.router_id = RouterId{b, b, b, b};
      cfg.profile = scenario.ospf_profile;
      if (scenario.lsa_refresh.count() > 0)
        cfg.profile.lsa_refresh_interval = scenario.lsa_refresh;
      routers.create(net, built.nodes[i], cfg, seeder.next());
    }
    if (scenario.state_probe) {
      log.set_state_prober([&routers](netsim::NodeId node) {
        return node < routers.size() ? routers[node].max_neighbor_state()
                                     : -1;
      });
    }
    // Staggered startup, as daemons in containers never boot in lockstep.
    for (std::size_t i = 0; i < routers.size(); ++i) {
      ospf::Router* r = &routers[i];
      sim.schedule(seeder.jitter(0ms, 2s), [r] { r->start(); });
    }
    // Churn workload: alternating routers inject external LSAs.
    std::uint32_t churn_net = 0;
    for (const SimTime when : scenario.churn_times) {
      const std::size_t who = churn_net % routers.size();
      const std::uint32_t third_octet = 100 + churn_net;
      ++churn_net;
      ospf::Router* r = &routers[who];
      sim.schedule_at(when, [r, third_octet] {
        r->originate_external(
            Ipv4Addr{192, 168, static_cast<std::uint8_t>(third_octet), 0},
            Ipv4Addr{255, 255, 255, 0}, 10);
      });
    }

    // Convergence probe: sample adjacency counts once per simulated second
    // and record the first instant the expected count is reached. A
    // neighbor can only enter or leave Full through set_neighbor_state,
    // which bumps the router's fsm_transitions counter — so a router whose
    // counter is unchanged since the last probe is skipped and its cached
    // count reused.
    const std::size_t expected_endpoints =
        expected_adjacency_endpoints(scenario.topology);
    std::vector<std::uint64_t> probe_seen(routers.size(), ~std::uint64_t{0});
    std::vector<std::size_t> probe_full(routers.size(), 0);
    auto count_full = [&routers, &probe_seen, &probe_full] {
      std::size_t full = 0;
      for (std::size_t i = 0; i < routers.size(); ++i) {
        const std::uint64_t transitions = routers[i].stats().fsm_transitions;
        if (transitions != probe_seen[i]) {
          std::size_t mine = 0;
          for (const auto& oi : routers[i].interfaces())
            for (const auto& [id, n] : oi.neighbors)
              if (n.state == ospf::NeighborState::kFull) ++mine;
          probe_seen[i] = transitions;
          probe_full[i] = mine;
        }
        full += probe_full[i];
      }
      return full;
    };
    std::function<void()> probe = [&] {
      if (result.convergence_time.count() < 0 &&
          count_full() >= expected_endpoints) {
        result.convergence_time = sim.now();
        return;  // stop probing once converged
      }
      if (result.convergence_time.count() < 0 &&
          sim.now() < scenario.duration)
        sim.schedule(1s, probe);
    };
    sim.schedule(1s, probe);

    sim.run_until(scenario.duration);

    for (std::size_t i = 0; i < routers.size(); ++i) {
      const ospf::Router& r = routers[i];
      for (const auto& oi : r.interfaces())
        for (const auto& [id, n] : oi.neighbors)
          if (n.state == ospf::NeighborState::kFull)
            ++result.full_adjacencies;
      const auto& s = r.stats();
      for (int t = 0; t <= ospf::kNumPacketTypes; ++t) {
        result.ospf_totals.tx_by_type[t] += s.tx_by_type[t];
        result.ospf_totals.rx_by_type[t] += s.rx_by_type[t];
      }
      result.ospf_totals.lsa_installs += s.lsa_installs;
      result.ospf_totals.lsa_refreshes += s.lsa_refreshes;
      result.ospf_totals.retransmissions += s.retransmissions;
      result.ospf_totals.duplicates_received += s.duplicates_received;
      result.ospf_totals.stale_received += s.stale_received;
      result.ospf_totals.decode_failures += s.decode_failures;
      result.ospf_totals.auth_failures += s.auth_failures;
      result.ospf_totals.fsm_transitions += s.fsm_transitions;
      result.ospf_totals.fsm_edge_mask |= s.fsm_edge_mask;
      result.ospf_totals.dr_role_mask |= s.dr_role_mask;
      result.ospf_totals.self_originations += s.self_originations;
      result.ospf_totals.maxage_flushes += s.maxage_flushes;
    }
    result.converged = result.full_adjacencies >=
                       expected_adjacency_endpoints(scenario.topology);

    // Route-level interoperability check: all routers must agree on the
    // cost to every prefix.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> costs;
    result.routes_consistent = true;
    bool first_router = true;
    for (std::size_t i = 0; i < routers.size(); ++i) {
      std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> mine;
      for (const auto& route : routers[i].routes())
        mine[{route.prefix.value(), route.mask.value()}] = route.cost;
      if (first_router) {
        costs = std::move(mine);
        first_router = false;
        continue;
      }
      // Same destinations reachable (costs legitimately differ per vantage).
      if (mine.size() != costs.size()) result.routes_consistent = false;
      for (const auto& [key, cost] : costs)
        if (mine.find(key) == mine.end()) result.routes_consistent = false;
    }
  } else if (scenario.protocol == Protocol::kBgp) {
    // BGP assumes a reliable, ordered transport (we do not model TCP
    // recovery), so BGP scenarios run loss-free and in-order regardless of
    // the configured fault model.
    for (netsim::SegmentId s = 0; s < net.segment_count(); ++s) {
      net.fault(s).loss = 0.0;
      net.fault(s).fifo = true;
    }

    util::ObjectPool<bgp::BgpRouter>& routers = ws.bgp_routers();
    for (std::size_t i = 0; i < built.nodes.size(); ++i) {
      bgp::BgpConfig cfg;
      cfg.as_number = static_cast<std::uint16_t>(65001 + i);
      const auto b = static_cast<std::uint8_t>(i + 1);
      cfg.router_id = RouterId{b, b, b, b};
      cfg.profile = scenario.bgp_profile;
      routers.create(net, built.nodes[i], cfg, seeder.next());
    }
    for (std::size_t i = 0; i < routers.size(); ++i) {
      bgp::BgpRouter* r = &routers[i];
      const auto third = static_cast<std::uint8_t>(10 + i);
      sim.schedule(seeder.jitter(0ms, 2s), [r, third] {
        r->start();
        // Every AS originates one prefix, as real networks do.
        r->originate(bgp::Prefix{Ipv4Addr{10, 10, third, 0}, 24});
      });
    }
    // Churn: the first churn time injects the long-path announcement (the
    // 2009-incident stimulus); later churns are ordinary originations.
    std::uint32_t churn_net = 0;
    for (const SimTime when : scenario.churn_times) {
      const std::size_t who = churn_net % routers.size();
      const std::uint32_t third_octet = 200 + churn_net;
      const bool longpath =
          churn_net == 0 && scenario.bgp_longpath_prepend > 0;
      ++churn_net;
      bgp::BgpRouter* r = &routers[who];
      const std::size_t prepend =
          longpath ? scenario.bgp_longpath_prepend : 1;
      sim.schedule_at(when, [r, third_octet, prepend] {
        r->originate(
            bgp::Prefix{
                Ipv4Addr{192, 168, static_cast<std::uint8_t>(third_octet), 0},
                24},
            prepend);
      });
    }

    sim.run_until(scenario.duration);

    result.converged = true;
    for (std::size_t i = 0; i < routers.size(); ++i) {
      const bgp::BgpRouter& r = routers[i];
      if (!r.all_sessions_established()) result.converged = false;
      const auto& s = r.stats();
      result.bgp_totals.tx_open += s.tx_open;
      result.bgp_totals.rx_open += s.rx_open;
      result.bgp_totals.tx_update += s.tx_update;
      result.bgp_totals.rx_update += s.rx_update;
      result.bgp_totals.tx_keepalive += s.tx_keepalive;
      result.bgp_totals.rx_keepalive += s.rx_keepalive;
      result.bgp_totals.tx_notification += s.tx_notification;
      result.bgp_totals.rx_notification += s.rx_notification;
      result.bgp_totals.session_resets += s.session_resets;
      result.bgp_totals.loop_rejects += s.loop_rejects;
      result.bgp_totals.long_path_rejects += s.long_path_rejects;
      result.bgp_totals.routes_selected += s.routes_selected;
      result.bgp_totals.fsm_transitions += s.fsm_transitions;
      result.bgp_totals.fsm_edge_mask |= s.fsm_edge_mask;
    }
    // Route-level consistency: every router reaches every originated
    // prefix (only checked when nothing is flapping).
    result.routes_consistent = true;
    const std::size_t expected = routers.size();
    for (std::size_t i = 0; i < routers.size(); ++i) {
      std::size_t base_prefixes = 0;
      for (const auto& route : routers[i].routes())
        if ((route.prefix.network.value() >> 24) == 10) ++base_prefixes;
      if (base_prefixes < expected) result.routes_consistent = false;
    }
  } else {
    util::ObjectPool<rip::RipRouter>& routers = ws.rip_routers();
    for (std::size_t i = 0; i < built.nodes.size(); ++i) {
      routers.create(net, built.nodes[i], scenario.rip_profile,
                     seeder.next());
    }
    for (std::size_t i = 0; i < routers.size(); ++i) {
      rip::RipRouter* r = &routers[i];
      sim.schedule(seeder.jitter(0ms, 2s), [r] { r->start(); });
    }
    std::uint32_t churn_net = 0;
    for (const SimTime when : scenario.churn_times) {
      const std::size_t who = churn_net % routers.size();
      const std::uint32_t third_octet = 100 + churn_net;
      ++churn_net;
      rip::RipRouter* r = &routers[who];
      sim.schedule_at(when, [r, third_octet] {
        r->originate(
            Ipv4Addr{192, 168, static_cast<std::uint8_t>(third_octet), 0},
            Ipv4Addr{255, 255, 255, 0});
      });
    }

    sim.run_until(scenario.duration);

    std::size_t expected_prefixes = net.segment_count() +
                                    scenario.churn_times.size();
    result.routes_consistent = true;
    for (std::size_t i = 0; i < routers.size(); ++i) {
      const rip::RipRouter& r = routers[i];
      std::size_t reachable = 0;
      for (const auto& route : r.routes())
        if (route.metric < rip::kInfinityMetric) ++reachable;
      if (reachable < expected_prefixes) result.routes_consistent = false;
      const auto& s = r.stats();
      result.rip_totals.tx_requests += s.tx_requests;
      result.rip_totals.tx_responses += s.tx_responses;
      result.rip_totals.rx_requests += s.rx_requests;
      result.rip_totals.rx_responses += s.rx_responses;
      result.rip_totals.routes_learned += s.routes_learned;
      result.rip_totals.routes_expired += s.routes_expired;
      result.rip_totals.triggered += s.triggered;
      result.rip_totals.version_rejected += s.version_rejected;
    }
    result.converged = result.routes_consistent;
  }

  result.frames_delivered = net.frames_delivered();
  result.frames_dropped = net.frames_dropped();

  // Deterministic simulated-time metric deltas. These live in the result
  // (and in cache entries) so a warm cache run replays exactly the numbers
  // a cold run would have produced.
  auto& m = result.metrics;
  m.set("sim.events_executed", sim.executed());
  m.set("sim.frames_delivered", net.frames_delivered());
  m.set("sim.frames_dropped", net.frames_dropped());
  m.set("sim.frames_duplicated", net.frames_duplicated());
  m.set("sim.frames_reorder_delayed", net.frames_reorder_delayed());
  m.set("scenario.runs", 1);
  m.set("scenario.converged", result.converged ? 1 : 0);
  m.set("scenario.routes_consistent", result.routes_consistent ? 1 : 0);
  if (result.convergence_time.count() >= 0)
    m.set("scenario.convergence_time_us",
          static_cast<std::uint64_t>(result.convergence_time.count()));
  if (scenario.protocol == Protocol::kOspf) {
    const auto& t = result.ospf_totals;
    static constexpr const char* kTx[] = {nullptr, "ospf.tx_hello",
                                          "ospf.tx_dbd", "ospf.tx_lsr",
                                          "ospf.tx_lsu", "ospf.tx_lsack"};
    static constexpr const char* kRx[] = {nullptr, "ospf.rx_hello",
                                          "ospf.rx_dbd", "ospf.rx_lsr",
                                          "ospf.rx_lsu", "ospf.rx_lsack"};
    for (int t_idx = 1; t_idx <= ospf::kNumPacketTypes; ++t_idx) {
      m.set(kTx[t_idx], t.tx_by_type[t_idx]);
      m.set(kRx[t_idx], t.rx_by_type[t_idx]);
    }
    m.set("ospf.lsa_installs", t.lsa_installs);
    m.set("ospf.lsa_refreshes", t.lsa_refreshes);
    m.set("ospf.retransmissions", t.retransmissions);
    m.set("ospf.duplicates_received", t.duplicates_received);
    m.set("ospf.stale_received", t.stale_received);
    m.set("ospf.decode_failures", t.decode_failures);
    m.set("ospf.auth_failures", t.auth_failures);
    m.set("ospf.fsm_transitions", t.fsm_transitions);
  } else if (scenario.protocol == Protocol::kBgp) {
    const auto& t = result.bgp_totals;
    m.set("bgp.tx_open", t.tx_open);
    m.set("bgp.rx_open", t.rx_open);
    m.set("bgp.tx_update", t.tx_update);
    m.set("bgp.rx_update", t.rx_update);
    m.set("bgp.tx_keepalive", t.tx_keepalive);
    m.set("bgp.rx_keepalive", t.rx_keepalive);
    m.set("bgp.tx_notification", t.tx_notification);
    m.set("bgp.rx_notification", t.rx_notification);
    m.set("bgp.session_resets", t.session_resets);
    m.set("bgp.loop_rejects", t.loop_rejects);
    m.set("bgp.long_path_rejects", t.long_path_rejects);
    m.set("bgp.routes_selected", t.routes_selected);
    m.set("bgp.fsm_transitions", t.fsm_transitions);
  } else {
    const auto& t = result.rip_totals;
    m.set("rip.tx_requests", t.tx_requests);
    m.set("rip.tx_responses", t.tx_responses);
    m.set("rip.rx_requests", t.rx_requests);
    m.set("rip.rx_responses", t.rx_responses);
    m.set("rip.routes_learned", t.routes_learned);
    m.set("rip.routes_expired", t.routes_expired);
    m.set("rip.triggered", t.triggered);
    m.set("rip.version_rejected", t.version_rejected);
  }

  // Behavioral coverage fill: fold the engines' edge masks, path counters
  // and the trace into the canonical per-scenario feature set. Always
  // collected (one end-of-run pass, nothing per-event) so cache entries
  // carry it regardless of reporting flags.
  auto& cv = result.coverage;
  auto add_fsm_edges = [&cv](cov::Proto p, std::uint64_t mask) {
    for (unsigned bit = 0; bit < 64; ++bit)
      if (mask >> bit & 1) cv.add(cov::fsm_edge(p, bit / 8, bit % 8));
  };
  if (scenario.protocol == Protocol::kOspf) {
    const auto& t = result.ospf_totals;
    add_fsm_edges(cov::Proto::kOspf, t.fsm_edge_mask);
    if (t.retransmissions > 0)
      cv.add(cov::path_marker(cov::OspfMarker::kRetransmission));
    if (t.duplicates_received > 0)
      cv.add(cov::path_marker(cov::OspfMarker::kDuplicateLsa));
    if (t.stale_received > 0)
      cv.add(cov::path_marker(cov::OspfMarker::kStaleLsa));
    if (t.dr_role_mask >> static_cast<unsigned>(ospf::InterfaceState::kDr) & 1)
      cv.add(cov::path_marker(cov::OspfMarker::kDrRole));
    if (t.dr_role_mask >>
            static_cast<unsigned>(ospf::InterfaceState::kBackup) & 1)
      cv.add(cov::path_marker(cov::OspfMarker::kBdrRole));
    if (t.dr_role_mask >>
            static_cast<unsigned>(ospf::InterfaceState::kDrOther) & 1)
      cv.add(cov::path_marker(cov::OspfMarker::kDrOtherRole));
    if (t.self_originations > 0)
      cv.add(cov::lsa_lifecycle(cov::LsaEvent::kOriginate));
    if (t.lsa_refreshes > 0)
      cv.add(cov::lsa_lifecycle(cov::LsaEvent::kRefresh));
    if (t.maxage_flushes > 0)
      cv.add(cov::lsa_lifecycle(cov::LsaEvent::kMaxAgeFlush));
  } else if (scenario.protocol == Protocol::kBgp) {
    const auto& t = result.bgp_totals;
    add_fsm_edges(cov::Proto::kBgp, t.fsm_edge_mask);
    if (t.session_resets > 0)
      cv.add(cov::path_marker(cov::BgpMarker::kSessionReset));
    if (t.loop_rejects > 0)
      cv.add(cov::path_marker(cov::BgpMarker::kLoopReject));
    if (t.long_path_rejects > 0)
      cv.add(cov::path_marker(cov::BgpMarker::kLongPathReject));
  } else {
    const auto& t = result.rip_totals;
    if (t.triggered > 0)
      cv.add(cov::path_marker(cov::RipMarker::kTriggeredUpdate));
    if (t.routes_expired > 0)
      cv.add(cov::path_marker(cov::RipMarker::kRouteExpired));
    if (t.version_rejected > 0)
      cv.add(cov::path_marker(cov::RipMarker::kVersionRejected));
  }
  if (scenario.tdelay.count() > 0) cv.add(cov::chaos(cov::ChaosClass::kDelay));
  if (scenario.link_jitter.count() > 0)
    cv.add(cov::chaos(cov::ChaosClass::kJitter));
  if (net.frames_dropped() > 0) cv.add(cov::chaos(cov::ChaosClass::kLoss));
  if (net.frames_duplicated() > 0)
    cv.add(cov::chaos(cov::ChaosClass::kDuplicate));
  if (net.frames_reorder_delayed() > 0)
    cv.add(cov::chaos(cov::ChaosClass::kReorder));
  if (!scenario.churn_times.empty())
    cv.add(cov::chaos(cov::ChaosClass::kChurn));
  // Packet-kind pairs: per observing node, each send is paired with the
  // kind of the packet most recently received there — the same
  // stimulus→response view the causal miner takes of the trace.
  for (std::size_t node = 0; node < log.node_index_extent(); ++node) {
    int last_rx = -1;
    for (const std::uint32_t idx : log.node_records(
             static_cast<netsim::NodeId>(node))) {
      const trace::RecordView rec = log.view(idx);
      cov::Proto proto = cov::Proto::kOspf;
      unsigned kind = 0;
      if (const auto* o = rec.ospf()) {
        proto = cov::Proto::kOspf;
        kind = o->pkt_type;
      } else if (const auto* ri = rec.rip()) {
        proto = cov::Proto::kRip;
        kind = ri->command;
      } else if (const auto* b = rec.bgp()) {
        proto = cov::Proto::kBgp;
        kind = b->msg_type;
      }
      if (kind == 0 || kind > cov::packet_kind_count(proto)) continue;
      if (rec.is_send()) {
        if (last_rx >= 0)
          cv.add(cov::packet_pair(proto, static_cast<unsigned>(last_rx),
                                  kind));
      } else {
        last_rx = static_cast<int>(kind);
      }
    }
  }
  cv.finalize();

  result.log = std::move(log);
  // The network survives in the workspace, so its tap (which points into
  // the dead local TraceLog shell) must be dropped before we return; the
  // moved-out log and statistics are self-contained.
  net.set_tap(nullptr);
  return result;
}

}  // namespace nidkit::harness
