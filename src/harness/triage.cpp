#include "harness/triage.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "cache/store.hpp"
#include "detect/json.hpp"
#include "harness/cached_fanout.hpp"
#include "mining/miner.hpp"
#include "obs/obs.hpp"

namespace nidkit::harness {

namespace {

std::string cell_label(const detect::Discrepancy& d) {
  return detect::to_string(d.direction) + " " + d.cell.stimulus + " -> " +
         d.cell.response;
}

/// The response class the injection prober can actually observe: the
/// packet-type label with the +gtSN refinement, minus mining-only context
/// like "@Exchange" or "[router]" (the prober labels raw packets, not
/// neighbor-state-refined cells).
std::string response_probe_label(const std::string& response) {
  const auto cut = response.find_first_of("@[");
  return cut == std::string::npos ? response : response.substr(0, cut);
}

std::string seconds_list(const std::vector<SimDuration>& times) {
  if (times.empty()) return "none";
  std::string out;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(times[i].count() / 1'000'000);
  }
  return out;
}

/// Shrink-relevant scenario knobs as a one-line JSON object — the shape
/// `repro_command` maps back onto CLI flags.
std::string scenario_json(const Scenario& s) {
  std::ostringstream os;
  os << "{\"topology\":\"" << detect::json_escape(s.topology.name())
     << "\",\"seed\":" << s.seed
     << ",\"tdelay_ms\":" << s.tdelay.count() / 1000
     << ",\"duration_s\":" << s.duration.count() / 1'000'000
     << ",\"churn_s\":[";
  for (std::size_t i = 0; i < s.churn_times.size(); ++i) {
    if (i) os << ",";
    os << s.churn_times[i].count() / 1'000'000;
  }
  os << "]}";
  return os.str();
}

int confirmation_order(Confirmation c) {
  switch (c) {
    case Confirmation::kConfirmed: return 0;
    case Confirmation::kUnconfirmed: return 1;
    case Confirmation::kRefuted: return 2;
  }
  return 3;
}

}  // namespace

std::string to_string(Confirmation c) {
  switch (c) {
    case Confirmation::kConfirmed: return "confirmed";
    case Confirmation::kRefuted: return "refuted";
    case Confirmation::kUnconfirmed: return "unconfirmed";
  }
  return "?";
}

Confirmation classify_injection(const detect::Discrepancy& d,
                                const std::string& stimulus,
                                const InjectionOutcome& present,
                                const InjectionOutcome& absent,
                                std::string& reason) {
  // Confirmed means the probes isolate the exact response class the cell
  // names; identical response sets refute the cell as a mining artifact;
  // anything else stays unconfirmed with the reason spelled out.
  if (stimulus.empty()) {
    reason = "no injection synthesizer for stimulus class '" +
             d.cell.stimulus + "'";
    return Confirmation::kUnconfirmed;
  }
  if (!present.injected) {
    reason = "adjacency never formed probing " + d.present_in;
    return Confirmation::kUnconfirmed;
  }
  if (!absent.injected) {
    reason = "adjacency never formed probing " + d.absent_in;
    return Confirmation::kUnconfirmed;
  }
  const std::string want = response_probe_label(d.cell.response);
  if (present.saw(want) && !absent.saw(want)) {
    reason.clear();
    return Confirmation::kConfirmed;
  }
  if (present.responses == absent.responses) {
    reason = "both implementations respond identically to " + stimulus;
    return Confirmation::kRefuted;
  }
  reason = "probe responses differ but do not isolate '" + want + "'";
  return Confirmation::kUnconfirmed;
}

TriageResult triage_ospf(const std::vector<ospf::BehaviorProfile>& profiles,
                         const TriageConfig& config) {
  TriageResult result;
  result.scheme = config.scheme.name;

  // Phase 0: the audit itself. Flag order is the canonical detect order
  // (direction, then cell) — the tiebreaker rank preserves it.
  const AuditResult audit =
      audit_ospf(profiles, config.experiment, config.scheme);
  result.impl_names = audit.names;
  result.flagged = audit.discrepancies.size();
  result.exec.accumulate(audit.exec);

  std::map<std::string, ospf::BehaviorProfile> by_name;
  for (const auto& p : profiles) by_name.emplace(p.name, p);

  // Reproduction probes flow through the same cache the audit used: same
  // payload kind, same scheme id, and — for unshrunk candidates — the very
  // keys the audit just stored, so the find phase is usually all hits.
  std::optional<cache::Store> store;
  if (!config.experiment.cache_dir.empty())
    store.emplace(config.experiment.cache_dir);

  // One probe = one candidate scenario run under *both* implementations of
  // a discrepancy and mined; the verdict is "cell present in the
  // exhibiting side's set and absent from the other's".
  auto probe_batch = [&](const detect::Discrepancy& d,
                         const std::vector<Scenario>& candidates) {
    std::vector<CachedJob> jobs;
    jobs.reserve(candidates.size() * 2);
    for (const auto& cand : candidates) {
      for (const std::string* impl : {&d.present_in, &d.absent_in}) {
        Scenario s = cand;
        s.protocol = Protocol::kOspf;
        s.ospf_profile = by_name.at(*impl);
        mining::MinerConfig miner = config.experiment.miner_config();
        // The mining threshold tracks the candidate's TDelay: a shrunken
        // tdelay only reproduces if mining still attributes under it, and
        // unshrunk candidates keep the audit's exact cache key.
        miner.tdelay = s.tdelay;
        std::string label = "triage/" + *impl + "/" + s.topology.name() +
                            "/s" + std::to_string(s.seed);
        jobs.push_back(CachedJob{std::move(s), std::move(label), miner});
      }
    }
    auto entries = run_cached(
        jobs, config.experiment.jobs, store ? &*store : nullptr,
        cache::PayloadKind::kMinedRelations, config.scheme.name,
        [&](const CachedJob& job) {
          obs::Span scenario_span("scenario", job.label);
          cache::Entry entry;
          entry.kind = cache::PayloadKind::kMinedRelations;
          obs::Span sim_span("simulate", job.label);
          const ScenarioResult run = run_scenario(job.scenario);
          entry.summary = summarize(run);
          entry.metrics = run.metrics;
          entry.coverage = run.coverage;
          sim_span.finish();
          obs::Span mine_span("mine", job.label);
          entry.relations =
              mining::CausalMiner(job.miner).mine(run.log, config.scheme);
          return entry;
        },
        &result.exec);
    std::vector<bool> verdicts;
    verdicts.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
      verdicts.push_back(
          entries[2 * i].relations.has(d.direction, d.cell.stimulus,
                                       d.cell.response) &&
          !entries[2 * i + 1].relations.has(d.direction, d.cell.stimulus,
                                            d.cell.response));
    return verdicts;
  };

  // Injection probes are shared across incidents: several cells commonly
  // map onto the same stimulus class, and one (implementation, stimulus)
  // probe answers all of them.
  std::map<std::pair<std::string, std::string>, InjectionOutcome> probed;
  auto inject = [&](const std::string& impl, const std::string& stimulus) {
    const auto key = std::make_pair(impl, stimulus);
    auto it = probed.find(key);
    if (it != probed.end()) return it->second;
    InjectionConfig inj = config.injection;
    inj.stimulus = stimulus;
    inj.target_profile = by_name.at(impl);
    auto outcome = inject_and_observe(inj);
    probed.emplace(key, outcome);
    return outcome;
  };

  const std::size_t limit =
      config.max_incidents == 0
          ? audit.discrepancies.size()
          : std::min(config.max_incidents, audit.discrepancies.size());
  for (std::size_t di = 0; di < limit; ++di) {
    const detect::Discrepancy& d = audit.discrepancies[di];
    IncidentReport incident;
    incident.discrepancy = d;

    // Phase 1: find a single audit-matrix scenario that reproduces the
    // cell on its own. Candidates in canonical (topology, seed) order;
    // the whole batch is probed before selecting the canonically first
    // hit, so the choice is jobs-invariant.
    {
      obs::Span span("triage-find", cell_label(d));
      std::vector<Scenario> candidates;
      for (const auto& spec : config.experiment.topologies)
        for (const auto seed : config.experiment.seeds) {
          if (candidates.size() >= config.max_probes) break;
          candidates.push_back(config.experiment.scenario_for(spec, seed));
        }
      const bool budget_cut =
          candidates.size() <
          config.experiment.topologies.size() * config.experiment.seeds.size();
      const auto verdicts = probe_batch(d, candidates);
      incident.find_probes = candidates.size();
      for (std::size_t i = 0; i < verdicts.size(); ++i)
        if (verdicts[i]) {
          incident.reproduced = true;
          incident.original = candidates[i];
          break;
        }
      if (!incident.reproduced)
        incident.reason =
            budget_cut
                ? "probe budget exhausted searching the audit matrix"
                : "no single-scenario reproduction in the audit matrix "
                  "(cell emerges only from the merged matrix)";
    }

    if (incident.reproduced) {
      // Phase 2: delta-debug with whatever budget the find phase left.
      obs::Span span("triage-minimize", cell_label(d));
      MinimizeConfig mc;
      mc.max_probes = config.max_probes - incident.find_probes;
      incident.shrink = minimize_scenario(
          incident.original, mc,
          [&](const std::vector<Scenario>& batch) {
            return probe_batch(d, batch);
          });
      incident.minimal = incident.shrink.minimal;
      incident.smaller =
          incident.minimal.topology.routers <
              incident.original.topology.routers ||
          incident.minimal.churn_times.size() <
              incident.original.churn_times.size();

      // Phase 3: injection confirm.
      obs::Span inject_span("triage-inject", cell_label(d));
      incident.stimulus = stimulus_for_cell(d.cell, d.direction);
      if (!incident.stimulus.empty()) {
        incident.outcome_present = inject(d.present_in, incident.stimulus);
        incident.outcome_absent = inject(d.absent_in, incident.stimulus);
      }
      incident.confirmation = classify_injection(
          d, incident.stimulus, incident.outcome_present,
          incident.outcome_absent, incident.reason);
    }

    result.total_probes += incident.find_probes + incident.shrink.probes;
    result.incidents.push_back(std::move(incident));
  }

  // Ranking: actionability first. Stable sort keeps the canonical audit
  // flag order as the final tiebreaker, so ranks are deterministic.
  std::stable_sort(result.incidents.begin(), result.incidents.end(),
                   [](const IncidentReport& a, const IncidentReport& b) {
                     const int ca = confirmation_order(a.confirmation);
                     const int cb = confirmation_order(b.confirmation);
                     if (ca != cb) return ca < cb;
                     if (a.reproduced != b.reproduced) return a.reproduced;
                     return a.discrepancy.evidence.count >
                            b.discrepancy.evidence.count;
                   });
  for (std::size_t i = 0; i < result.incidents.size(); ++i)
    result.incidents[i].rank = i + 1;

  if (obs::enabled()) {
    // Probe counts are pure functions of (profiles, config) — sim-domain.
    // Cache hits depend on cache temperature, so they go to the wall
    // section, which determinism comparisons strip.
    std::size_t confirmed = 0;
    for (const auto& inc : result.incidents)
      confirmed += inc.confirmation == Confirmation::kConfirmed ? 1 : 0;
    obs::ScenarioMetrics m;
    m.set("triage.probes", result.total_probes);
    m.set("triage.incidents", result.incidents.size());
    m.set("triage.confirmed", confirmed);
    obs::Registry::instance().merge_scenario(m);
    obs::Registry::instance().observe_wall("triage.cache_hits",
                                           result.exec.cache_hits);
  }
  return result;
}

std::string repro_command(const Scenario& minimal,
                          const std::string& present_in,
                          const std::string& absent_in,
                          const std::string& scheme) {
  std::ostringstream os;
  os << "nidt audit --impls " << present_in << "," << absent_in
     << " --scheme " << scheme << " --topos " << minimal.topology.name()
     << " --seeds " << minimal.seed
     << " --tdelay-ms " << minimal.tdelay.count() / 1000
     << " --duration-s " << minimal.duration.count() / 1'000'000
     << " --churn-s " << seconds_list(minimal.churn_times)
     << " --format json";
  return os.str();
}

std::string triage_report_json(const TriageResult& result) {
  std::ostringstream os;
  os << "{\"schema\":\"nidt-triage-v1\",\n";
  os << "\"implementations\":[";
  for (std::size_t i = 0; i < result.impl_names.size(); ++i) {
    if (i) os << ",";
    os << "\"" << detect::json_escape(result.impl_names[i]) << "\"";
  }
  os << "],\n";
  os << "\"scheme\":\"" << detect::json_escape(result.scheme) << "\",\n";
  os << "\"flagged\":" << result.flagged << ",\n";

  std::size_t reproduced = 0, confirmed = 0, refuted = 0, unconfirmed = 0;
  os << "\"incidents\":[";
  for (std::size_t i = 0; i < result.incidents.size(); ++i) {
    const IncidentReport& inc = result.incidents[i];
    reproduced += inc.reproduced ? 1 : 0;
    switch (inc.confirmation) {
      case Confirmation::kConfirmed: ++confirmed; break;
      case Confirmation::kRefuted: ++refuted; break;
      case Confirmation::kUnconfirmed: ++unconfirmed; break;
    }
    if (i) os << ",";
    os << "{\"rank\":" << inc.rank << ",\"direction\":\""
       << detect::to_string(inc.discrepancy.direction) << "\",\"stimulus\":\""
       << detect::json_escape(inc.discrepancy.cell.stimulus)
       << "\",\"response\":\""
       << detect::json_escape(inc.discrepancy.cell.response)
       << "\",\"present_in\":\""
       << detect::json_escape(inc.discrepancy.present_in)
       << "\",\"absent_in\":\""
       << detect::json_escape(inc.discrepancy.absent_in)
       << "\",\"count\":" << inc.discrepancy.evidence.count
       << ",\"first_seen_us\":" << inc.discrepancy.evidence.first_seen.count()
       << ",\"reproduced\":" << (inc.reproduced ? "true" : "false")
       << ",\"find_probes\":" << inc.find_probes;
    if (inc.reproduced) {
      os << ",\"original\":" << scenario_json(inc.original)
         << ",\"minimal\":" << scenario_json(inc.minimal)
         << ",\"smaller\":" << (inc.smaller ? "true" : "false")
         << ",\"shrink\":{\"probes\":" << inc.shrink.probes
         << ",\"fixpoint\":" << (inc.shrink.fixpoint ? "true" : "false")
         << ",\"budget_exhausted\":"
         << (inc.shrink.budget_exhausted ? "true" : "false")
         << ",\"steps\":[";
      for (std::size_t j = 0; j < inc.shrink.trace.size(); ++j) {
        const ShrinkStep& step = inc.shrink.trace[j];
        if (j) os << ",";
        os << "{\"phase\":\"" << detect::json_escape(step.phase)
           << "\",\"action\":\"" << detect::json_escape(step.action)
           << "\",\"reproduced\":" << (step.reproduced ? "true" : "false")
           << ",\"kept\":" << (step.kept ? "true" : "false") << "}";
      }
      os << "]},\"injection\":{\"stimulus\":\""
         << detect::json_escape(inc.stimulus) << "\",\"verdict\":\""
         << to_string(inc.confirmation) << "\",\"reason\":\""
         << detect::json_escape(inc.reason) << "\",\"present_responses\":[";
      std::size_t k = 0;
      for (const auto& r : inc.outcome_present.responses)
        os << (k++ ? "," : "") << "\"" << detect::json_escape(r) << "\"";
      os << "],\"absent_responses\":[";
      k = 0;
      for (const auto& r : inc.outcome_absent.responses)
        os << (k++ ? "," : "") << "\"" << detect::json_escape(r) << "\"";
      os << "]},\"repro\":\""
         << detect::json_escape(repro_command(
                inc.minimal, inc.discrepancy.present_in,
                inc.discrepancy.absent_in, result.scheme))
         << "\"";
    } else {
      os << ",\"verdict\":\"" << to_string(inc.confirmation)
         << "\",\"reason\":\"" << detect::json_escape(inc.reason) << "\"";
    }
    os << "}";
  }
  os << "],\n";
  os << "\"summary\":{\"incidents\":" << result.incidents.size()
     << ",\"reproduced\":" << reproduced << ",\"confirmed\":" << confirmed
     << ",\"refuted\":" << refuted << ",\"unconfirmed\":" << unconfirmed
     << ",\"probes\":" << result.total_probes << "}}\n";
  return os.str();
}

}  // namespace nidkit::harness
