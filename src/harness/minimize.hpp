// Delta-debug scenario minimization.
//
// Given a scenario that exhibits some property — for triage, "this
// discrepancy cell still reproduces" — the minimizer greedily applies
// single-step reductions (shrink the topology, drop chaos/churn events,
// bisect the seed toward 1, halve TDelay) and keeps a step only when the
// property survives it. The loop is deterministic by construction:
//
//   * candidate reductions are generated in a fixed canonical order,
//     aggressive jumps first (ddmin's "try the big chunk before the
//     pieces");
//   * each round probes its *whole* candidate batch through the oracle —
//     which may fan the batch out to any number of workers — and then
//     accepts the canonically-first reproducing candidate, so the shrink
//     trace is identical for --jobs 1 and --jobs 8;
//   * oracle verdicts are memoized per candidate signature, so a scenario
//     is never probed twice within one minimization and the probe count
//     is itself deterministic.
//
// Termination: every accepted step strictly decreases the well-founded
// measure (kind-distance-from-linear, routers, churn count, seed, tdelay),
// so the loop reaches a fixpoint — a scenario none of whose single-step
// reductions reproduce — unless the probe budget runs out first.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace nidkit::harness {

struct MinimizeConfig {
  /// Maximum oracle evaluations (each evaluation probes one candidate
  /// scenario). The budget makes triage cost predictable; when it runs
  /// out the result keeps the best scenario found so far with
  /// budget_exhausted set and fixpoint unset.
  std::size_t max_probes = 200;
};

/// One candidate reduction considered by the shrink loop, in trace form.
struct ShrinkStep {
  std::string phase;   ///< "topology", "churn", "seed" or "tdelay"
  std::string action;  ///< e.g. "topology mesh-5 -> linear-2"
  bool reproduced = false;  ///< oracle verdict for the candidate
  bool kept = false;        ///< accepted into the shrinking scenario
};

struct MinimizeResult {
  /// The minimized scenario (equal to the start if nothing shrank).
  Scenario minimal;
  /// Every candidate considered, in consideration order. Deterministic:
  /// the same (start, config, oracle function) always yields byte-
  /// identical traces regardless of oracle fan-out width.
  std::vector<ShrinkStep> trace;
  /// Fresh oracle evaluations spent (memoized re-considerations are
  /// traced but not re-probed). Never exceeds config.max_probes.
  std::size_t probes = 0;
  /// True when the final round probed every candidate reduction of
  /// `minimal` and none reproduced: `minimal` is 1-minimal within the
  /// shrink lattice.
  bool fixpoint = false;
  /// True when max_probes truncated a round before it could finish.
  bool budget_exhausted = false;
};

/// Batch reproduction oracle: verdict per candidate, same order. Must be a
/// pure function of each scenario (the minimizer assumes memoizability);
/// it is free to evaluate the batch in parallel.
using BatchOracle =
    std::function<std::vector<bool>(const std::vector<Scenario>&)>;

/// One generated candidate reduction (exposed so the property suite can
/// re-derive the fixpoint check independently of the loop).
struct ShrinkCandidate {
  Scenario scenario;
  std::string phase;
  std::string action;
};

/// All single-step reductions of `s`, canonical priority order, deduped
/// by signature, never containing `s` itself.
std::vector<ShrinkCandidate> shrink_candidates(const Scenario& s);

/// Canonical textual fingerprint of the shrink-relevant knobs (topology,
/// churn schedule, seed, tdelay) — the memo key of the loop.
std::string shrink_signature(const Scenario& s);

/// Runs the greedy shrink loop. `start` is assumed to reproduce (the
/// caller established that); the result's minimal scenario reproduces too.
MinimizeResult minimize_scenario(const Scenario& start,
                                 const MinimizeConfig& config,
                                 const BatchOracle& oracle);

}  // namespace nidkit::harness
