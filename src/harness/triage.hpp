// Automatic disagreement triage: minimize → inject → confirm → rank.
//
// An audit's flagged discrepancy is a relation-set diff a human must
// inspect. Triage closes the loop (the paper's stated future work): for
// each flagged cell it
//
//   1. finds a single (topology, seed) scenario of the audit matrix where
//      the cell reproduces — present in the exhibiting implementation's
//      mined set, absent from the other's;
//   2. delta-debugs that scenario to a minimal repro (see minimize.hpp):
//      shrink the topology, drop churn events, bisect the seed, halve
//      TDelay, keeping only steps that still reproduce;
//   3. maps the cell onto the packet-injection validator's stimulus
//      classes and probes both implementations to confirm or refute the
//      behavioural difference — unsupported stimulus classes degrade to
//      "unconfirmed" with a reason, never an error, and probes whose
//      adjacency never formed are reported as such;
//   4. emits a ranked, deterministic incident report with the shrink
//      trace and a copy-pasteable reproduction command line.
//
// Every reproduction probe runs through run_cached with the same keys the
// audit uses, so a triage after an audit against one cache directory
// replays the expensive part; candidate batches fan out over --jobs
// workers with canonical-order selection, so reports are byte-identical
// for any worker count and any cache temperature.
#pragma once

#include <string>
#include <vector>

#include "detect/detect.hpp"
#include "harness/experiment.hpp"
#include "harness/injection.hpp"
#include "harness/minimize.hpp"

namespace nidkit::harness {

struct TriageConfig {
  /// Audit matrix and executor knobs (topologies, seeds, tdelay, churn
  /// schedule, jobs, cache_dir...). The repro search candidates are
  /// exactly this config's (topology, seed) scenarios.
  ExperimentConfig experiment;
  /// Key scheme the audit mines under. The gtsn scheme is the default
  /// triage granularity: its cells map directly onto injection stimuli.
  mining::KeyScheme scheme = mining::ospf_greater_lssn_scheme();
  /// Per-incident probe budget (repro search + shrink loop; one probe =
  /// one candidate scenario = one run per implementation side).
  std::size_t max_probes = 200;
  /// Triage at most this many flagged discrepancies (0 = all), in
  /// canonical flag order.
  std::size_t max_incidents = 0;
  /// Base configuration for the injection confirmation probes.
  InjectionConfig injection;
};

/// Injection verdict for a triaged incident.
enum class Confirmation {
  kConfirmed,    ///< probes isolate the cell's response class
  kRefuted,      ///< both implementations respond identically when probed
  kUnconfirmed,  ///< could not be probed (unsupported stimulus, adjacency
                 ///< failure, or no single-scenario repro) — see reason
};

std::string to_string(Confirmation c);

struct IncidentReport {
  std::size_t rank = 0;  ///< 1-based position after ranking
  detect::Discrepancy discrepancy;
  /// A single audit-matrix scenario reproduces the cell. When false the
  /// discrepancy only emerges from the merged matrix (or the budget ran
  /// out searching) and minimize/injection are skipped.
  bool reproduced = false;
  Scenario original;  ///< the repro the audit-matrix search selected
  Scenario minimal;   ///< the delta-debugged repro
  /// Strictly smaller than `original`: fewer routers or fewer churn
  /// events (seed/tdelay reductions alone do not count).
  bool smaller = false;
  MinimizeResult shrink;
  std::size_t find_probes = 0;  ///< probes spent locating `original`
  std::string stimulus;  ///< injected stimulus class ("" if unmappable)
  Confirmation confirmation = Confirmation::kUnconfirmed;
  std::string reason;  ///< why not confirmed ("" when confirmed)
  InjectionOutcome outcome_present;  ///< probe of the exhibiting impl
  InjectionOutcome outcome_absent;   ///< probe of the lacking impl
};

struct TriageResult {
  std::vector<std::string> impl_names;
  std::string scheme;
  std::size_t flagged = 0;  ///< discrepancies the audit produced
  /// Ranked incidents: confirmed first, then unconfirmed, then refuted;
  /// reproduced before unreproduced; higher evidence counts first; ties
  /// keep canonical audit flag order.
  std::vector<IncidentReport> incidents;
  std::size_t total_probes = 0;  ///< across all incidents
  ExecReport exec;  ///< wall-clock/cache telemetry (audit + all probes)
};

/// Runs audit → triage for two or more OSPF implementations.
/// Deterministic in (profiles, config): reports are byte-identical for
/// any config.experiment.jobs value and any cache temperature.
TriageResult triage_ospf(const std::vector<ospf::BehaviorProfile>& profiles,
                         const TriageConfig& config);

/// Applies the confirmation rules to one incident's injection probes:
/// confirmed when the probes isolate the cell's observable response class
/// (present side saw it, absent side did not); refuted when both probes
/// elicit identical response sets; everything else — empty stimulus (no
/// synthesizer), adjacency never formed on either side, or non-isolating
/// differences — is unconfirmed. `reason` explains any non-confirmed
/// verdict and is cleared on confirmation.
Confirmation classify_injection(const detect::Discrepancy& d,
                                const std::string& stimulus,
                                const InjectionOutcome& present,
                                const InjectionOutcome& absent,
                                std::string& reason);

/// The `nidt audit` invocation that replays an incident's minimal
/// scenario pair and re-flags the cell.
std::string repro_command(const Scenario& minimal,
                          const std::string& present_in,
                          const std::string& absent_in,
                          const std::string& scheme);

/// Deterministic line-structured report JSON. Stable field order; the
/// whole "incidents" array occupies exactly one line so determinism
/// checks can byte-compare it with line tools (grep '"incidents":').
std::string triage_report_json(const TriageResult& result);

}  // namespace nidkit::harness
