#include "ospf/router.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace nidkit::ospf {

std::string to_string(NeighborState s) {
  switch (s) {
    case NeighborState::kDown: return "Down";
    case NeighborState::kInit: return "Init";
    case NeighborState::kTwoWay: return "2-Way";
    case NeighborState::kExStart: return "ExStart";
    case NeighborState::kExchange: return "Exchange";
    case NeighborState::kLoading: return "Loading";
    case NeighborState::kFull: return "Full";
  }
  return "?";
}

std::string to_string(InterfaceState s) {
  switch (s) {
    case InterfaceState::kDown: return "Down";
    case InterfaceState::kPointToPoint: return "P2P";
    case InterfaceState::kWaiting: return "Waiting";
    case InterfaceState::kDrOther: return "DROther";
    case InterfaceState::kBackup: return "Backup";
    case InterfaceState::kDr: return "DR";
  }
  return "?";
}

namespace {
Ipv4Addr mask_from_prefix(std::uint8_t prefix_len) {
  if (prefix_len == 0) return Ipv4Addr{0};
  return Ipv4Addr{~std::uint32_t{0} << (32 - prefix_len)};
}
}  // namespace

Router::Router(netsim::Network& net, netsim::NodeId node, RouterConfig config,
               std::uint64_t seed)
    : net_(net), node_(node), config_(std::move(config)), rng_(seed) {
  // Unique-enough starting DD sequence, derived from the router id so runs
  // are deterministic.
  dd_seq_counter_ = 0x1000 + (config_.router_id.value() & 0xfff);
  net_.set_receive_handler(node_, [this](netsim::IfaceIndex idx,
                                         const netsim::Frame& f) {
    on_frame(idx, f);
  });
}

void Router::start() {
  assert(!started_);
  started_ = true;
  const auto n_ifaces = net_.iface_count(node_);
  ifaces_.reserve(n_ifaces);
  for (netsim::IfaceIndex i = 0; i < n_ifaces; ++i) {
    const auto& ni = net_.iface(node_, i);
    OspfInterface oi;
    oi.index = i;
    oi.is_lan = net_.segment_is_lan(ni.segment);
    oi.address = ni.address;
    oi.mask = mask_from_prefix(ni.prefix_len);
    ifaces_.push_back(std::move(oi));
  }
  for (auto& oi : ifaces_) interface_up(oi);
  originate_router_lsa();
}

void Router::stop() {
  started_ = false;
  for (auto& oi : ifaces_) {
    oi.state = InterfaceState::kDown;
    oi.hello_timer.cancel();
    oi.wait_timer.cancel();
    oi.ack_timer.cancel();
    oi.flood_timer.cancel();
    for (auto& [id, n] : oi.neighbors) {
      n.inactivity_timer.cancel();
      n.dbd_rxmt_timer.cancel();
      n.lsr_rxmt_timer.cancel();
      n.lsu_rxmt_timer.cancel();
    }
    oi.neighbors.clear();
  }
  for (auto& [key, timer] : refresh_timers_) timer.cancel();
  for (auto& [key, timer] : pending_origination_) timer.cancel();
}

void Router::interface_up(OspfInterface& oi) {
  if (oi.is_lan) {
    // Broadcast interface: wait for WaitTimer (RouterDeadInterval) before
    // electing a DR, so existing DRs are discovered first.
    oi.state = InterfaceState::kWaiting;
    oi.wait_timer = net_.sim().schedule(config_.dead_interval, [this, &oi] {
      if (oi.state == InterfaceState::kWaiting) run_dr_election(oi);
    });
  } else {
    oi.state = InterfaceState::kPointToPoint;
  }
  send_hello(oi, /*cause=*/0);
}

void Router::arm_hello_timer(OspfInterface& oi) {
  oi.hello_timer.cancel();
  SimDuration when = config_.hello_interval;
  const auto& jitter = config_.profile.hello_jitter;
  // Symmetric jitter around the nominal interval, as daemons apply to
  // avoid synchronized hellos.
  if (jitter.count() > 0)
    when += rng_.jitter(SimDuration{0}, jitter) - jitter / 2;
  if (when < SimDuration{1000}) when = SimDuration{1000};
  oi.hello_timer = net_.sim().schedule(when, [this, &oi] {
    send_hello(oi, /*cause=*/0);
  });
}

void Router::send_hello(OspfInterface& oi, std::uint64_t cause) {
  HelloBody hello;
  hello.network_mask = oi.mask;
  hello.hello_interval = static_cast<std::uint16_t>(
      std::chrono::duration_cast<std::chrono::seconds>(config_.hello_interval)
          .count());
  hello.dead_interval = static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::seconds>(config_.dead_interval)
          .count());
  hello.router_priority = config_.priority;
  hello.designated_router = oi.dr;
  hello.backup_designated_router = oi.bdr;
  for (const auto& [id, nbr] : oi.neighbors)
    if (nbr.state >= NeighborState::kInit) hello.neighbors.push_back(id);
  send_packet(oi, std::move(hello), kAllSpfRouters, cause);
  arm_hello_timer(oi);
}

void Router::send_packet(OspfInterface& oi, PacketBody body, Ipv4Addr dst,
                         std::uint64_t cause) {
  OspfPacket pkt = make_packet(config_.router_id, config_.area, std::move(body));
  netsim::Frame frame;
  if (!config_.md5_key.empty()) {
    pkt.header.au_type = 2;
    pkt.header.md5_key_id = config_.md5_key_id;
    pkt.header.md5_seq = ++crypto_seq_;
    frame.payload = encode_md5(
        pkt, {reinterpret_cast<const std::uint8_t*>(config_.md5_key.data()),
              config_.md5_key.size()});
  } else {
    if (!config_.auth_password.empty()) {
      pkt.header.au_type = 1;
      const auto n = std::min<std::size_t>(8, config_.auth_password.size());
      std::copy_n(config_.auth_password.begin(), n, pkt.header.auth.begin());
    }
    frame.payload = encode(pkt);
  }
  frame.dst = dst;
  frame.protocol = kIpProtoOspf;
  frame.caused_by = cause;
  ++stats_.tx_by_type[static_cast<int>(pkt.header.type)];
  net_.send(node_, oi.index, std::move(frame));
}

OspfInterface* Router::iface_by_index(netsim::IfaceIndex index) {
  for (auto& oi : ifaces_)
    if (oi.index == index) return &oi;
  return nullptr;
}

Neighbor* Router::find_neighbor_by_address(OspfInterface& oi, Ipv4Addr addr) {
  for (auto& [id, nbr] : oi.neighbors)
    if (nbr.address == addr) return &nbr;
  return nullptr;
}

bool Router::is_dr_or_bdr(const OspfInterface& oi) const {
  return oi.state == InterfaceState::kDr ||
         oi.state == InterfaceState::kBackup;
}

void Router::on_frame(netsim::IfaceIndex iface, const netsim::Frame& frame) {
  if (!started_) return;  // crashed daemons receive nothing
  if (frame.protocol != kIpProtoOspf) return;
  OspfInterface* oi = iface_by_index(iface);
  if (oi == nullptr || oi->state == InterfaceState::kDown) return;

  // Multicast scoping: AllDRouters is only consumed by the DR and BDR.
  // (The capture tap has already recorded the frame — tcpdump sees frames
  // the daemon's socket filter discards, and so does the miner.)
  if (frame.dst == kAllDRouters && !is_dr_or_bdr(*oi)) return;

  auto decoded = decode(frame.payload);
  if (!decoded.ok()) {
    ++stats_.decode_failures;
    return;
  }
  const OspfPacket& pkt = decoded.value();
  if (!(pkt.header.area_id == config_.area)) return;
  if (pkt.header.router_id == config_.router_id) return;  // own multicast

  // Authentication (§8.2 step 2 / §D.4): AuType and key must match ours.
  if (!config_.md5_key.empty()) {
    if (pkt.header.au_type != 2 ||
        pkt.header.md5_key_id != config_.md5_key_id ||
        !verify_md5(frame.payload,
                    {reinterpret_cast<const std::uint8_t*>(
                         config_.md5_key.data()),
                     config_.md5_key.size()})) {
      ++stats_.auth_failures;
      return;
    }
    // Anti-replay (§D.4.3): the per-sender sequence must not decrease.
    auto [it, inserted] =
        crypto_seq_seen_.try_emplace(pkt.header.router_id, 0);
    if (!inserted && pkt.header.md5_seq < it->second) {
      ++stats_.auth_failures;
      return;
    }
    it->second = pkt.header.md5_seq;
  } else {
    std::array<std::uint8_t, 8> expected{};
    std::uint16_t expected_type = 0;
    if (!config_.auth_password.empty()) {
      expected_type = 1;
      const auto n = std::min<std::size_t>(8, config_.auth_password.size());
      std::copy_n(config_.auth_password.begin(), n, expected.begin());
    }
    if (pkt.header.au_type != expected_type || pkt.header.auth != expected) {
      ++stats_.auth_failures;
      return;
    }
  }

  ++stats_.rx_by_type[static_cast<int>(pkt.header.type)];
  current_cause_ = frame.id;

  if (const auto* hello = std::get_if<HelloBody>(&pkt.body)) {
    handle_hello(*oi, pkt, *hello, frame.src);
  } else {
    // All other packet types require an established neighbor (§8.2).
    auto it = oi->neighbors.find(pkt.header.router_id);
    if (it != oi->neighbors.end() &&
        it->second.state >= NeighborState::kInit) {
      Neighbor& n = it->second;
      if (const auto* dbd = std::get_if<DbdBody>(&pkt.body)) {
        handle_dbd(*oi, n, *dbd);
      } else if (const auto* lsr = std::get_if<LsRequestBody>(&pkt.body)) {
        handle_lsr(*oi, n, *lsr);
      } else if (const auto* lsu = std::get_if<LsUpdateBody>(&pkt.body)) {
        handle_lsu(*oi, n, *lsu, frame.id);
      } else if (const auto* ack = std::get_if<LsAckBody>(&pkt.body)) {
        handle_lsack(*oi, n, *ack);
      }
    }
  }
  current_cause_ = 0;
}

void Router::handle_hello(OspfInterface& oi, const OspfPacket& pkt,
                          const HelloBody& hello, Ipv4Addr src) {
  // §10.5: interval parameters must match or the hello is dropped.
  const auto our_hello = std::chrono::duration_cast<std::chrono::seconds>(
                             config_.hello_interval)
                             .count();
  const auto our_dead =
      std::chrono::duration_cast<std::chrono::seconds>(config_.dead_interval)
          .count();
  if (hello.hello_interval != our_hello || hello.dead_interval != our_dead)
    return;
  if (oi.is_lan && !(hello.network_mask == oi.mask)) return;

  const RouterId nbr_id = pkt.header.router_id;
  bool is_new = false;
  auto it = oi.neighbors.find(nbr_id);
  if (it == oi.neighbors.end()) {
    Neighbor n;
    n.id = nbr_id;
    n.address = src;
    it = oi.neighbors.emplace(nbr_id, std::move(n)).first;
    is_new = true;
  }
  Neighbor& n = it->second;
  n.address = src;

  const std::uint8_t old_priority = n.priority;
  const Ipv4Addr old_dr = n.dr;
  const Ipv4Addr old_bdr = n.bdr;
  n.priority = hello.router_priority;
  n.dr = hello.designated_router;
  n.bdr = hello.backup_designated_router;

  // HelloReceived: (re)start the inactivity timer.
  n.inactivity_timer.cancel();
  n.inactivity_timer = net_.sim().schedule(
      config_.dead_interval,
      [this, &oi, nbr_id] { neighbor_inactivity(oi, nbr_id); });
  if (n.state < NeighborState::kInit)
    set_neighbor_state(n, NeighborState::kInit);

  if (is_new && config_.profile.immediate_hello_on_discovery) {
    // Discretionary: answer a newly discovered neighbor right away so it
    // learns about us without waiting a full hello interval (FRR-like).
    send_hello(oi, current_cause_);
  }

  const bool sees_us =
      std::find(hello.neighbors.begin(), hello.neighbors.end(),
                config_.router_id) != hello.neighbors.end();

  bool state_changed_two_way = false;
  if (sees_us) {
    if (n.state == NeighborState::kInit) {
      set_neighbor_state(n, NeighborState::kTwoWay);
      state_changed_two_way = true;
      if (config_.profile.immediate_hello_on_two_way)
        send_hello(oi, current_cause_);
      if (should_be_adjacent(oi, n)) start_adjacency(oi, n);
    }
  } else {
    // 1-WayReceived: the neighbor no longer lists us.
    if (n.state >= NeighborState::kTwoWay) {
      destroy_neighbor(oi, n);
      set_neighbor_state(n, NeighborState::kInit);
    }
  }

  if (oi.is_lan) {
    // NeighborChange events (§9.2): priority change, DR/BDR claims change,
    // or bidirectionality established/lost.
    const bool change =
        state_changed_two_way || old_priority != n.priority ||
        !(old_dr == n.dr) || !(old_bdr == n.bdr);
    if (oi.state == InterfaceState::kWaiting) {
      // BackupSeen: a neighbor claims to be BDR, or claims DR with no BDR.
      const bool backup_seen =
          (n.bdr == n.address && n.state >= NeighborState::kTwoWay) ||
          (n.dr == n.address && n.bdr.is_zero());
      if (backup_seen) {
        oi.wait_timer.cancel();
        run_dr_election(oi);
      }
    } else if (oi.state >= InterfaceState::kDrOther && change) {
      run_dr_election(oi);
    }
  }
}

void Router::neighbor_inactivity(OspfInterface& oi, RouterId nbr) {
  auto it = oi.neighbors.find(nbr);
  if (it == oi.neighbors.end()) return;
  NIDKIT_LOG(kDebug, now(), "ospf",
             config_.router_id.to_string() << " neighbor " << nbr.to_string()
                                           << " dead (inactivity)");
  destroy_neighbor(oi, it->second);
  oi.neighbors.erase(it);
  if (oi.is_lan && oi.state >= InterfaceState::kDrOther) run_dr_election(oi);
  originate_router_lsa();
}

void Router::destroy_neighbor(OspfInterface& oi, Neighbor& n) {
  // The inactivity timer is deliberately left armed: a neighbor demoted by
  // a 1-Way event must still expire if its hellos stop entirely.
  const bool was_full = n.state == NeighborState::kFull;
  n.dbd_rxmt_timer.cancel();
  n.lsr_rxmt_timer.cancel();
  n.lsu_rxmt_timer.cancel();
  n.db_summary.clear();
  n.ls_requests.clear();
  n.outstanding_requests.clear();
  n.retransmit.clear();
  n.last_rx_dbd_valid = false;
  n.exchange_more_to_send = false;
  // Demote BEFORE re-originating: the flooding below must not put the
  // dying adjacency back on a retransmission list (its timer closure would
  // dangle once the caller erases the neighbor).
  set_neighbor_state(n, NeighborState::kDown);
  if (was_full) {
    originate_router_lsa();
    if (oi.is_lan && oi.state == InterfaceState::kDr)
      originate_network_lsa(oi);
  }
}

bool Router::should_be_adjacent(const OspfInterface& oi,
                                const Neighbor& n) const {
  if (!oi.is_lan) return true;  // always adjacent on point-to-point links
  // §10.4: adjacencies form with the DR and BDR only.
  if (is_dr_or_bdr(oi)) return true;
  return n.address == oi.dr || n.address == oi.bdr;
}

void Router::set_neighbor_state(Neighbor& n, NeighborState to) {
  if (n.state == to) return;
  stats_.fsm_edge_mask |= 1ull << (static_cast<unsigned>(n.state) * 8 +
                                   static_cast<unsigned>(to));
  n.state = to;
  ++stats_.fsm_transitions;
}

void Router::start_adjacency(OspfInterface& oi, Neighbor& n) {
  if (n.state != NeighborState::kTwoWay) return;
  set_neighbor_state(n, NeighborState::kExStart);
  n.we_are_master = true;  // provisional; negotiation settles it
  n.dd_sequence = ++dd_seq_counter_;
  send_dbd(oi, n, /*retransmit=*/false);
}

void Router::check_adjacencies(OspfInterface& oi) {
  // AdjOK? (§10.3): promote 2-Way neighbors that should now be adjacent,
  // demote adjacencies that should no longer exist.
  for (auto& [id, n] : oi.neighbors) {
    if (n.state == NeighborState::kTwoWay && should_be_adjacent(oi, n)) {
      start_adjacency(oi, n);
    } else if (n.state > NeighborState::kTwoWay &&
               !should_be_adjacent(oi, n)) {
      destroy_neighbor(oi, n);
      set_neighbor_state(n, NeighborState::kTwoWay);
    }
  }
}

void Router::run_dr_election(OspfInterface& oi) {
  // §9.4, simplified to the common case (priorities > 0, no preemption
  // subtleties): consider self plus all bidirectional neighbors.
  struct Candidate {
    Ipv4Addr addr;
    RouterId id;
    std::uint8_t priority;
    Ipv4Addr claims_dr;
    Ipv4Addr claims_bdr;
  };
  std::vector<Candidate> cands;
  cands.push_back(Candidate{oi.address, config_.router_id, config_.priority,
                            oi.dr, oi.bdr});
  for (const auto& [id, n] : oi.neighbors) {
    if (n.state >= NeighborState::kTwoWay && n.priority > 0)
      cands.push_back(Candidate{n.address, id, n.priority, n.dr, n.bdr});
  }

  auto better = [](const Candidate& a, const Candidate& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.id > b.id;
  };

  auto elect = [&](bool bdr_round, Ipv4Addr current_bdr) {
    const Candidate* best = nullptr;
    // First pass: routers declaring themselves for the role.
    for (const auto& c : cands) {
      const bool declares = bdr_round ? (c.claims_bdr == c.addr &&
                                         !(c.claims_dr == c.addr))
                                      : (c.claims_dr == c.addr);
      if (!declares) continue;
      if (best == nullptr || better(c, *best)) best = &c;
    }
    if (best != nullptr) return best->addr;
    if (!bdr_round) return current_bdr;  // DR defaults to the elected BDR
    // BDR second pass: anyone not declaring self DR.
    for (const auto& c : cands) {
      if (c.claims_dr == c.addr) continue;
      if (best == nullptr || better(c, *best)) best = &c;
    }
    return best != nullptr ? best->addr : Ipv4Addr{};
  };

  const Ipv4Addr old_dr = oi.dr;
  const Ipv4Addr old_bdr = oi.bdr;

  Ipv4Addr bdr = elect(/*bdr_round=*/true, {});
  Ipv4Addr dr = elect(/*bdr_round=*/false, bdr);
  if (dr == bdr && !dr.is_zero()) bdr = Ipv4Addr{};

  // §9.4 step 4: if our own role changed, repeat the election once with
  // our new claims in place.
  const bool we_were = oi.address == old_dr || oi.address == old_bdr;
  const bool we_are = oi.address == dr || oi.address == bdr;
  if (we_were != we_are) {
    cands[0].claims_dr = dr;
    cands[0].claims_bdr = bdr;
    bdr = elect(/*bdr_round=*/true, {});
    dr = elect(/*bdr_round=*/false, bdr);
    if (dr == bdr && !dr.is_zero()) bdr = Ipv4Addr{};
  }

  oi.dr = dr;
  oi.bdr = bdr;
  if (oi.address == dr) {
    oi.state = InterfaceState::kDr;
  } else if (oi.address == bdr) {
    oi.state = InterfaceState::kBackup;
  } else {
    oi.state = InterfaceState::kDrOther;
  }
  stats_.dr_role_mask |= 1ull << static_cast<unsigned>(oi.state);

  if (!(old_dr == dr) || !(old_bdr == bdr)) {
    NIDKIT_LOG(kDebug, now(), "ospf",
               config_.router_id.to_string()
                   << " election on if" << oi.index << ": DR="
                   << dr.to_string() << " BDR=" << bdr.to_string() << " ("
                   << to_string(oi.state) << ")");
    check_adjacencies(oi);
    originate_router_lsa();
    if (oi.state == InterfaceState::kDr) {
      originate_network_lsa(oi);
    } else if (oi.address == old_dr) {
      // We lost DR: our network-LSA for this segment must be flushed.
      // Simplified: it ages out naturally (MaxAge flushing is not modeled
      // as a triggered flood here).
    }
  }
}

NeighborState Router::neighbor_state(RouterId neighbor) const {
  auto best = NeighborState::kDown;
  for (const auto& oi : ifaces_) {
    auto it = oi.neighbors.find(neighbor);
    if (it != oi.neighbors.end()) best = std::max(best, it->second.state);
  }
  return best;
}

int Router::max_neighbor_state() const {
  int best = -1;
  for (const auto& oi : ifaces_)
    for (const auto& [id, n] : oi.neighbors)
      best = std::max(best, static_cast<int>(n.state));
  return best;
}

bool Router::full_adjacencies(std::size_t expected) const {
  std::size_t full = 0;
  for (const auto& oi : ifaces_)
    for (const auto& [id, n] : oi.neighbors)
      if (n.state == NeighborState::kFull) ++full;
  return full >= expected;
}

}  // namespace nidkit::ospf
