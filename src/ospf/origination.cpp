// Self-LSA origination and refresh (§12.4).
//
// Router-LSAs describe our own links; network-LSAs are originated when we
// are a LAN's designated router; external LSAs are injected by workloads
// via originate_external(). Refresh re-originates with an incremented
// sequence number — in scenarios the refresh interval is shortened so that
// greater-LS-SN packet relationships (the paper's Table 2) appear within a
// short run.
#include "ospf/router.hpp"
#include "util/log.hpp"

namespace nidkit::ospf {

std::int32_t Router::next_seq_for(const LsaKey& key) const {
  const auto* entry = lsdb_.find(key);
  if (entry == nullptr) return kInitialSequenceNumber;
  // Sequence wrap (§12.1.6) cannot occur in bounded scenario runs.
  return entry->lsa.header.seq + 1;
}

bool Router::origination_allowed(const LsaKey& key,
                                 std::function<void()> retry) {
  auto last = last_origination_.find(key);
  if (last == last_origination_.end()) return true;
  const SimTime allowed_at = last->second + config_.profile.min_ls_interval;
  if (now() >= allowed_at) return true;
  // MinLSInterval: coalesce bursts of origination triggers into a single
  // deferred re-origination.
  auto pending = pending_origination_.find(key);
  if (pending == pending_origination_.end() || !pending->second.valid()) {
    pending_origination_[key] = net_.sim().schedule_at(
        allowed_at, [this, key, retry = std::move(retry)] {
          pending_origination_.erase(key);
          retry();
        });
  }
  return false;
}

void Router::self_originate(Lsa lsa, std::uint64_t cause) {
  const LsaKey key = key_of(lsa.header);
  lsa.header.age = 0;
  lsa.header.seq = next_seq_for(key);
  lsa.finalize();

  // The superseded instance must vanish from every retransmission list.
  for (auto& oi : ifaces_)
    for (auto& [id, nb] : oi.neighbors) nb.retransmit.erase(key);

  lsdb_.install(lsa, now());
  last_origination_[key] = now();
  ++stats_.lsa_installs;
  ++stats_.self_originations;
  NIDKIT_LOG(kDebug, now(), "ospf",
             config_.router_id.to_string()
                 << " originates " << lsa.header.to_string());
  flood(key, /*except=*/nullptr, cause);
  schedule_refresh(key);
}

void Router::schedule_refresh(const LsaKey& key) {
  const SimDuration interval = config_.profile.lsa_refresh_interval;
  if (interval.count() <= 0) return;
  refresh_timers_[key].cancel();
  refresh_timers_[key] =
      net_.sim().schedule(interval, [this, key] { refresh_lsa(key); });
}

void Router::refresh_lsa(const LsaKey& key) {
  const auto* entry = lsdb_.find(key);
  if (entry == nullptr) return;
  ++stats_.lsa_refreshes;
  // Re-originate the current content with a bumped sequence number. For
  // router/network LSAs the content is rebuilt from live interface state
  // so refreshes also pick up topology changes.
  if (key.type == LsaType::kRouter &&
      key.advertising_router == config_.router_id) {
    originate_router_lsa();
    return;
  }
  if (key.type == LsaType::kNetwork) {
    for (auto& oi : ifaces_) {
      if (oi.address == key.link_state_id &&
          oi.state == InterfaceState::kDr) {
        originate_network_lsa(oi);
        return;
      }
    }
  }
  Lsa copy = entry->lsa;
  self_originate(std::move(copy), /*cause=*/0);
}

void Router::originate_router_lsa() {
  const LsaKey key{LsaType::kRouter, Ipv4Addr{config_.router_id.value()},
                   config_.router_id};
  if (!origination_allowed(key, [this] { originate_router_lsa(); })) return;

  RouterLsaBody body;
  if (is_asbr_) body.flags |= 0x02;  // E: AS boundary router

  for (const auto& oi : ifaces_) {
    if (oi.state == InterfaceState::kDown) continue;
    const Ipv4Addr subnet{oi.address.value() & oi.mask.value()};
    const std::uint16_t cost = config_.cost_of(oi.index);

    if (!oi.is_lan) {
      bool have_full = false;
      for (const auto& [id, n] : oi.neighbors) {
        if (n.state == NeighborState::kFull) {
          body.links.push_back(RouterLink{Ipv4Addr{id.value()}, oi.address,
                                          RouterLinkType::kPointToPoint,
                                          cost});
          have_full = true;
        }
      }
      // The subnet itself is always reachable as a stub (§12.4.1.1).
      body.links.push_back(
          RouterLink{subnet, oi.mask, RouterLinkType::kStub, cost});
      (void)have_full;
    } else {
      // LAN: a transit link if the segment has a functioning DR we are
      // synchronized with, otherwise a stub for the subnet.
      bool transit = false;
      if (!oi.dr.is_zero()) {
        if (oi.state == InterfaceState::kDr) {
          for (const auto& [id, n] : oi.neighbors)
            if (n.state == NeighborState::kFull) transit = true;
        } else {
          for (const auto& [id, n] : oi.neighbors)
            if (n.address == oi.dr && n.state == NeighborState::kFull)
              transit = true;
        }
      }
      if (transit) {
        body.links.push_back(
            RouterLink{oi.dr, oi.address, RouterLinkType::kTransit, cost});
      } else {
        body.links.push_back(
            RouterLink{subnet, oi.mask, RouterLinkType::kStub, cost});
      }
    }
  }

  Lsa lsa;
  lsa.header.type = LsaType::kRouter;
  lsa.header.link_state_id = Ipv4Addr{config_.router_id.value()};
  lsa.header.advertising_router = config_.router_id;
  lsa.body = std::move(body);
  self_originate(std::move(lsa), current_cause_);
}

void Router::originate_network_lsa(OspfInterface& oi) {
  if (oi.state != InterfaceState::kDr) return;
  NetworkLsaBody body;
  body.network_mask = oi.mask;
  body.attached_routers.push_back(config_.router_id);
  bool any_full = false;
  for (const auto& [id, n] : oi.neighbors) {
    if (n.state == NeighborState::kFull) {
      body.attached_routers.push_back(id);
      any_full = true;
    }
  }
  if (!any_full) return;  // a network-LSA needs at least two routers

  const LsaKey key{LsaType::kNetwork, oi.address, config_.router_id};
  if (!origination_allowed(key, [this, &oi] { originate_network_lsa(oi); }))
    return;

  Lsa lsa;
  lsa.header.type = LsaType::kNetwork;
  lsa.header.link_state_id = oi.address;
  lsa.header.advertising_router = config_.router_id;
  lsa.body = std::move(body);
  self_originate(std::move(lsa), current_cause_);
}

void Router::originate_external(Ipv4Addr prefix, Ipv4Addr mask,
                                std::uint32_t metric) {
  const bool first_external = !is_asbr_;
  is_asbr_ = true;
  ExternalLsaBody body;
  body.network_mask = mask;
  body.metric = metric;
  body.type2 = true;

  Lsa lsa;
  lsa.header.type = LsaType::kExternal;
  lsa.header.link_state_id = prefix;
  lsa.header.advertising_router = config_.router_id;
  lsa.body = std::move(body);
  self_originate(std::move(lsa), current_cause_);
  ++external_counter_;
  // Becoming an ASBR changes the router-LSA's E flag.
  if (first_external && started_) originate_router_lsa();
}

bool Router::withdraw_external(Ipv4Addr prefix) {
  const LsaKey key{LsaType::kExternal, prefix, config_.router_id};
  const auto* entry = lsdb_.find(key);
  if (entry == nullptr) return false;

  // Premature aging (§14.1): flood the *current* instance at MaxAge. The
  // checksum is unchanged — the Fletcher checksum excludes the age field —
  // so receivers recognize the instance and §13.1 ranks MaxAge as newer.
  Lsa flush = entry->lsa;
  flush.header.age = kMaxAgeSeconds;
  auto it = refresh_timers_.find(key);
  if (it != refresh_timers_.end()) {
    it->second.cancel();
    refresh_timers_.erase(it);
  }
  for (auto& oi : ifaces_)
    for (auto& [id, nb] : oi.neighbors) nb.retransmit.erase(key);
  lsdb_.install(std::move(flush), now());
  flood(key, /*except=*/nullptr, current_cause_);
  schedule_maxage_cleanup(key);
  return true;
}

void Router::schedule_maxage_cleanup(const LsaKey& key) {
  // Poll at the retransmission cadence: once every neighbor has
  // acknowledged the MaxAge instance (it is off all retransmission lists),
  // the LSA leaves the database.
  net_.sim().schedule(config_.profile.rxmt_interval, [this, key] {
    const auto* entry = lsdb_.find(key);
    if (entry == nullptr) return;
    if (lsdb_.age_at(*entry, now()) < kMaxAgeSeconds) return;  // resurrected
    for (const auto& oi : ifaces_)
      for (const auto& [id, nb] : oi.neighbors)
        if (nb.retransmit.count(key)) {
          schedule_maxage_cleanup(key);  // still awaiting acks; try again
          return;
        }
    lsdb_.remove(key);
    ++stats_.maxage_flushes;
  });
}

void Router::bump_self_lsas() {
  std::vector<LsaKey> mine;
  lsdb_.for_each([&](const LsaKey& key, const Lsdb::Entry& entry) {
    (void)entry;
    if (key.advertising_router == config_.router_id) mine.push_back(key);
  });
  for (const auto& key : mine) refresh_lsa(key);
}

}  // namespace nidkit::ospf
