#include "ospf/lsdb.hpp"

#include <algorithm>

namespace nidkit::ospf {

std::optional<LsaHeader> Lsdb::install(Lsa lsa, SimTime now) {
  const LsaKey key = key_of(lsa.header);
  std::optional<LsaHeader> previous;
  auto it = entries_.find(key);
  if (it != entries_.end()) previous = it->second.lsa.header;
  entries_[key] = Entry{std::move(lsa), now, now};
  return previous;
}

const Lsdb::Entry* Lsdb::find(const LsaKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

Lsdb::Entry* Lsdb::find(const LsaKey& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void Lsdb::remove(const LsaKey& key) { entries_.erase(key); }

std::uint16_t Lsdb::age_at(const Entry& entry, SimTime now) const {
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::seconds>(now - entry.installed_at)
          .count();
  const auto age = std::int64_t{entry.lsa.header.age} + elapsed;
  return static_cast<std::uint16_t>(
      std::min<std::int64_t>(age, kMaxAgeSeconds));
}

Lsa Lsdb::snapshot(const Entry& entry, SimTime now) const {
  Lsa copy = entry.lsa;
  copy.header.age = age_at(entry, now);
  return copy;
}

std::vector<LsaHeader> Lsdb::summarize(SimTime now) const {
  std::vector<LsaHeader> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    LsaHeader h = entry.lsa.header;
    h.age = age_at(entry, now);
    out.push_back(h);
  }
  return out;
}

void Lsdb::for_each(
    const std::function<void(const LsaKey&, const Entry&)>& fn) const {
  for (const auto& [key, entry] : entries_) fn(key, entry);
}

}  // namespace nidkit::ospf
