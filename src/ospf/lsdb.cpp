#include "ospf/lsdb.hpp"

#include <algorithm>

namespace nidkit::ospf {

std::optional<LsaHeader> Lsdb::install(Lsa lsa, SimTime now) {
  const LsaKey key = key_of(lsa.header);
  std::optional<LsaHeader> previous;
  auto it = entries_.find(key);
  if (it != entries_.end()) previous = it->second.lsa.header;
  entries_[key] = Entry{std::move(lsa), now, now};
  ++version_;
  return previous;
}

const Lsdb::Entry* Lsdb::find(const LsaKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

Lsdb::Entry* Lsdb::find(const LsaKey& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void Lsdb::remove(const LsaKey& key) {
  if (entries_.erase(key) > 0) ++version_;
}

const Lsdb::TypedIndex& Lsdb::typed_index() const {
  if (index_version_ == version_) return index_;
  index_.routers.clear();
  index_.networks.clear();
  index_.externals.clear();
  for (const auto& [key, entry] : entries_) {
    switch (key.type) {
      case LsaType::kRouter:
        index_.routers.emplace_back(key.link_state_id, &entry);
        break;
      case LsaType::kNetwork:
        index_.networks.emplace_back(key.link_state_id, &entry);
        break;
      case LsaType::kExternal:
        index_.externals.push_back(
            {key.link_state_id, key.advertising_router, &entry});
        break;
      default:
        break;
    }
  }
  index_version_ = version_;
  return index_;
}

std::uint16_t Lsdb::age_at(const Entry& entry, SimTime now) const {
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::seconds>(now - entry.installed_at)
          .count();
  const auto age = std::int64_t{entry.lsa.header.age} + elapsed;
  return static_cast<std::uint16_t>(
      std::min<std::int64_t>(age, kMaxAgeSeconds));
}

Lsa Lsdb::snapshot(const Entry& entry, SimTime now) const {
  Lsa copy = entry.lsa;
  copy.header.age = age_at(entry, now);
  return copy;
}

std::vector<LsaHeader> Lsdb::summarize(SimTime now) const {
  std::vector<LsaHeader> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    LsaHeader h = entry.lsa.header;
    h.age = age_at(entry, now);
    out.push_back(h);
  }
  return out;
}

void Lsdb::for_each(
    const std::function<void(const LsaKey&, const Entry&)>& fn) const {
  for (const auto& [key, entry] : entries_) fn(key, entry);
}

}  // namespace nidkit::ospf
