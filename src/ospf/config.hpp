// Router configuration and implementation behaviour profiles.
//
// The RFC leaves many behaviours to the implementer's discretion: when to
// send an extra Hello, whether to acknowledge immediately or batch, when to
// issue Link State Requests, how to acknowledge an LSA it has a newer copy
// of. Real daemons answer these differently — that is precisely the source
// of the non-interoperabilities the paper detects. BehaviorProfile gathers
// every such discretionary choice into one documented struct; the engine
// consults it at each decision point. frr_profile() and bird_profile()
// return knob settings modeled on the two daemons the paper evaluates.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/ip.hpp"
#include "util/time.hpp"

namespace nidkit::ospf {

using namespace std::chrono_literals;

/// Discretionary behaviours of an OSPF implementation.
struct BehaviorProfile {
  std::string name = "generic";

  // ---- Hello protocol ----
  /// Send a Hello immediately when a neighbor is first heard (speeds up
  /// bidirectional discovery; FRR does, BIRD waits for its timer).
  bool immediate_hello_on_discovery = true;
  /// Send a Hello immediately when two-way connectivity is established.
  bool immediate_hello_on_two_way = true;
  /// Uniform jitter applied to each hello timer arming (0 = none).
  SimDuration hello_jitter = 100ms;

  // ---- Acknowledgment strategy ----
  /// Delay before a batched (delayed) LSAck is flushed. 0 = acknowledge
  /// every installed LSA immediately with a direct ack.
  SimDuration delayed_ack_delay = 1s;
  /// When acknowledging, copy the header from our database copy (BIRD-like)
  /// rather than from the LSA instance received on the wire (FRR-like).
  /// With a newer copy in the database this produces LSAcks carrying a
  /// *greater* LS sequence number than the packet they acknowledge — the
  /// discrepancy the paper's Table 2 flags.
  bool ack_from_database = false;
  /// Send an immediate direct ack for duplicate LSAs received outside the
  /// retransmission flow (RFC table 19 "direct ack" row).
  bool direct_ack_duplicates = true;

  // ---- Database exchange ----
  /// Reject DBD packets advertising an MTU larger than our own (§10.6).
  /// The RFC mandates the check, and mismatched MTUs wedging adjacencies
  /// in ExStart is one of the most common real OSPF interop failures;
  /// setting this false models `ip ospf mtu-ignore`.
  bool check_mtu = true;
  /// Issue an LSR as soon as a DBD reveals missing LSAs (FRR) instead of
  /// batching all requests until the exchange finishes (BIRD).
  bool lsr_per_dbd = true;
  std::size_t lsr_max_entries = 60;
  std::size_t dbd_max_headers = 40;

  // ---- Flooding ----
  std::size_t lsu_max_lsas = 16;
  /// Delay between queuing an LSA for flooding and transmitting the LSU
  /// (batches back-to-back changes into one packet).
  SimDuration flood_pacing = 30ms;
  /// On receiving an LSA older than the database copy, respond with a
  /// direct LSU carrying the newer copy (RFC §13 step 8, FRR-like).
  bool respond_stale_with_newer = true;
  /// Alternative stale handling (BIRD-like): acknowledge the stale update
  /// with the *database copy's* header instead of sending the newer LSA.
  /// The stale sender observes an LSAck carrying a greater LS sequence
  /// number than the update it sent — the paper's Table 2 discrepancy.
  /// Takes precedence over respond_stale_with_newer when set.
  bool ack_stale_from_database = false;
  /// Minimum interval between accepting new instances of one LSA
  /// (MinLSArrival, §13 step 5a).
  SimDuration min_ls_arrival = 1s;
  /// Retransmission interval for un-acked LSAs, DBDs and LSRs.
  SimDuration rxmt_interval = 5s;

  // ---- Origination ----
  /// Re-originate self LSAs with an incremented sequence number at this
  /// period (LSRefreshTime is 30 min in the RFC; scenarios shorten it so
  /// greater-LS-SN behaviour appears within a short run).
  SimDuration lsa_refresh_interval = 30min;
  /// Minimum interval between originations of the same LSA (MinLSInterval).
  SimDuration min_ls_interval = 5s;
};

/// Knob settings modeled on FRRouting's ospfd.
BehaviorProfile frr_profile();

/// Knob settings modeled on BIRD's OSPF implementation.
BehaviorProfile bird_profile();

/// A deliberately RFC-literal profile (useful as a third comparator).
BehaviorProfile strict_profile();

/// Per-router configuration.
struct RouterConfig {
  RouterId router_id;
  AreaId area = kBackboneArea;
  SimDuration hello_interval = 10s;
  SimDuration dead_interval = 40s;
  std::uint8_t priority = 1;
  std::uint16_t mtu = 1500;
  /// Simple-password authentication (§D.4.2). Empty = null authentication
  /// (AuType 0). Non-empty = AuType 1 with the first 8 bytes as the key;
  /// received packets whose AuType or key differs are dropped — mismatched
  /// keys silently prevent adjacencies, another classic field failure.
  std::string auth_password;
  /// Cryptographic authentication (§D.4.3). Non-empty = AuType 2: every
  /// packet carries a non-decreasing sequence number and a trailing
  /// MD5(packet || key) digest; receivers verify the digest, the key id
  /// and replay order. Takes precedence over auth_password.
  std::string md5_key;
  std::uint8_t md5_key_id = 1;
  /// Output cost advertised for every interface unless overridden.
  std::uint16_t default_cost = 1;
  /// Per-interface cost overrides (key: netsim interface index).
  std::map<std::uint32_t, std::uint16_t> interface_costs;
  BehaviorProfile profile;

  std::uint16_t cost_of(std::uint32_t iface_index) const {
    auto it = interface_costs.find(iface_index);
    return it == interface_costs.end() ? default_cost : it->second;
  }
};

}  // namespace nidkit::ospf
