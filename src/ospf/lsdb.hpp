// Link-state database.
//
// Stores one current instance per (type, link-state id, advertising router)
// key, together with the simulation time it was installed so LS age can be
// computed on demand instead of being ticked every second.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "packet/lsa.hpp"
#include "util/time.hpp"

namespace nidkit::ospf {

/// Database key: identifies an LSA (not an instance).
struct LsaKey {
  LsaType type = LsaType::kRouter;
  Ipv4Addr link_state_id;
  RouterId advertising_router;

  friend auto operator<=>(const LsaKey&, const LsaKey&) = default;
};

inline LsaKey key_of(const LsaHeader& h) {
  return LsaKey{h.type, h.link_state_id, h.advertising_router};
}

class Lsdb {
 public:
  struct Entry {
    Lsa lsa;               ///< header.age is the age *at install time*
    SimTime installed_at{0};
    SimTime last_accepted_at{0};  ///< for MinLSArrival enforcement
  };

  /// Installs (or replaces) an instance. Returns the previous instance's
  /// header if one existed.
  std::optional<LsaHeader> install(Lsa lsa, SimTime now);

  const Entry* find(const LsaKey& key) const;
  Entry* find(const LsaKey& key);

  void remove(const LsaKey& key);

  /// The LSA's current age at `now`, capped at MaxAge.
  std::uint16_t age_at(const Entry& entry, SimTime now) const;

  /// A copy of the stored LSA with header.age updated to `now`.
  Lsa snapshot(const Entry& entry, SimTime now) const;

  /// All current headers with ages updated to `now` (database summary for
  /// the DBD exchange).
  std::vector<LsaHeader> summarize(SimTime now) const;

  std::size_t size() const { return entries_.size(); }
  void for_each(const std::function<void(const LsaKey&, const Entry&)>& fn) const;

 private:
  std::map<LsaKey, Entry> entries_;
};

}  // namespace nidkit::ospf
