// Link-state database.
//
// Stores one current instance per (type, link-state id, advertising router)
// key, together with the simulation time it was installed so LS age can be
// computed on demand instead of being ticked every second.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "packet/lsa.hpp"
#include "util/time.hpp"

namespace nidkit::ospf {

/// Database key: identifies an LSA (not an instance).
struct LsaKey {
  LsaType type = LsaType::kRouter;
  Ipv4Addr link_state_id;
  RouterId advertising_router;

  friend auto operator<=>(const LsaKey&, const LsaKey&) = default;
};

inline LsaKey key_of(const LsaHeader& h) {
  return LsaKey{h.type, h.link_state_id, h.advertising_router};
}

class Lsdb {
 public:
  struct Entry {
    Lsa lsa;               ///< header.age is the age *at install time*
    SimTime installed_at{0};
    SimTime last_accepted_at{0};  ///< for MinLSArrival enforcement
  };

  /// Per-type views of the database, in LsaKey order within each type.
  /// Pointers are stable until the next install/remove (map nodes).
  struct TypedIndex {
    std::vector<std::pair<Ipv4Addr, const Entry*>> routers;   ///< by LS id
    std::vector<std::pair<Ipv4Addr, const Entry*>> networks;  ///< by DR addr
    /// (link_state_id = prefix, advertising router = ASBR, entry)
    struct ExternalRef {
      Ipv4Addr prefix;
      RouterId origin;
      const Entry* entry;
    };
    std::vector<ExternalRef> externals;
  };

  /// Installs (or replaces) an instance. Returns the previous instance's
  /// header if one existed.
  std::optional<LsaHeader> install(Lsa lsa, SimTime now);

  const Entry* find(const LsaKey& key) const;
  Entry* find(const LsaKey& key);

  void remove(const LsaKey& key);

  /// Monotonic content version: bumped on every install or remove. Two
  /// calls observing the same version saw byte-identical content (ages
  /// still drift with `now`; see RouteCache's validity horizon).
  std::uint64_t version() const { return version_; }

  /// Per-type entry index, rebuilt lazily after content changes. The
  /// returned reference is valid until the next install/remove.
  const TypedIndex& typed_index() const;

  /// The LSA's current age at `now`, capped at MaxAge.
  std::uint16_t age_at(const Entry& entry, SimTime now) const;

  /// A copy of the stored LSA with header.age updated to `now`.
  Lsa snapshot(const Entry& entry, SimTime now) const;

  /// All current headers with ages updated to `now` (database summary for
  /// the DBD exchange).
  std::vector<LsaHeader> summarize(SimTime now) const;

  std::size_t size() const { return entries_.size(); }
  void for_each(const std::function<void(const LsaKey&, const Entry&)>& fn) const;

 private:
  std::map<LsaKey, Entry> entries_;
  std::uint64_t version_ = 0;
  // Lazily rebuilt by typed_index() when index_version_ falls behind.
  mutable TypedIndex index_;
  mutable std::uint64_t index_version_ = ~std::uint64_t{0};
};

}  // namespace nidkit::ospf
