#include "ospf/config.hpp"

namespace nidkit::ospf {

// The knob values below model observable behaviours of the two daemons the
// paper tests (FRRouting's ospfd and BIRD), as documented in their sources
// and confirmed by the packet-level discrepancies the paper reports. They
// are *behaviour models*, not copies of the implementations.

BehaviorProfile frr_profile() {
  BehaviorProfile p;
  p.name = "frr";
  // FRR schedules an immediate hello on neighbor events to speed up
  // adjacency bring-up.
  p.immediate_hello_on_discovery = true;
  p.immediate_hello_on_two_way = true;
  p.hello_jitter = 100ms;
  // FRR batches acknowledgments (delayed acks on an interface timer) —
  // including acks for duplicates, which join the same queue.
  p.delayed_ack_delay = 1s;
  p.ack_from_database = false;  // acks echo the received instance header
  p.direct_ack_duplicates = false;
  // FRR requests missing LSAs as each DBD arrives.
  p.lsr_per_dbd = true;
  p.respond_stale_with_newer = true;
  p.flood_pacing = 30ms;
  return p;
}

BehaviorProfile bird_profile() {
  BehaviorProfile p;
  p.name = "bird";
  // BIRD's hellos are strictly timer-driven.
  p.immediate_hello_on_discovery = false;
  p.immediate_hello_on_two_way = false;
  p.hello_jitter = 0ms;
  // BIRD keeps a short per-interface ack queue...
  p.delayed_ack_delay = 700ms;
  // ...and builds each ack from its own database copy, so an ack flushed
  // after a newer instance arrived carries the newer sequence number —
  // observable as "LSAck with greater LS-SN" by the LSU's sender.
  p.ack_from_database = true;
  p.direct_ack_duplicates = true;
  // BIRD collects the request list during the exchange and asks at the end.
  p.lsr_per_dbd = false;
  // Stale updates are acknowledged from the database rather than answered
  // with the newer LSA.
  p.respond_stale_with_newer = false;
  p.ack_stale_from_database = true;
  p.flood_pacing = 10ms;
  return p;
}

BehaviorProfile strict_profile() {
  BehaviorProfile p;
  p.name = "strict";
  p.immediate_hello_on_discovery = false;
  p.immediate_hello_on_two_way = false;
  p.hello_jitter = 0ms;
  p.delayed_ack_delay = 1s;
  p.ack_from_database = false;
  p.direct_ack_duplicates = true;
  p.lsr_per_dbd = true;
  p.respond_stale_with_newer = true;
  return p;
}

}  // namespace nidkit::ospf
